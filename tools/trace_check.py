#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file emitted by the CC_TRACE telemetry sink.

Usage:
    tools/trace_check.py TRACE.json [--require-span NAME]... [--stats STATS.json]

Checks, in order:

  1. The file parses as JSON and has the expected top-level shape
     (`traceEvents` list; every event carries name/ph/pid/tid/ts).
  2. Begin/end balance per thread: each tid's B/E events form a properly
     nested stack, with every E matching the name of the innermost open B.
     A truncated or interleaved writer shows up here immediately.
  3. Timestamps are non-decreasing per tid (spans are recorded by one thread
     into one buffer, so out-of-order timestamps mean a broken clock or a
     corrupted flush).
  4. Every --require-span NAME appears at least once (exact match on the
     event name).  CI uses this to prove the smoke run actually exercised
     the codec, ops, and scheduler instrumentation.
  5. With --stats, the CC_STATS snapshot JSON is also validated: expected
     schema, scheduler queue-wait histogram with p50/p95/p99, and nonzero
     codec byte counters.
  6. With --cache-stats (opt-in, only meaningful when the run had
     CC_CACHE_BLOCKS > 0), the snapshot must additionally carry nonzero
     cache.hits and cache.misses counters and a sampled cache.lookup_ns
     histogram — proof the decoded-block cache path actually ran.  The
     scheduler queue-wait requirement from (5) is skipped in this mode: a
     cache workload may never schedule a parallel region.
  7. With --batch-stats (opt-in, for bench_lincomb_batch runs), the snapshot
     must carry the four ops.lincomb_batch counters with calls >= 1,
     expressions >= calls, operands_distinct >= calls, decodes_avoided >= 1
     (the fused path actually amortized something), and a sampled
     ops.lincomb_batch.wall_ns histogram.  --batch-arity-bound /
     --batch-blocks-bound additionally assert decodes_avoided <=
     expressions * arity * blocks — the counter can never claim more decodes
     than the sequential path would have performed.  Like --cache-stats,
     the scheduler queue-wait requirement is skipped (the bench pins one
     thread), and only the compress byte counter is required (the batch
     bench never decompresses).

Exits 0 when everything holds, 1 with a diagnostic per failure otherwise.
"""

import argparse
import json
import sys


def fail(message):
    print(f"trace_check: FAIL: {message}", file=sys.stderr)
    return 1


def check_trace(path, require_spans):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"{path}: unreadable or invalid JSON: {error}")

    events = data.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: no traceEvents list")
    if not events:
        return fail(f"{path}: traceEvents is empty — tracing never fired")

    failures = 0
    stacks = {}  # tid -> [open span names]
    last_ts = {}  # tid -> last timestamp seen
    seen_names = set()
    for i, event in enumerate(events):
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in event:
                failures += fail(f"{path}: event #{i} missing {field!r}")
                break
        else:
            name, phase, tid, ts = (
                event["name"], event["ph"], event["tid"], event["ts"])
            if phase not in ("B", "E"):
                failures += fail(f"{path}: event #{i} has phase {phase!r}, "
                                 "expected B or E")
                continue
            seen_names.add(name)
            if tid in last_ts and ts < last_ts[tid]:
                failures += fail(
                    f"{path}: event #{i} ({name}) on tid {tid} goes back in "
                    f"time: {ts} after {last_ts[tid]}")
            last_ts[tid] = ts
            stack = stacks.setdefault(tid, [])
            if phase == "B":
                stack.append(name)
            elif not stack:
                failures += fail(
                    f"{path}: event #{i}: E({name}) on tid {tid} with no "
                    "open span")
            elif stack[-1] != name:
                failures += fail(
                    f"{path}: event #{i}: E({name}) on tid {tid} but "
                    f"innermost open span is {stack[-1]!r}")
            else:
                stack.pop()

    for tid, stack in sorted(stacks.items()):
        if stack:
            failures += fail(
                f"{path}: tid {tid} ends with {len(stack)} unclosed span(s): "
                f"{stack}")

    for name in require_spans:
        if name not in seen_names:
            failures += fail(f"{path}: required span {name!r} never appears")

    if not failures:
        print(f"trace_check: {path}: {len(events)} events across "
              f"{len(stacks)} thread(s), balanced and monotonic"
              + (f"; required spans present: {', '.join(require_spans)}"
                 if require_spans else ""))
    return failures


# CC_STATS invariants the smoke run must satisfy: the queue-wait histogram
# proves the scheduler path ran, the byte counters prove the codec path ran.
STATS_REQUIRED_HISTOGRAM = "sched.region.queue_wait_ns"
STATS_REQUIRED_QUANTILES = ("p50", "p95", "p99")
STATS_REQUIRED_COUNTERS = ("codec.compress.output_bytes",
                           "codec.decompress.output_bytes")


# Decoded-block cache invariants (opt-in via --cache-stats): the counters
# prove lookups happened, the latency histogram proves they were timed.
CACHE_REQUIRED_COUNTERS = ("cache.hits", "cache.misses")
CACHE_REQUIRED_HISTOGRAM = "cache.lookup_ns"


# Batched-evaluation invariants (opt-in via --batch-stats): the counters
# prove lincomb_batch's fused path ran and amortized decodes.
BATCH_REQUIRED_COUNTERS = ("ops.lincomb_batch.calls",
                           "ops.lincomb_batch.expressions",
                           "ops.lincomb_batch.operands_distinct",
                           "ops.lincomb_batch.decodes_avoided")
BATCH_REQUIRED_HISTOGRAM = "ops.lincomb_batch.wall_ns"


def check_batch_counters(path, counters, arity_bound, blocks_bound):
    """The --batch-stats counter invariants; returns the failure count."""
    failures = 0
    for name in BATCH_REQUIRED_COUNTERS:
        if counters.get(name, 0) <= 0:
            failures += fail(f"{path}: counter {name!r} missing or zero — "
                             "did the run evaluate a shared-operand batch?")
    if failures:
        return failures
    calls = counters["ops.lincomb_batch.calls"]
    expressions = counters["ops.lincomb_batch.expressions"]
    distinct = counters["ops.lincomb_batch.operands_distinct"]
    avoided = counters["ops.lincomb_batch.decodes_avoided"]
    if expressions < calls:
        failures += fail(f"{path}: lincomb_batch expressions ({expressions}) "
                         f"< calls ({calls}) — every call carries >= 1 "
                         "expression")
    if distinct < calls:
        failures += fail(f"{path}: lincomb_batch operands_distinct "
                         f"({distinct}) < calls ({calls}) — every call has "
                         ">= 1 distinct operand")
    if arity_bound is not None and blocks_bound is not None:
        limit = expressions * arity_bound * blocks_bound
        if avoided > limit:
            failures += fail(
                f"{path}: decodes_avoided ({avoided}) exceeds expressions * "
                f"arity * blocks ({expressions} * {arity_bound} * "
                f"{blocks_bound} = {limit}) — the counter claims more decodes "
                "than sequential evaluation would have performed")
    return failures


def check_stats(path, cache_stats=False, batch_stats=False,
                batch_arity_bound=None, batch_blocks_bound=None):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"{path}: unreadable or invalid JSON: {error}")

    failures = 0
    if data.get("schema") != "pyblaz-telemetry-v1":
        failures += fail(f"{path}: unexpected schema {data.get('schema')!r}")

    histograms = data.get("histograms", {})
    if cache_stats or batch_stats:
        # These harnesses may legitimately never schedule a parallel region
        # (single-element gets; the batch bench pins one thread, and
        # single-core hosts run regions inline), so the scheduler queue-wait
        # requirement is scoped to the multi-client invocation.
        pass
    else:
        queue_wait = histograms.get(STATS_REQUIRED_HISTOGRAM)
        if not isinstance(queue_wait, dict):
            failures += fail(f"{path}: histogram {STATS_REQUIRED_HISTOGRAM!r} "
                             "missing")
        else:
            if queue_wait.get("count", 0) <= 0:
                failures += fail(f"{path}: {STATS_REQUIRED_HISTOGRAM} has no "
                                 "samples — no region was ever scheduled")
            for quantile in STATS_REQUIRED_QUANTILES:
                if quantile not in queue_wait:
                    failures += fail(f"{path}: {STATS_REQUIRED_HISTOGRAM} "
                                     f"missing {quantile}")

    counters = data.get("counters", {})
    # The batch bench compresses its operand arrays but never decompresses,
    # so only the compress byte counter applies in --batch-stats mode.
    required_counters = (STATS_REQUIRED_COUNTERS[:1] if batch_stats
                         else STATS_REQUIRED_COUNTERS)
    for name in required_counters:
        if counters.get(name, 0) <= 0:
            failures += fail(f"{path}: counter {name!r} missing or zero")

    if batch_stats:
        failures += check_batch_counters(path, counters, batch_arity_bound,
                                         batch_blocks_bound)
        wall = histograms.get(BATCH_REQUIRED_HISTOGRAM)
        if not isinstance(wall, dict) or wall.get("count", 0) <= 0:
            failures += fail(f"{path}: histogram {BATCH_REQUIRED_HISTOGRAM!r} "
                             "missing or empty")

    if cache_stats:
        for name in CACHE_REQUIRED_COUNTERS:
            if counters.get(name, 0) <= 0:
                failures += fail(f"{path}: counter {name!r} missing or zero "
                                 "(was CC_CACHE_BLOCKS set for the run?)")
        lookup = histograms.get(CACHE_REQUIRED_HISTOGRAM)
        if not isinstance(lookup, dict) or lookup.get("count", 0) <= 0:
            failures += fail(f"{path}: histogram {CACHE_REQUIRED_HISTOGRAM!r} "
                             "missing or empty")

    if not failures:
        if batch_stats:
            print(f"trace_check: {path}: stats snapshot has consistent "
                  "lincomb_batch counters (calls/expressions/"
                  "operands_distinct/decodes_avoided) and the wall-time "
                  "histogram")
        elif cache_stats:
            print(f"trace_check: {path}: stats snapshot has nonzero codec "
                  "byte counters, cache lookup counters, and the "
                  "lookup-latency histogram")
        else:
            print(f"trace_check: {path}: stats snapshot has "
                  f"{STATS_REQUIRED_HISTOGRAM} quantiles and nonzero codec "
                  "byte counters")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome-trace JSON from CC_TRACE")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="span name that must appear at least once (repeatable)",
    )
    parser.add_argument(
        "--stats",
        metavar="STATS.json",
        help="also validate a CC_STATS snapshot JSON",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="with --stats, additionally require the decoded-block cache "
        "counters and lookup-latency histogram (run with CC_CACHE_BLOCKS > 0)",
    )
    parser.add_argument(
        "--batch-stats",
        action="store_true",
        help="with --stats, additionally require consistent "
        "ops.lincomb_batch counters and the wall-time histogram "
        "(for bench_lincomb_batch runs)",
    )
    parser.add_argument(
        "--batch-arity-bound",
        type=int,
        metavar="N",
        help="with --batch-stats: max operands per expression in the run, "
        "for the decodes_avoided <= expressions * arity * blocks bound",
    )
    parser.add_argument(
        "--batch-blocks-bound",
        type=int,
        metavar="N",
        help="with --batch-stats: max blocks per array in the run, for the "
        "decodes_avoided bound",
    )
    args = parser.parse_args()

    failures = check_trace(args.trace, args.require_span)
    if args.stats:
        failures += check_stats(args.stats, cache_stats=args.cache_stats,
                                batch_stats=args.batch_stats,
                                batch_arity_bound=args.batch_arity_bound,
                                batch_blocks_bound=args.batch_blocks_bound)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
