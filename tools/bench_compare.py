#!/usr/bin/env python3
"""Compare two BENCH_*.json files from the bench harnesses and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]
    tools/bench_compare.py --concurrency-only BASELINE.json MULTI_CLIENT.json

Kernel entries (`results[]`, from bench_micro_kernels) are matched on
(name, kind, impl, shape) and compared on seconds_per_call.  A candidate more
than --threshold slower than the baseline is a regression; the script prints a
table and exits nonzero if any entry regressed, so it can gate CI.

Backend entries (`backends[]`, from bench_micro_kernels' per-SIMD-backend
series) are matched on (name, impl, shape) and summarized side by side as
speedup-over-scalar ratios.  The backend summary is warn-only: which ISAs
exist depends on the recording host, and single-core CI boxes are too noisy
to hard-gate a SIMD speedup — a vanished win prints a flag, never a failure.

Cache entries (`cache[]`, from bench_block_cache) are matched on
(name, impl, shape) and summarized side by side with their measured hit
rates, plus the cached-over-full hot-ROI read speedup (the decoded-block
cache's >= 5x acceptance number).  Warn-only for the same reason as
backends[].  --cache-only skips the kernel comparison entirely (for
candidates that only carry a cache[] section).

Batch entries (`batch[]`, from bench_lincomb_batch) are matched on
(name, impl, shape) and summarized side by side with the batch-over-sequential
speedup per workload (the batched-evaluation >= 1.5x acceptance number on the
shared3of4_i32 row).  Warn-only for the same reason as backends[]: the ratio
is a cache-traffic property of the recording host.  Baselines recorded before
the section existed simply lack it — the summary prints "-" columns, never an
error.  --batch-only skips the kernel comparison entirely (for candidates
that only carry a batch[] section).

Concurrency entries (`concurrency[]`, from bench_multi_client) are matched on
(name, shape, mode, clients) and compared on ops_per_second, with the
sharded-over-serialized overlap ratio per client count summarized side by
side.  Concurrency comparison is informational — scheduler overlap is
meaningless on a loaded or single-core runner, so it never fails the run.
--concurrency-only skips the kernel comparison entirely (for candidates that
only carry a concurrency[] section).
"""

import argparse
import json
import sys


def load_json(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "pyblaz-bench-kernels-v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def load_results(path):
    return {
        (r["name"], r["kind"], r["impl"], r["shape"]): r["seconds_per_call"]
        for r in load_json(path).get("results", [])
    }


def load_concurrency(path):
    return {
        (r["name"], r["shape"], r["mode"], r["clients"]): r
        for r in load_json(path).get("concurrency", [])
    }


def fusion_ratios(results):
    """fused-over-chained speedup per (name, kind, shape) measured under both
    lincomb paths (the fused-op series from bench_fused_lincomb)."""
    ratios = {}
    for (name, kind, impl, shape), seconds in results.items():
        if impl != "fused":
            continue
        chained = results.get((name, kind, "chained", shape))
        if chained is not None and seconds > 0:
            ratios[(name, kind, shape)] = chained / seconds
    return ratios


def print_fusion_summary(baseline, candidate):
    """Side-by-side fused-over-chained ratios.  Informational only: the
    regression gate already covers the underlying seconds_per_call entries,
    so a fusion-win shrinking shows up here without double-failing the run."""
    base = fusion_ratios(baseline)
    cand = fusion_ratios(candidate)
    keys = sorted(set(base) | set(cand))
    if not keys:
        return
    print(f"\n{'fused-over-chained speedup':<50} {'baseline':>12} {'candidate':>12}")
    for key in keys:
        label = " ".join(filter(None, key))
        fmt = lambda r: f"{r:.2f}x" if r is not None else "-"
        print(f"{label:<50} {fmt(base.get(key)):>12} {fmt(cand.get(key)):>12}")


def expr_overhead_ratios(results):
    """expression-front-end cost per (name, kind, shape): the "expr" series
    (natural syntax through core/ops/expr.hpp) over the handwritten "fused"
    ops::lincomb series it flattens to.  ~1.0 is the zero-overhead claim."""
    ratios = {}
    for (name, kind, impl, shape), seconds in results.items():
        if impl != "expr":
            continue
        fused = results.get((name, kind, "fused", shape))
        if fused is not None and fused > 0:
            ratios[(name, kind, shape)] = seconds / fused
    return ratios


def print_expr_overhead_summary(baseline, candidate):
    """Side-by-side expr-over-fused ratios.  Informational like the fusion
    summary (the seconds_per_call gate covers the entries), but flags a
    candidate ratio drifting past 1.10 — the expression layer is supposed to
    be free, so sustained overhead there is a front-end bug, not noise."""
    base = expr_overhead_ratios(baseline)
    cand = expr_overhead_ratios(candidate)
    keys = sorted(set(base) | set(cand))
    if not keys:
        return
    print(f"\n{'expression cost over handwritten lincomb':<50} "
          f"{'baseline':>12} {'candidate':>12}")
    for key in keys:
        label = " ".join(filter(None, key))
        fmt = lambda r: f"{r:.2f}x" if r is not None else "-"
        flag = ""
        ratio = cand.get(key)
        if ratio is not None and ratio > 1.10:
            flag = "  <-- expected ~1.00x"
        print(f"{label:<50} {fmt(base.get(key)):>12} {fmt(ratio):>12}{flag}")


def load_backends(path):
    return {
        (r["name"], r["impl"], r["shape"]): r
        for r in load_json(path).get("backends", [])
    }


def print_backend_summary(baseline, candidate):
    """Per-SIMD-backend speedup-over-scalar, side by side.  Warn-only (see
    module docstring): flags a candidate SIMD backend that lost its scalar
    speedup for the tentpole kernels, but never fails the run."""
    keys = sorted(set(baseline) | set(candidate))
    if not keys:
        return
    print(f"\n{'backend speedup over scalar':<50} {'baseline':>12} {'candidate':>12}")
    for key in keys:
        name, impl, shape = key
        if impl == "scalar":
            continue
        label = f"{name} {impl} {shape}"
        fmt = lambda r: f"{r['speedup_over_scalar']:.2f}x" if r else "-"
        flag = ""
        record = candidate.get(key)
        if record is not None and record["speedup_over_scalar"] < 1.0:
            flag = "  <-- SIMD slower than scalar (warn-only)"
        print(f"{label:<50} {fmt(baseline.get(key)):>12} {fmt(record):>12}{flag}")


def load_checksum_overheads(path):
    # Baselines recorded before the checksummed v3 container existed simply
    # lack the section; an empty dict renders as "-" columns, never an error.
    return {
        (r["name"], r["shape"]): r
        for r in load_json(path).get("checksum_overheads", [])
    }


def print_checksum_summary(baseline, candidate):
    """Checksummed-container (v3) cost over the unchecksummed v2 layout, in
    time and bytes, side by side.  Warn-only: flags a candidate whose CRC
    pass costs more than 15% serialize/deserialize time — the integrity
    layer is supposed to ride inside the already-parallel chunk loops."""
    keys = sorted(set(baseline) | set(candidate))
    if not keys:
        return
    print(f"\n{'checksummed container v3/v2 (time, bytes)':<50} "
          f"{'baseline':>16} {'candidate':>16}")
    for key in keys:
        name, shape = key
        label = f"{name} {shape}"

        def fmt(record):
            if not record:
                return "-"
            return (f"{record['v3_over_v2_time']:.2f}x "
                    f"{record['v3_over_v2_bytes']:.4f}x")

        flag = ""
        record = candidate.get(key)
        if record is not None and record["v3_over_v2_time"] > 1.15:
            flag = "  <-- checksum pass >15% (warn-only)"
        print(f"{label:<50} {fmt(baseline.get(key)):>16} "
              f"{fmt(record):>16}{flag}")


def load_cache(path):
    # Baselines recorded before the decoded-block cache existed simply lack
    # the section; an empty dict renders as "-" columns, never an error.
    return {
        (r["name"], r["impl"], r["shape"]): r
        for r in load_json(path).get("cache", [])
    }


def cache_roi_speedups(cache):
    """cached-over-full hot-ROI read ratio per shape — the decoded-block
    cache's headline acceptance number (>= 5x on a cache-resident hot set)."""
    ratios = {}
    for (name, impl, shape), record in cache.items():
        if name != "roi_read" or impl != "cached":
            continue
        full = cache.get((name, "full", shape))
        if full and record["seconds_per_call"] > 0:
            ratios[shape] = (
                full["seconds_per_call"] / record["seconds_per_call"]
            )
    return ratios


def print_cache_summary(baseline, candidate):
    """Decoded-block cache entries (bench_block_cache) side by side, with the
    measured hit rate per entry and the cached-over-full ROI-read speedup.
    Warn-only, like backends[]: cache timings on a loaded runner are too
    noisy to gate, so a lost speedup prints a flag, never a failure."""
    keys = sorted(set(baseline) | set(candidate))
    if not keys:
        return
    print(f"\n{'decoded-block cache':<50} {'baseline':>18} {'candidate':>18}")
    for key in keys:
        name, impl, shape = key
        label = f"{name} {impl} {shape}"

        def fmt(record):
            if not record:
                return "-"
            cell = f"{record['seconds_per_call'] * 1e9:.0f}ns"
            if record.get("hit_rate", -1) >= 0:
                cell += f" {record['hit_rate'] * 100:.0f}%h"
            return cell

        print(f"{label:<50} {fmt(baseline.get(key)):>18} "
              f"{fmt(candidate.get(key)):>18}")
    base_roi = cache_roi_speedups(baseline)
    cand_roi = cache_roi_speedups(candidate)
    for shape in sorted(set(base_roi) | set(cand_roi)):
        fmt = lambda r: f"{r:.1f}x" if r is not None else "-"
        flag = ""
        ratio = cand_roi.get(shape)
        if ratio is not None and ratio < 5.0:
            flag = "  <-- <5x hot-ROI speedup (warn-only)"
        print(f"{'roi_read cached over full ' + shape:<50} "
              f"{fmt(base_roi.get(shape)):>18} {fmt(ratio):>18}{flag}")


def load_batch(path):
    # Baselines recorded before batched evaluation existed simply lack the
    # section; an empty dict renders as "-" columns, never an error.
    return {
        (r["name"], r["impl"], r["shape"]): r
        for r in load_json(path).get("batch", [])
    }


def batch_speedups(batch):
    """batch-over-sequential ratio per (name, shape) — >= 1.5x on the
    shared3of4_i32 row is the batched-evaluation acceptance number; the
    shared3of4_i8 and noshare rows are expected to sit near 1.0x."""
    ratios = {}
    for (name, impl, shape), record in batch.items():
        if impl != "batch":
            continue
        sequential = batch.get((name, "sequential", shape))
        if sequential and record["seconds_per_call"] > 0:
            ratios[(name, shape)] = (
                sequential["seconds_per_call"] / record["seconds_per_call"]
            )
    return ratios


def print_batch_summary(baseline, candidate):
    """Batched-evaluation entries (bench_lincomb_batch) side by side, with
    the batch-over-sequential speedup per workload.  Warn-only, like
    backends[]: the ratio depends on the recording host's cache hierarchy,
    so a shrunken headline prints a flag, never a failure (the bench binary
    itself hard-gates bit-identity)."""
    keys = sorted(set(baseline) | set(candidate))
    if not keys:
        return
    print(f"\n{'batched evaluation':<50} {'baseline':>14} {'candidate':>14}")
    for key in keys:
        name, impl, shape = key
        label = f"{name} {impl} {shape}"
        fmt = lambda r: f"{r['seconds_per_call'] * 1e6:.0f}us" if r else "-"
        print(f"{label:<50} {fmt(baseline.get(key)):>14} "
              f"{fmt(candidate.get(key)):>14}")
    base_ratio = batch_speedups(baseline)
    cand_ratio = batch_speedups(candidate)
    for key in sorted(set(base_ratio) | set(cand_ratio)):
        name, shape = key
        fmt = lambda r: f"{r:.2f}x" if r is not None else "-"
        flag = ""
        ratio = cand_ratio.get(key)
        if name == "shared3of4_i32" and ratio is not None and ratio < 1.5:
            flag = "  <-- <1.5x batch speedup (warn-only)"
        print(f"{name + ' batch over sequential ' + shape:<50} "
              f"{fmt(base_ratio.get(key)):>14} {fmt(ratio):>14}{flag}")


def overlap_ratios(concurrency):
    """sharded-over-serialized aggregate throughput per (name, shape,
    clients) — the scheduler-overlap acceptance ratio."""
    ratios = {}
    for (name, shape, mode, clients), record in concurrency.items():
        if mode != "sharded":
            continue
        serialized = concurrency.get((name, shape, "serialized", clients))
        if serialized and serialized["ops_per_second"] > 0:
            ratios[(name, shape, clients)] = (
                record["ops_per_second"] / serialized["ops_per_second"]
            )
    return ratios


def print_concurrency_summary(baseline, candidate):
    """Multi-client throughput/latency side by side plus the overlap ratios.
    Informational: concurrency cells are too machine-dependent (core count,
    load) to hard-gate, and the kernel seconds_per_call gate already covers
    the underlying single-client hot paths."""
    keys = sorted(set(baseline) | set(candidate), key=str)
    if not keys:
        return
    print(f"\n{'multi-client throughput (ops/s)':<50} {'baseline':>12} {'candidate':>12}")
    for key in keys:
        name, shape, mode, clients = key
        label = f"{name} {shape} {mode} x{clients}"
        fmt = lambda r: f"{r['ops_per_second']:.1f}" if r else "-"
        print(f"{label:<50} {fmt(baseline.get(key)):>12} {fmt(candidate.get(key)):>12}")

    def latency_cell(record, field):
        # Baselines recorded before the p99 column existed simply lack the
        # key; render "-" rather than KeyError so old JSON stays comparable.
        if not record or field not in record:
            return "-"
        return f"{record[field] * 1e3:.2f}ms"

    print(f"\n{'multi-client latency p50/p95/p99':<50} {'baseline':>26} {'candidate':>26}")
    for key in keys:
        name, shape, mode, clients = key
        label = f"{name} {shape} {mode} x{clients}"
        cols = []
        for record in (baseline.get(key), candidate.get(key)):
            cols.append("/".join(
                latency_cell(record, f)
                for f in ("p50_seconds", "p95_seconds", "p99_seconds")))
        print(f"{label:<50} {cols[0]:>26} {cols[1]:>26}")
    base_overlap = overlap_ratios(baseline)
    cand_overlap = overlap_ratios(candidate)
    overlap_keys = sorted(set(base_overlap) | set(cand_overlap), key=str)
    if overlap_keys:
        print(f"\n{'overlap: sharded over serialized':<50} {'baseline':>12} {'candidate':>12}")
        for key in overlap_keys:
            name, shape, clients = key
            label = f"{name} {shape} x{clients}"
            fmt = lambda r: f"{r:.2f}x" if r is not None else "-"
            flag = ""
            ratio = cand_overlap.get(key)
            if ratio is not None and clients >= 2 and ratio < 1.2:
                flag = "  <-- <1.2x (expected only on single-core/loaded hosts)"
            print(f"{label:<50} {fmt(base_overlap.get(key)):>12} {fmt(ratio):>12}{flag}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional slowdown that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--concurrency-only",
        action="store_true",
        help="compare only the concurrency[] sections (bench_multi_client "
        "candidates have no kernel results[]); always informational",
    )
    parser.add_argument(
        "--cache-only",
        action="store_true",
        help="compare only the cache[] sections (bench_block_cache "
        "candidates have no kernel results[]); always warn-only",
    )
    parser.add_argument(
        "--batch-only",
        action="store_true",
        help="compare only the batch[] sections (bench_lincomb_batch "
        "candidates have no kernel results[]); always warn-only",
    )
    args = parser.parse_args()

    if args.concurrency_only:
        print_concurrency_summary(
            load_concurrency(args.baseline), load_concurrency(args.candidate)
        )
        return 0

    if args.cache_only:
        print_cache_summary(load_cache(args.baseline),
                            load_cache(args.candidate))
        return 0

    if args.batch_only:
        print_batch_summary(load_batch(args.baseline),
                            load_batch(args.candidate))
        return 0

    baseline = load_results(args.baseline)
    candidate = load_results(args.candidate)

    regressions = []
    missing = []
    print(f"{'benchmark':<50} {'baseline':>12} {'candidate':>12} {'ratio':>8}")
    for key in sorted(baseline):
        if key not in candidate:
            label = " ".join(filter(None, key))
            print(f"{label:<50} {'(missing in candidate)':>34}")
            missing.append(label)
            continue
        base, cand = baseline[key], candidate[key]
        ratio = cand / base if base > 0 else float("inf")
        label = " ".join(filter(None, key))
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  <-- REGRESSION"
            regressions.append((label, ratio))
        print(f"{label:<50} {base * 1e9:>10.1f}ns {cand * 1e9:>10.1f}ns {ratio:>7.2f}x{flag}")
    for key in sorted(set(candidate) - set(baseline)):
        print(f"{' '.join(filter(None, key)):<50} {'(new in candidate)':>34}")

    print_fusion_summary(baseline, candidate)
    print_expr_overhead_summary(baseline, candidate)
    print_backend_summary(load_backends(args.baseline),
                          load_backends(args.candidate))
    print_checksum_summary(load_checksum_overheads(args.baseline),
                           load_checksum_overheads(args.candidate))
    print_cache_summary(load_cache(args.baseline), load_cache(args.candidate))
    # Like concurrency below: the routine bench_micro_kernels candidate has
    # no batch[] section, and a baseline-only table would read as missing.
    candidate_batch = load_batch(args.candidate)
    if candidate_batch:
        print_batch_summary(load_batch(args.baseline), candidate_batch)
    # Engage only when the candidate actually carries concurrency cells: the
    # routine CI candidate comes from bench_micro_kernels, which has none,
    # and a silent baseline-only table would just read as missing data.
    candidate_concurrency = load_concurrency(args.candidate)
    if candidate_concurrency:
        print_concurrency_summary(load_concurrency(args.baseline),
                                  candidate_concurrency)

    failed = False
    if missing:
        print(f"\n{len(missing)} baseline benchmark(s) missing from the "
              f"candidate:", file=sys.stderr)
        for label in missing:
            print(f"  {label}", file=sys.stderr)
        failed = True
    if regressions:
        print(f"\n{len(regressions)} regression(s) above "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for label, ratio in regressions:
            print(f"  {label}: {ratio:.2f}x slower", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"\nno regressions above {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
