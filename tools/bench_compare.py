#!/usr/bin/env python3
"""Compare two BENCH_*.json files from bench_micro_kernels and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Entries are matched on (name, kind, impl, shape) and compared on
seconds_per_call.  A candidate more than --threshold slower than the baseline
is a regression; the script prints a table and exits nonzero if any entry
regressed, so it can gate CI.
"""

import argparse
import json
import sys


def load_results(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "pyblaz-bench-kernels-v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return {
        (r["name"], r["kind"], r["impl"], r["shape"]): r["seconds_per_call"]
        for r in data["results"]
    }


def fusion_ratios(results):
    """fused-over-chained speedup per (name, kind, shape) measured under both
    lincomb paths (the fused-op series from bench_fused_lincomb)."""
    ratios = {}
    for (name, kind, impl, shape), seconds in results.items():
        if impl != "fused":
            continue
        chained = results.get((name, kind, "chained", shape))
        if chained is not None and seconds > 0:
            ratios[(name, kind, shape)] = chained / seconds
    return ratios


def print_fusion_summary(baseline, candidate):
    """Side-by-side fused-over-chained ratios.  Informational only: the
    regression gate already covers the underlying seconds_per_call entries,
    so a fusion-win shrinking shows up here without double-failing the run."""
    base = fusion_ratios(baseline)
    cand = fusion_ratios(candidate)
    keys = sorted(set(base) | set(cand))
    if not keys:
        return
    print(f"\n{'fused-over-chained speedup':<50} {'baseline':>12} {'candidate':>12}")
    for key in keys:
        label = " ".join(filter(None, key))
        fmt = lambda r: f"{r:.2f}x" if r is not None else "-"
        print(f"{label:<50} {fmt(base.get(key)):>12} {fmt(cand.get(key)):>12}")


def expr_overhead_ratios(results):
    """expression-front-end cost per (name, kind, shape): the "expr" series
    (natural syntax through core/ops/expr.hpp) over the handwritten "fused"
    ops::lincomb series it flattens to.  ~1.0 is the zero-overhead claim."""
    ratios = {}
    for (name, kind, impl, shape), seconds in results.items():
        if impl != "expr":
            continue
        fused = results.get((name, kind, "fused", shape))
        if fused is not None and fused > 0:
            ratios[(name, kind, shape)] = seconds / fused
    return ratios


def print_expr_overhead_summary(baseline, candidate):
    """Side-by-side expr-over-fused ratios.  Informational like the fusion
    summary (the seconds_per_call gate covers the entries), but flags a
    candidate ratio drifting past 1.10 — the expression layer is supposed to
    be free, so sustained overhead there is a front-end bug, not noise."""
    base = expr_overhead_ratios(baseline)
    cand = expr_overhead_ratios(candidate)
    keys = sorted(set(base) | set(cand))
    if not keys:
        return
    print(f"\n{'expression cost over handwritten lincomb':<50} "
          f"{'baseline':>12} {'candidate':>12}")
    for key in keys:
        label = " ".join(filter(None, key))
        fmt = lambda r: f"{r:.2f}x" if r is not None else "-"
        flag = ""
        ratio = cand.get(key)
        if ratio is not None and ratio > 1.10:
            flag = "  <-- expected ~1.00x"
        print(f"{label:<50} {fmt(base.get(key)):>12} {fmt(ratio):>12}{flag}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional slowdown that counts as a regression (default 0.10)",
    )
    args = parser.parse_args()

    baseline = load_results(args.baseline)
    candidate = load_results(args.candidate)

    regressions = []
    missing = []
    print(f"{'benchmark':<50} {'baseline':>12} {'candidate':>12} {'ratio':>8}")
    for key in sorted(baseline):
        if key not in candidate:
            label = " ".join(filter(None, key))
            print(f"{label:<50} {'(missing in candidate)':>34}")
            missing.append(label)
            continue
        base, cand = baseline[key], candidate[key]
        ratio = cand / base if base > 0 else float("inf")
        label = " ".join(filter(None, key))
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  <-- REGRESSION"
            regressions.append((label, ratio))
        print(f"{label:<50} {base * 1e9:>10.1f}ns {cand * 1e9:>10.1f}ns {ratio:>7.2f}x{flag}")
    for key in sorted(set(candidate) - set(baseline)):
        print(f"{' '.join(filter(None, key)):<50} {'(new in candidate)':>34}")

    print_fusion_summary(baseline, candidate)
    print_expr_overhead_summary(baseline, candidate)

    failed = False
    if missing:
        print(f"\n{len(missing)} baseline benchmark(s) missing from the "
              f"candidate:", file=sys.stderr)
        for label in missing:
            print(f"  {label}", file=sys.stderr)
        failed = True
    if regressions:
        print(f"\n{len(regressions)} regression(s) above "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for label, ratio in regressions:
            print(f"  {label}: {ratio:.2f}x slower", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"\nno regressions above {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
