/// The `pyblaz` command-line tool: compress/decompress raw FP64 arrays and
/// run compressed-space statistics and distances on the results.  See
/// `pyblaz help` or tools/cli_lib.hpp for the command reference.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli_lib.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return pyblaz::cli::run(args, std::cout);
}
