#!/usr/bin/env python3
"""Fold sections from one bench JSON into another (baseline refresh helper).

Usage:
    tools/bench_merge.py BASE.json EXTRA.json [-o OUT.json]

The committed BENCH_kernels.json baseline is produced by four binaries:
bench_micro_kernels writes the kernel sections (results/speedups/
fusion_speedups/expr_overheads plus the per-SIMD-backend backends[] series),
bench_multi_client writes concurrency[], bench_block_cache writes the
decoded-block cache[] series, and bench_lincomb_batch writes the batched
expression-evaluation batch[] series (identified by name/impl/shape, merged
like any other section).
This script folds every non-empty top-level list section of EXTRA into BASE —
entries whose identity (name/kind/impl/shape/mode/clients) matches an
existing one replace it, new identities append — and writes the merged file
(in place by default), so refreshing the baseline is:

    ./build/bench_micro_kernels  BENCH_kernels.json
    ./build/bench_multi_client   BENCH_multi.json
    ./build/bench_block_cache    BENCH_cache.json
    ./build/bench_lincomb_batch  BENCH_batch.json
    tools/bench_merge.py BENCH_kernels.json BENCH_multi.json
    tools/bench_merge.py BENCH_kernels.json BENCH_cache.json
    tools/bench_merge.py BENCH_kernels.json BENCH_batch.json

(run bench_multi_client once per configuration you want recorded — e.g. the
full-size run and the CI --smoke shape — merging after each.)

Sections and identities are both derived generically, so a binary that emits
a brand-new top-level section (batch[] was the first to arrive this way)
merges without this script learning its name: an entry's identity is every
non-float value it carries (name/kind/impl/shape/mode/clients/... — config is
strings and ints), and its floats are the measurements a refresh replaces.
Non-dict entries (the notes[] strings) are their own identity, so re-merging
never duplicates them.
"""

import argparse
import json
import sys


def identity(entry):
    """The config tuple that identifies ``entry`` within its section.

    Measurements are floats (seconds, rates, ratios); configuration is
    strings, ints, and bools.  Deriving the split from the value types keeps
    the merge correct for sections this script has never heard of.  Config
    ints that merely restate the shape (elements_per_call) are constant per
    identity, so including them is harmless.
    """
    if not isinstance(entry, dict):
        return ("__scalar__", entry)
    return tuple(sorted(
        (k, v) for k, v in entry.items() if not isinstance(v, float)))


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "pyblaz-bench-kernels-v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def merge_section(base_entries, extra_entries):
    replacements = {identity(e): e for e in extra_entries}
    merged, seen = [], set()
    for entry in base_entries:
        key = identity(entry)
        merged.append(replacements.get(key, entry))
        seen.add(key)
    merged.extend(e for e in extra_entries if identity(e) not in seen)
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base")
    parser.add_argument("extra")
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default: overwrite BASE)")
    args = parser.parse_args()

    base = load(args.base)
    extra = load(args.extra)

    merged_sections = []
    for key, value in extra.items():
        if key == "schema" or not isinstance(value, list) or not value:
            continue
        base[key] = merge_section(base.get(key, []), value)
        merged_sections.append(key)
    if not merged_sections:
        sys.exit(f"{args.extra}: no non-empty list sections to merge")

    out_path = args.output or args.base
    with open(out_path, "w") as f:
        json.dump(base, f, indent=1)
        f.write("\n")
    print(f"merged {', '.join(merged_sections)} from {args.extra} "
          f"into {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
