#!/usr/bin/env python3
"""Fold sections from one bench JSON into another (baseline refresh helper).

Usage:
    tools/bench_merge.py BASE.json EXTRA.json [-o OUT.json]

The committed BENCH_kernels.json baseline is produced by three binaries:
bench_micro_kernels writes the kernel sections (results/speedups/
fusion_speedups/expr_overheads plus the per-SIMD-backend backends[] series),
bench_multi_client writes concurrency[], and bench_block_cache writes the
decoded-block cache[] series (identified by name/impl/shape, merged like any
other section).
This script folds every non-empty top-level list section of EXTRA into BASE —
entries whose identity (name/kind/impl/shape/mode/clients) matches an
existing one replace it, new identities append — and writes the merged file
(in place by default), so refreshing the baseline is:

    ./build/bench_micro_kernels BENCH_kernels.json
    ./build/bench_multi_client  BENCH_multi.json
    ./build/bench_block_cache   BENCH_cache.json
    tools/bench_merge.py BENCH_kernels.json BENCH_multi.json
    tools/bench_merge.py BENCH_kernels.json BENCH_cache.json

(run bench_multi_client once per configuration you want recorded — e.g. the
full-size run and the CI --smoke shape — merging after each.)
"""

import argparse
import json
import sys

# The configuration keys that identify an entry within a section; everything
# else in the entry is a measurement that a refresh replaces.
IDENTITY_KEYS = ("name", "kind", "impl", "shape", "mode", "clients")


def identity(entry):
    return tuple(entry.get(k) for k in IDENTITY_KEYS)


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "pyblaz-bench-kernels-v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def merge_section(base_entries, extra_entries):
    replacements = {identity(e): e for e in extra_entries}
    merged, seen = [], set()
    for entry in base_entries:
        key = identity(entry)
        merged.append(replacements.get(key, entry))
        seen.add(key)
    merged.extend(e for e in extra_entries if identity(e) not in seen)
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base")
    parser.add_argument("extra")
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default: overwrite BASE)")
    args = parser.parse_args()

    base = load(args.base)
    extra = load(args.extra)

    merged_sections = []
    for key, value in extra.items():
        if key == "schema" or not isinstance(value, list) or not value:
            continue
        base[key] = merge_section(base.get(key, []), value)
        merged_sections.append(key)
    if not merged_sections:
        sys.exit(f"{args.extra}: no non-empty list sections to merge")

    out_path = args.output or args.base
    with open(out_path, "w") as f:
        json.dump(base, f, indent=1)
        f.write("\n")
    print(f"merged {', '.join(merged_sections)} from {args.extra} "
          f"into {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
