#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray.hpp"

/// Reusable implementation of the `pyblaz` command-line tool.  Everything
/// here is a pure function of its arguments (output goes to the provided
/// stream), so the whole tool is unit-testable without spawning processes.
namespace pyblaz::cli {

/// Parse "40,40,66" into a Shape.  Throws std::invalid_argument on malformed
/// input (empty, non-numeric, or non-positive extents).
Shape parse_shape(const std::string& text);

/// Parse a float-type name ("bfloat16", "float16", "float32", "float64").
FloatType parse_float_type(const std::string& text);

/// Parse an index-type name ("int8", "int16", "int32", "int64").
IndexType parse_index_type(const std::string& text);

/// Parse a transform name ("dct", "haar").
TransformKind parse_transform(const std::string& text);

/// Read a raw little-endian FP64 file into an array of the given shape.
/// Throws std::runtime_error if the file is missing or its size does not
/// match the shape's volume.
NDArray<double> read_raw_f64(const std::string& path, const Shape& shape);

/// Write an array as raw little-endian FP64.
void write_raw_f64(const std::string& path, const NDArray<double>& array);

/// Read a serialized compressed array from disk.
CompressedArray read_compressed(const std::string& path);

/// Write a compressed array in the §IV-C serialization format.
void write_compressed(const std::string& path, const CompressedArray& array);

/// Entry point: execute one command.  @p args are the argv values after the
/// program name.  Returns a process exit code; all output (including error
/// messages) goes to @p out.
///
/// Commands:
///   compress INPUT --shape d0,d1,... --block b0,b1,... [--ftype T]
///            [--itype T] [--transform dct|haar] [--keep FRACTION] -o OUTPUT
///   decompress INPUT -o OUTPUT
///   info INPUT
///   stats INPUT
///   distance A B [--metric l2|cosine|ssim|mse|psnr|wasserstein] [--order P]
///   tune INPUT --shape d0,d1,... --target LINF [--guaranteed]
///   help
int run(const std::vector<std::string>& args, std::ostream& out);

}  // namespace pyblaz::cli
