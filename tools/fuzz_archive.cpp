/// Corruption fuzz harness for the archive containers (v1 / v2 / v3).
///
/// The invariant under test — the robustness contract the service tier
/// depends on (ISSUE 8, docs/ROBUSTNESS.md):
///
///   For ANY mutation of a valid archive, deserialize() either throws a
///   typed cc::Error or returns a structurally valid CompressedArray.
///   Never UB, never a crash, never an untyped exception.
///
/// Plus the per-format detection guarantees:
///
///   - truncation at EVERY byte length: typed error, or a decode
///     bit-identical to the reference (possible only when the dropped bytes
///     were alignment padding);
///   - v3: every single-bit flip past the 4-byte magic is *detected*
///     (typed error) — CRC-32 catches all single-bit errors.  Flips inside
///     the magic can turn a v3 stream into a well-formed v1/v2 stream, which
///     decodes as that format; the harness only requires validity there.
///   - v1/v2 carry no checksums, so payload flips may decode to garbage;
///     the harness requires typed-error-or-valid and reports the (non-
///     gating) detection rate for comparison against v3.
///
/// Deterministic: every mutated stream is a pure function of (--seed, case,
/// format, trial).  `--smoke` bounds the sweep for CI (a few seconds);
/// the default mode is the long-form audit.  Exit 0 = invariant held.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <random>
#include <string>
#include <typeinfo>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/codec/serialization.hpp"
#include "core/error/error.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/util/rng.hpp"

namespace {

using namespace pyblaz;

enum class Outcome { kTypedError, kIdentical, kValidDecode, kViolation };

struct Stats {
  std::uint64_t trials = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t identical = 0;
  std::uint64_t valid_decodes = 0;
  std::uint64_t violations = 0;

  void count(Outcome outcome) {
    ++trials;
    switch (outcome) {
      case Outcome::kTypedError: ++typed_errors; break;
      case Outcome::kIdentical: ++identical; break;
      case Outcome::kValidDecode: ++valid_decodes; break;
      case Outcome::kViolation: ++violations; break;
    }
  }
};

bool bit_identical(const CompressedArray& a, const CompressedArray& b) {
  if (a.shape != b.shape || a.block_shape != b.block_shape ||
      a.float_type != b.float_type || a.index_type != b.index_type ||
      a.transform != b.transform || !(a.mask == b.mask))
    return false;
  if (a.biggest.size() != b.biggest.size()) return false;
  // N compares bitwise, not numerically: garbage that decodes to the same
  // value class (e.g. -0.0 vs 0.0) must not pass as identical.
  if (a.biggest.size() > 0 &&
      std::memcmp(a.biggest.data(), b.biggest.data(),
                  a.biggest.size() * sizeof(double)) != 0)
    return false;
  if (a.indices.size() != b.indices.size()) return false;
  for (std::size_t k = 0; k < a.indices.size(); ++k)
    if (a.indices.get(k) != b.indices.get(k)) return false;
  return true;
}

/// Decode @p bytes and classify the result.  Anything that escapes as a
/// non-cc::Error exception is an invariant violation and gets printed.
Outcome probe(const std::vector<std::uint8_t>& bytes,
              const CompressedArray& reference, const char* what) {
  try {
    const CompressedArray decoded = deserialize(bytes);
    return bit_identical(decoded, reference) ? Outcome::kIdentical
                                             : Outcome::kValidDecode;
  } catch (const cc::Error&) {
    return Outcome::kTypedError;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "VIOLATION (%s): untyped exception %s: %s\n", what,
                 typeid(e).name(), e.what());
    return Outcome::kViolation;
  } catch (...) {
    std::fprintf(stderr, "VIOLATION (%s): unknown exception type\n", what);
    return Outcome::kViolation;
  }
}

void flip_bit(std::vector<std::uint8_t>& bytes, std::uint64_t bit) {
  bytes[static_cast<std::size_t>(bit >> 3)] ^=
      static_cast<std::uint8_t>(1u << (bit & 7));
}

struct FormatReport {
  std::string label;
  Stats truncation;
  Stats single_bit;          // All single-bit flips (or the sampled subset).
  std::uint64_t v3_missed_detections = 0;  // v3 only: post-magic flips that
                                           // did not raise a typed error.
  Stats multi_bit;
  bool failed = false;
};

/// Run the full sweep for one (case, format) pair.
FormatReport fuzz_format(const std::string& label,
                         const std::vector<std::uint8_t>& archive,
                         const CompressedArray& reference, bool is_v3,
                         std::uint64_t seed, std::uint64_t single_bit_budget,
                         std::uint64_t multi_bit_trials) {
  FormatReport report;
  report.label = label;

  // --- Truncation at every byte length (0 included: the empty stream).
  for (std::size_t len = 0; len < archive.size(); ++len) {
    std::vector<std::uint8_t> prefix(archive.begin(),
                                     archive.begin() + static_cast<long>(len));
    const Outcome outcome = probe(prefix, reference, label.c_str());
    report.truncation.count(outcome);
    if (outcome == Outcome::kViolation ||
        outcome == Outcome::kValidDecode) {
      // A truncated stream must never decode to something *different* yet
      // structurally valid — the payload is fixed-rate, a shorter stream
      // cannot hold it.
      if (outcome == Outcome::kValidDecode)
        std::fprintf(stderr,
                     "VIOLATION (%s): truncation to %zu bytes decoded to a "
                     "non-identical array\n",
                     label.c_str(), len);
      report.failed = true;
    }
  }

  // --- Single-bit flips: exhaustive when the stream is small enough,
  // otherwise a seeded sample of distinct positions.
  const std::uint64_t total_bits = archive.size() * 8;
  std::vector<std::uint64_t> positions;
  if (total_bits <= single_bit_budget) {
    positions.resize(total_bits);
    for (std::uint64_t bit = 0; bit < total_bits; ++bit) positions[bit] = bit;
  } else {
    std::mt19937_64 rng(seed ^ 0x5b1757a5u);
    positions.reserve(single_bit_budget);
    for (std::uint64_t k = 0; k < single_bit_budget; ++k)
      positions.push_back(rng() % total_bits);
  }
  std::vector<std::uint8_t> mutated;
  for (std::uint64_t bit : positions) {
    mutated = archive;
    flip_bit(mutated, bit);
    const Outcome outcome = probe(mutated, reference, label.c_str());
    report.single_bit.count(outcome);
    if (outcome == Outcome::kViolation) report.failed = true;
    if (is_v3 && bit >= 32 && outcome != Outcome::kTypedError) {
      // The v3 guarantee: every flip past the magic is covered by the
      // header CRC or a chunk CRC.  (kIdentical cannot happen — a flipped
      // bit is in some checksummed byte — so any non-error is a miss.)
      std::fprintf(stderr,
                   "VIOLATION (%s): single-bit flip at bit %llu escaped "
                   "checksum detection\n",
                   label.c_str(), static_cast<unsigned long long>(bit));
      ++report.v3_missed_detections;
      report.failed = true;
    }
  }

  // --- Multi-bit flips (2..16 bits per trial), seeded.
  std::mt19937_64 rng(seed ^ 0xc0ffee11u);
  for (std::uint64_t trial = 0; trial < multi_bit_trials; ++trial) {
    mutated = archive;
    const int nbits = 2 + static_cast<int>(rng() % 15);
    for (int b = 0; b < nbits; ++b)
      flip_bit(mutated, rng() % total_bits);
    const Outcome outcome = probe(mutated, reference, label.c_str());
    report.multi_bit.count(outcome);
    if (outcome == Outcome::kViolation) report.failed = true;
  }
  return report;
}

void print_report(const FormatReport& r) {
  const auto pct = [](std::uint64_t part, std::uint64_t whole) {
    return whole == 0 ? 100.0 : 100.0 * static_cast<double>(part) /
                                    static_cast<double>(whole);
  };
  std::printf(
      "%-34s truncation %6llu (err %llu, ident %llu)  "
      "1-bit %6llu (detected %.1f%%)  multi-bit %5llu (detected %.1f%%)%s\n",
      r.label.c_str(), static_cast<unsigned long long>(r.truncation.trials),
      static_cast<unsigned long long>(r.truncation.typed_errors),
      static_cast<unsigned long long>(r.truncation.identical),
      static_cast<unsigned long long>(r.single_bit.trials),
      pct(r.single_bit.typed_errors, r.single_bit.trials),
      static_cast<unsigned long long>(r.multi_bit.trials),
      pct(r.multi_bit.typed_errors, r.multi_bit.trials),
      r.failed ? "  FAILED" : "");
}

struct FuzzCase {
  const char* name;
  Shape array_shape;
  Shape block_shape;
  FloatType float_type;
  IndexType index_type;
  TransformKind transform;
  double keep_fraction;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t seed = 1009;
  std::uint64_t flips = 0;  // 0 = mode default.
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--seed" && a + 1 < argc) {
      seed = std::strtoull(argv[++a], nullptr, 10);
    } else if (arg == "--flips" && a + 1 < argc) {
      flips = std::strtoull(argv[++a], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_archive [--smoke] [--seed S] [--flips N]\n");
      return 2;
    }
  }
  // Acceptance floor is >= 1000 seeded flips per format; the defaults sit
  // above it in both modes (single-bit sweeps are exhaustive for the small
  // case on top of this budget).
  // 4000 keeps the small case exhaustive (~3.2k bits) even in smoke mode.
  const std::uint64_t single_bit_budget = flips ? flips : (smoke ? 4000 : 8000);
  const std::uint64_t multi_bit_trials = flips ? flips : (smoke ? 1000 : 4000);

  std::vector<FuzzCase> cases = {
      // Small: exhaustive single-bit coverage of every header/payload byte.
      {"16x16/b4x4/f32/i8/dct", Shape{16, 16}, Shape{4, 4},
       FloatType::kFloat32, IndexType::kInt8, TransformKind::kDCT, 1.0},
      // Multi-chunk: exercises the chunk table and per-chunk checksums.
      {"256x256/b4x4/f32/i8/dct", Shape{256, 256}, Shape{4, 4},
       FloatType::kFloat32, IndexType::kInt8, TransformKind::kDCT, 1.0},
  };
  if (!smoke) {
    cases.push_back({"33x9x5/b4x4x2/f64/i16/haar", Shape{33, 9, 5},
                     Shape{4, 4, 2}, FloatType::kFloat64, IndexType::kInt16,
                     TransformKind::kHaar, 1.0});
    cases.push_back({"64x64/b8x8/bf16/i8/dct/pruned", Shape{64, 64},
                     Shape{8, 8}, FloatType::kBFloat16, IndexType::kInt8,
                     TransformKind::kDCT, 0.25});
  }

  bool failed = false;
  for (const FuzzCase& c : cases) {
    CompressorSettings settings{.block_shape = c.block_shape,
                                .float_type = c.float_type,
                                .index_type = c.index_type,
                                .transform = c.transform};
    if (c.keep_fraction < 1.0)
      settings.mask =
          PruningMask::keep_fraction(c.block_shape, c.keep_fraction);
    Compressor compressor(settings);
    Rng rng(static_cast<std::uint64_t>(1601) + seed);
    const NDArray<double> array = random_smooth(c.array_shape, rng);
    const CompressedArray reference = compressor.compress(array);

    struct Variant {
      const char* tag;
      std::vector<std::uint8_t> bytes;
      bool is_v3;
    };
    const std::vector<Variant> variants = {
        {"v1", serialize_v1(reference), false},
        {"v2", serialize_v2(reference), false},
        {"v3", serialize(reference), true},
    };
    for (const Variant& v : variants) {
      const FormatReport report =
          fuzz_format(std::string(c.name) + "/" + v.tag, v.bytes, reference,
                      v.is_v3, seed, single_bit_budget, multi_bit_trials);
      print_report(report);
      failed = failed || report.failed;
    }
  }

  if (failed) {
    std::fprintf(stderr, "fuzz_archive: INVARIANT VIOLATED\n");
    return 1;
  }
  std::printf("fuzz_archive: invariant held (%s mode, seed %llu)\n",
              smoke ? "smoke" : "full", static_cast<unsigned long long>(seed));
  return 0;
}
