#include "tools/cli_lib.hpp"

#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/codec/ratio.hpp"
#include "core/codec/serialization.hpp"
#include "core/codec/tuning.hpp"
#include "core/ops/ops.hpp"
#include "core/util/table.hpp"

namespace pyblaz::cli {

namespace {

/// Minimal option parser: positional arguments plus --key value pairs.
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

ParsedArgs parse_args(const std::vector<std::string>& args, std::size_t skip) {
  ParsedArgs parsed;
  for (std::size_t k = skip; k < args.size(); ++k) {
    const std::string& arg = args[k];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (key == "guaranteed") {  // Flag without value.
        parsed.options[key] = "1";
      } else if (k + 1 < args.size()) {
        parsed.options[key] = args[++k];
      } else {
        throw std::invalid_argument("option --" + key + " needs a value");
      }
    } else if (arg == "-o" && k + 1 < args.size()) {
      parsed.options["output"] = args[++k];
    } else {
      parsed.positional.push_back(arg);
    }
  }
  return parsed;
}

CompressorSettings settings_from(const ParsedArgs& args) {
  CompressorSettings settings;
  settings.block_shape = parse_shape(args.get("block", "8,8"));
  settings.float_type = parse_float_type(args.get("ftype", "float32"));
  settings.index_type = parse_index_type(args.get("itype", "int8"));
  settings.transform = parse_transform(args.get("transform", "dct"));
  if (args.has("keep")) {
    const double keep = std::stod(args.get("keep"));
    settings.mask = PruningMask::keep_fraction(settings.block_shape, keep);
  }
  return settings;
}

int command_compress(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.empty() || !args.has("shape") || !args.has("output")) {
    out << "usage: compress INPUT --shape d0,d1,... --block b0,b1,... "
           "[--ftype T] [--itype T] [--transform dct|haar] [--keep F] -o OUT\n";
    return 2;
  }
  const Shape shape = parse_shape(args.get("shape"));
  CompressorSettings settings = settings_from(args);
  Compressor compressor(settings);
  NDArray<double> array = read_raw_f64(args.positional[0], shape);

  CompressionDiagnostics diagnostics;
  CompressedArray compressed = compressor.compress(array, &diagnostics);
  write_compressed(args.get("output"), compressed);

  out << "compressed " << shape.to_string() << " with " << settings.describe()
      << "\n";
  out << "ratio (vs FP64): " << Table::fmt(formula_ratio(settings, shape), 3)
      << "\n";
  out << "guaranteed L2 error bound: " << Table::sci(diagnostics.total_l2())
      << "\n";
  return 0;
}

int command_decompress(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.empty() || !args.has("output")) {
    out << "usage: decompress INPUT -o OUTPUT\n";
    return 2;
  }
  CompressedArray compressed = read_compressed(args.positional[0]);
  CompressorSettings settings{.block_shape = compressed.block_shape,
                              .float_type = compressed.float_type,
                              .index_type = compressed.index_type,
                              .transform = compressed.transform,
                              .mask = compressed.mask};
  Compressor compressor(settings);
  write_raw_f64(args.get("output"), compressor.decompress(compressed));
  out << "decompressed to " << compressed.shape.to_string() << " raw FP64\n";
  return 0;
}

int command_info(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.empty()) {
    out << "usage: info INPUT\n";
    return 2;
  }
  CompressedArray c = read_compressed(args.positional[0]);
  out << "shape:        " << c.shape.to_string() << "\n";
  out << "block shape:  " << c.block_shape.to_string() << "\n";
  out << "float type:   " << name(c.float_type) << "\n";
  out << "index type:   " << name(c.index_type) << "\n";
  out << "transform:    " << name(c.transform) << "\n";
  out << "kept/block:   " << c.kept_per_block() << "/" << c.block_shape.volume()
      << "\n";
  out << "blocks:       " << c.num_blocks() << "\n";
  out << "layout bits:  " << paper_layout_bits(c) << "\n";
  const double ratio = 64.0 * static_cast<double>(c.shape.volume()) /
                       static_cast<double>(paper_layout_bits(c));
  out << "ratio vs F64: " << Table::fmt(ratio, 3) << "\n";
  return 0;
}

int command_stats(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.empty()) {
    out << "usage: stats INPUT\n";
    return 2;
  }
  CompressedArray c = read_compressed(args.positional[0]);
  out << "mean:               " << Table::sci(ops::mean(c), 6) << "\n";
  out << "mean (unpadded):    " << Table::sci(ops::mean_unpadded(c), 6) << "\n";
  out << "variance:           " << Table::sci(ops::variance(c), 6) << "\n";
  out << "variance (unpadded):" << Table::sci(ops::variance_unpadded(c), 6) << "\n";
  out << "std deviation:      " << Table::sci(ops::standard_deviation(c), 6) << "\n";
  out << "L2 norm:            " << Table::sci(ops::l2_norm(c), 6) << "\n";
  out << "sum:                " << Table::sci(ops::sum(c), 6) << "\n";
  return 0;
}

int command_distance(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.size() < 2) {
    out << "usage: distance A B [--metric l2|cosine|ssim|mse|psnr|wasserstein]"
           " [--order P]\n";
    return 2;
  }
  CompressedArray a = read_compressed(args.positional[0]);
  CompressedArray b = read_compressed(args.positional[1]);
  const std::string metric = args.get("metric", "l2");
  double value = 0.0;
  if (metric == "l2") {
    value = ops::l2_norm(ops::subtract(a, b));
  } else if (metric == "cosine") {
    value = ops::cosine_similarity(a, b);
  } else if (metric == "ssim") {
    value = ops::structural_similarity(a, b);
  } else if (metric == "mse") {
    value = ops::mean_squared_error(a, b);
  } else if (metric == "psnr") {
    value = ops::psnr(a, b);
  } else if (metric == "wasserstein") {
    value = ops::wasserstein_distance(a, b, std::stod(args.get("order", "2")));
  } else {
    out << "unknown metric: " << metric << "\n";
    return 2;
  }
  out << metric << ": " << Table::sci(value, 6) << "\n";
  return 0;
}

int command_tune(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.empty() || !args.has("shape") || !args.has("target")) {
    out << "usage: tune INPUT --shape d0,d1,... --target LINF [--guaranteed]\n";
    return 2;
  }
  const Shape shape = parse_shape(args.get("shape"));
  NDArray<double> sample = read_raw_f64(args.positional[0], shape);
  TuningOptions options;
  options.use_guaranteed_bound = args.has("guaranteed");
  TuningResult result =
      tune_for_linf(sample, std::stod(args.get("target")), options);
  if (!result.best) {
    out << "no settings met the target (evaluated " << result.evaluated.size()
        << " candidates)\n";
    return 1;
  }
  out << "best settings: " << result.best->settings.describe() << "\n";
  out << "ratio:         " << Table::fmt(result.best->ratio, 3) << "\n";
  out << "Linf error:    " << Table::sci(result.best->linf_error) << "\n";
  return 0;
}

int command_help(std::ostream& out) {
  out << "pyblaz — operations directly on compressed arrays\n"
         "commands:\n"
         "  compress INPUT --shape d0,d1,.. --block b0,b1,.. [--ftype T]\n"
         "           [--itype T] [--transform dct|haar] [--keep F] -o OUT\n"
         "  decompress INPUT -o OUTPUT\n"
         "  info INPUT\n"
         "  stats INPUT\n"
         "  distance A B [--metric l2|cosine|ssim|mse|psnr|wasserstein] [--order P]\n"
         "  tune INPUT --shape d0,d1,.. --target LINF [--guaranteed]\n"
         "  help\n";
  return 0;
}

}  // namespace

Shape parse_shape(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("empty shape");
  std::vector<index_t> dims;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    std::size_t consumed = 0;
    long long value = 0;
    try {
      value = std::stoll(token, &consumed);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad shape component: '" + token + "'");
    }
    if (consumed != token.size() || value <= 0)
      throw std::invalid_argument("bad shape component: '" + token + "'");
    dims.push_back(static_cast<index_t>(value));
  }
  if (dims.empty()) throw std::invalid_argument("empty shape");
  return Shape(std::move(dims));
}

FloatType parse_float_type(const std::string& text) {
  for (FloatType t : kAllFloatTypes)
    if (name(t) == text) return t;
  throw std::invalid_argument("unknown float type: " + text);
}

IndexType parse_index_type(const std::string& text) {
  for (IndexType t : kAllIndexTypes)
    if (name(t) == text) return t;
  throw std::invalid_argument("unknown index type: " + text);
}

TransformKind parse_transform(const std::string& text) {
  if (text == "dct") return TransformKind::kDCT;
  if (text == "haar") return TransformKind::kHaar;
  throw std::invalid_argument("unknown transform: " + text);
}

NDArray<double> read_raw_f64(const std::string& path, const Shape& shape) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open " + path);
  std::vector<double> data(static_cast<std::size_t>(shape.volume()));
  file.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(double)));
  if (file.gcount() !=
      static_cast<std::streamsize>(data.size() * sizeof(double)))
    throw std::runtime_error(path + " is smaller than shape " + shape.to_string());
  // Reject trailing data: the shape must describe the whole file.
  char extra;
  if (file.read(&extra, 1))
    throw std::runtime_error(path + " is larger than shape " + shape.to_string());
  return NDArray<double>(shape, std::move(data));
}

void write_raw_f64(const std::string& path, const NDArray<double>& array) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open " + path + " for writing");
  file.write(reinterpret_cast<const char*>(array.data()),
             static_cast<std::streamsize>(static_cast<std::size_t>(array.size()) *
                                          sizeof(double)));
  if (!file) throw std::runtime_error("failed writing " + path);
}

CompressedArray read_compressed(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                  std::istreambuf_iterator<char>());
  return deserialize(bytes);
}

void write_compressed(const std::string& path, const CompressedArray& array) {
  const std::vector<std::uint8_t> bytes = serialize(array);
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open " + path + " for writing");
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("failed writing " + path);
}

int run(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty()) return command_help(out);
  const std::string& command = args[0];
  try {
    const ParsedArgs parsed = parse_args(args, 1);
    if (command == "compress") return command_compress(parsed, out);
    if (command == "decompress") return command_decompress(parsed, out);
    if (command == "info") return command_info(parsed, out);
    if (command == "stats") return command_stats(parsed, out);
    if (command == "distance") return command_distance(parsed, out);
    if (command == "tune") return command_tune(parsed, out);
    if (command == "help" || command == "--help") return command_help(out);
    out << "unknown command: " << command << "\n";
    command_help(out);
    return 2;
  } catch (const std::exception& error) {
    out << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace pyblaz::cli
