#include "core/blocking/blocking.hpp"

#include <gtest/gtest.h>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

struct BlockingCase {
  Shape array_shape;
  Shape block_shape;
};

class BlockingCases : public ::testing::TestWithParam<BlockingCase> {};

TEST_P(BlockingCases, RoundTripIsExact) {
  // Blocking is the only exactly invertible compression step (§III-A).
  const auto& param = GetParam();
  Rng rng(5);
  NDArray<double> array = random_normal(param.array_shape, rng);
  Blocked blocked = block_array(array, param.block_shape);
  NDArray<double> restored = unblock_array(blocked);
  EXPECT_EQ(restored, array);
}

TEST_P(BlockingCases, GridAndSizes) {
  const auto& param = GetParam();
  Rng rng(6);
  NDArray<double> array = random_normal(param.array_shape, rng);
  Blocked blocked = block_array(array, param.block_shape);
  EXPECT_EQ(blocked.block_grid,
            Shape::ceil_div(param.array_shape, param.block_shape));
  EXPECT_EQ(static_cast<index_t>(blocked.data.size()),
            blocked.num_blocks() * blocked.block_volume());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockingCases,
    ::testing::Values(BlockingCase{Shape{16}, Shape{4}},          // 1D exact.
                      BlockingCase{Shape{17}, Shape{4}},          // 1D ragged.
                      BlockingCase{Shape{16, 16}, Shape{8, 8}},   // 2D exact.
                      BlockingCase{Shape{15, 17}, Shape{8, 8}},   // 2D ragged.
                      BlockingCase{Shape{8, 8}, Shape{16, 16}},   // Block > array.
                      BlockingCase{Shape{3, 224, 224}, Shape{4, 4, 4}},  // Paper.
                      BlockingCase{Shape{20, 256, 256}, Shape{4, 16, 16}},
                      BlockingCase{Shape{5, 6, 7, 8}, Shape{2, 2, 2, 2}}));

TEST(Blocking, PaperExampleReshape) {
  // (3, 224, 224) with (4, 4, 4) blocks -> grid (1, 56, 56) (§III-A b).
  NDArray<double> array(Shape{3, 224, 224}, 1.0);
  Blocked blocked = block_array(array, Shape{4, 4, 4});
  EXPECT_EQ(blocked.block_grid, Shape({1, 56, 56}));
  EXPECT_EQ(blocked.num_blocks(), 3136);
  EXPECT_EQ(blocked.block_volume(), 64);
}

TEST(Blocking, PaddingIsZero) {
  // A 3-element 1D array in 4-blocks: the 4th slot must be zero.
  NDArray<double> array(Shape{3}, {5.0, 6.0, 7.0});
  Blocked blocked = block_array(array, Shape{4});
  EXPECT_EQ(blocked.data[0], 5.0);
  EXPECT_EQ(blocked.data[1], 6.0);
  EXPECT_EQ(blocked.data[2], 7.0);
  EXPECT_EQ(blocked.data[3], 0.0);
}

TEST(Blocking, BlockContentsAreContiguousAndCorrect) {
  // 4x4 array, 2x2 blocks: block (1,0) holds rows 2-3, cols 0-1.
  NDArray<double> array(Shape{4, 4});
  for (index_t k = 0; k < 16; ++k) array[k] = static_cast<double>(k);
  Blocked blocked = block_array(array, Shape{2, 2});
  ASSERT_EQ(blocked.num_blocks(), 4);
  const double* block10 = blocked.block(2);  // Grid (2,2), row-major index 2.
  EXPECT_EQ(block10[0], 8.0);   // array[2][0]
  EXPECT_EQ(block10[1], 9.0);   // array[2][1]
  EXPECT_EQ(block10[2], 12.0);  // array[3][0]
  EXPECT_EQ(block10[3], 13.0);  // array[3][1]
}

TEST(Blocking, SingleElementBlocks) {
  // 1-element blocks: blocked layout equals the flat array (the Wasserstein
  // exactness limit of §IV-B).
  Rng rng(8);
  NDArray<double> array = random_normal(Shape{5, 3}, rng);
  Blocked blocked = block_array(array, Shape{1, 1});
  EXPECT_EQ(blocked.num_blocks(), 15);
  for (index_t k = 0; k < 15; ++k) EXPECT_EQ(blocked.data[static_cast<std::size_t>(k)], array[k]);
}

}  // namespace
}  // namespace pyblaz
