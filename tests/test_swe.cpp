#include "sim/shallow_water/swe.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"

namespace {

using pyblaz::FloatType;
using pyblaz::index_t;
using pyblaz::NDArray;
using pyblaz::Shape;
using sim::ShallowWaterModel;
using sim::SweConfig;

SweConfig small_config() {
  SweConfig config;
  config.nx = 32;
  config.ny = 64;
  config.lx = 3.2e5;
  config.ly = 6.4e5;
  config.seamount_sigma = 5e4;  // Scale the seamount to the smaller basin.
  return config;
}

TEST(ShallowWater, GridShapes) {
  ShallowWaterModel model(small_config());
  EXPECT_EQ(model.surface_height().shape(), Shape({32, 64}));
  EXPECT_EQ(model.topography().shape(), Shape({32, 64}));
}

TEST(ShallowWater, TopographyHasSeamount) {
  SweConfig config = small_config();
  ShallowWaterModel model(config);
  const NDArray<double>& depth = model.topography();
  // The center is shallower than the corners by roughly the seamount height.
  const double center = depth.at({16, 32});
  const double corner = depth.at({0, 0});
  EXPECT_LT(center, corner);
  EXPECT_NEAR(corner, config.depth, 1.0);
  EXPECT_NEAR(corner - center, config.seamount_height, 0.15 * config.seamount_height);
}

TEST(ShallowWater, StaysStableOverManySteps) {
  ShallowWaterModel model(small_config());
  model.run(2000);
  EXPECT_TRUE(std::isfinite(pyblaz::max_abs(model.surface_height())));
  EXPECT_LT(pyblaz::max_abs(model.surface_height()), 50.0);  // Meters.
  EXPECT_LT(model.max_speed(), 10.0);                        // m/s.
}

TEST(ShallowWater, ApproximatelyConservesVolume) {
  // The closed-basin continuity equation conserves the integral of eta.
  ShallowWaterModel model(small_config());
  const double before = model.total_height_anomaly();
  model.run(500);
  const double after = model.total_height_anomaly();
  const double domain_area = 3.2e5 * 6.4e5;
  // Allow a tiny drift relative to a 1 mm uniform change.
  EXPECT_LT(std::fabs(after - before), 1e-3 * domain_area);
}

TEST(ShallowWater, WindSpinsUpCirculation) {
  SweConfig config = small_config();
  config.seed = 3;
  ShallowWaterModel model(config);
  model.run(1000);
  EXPECT_GT(model.max_speed(), 1e-4);  // The gyres are moving.
}

TEST(ShallowWater, DeterministicGivenSeed) {
  ShallowWaterModel a(small_config());
  ShallowWaterModel b(small_config());
  a.run(100);
  b.run(100);
  EXPECT_EQ(a.surface_height(), b.surface_height());
}

TEST(ShallowWater, PrecisionChangesPerturbTheField) {
  // The Fig. 4 premise: FP16 and FP32 runs of the same configuration drift
  // apart, with structured (not pointwise-identical) differences.
  SweConfig c32 = small_config();
  c32.precision = FloatType::kFloat32;
  SweConfig c16 = small_config();
  c16.precision = FloatType::kFloat16;

  ShallowWaterModel m32(c32), m16(c16);
  m32.run(800);
  m16.run(800);

  const double diff = pyblaz::reference::linf_distance(m32.surface_height(),
                                                       m16.surface_height());
  EXPECT_GT(diff, 1e-6);  // Perturbation exists...
  EXPECT_LT(diff, 5.0);   // ...but the low-precision run did not blow up.
}

TEST(ShallowWater, HigherPrecisionTracksFloat64Closer) {
  SweConfig c64 = small_config();
  SweConfig c32 = small_config();
  c32.precision = FloatType::kFloat32;
  SweConfig c16 = small_config();
  c16.precision = FloatType::kFloat16;

  ShallowWaterModel m64(c64), m32(c32), m16(c16);
  const int steps = 600;
  m64.run(steps);
  m32.run(steps);
  m16.run(steps);

  const double err32 = pyblaz::reference::l2_distance(m64.surface_height(),
                                                      m32.surface_height());
  const double err16 = pyblaz::reference::l2_distance(m64.surface_height(),
                                                      m16.surface_height());
  EXPECT_LT(err32, err16);
}

// ---------------------------------------------------------------------------
// RK2 (Heun) stepping: two forward-backward stages combined as
// S' = S0 + (dt/2)(k1 + k2), with both stages' tendencies exported for the
// compressed-form stepper's 5-term height / 3-term momentum expressions.

TEST(ShallowWaterRk2, UpdateMatchesExportedTendenciesExactly) {
  ShallowWaterModel model(small_config());
  model.run(3);  // Leave the initial condition so tendencies are nontrivial.
  const NDArray<double> u0 = model.velocity_u();
  const NDArray<double> v0 = model.velocity_v();
  const NDArray<double> eta0 = model.surface_height();

  sim::SweRk2Tendencies stages;
  model.step_rk2(&stages);
  const double hd = 0.5 * model.config().dt;

  // Bitwise: at kFloat64 the applied update IS the exported term-by-term
  // combine (the same spelling the compressed tracks' expressions use).
  for (index_t k = 0; k < u0.size(); ++k)
    ASSERT_EQ(model.velocity_u()[k],
              u0[k] + hd * stages.stage1.du[k] + hd * stages.stage2.du[k]);
  for (index_t k = 0; k < v0.size(); ++k)
    ASSERT_EQ(model.velocity_v()[k],
              v0[k] + hd * stages.stage1.dv[k] + hd * stages.stage2.dv[k]);
  for (index_t k = 0; k < eta0.size(); ++k)
    ASSERT_EQ(model.surface_height()[k],
              eta0[k] - hd * stages.stage1.flux_x[k] -
                  hd * stages.stage1.flux_y[k] - hd * stages.stage2.flux_x[k] -
                  hd * stages.stage2.flux_y[k]);
}

TEST(ShallowWaterRk2, CountsAsOneStepAndStaysStable) {
  ShallowWaterModel model(small_config());
  for (int k = 0; k < 25; ++k) model.step_rk2();
  EXPECT_EQ(model.steps_taken(), 25);
  EXPECT_TRUE(std::isfinite(pyblaz::max_abs(model.surface_height())));
  EXPECT_LT(pyblaz::max_abs(model.surface_height()), 50.0);  // Meters.
  EXPECT_LT(model.max_speed(), 10.0);                        // m/s.
}

TEST(ShallowWaterRk2, ApproximatelyConservesVolume) {
  SweConfig config = small_config();
  ShallowWaterModel model(config);
  const double before = model.total_height_anomaly();
  for (int k = 0; k < 15; ++k) model.step_rk2();
  const double after = model.total_height_anomaly();
  const double domain_area = config.lx * config.ly;
  // Both stages' continuity updates telescope over the closed basin, so the
  // averaged combine conserves volume to rounding as well.
  EXPECT_LT(std::fabs(after - before), 1e-3 * domain_area);
}

TEST(ShallowWaterRk2, StaysCloseToForwardBackwardOverShortHorizons) {
  // Same operator, different integrator: over a few steps the trajectories
  // must agree to leading order (they differ at O(dt^2) per step), which
  // pins that stage 2 really is evaluated at the predicted state rather
  // than, say, twice at the start state.
  ShallowWaterModel fb(small_config());
  ShallowWaterModel rk2(small_config());
  for (int k = 0; k < 10; ++k) {
    fb.step();
    rk2.step_rk2();
  }
  double worst = 0.0;
  for (index_t k = 0; k < fb.surface_height().size(); ++k)
    worst = std::max(worst, std::fabs(fb.surface_height()[k] -
                                      rk2.surface_height()[k]));
  const double scale = pyblaz::max_abs(fb.surface_height());
  // worst == 0 would mean stage 2 degenerated to stage 1 (RK2 collapses to
  // the FB step); O(scale) would mean a different ODE.  The measured gap sits
  // around 8% of scale after 10 steps — a real integrator difference.
  EXPECT_GT(worst, 0.0);
  EXPECT_LT(worst, 0.25 * scale);
}

// ---------------------------------------------------------------------------
// RK4 stepping: four forward-backward stages combined as
// S' = S0 + (dt/6)(k1 + 2 k2 + 2 k3 + k4), with all four stages' tendencies
// exported for the compressed-form stepper's 9-term height / 5-term momentum
// expressions.

TEST(ShallowWaterRk4, UpdateMatchesExportedTendenciesExactly) {
  ShallowWaterModel model(small_config());
  model.run(3);  // Leave the initial condition so tendencies are nontrivial.
  const NDArray<double> u0 = model.velocity_u();
  const NDArray<double> v0 = model.velocity_v();
  const NDArray<double> eta0 = model.surface_height();

  sim::SweRk4Tendencies stages;
  model.step_rk4(&stages);
  const double sixth = model.config().dt / 6.0;
  const double third = model.config().dt / 3.0;

  // Bitwise: at kFloat64 the applied update IS the exported term-by-term
  // combine (the same spelling the compressed tracks' expressions use).
  for (index_t k = 0; k < u0.size(); ++k)
    ASSERT_EQ(model.velocity_u()[k],
              u0[k] + sixth * stages.stage1.du[k] + third * stages.stage2.du[k] +
                  third * stages.stage3.du[k] + sixth * stages.stage4.du[k]);
  for (index_t k = 0; k < v0.size(); ++k)
    ASSERT_EQ(model.velocity_v()[k],
              v0[k] + sixth * stages.stage1.dv[k] + third * stages.stage2.dv[k] +
                  third * stages.stage3.dv[k] + sixth * stages.stage4.dv[k]);
  for (index_t k = 0; k < eta0.size(); ++k)
    ASSERT_EQ(model.surface_height()[k],
              eta0[k] - sixth * stages.stage1.flux_x[k] -
                  sixth * stages.stage1.flux_y[k] -
                  third * stages.stage2.flux_x[k] -
                  third * stages.stage2.flux_y[k] -
                  third * stages.stage3.flux_x[k] -
                  third * stages.stage3.flux_y[k] -
                  sixth * stages.stage4.flux_x[k] -
                  sixth * stages.stage4.flux_y[k]);
}

TEST(ShallowWaterRk4, CountsAsOneStepAndStaysStable) {
  ShallowWaterModel model(small_config());
  for (int k = 0; k < 25; ++k) model.step_rk4();
  EXPECT_EQ(model.steps_taken(), 25);
  EXPECT_TRUE(std::isfinite(pyblaz::max_abs(model.surface_height())));
  EXPECT_LT(pyblaz::max_abs(model.surface_height()), 50.0);  // Meters.
  EXPECT_LT(model.max_speed(), 10.0);                        // m/s.
}

TEST(ShallowWaterRk4, ApproximatelyConservesVolume) {
  SweConfig config = small_config();
  ShallowWaterModel model(config);
  const double before = model.total_height_anomaly();
  for (int k = 0; k < 15; ++k) model.step_rk4();
  const double after = model.total_height_anomaly();
  const double domain_area = config.lx * config.ly;
  // Every stage's continuity update telescopes over the closed basin, so the
  // Simpson-weighted combine conserves volume to rounding as well.
  EXPECT_LT(std::fabs(after - before), 1e-3 * domain_area);
}

TEST(ShallowWaterRk4, StaysCloseToRk2OverShortHorizons) {
  // Same operator, different integrator order: over a few steps the RK2 and
  // RK4 trajectories must agree to leading order (they differ at O(dt^3) per
  // step), which pins that stages 2-4 really are evaluated at the advanced
  // states rather than all at the start state.
  ShallowWaterModel rk2(small_config());
  ShallowWaterModel rk4(small_config());
  for (int k = 0; k < 10; ++k) {
    rk2.step_rk2();
    rk4.step_rk4();
  }
  double worst = 0.0;
  for (index_t k = 0; k < rk2.surface_height().size(); ++k)
    worst = std::max(worst, std::fabs(rk2.surface_height()[k] -
                                      rk4.surface_height()[k]));
  const double scale = pyblaz::max_abs(rk2.surface_height());
  // worst == 0 would mean the later stages degenerated; O(scale) would mean
  // a different ODE.
  EXPECT_GT(worst, 0.0);
  EXPECT_LT(worst, 0.25 * scale);
}

TEST(ShallowWater, StepCounterAdvances) {
  ShallowWaterModel model(small_config());
  EXPECT_EQ(model.steps_taken(), 0);
  model.run(7);
  EXPECT_EQ(model.steps_taken(), 7);
}

}  // namespace
