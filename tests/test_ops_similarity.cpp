#include <gtest/gtest.h>

#include <cmath>

#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

CompressorSettings fine_settings() {
  return {.block_shape = Shape{8, 8},
          .float_type = FloatType::kFloat64,
          .index_type = IndexType::kInt32};
}

TEST(OpsSsim, SelfSimilarityIsOne) {
  Compressor compressor(fine_settings());
  Rng rng(401);
  CompressedArray a = compressor.compress(random_smooth(Shape{32, 32}, rng));
  EXPECT_NEAR(ops::structural_similarity(a, a), 1.0, 1e-9);
}

TEST(OpsSsim, SymmetricInArguments) {
  Compressor compressor(fine_settings());
  Rng rng(403);
  CompressedArray a = compressor.compress(random_smooth(Shape{32, 32}, rng));
  CompressedArray b = compressor.compress(random_smooth(Shape{32, 32}, rng));
  EXPECT_NEAR(ops::structural_similarity(a, b), ops::structural_similarity(b, a),
              1e-12);
}

TEST(OpsSsim, MatchesUncompressedReference) {
  Compressor compressor(fine_settings());
  Rng rng(407);
  // Normalized-to-[0,1]-style data, as in the MRI experiment.
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  x.map_inplace([](double v) { return 0.5 + 0.4 * v; });
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  y.map_inplace([](double v) { return 0.5 + 0.4 * v; });

  const double compressed =
      ops::structural_similarity(compressor.compress(x), compressor.compress(y));
  EXPECT_NEAR(compressed, reference::structural_similarity(x, y), 1e-4);
}

TEST(OpsSsim, DecreasesWithPerturbationStrength) {
  Compressor compressor(fine_settings());
  Rng rng(409);
  NDArray<double> base = random_smooth(Shape{32, 32}, rng);
  base.map_inplace([](double v) { return 0.5 + 0.3 * v; });
  CompressedArray a = compressor.compress(base);

  double previous = 1.1;
  for (double amplitude : {0.02, 0.1, 0.3}) {
    Rng noise_rng(411);
    NDArray<double> perturbed =
        add(base, scale(random_normal(Shape{32, 32}, noise_rng), amplitude));
    const double ssim = ops::structural_similarity(a, compressor.compress(perturbed));
    EXPECT_LT(ssim, previous) << "amplitude " << amplitude;
    previous = ssim;
  }
}

TEST(OpsSsim, InUnitInterval) {
  Compressor compressor(fine_settings());
  Rng rng(419);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  x.map_inplace([](double v) { return 0.5 + 0.3 * v; });
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  y.map_inplace([](double v) { return 0.5 + 0.3 * v; });
  const double s =
      ops::structural_similarity(compressor.compress(x), compressor.compress(y));
  EXPECT_GE(s, -1.0);  // The structure term can be negative in general...
  EXPECT_LE(s, 1.0 + 1e-12);
}

TEST(OpsSsim, WeightsChangeTheScore) {
  Compressor compressor(fine_settings());
  Rng rng(421);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  x.map_inplace([](double v) { return 0.5 + 0.3 * v; });
  NDArray<double> y = add_scalar(x, 0.2);  // Same structure, shifted luminance.
  CompressedArray a = compressor.compress(x);
  CompressedArray b = compressor.compress(y);

  ops::SsimParams luminance_only{.contrast_weight = 0.0, .structure_weight = 0.0};
  ops::SsimParams structure_only{.luminance_weight = 0.0, .contrast_weight = 0.0};

  // A pure luminance shift should score poorly on luminance, perfectly on
  // structure.
  EXPECT_LT(ops::structural_similarity(a, b, luminance_only), 0.999);
  EXPECT_NEAR(ops::structural_similarity(a, b, structure_only), 1.0, 1e-6);
}

TEST(OpsSsim, StabilizersPreventDivisionByZeroOnConstants) {
  Compressor compressor(fine_settings());
  NDArray<double> x(Shape{16, 16}, 0.0);
  NDArray<double> y(Shape{16, 16}, 0.0);
  const double s =
      ops::structural_similarity(compressor.compress(x), compressor.compress(y));
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_NEAR(s, 1.0, 1e-9);  // Identical constants are perfectly similar.
}

TEST(OpsSsimMap, AllOnesForIdenticalArrays) {
  Compressor compressor(fine_settings());
  Rng rng(433);
  CompressedArray a = compressor.compress(random_smooth(Shape{32, 32}, rng));
  NDArray<double> map = ops::structural_similarity_map(a, a);
  EXPECT_EQ(map.shape(), Shape({4, 4}));
  for (index_t k = 0; k < map.size(); ++k) EXPECT_NEAR(map[k], 1.0, 1e-9);
}

TEST(OpsSsimMap, LocalizesPerturbation) {
  // Perturbing one block must drop that block's SSIM while leaving the rest
  // near 1 — the spatial resolution the global score lacks.
  Compressor compressor(fine_settings());
  Rng rng(437);
  NDArray<double> base = random_smooth(Shape{32, 32}, rng);
  base.map_inplace([](double v) { return 0.5 + 0.3 * v; });
  NDArray<double> perturbed = base;
  Rng noise(439);
  for (index_t i = 8; i < 16; ++i)
    for (index_t j = 16; j < 24; ++j)
      perturbed[i * 32 + j] += 0.3 * noise.normal();

  NDArray<double> map = ops::structural_similarity_map(
      compressor.compress(base), compressor.compress(perturbed));
  // Block (1, 2) holds rows 8-15, cols 16-23 in the 8x8-block grid.
  const double hit = map.at({1, 2});
  for (index_t bi = 0; bi < 4; ++bi)
    for (index_t bj = 0; bj < 4; ++bj) {
      if (bi == 1 && bj == 2) continue;
      EXPECT_GT(map.at({bi, bj}), 0.97) << bi << "," << bj;
    }
  EXPECT_LT(hit, 0.8);
}

TEST(OpsSsimMap, ConsistentWithBlockStatistics) {
  // Spot-check one block entry against Algorithm 12 applied to that block's
  // raw data.
  Compressor compressor(fine_settings());
  Rng rng(441);
  NDArray<double> x = random_smooth(Shape{16, 16}, rng);
  NDArray<double> y = random_smooth(Shape{16, 16}, rng);
  x.map_inplace([](double v) { return 0.5 + 0.3 * v; });
  y.map_inplace([](double v) { return 0.5 + 0.3 * v; });

  NDArray<double> map = ops::structural_similarity_map(compressor.compress(x),
                                                       compressor.compress(y));
  // Extract block (0, 0) and compute its global SSIM directly.
  NDArray<double> bx(Shape{8, 8}), by(Shape{8, 8});
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j) {
      bx[i * 8 + j] = x[i * 16 + j];
      by[i * 8 + j] = y[i * 16 + j];
    }
  EXPECT_NEAR(map.at({0, 0}), reference::structural_similarity(bx, by), 1e-3);
}

TEST(OpsSsim, ThrowsOnLayoutMismatch) {
  Compressor c8(fine_settings());
  Compressor c4({.block_shape = Shape{4, 4},
                 .float_type = FloatType::kFloat64,
                 .index_type = IndexType::kInt32});
  Rng rng(431);
  NDArray<double> x = random_smooth(Shape{16, 16}, rng);
  EXPECT_THROW(ops::structural_similarity(c8.compress(x), c4.compress(x)),
               std::invalid_argument);
}

}  // namespace
}  // namespace pyblaz
