#include "sim/fission/fission.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"

namespace {

using pyblaz::index_t;
using pyblaz::NDArray;
using pyblaz::Shape;

TEST(Fission, TimeStepsMatchTheDataset) {
  const auto& steps = sim::fission_time_steps();
  ASSERT_EQ(steps.size(), 15u);
  EXPECT_EQ(steps.front(), 665);
  EXPECT_EQ(steps.back(), 699);
  EXPECT_TRUE(std::is_sorted(steps.begin(), steps.end()));
  // The scission pair must be adjacent samples.
  const auto it = std::find(steps.begin(), steps.end(), 690);
  ASSERT_NE(it, steps.end());
  EXPECT_EQ(*(it + 1), 692);
}

TEST(Fission, GridShape) {
  NDArray<double> density = sim::neutron_density(665);
  EXPECT_EQ(density.shape(), Shape({40, 40, 66}));
}

TEST(Fission, DensityIsNonnegativeAndFinite) {
  for (int step : {665, 690, 692, 699}) {
    NDArray<double> density = sim::neutron_density(step);
    for (index_t k = 0; k < density.size(); ++k) {
      ASSERT_GE(density[k], 0.0) << "step " << step;
      ASSERT_TRUE(std::isfinite(density[k]));
    }
  }
}

TEST(Fission, GeometryEncodesScission) {
  // Neck present before 690, gone at 692 (the topology change).
  EXPECT_GT(sim::nucleus_geometry(690).neck_amplitude, 0.0);
  EXPECT_EQ(sim::nucleus_geometry(692).neck_amplitude, 0.0);
  // Fragments separate.
  EXPECT_GT(sim::nucleus_geometry(692).separation,
            sim::nucleus_geometry(690).separation);
  // Elongation grows monotonically pre-scission.
  EXPECT_LT(sim::nucleus_geometry(665).separation,
            sim::nucleus_geometry(685).separation);
}

TEST(Fission, NeckDensityDropsAtScission) {
  // Density at the grid center (the neck) collapses across 690 -> 692.
  NDArray<double> before = sim::neutron_density(690);
  NDArray<double> after = sim::neutron_density(692);
  const double center_before = before.at({20, 20, 33});
  const double center_after = after.at({20, 20, 33});
  EXPECT_GT(center_before, 5.0 * std::max(center_after, 1e-6));
}

TEST(Fission, ScissionIsTheLargestAdjacentStepChange) {
  // The headline property: ||D_t - D_{t+1}||_2 over the negative-log data
  // peaks at the 690 -> 692 transition.
  const auto& steps = sim::fission_time_steps();
  double best = -1.0;
  std::pair<int, int> best_pair{0, 0};
  NDArray<double> previous = sim::negative_log_density(steps[0]);
  for (std::size_t k = 1; k < steps.size(); ++k) {
    NDArray<double> current = sim::negative_log_density(steps[k]);
    const double distance = pyblaz::reference::l2_distance(previous, current);
    if (distance > best) {
      best = distance;
      best_pair = {steps[k - 1], steps[k]};
    }
    previous = std::move(current);
  }
  EXPECT_EQ(best_pair, (std::pair<int, int>{690, 692}));
}

TEST(Fission, NoiseEventsCreateSecondaryPeaks) {
  // Adjacent steps around a noise event differ more than a quiet pair.
  NDArray<double> d685 = sim::negative_log_density(685);
  NDArray<double> d686 = sim::negative_log_density(686);
  NDArray<double> d687 = sim::negative_log_density(687);
  NDArray<double> d688 = sim::negative_log_density(688);

  const double noisy = pyblaz::reference::l2_distance(d685, d686);
  const double quiet = pyblaz::reference::l2_distance(d687, d688);
  EXPECT_GT(noisy, 1.5 * quiet);
}

TEST(Fission, NegativeLogTransformInvertsOrder) {
  // -log is monotone decreasing: the density peak is the nlog minimum.
  NDArray<double> density = sim::neutron_density(665);
  NDArray<double> nlog = sim::negative_log_density(665);
  index_t peak = 0;
  for (index_t k = 1; k < density.size(); ++k)
    if (density[k] > density[peak]) peak = k;
  index_t trough = 0;
  for (index_t k = 1; k < nlog.size(); ++k)
    if (nlog[k] < nlog[trough]) trough = k;
  EXPECT_EQ(peak, trough);
}

TEST(Fission, DeterministicPerStep) {
  NDArray<double> a = sim::neutron_density(687);
  NDArray<double> b = sim::neutron_density(687);
  EXPECT_EQ(a, b);
}

TEST(Fission, CustomGridIsRespected) {
  sim::FissionConfig config;
  config.grid = Shape{16, 16, 32};
  NDArray<double> density = sim::neutron_density(690, config);
  EXPECT_EQ(density.shape(), Shape({16, 16, 32}));
}

}  // namespace
