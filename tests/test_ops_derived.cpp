/// Tests for the derived compressed-space metrics (linear combination, MSE,
/// PSNR, Pearson correlation, blockwise L2, mixed-domain dot).

#include <gtest/gtest.h>

#include <cmath>

#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

CompressorSettings fine_settings(Shape block = Shape{8, 8}) {
  return {.block_shape = std::move(block),
          .float_type = FloatType::kFloat64,
          .index_type = IndexType::kInt32};
}

TEST(OpsLinearCombination, MatchesUncompressedCombination) {
  Compressor compressor(fine_settings());
  Rng rng(1201);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  CompressedArray combo = ops::linear_combination(2.5, compressor.compress(x),
                                                  -1.5, compressor.compress(y));
  NDArray<double> truth = add(scale(x, 2.5), scale(y, -1.5));
  EXPECT_LT(reference::mean_absolute_error(compressor.decompress(combo), truth),
            1e-5 * max_abs(truth));
}

TEST(OpsLinearCombination, UnitCoefficientsEqualAdd) {
  Compressor compressor(fine_settings());
  Rng rng(1203);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray b = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray combo = ops::linear_combination(1.0, a, 1.0, b);
  CompressedArray added = ops::add(a, b);
  EXPECT_EQ(combo.indices, added.indices);
  EXPECT_EQ(combo.biggest, added.biggest);
}

TEST(OpsLinearCombination, CancellingCombinationIsZero) {
  Compressor compressor(fine_settings());
  Rng rng(1207);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  NDArray<double> zero =
      compressor.decompress(ops::linear_combination(3.0, a, -3.0, a));
  for (index_t k = 0; k < zero.size(); ++k) EXPECT_EQ(zero[k], 0.0);
}

TEST(OpsMse, MatchesUncompressedMse) {
  Compressor compressor(fine_settings());
  Rng rng(1211);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  const double truth =
      reference::l2_distance(x, y) * reference::l2_distance(x, y) /
      static_cast<double>(x.size());
  EXPECT_NEAR(ops::mean_squared_error(compressor.compress(x), compressor.compress(y)),
              truth, 1e-5 * truth + 1e-12);
}

TEST(OpsMse, ZeroForIdenticalArrays) {
  Compressor compressor(fine_settings());
  Rng rng(1213);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_NEAR(ops::mean_squared_error(a, a), 0.0, 1e-15);
}

TEST(OpsPsnr, InfiniteForIdenticalFiniteForDifferent) {
  Compressor compressor(fine_settings());
  Rng rng(1217);
  NDArray<double> x = random_smooth(Shape{16, 16}, rng);
  CompressedArray a = compressor.compress(x);
  EXPECT_TRUE(std::isinf(ops::psnr(a, a)));

  NDArray<double> y = add_scalar(x, 0.1);
  const double db = ops::psnr(a, compressor.compress(y));
  EXPECT_TRUE(std::isfinite(db));
  // MSE = 0.01, peak = 1 -> PSNR = 20 dB.
  EXPECT_NEAR(db, 20.0, 0.1);
}

TEST(OpsPsnr, MorePerturbationLowerPsnr) {
  Compressor compressor(fine_settings());
  Rng rng(1219);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(x);
  double previous = std::numeric_limits<double>::infinity();
  for (double amplitude : {0.01, 0.05, 0.25}) {
    Rng noise_rng(1221);
    NDArray<double> y = add(x, scale(random_normal(Shape{32, 32}, noise_rng), amplitude));
    const double db = ops::psnr(a, compressor.compress(y));
    EXPECT_LT(db, previous);
    previous = db;
  }
}

TEST(OpsPearson, MatchesUncompressedCorrelation) {
  Compressor compressor(fine_settings());
  Rng rng(1223);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = add(scale(x, 0.7), scale(random_smooth(Shape{32, 32}, rng), 0.5));
  const double truth = reference::covariance(x, y) /
                       (reference::standard_deviation(x) *
                        reference::standard_deviation(y));
  EXPECT_NEAR(ops::pearson_correlation(compressor.compress(x), compressor.compress(y)),
              truth, 1e-4);
}

TEST(OpsPearson, PerfectAndAntiCorrelation) {
  Compressor compressor(fine_settings());
  Rng rng(1227);
  NDArray<double> x = random_smooth(Shape{16, 16}, rng);
  CompressedArray a = compressor.compress(x);
  EXPECT_NEAR(ops::pearson_correlation(a, a), 1.0, 1e-9);
  EXPECT_NEAR(ops::pearson_correlation(a, ops::negate(a)), -1.0, 1e-9);
}

TEST(OpsPearson, CorrectOnRaggedShapes) {
  // Uses padding-corrected statistics underneath.
  Compressor compressor(fine_settings());
  Rng rng(1229);
  NDArray<double> x = add_scalar(random_smooth(Shape{30, 29}, rng), 1.0);
  NDArray<double> y = add_scalar(random_smooth(Shape{30, 29}, rng), -2.0);
  const double truth = reference::covariance(x, y) /
                       (reference::standard_deviation(x) *
                        reference::standard_deviation(y));
  EXPECT_NEAR(ops::pearson_correlation(compressor.compress(x), compressor.compress(y)),
              truth, 1e-3);
}

TEST(OpsBlockwiseL2, MatchesPerBlockNorms) {
  Compressor compressor(fine_settings(Shape{4, 4}));
  Rng rng(1231);
  NDArray<double> x = random_smooth(Shape{8, 8}, rng);
  NDArray<double> norms = ops::blockwise_l2_norm(compressor.compress(x));
  ASSERT_EQ(norms.shape(), Shape({2, 2}));
  for (index_t bi = 0; bi < 2; ++bi)
    for (index_t bj = 0; bj < 2; ++bj) {
      double squares = 0.0;
      for (index_t i = 0; i < 4; ++i)
        for (index_t j = 0; j < 4; ++j) {
          const double v = x[(bi * 4 + i) * 8 + (bj * 4 + j)];
          squares += v * v;
        }
      EXPECT_NEAR(norms[bi * 2 + bj], std::sqrt(squares), 1e-6);
    }
}

TEST(OpsMixedDot, MatchesUncompressedDot) {
  Compressor compressor(fine_settings());
  Rng rng(1233);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> weights = random_smooth(Shape{32, 32}, rng);
  EXPECT_NEAR(ops::dot(compressor.compress(x), weights), reference::dot(x, weights),
              1e-5 * std::fabs(reference::dot(x, weights)) + 1e-8);
}

TEST(OpsMixedDot, AgreesWithCompressedDotUpToBinning) {
  Compressor compressor(fine_settings());
  Rng rng(1237);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(x);
  EXPECT_NEAR(ops::dot(a, y), ops::dot(a, compressor.compress(y)),
              1e-5 * std::fabs(reference::dot(x, y)) + 1e-8);
}

TEST(OpsMixedDot, HandlesRaggedShapes) {
  Compressor compressor(fine_settings());
  Rng rng(1239);
  NDArray<double> x = random_smooth(Shape{30, 29}, rng);
  NDArray<double> w = random_smooth(Shape{30, 29}, rng);
  EXPECT_NEAR(ops::dot(compressor.compress(x), w), reference::dot(x, w),
              1e-5 * std::fabs(reference::dot(x, w)) + 1e-8);
}

TEST(OpsMixedDot, ThrowsOnShapeMismatch) {
  Compressor compressor(fine_settings());
  Rng rng(1241);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  NDArray<double> wrong(Shape{8, 8}, 1.0);
  EXPECT_THROW(ops::dot(a, wrong), std::invalid_argument);
}

TEST(OpsMixedDot, RespectsPruning) {
  // With pruned high frequencies, the mixed dot sees only the kept
  // coefficients — same as dotting against the decompressed array.
  CompressorSettings settings = fine_settings();
  settings.mask = PruningMask::keep_fraction(Shape{8, 8}, 0.25);
  Compressor compressor(settings);
  Rng rng(1243);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> w = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(x);
  const double via_decompress = reference::dot(compressor.decompress(a), w);
  EXPECT_NEAR(ops::dot(a, w), via_decompress,
              1e-5 * std::fabs(via_decompress) + 1e-8);
}

}  // namespace
}  // namespace pyblaz
