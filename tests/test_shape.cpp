#include "core/ndarray/shape.hpp"

#include <gtest/gtest.h>

namespace pyblaz {
namespace {

TEST(Shape, VolumeAndNdim) {
  EXPECT_EQ(Shape({3, 224, 224}).volume(), 150528);
  EXPECT_EQ(Shape({3, 224, 224}).ndim(), 3);
  EXPECT_EQ(Shape({7}).volume(), 7);
  EXPECT_EQ(Shape({}).volume(), 1);  // Scalar convention.
}

TEST(Shape, Strides) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, OffsetOfIsRowMajor) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.offset_of({0, 0, 0}), 0);
  EXPECT_EQ(s.offset_of({0, 0, 3}), 3);
  EXPECT_EQ(s.offset_of({0, 1, 0}), 4);
  EXPECT_EQ(s.offset_of({1, 0, 0}), 12);
  EXPECT_EQ(s.offset_of({1, 2, 3}), 23);
}

TEST(Shape, IndicesOfInvertsOffsetOf) {
  const Shape s{3, 5, 7};
  for (index_t offset = 0; offset < s.volume(); ++offset) {
    EXPECT_EQ(s.offset_of(s.indices_of(offset)), offset);
  }
}

TEST(Shape, CeilDiv) {
  // The paper's running example: (3, 224, 224) with (4, 4, 4) blocks.
  const Shape grid = Shape::ceil_div(Shape{3, 224, 224}, Shape{4, 4, 4});
  EXPECT_EQ(grid, Shape({1, 56, 56}));
  EXPECT_EQ(grid.volume(), 3136);

  EXPECT_EQ(Shape::ceil_div(Shape{8, 8}, Shape{8, 8}), Shape({1, 1}));
  EXPECT_EQ(Shape::ceil_div(Shape{9, 8}, Shape{8, 8}), Shape({2, 1}));
  EXPECT_EQ(Shape::ceil_div(Shape{1, 1}, Shape{16, 16}), Shape({1, 1}));
}

TEST(Shape, Mul) {
  EXPECT_EQ(Shape::mul(Shape{1, 56, 56}, Shape{4, 4, 4}), Shape({4, 224, 224}));
}

TEST(Shape, AllPowersOfTwo) {
  EXPECT_TRUE(Shape({4, 8, 16}).all_powers_of_two());
  EXPECT_TRUE(Shape({1}).all_powers_of_two());
  EXPECT_FALSE(Shape({3, 4}).all_powers_of_two());
  EXPECT_FALSE(Shape({0}).all_powers_of_two());
  EXPECT_FALSE(Shape({6}).all_powers_of_two());
}

TEST(Shape, ToString) {
  EXPECT_EQ(Shape({4, 4}).to_string(), "(4, 4)");
  EXPECT_EQ(Shape({7}).to_string(), "(7)");
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, ForEachIndexVisitsAllInRowMajorOrder) {
  const Shape s{2, 3};
  std::vector<std::vector<index_t>> visited;
  for_each_index(s, [&](const std::vector<index_t>& idx) { visited.push_back(idx); });
  ASSERT_EQ(visited.size(), 6u);
  EXPECT_EQ(visited[0], (std::vector<index_t>{0, 0}));
  EXPECT_EQ(visited[1], (std::vector<index_t>{0, 1}));
  EXPECT_EQ(visited[2], (std::vector<index_t>{0, 2}));
  EXPECT_EQ(visited[3], (std::vector<index_t>{1, 0}));
  EXPECT_EQ(visited[5], (std::vector<index_t>{1, 2}));
}

}  // namespace
}  // namespace pyblaz
