/// The compressed-form simulation stepper (src/sim/compressed_stepper.*):
/// persistent compressed state advanced by natural expression-template
/// updates.  Pins the acceptance properties — full compressed u/v/h SWE
/// stepping tracks the uncompressed reference within the chained-path error
/// envelope, momentum tendencies reconstruct the model's own update exactly
/// — plus rebin accounting (fused does one pass per track per update), the
/// fission exposure integral, thread-count invariance, and the generic
/// expression-advance engine.

#include "sim/compressed_stepper.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/expr.hpp"
#include "core/ops/ops.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

CompressorSettings swe_track_settings() {
  return {.block_shape = Shape{16, 16},
          .float_type = FloatType::kFloat32,
          .index_type = IndexType::kInt16};
}

sim::SweConfig small_swe() {
  sim::SweConfig config;
  config.nx = 32;
  config.ny = 64;
  config.lx = 3.2e5;
  config.ly = 6.4e5;
  config.seamount_sigma = 4e4;
  return config;
}

TEST(SweTendencies, StepWithTendenciesMatchesPlainStep) {
  // Exporting the tendencies must not perturb the model: two models from the
  // same config, one stepping plainly and one exporting, stay bit-identical.
  sim::ShallowWaterModel plain(small_swe());
  sim::ShallowWaterModel exporting(small_swe());
  for (int k = 0; k < 5; ++k) {
    plain.step();
    sim::SweTendencies tendencies;
    exporting.step(&tendencies);
    ASSERT_EQ(tendencies.flux_x.shape(), plain.surface_height().shape());
    ASSERT_EQ(tendencies.flux_y.shape(), plain.surface_height().shape());
    ASSERT_EQ(tendencies.du.shape(), plain.velocity_u().shape());
    ASSERT_EQ(tendencies.dv.shape(), plain.velocity_v().shape());
  }
  EXPECT_EQ(plain.surface_height(), exporting.surface_height());
  EXPECT_EQ(plain.velocity_u(), exporting.velocity_u());
  EXPECT_EQ(plain.velocity_v(), exporting.velocity_v());
  EXPECT_EQ(plain.max_speed(), exporting.max_speed());
}

TEST(SweTendencies, TendenciesReconstructTheHeightUpdate) {
  // eta' = eta - dt * flux_x - dt * flux_y, exactly the update the model
  // applied (float64 precision, so no post-step rounding intervenes).
  sim::ShallowWaterModel model(small_swe());
  model.run(3);
  const NDArray<double> before = model.surface_height();
  sim::SweTendencies tendencies;
  model.step(&tendencies);
  const NDArray<double>& after = model.surface_height();
  const double dt = model.config().dt;
  for (index_t k = 0; k < after.size(); ++k) {
    const double reconstructed =
        before[k] - dt * (tendencies.flux_x[k] + tendencies.flux_y[k]);
    EXPECT_NEAR(after[k], reconstructed, 1e-15) << "cell " << k;
  }
}

TEST(SweTendencies, TendenciesReconstructTheMomentumUpdates) {
  // u' = u + dt * du and v' = v + dt * dv, bit-exactly: the model applies
  // the named tendency locals it exports, and the closed-wall faces carry
  // zero tendency (the velocities there are pinned to zero).
  sim::ShallowWaterModel model(small_swe());
  model.run(3);
  const NDArray<double> u_before = model.velocity_u();
  const NDArray<double> v_before = model.velocity_v();
  sim::SweTendencies tendencies;
  model.step(&tendencies);
  const double dt = model.config().dt;

  const NDArray<double>& u_after = model.velocity_u();
  for (index_t k = 0; k < u_after.size(); ++k)
    EXPECT_EQ(u_after[k], u_before[k] + dt * tendencies.du[k]) << "u " << k;
  const NDArray<double>& v_after = model.velocity_v();
  for (index_t k = 0; k < v_after.size(); ++k)
    EXPECT_EQ(v_after[k], v_before[k] + dt * tendencies.dv[k]) << "v " << k;

  // Wall faces: u is pinned on the x-walls, v on the y-walls.
  const index_t nx = model.config().nx;
  const index_t ny = model.config().ny;
  for (index_t j = 0; j < ny; ++j) {
    EXPECT_EQ(tendencies.du[0 * ny + j], 0.0);
    EXPECT_EQ(tendencies.du[nx * ny + j], 0.0);
  }
  for (index_t i = 0; i < nx; ++i) {
    EXPECT_EQ(tendencies.dv[i * (ny + 1) + 0], 0.0);
    EXPECT_EQ(tendencies.dv[i * (ny + 1) + ny], 0.0);
  }
}

TEST(CompressedSweStepper, FusedErrorNoWorseThanChained) {
  // The acceptance property: compressed-form stepping (one fused lincomb per
  // track per step) tracks the uncompressed reference at least as accurately
  // as the chained per-op path it replaces.  The 3-term height update does
  // strictly fewer rebins fused (1 vs 2), so its bound is strict; the 2-term
  // momentum updates rebin once on both paths and differ only in the chained
  // path's float-type rounding of the scaled bin scales, so u/v are pinned
  // to the chained-path error *envelope* rather than strict dominance.
  const int steps = 30;
  sim::CompressedShallowWaterStepper fused(small_swe(), swe_track_settings(),
                                           sim::LincombPath::kFused);
  sim::CompressedShallowWaterStepper chained(small_swe(), swe_track_settings(),
                                             sim::LincombPath::kChained);
  fused.run(steps);
  chained.run(steps);

  // Both steppers advanced the same model trajectory.
  EXPECT_EQ(fused.model().surface_height(), chained.model().surface_height());
  EXPECT_EQ(fused.model().velocity_u(), chained.model().velocity_u());

  const double fused_h = fused.max_abs_height_error();
  const double chained_h = chained.max_abs_height_error();
  EXPECT_LE(fused_h, chained_h + 1e-12);

  const double fused_u = fused.max_abs_u_error();
  const double chained_u = chained.max_abs_u_error();
  EXPECT_LE(fused_u, 1.05 * chained_u + 1e-12);
  const double fused_v = fused.max_abs_v_error();
  const double chained_v = chained.max_abs_v_error();
  EXPECT_LE(fused_v, 1.05 * chained_v + 1e-12);

  // And every compressed track is a faithful shadow of its reference field.
  const double h_scale = max_abs(fused.model().surface_height());
  ASSERT_GT(h_scale, 0.0);
  EXPECT_LT(fused_h, 0.05 * h_scale);
  const double u_scale = max_abs(fused.model().velocity_u());
  ASSERT_GT(u_scale, 0.0);
  EXPECT_LT(fused_u, 0.05 * u_scale);
  const double v_scale = max_abs(fused.model().velocity_v());
  ASSERT_GT(v_scale, 0.0);
  EXPECT_LT(fused_v, 0.05 * v_scale);
}

TEST(CompressedSweStepper, RebinAccounting) {
  // Fused: one rebin per track per step (h, u, v).  Chained: one per binary
  // op — two for the 3-term height update, one for each 2-term momentum
  // update.
  const int steps = 4;
  sim::CompressedShallowWaterStepper fused(small_swe(), swe_track_settings(),
                                           sim::LincombPath::kFused);
  sim::CompressedShallowWaterStepper chained(small_swe(), swe_track_settings(),
                                             sim::LincombPath::kChained);
  fused.run(steps);
  chained.run(steps);
  EXPECT_EQ(fused.rebin_passes(), 3 * steps);
  EXPECT_EQ(chained.rebin_passes(), 4 * steps);
}

TEST(CompressedSweStepper, BitIdenticalAcrossThreadCounts) {
  auto run_track = [] {
    sim::CompressedShallowWaterStepper stepper(
        small_swe(), swe_track_settings(), sim::LincombPath::kFused);
    stepper.run(3);
    return std::make_tuple(
        stepper.compressed_height().biggest, stepper.compressed_height().indices,
        stepper.compressed_u().biggest, stepper.compressed_u().indices,
        stepper.compressed_v().biggest, stepper.compressed_v().indices);
  };
  parallel::set_num_threads(1);
  const auto reference = run_track();
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    EXPECT_EQ(run_track(), reference) << threads << " threads";
  }
  parallel::set_num_threads(0);
}

// ---------------------------------------------------------------------------
// RK2 (Heun) on the expression front end: the height track advances by one
// fused 5-operand expression per step (the compressed_lincomb5 bench shape
// end to end), each momentum track by a 3-operand one.

TEST(CompressedSweStepperRk2, TracksReferenceAndFusedHeightBeatsChained) {
  const int steps = 15;
  sim::CompressedShallowWaterStepper fused(small_swe(), swe_track_settings(),
                                           sim::LincombPath::kFused,
                                           sim::SweScheme::kRk2);
  sim::CompressedShallowWaterStepper chained(small_swe(), swe_track_settings(),
                                             sim::LincombPath::kChained,
                                             sim::SweScheme::kRk2);
  fused.run(steps);
  chained.run(steps);

  EXPECT_EQ(fused.model().steps_taken(), steps);
  EXPECT_EQ(fused.model().surface_height(), chained.model().surface_height());

  // 5-term height update: 1 rebin fused vs 4 chained — strict dominance,
  // and the widest arity gap the SWE stepper exercises.
  EXPECT_LE(fused.max_abs_height_error(),
            chained.max_abs_height_error() + 1e-12);
  // 3-term momentum updates: 1 rebin fused vs 2 chained.
  EXPECT_LE(fused.max_abs_u_error(), chained.max_abs_u_error() + 1e-12);
  EXPECT_LE(fused.max_abs_v_error(), chained.max_abs_v_error() + 1e-12);

  // Every compressed track faithfully shadows its RK2 reference field.
  const double h_scale = max_abs(fused.model().surface_height());
  ASSERT_GT(h_scale, 0.0);
  EXPECT_LT(fused.max_abs_height_error(), 0.05 * h_scale);
  const double u_scale = max_abs(fused.model().velocity_u());
  ASSERT_GT(u_scale, 0.0);
  EXPECT_LT(fused.max_abs_u_error(), 0.05 * u_scale);
  const double v_scale = max_abs(fused.model().velocity_v());
  ASSERT_GT(v_scale, 0.0);
  EXPECT_LT(fused.max_abs_v_error(), 0.05 * v_scale);
}

TEST(CompressedSweStepperRk2, RebinAccounting) {
  // Fused: still one rebin per track per step.  Chained: one per binary op —
  // four for the 5-term height combine, two for each 3-term momentum one.
  const int steps = 3;
  sim::CompressedShallowWaterStepper fused(small_swe(), swe_track_settings(),
                                           sim::LincombPath::kFused,
                                           sim::SweScheme::kRk2);
  sim::CompressedShallowWaterStepper chained(small_swe(), swe_track_settings(),
                                             sim::LincombPath::kChained,
                                             sim::SweScheme::kRk2);
  fused.run(steps);
  chained.run(steps);
  EXPECT_EQ(fused.rebin_passes(), 3 * steps);
  EXPECT_EQ(chained.rebin_passes(), 8 * steps);
}

TEST(CompressedSweStepperRk2, BitIdenticalAcrossThreadCounts) {
  auto run_track = [] {
    sim::CompressedShallowWaterStepper stepper(
        small_swe(), swe_track_settings(), sim::LincombPath::kFused,
        sim::SweScheme::kRk2);
    stepper.run(3);
    return std::make_tuple(
        stepper.compressed_height().biggest, stepper.compressed_height().indices,
        stepper.compressed_u().biggest, stepper.compressed_u().indices,
        stepper.compressed_v().biggest, stepper.compressed_v().indices);
  };
  parallel::set_num_threads(1);
  const auto reference = run_track();
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    EXPECT_EQ(run_track(), reference) << threads << " threads";
  }
  parallel::set_num_threads(0);
}

// ---------------------------------------------------------------------------
// RK4 on the expression front end: the height track advances by one fused
// 9-operand expression per step — the widest combine in the tree — each
// momentum track by a 5-operand one.

TEST(CompressedSweStepperRk4, TracksReferenceAndFusedHeightBeatsChained) {
  const int steps = 15;
  sim::CompressedShallowWaterStepper fused(small_swe(), swe_track_settings(),
                                           sim::LincombPath::kFused,
                                           sim::SweScheme::kRk4);
  sim::CompressedShallowWaterStepper chained(small_swe(), swe_track_settings(),
                                             sim::LincombPath::kChained,
                                             sim::SweScheme::kRk4);
  fused.run(steps);
  chained.run(steps);

  EXPECT_EQ(fused.model().steps_taken(), steps);
  EXPECT_EQ(fused.model().surface_height(), chained.model().surface_height());

  // 9-term height update: 1 rebin fused vs 8 chained — strict dominance,
  // and the widest arity gap in the stepper.
  EXPECT_LE(fused.max_abs_height_error(),
            chained.max_abs_height_error() + 1e-12);
  // 5-term momentum updates: 1 rebin fused vs 4 chained.
  EXPECT_LE(fused.max_abs_u_error(), chained.max_abs_u_error() + 1e-12);
  EXPECT_LE(fused.max_abs_v_error(), chained.max_abs_v_error() + 1e-12);

  // Every compressed track faithfully shadows its RK4 reference field.
  const double h_scale = max_abs(fused.model().surface_height());
  ASSERT_GT(h_scale, 0.0);
  EXPECT_LT(fused.max_abs_height_error(), 0.05 * h_scale);
  const double u_scale = max_abs(fused.model().velocity_u());
  ASSERT_GT(u_scale, 0.0);
  EXPECT_LT(fused.max_abs_u_error(), 0.05 * u_scale);
  const double v_scale = max_abs(fused.model().velocity_v());
  ASSERT_GT(v_scale, 0.0);
  EXPECT_LT(fused.max_abs_v_error(), 0.05 * v_scale);
}

TEST(CompressedSweStepperRk4, RebinAccounting) {
  // Fused: still one rebin per track per step.  Chained: one per binary op —
  // eight for the 9-term height combine, four for each 5-term momentum one.
  const int steps = 3;
  sim::CompressedShallowWaterStepper fused(small_swe(), swe_track_settings(),
                                           sim::LincombPath::kFused,
                                           sim::SweScheme::kRk4);
  sim::CompressedShallowWaterStepper chained(small_swe(), swe_track_settings(),
                                             sim::LincombPath::kChained,
                                             sim::SweScheme::kRk4);
  fused.run(steps);
  chained.run(steps);
  EXPECT_EQ(fused.rebin_passes(), 3 * steps);
  EXPECT_EQ(chained.rebin_passes(), 16 * steps);
}

TEST(CompressedSweStepperRk4, BitIdenticalAcrossThreadCounts) {
  auto run_track = [] {
    sim::CompressedShallowWaterStepper stepper(
        small_swe(), swe_track_settings(), sim::LincombPath::kFused,
        sim::SweScheme::kRk4);
    stepper.run(3);
    return std::make_tuple(
        stepper.compressed_height().biggest, stepper.compressed_height().indices,
        stepper.compressed_u().biggest, stepper.compressed_u().indices,
        stepper.compressed_v().biggest, stepper.compressed_v().indices);
  };
  parallel::set_num_threads(1);
  const auto reference = run_track();
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    EXPECT_EQ(run_track(), reference) << threads << " threads";
  }
  parallel::set_num_threads(0);
}

TEST(CompressedFissionExposure, FusedErrorNoWorseThanChainedAndSmall) {
  sim::FissionConfig config;
  config.grid = Shape{16, 16, 32};
  const CompressorSettings settings{.block_shape = Shape{8, 8, 8},
                                    .float_type = FloatType::kFloat32,
                                    .index_type = IndexType::kInt16};
  sim::CompressedFissionExposure fused(config, settings,
                                       sim::LincombPath::kFused);
  sim::CompressedFissionExposure chained(config, settings,
                                         sim::LincombPath::kChained);
  fused.run_to_end();
  chained.run_to_end();
  EXPECT_TRUE(fused.done());

  const double fused_error = fused.max_abs_error();
  const double chained_error = chained.max_abs_error();
  EXPECT_LE(fused_error, chained_error + 1e-12);

  const double scale = max_abs(fused.reference_exposure());
  ASSERT_GT(scale, 0.0);
  EXPECT_LT(fused_error, 0.02 * scale);

  // 14 trapezoid intervals: one fused rebin each vs. two chained.
  EXPECT_EQ(fused.rebin_passes(), 14);
  EXPECT_EQ(chained.rebin_passes(), 28);
}

TEST(CompressedStateStepper, AdvanceMatchesDirectLincomb) {
  // The generic engine applied to plain fields: advancing by a natural
  // expression must equal the one explicit ops::lincomb call the expression
  // flattens to.
  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});
  Rng rng(5501);
  const NDArray<double> initial = random_smooth(Shape{32, 32}, rng, 5);
  const NDArray<double> t1 = random_smooth(Shape{32, 32}, rng, 5);
  const NDArray<double> t2 = random_smooth(Shape{32, 32}, rng, 5);

  sim::CompressedStateStepper stepper(compressor, initial,
                                      sim::LincombPath::kFused);
  const CompressedArray c1 = stepper.encode(t1);
  const CompressedArray c2 = stepper.encode(t2);
  stepper.advance(stepper.state() + 0.5 * c1 - 0.25 * c2);
  EXPECT_EQ(stepper.rebin_passes(), 1);

  const CompressedArray state0 = compressor.compress(initial);
  const CompressedArray expected =
      ops::lincomb({{1.0, &state0}, {0.5, &c1}, {-0.25, &c2}});
  EXPECT_EQ(stepper.state().indices, expected.indices);
  EXPECT_EQ(stepper.state().biggest, expected.biggest);

  // The chained engine replays the same term list as the per-op baseline.
  sim::CompressedStateStepper baseline(compressor, initial,
                                       sim::LincombPath::kChained);
  baseline.advance(baseline.state() + 0.5 * c1 - 0.25 * c2);
  EXPECT_EQ(baseline.rebin_passes(), 2);
  const CompressedArray chained = ops::add(
      ops::add(ops::multiply_scalar(state0, 1.0),
               ops::multiply_scalar(c1, 0.5)),
      ops::multiply_scalar(c2, -0.25));
  EXPECT_EQ(baseline.state().indices, chained.indices);
  EXPECT_EQ(baseline.state().biggest, chained.biggest);
}

}  // namespace
}  // namespace pyblaz
