/// The compressed-form simulation stepper (src/sim/compressed_stepper.*):
/// persistent compressed state advanced by fused lincomb chains.  Pins the
/// acceptance property — compressed-form SWE stepping is no less accurate
/// than the chained per-op path against the uncompressed reference — plus
/// rebin accounting (fused does one pass per update), the fission exposure
/// integral, thread-count invariance, and the generic accumulate engine.

#include "sim/compressed_stepper.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

CompressorSettings swe_track_settings() {
  return {.block_shape = Shape{16, 16},
          .float_type = FloatType::kFloat32,
          .index_type = IndexType::kInt16};
}

sim::SweConfig small_swe() {
  sim::SweConfig config;
  config.nx = 32;
  config.ny = 64;
  config.lx = 3.2e5;
  config.ly = 6.4e5;
  config.seamount_sigma = 4e4;
  return config;
}

TEST(SweTendencies, StepWithTendenciesMatchesPlainStep) {
  // Exporting the tendencies must not perturb the model: two models from the
  // same config, one stepping plainly and one exporting, stay bit-identical.
  sim::ShallowWaterModel plain(small_swe());
  sim::ShallowWaterModel exporting(small_swe());
  for (int k = 0; k < 5; ++k) {
    plain.step();
    sim::SweTendencies tendencies;
    exporting.step(&tendencies);
    ASSERT_EQ(tendencies.flux_x.shape(), plain.surface_height().shape());
    ASSERT_EQ(tendencies.flux_y.shape(), plain.surface_height().shape());
  }
  EXPECT_EQ(plain.surface_height(), exporting.surface_height());
  EXPECT_EQ(plain.max_speed(), exporting.max_speed());
}

TEST(SweTendencies, TendenciesReconstructTheHeightUpdate) {
  // eta' = eta - dt * flux_x - dt * flux_y, exactly the update the model
  // applied (float64 precision, so no post-step rounding intervenes).
  sim::ShallowWaterModel model(small_swe());
  model.run(3);
  const NDArray<double> before = model.surface_height();
  sim::SweTendencies tendencies;
  model.step(&tendencies);
  const NDArray<double>& after = model.surface_height();
  const double dt = model.config().dt;
  for (index_t k = 0; k < after.size(); ++k) {
    const double reconstructed =
        before[k] - dt * (tendencies.flux_x[k] + tendencies.flux_y[k]);
    EXPECT_NEAR(after[k], reconstructed, 1e-15) << "cell " << k;
  }
}

TEST(CompressedSweStepper, FusedErrorNoWorseThanChained) {
  // The acceptance property: compressed-form stepping (one fused lincomb per
  // step) tracks the uncompressed reference at least as accurately as the
  // chained per-op path it replaces, because it performs strictly fewer
  // rebins — the only error source of compressed addition.
  const int steps = 30;
  sim::CompressedShallowWaterStepper fused(small_swe(), swe_track_settings(),
                                           sim::LincombPath::kFused);
  sim::CompressedShallowWaterStepper chained(small_swe(), swe_track_settings(),
                                             sim::LincombPath::kChained);
  fused.run(steps);
  chained.run(steps);

  // Both steppers advanced the same model trajectory.
  EXPECT_EQ(fused.model().surface_height(), chained.model().surface_height());

  const double fused_error = fused.max_abs_height_error();
  const double chained_error = chained.max_abs_height_error();
  EXPECT_LE(fused_error, chained_error + 1e-12);

  // And the compressed track is a faithful shadow of the reference field.
  const double field_scale = max_abs(fused.model().surface_height());
  ASSERT_GT(field_scale, 0.0);
  EXPECT_LT(fused_error, 0.05 * field_scale);
}

TEST(CompressedSweStepper, RebinAccounting) {
  // Fused: one rebin per step.  Chained: one per tendency term (two here).
  const int steps = 4;
  sim::CompressedShallowWaterStepper fused(small_swe(), swe_track_settings(),
                                           sim::LincombPath::kFused);
  sim::CompressedShallowWaterStepper chained(small_swe(), swe_track_settings(),
                                             sim::LincombPath::kChained);
  fused.run(steps);
  chained.run(steps);
  EXPECT_EQ(fused.rebin_passes(), steps);
  EXPECT_EQ(chained.rebin_passes(), 2 * steps);
}

TEST(CompressedSweStepper, BitIdenticalAcrossThreadCounts) {
  auto run_track = [] {
    sim::CompressedShallowWaterStepper stepper(
        small_swe(), swe_track_settings(), sim::LincombPath::kFused);
    stepper.run(3);
    return std::make_tuple(stepper.compressed_height().biggest,
                           stepper.compressed_height().indices);
  };
  parallel::set_num_threads(1);
  const auto reference = run_track();
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    EXPECT_EQ(run_track(), reference) << threads << " threads";
  }
  parallel::set_num_threads(0);
}

TEST(CompressedFissionExposure, FusedErrorNoWorseThanChainedAndSmall) {
  sim::FissionConfig config;
  config.grid = Shape{16, 16, 32};
  const CompressorSettings settings{.block_shape = Shape{8, 8, 8},
                                    .float_type = FloatType::kFloat32,
                                    .index_type = IndexType::kInt16};
  sim::CompressedFissionExposure fused(config, settings,
                                       sim::LincombPath::kFused);
  sim::CompressedFissionExposure chained(config, settings,
                                         sim::LincombPath::kChained);
  fused.run_to_end();
  chained.run_to_end();
  EXPECT_TRUE(fused.done());

  const double fused_error = fused.max_abs_error();
  const double chained_error = chained.max_abs_error();
  EXPECT_LE(fused_error, chained_error + 1e-12);

  const double scale = max_abs(fused.reference_exposure());
  ASSERT_GT(scale, 0.0);
  EXPECT_LT(fused_error, 0.02 * scale);

  // 14 trapezoid intervals: one fused rebin each vs. two chained.
  EXPECT_EQ(fused.rebin_passes(), 14);
  EXPECT_EQ(chained.rebin_passes(), 28);
}

TEST(CompressedStateStepper, AccumulateMatchesDirectLincomb) {
  // The generic engine applied to plain fields: state + Σ w_i t_i must equal
  // what one explicit ops::lincomb over the same compressed operands yields.
  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});
  Rng rng(5501);
  const NDArray<double> initial = random_smooth(Shape{32, 32}, rng, 5);
  const NDArray<double> t1 = random_smooth(Shape{32, 32}, rng, 5);
  const NDArray<double> t2 = random_smooth(Shape{32, 32}, rng, 5);

  sim::CompressedStateStepper stepper(compressor, initial,
                                      sim::LincombPath::kFused);
  const NDArray<double>* terms[] = {&t1, &t2};
  const double weights[] = {0.5, -0.25};
  stepper.accumulate(std::span<const NDArray<double>* const>(terms),
                     std::span<const double>(weights));

  const CompressedArray state0 = compressor.compress(initial);
  const CompressedArray c1 = compressor.compress(t1);
  const CompressedArray c2 = compressor.compress(t2);
  const CompressedArray expected =
      ops::lincomb({{1.0, &state0}, {0.5, &c1}, {-0.25, &c2}});
  EXPECT_EQ(stepper.state().indices, expected.indices);
  EXPECT_EQ(stepper.state().biggest, expected.biggest);
}

}  // namespace
}  // namespace pyblaz
