#include <gtest/gtest.h>

#include <cmath>

#include "core/codec/compressor.hpp"
#include "core/codec/error_bounds.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

CompressorSettings default_settings() {
  return {.block_shape = Shape{8, 8},
          .float_type = FloatType::kFloat64,
          .index_type = IndexType::kInt8};
}

// ------------------------------------------------------------------ negation

TEST(OpsNegate, DecompressesToExactNegation) {
  // Table I: negation introduces no additional error — decompress(-A) is
  // bit-for-bit -decompress(A).
  Compressor compressor(default_settings());
  Rng rng(201);
  NDArray<double> array = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(array);
  NDArray<double> direct = compressor.decompress(a);
  NDArray<double> negated = compressor.decompress(ops::negate(a));
  for (index_t k = 0; k < direct.size(); ++k) EXPECT_EQ(negated[k], -direct[k]);
}

TEST(OpsNegate, IsInvolution) {
  Compressor compressor(default_settings());
  Rng rng(203);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 24}, rng));
  CompressedArray back = ops::negate(ops::negate(a));
  EXPECT_EQ(back.indices, a.indices);
  EXPECT_EQ(back.biggest, a.biggest);
}

// ------------------------------------------------------------------ addition

TEST(OpsAdd, MatchesUncompressedSumWithinRebinningBound) {
  Compressor compressor(default_settings());
  Rng rng(207);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);

  CompressedArray sum_c = ops::add(compressor.compress(x), compressor.compress(y));
  NDArray<double> sum_d = compressor.decompress(sum_c);
  NDArray<double> truth = add(x, y);

  // Total error = both operands' compression errors + one rebinning, each
  // bounded by the loose L∞ bound of the result's biggest coefficients.
  const double bound =
      3.0 * loose_linf_bound(max_abs(NDArray<double>(Shape{1}, {max_abs(truth) * 8.0})),
                             IndexType::kInt8, Shape{8, 8});
  EXPECT_LE(reference::linf_distance(truth, sum_d), bound);
  // And in practice far smaller for smooth data.
  EXPECT_LT(reference::mean_absolute_error(truth, sum_d), 0.05 * max_abs(truth));
}

TEST(OpsAdd, IsCommutative) {
  Compressor compressor(default_settings());
  Rng rng(211);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray b = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray ab = ops::add(a, b);
  CompressedArray ba = ops::add(b, a);
  EXPECT_EQ(ab.indices, ba.indices);
  EXPECT_EQ(ab.biggest, ba.biggest);
}

TEST(OpsAdd, APlusNegAIsZero) {
  // A + (-A) must rebin to exactly zero (coefficients cancel exactly).
  Compressor compressor(default_settings());
  Rng rng(213);
  CompressedArray a = compressor.compress(random_smooth(Shape{24, 24}, rng));
  CompressedArray zero = ops::add(a, ops::negate(a));
  NDArray<double> decompressed = compressor.decompress(zero);
  for (index_t k = 0; k < decompressed.size(); ++k) EXPECT_EQ(decompressed[k], 0.0);
}

TEST(OpsAdd, SubtractMatchesAddNegate) {
  Compressor compressor(default_settings());
  Rng rng(217);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray b = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray diff = ops::subtract(a, b);
  CompressedArray manual = ops::add(a, ops::negate(b));
  EXPECT_EQ(diff.indices, manual.indices);
  EXPECT_EQ(diff.biggest, manual.biggest);
}

TEST(OpsAdd, CapturesDifferenceBetweenPerturbedFields) {
  // The Fig. 4 use case: the compressed-space difference localizes a
  // perturbation.
  Compressor compressor({.block_shape = Shape{16, 16},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt8});
  Rng rng(219);
  NDArray<double> base = random_smooth(Shape{64, 64}, rng);
  NDArray<double> perturbed = base;
  // Perturb one region.
  for (index_t i = 40; i < 56; ++i)
    for (index_t j = 8; j < 24; ++j) perturbed[i * 64 + j] += 0.5;

  CompressedArray diff =
      ops::subtract(compressor.compress(perturbed), compressor.compress(base));
  NDArray<double> d = compressor.decompress(diff);

  // Energy concentrates in the perturbed region.
  double inside = 0.0, outside = 0.0;
  for (index_t i = 0; i < 64; ++i)
    for (index_t j = 0; j < 64; ++j) {
      const double v = d[i * 64 + j] * d[i * 64 + j];
      if (i >= 40 && i < 56 && j >= 8 && j < 24)
        inside += v;
      else
        outside += v;
    }
  EXPECT_GT(inside, 10.0 * outside);
}

TEST(OpsAdd, ThrowsOnLayoutMismatch) {
  Compressor c1(default_settings());
  Compressor c2({.block_shape = Shape{4, 4},
                 .float_type = FloatType::kFloat64,
                 .index_type = IndexType::kInt8});
  Rng rng(223);
  NDArray<double> array = random_smooth(Shape{16, 16}, rng);
  EXPECT_THROW(ops::add(c1.compress(array), c2.compress(array)),
               std::invalid_argument);
}

TEST(OpsAdd, ThrowsOnShapeMismatch) {
  Compressor compressor(default_settings());
  Rng rng(227);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray b = compressor.compress(random_smooth(Shape{24, 16}, rng));
  EXPECT_THROW(ops::add(a, b), std::invalid_argument);
}

// ------------------------------------------------------------ scalar addition

TEST(OpsAddScalar, ShiftsMeanExactly) {
  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt16});
  Rng rng(229);
  // Divisible shape: the compressed mean is exact.
  NDArray<double> array = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(array);
  const double mean_before = ops::mean(a);
  CompressedArray shifted = ops::add_scalar(a, 2.5);
  // Rebinning perturbs the DC coefficient by at most half a bin.
  EXPECT_NEAR(ops::mean(shifted), mean_before + 2.5, 1e-3);
}

TEST(OpsAddScalar, MatchesDecompressedShift) {
  Compressor compressor(default_settings());
  Rng rng(233);
  NDArray<double> array = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(array);
  NDArray<double> shifted_c = compressor.decompress(ops::add_scalar(a, -1.25));
  NDArray<double> shifted_u = add_scalar(compressor.decompress(a), -1.25);
  // Error source: rebinning only (Table I).
  double bound = 0.0;
  for (double n : compressor.compress(add_scalar(array, -1.25)).biggest)
    bound = std::max(bound, loose_linf_bound(n, IndexType::kInt8, Shape{8, 8}));
  EXPECT_LE(reference::linf_distance(shifted_c, shifted_u), 2.0 * bound + 1e-9);
}

TEST(OpsAddScalar, AddingZeroKeepsValuesWithinOneRebin) {
  Compressor compressor(default_settings());
  Rng rng(239);
  NDArray<double> array = random_smooth(Shape{16, 16}, rng);
  CompressedArray a = compressor.compress(array);
  CompressedArray same = ops::add_scalar(a, 0.0);
  // Re-binning against the same biggest coefficient reproduces the indices.
  EXPECT_EQ(same.indices, a.indices);
}

TEST(OpsAddScalar, ThrowsWithoutDcCoefficient) {
  CompressorSettings settings = default_settings();
  std::vector<std::uint8_t> flags(64, 1);
  flags[0] = 0;  // Drop the DC coefficient.
  settings.mask = PruningMask::from_flags(Shape{8, 8}, flags);
  Compressor compressor(settings);
  Rng rng(241);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_THROW(ops::add_scalar(a, 1.0), std::invalid_argument);
}

// ------------------------------------------------------- scalar multiplication

TEST(OpsMultiplyScalar, ExactInCompressedSpace) {
  // Table I: multiplication by a scalar has no error source — N scales, F
  // flips sign at most.
  Compressor compressor(default_settings());
  Rng rng(243);
  NDArray<double> array = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(array);
  NDArray<double> direct = compressor.decompress(a);

  CompressedArray scaled = ops::multiply_scalar(a, -3.0);
  NDArray<double> result = compressor.decompress(scaled);
  for (index_t k = 0; k < direct.size(); ++k)
    EXPECT_NEAR(result[k], -3.0 * direct[k], 1e-12);
}

TEST(OpsMultiplyScalar, Composes) {
  Compressor compressor(default_settings());
  Rng rng(247);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray twice = ops::multiply_scalar(ops::multiply_scalar(a, 2.0), 3.0);
  CompressedArray once = ops::multiply_scalar(a, 6.0);
  EXPECT_EQ(twice.biggest, once.biggest);
  EXPECT_EQ(twice.indices, once.indices);
}

TEST(OpsMultiplyScalar, MinusOneEqualsNegate) {
  Compressor compressor(default_settings());
  Rng rng(251);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray m = ops::multiply_scalar(a, -1.0);
  CompressedArray n = ops::negate(a);
  EXPECT_EQ(m.indices, n.indices);
  EXPECT_EQ(m.biggest, n.biggest);
}

TEST(OpsMultiplyScalar, ZeroGivesZeroArray) {
  Compressor compressor(default_settings());
  Rng rng(253);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  NDArray<double> zero = compressor.decompress(ops::multiply_scalar(a, 0.0));
  for (index_t k = 0; k < zero.size(); ++k) EXPECT_EQ(zero[k], 0.0);
}

TEST(OpsMultiplyScalar, DistributesOverAddWithinRebinning) {
  // c*(A+B) ≈ c*A + c*B: scalar multiply is exact so the only discrepancy is
  // the single rebinning in each add.
  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt16});
  Rng rng(257);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray b = compressor.compress(random_smooth(Shape{16, 16}, rng));
  NDArray<double> lhs =
      compressor.decompress(ops::multiply_scalar(ops::add(a, b), 2.0));
  NDArray<double> rhs = compressor.decompress(
      ops::add(ops::multiply_scalar(a, 2.0), ops::multiply_scalar(b, 2.0)));
  EXPECT_LT(reference::linf_distance(lhs, rhs), 1e-3);
}

// ------------------------------------------------------ specified coefficients

TEST(OpsSpecifiedCoefficients, RecoverDcAsScaledBlockMean) {
  Compressor compressor({.block_shape = Shape{4, 4},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt32});
  NDArray<double> array(Shape{4, 4}, 1.5);  // One constant block.
  CompressedArray a = compressor.compress(array);
  const std::vector<double> coeffs = ops::specified_coefficients(a);
  ASSERT_EQ(coeffs.size(), 16u);
  EXPECT_NEAR(coeffs[0], 1.5 * 4.0, 1e-6);  // mean * sqrt(16).
}

}  // namespace
}  // namespace pyblaz
