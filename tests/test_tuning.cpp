/// Tests for the automatic settings search (§VI future-work item: enforce an
/// L∞ error bound by choosing compression settings automatically).

#include "core/codec/tuning.hpp"

#include <gtest/gtest.h>

#include "core/codec/compressor.hpp"
#include "core/codec/ratio.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

NDArray<double> sample_field(Shape shape = Shape{64, 64}) {
  Rng rng(1101);
  return random_smooth(std::move(shape), rng);
}

TEST(Tuning, BestCandidateRespectsTheTarget) {
  NDArray<double> sample = sample_field();
  const double target = 0.01 * max_abs(sample);
  TuningResult result = tune_for_linf(sample, target);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_LE(result.best->linf_error, target);
  EXPECT_TRUE(result.best->feasible);
}

TEST(Tuning, ChosenSettingsReproduceTheError) {
  // Re-compressing with the returned settings yields the reported error.
  NDArray<double> sample = sample_field();
  const double target = 0.02 * max_abs(sample);
  TuningResult result = tune_for_linf(sample, target);
  ASSERT_TRUE(result.best.has_value());
  Compressor compressor(result.best->settings);
  const double err = reference::linf_distance(
      sample, compressor.decompress(compressor.compress(sample)));
  EXPECT_NEAR(err, result.best->linf_error, 1e-12);
  EXPECT_LE(err, target);
}

TEST(Tuning, BestIsTheHighestRatioFeasibleCandidate) {
  NDArray<double> sample = sample_field();
  const double target = 0.05 * max_abs(sample);
  TuningResult result = tune_for_linf(sample, target);
  ASSERT_TRUE(result.best.has_value());
  for (const TuningCandidate& candidate : result.evaluated) {
    if (candidate.feasible) {
      EXPECT_LE(candidate.ratio, result.best->ratio + 1e-12);
    }
  }
}

TEST(Tuning, LooserTargetsNeverLowerTheRatio) {
  NDArray<double> sample = sample_field();
  const double scale = max_abs(sample);
  double previous_ratio = 0.0;
  for (double rel_target : {0.001, 0.01, 0.1}) {
    TuningResult result = tune_for_linf(sample, rel_target * scale);
    ASSERT_TRUE(result.best.has_value()) << "target " << rel_target;
    EXPECT_GE(result.best->ratio, previous_ratio - 1e-12);
    previous_ratio = result.best->ratio;
  }
}

TEST(Tuning, ImpossibleTargetYieldsNoBest) {
  NDArray<double> sample = sample_field(Shape{32, 32});
  TuningResult result = tune_for_linf(sample, 0.0);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_FALSE(result.evaluated.empty());  // Candidates were still evaluated.
}

TEST(Tuning, GuaranteedModeIsMoreConservative) {
  NDArray<double> sample = sample_field();
  const double target = 0.05 * max_abs(sample);
  TuningOptions guaranteed;
  guaranteed.use_guaranteed_bound = true;
  TuningResult g = tune_for_linf(sample, target, guaranteed);
  TuningResult m = tune_for_linf(sample, target);
  ASSERT_TRUE(m.best.has_value());
  if (g.best) {
    // The guaranteed bound dominates the measured error, so the guaranteed
    // pick can never claim a higher ratio than the measured pick.
    EXPECT_LE(g.best->ratio, m.best->ratio + 1e-12);
  }
}

TEST(Tuning, AnisotropicSamplesGetNonHypercubicCandidates) {
  Rng rng(1103);
  NDArray<double> sample = random_smooth(Shape{8, 64, 64}, rng);
  TuningResult result = tune_for_linf(sample, 0.5 * max_abs(sample));
  bool saw_flat = false;
  for (const TuningCandidate& candidate : result.evaluated) {
    const Shape& block = candidate.settings.block_shape;
    if (block.ndim() == 3 && block[0] < block[2]) saw_flat = true;
  }
  EXPECT_TRUE(saw_flat);
}

TEST(Tuning, EvaluatedGridCoversIndexTypes) {
  NDArray<double> sample = sample_field(Shape{32, 32});
  TuningResult result = tune_for_linf(sample, 0.1);
  bool saw_int8 = false, saw_int16 = false, saw_int32 = false;
  for (const TuningCandidate& candidate : result.evaluated) {
    saw_int8 |= candidate.settings.index_type == IndexType::kInt8;
    saw_int16 |= candidate.settings.index_type == IndexType::kInt16;
    saw_int32 |= candidate.settings.index_type == IndexType::kInt32;
  }
  EXPECT_TRUE(saw_int8);
  EXPECT_TRUE(saw_int16);
  EXPECT_TRUE(saw_int32);
}

}  // namespace
}  // namespace pyblaz
