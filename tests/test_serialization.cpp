#include "core/codec/serialization.hpp"

#include <gtest/gtest.h>

#include "core/codec/compressor.hpp"
#include "core/error/error.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

struct SerializationCase {
  Shape array_shape;
  Shape block_shape;
  FloatType float_type;
  IndexType index_type;
  TransformKind transform;
  double keep_fraction;  // 1.0 = no pruning.
};

class Serialization : public ::testing::TestWithParam<SerializationCase> {};

TEST_P(Serialization, RoundTripPreservesEverything) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(71);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray original = compressor.compress(array);

  const std::vector<std::uint8_t> bytes = serialize(original);
  CompressedArray restored = deserialize(bytes);

  EXPECT_EQ(restored.shape, original.shape);
  EXPECT_EQ(restored.block_shape, original.block_shape);
  EXPECT_EQ(restored.float_type, original.float_type);
  EXPECT_EQ(restored.index_type, original.index_type);
  EXPECT_EQ(restored.transform, original.transform);
  EXPECT_EQ(restored.mask, original.mask);
  EXPECT_EQ(restored.biggest, original.biggest);  // Bit-exact: N is stored
                                                  // already quantized.
  EXPECT_EQ(restored.indices, original.indices);
}

TEST_P(Serialization, DecompressionFromDeserializedMatches) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(73);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray original = compressor.compress(array);
  CompressedArray restored = deserialize(serialize(original));
  EXPECT_EQ(compressor.decompress(restored), compressor.decompress(original));
}

TEST_P(Serialization, V1SizeMatchesPaperLayoutPlusHeaderPadding) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(79);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray compressed = compressor.compress(array);

  const std::size_t layout = paper_layout_bits(compressed);
  const std::size_t actual = serialize_v1(compressed).size() * 8;
  // Actual = paper layout + our 4 extra transform/reserved bits, padded to a
  // byte boundary.
  EXPECT_GE(actual, layout + 4);
  EXPECT_LT(actual, layout + 4 + 8);
}

TEST_P(Serialization, ChunkedOverheadIsBounded) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(79);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray compressed = compressor.compress(array);

  const std::vector<std::uint8_t> v1 = serialize_v1(compressed);
  const std::vector<std::uint8_t> v2 = serialize_v2(compressed);
  const std::vector<std::uint8_t> v3 = serialize(compressed);
  EXPECT_TRUE(is_chunked_stream(v2));
  EXPECT_TRUE(is_chunked_stream(v3));
  EXPECT_FALSE(is_chunked_stream(v1));
  // v2 adds the magic (4 B), the chunk geometry (12 B), 8 B per chunk of
  // offset table, and at most one byte of alignment padding per chunk plus
  // one for the realigned header.  Chunks target 64 KiB, so the relative
  // overhead vanishes at scale; these cases are small enough to check the
  // absolute bound tightly.
  const std::size_t num_blocks = static_cast<std::size_t>(compressed.num_blocks());
  EXPECT_GT(v2.size(), v1.size());
  EXPECT_LE(v2.size(), v1.size() + 16 + 9 * num_blocks + 1);
  // The checksummed v3 default adds exactly one 4 B header CRC plus 4 B per
  // chunk on top of v2 — and there is at least one, at most num_blocks
  // chunks.
  EXPECT_GE(v3.size(), v2.size() + 8);
  EXPECT_LE(v3.size(), v2.size() + 4 + 4 * num_blocks);
  EXPECT_EQ((v3.size() - v2.size() - 4) % 4, 0u);
}

TEST_P(Serialization, V3ReproducesV2PayloadBytesExactly) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(79);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray compressed = compressor.compress(array);

  const std::vector<std::uint8_t> v2 = serialize_v2(compressed);
  const std::vector<std::uint8_t> v3 = serialize(compressed);
  EXPECT_EQ(archive_version(v2), 2);
  EXPECT_EQ(archive_version(v3), 3);

  // v3 is v2 with the checksum table spliced between the chunk table and the
  // payload (and a different magic byte): the shared header bytes match
  // position for position, and every payload byte matches shifted by the
  // splice width.  Find the splice point as the first divergence after the
  // magic; everything from there on must line up under the shift.
  const std::size_t extra = v3.size() - v2.size();
  ASSERT_GE(extra, 8u);          // Header CRC + at least one chunk CRC.
  ASSERT_EQ((extra - 4) % 4, 0u);
  std::size_t divergence = 4;
  while (divergence < v2.size() && v3[divergence] == v2[divergence])
    ++divergence;
  ASSERT_LT(divergence, v2.size()) << "checksum table matched v2 payload?";
  for (std::size_t k = divergence; k < v2.size(); ++k)
    ASSERT_EQ(v3[k + extra], v2[k]) << "payload byte " << k << " differs";
}

TEST_P(Serialization, LegacyV1StreamRoundTrips) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(101);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray original = compressor.compress(array);

  // The deserializer detects the version, so pre-chunking archives written
  // by serialize_v1 keep reading bit-exactly.
  CompressedArray restored = deserialize(serialize_v1(original));
  EXPECT_EQ(restored.shape, original.shape);
  EXPECT_EQ(restored.mask, original.mask);
  EXPECT_EQ(restored.biggest, original.biggest);
  EXPECT_EQ(restored.indices, original.indices);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Serialization,
    ::testing::Values(
        SerializationCase{Shape{32}, Shape{8}, FloatType::kFloat64,
                          IndexType::kInt8, TransformKind::kDCT, 1.0},
        SerializationCase{Shape{33, 20}, Shape{8, 8}, FloatType::kFloat32,
                          IndexType::kInt16, TransformKind::kDCT, 1.0},
        SerializationCase{Shape{33, 20}, Shape{8, 8}, FloatType::kFloat16,
                          IndexType::kInt8, TransformKind::kHaar, 0.5},
        SerializationCase{Shape{10, 12, 14}, Shape{4, 4, 4},
                          FloatType::kBFloat16, IndexType::kInt32,
                          TransformKind::kDCT, 0.25},
        SerializationCase{Shape{10, 12, 14}, Shape{2, 8, 4}, FloatType::kFloat64,
                          IndexType::kInt64, TransformKind::kDCT, 1.0}));

TEST(Serialization, RejectsTruncatedStream) {
  Compressor compressor({.block_shape = Shape{4, 4}});
  Rng rng(83);
  NDArray<double> array = random_smooth(Shape{16, 16}, rng);
  std::vector<std::uint8_t> bytes = serialize(compressor.compress(array));
  bytes.resize(bytes.size() / 2);
  try {
    (void)deserialize(bytes);
    FAIL() << "half a stream deserialized";
  } catch (const cc::Error& e) {
    EXPECT_EQ(e.code(), cc::ErrorCode::kTruncated);
    EXPECT_NE(e.offset(), cc::Error::kNoOffset);  // Positional diagnosis.
  }
}

TEST(Serialization, RejectsGarbage) {
  std::vector<std::uint8_t> garbage(64, 0xA5);
  EXPECT_THROW(deserialize(garbage), cc::Error);
}

TEST(Serialization, DetectsSinglePayloadBitFlip) {
  // The per-chunk CRCs make the default container fail closed: flipping one
  // bit of the *last* payload byte — which v1/v2 would decode to a wrong
  // value without a word — is detected, typed, and attributed to the chunk.
  Compressor compressor({.block_shape = Shape{4, 4}});
  Rng rng(83);
  NDArray<double> array = random_smooth(Shape{16, 16}, rng);
  std::vector<std::uint8_t> bytes = serialize(compressor.compress(array));
  bytes.back() ^= 0x01;
  try {
    (void)deserialize(bytes);
    FAIL() << "payload flip escaped the chunk checksum";
  } catch (const cc::Error& e) {
    EXPECT_EQ(e.code(), cc::ErrorCode::kCorruptArchive);
    EXPECT_EQ(e.site(), "deserialize.v3.chunk");
  }
}

TEST(Serialization, NegativeIndicesSurviveNarrowTypes) {
  // int8 indices are stored in 8 bits; sign extension must recover them.
  // A constant negative array has a negative DC coefficient in every block.
  Compressor compressor({.block_shape = Shape{8},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt8});
  NDArray<double> array(Shape{8}, -1.0);
  CompressedArray compressed = compressor.compress(array);
  bool has_negative = false;
  for (std::size_t k = 0; k < compressed.indices.size(); ++k)
    has_negative |= compressed.indices.get(k) < 0;
  ASSERT_TRUE(has_negative);
  CompressedArray restored = deserialize(serialize(compressed));
  EXPECT_EQ(restored.indices, compressed.indices);
}

}  // namespace
}  // namespace pyblaz
