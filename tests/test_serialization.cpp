#include "core/codec/serialization.hpp"

#include <gtest/gtest.h>

#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

struct SerializationCase {
  Shape array_shape;
  Shape block_shape;
  FloatType float_type;
  IndexType index_type;
  TransformKind transform;
  double keep_fraction;  // 1.0 = no pruning.
};

class Serialization : public ::testing::TestWithParam<SerializationCase> {};

TEST_P(Serialization, RoundTripPreservesEverything) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(71);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray original = compressor.compress(array);

  const std::vector<std::uint8_t> bytes = serialize(original);
  CompressedArray restored = deserialize(bytes);

  EXPECT_EQ(restored.shape, original.shape);
  EXPECT_EQ(restored.block_shape, original.block_shape);
  EXPECT_EQ(restored.float_type, original.float_type);
  EXPECT_EQ(restored.index_type, original.index_type);
  EXPECT_EQ(restored.transform, original.transform);
  EXPECT_EQ(restored.mask, original.mask);
  EXPECT_EQ(restored.biggest, original.biggest);  // Bit-exact: N is stored
                                                  // already quantized.
  EXPECT_EQ(restored.indices, original.indices);
}

TEST_P(Serialization, DecompressionFromDeserializedMatches) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(73);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray original = compressor.compress(array);
  CompressedArray restored = deserialize(serialize(original));
  EXPECT_EQ(compressor.decompress(restored), compressor.decompress(original));
}

TEST_P(Serialization, V1SizeMatchesPaperLayoutPlusHeaderPadding) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(79);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray compressed = compressor.compress(array);

  const std::size_t layout = paper_layout_bits(compressed);
  const std::size_t actual = serialize_v1(compressed).size() * 8;
  // Actual = paper layout + our 4 extra transform/reserved bits, padded to a
  // byte boundary.
  EXPECT_GE(actual, layout + 4);
  EXPECT_LT(actual, layout + 4 + 8);
}

TEST_P(Serialization, ChunkedOverheadIsBounded) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(79);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray compressed = compressor.compress(array);

  const std::vector<std::uint8_t> v1 = serialize_v1(compressed);
  const std::vector<std::uint8_t> v2 = serialize(compressed);
  EXPECT_TRUE(is_chunked_stream(v2));
  EXPECT_FALSE(is_chunked_stream(v1));
  // v2 adds the magic (4 B), the chunk geometry (12 B), 8 B per chunk of
  // offset table, and at most one byte of alignment padding per chunk plus
  // one for the realigned header.  Chunks target 64 KiB, so the relative
  // overhead vanishes at scale; these cases are small enough to check the
  // absolute bound tightly.
  const std::size_t num_blocks = static_cast<std::size_t>(compressed.num_blocks());
  EXPECT_GT(v2.size(), v1.size());
  EXPECT_LE(v2.size(), v1.size() + 16 + 9 * num_blocks + 1);
}

TEST_P(Serialization, LegacyV1StreamRoundTrips) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.keep_fraction < 1.0)
    settings.mask = PruningMask::keep_fraction(p.block_shape, p.keep_fraction);
  Compressor compressor(settings);
  Rng rng(101);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray original = compressor.compress(array);

  // The deserializer detects the version, so pre-chunking archives written
  // by serialize_v1 keep reading bit-exactly.
  CompressedArray restored = deserialize(serialize_v1(original));
  EXPECT_EQ(restored.shape, original.shape);
  EXPECT_EQ(restored.mask, original.mask);
  EXPECT_EQ(restored.biggest, original.biggest);
  EXPECT_EQ(restored.indices, original.indices);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Serialization,
    ::testing::Values(
        SerializationCase{Shape{32}, Shape{8}, FloatType::kFloat64,
                          IndexType::kInt8, TransformKind::kDCT, 1.0},
        SerializationCase{Shape{33, 20}, Shape{8, 8}, FloatType::kFloat32,
                          IndexType::kInt16, TransformKind::kDCT, 1.0},
        SerializationCase{Shape{33, 20}, Shape{8, 8}, FloatType::kFloat16,
                          IndexType::kInt8, TransformKind::kHaar, 0.5},
        SerializationCase{Shape{10, 12, 14}, Shape{4, 4, 4},
                          FloatType::kBFloat16, IndexType::kInt32,
                          TransformKind::kDCT, 0.25},
        SerializationCase{Shape{10, 12, 14}, Shape{2, 8, 4}, FloatType::kFloat64,
                          IndexType::kInt64, TransformKind::kDCT, 1.0}));

TEST(Serialization, RejectsTruncatedStream) {
  Compressor compressor({.block_shape = Shape{4, 4}});
  Rng rng(83);
  NDArray<double> array = random_smooth(Shape{16, 16}, rng);
  std::vector<std::uint8_t> bytes = serialize(compressor.compress(array));
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize(bytes), std::invalid_argument);
}

TEST(Serialization, RejectsGarbage) {
  std::vector<std::uint8_t> garbage(64, 0xA5);
  EXPECT_THROW(deserialize(garbage), std::invalid_argument);
}

TEST(Serialization, NegativeIndicesSurviveNarrowTypes) {
  // int8 indices are stored in 8 bits; sign extension must recover them.
  // A constant negative array has a negative DC coefficient in every block.
  Compressor compressor({.block_shape = Shape{8},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt8});
  NDArray<double> array(Shape{8}, -1.0);
  CompressedArray compressed = compressor.compress(array);
  bool has_negative = false;
  for (std::size_t k = 0; k < compressed.indices.size(); ++k)
    has_negative |= compressed.indices.get(k) < 0;
  ASSERT_TRUE(has_negative);
  CompressedArray restored = deserialize(serialize(compressed));
  EXPECT_EQ(restored.indices, compressed.indices);
}

}  // namespace
}  // namespace pyblaz
