/// Tests for the padding-corrected statistics (extensions beyond the paper
/// fixing the §IV-A ragged-shape bias of mean/covariance).

#include <gtest/gtest.h>

#include <cmath>

#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

CompressorSettings fine_settings() {
  return {.block_shape = Shape{8, 8},
          .float_type = FloatType::kFloat64,
          .index_type = IndexType::kInt32};
}

TEST(OpsUnpadded, SumIsExactOnRaggedShapes) {
  Compressor compressor(fine_settings());
  Rng rng(1001);
  // 30x29 with 8x8 blocks: heavily ragged.
  NDArray<double> x = random_smooth(Shape{30, 29}, rng);
  const double truth = sum(x);
  EXPECT_NEAR(ops::sum(compressor.compress(x)), truth,
              1e-6 * (std::fabs(truth) + 1.0));
}

TEST(OpsUnpadded, MeanFixesPaddingBias) {
  // The canonical bias case: a constant array of ones with a ragged edge.
  // Algorithm 7's mean is fill_fraction * 1; the corrected mean is 1.
  Compressor compressor(fine_settings());
  NDArray<double> x(Shape{12, 8}, 1.0);
  CompressedArray a = compressor.compress(x);
  EXPECT_NEAR(ops::mean(a), 0.75, 1e-6);           // Biased (paper behavior).
  EXPECT_NEAR(ops::mean_unpadded(a), 1.0, 1e-6);   // Corrected.
}

TEST(OpsUnpadded, MeanMatchesPaperMeanOnDivisibleShapes) {
  Compressor compressor(fine_settings());
  Rng rng(1003);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(x);
  EXPECT_NEAR(ops::mean_unpadded(a), ops::mean(a), 1e-12);
}

TEST(OpsUnpadded, VarianceCorrectOnRaggedShapes) {
  Compressor compressor(fine_settings());
  Rng rng(1007);
  NDArray<double> x = add_scalar(random_smooth(Shape{30, 29}, rng), 1.5);
  CompressedArray a = compressor.compress(x);
  const double truth = reference::variance(x);
  // The paper variance is badly biased here (padding injects fake zeros)...
  EXPECT_GT(std::fabs(ops::variance(a) - truth), 0.05 * truth);
  // ...the corrected one is accurate.
  EXPECT_NEAR(ops::variance_unpadded(a), truth, 1e-4 * (truth + 1.0));
}

TEST(OpsUnpadded, CovarianceCorrectOnRaggedShapes) {
  Compressor compressor(fine_settings());
  Rng rng(1009);
  NDArray<double> x = add_scalar(random_smooth(Shape{30, 29}, rng), 0.7);
  NDArray<double> y = add_scalar(random_smooth(Shape{30, 29}, rng), -0.4);
  CompressedArray a = compressor.compress(x);
  CompressedArray b = compressor.compress(y);
  const double truth = reference::covariance(x, y);
  EXPECT_NEAR(ops::covariance_unpadded(a, b), truth,
              1e-4 * (std::fabs(truth) + 1.0));
}

TEST(OpsUnpadded, VarianceIsCovarianceWithSelf) {
  Compressor compressor(fine_settings());
  Rng rng(1013);
  CompressedArray a = compressor.compress(random_smooth(Shape{30, 29}, rng));
  EXPECT_DOUBLE_EQ(ops::variance_unpadded(a), ops::covariance_unpadded(a, a));
}

TEST(OpsUnpadded, RequiresDcCoefficient) {
  CompressorSettings settings = fine_settings();
  std::vector<std::uint8_t> flags(64, 1);
  flags[0] = 0;
  settings.mask = PruningMask::from_flags(Shape{8, 8}, flags);
  Compressor compressor(settings);
  Rng rng(1019);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_THROW(ops::sum(a), std::invalid_argument);
  EXPECT_THROW(ops::mean_unpadded(a), std::invalid_argument);
}

struct RaggedCase {
  Shape array_shape;
  Shape block_shape;
};

class UnpaddedSweep : public ::testing::TestWithParam<RaggedCase> {};

TEST_P(UnpaddedSweep, MeanAndVarianceTrackTruth) {
  const auto& p = GetParam();
  Compressor compressor({.block_shape = p.block_shape,
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt32});
  Rng rng(1021);
  NDArray<double> x = add_scalar(random_smooth(p.array_shape, rng), 2.0);
  CompressedArray a = compressor.compress(x);
  EXPECT_NEAR(ops::mean_unpadded(a), reference::mean(x),
              1e-4 * std::fabs(reference::mean(x)));
  EXPECT_NEAR(ops::variance_unpadded(a), reference::variance(x),
              1e-3 * (reference::variance(x) + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    RaggedShapes, UnpaddedSweep,
    ::testing::Values(RaggedCase{Shape{7}, Shape{4}},
                      RaggedCase{Shape{9, 13}, Shape{4, 4}},
                      RaggedCase{Shape{30, 29}, Shape{8, 8}},
                      RaggedCase{Shape{33, 65}, Shape{16, 16}},
                      RaggedCase{Shape{5, 9, 17}, Shape{4, 4, 4}},
                      RaggedCase{Shape{20, 30, 30}, Shape{4, 16, 16}}));

}  // namespace
}  // namespace pyblaz
