#include "core/reference/reference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

TEST(Reference, DotHandValues) {
  NDArray<double> x(Shape{3}, {1.0, 2.0, 3.0});
  NDArray<double> y(Shape{3}, {4.0, -5.0, 6.0});
  EXPECT_DOUBLE_EQ(reference::dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(Reference, MeanHandValues) {
  NDArray<double> x(Shape{4}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(reference::mean(x), 2.5);
}

TEST(Reference, VarianceIsPopulationVariance) {
  NDArray<double> x(Shape{4}, {2.0, 4.0, 4.0, 6.0});
  // mean = 4; squared deviations (4, 0, 0, 4); population variance = 2.
  EXPECT_DOUBLE_EQ(reference::variance(x), 2.0);
}

TEST(Reference, CovarianceHandValues) {
  NDArray<double> x(Shape{3}, {1.0, 2.0, 3.0});
  NDArray<double> y(Shape{3}, {2.0, 4.0, 6.0});
  // cov(x, 2x) = 2 var(x) = 2 * (2/3).
  EXPECT_NEAR(reference::covariance(x, y), 4.0 / 3.0, 1e-14);
}

TEST(Reference, L2NormAndDistance) {
  NDArray<double> x(Shape{2}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(reference::l2_norm(x), 5.0);
  NDArray<double> y(Shape{2}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(reference::l2_distance(x, y), 5.0);
}

TEST(Reference, LinfDistance) {
  NDArray<double> x(Shape{3}, {1.0, -7.0, 2.0});
  NDArray<double> y(Shape{3}, {1.5, 0.0, 2.0});
  EXPECT_DOUBLE_EQ(reference::linf_distance(x, y), 7.0);
}

TEST(Reference, CosineOfParallelAndOrthogonal) {
  NDArray<double> x(Shape{2}, {1.0, 0.0});
  NDArray<double> y(Shape{2}, {0.0, 1.0});
  NDArray<double> z(Shape{2}, {2.0, 0.0});
  EXPECT_NEAR(reference::cosine_similarity(x, y), 0.0, 1e-15);
  EXPECT_NEAR(reference::cosine_similarity(x, z), 1.0, 1e-15);
}

TEST(Reference, SsimIdenticalIsOne) {
  Rng rng(601);
  NDArray<double> x = random_smooth(Shape{16, 16}, rng);
  EXPECT_NEAR(reference::structural_similarity(x, x), 1.0, 1e-12);
}

TEST(Reference, SsimSymmetric) {
  Rng rng(603);
  NDArray<double> x = random_smooth(Shape{16, 16}, rng);
  NDArray<double> y = random_smooth(Shape{16, 16}, rng);
  EXPECT_NEAR(reference::structural_similarity(x, y),
              reference::structural_similarity(y, x), 1e-12);
}

TEST(Reference, MeanAbsoluteError) {
  NDArray<double> x(Shape{2}, {1.0, 3.0});
  NDArray<double> y(Shape{2}, {2.0, 1.0});
  EXPECT_DOUBLE_EQ(reference::mean_absolute_error(x, y), 1.5);
}

TEST(Reference, WassersteinIdenticalIsZero) {
  Rng rng(607);
  NDArray<double> x = random_smooth(Shape{8, 8}, rng);
  EXPECT_NEAR(reference::wasserstein_distance(x, x, 2.0), 0.0, 1e-12);
}

TEST(Reference, WassersteinOfKnownDistributions) {
  // Two two-point distributions: {0.3, 0.7} vs {0.5, 0.5}.
  // Sorted differences: |0.3-0.5| = 0.2, |0.7-0.5| = 0.2.
  // W_1 = mean = 0.2; W_2 = sqrt(mean of 0.04) = 0.2.
  NDArray<double> x(Shape{2}, {0.3, 0.7});
  NDArray<double> y(Shape{2}, {0.5, 0.5});
  EXPECT_NEAR(reference::wasserstein_distance(x, y, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(reference::wasserstein_distance(x, y, 2.0), 0.2, 1e-12);
}

TEST(Reference, WassersteinAppliesSoftmaxToNonDistributions) {
  // Non-probability inputs are softmaxed first: equal inputs after softmax
  // remain equal, so any two constant arrays are at distance zero.
  NDArray<double> x(Shape{4}, {10.0, 10.0, 10.0, 10.0});
  NDArray<double> y(Shape{4}, {-3.0, -3.0, -3.0, -3.0});
  EXPECT_NEAR(reference::wasserstein_distance(x, y, 2.0), 0.0, 1e-12);
}

TEST(Reference, WassersteinStableMatchesNaiveAtModerateOrder) {
  Rng rng(611);
  NDArray<double> x = random_smooth(Shape{8, 8}, rng);
  NDArray<double> y = random_smooth(Shape{8, 8}, rng);
  const double stable = reference::wasserstein_distance(x, y, 4.0, true);
  const double naive = reference::wasserstein_distance(x, y, 4.0, false);
  EXPECT_NEAR(stable, naive, 1e-12 * (1.0 + naive));
}

}  // namespace
}  // namespace pyblaz
