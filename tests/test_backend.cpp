/// The SIMD kernel backend dispatch layer (src/core/kernels/backend.*): the
/// startup cpuid/CC_KERNEL_BACKEND resolution, the set_backend override, and
/// — the load-bearing property — that EVERY compiled-in backend reproduces
/// the scalar kernels bit for bit across the full property matrix: rebin
/// (max_abs / quantize_bins / unbin) for all four bin types, decode_lincomb
/// at 1..7 operands, the dense one-axis transform, and the factorized Lee
/// DCT at every supported size.  The scalar kernels are the oracle; the
/// parameterized suite runs once per available backend, so on an AVX2 host
/// the AVX2 table is exhaustively pinned and on any host the scalar table
/// trivially passes (keeping the suite green under the CC_KERNEL_BACKEND
/// ctest legs regardless of ISA).

#include "core/kernels/backend.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/kernels/backend_tables.hpp"
#include "core/kernels/fast_transform.hpp"
#include "core/kernels/rebin.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/expr.hpp"
#include "core/ops/ops.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

using kernels::Backend;
using kernels::KernelTable;

/// Restores the active backend on test exit, pass or fail.
struct BackendGuard {
  Backend saved = kernels::active_backend();
  ~BackendGuard() { kernels::set_backend(saved); }
};

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kNeon})
    if (kernels::backend_available(b)) out.push_back(b);
  return out;
}

/// Bitwise double equality (NaN payloads included): the contract is bit
/// identity, not numeric closeness.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::hex
         << std::bit_cast<std::uint64_t>(a) << " vs "
         << std::bit_cast<std::uint64_t>(b) << ")";
}

// ---------------------------------------------------------------------------
// Dispatch selection.

TEST(BackendDispatch, ParseBackendName) {
  bool bad = false;
  EXPECT_EQ(kernels::parse_backend_name("scalar", &bad), Backend::kScalar);
  EXPECT_FALSE(bad);
  EXPECT_EQ(kernels::parse_backend_name("avx2", &bad), Backend::kAvx2);
  EXPECT_FALSE(bad);
  EXPECT_EQ(kernels::parse_backend_name("neon", &bad), Backend::kNeon);
  EXPECT_FALSE(bad);
  EXPECT_EQ(kernels::parse_backend_name("sse9000", &bad), Backend::kScalar);
  EXPECT_TRUE(bad);
  bad = false;
  EXPECT_EQ(kernels::parse_backend_name("", &bad), Backend::kScalar);
  EXPECT_TRUE(bad);
}

TEST(BackendDispatch, NamesRoundTrip) {
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kNeon}) {
    bool bad = true;
    EXPECT_EQ(kernels::parse_backend_name(kernels::backend_name(b), &bad), b);
    EXPECT_FALSE(bad);
  }
}

TEST(BackendDispatch, ScalarAlwaysAvailable) {
  BackendGuard guard;
  EXPECT_TRUE(kernels::backend_available(Backend::kScalar));
  EXPECT_TRUE(kernels::set_backend(Backend::kScalar));
  EXPECT_EQ(kernels::active_backend(), Backend::kScalar);
  EXPECT_STREQ(kernels::active().name, "scalar");
}

TEST(BackendDispatch, SetUnavailableBackendFailsAndChangesNothing) {
  BackendGuard guard;
  const Backend before = kernels::active_backend();
  for (Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (kernels::backend_available(b)) continue;
    EXPECT_FALSE(kernels::set_backend(b));
    EXPECT_EQ(kernels::active_backend(), before);
  }
}

TEST(BackendDispatch, ActiveTableMatchesActiveBackend) {
  BackendGuard guard;
  for (Backend b : available_backends()) {
    ASSERT_TRUE(kernels::set_backend(b));
    EXPECT_EQ(kernels::active_backend(), b);
    EXPECT_STREQ(kernels::active().name, kernels::backend_name(b));
  }
}

/// Startup resolution replayed against the environment this process actually
/// launched with — this is what the CC_KERNEL_BACKEND ctest legs exercise:
/// unset -> best available; valid and available -> that backend; invalid or
/// unavailable -> scalar (with a stderr warning, not an error).
TEST(BackendDispatch, StartupRespectsEnvironmentPolicy) {
  const char* env = std::getenv("CC_KERNEL_BACKEND");
  const Backend startup = kernels::startup_backend();
  if (env == nullptr) {
    Backend best = Backend::kScalar;
    if (kernels::backend_available(Backend::kAvx2)) best = Backend::kAvx2;
    if (kernels::backend_available(Backend::kNeon)) best = Backend::kNeon;
    EXPECT_EQ(startup, best);
    return;
  }
  bool bad = false;
  const Backend requested = kernels::parse_backend_name(env, &bad);
  if (bad || !kernels::backend_available(requested))
    EXPECT_EQ(startup, Backend::kScalar);
  else
    EXPECT_EQ(startup, requested);
  EXPECT_TRUE(kernels::backend_available(startup));
}

TEST(BackendDispatch, EverySlotOfEveryTableIsPopulated) {
  for (Backend b : available_backends()) {
    const KernelTable* table = nullptr;
    switch (b) {
      case Backend::kScalar:
        table = &kernels::internal::scalar_table();
        break;
      case Backend::kAvx2:
        table = kernels::internal::avx2_table();
        break;
      case Backend::kNeon:
        table = kernels::internal::neon_table();
        break;
    }
    ASSERT_NE(table, nullptr) << kernels::backend_name(b);
    EXPECT_NE(table->max_abs, nullptr);
    EXPECT_NE(table->dense_transform_axis, nullptr);
    EXPECT_NE(table->dct_axis, nullptr);
    EXPECT_NE(table->huffman_decode_run, nullptr);
    EXPECT_NE(table->i8.quantize_bins, nullptr);
    EXPECT_NE(table->i16.unbin_block, nullptr);
    EXPECT_NE(table->i32.decode_lincomb, nullptr);
    EXPECT_NE(table->i64.quantize_bins, nullptr);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity property matrix, one full pass per available backend.

class BackendBitIdentity : public ::testing::TestWithParam<Backend> {
 protected:
  const KernelTable& table() {
    switch (GetParam()) {
      case Backend::kAvx2:
        return *kernels::internal::avx2_table();
      case Backend::kNeon:
        return *kernels::internal::neon_table();
      case Backend::kScalar:
        break;
    }
    return kernels::internal::scalar_table();
  }
};

/// Coefficient-like doubles with adversarial structure: smooth values, exact
/// half-bin boundaries, clamp overshoots, signed zeros, denormals, huge
/// magnitudes, and (when @p with_nan) NaN/inf.
std::vector<double> adversarial_doubles(index_t count, std::uint64_t seed,
                                        bool with_nan) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(-3.0, 3.0);
  std::vector<double> out(static_cast<std::size_t>(count));
  for (index_t j = 0; j < count; ++j) {
    switch (rng() % 8) {
      case 0:
        out[j] = uniform(rng);
        break;
      case 1:  // Exact half-away rounding boundary.
        out[j] = (static_cast<double>(rng() % 201) - 100.0) + 0.5;
        break;
      case 2:  // Clamp overshoot.
        out[j] = (rng() % 2 ? 1.0 : -1.0) * (300.0 + uniform(rng));
        break;
      case 3:
        out[j] = rng() % 2 ? 0.0 : -0.0;
        break;
      case 4:
        out[j] = uniform(rng) * 1e-300;
        break;
      case 5:
        out[j] = uniform(rng) * 1e12;
        break;
      case 6:
        out[j] = with_nan && (rng() % 4 == 0)
                     ? std::numeric_limits<double>::quiet_NaN()
                     : uniform(rng);
        break;
      default:
        out[j] = with_nan && (rng() % 4 == 0)
                     ? (rng() % 2 ? 1.0 : -1.0) *
                           std::numeric_limits<double>::infinity()
                     : uniform(rng);
        break;
    }
  }
  return out;
}

/// Odd lengths around the vector widths so every tail path runs.
const index_t kCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 67, 256, 261};

TEST_P(BackendBitIdentity, MaxAbs) {
  const KernelTable& t = table();
  for (index_t count : kCounts) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const std::vector<double> c =
          adversarial_doubles(count, 1000 + seed, /*with_nan=*/seed % 2 == 1);
      EXPECT_TRUE(BitEqual(t.max_abs(c.data(), count),
                           kernels::max_abs(c.data(), count)))
          << "count " << count << " seed " << seed;
    }
  }
}

template <typename BinT>
void check_rebin_family(const KernelTable& t) {
  const double radii[] = {1.0, 100.0,
                          std::floor(static_cast<double>(
                              std::numeric_limits<BinT>::max() > 0x7fffffff
                                  ? 0x7fffffff
                                  : std::numeric_limits<BinT>::max()))};
  for (index_t count : kCounts) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const std::vector<double> c =
          adversarial_doubles(count, 7000 + seed, /*with_nan=*/seed == 3);
      for (double r : radii) {
        // quantize_bins: inv chosen like the codec does (r / biggest).
        const double biggest = kernels::max_abs(c.data(), count);
        const double inv = biggest > 0.0 ? r / biggest : 1.0;
        std::vector<BinT> bins_simd(static_cast<std::size_t>(count));
        std::vector<BinT> bins_ref(static_cast<std::size_t>(count));
        kernels::bins<BinT>(t).quantize_bins(c.data(), bins_simd.data(), count,
                                             inv, r);
        kernels::quantize_bins(c.data(), bins_ref.data(), count, inv, r);
        ASSERT_EQ(bins_simd, bins_ref)
            << "quantize count " << count << " r " << r << " seed " << seed;

        // unbin_block on those bins.
        std::vector<double> back_simd(static_cast<std::size_t>(count));
        std::vector<double> back_ref(static_cast<std::size_t>(count));
        const double scale = biggest > 0.0 ? biggest / r : 0.25;
        kernels::bins<BinT>(t).unbin_block(bins_ref.data(), count, scale,
                                           back_simd.data());
        kernels::unbin_block(bins_ref.data(), count, scale, back_ref.data());
        for (index_t j = 0; j < count; ++j)
          ASSERT_TRUE(BitEqual(back_simd[j], back_ref[j]))
              << "unbin count " << count << " j " << j;

        // The dispatched rebin_block composition vs the scalar one.
        std::vector<BinT> out_simd(static_cast<std::size_t>(count));
        std::vector<BinT> out_ref(static_cast<std::size_t>(count));
        const double b_simd = kernels::rebin_block(t, c.data(), count, r,
                                                   FloatType::kFloat32,
                                                   out_simd.data());
        const double b_ref = kernels::rebin_block(c.data(), count, r,
                                                  FloatType::kFloat32,
                                                  out_ref.data());
        ASSERT_TRUE(BitEqual(b_simd, b_ref));
        ASSERT_EQ(out_simd, out_ref);
      }
    }
  }
  // All-zero block: the zero-fill path.
  std::vector<double> zeros(9, 0.0);
  std::vector<BinT> bins_out(9, BinT{42});
  const double biggest = kernels::rebin_block(t, zeros.data(), 9, 100.0,
                                              FloatType::kFloat32,
                                              bins_out.data());
  EXPECT_EQ(biggest, 0.0);
  for (BinT b : bins_out) EXPECT_EQ(b, BinT{0});
}

TEST_P(BackendBitIdentity, RebinFamilyInt8) {
  check_rebin_family<std::int8_t>(table());
}
TEST_P(BackendBitIdentity, RebinFamilyInt16) {
  check_rebin_family<std::int16_t>(table());
}
TEST_P(BackendBitIdentity, RebinFamilyInt32) {
  check_rebin_family<std::int32_t>(table());
}
TEST_P(BackendBitIdentity, RebinFamilyInt64) {
  check_rebin_family<std::int64_t>(table());
}

template <typename BinT>
void check_decode_lincomb(const KernelTable& t) {
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> weight(-2.0, 2.0);
  for (index_t count : kCounts) {
    for (index_t operands = 1; operands <= 7; ++operands) {
      std::vector<std::vector<BinT>> rows(static_cast<std::size_t>(operands));
      std::vector<const BinT*> row_ptrs;
      std::vector<double> scales;
      for (auto& row : rows) {
        row.resize(static_cast<std::size_t>(count));
        for (auto& b : row)
          b = static_cast<BinT>(static_cast<std::int64_t>(rng()) %
                                (std::int64_t{1} << 7));
        row_ptrs.push_back(row.data());
        scales.push_back(weight(rng));
      }
      std::vector<double> out_simd(static_cast<std::size_t>(count));
      std::vector<double> out_ref(static_cast<std::size_t>(count));
      kernels::bins<BinT>(t).decode_lincomb(row_ptrs.data(), scales.data(),
                                            operands, count, out_simd.data());
      kernels::decode_lincomb(row_ptrs.data(), scales.data(), operands, count,
                              out_ref.data());
      for (index_t j = 0; j < count; ++j)
        ASSERT_TRUE(BitEqual(out_simd[j], out_ref[j]))
            << "operands " << operands << " count " << count << " j " << j;
    }
  }
}

TEST_P(BackendBitIdentity, DecodeLincombInt8) {
  check_decode_lincomb<std::int8_t>(table());
}
TEST_P(BackendBitIdentity, DecodeLincombInt16) {
  check_decode_lincomb<std::int16_t>(table());
}
TEST_P(BackendBitIdentity, DecodeLincombInt32) {
  check_decode_lincomb<std::int32_t>(table());
}
TEST_P(BackendBitIdentity, DecodeLincombInt64) {
  check_decode_lincomb<std::int64_t>(table());
}

TEST_P(BackendBitIdentity, DenseTransformAxis) {
  const KernelTable& t = table();
  std::mt19937_64 rng(808);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  for (index_t n : {index_t{1}, index_t{2}, index_t{3}, index_t{5}, index_t{8},
                    index_t{16}}) {
    std::vector<double> matrix(static_cast<std::size_t>(n * n));
    for (auto& m : matrix) m = uniform(rng);
    for (index_t outer : {index_t{1}, index_t{3}}) {
      for (index_t inner : {index_t{1}, index_t{3}, index_t{16}}) {
        const index_t volume = outer * n * inner;
        std::vector<double> src(static_cast<std::size_t>(volume));
        for (auto& v : src) v = uniform(rng);
        for (bool forward : {true, false}) {
          std::vector<double> dst_simd(static_cast<std::size_t>(volume), -7.0);
          std::vector<double> dst_ref(static_cast<std::size_t>(volume), -7.0);
          t.dense_transform_axis(src.data(), dst_simd.data(), matrix.data(), n,
                                 outer, inner, forward);
          kernels::dense_transform_axis(src.data(), dst_ref.data(),
                                        matrix.data(), n, outer, inner,
                                        forward);
          for (index_t j = 0; j < volume; ++j)
            ASSERT_TRUE(BitEqual(dst_simd[j], dst_ref[j]))
                << "n " << n << " outer " << outer << " inner " << inner
                << " fwd " << forward << " j " << j;
        }
      }
    }
  }
}

TEST_P(BackendBitIdentity, LeeDctAxisAllSupportedSizes) {
  const KernelTable& t = table();
  std::mt19937_64 rng(909);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  for (index_t n : {index_t{2}, index_t{4}, index_t{8}, index_t{16},
                    index_t{32}, index_t{64}, index_t{128}}) {
    for (index_t outer : {index_t{1}, index_t{3}}) {
      for (index_t inner : {index_t{1}, index_t{3}, index_t{8}}) {
        const index_t volume = outer * n * inner;
        std::vector<double> base(static_cast<std::size_t>(volume));
        for (auto& v : base) v = uniform(rng);
        for (bool forward : {true, false}) {
          std::vector<double> data_simd = base;
          std::vector<double> data_ref = base;
          std::vector<double> tmp_simd(static_cast<std::size_t>(volume));
          std::vector<double> tmp_ref(static_cast<std::size_t>(volume));
          t.dct_axis(data_simd.data(), tmp_simd.data(), n, outer, inner,
                     forward);
          kernels::dct_fast_axis(data_ref.data(), tmp_ref.data(), n, outer,
                                 inner, forward);
          for (index_t j = 0; j < volume; ++j)
            ASSERT_TRUE(BitEqual(data_simd[j], data_ref[j]))
                << "n " << n << " outer " << outer << " inner " << inner
                << " fwd " << forward << " j " << j;
        }
      }
    }
  }
}

/// End to end: the full codec (compress bytes, lincomb indices, decompressed
/// values) must be identical whichever backend is active.
TEST_P(BackendBitIdentity, EndToEndCodecMatchesScalarBackend) {
  BackendGuard guard;
  CompressorSettings settings;
  settings.block_shape = Shape{16, 16};
  settings.float_type = FloatType::kFloat32;
  settings.index_type = IndexType::kInt16;
  Compressor compressor(settings);
  Rng rng(777);
  const NDArray<double> a_raw = random_smooth(Shape{48, 80}, rng, 6);
  const NDArray<double> b_raw = random_smooth(Shape{48, 80}, rng, 6);

  auto run = [&] {
    const CompressedArray a = compressor.compress(a_raw);
    const CompressedArray b = compressor.compress(b_raw);
    const CompressedArray mix = a + 0.5 * b - 0.125 * a;
    return std::make_tuple(a.biggest, a.indices, mix.biggest, mix.indices,
                           compressor.decompress(mix).vector());
  };

  ASSERT_TRUE(kernels::set_backend(Backend::kScalar));
  const auto reference = run();
  ASSERT_TRUE(kernels::set_backend(GetParam()));
  EXPECT_EQ(run(), reference);
}

INSTANTIATE_TEST_SUITE_P(
    AllAvailable, BackendBitIdentity, ::testing::ValuesIn(available_backends()),
    [](const ::testing::TestParamInfo<Backend>& info) {
      return std::string(kernels::backend_name(info.param));
    });

}  // namespace
}  // namespace pyblaz
