#include "szx/huffman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>

namespace szx {
namespace {

using pyblaz::BitReader;
using pyblaz::BitWriter;

TEST(Huffman, RoundTripSkewedDistribution) {
  std::vector<std::uint64_t> freq = {1000, 500, 100, 10, 1};
  HuffmanCoder coder(freq);

  std::vector<int> message = {0, 0, 1, 2, 0, 4, 3, 1, 0, 0, 2, 1};
  BitWriter writer;
  for (int s : message) coder.encode(writer, s);
  BitReader reader(writer.bytes());
  for (int s : message) EXPECT_EQ(coder.decode(reader), s);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freq = {1000, 500, 100, 10, 1};
  HuffmanCoder coder(freq);
  const auto& lengths = coder.code_lengths();
  EXPECT_LE(lengths[0], lengths[2]);
  EXPECT_LE(lengths[2], lengths[4]);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freq = {0, 42, 0};
  HuffmanCoder coder(freq);
  BitWriter writer;
  for (int k = 0; k < 5; ++k) coder.encode(writer, 1);
  BitReader reader(writer.bytes());
  for (int k = 0; k < 5; ++k) EXPECT_EQ(coder.decode(reader), 1);
  EXPECT_EQ(writer.size_bits(), 5u);  // 1 bit per symbol.
}

TEST(Huffman, TwoSymbolsAreOneBitEach) {
  std::vector<std::uint64_t> freq = {7, 3};
  HuffmanCoder coder(freq);
  EXPECT_EQ(coder.code_lengths()[0], 1);
  EXPECT_EQ(coder.code_lengths()[1], 1);
}

TEST(Huffman, CanonicalRebuildFromLengthsMatches) {
  std::vector<std::uint64_t> freq = {50, 20, 20, 5, 3, 2};
  HuffmanCoder encoder(freq);
  HuffmanCoder decoder = HuffmanCoder::from_code_lengths(encoder.code_lengths());

  std::mt19937 rng(7);
  std::vector<int> message;
  for (int k = 0; k < 200; ++k) message.push_back(static_cast<int>(rng() % 6));
  BitWriter writer;
  for (int s : message) encoder.encode(writer, s);
  BitReader reader(writer.bytes());
  for (int s : message) ASSERT_EQ(decoder.decode(reader), s);
}

TEST(Huffman, NearEntropyOnGeometricDistribution) {
  // The expected code length must be within 1 bit of the entropy (Huffman's
  // optimality guarantee).
  std::vector<std::uint64_t> freq;
  std::uint64_t f = 1 << 20;
  for (int s = 0; s < 16; ++s) {
    freq.push_back(f);
    f = std::max<std::uint64_t>(f / 2, 1);
  }
  HuffmanCoder coder(freq);
  double total = 0.0, entropy = 0.0;
  for (std::uint64_t w : freq) total += static_cast<double>(w);
  for (std::uint64_t w : freq) {
    const double p = static_cast<double>(w) / total;
    entropy -= p * std::log2(p);
  }
  const double expected = coder.expected_bits(freq);
  EXPECT_GE(expected, entropy - 1e-9);
  EXPECT_LE(expected, entropy + 1.0);
}

TEST(Huffman, LargeSparseAlphabet) {
  // The szx use case: tens of thousands of symbols, few used.
  std::vector<std::uint64_t> freq(65538, 0);
  freq[32767] = 10000;  // Zero-residual bin.
  freq[32766] = 3000;
  freq[32768] = 3000;
  freq[65537] = 5;  // Outlier marker.
  HuffmanCoder coder(freq);

  BitWriter writer;
  std::vector<int> message = {32767, 32767, 32766, 65537, 32768, 32767};
  for (int s : message) coder.encode(writer, s);
  BitReader reader(writer.bytes());
  for (int s : message) EXPECT_EQ(coder.decode(reader), s);
}

TEST(Huffman, RandomizedRoundTrips) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const int alphabet = 2 + static_cast<int>(rng() % 64);
    std::vector<std::uint64_t> freq(static_cast<std::size_t>(alphabet));
    for (auto& f : freq) f = rng() % 1000;
    freq[0] = 1;  // At least one used symbol.
    HuffmanCoder coder(freq);

    std::vector<int> message;
    for (int k = 0; k < 500; ++k) {
      const int s = static_cast<int>(rng() % static_cast<std::uint64_t>(alphabet));
      if (freq[static_cast<std::size_t>(s)] > 0) message.push_back(s);
    }
    BitWriter writer;
    for (int s : message) coder.encode(writer, s);
    BitReader reader(writer.bytes());
    for (int s : message) ASSERT_EQ(coder.decode(reader), s) << "trial " << trial;
  }
}

TEST(Huffman, RejectsDegenerateInput) {
  EXPECT_THROW(HuffmanCoder(std::vector<std::uint64_t>{}), std::invalid_argument);
  EXPECT_THROW(HuffmanCoder(std::vector<std::uint64_t>{0, 0, 0}),
               std::invalid_argument);
}

/// Batched decoding oracle: decode_run plus the documented serial-decode
/// fallback must reproduce symbol-at-a-time decode() exactly — same symbols,
/// same final bit position.
std::vector<int> decode_all_batched(const HuffmanCoder& coder,
                                    BitReader& reader, std::size_t total,
                                    std::int32_t stop_symbol = -1) {
  std::vector<int> out;
  std::vector<std::int32_t> run(64);
  while (out.size() < total) {
    const auto want = static_cast<pyblaz::index_t>(
        std::min(run.size(), total - out.size()));
    pyblaz::index_t got = coder.decode_run(reader, run.data(), want, stop_symbol);
    if (got < want &&
        (got == 0 || run[static_cast<std::size_t>(got - 1)] != stop_symbol)) {
      // The next code is longer than the LUT window: the stream sits at its
      // start, so one serial decode resolves it.
      const int symbol = coder.decode(reader);
      EXPECT_GE(symbol, 0);
      run[static_cast<std::size_t>(got++)] = symbol;
    }
    for (pyblaz::index_t t = 0; t < got; ++t)
      out.push_back(static_cast<int>(run[static_cast<std::size_t>(t)]));
  }
  return out;
}

TEST(Huffman, DecodeRunMatchesSerialDecode) {
  std::mt19937_64 rng(4321);
  for (int trial = 0; trial < 8; ++trial) {
    const int alphabet = 2 + static_cast<int>(rng() % 200);
    std::vector<std::uint64_t> freq(static_cast<std::size_t>(alphabet));
    for (auto& f : freq) f = 1 + rng() % 1000;
    // A steep skew gives a mix of short (LUT-window) and long codes.
    freq[0] = 1u << 20;
    HuffmanCoder coder(freq);

    std::vector<int> message;
    for (int k = 0; k < 2000; ++k)
      message.push_back(static_cast<int>(rng() % static_cast<std::uint64_t>(alphabet)));
    BitWriter writer;
    for (int s : message) coder.encode(writer, s);

    BitReader serial(writer.bytes());
    std::vector<int> expected;
    for (std::size_t k = 0; k < message.size(); ++k)
      expected.push_back(coder.decode(serial));

    BitReader batched(writer.bytes());
    const std::vector<int> got =
        decode_all_batched(coder, batched, message.size());
    ASSERT_EQ(got, expected) << "trial " << trial;
    ASSERT_EQ(batched.position(), serial.position()) << "trial " << trial;
  }
}

TEST(Huffman, DecodeRunHandlesCodesLongerThanTheLutWindow) {
  // 65538 symbols with flat frequencies forces code lengths far beyond the
  // 8-bit LUT window, so decode_run returns short and the serial fallback
  // carries every symbol (the nsyms == 0 rewind path).
  const std::size_t alphabet = 65538;
  std::vector<std::uint64_t> freq(alphabet, 1);
  HuffmanCoder coder(freq);

  std::mt19937_64 rng(7);
  std::vector<int> message;
  for (int k = 0; k < 300; ++k)
    message.push_back(static_cast<int>(rng() % alphabet));
  BitWriter writer;
  for (int s : message) coder.encode(writer, s);

  BitReader serial(writer.bytes());
  std::vector<int> expected;
  for (std::size_t k = 0; k < message.size(); ++k)
    expected.push_back(coder.decode(serial));

  BitReader batched(writer.bytes());
  const std::vector<int> got =
      decode_all_batched(coder, batched, message.size());
  ASSERT_EQ(got, expected);
  ASSERT_EQ(batched.position(), serial.position());
}

TEST(Huffman, DecodeRunStopsAfterStopSymbol) {
  // Skewed enough that symbol 0 is one bit and pairs of it share one LUT
  // probe — the case where a stop symbol could incorrectly be emitted as the
  // second symbol of a two-symbol entry.
  std::vector<std::uint64_t> freq = {1u << 20, 1000, 500, 100, 10};
  HuffmanCoder coder(freq);
  const std::int32_t stop = 0;

  // stop appears mid-stream followed by more symbols; the run must end AT the
  // stop with the stream positioned right after its code.
  const std::vector<int> message = {1, 2, 0, 3, 4, 1};
  BitWriter writer;
  for (int s : message) coder.encode(writer, s);

  BitReader reader(writer.bytes());
  std::vector<std::int32_t> run(16);
  const pyblaz::index_t got = coder.decode_run(reader, run.data(), 16, stop);
  ASSERT_GE(got, 1);
  EXPECT_EQ(run[static_cast<std::size_t>(got - 1)], stop);
  for (pyblaz::index_t t = 0; t + 1 < got; ++t)
    EXPECT_EQ(run[static_cast<std::size_t>(t)],
              message[static_cast<std::size_t>(t)]);

  // The stream sits immediately after the stop symbol's code: serial decode
  // must pick up with the symbols that followed it.
  BitReader oracle(writer.bytes());
  for (pyblaz::index_t t = 0; t < got; ++t) (void)coder.decode(oracle);
  EXPECT_EQ(reader.position(), oracle.position());
  EXPECT_EQ(coder.decode(reader), 3);
  EXPECT_EQ(coder.decode(reader), 4);
  EXPECT_EQ(coder.decode(reader), 1);
}

TEST(Huffman, DecodeRunBackToBackStopSymbols) {
  // Consecutive stop symbols: each run must carry exactly one stop at its
  // end, never two from one doubled LUT entry.
  std::vector<std::uint64_t> freq = {1u << 20, 1000, 500};
  HuffmanCoder coder(freq);
  const std::int32_t stop = 0;

  const std::vector<int> message = {0, 0, 1, 0, 2};
  BitWriter writer;
  for (int s : message) coder.encode(writer, s);

  BitReader reader(writer.bytes());
  std::vector<std::int32_t> run(16);
  std::vector<int> all;
  while (all.size() < message.size()) {
    const pyblaz::index_t got = coder.decode_run(
        reader, run.data(),
        static_cast<pyblaz::index_t>(message.size() - all.size()), stop);
    ASSERT_GE(got, 1);
    for (pyblaz::index_t t = 0; t < got; ++t) {
      all.push_back(static_cast<int>(run[static_cast<std::size_t>(t)]));
      if (run[static_cast<std::size_t>(t)] == stop)
        ASSERT_EQ(t, got - 1) << "stop symbol not last in its run";
    }
  }
  EXPECT_EQ(all, message);
}

TEST(Huffman, DecodeOnEmptyStreamReturnsError) {
  HuffmanCoder coder(std::vector<std::uint64_t>{5, 5, 5, 5});
  std::vector<std::uint8_t> empty;
  BitReader reader(empty);
  // Reads past the end yield zeros; a fully-zero walk either resolves to the
  // all-zeros code or fails; either way it must not crash.
  (void)coder.decode(reader);
}

}  // namespace
}  // namespace szx
