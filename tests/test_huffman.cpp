#include "szx/huffman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>

namespace szx {
namespace {

using pyblaz::BitReader;
using pyblaz::BitWriter;

TEST(Huffman, RoundTripSkewedDistribution) {
  std::vector<std::uint64_t> freq = {1000, 500, 100, 10, 1};
  HuffmanCoder coder(freq);

  std::vector<int> message = {0, 0, 1, 2, 0, 4, 3, 1, 0, 0, 2, 1};
  BitWriter writer;
  for (int s : message) coder.encode(writer, s);
  BitReader reader(writer.bytes());
  for (int s : message) EXPECT_EQ(coder.decode(reader), s);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freq = {1000, 500, 100, 10, 1};
  HuffmanCoder coder(freq);
  const auto& lengths = coder.code_lengths();
  EXPECT_LE(lengths[0], lengths[2]);
  EXPECT_LE(lengths[2], lengths[4]);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freq = {0, 42, 0};
  HuffmanCoder coder(freq);
  BitWriter writer;
  for (int k = 0; k < 5; ++k) coder.encode(writer, 1);
  BitReader reader(writer.bytes());
  for (int k = 0; k < 5; ++k) EXPECT_EQ(coder.decode(reader), 1);
  EXPECT_EQ(writer.size_bits(), 5u);  // 1 bit per symbol.
}

TEST(Huffman, TwoSymbolsAreOneBitEach) {
  std::vector<std::uint64_t> freq = {7, 3};
  HuffmanCoder coder(freq);
  EXPECT_EQ(coder.code_lengths()[0], 1);
  EXPECT_EQ(coder.code_lengths()[1], 1);
}

TEST(Huffman, CanonicalRebuildFromLengthsMatches) {
  std::vector<std::uint64_t> freq = {50, 20, 20, 5, 3, 2};
  HuffmanCoder encoder(freq);
  HuffmanCoder decoder = HuffmanCoder::from_code_lengths(encoder.code_lengths());

  std::mt19937 rng(7);
  std::vector<int> message;
  for (int k = 0; k < 200; ++k) message.push_back(static_cast<int>(rng() % 6));
  BitWriter writer;
  for (int s : message) encoder.encode(writer, s);
  BitReader reader(writer.bytes());
  for (int s : message) ASSERT_EQ(decoder.decode(reader), s);
}

TEST(Huffman, NearEntropyOnGeometricDistribution) {
  // The expected code length must be within 1 bit of the entropy (Huffman's
  // optimality guarantee).
  std::vector<std::uint64_t> freq;
  std::uint64_t f = 1 << 20;
  for (int s = 0; s < 16; ++s) {
    freq.push_back(f);
    f = std::max<std::uint64_t>(f / 2, 1);
  }
  HuffmanCoder coder(freq);
  double total = 0.0, entropy = 0.0;
  for (std::uint64_t w : freq) total += static_cast<double>(w);
  for (std::uint64_t w : freq) {
    const double p = static_cast<double>(w) / total;
    entropy -= p * std::log2(p);
  }
  const double expected = coder.expected_bits(freq);
  EXPECT_GE(expected, entropy - 1e-9);
  EXPECT_LE(expected, entropy + 1.0);
}

TEST(Huffman, LargeSparseAlphabet) {
  // The szx use case: tens of thousands of symbols, few used.
  std::vector<std::uint64_t> freq(65538, 0);
  freq[32767] = 10000;  // Zero-residual bin.
  freq[32766] = 3000;
  freq[32768] = 3000;
  freq[65537] = 5;  // Outlier marker.
  HuffmanCoder coder(freq);

  BitWriter writer;
  std::vector<int> message = {32767, 32767, 32766, 65537, 32768, 32767};
  for (int s : message) coder.encode(writer, s);
  BitReader reader(writer.bytes());
  for (int s : message) EXPECT_EQ(coder.decode(reader), s);
}

TEST(Huffman, RandomizedRoundTrips) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const int alphabet = 2 + static_cast<int>(rng() % 64);
    std::vector<std::uint64_t> freq(static_cast<std::size_t>(alphabet));
    for (auto& f : freq) f = rng() % 1000;
    freq[0] = 1;  // At least one used symbol.
    HuffmanCoder coder(freq);

    std::vector<int> message;
    for (int k = 0; k < 500; ++k) {
      const int s = static_cast<int>(rng() % static_cast<std::uint64_t>(alphabet));
      if (freq[static_cast<std::size_t>(s)] > 0) message.push_back(s);
    }
    BitWriter writer;
    for (int s : message) coder.encode(writer, s);
    BitReader reader(writer.bytes());
    for (int s : message) ASSERT_EQ(coder.decode(reader), s) << "trial " << trial;
  }
}

TEST(Huffman, RejectsDegenerateInput) {
  EXPECT_THROW(HuffmanCoder(std::vector<std::uint64_t>{}), std::invalid_argument);
  EXPECT_THROW(HuffmanCoder(std::vector<std::uint64_t>{0, 0, 0}),
               std::invalid_argument);
}

TEST(Huffman, DecodeOnEmptyStreamReturnsError) {
  HuffmanCoder coder(std::vector<std::uint64_t>{5, 5, 5, 5});
  std::vector<std::uint8_t> empty;
  BitReader reader(empty);
  // Reads past the end yield zeros; a fully-zero walk either resolves to the
  // all-zeros code or fails; either way it must not crash.
  (void)coder.decode(reader);
}

}  // namespace
}  // namespace szx
