/// The fused n-ary lincomb pipeline (ops::lincomb): wrapper equivalences
/// (add/subtract/add_scalar/linear_combination are bit-identical thin
/// wrappers), exactness vs. the chained baseline where the arithmetic
/// coincides, the error-bound property (one terminal rebin never loses to a
/// chained per-op rebin sequence, measured against the exact combination of
/// the decoded operands), thread-count invariance, the reusable-workspace
/// decode kernel, and the span accessor for specified coefficients.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/kernels/rebin.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

CompressorSettings settings_for(Shape block, FloatType ftype = FloatType::kFloat32,
                                IndexType itype = IndexType::kInt8) {
  return {.block_shape = std::move(block),
          .float_type = ftype,
          .index_type = itype};
}

double max_abs_difference(const NDArray<double>& a, const NDArray<double>& b) {
  double worst = 0.0;
  for (index_t k = 0; k < a.size(); ++k)
    worst = std::max(worst, std::fabs(a[k] - b[k]));
  return worst;
}

TEST(OpsLincomb, WrappersAreBitIdenticalToLincomb) {
  Compressor compressor(settings_for(Shape{8, 8}));
  Rng rng(2301);
  const CompressedArray a = compressor.compress(random_smooth(Shape{40, 24}, rng, 5));
  const CompressedArray b = compressor.compress(random_smooth(Shape{40, 24}, rng, 5));

  const CompressedArray sum = ops::add(a, b);
  const CompressedArray sum_lc = ops::lincomb({{1.0, &a}, {1.0, &b}});
  EXPECT_EQ(sum.indices, sum_lc.indices);
  EXPECT_EQ(sum.biggest, sum_lc.biggest);

  const CompressedArray diff = ops::subtract(a, b);
  const CompressedArray diff_lc = ops::lincomb({{1.0, &a}, {-1.0, &b}});
  EXPECT_EQ(diff.indices, diff_lc.indices);
  EXPECT_EQ(diff.biggest, diff_lc.biggest);

  const CompressedArray shifted = ops::add_scalar(a, 1.75);
  const CompressedArray shifted_lc = ops::lincomb({{1.0, &a}}, 1.75);
  EXPECT_EQ(shifted.indices, shifted_lc.indices);
  EXPECT_EQ(shifted.biggest, shifted_lc.biggest);

  const CompressedArray combo = ops::linear_combination(2.5, a, -0.75, b);
  const CompressedArray combo_lc = ops::lincomb({{2.5, &a}, {-0.75, &b}});
  EXPECT_EQ(combo.indices, combo_lc.indices);
  EXPECT_EQ(combo.biggest, combo_lc.biggest);
}

TEST(OpsLincomb, SubtractStillMatchesAddOfNegation) {
  // The fused subtract folds the sign into the decode scale; the result must
  // stay bit-identical to the textbook A + (-B) formulation it replaced.
  Compressor compressor(settings_for(Shape{4, 4, 4}));
  Rng rng(2309);
  const CompressedArray a =
      compressor.compress(random_smooth(Shape{16, 12, 20}, rng, 4));
  const CompressedArray b =
      compressor.compress(random_smooth(Shape{16, 12, 20}, rng, 4));
  const CompressedArray fused = ops::subtract(a, b);
  const CompressedArray via_negate = ops::add(a, ops::negate(b));
  EXPECT_EQ(fused.indices, via_negate.indices);
  EXPECT_EQ(fused.biggest, via_negate.biggest);
}

TEST(OpsLincomb, TwoOperandFusedEqualsChainedWithEqualBinScales) {
  // With float64 coefficient storage, multiply_scalar's biggest-rescale is
  // exact (no float-type rounding of the bin scale), so the chained
  // multiply/multiply/add evaluates exactly the scales the fused kernel
  // feeds its one rebin: the two paths must agree bit for bit.
  Compressor compressor(settings_for(Shape{8, 8}, FloatType::kFloat64,
                                     IndexType::kInt16));
  Rng rng(2311);
  const CompressedArray a = compressor.compress(random_smooth(Shape{32, 32}, rng, 5));
  const CompressedArray b = compressor.compress(random_smooth(Shape{32, 32}, rng, 5));
  const double alpha = 1.5, beta = -2.25;

  const CompressedArray fused = ops::lincomb({{alpha, &a}, {beta, &b}});
  const CompressedArray chained = ops::add(ops::multiply_scalar(a, alpha),
                                           ops::multiply_scalar(b, beta));
  EXPECT_EQ(fused.indices, chained.indices);
  EXPECT_EQ(fused.biggest, chained.biggest);
}

TEST(OpsLincomb, FusedErrorNeverExceedsChainedError) {
  // Property (the Table I error argument): the fused n-ary path rebins once,
  // the chained path once per binary op, and rebinning is the only error
  // source — so against the exact combination of the decoded operands the
  // fused result is at least as accurate, across shapes, block shapes, and
  // arities.
  struct Case {
    Shape array_shape;
    Shape block_shape;
    int operands;
    std::uint64_t seed;
  };
  const Case cases[] = {
      {Shape{32, 32}, Shape{8, 8}, 3, 1},
      {Shape{40, 24}, Shape{8, 8}, 4, 2},
      {Shape{33, 21}, Shape{8, 8}, 3, 3},  // Ragged edges.
      {Shape{16, 16, 16}, Shape{4, 4, 4}, 5, 4},
      {Shape{64}, Shape{16}, 3, 5},
  };
  for (const Case& c : cases) {
    Compressor compressor(settings_for(c.block_shape));
    Rng rng(7000 + c.seed);
    std::vector<CompressedArray> arrays;
    std::vector<NDArray<double>> decoded;
    std::vector<double> weights;
    for (int i = 0; i < c.operands; ++i) {
      arrays.push_back(
          compressor.compress(random_smooth(c.array_shape, rng, 5)));
      decoded.push_back(compressor.decompress(arrays.back()));
      weights.push_back(rng.uniform(-2.0, 2.0));
    }

    // Exact combination of what the operands actually store.
    NDArray<double> exact(c.array_shape);
    for (index_t k = 0; k < exact.size(); ++k) {
      double total = 0.0;
      for (int i = 0; i < c.operands; ++i)
        total += weights[static_cast<std::size_t>(i)]
                 * decoded[static_cast<std::size_t>(i)][k];
      exact[k] = total;
    }

    std::vector<const CompressedArray*> pointers;
    for (const CompressedArray& a : arrays) pointers.push_back(&a);
    const CompressedArray fused =
        ops::lincomb(std::span<const CompressedArray* const>(pointers),
                     std::span<const double>(weights));

    CompressedArray chained =
        ops::multiply_scalar(arrays[0], weights[0]);
    for (int i = 1; i < c.operands; ++i)
      chained = ops::add(chained,
                         ops::multiply_scalar(arrays[static_cast<std::size_t>(i)],
                                              weights[static_cast<std::size_t>(i)]));

    const double fused_error =
        max_abs_difference(compressor.decompress(fused), exact);
    const double chained_error =
        max_abs_difference(compressor.decompress(chained), exact);
    EXPECT_LE(fused_error, chained_error + 1e-12)
        << c.array_shape.to_string() << " blocks "
        << c.block_shape.to_string() << " n=" << c.operands;
    // And the fused error itself stays within a couple of binning quanta.
    EXPECT_LT(fused_error, 0.1) << c.array_shape.to_string();
  }
}

TEST(OpsLincomb, BiasMatchesScalarAdditionOnTopOfCombination) {
  Compressor compressor(settings_for(Shape{8, 8}, FloatType::kFloat64,
                                     IndexType::kInt32));
  Rng rng(2333);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng, 5);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng, 5);
  const CompressedArray a = compressor.compress(x);
  const CompressedArray b = compressor.compress(y);
  const NDArray<double> result = compressor.decompress(
      ops::lincomb({{2.0, &a}, {1.0, &b}}, 0.5));
  NDArray<double> truth = add_scalar(add(scale(x, 2.0), y), 0.5);
  EXPECT_LT(max_abs_difference(result, truth), 2e-5 * max_abs(truth));
}

TEST(OpsLincomb, ValidatesArguments) {
  Compressor compressor(settings_for(Shape{8, 8}));
  Rng rng(2341);
  const CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  const CompressedArray* operands[] = {&a};
  const double weights_ok[] = {1.0};
  const double weights_bad[] = {1.0, 2.0};

  EXPECT_THROW(ops::lincomb(std::span<const CompressedArray* const>(),
                            std::span<const double>()),
               std::invalid_argument);
  EXPECT_THROW(ops::lincomb(std::span<const CompressedArray* const>(operands),
                            std::span<const double>(weights_bad)),
               std::invalid_argument);

  // Layout mismatch.
  Compressor other(settings_for(Shape{4, 4}));
  const CompressedArray c = other.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_THROW(ops::lincomb({{1.0, &a}, {1.0, &c}}), std::invalid_argument);

  // Bias requires the DC coefficient.
  CompressorSettings pruned = settings_for(Shape{8, 8});
  std::vector<std::uint8_t> flags(64, 0);
  for (std::size_t k = 1; k <= 8; ++k) flags[k] = 1;  // DC (offset 0) pruned.
  pruned.mask = PruningMask::from_flags(Shape{8, 8}, std::move(flags));
  Compressor pruned_compressor(pruned);
  const CompressedArray d =
      pruned_compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_THROW(ops::lincomb({{1.0, &d}}, 1.0), std::invalid_argument);
  EXPECT_NO_THROW(ops::lincomb({{1.0, &d}}, 0.0));

  (void)weights_ok;
}

TEST(OpsLincomb, BitIdenticalAcrossThreadCounts) {
  Rng rng(2351);
  Compressor compressor(settings_for(Shape{8, 4, 8}));
  const CompressedArray a =
      compressor.compress(random_smooth(Shape{37, 18, 29}, rng, 5));
  const CompressedArray b =
      compressor.compress(random_smooth(Shape{37, 18, 29}, rng, 5));
  const CompressedArray c =
      compressor.compress(random_smooth(Shape{37, 18, 29}, rng, 5));

  parallel::set_num_threads(1);
  const CompressedArray reference =
      ops::lincomb({{1.0, &a}, {-0.5, &b}, {0.25, &c}});
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    const CompressedArray again =
        ops::lincomb({{1.0, &a}, {-0.5, &b}, {0.25, &c}});
    EXPECT_EQ(again.indices, reference.indices) << threads << " threads";
    EXPECT_EQ(again.biggest, reference.biggest) << threads << " threads";
  }
  parallel::set_num_threads(0);
}

TEST(KernelsDecodeLincomb, MatchesScalarDefinitionForAllArities) {
  Rng rng(2361);
  const index_t count = 96;
  for (index_t arity : {index_t{1}, index_t{2}, index_t{3}, index_t{4},
                        index_t{5}, index_t{7}}) {
    std::vector<std::vector<std::int8_t>> rows(static_cast<std::size_t>(arity));
    std::vector<const std::int8_t*> row_ptrs;
    std::vector<double> scales;
    for (auto& row : rows) {
      row.resize(static_cast<std::size_t>(count));
      for (auto& v : row)
        v = static_cast<std::int8_t>(rng.uniform(-127.0, 127.0));
      row_ptrs.push_back(row.data());
      scales.push_back(rng.uniform(-1.0, 1.0));
    }
    std::vector<double> out(static_cast<std::size_t>(count), 123.0);
    kernels::decode_lincomb(row_ptrs.data(), scales.data(), arity, count,
                            out.data());
    for (index_t j = 0; j < count; ++j) {
      double expected = 0.0;
      for (index_t i = 0; i < arity; ++i)
        expected += scales[static_cast<std::size_t>(i)] *
                    static_cast<double>(
                        rows[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(j)]);
      EXPECT_NEAR(out[static_cast<std::size_t>(j)], expected, 1e-12)
          << "arity " << arity << " slot " << j;
    }
  }
}

TEST(OpsSpecifiedCoefficients, SpanAccessorMatchesVectorAccessor) {
  Compressor compressor(settings_for(Shape{8, 8}));
  Rng rng(2371);
  const CompressedArray a =
      compressor.compress(random_smooth(Shape{24, 40}, rng, 5));
  const std::vector<double> via_vector = ops::specified_coefficients(a);

  std::vector<double> buffer(via_vector.size(), -1.0);
  ops::specified_coefficients_into(a, buffer);
  EXPECT_EQ(buffer, via_vector);

  std::vector<double> too_small(via_vector.size() - 1);
  EXPECT_THROW(ops::specified_coefficients_into(a, too_small),
               std::invalid_argument);
}

}  // namespace
}  // namespace pyblaz
