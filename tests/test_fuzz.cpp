/// Robustness fuzzing: deserializers must never crash or hang on corrupt
/// input — they either throw a typed cc::Error (kCorruptArchive /
/// kTruncated) or produce a structurally valid array.  §VI motivates this:
/// "an off-by-one error might not cause a visible alarm until one
/// inadvertently handles the wrong (and critical) data."  The heavyweight
/// sweeps (every truncation length × every format, thousands of seeded bit
/// flips, 100% single-bit detection on v3) live in tools/fuzz_archive.cpp,
/// which gates ctest as fuzz_archive_smoke; these tests keep the same
/// invariants pinned inside the unit suite where a debugger can reach them.

#include <gtest/gtest.h>

#include <random>

#include "core/codec/compressor.hpp"
#include "core/codec/serialization.hpp"
#include "core/error/error.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/util/rng.hpp"
#include "szx/szx.hpp"
#include "zfpx/zfpx.hpp"

namespace pyblaz {
namespace {

CompressedArray valid_compressed() {
  Compressor compressor({.block_shape = Shape{4, 4},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt8});
  Rng rng(1601);
  return compressor.compress(random_smooth(Shape{16, 16}, rng));
}

std::vector<std::uint8_t> valid_pyblaz_stream() {
  return serialize(valid_compressed());
}

TEST(Fuzz, PyblazDeserializeSurvivesBitFlips) {
  const std::vector<std::uint8_t> valid = valid_pyblaz_stream();
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> corrupted = valid;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = rng() % corrupted.size();
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    try {
      CompressedArray array = deserialize(corrupted);
      // If it parsed, the structure must be self-consistent.
      EXPECT_EQ(static_cast<index_t>(array.biggest.size()), array.num_blocks());
      EXPECT_EQ(static_cast<index_t>(array.indices.size()),
                array.num_blocks() * array.kept_per_block());
    } catch (const cc::Error&) {
      // Rejecting corrupt input with a typed error is the expected outcome.
    }
  }
}

/// Truncation at EVERY byte length, for each container format: the v1
/// magic-less layout, the chunked v2, and the checksummed v3 default.  A
/// truncated stream must raise a typed cc::Error — kTruncated when the
/// header promised more bytes, kCorruptArchive when the damage reads as
/// structural — or (for cuts past the decoded payload, possible only in the
/// unchecksummed formats) decode to the same array the full stream does.
TEST(Fuzz, EveryTruncationLengthYieldsTypedErrorOrIdenticalDecode) {
  const CompressedArray reference = valid_compressed();
  const std::vector<std::vector<std::uint8_t>> streams = {
      serialize_v1(reference), serialize_v2(reference), serialize(reference)};
  for (const std::vector<std::uint8_t>& valid : streams) {
    for (std::size_t keep = 0; keep < valid.size(); ++keep) {
      std::vector<std::uint8_t> truncated(
          valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(keep));
      try {
        CompressedArray array = deserialize(truncated);
        // Survived the cut: it must be *the* array, not a silent misread.
        ASSERT_EQ(array.shape, reference.shape);
        ASSERT_EQ(array.biggest, reference.biggest);
        ASSERT_EQ(array.indices, reference.indices);
      } catch (const cc::Error& e) {
        ASSERT_TRUE(e.code() == cc::ErrorCode::kTruncated ||
                    e.code() == cc::ErrorCode::kCorruptArchive)
            << "unexpected code for " << valid.size() << "-byte stream cut to "
            << keep << ": " << e.what();
      }
    }
  }
}

TEST(Fuzz, PyblazDeserializeSurvivesRandomBytes) {
  std::mt19937_64 rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(rng() % 512);
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng());
    try {
      (void)deserialize(garbage);
    } catch (const cc::Error&) {
    }
  }
}

TEST(Fuzz, SzxDecompressSurvivesBitFlips) {
  Rng data_rng(1607);
  szx::Compressed compressed =
      szx::compress(random_smooth(Shape{24, 24}, data_rng), {.error_bound = 1e-3});
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    szx::Compressed corrupted = compressed;
    const std::size_t byte = rng() % corrupted.stream.size();
    corrupted.stream[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    try {
      NDArray<double> array = szx::decompress(corrupted);
      EXPECT_GT(array.size(), 0);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Fuzz, ZfpxDecompressHandlesArbitraryPayloads) {
  // zfpx's fixed-rate format has no structural metadata to violate: any
  // stream of the right size decodes to *some* block values without fault.
  zfpx::Codec codec(2, 16.0);
  const Shape shape{16, 16};
  std::mt19937_64 rng(4);
  std::vector<std::uint8_t> stream(codec.compressed_bytes(shape));
  for (int trial = 0; trial < 50; ++trial) {
    for (auto& byte : stream) byte = static_cast<std::uint8_t>(rng());
    NDArray<double> array = codec.decompress(stream, shape);
    EXPECT_EQ(array.shape(), shape);
  }
}

TEST(Fuzz, RoundTripAfterHarmlessCorruptionStaysBounded) {
  // Flipping bits inside the F payload (past the header) must still yield a
  // decompressible array whose values are bounded by the per-block loose
  // L∞ bound — bin indices cannot escape [-r, r] by construction.  v3 would
  // reject the flip at its chunk checksum, so this drives the v2 container,
  // where a payload flip reaches the decoder.
  Compressor compressor({.block_shape = Shape{4, 4},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt8});
  Rng data_rng(1613);
  NDArray<double> array = random_smooth(Shape{16, 16}, data_rng);
  std::vector<std::uint8_t> stream = serialize_v2(compressor.compress(array));

  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> corrupted = stream;
    // Only flip bits in the last quarter (deep inside F).
    const std::size_t start = corrupted.size() * 3 / 4;
    const std::size_t byte = start + rng() % (corrupted.size() - start);
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    CompressedArray parsed = deserialize(corrupted);
    NDArray<double> restored = compressor.decompress(parsed);
    double worst = 0.0;
    for (double n : parsed.biggest) worst = std::max(worst, n);
    for (index_t k = 0; k < restored.size(); ++k)
      ASSERT_LE(std::fabs(restored[k]), 16.0 * worst + 1e-9);
  }
}

}  // namespace
}  // namespace pyblaz
