/// Robustness fuzzing: deserializers must never crash or hang on corrupt
/// input — they either throw std::invalid_argument or produce a structurally
/// valid array.  §VI motivates this: "an off-by-one error might not cause a
/// visible alarm until one inadvertently handles the wrong (and critical)
/// data."

#include <gtest/gtest.h>

#include <random>

#include "core/codec/compressor.hpp"
#include "core/codec/serialization.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/util/rng.hpp"
#include "szx/szx.hpp"
#include "zfpx/zfpx.hpp"

namespace pyblaz {
namespace {

std::vector<std::uint8_t> valid_pyblaz_stream() {
  Compressor compressor({.block_shape = Shape{4, 4},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt8});
  Rng rng(1601);
  return serialize(compressor.compress(random_smooth(Shape{16, 16}, rng)));
}

TEST(Fuzz, PyblazDeserializeSurvivesBitFlips) {
  const std::vector<std::uint8_t> valid = valid_pyblaz_stream();
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> corrupted = valid;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = rng() % corrupted.size();
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    try {
      CompressedArray array = deserialize(corrupted);
      // If it parsed, the structure must be self-consistent.
      EXPECT_EQ(static_cast<index_t>(array.biggest.size()), array.num_blocks());
      EXPECT_EQ(static_cast<index_t>(array.indices.size()),
                array.num_blocks() * array.kept_per_block());
    } catch (const std::invalid_argument&) {
      // Rejecting corrupt input is the expected outcome.
    }
  }
}

TEST(Fuzz, PyblazDeserializeSurvivesTruncation) {
  const std::vector<std::uint8_t> valid = valid_pyblaz_stream();
  for (std::size_t keep = 0; keep < valid.size(); keep += 3) {
    std::vector<std::uint8_t> truncated(valid.begin(),
                                        valid.begin() + static_cast<std::ptrdiff_t>(keep));
    try {
      (void)deserialize(truncated);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Fuzz, PyblazDeserializeSurvivesRandomBytes) {
  std::mt19937_64 rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(rng() % 512);
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng());
    try {
      (void)deserialize(garbage);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Fuzz, SzxDecompressSurvivesBitFlips) {
  Rng data_rng(1607);
  szx::Compressed compressed =
      szx::compress(random_smooth(Shape{24, 24}, data_rng), {.error_bound = 1e-3});
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    szx::Compressed corrupted = compressed;
    const std::size_t byte = rng() % corrupted.stream.size();
    corrupted.stream[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    try {
      NDArray<double> array = szx::decompress(corrupted);
      EXPECT_GT(array.size(), 0);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Fuzz, ZfpxDecompressHandlesArbitraryPayloads) {
  // zfpx's fixed-rate format has no structural metadata to violate: any
  // stream of the right size decodes to *some* block values without fault.
  zfpx::Codec codec(2, 16.0);
  const Shape shape{16, 16};
  std::mt19937_64 rng(4);
  std::vector<std::uint8_t> stream(codec.compressed_bytes(shape));
  for (int trial = 0; trial < 50; ++trial) {
    for (auto& byte : stream) byte = static_cast<std::uint8_t>(rng());
    NDArray<double> array = codec.decompress(stream, shape);
    EXPECT_EQ(array.shape(), shape);
  }
}

TEST(Fuzz, RoundTripAfterHarmlessCorruptionStaysBounded) {
  // Flipping bits inside the F payload (past the header) must still yield a
  // decompressible array whose values are bounded by the per-block loose
  // L∞ bound — bin indices cannot escape [-r, r] by construction.
  Compressor compressor({.block_shape = Shape{4, 4},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt8});
  Rng data_rng(1613);
  NDArray<double> array = random_smooth(Shape{16, 16}, data_rng);
  std::vector<std::uint8_t> stream = serialize(compressor.compress(array));

  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> corrupted = stream;
    // Only flip bits in the last quarter (deep inside F).
    const std::size_t start = corrupted.size() * 3 / 4;
    const std::size_t byte = start + rng() % (corrupted.size() - start);
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    CompressedArray parsed = deserialize(corrupted);
    NDArray<double> restored = compressor.decompress(parsed);
    double worst = 0.0;
    for (double n : parsed.biggest) worst = std::max(worst, n);
    for (index_t k = 0; k < restored.size(); ++k)
      ASSERT_LE(std::fabs(restored[k]), 16.0 * worst + 1e-9);
  }
}

}  // namespace
}  // namespace pyblaz
