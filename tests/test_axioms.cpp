/// Equational axioms for the compressed-space operations — the paper's §VI
/// observes that "formal verification of compression, decompression, and
/// compressed-space operations is almost a requirement ... by coming up with
/// equational axioms pertaining to various operations."  This suite encodes
/// those axioms as property tests, systematically swept over compression
/// settings.
///
/// Exact axioms (hold bit-for-bit or to FP rounding):
///   negate(negate(A)) = A                   scale(A, -1) = negate(A)
///   scale(scale(A, a), b) = scale(A, ab)    add(A, B) = add(B, A)
///   add(A, negate(A)) = 0                   dot(A, B) = dot(B, A)
///   dot(A, A) = l2(A)^2                     cov(A, A) = var(A)
///   cosine(A, A) = 1                        ssim(A, A) = 1
///   l2(scale(A, c)) = |c| l2(A)             W(A, A, p) = 0
///
/// Approximate axioms (hold within rebinning tolerance):
///   add(add(A, B), C) ≈ add(A, add(B, C))
///   scale(add(A, B), c) ≈ add(scale(A, c), scale(B, c))
///   mean(add_scalar(A, x)) ≈ mean(A) + x
///   var(add_scalar(A, x)) ≈ var(A)
///   |dot(A, B)| <= l2(A) l2(B)              (Cauchy-Schwarz)
///   l2(add(A, B)) <= l2(A) + l2(B) + tol    (triangle inequality)

#include <gtest/gtest.h>

#include <cmath>

#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

struct AxiomCase {
  Shape array_shape;
  Shape block_shape;
  FloatType float_type;
  IndexType index_type;
  TransformKind transform;
};

class Axioms : public ::testing::TestWithParam<AxiomCase> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    compressor_ = std::make_unique<Compressor>(
        CompressorSettings{.block_shape = p.block_shape,
                           .float_type = p.float_type,
                           .index_type = p.index_type,
                           .transform = p.transform});
    Rng rng(2027);
    a_ = compressor_->compress(random_smooth(p.array_shape, rng));
    b_ = compressor_->compress(random_smooth(p.array_shape, rng));
    c_ = compressor_->compress(random_smooth(p.array_shape, rng));
  }

  /// Scale for additive tolerances: one loose L∞ bound of the operands.
  double tolerance() const {
    double n = 0.0;
    for (double v : a_.biggest) n = std::max(n, v);
    for (double v : b_.biggest) n = std::max(n, v);
    return 8.0 * static_cast<double>(a_.block_shape.volume()) * n /
           static_cast<double>(a_.radius());
  }

  std::unique_ptr<Compressor> compressor_;
  CompressedArray a_, b_, c_;
};

TEST_P(Axioms, NegationIsInvolution) {
  const CompressedArray back = ops::negate(ops::negate(a_));
  EXPECT_EQ(back.indices, a_.indices);
  EXPECT_EQ(back.biggest, a_.biggest);
}

TEST_P(Axioms, ScaleMinusOneIsNegation) {
  const CompressedArray via_scale = ops::multiply_scalar(a_, -1.0);
  const CompressedArray via_negate = ops::negate(a_);
  EXPECT_EQ(via_scale.indices, via_negate.indices);
  EXPECT_EQ(via_scale.biggest, via_negate.biggest);
}

TEST_P(Axioms, ScalingComposes) {
  const CompressedArray twice =
      ops::multiply_scalar(ops::multiply_scalar(a_, 2.0), -3.0);
  const CompressedArray once = ops::multiply_scalar(a_, -6.0);
  EXPECT_EQ(twice.indices, once.indices);
  for (std::size_t k = 0; k < once.biggest.size(); ++k)
    EXPECT_NEAR(twice.biggest[k], once.biggest[k],
                1e-6 * once.biggest[k] + 1e-12);
}

TEST_P(Axioms, AdditionCommutes) {
  const CompressedArray ab = ops::add(a_, b_);
  const CompressedArray ba = ops::add(b_, a_);
  EXPECT_EQ(ab.indices, ba.indices);
  EXPECT_EQ(ab.biggest, ba.biggest);
}

TEST_P(Axioms, AdditiveInverse) {
  NDArray<double> zero = compressor_->decompress(ops::add(a_, ops::negate(a_)));
  for (index_t k = 0; k < zero.size(); ++k) ASSERT_EQ(zero[k], 0.0);
}

TEST_P(Axioms, AdditionAssociatesWithinRebinning) {
  NDArray<double> left = compressor_->decompress(ops::add(ops::add(a_, b_), c_));
  NDArray<double> right = compressor_->decompress(ops::add(a_, ops::add(b_, c_)));
  EXPECT_LE(reference::linf_distance(left, right), tolerance());
}

TEST_P(Axioms, ScalingDistributesOverAddition) {
  NDArray<double> left =
      compressor_->decompress(ops::multiply_scalar(ops::add(a_, b_), 2.0));
  NDArray<double> right = compressor_->decompress(
      ops::add(ops::multiply_scalar(a_, 2.0), ops::multiply_scalar(b_, 2.0)));
  EXPECT_LE(reference::linf_distance(left, right), 2.0 * tolerance());
}

TEST_P(Axioms, DotIsSymmetric) {
  EXPECT_DOUBLE_EQ(ops::dot(a_, b_), ops::dot(b_, a_));
}

TEST_P(Axioms, DotWithSelfIsSquaredNorm) {
  const double n = ops::l2_norm(a_);
  EXPECT_NEAR(ops::dot(a_, a_), n * n, 1e-9 * n * n + 1e-12);
}

TEST_P(Axioms, DotIsBilinearInScaling) {
  EXPECT_NEAR(ops::dot(ops::multiply_scalar(a_, 3.0), b_), 3.0 * ops::dot(a_, b_),
              1e-6 * std::fabs(ops::dot(a_, b_)) + 1e-9);
}

TEST_P(Axioms, CauchySchwarz) {
  EXPECT_LE(std::fabs(ops::dot(a_, b_)),
            ops::l2_norm(a_) * ops::l2_norm(b_) * (1.0 + 1e-12));
}

TEST_P(Axioms, TriangleInequality) {
  EXPECT_LE(ops::l2_norm(ops::add(a_, b_)),
            ops::l2_norm(a_) + ops::l2_norm(b_) + tolerance());
}

TEST_P(Axioms, NormIsAbsolutelyHomogeneous) {
  EXPECT_NEAR(ops::l2_norm(ops::multiply_scalar(a_, -2.5)),
              2.5 * ops::l2_norm(a_), 1e-6 * ops::l2_norm(a_) + 1e-12);
}

TEST_P(Axioms, CovarianceWithSelfIsVariance) {
  EXPECT_DOUBLE_EQ(ops::covariance(a_, a_), ops::variance(a_));
}

TEST_P(Axioms, CovarianceIsSymmetric) {
  EXPECT_DOUBLE_EQ(ops::covariance(a_, b_), ops::covariance(b_, a_));
}

TEST_P(Axioms, VarianceIsNonNegative) {
  EXPECT_GE(ops::variance(a_), -1e-12);
}

TEST_P(Axioms, MeanIsLinearUnderScaling) {
  EXPECT_NEAR(ops::mean(ops::multiply_scalar(a_, 4.0)), 4.0 * ops::mean(a_),
              1e-6 * std::fabs(ops::mean(a_)) + 1e-9);
}

TEST_P(Axioms, MeanShiftsUnderScalarAddition) {
  EXPECT_NEAR(ops::mean(ops::add_scalar(a_, 1.5)), ops::mean(a_) + 1.5,
              tolerance());
}

TEST_P(Axioms, VarianceIsShiftInvariant) {
  EXPECT_NEAR(ops::variance(ops::add_scalar(a_, 3.0)), ops::variance(a_),
              tolerance());
}

TEST_P(Axioms, CosineSelfIsOneAndBounded) {
  EXPECT_NEAR(ops::cosine_similarity(a_, a_), 1.0, 1e-12);
  const double cab = ops::cosine_similarity(a_, b_);
  EXPECT_GE(cab, -1.0 - 1e-12);
  EXPECT_LE(cab, 1.0 + 1e-12);
}

TEST_P(Axioms, CosineIsScaleInvariant) {
  EXPECT_NEAR(ops::cosine_similarity(ops::multiply_scalar(a_, 5.0), b_),
              ops::cosine_similarity(a_, b_), 1e-9);
}

TEST_P(Axioms, SsimSelfIsOneAndSymmetric) {
  EXPECT_NEAR(ops::structural_similarity(a_, a_), 1.0, 1e-9);
  EXPECT_NEAR(ops::structural_similarity(a_, b_),
              ops::structural_similarity(b_, a_), 1e-12);
}

TEST_P(Axioms, WassersteinSelfIsZeroAndSymmetric) {
  EXPECT_NEAR(ops::wasserstein_distance(a_, a_, 2.0), 0.0, 1e-12);
  EXPECT_NEAR(ops::wasserstein_distance(a_, b_, 2.0),
              ops::wasserstein_distance(b_, a_, 2.0), 1e-12);
  EXPECT_GE(ops::wasserstein_distance(a_, b_, 2.0), 0.0);
}

TEST_P(Axioms, DecompressCompressIsIdempotent) {
  // Compressing a decompressed array changes nothing further: the values
  // already sit on representable lattice points.  (Up to the float type's
  // rounding of re-derived block maxima.)
  NDArray<double> once = compressor_->decompress(a_);
  NDArray<double> twice = compressor_->decompress(compressor_->compress(once));
  EXPECT_LE(reference::linf_distance(once, twice), tolerance());
}

INSTANTIATE_TEST_SUITE_P(
    SettingsSweep, Axioms,
    ::testing::Values(
        AxiomCase{Shape{32, 32}, Shape{8, 8}, FloatType::kFloat64,
                  IndexType::kInt8, TransformKind::kDCT},
        AxiomCase{Shape{32, 32}, Shape{8, 8}, FloatType::kFloat64,
                  IndexType::kInt16, TransformKind::kDCT},
        AxiomCase{Shape{32, 32}, Shape{8, 8}, FloatType::kFloat32,
                  IndexType::kInt16, TransformKind::kDCT},
        AxiomCase{Shape{30, 29}, Shape{8, 8}, FloatType::kFloat64,
                  IndexType::kInt16, TransformKind::kDCT},
        AxiomCase{Shape{32, 32}, Shape{8, 8}, FloatType::kFloat64,
                  IndexType::kInt16, TransformKind::kHaar},
        AxiomCase{Shape{16, 16, 16}, Shape{4, 4, 4}, FloatType::kFloat64,
                  IndexType::kInt16, TransformKind::kDCT},
        AxiomCase{Shape{12, 24, 24}, Shape{4, 8, 8}, FloatType::kFloat32,
                  IndexType::kInt32, TransformKind::kDCT},
        AxiomCase{Shape{64}, Shape{16}, FloatType::kFloat64, IndexType::kInt16,
                  TransformKind::kDCT}));

}  // namespace
}  // namespace pyblaz
