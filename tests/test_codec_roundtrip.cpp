#include <gtest/gtest.h>

#include <cmath>

#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

struct RoundTripCase {
  Shape array_shape;
  Shape block_shape;
  FloatType float_type;
  IndexType index_type;
  TransformKind transform;
};

class RoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTrip, ReconstructionWithinLooseLinfBound) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  Compressor compressor(settings);
  Rng rng(31);
  NDArray<double> array = random_smooth(p.array_shape, rng);

  CompressionDiagnostics diag;
  CompressedArray compressed = compressor.compress(array, &diag);
  NDArray<double> restored = compressor.decompress(compressed);

  EXPECT_EQ(restored.shape(), array.shape());

  // §IV-D: the loose L∞ bound plus a float-type rounding allowance must hold
  // everywhere (the bound covers binning + pruning; quantization of the
  // input/output adds at most a few ULP of the storage type).
  const double linf = reference::linf_distance(array, restored);
  const double data_scale = max_abs(array);
  const double rounding_allowance =
      4.0 * data_scale *
      (p.float_type == FloatType::kFloat64   ? 1e-15
       : p.float_type == FloatType::kFloat32 ? 1e-6
       : p.float_type == FloatType::kFloat16 ? 1e-3
                                             : 1e-2);
  EXPECT_LE(linf, diag.loose_linf(compressed) + rounding_allowance)
      << settings.describe();
}

TEST_P(RoundTrip, CompressedMetadataIsConsistent) {
  const auto& p = GetParam();
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  Compressor compressor(settings);
  Rng rng(37);
  NDArray<double> array = random_smooth(p.array_shape, rng);
  CompressedArray compressed = compressor.compress(array);

  EXPECT_EQ(compressed.shape, p.array_shape);
  EXPECT_EQ(compressed.block_shape, p.block_shape);
  EXPECT_EQ(static_cast<index_t>(compressed.biggest.size()),
            compressed.num_blocks());
  EXPECT_EQ(static_cast<index_t>(compressed.indices.size()),
            compressed.num_blocks() * compressed.kept_per_block());

  // Bin indices must be inside [-r, r].
  const std::int64_t r = compressed.radius();
  for (std::size_t k = 0; k < compressed.indices.size(); ++k) {
    EXPECT_GE(compressed.indices.get(k), -r);
    EXPECT_LE(compressed.indices.get(k), r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SettingsSweep, RoundTrip,
    ::testing::Values(
        RoundTripCase{Shape{64}, Shape{8}, FloatType::kFloat64, IndexType::kInt16,
                      TransformKind::kDCT},
        RoundTripCase{Shape{64, 64}, Shape{8, 8}, FloatType::kFloat64,
                      IndexType::kInt8, TransformKind::kDCT},
        RoundTripCase{Shape{64, 64}, Shape{8, 8}, FloatType::kFloat32,
                      IndexType::kInt16, TransformKind::kDCT},
        RoundTripCase{Shape{64, 64}, Shape{8, 8}, FloatType::kFloat16,
                      IndexType::kInt8, TransformKind::kDCT},
        RoundTripCase{Shape{64, 64}, Shape{8, 8}, FloatType::kBFloat16,
                      IndexType::kInt8, TransformKind::kDCT},
        RoundTripCase{Shape{30, 50}, Shape{16, 16}, FloatType::kFloat32,
                      IndexType::kInt16, TransformKind::kDCT},
        RoundTripCase{Shape{20, 40, 40}, Shape{4, 4, 4}, FloatType::kFloat32,
                      IndexType::kInt16, TransformKind::kDCT},
        RoundTripCase{Shape{20, 40, 40}, Shape{4, 16, 16}, FloatType::kFloat32,
                      IndexType::kInt8, TransformKind::kDCT},
        RoundTripCase{Shape{64, 64}, Shape{8, 8}, FloatType::kFloat64,
                      IndexType::kInt16, TransformKind::kHaar},
        RoundTripCase{Shape{17, 9, 33}, Shape{8, 2, 16}, FloatType::kFloat64,
                      IndexType::kInt32, TransformKind::kDCT}));

TEST(Codec, FinerIndexTypesGiveSmallerError) {
  Rng rng(41);
  NDArray<double> array = random_smooth(Shape{64, 64}, rng);
  double previous = 1e300;
  for (IndexType itype : {IndexType::kInt8, IndexType::kInt16, IndexType::kInt32}) {
    Compressor compressor({.block_shape = Shape{8, 8},
                           .float_type = FloatType::kFloat64,
                           .index_type = itype});
    const double err =
        reference::l2_distance(array, compressor.decompress(compressor.compress(array)));
    EXPECT_LT(err, previous) << name(itype);
    previous = err;
  }
}

TEST(Codec, Int32OnSmoothDataIsNearlyLossless) {
  Rng rng(43);
  NDArray<double> array = random_smooth(Shape{32, 32}, rng);
  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt32});
  const double err =
      reference::linf_distance(array, compressor.decompress(compressor.compress(array)));
  EXPECT_LT(err, 1e-6);
}

TEST(Codec, ConstantArrayReconstructsAlmostExactly) {
  NDArray<double> array(Shape{32, 32}, 3.25);
  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt8});
  NDArray<double> restored = compressor.decompress(compressor.compress(array));
  // A constant block has a single nonzero coefficient, which binning maps to
  // exactly ±r; reconstruction is exact up to FP rounding.
  for (index_t k = 0; k < array.size(); ++k) EXPECT_NEAR(restored[k], 3.25, 1e-12);
}

TEST(Codec, ZeroArrayStaysZero) {
  NDArray<double> array(Shape{16, 16}, 0.0);
  Compressor compressor({.block_shape = Shape{4, 4}});
  CompressedArray compressed = compressor.compress(array);
  for (double n : compressed.biggest) EXPECT_EQ(n, 0.0);
  NDArray<double> restored = compressor.decompress(compressed);
  for (index_t k = 0; k < array.size(); ++k) EXPECT_EQ(restored[k], 0.0);
}

TEST(Codec, NegationSymmetry) {
  // compress(-A) reconstructs to -decompress(compress(A)) for symmetric
  // binning (bins are centered at zero).
  Rng rng(47);
  NDArray<double> array = random_smooth(Shape{32, 32}, rng);
  NDArray<double> negated = scale(array, -1.0);
  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt8});
  NDArray<double> da = compressor.decompress(compressor.compress(array));
  NDArray<double> dn = compressor.decompress(compressor.compress(negated));
  for (index_t k = 0; k < array.size(); ++k) EXPECT_NEAR(dn[k], -da[k], 1e-12);
}

TEST(Codec, PruningReducesKeptCoefficients) {
  CompressorSettings settings{.block_shape = Shape{8, 8}};
  settings.mask = PruningMask::keep_fraction(Shape{8, 8}, 0.25);
  Compressor compressor(settings);
  Rng rng(53);
  NDArray<double> array = random_smooth(Shape{64, 64}, rng);
  CompressedArray compressed = compressor.compress(array);
  EXPECT_EQ(compressed.kept_per_block(), 16);
  EXPECT_EQ(static_cast<index_t>(compressed.indices.size()),
            compressed.num_blocks() * 16);
}

TEST(Codec, PruningErrorTrackedInDiagnostics) {
  CompressorSettings settings{.block_shape = Shape{8, 8},
                              .float_type = FloatType::kFloat64,
                              .index_type = IndexType::kInt32};
  settings.mask = PruningMask::keep_fraction(Shape{8, 8}, 0.5);
  Compressor compressor(settings);
  Rng rng(59);
  NDArray<double> array = random_normal(Shape{64, 64}, rng);

  CompressionDiagnostics diag;
  CompressedArray compressed = compressor.compress(array, &diag);
  NDArray<double> restored = compressor.decompress(compressed);

  // Orthonormality: whole-array L2 error equals the L2 norm of coefficient
  // errors (binning + pruning), §IV-D.
  const double measured = reference::l2_distance(array, restored);
  EXPECT_NEAR(measured, diag.total_l2(), 1e-9 * (1.0 + diag.total_l2()));

  // White noise has energy at all frequencies: pruning must show up.
  double pruned_energy = 0.0;
  for (double v : diag.pruning_l2) pruned_energy += v * v;
  EXPECT_GT(pruned_energy, 0.0);
}

TEST(Codec, ThrowsOnDimensionalityMismatch) {
  Compressor compressor({.block_shape = Shape{4, 4}});
  NDArray<double> array(Shape{16}, 1.0);
  EXPECT_THROW(compressor.compress(array), std::invalid_argument);
}

TEST(Codec, ThrowsOnNonPowerOfTwoBlocks) {
  EXPECT_THROW(Compressor({.block_shape = Shape{3, 3}}), std::invalid_argument);
}

TEST(Codec, ThrowsOnMismatchedMaskShape) {
  CompressorSettings settings{.block_shape = Shape{4, 4}};
  settings.mask = PruningMask::keep_all(Shape{8, 8});
  EXPECT_THROW(Compressor{settings}, std::invalid_argument);
}

TEST(Codec, Float16InputsCanOverflowToInf) {
  // FP16's dynamic range tops out at 65504; bigger magnitudes become inf
  // during data type conversion — the NaN/inf hazard Fig. 5 discusses.
  NDArray<double> array(Shape{4, 4}, 1e6);
  Compressor compressor({.block_shape = Shape{4, 4},
                         .float_type = FloatType::kFloat16,
                         .index_type = IndexType::kInt8});
  CompressedArray compressed = compressor.compress(array);
  EXPECT_TRUE(std::isinf(compressed.biggest[0]));

  // bfloat16 keeps float32's range: same data compresses finite.
  Compressor bf({.block_shape = Shape{4, 4},
                 .float_type = FloatType::kBFloat16,
                 .index_type = IndexType::kInt8});
  EXPECT_TRUE(std::isfinite(bf.compress(array).biggest[0]));
}

}  // namespace
}  // namespace pyblaz
