#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/dtypes/bfloat16.hpp"
#include "core/dtypes/float16.hpp"
#include "core/dtypes/float_type.hpp"
#include "core/dtypes/index_type.hpp"

namespace pyblaz {
namespace {

// ---------------------------------------------------------------- float16

TEST(Float16, ExactSmallValues) {
  // Values exactly representable in binary16 survive the round trip.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(static_cast<float>(float16(v)), v) << "value " << v;
  }
}

TEST(Float16, KnownBitPatterns) {
  EXPECT_EQ(float16(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(float16(-2.0f).bits(), 0xC000u);
  EXPECT_EQ(float16(0.0f).bits(), 0x0000u);
  EXPECT_EQ(float16(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(float16(65504.0f).bits(), 0x7BFFu);  // Largest finite half.
}

TEST(Float16, OverflowBecomesInfinity) {
  EXPECT_TRUE(std::isinf(static_cast<float>(float16(70000.0f))));
  EXPECT_TRUE(std::isinf(static_cast<float>(float16(-1e20f))));
  EXPECT_LT(static_cast<float>(float16(-1e20f)), 0.0f);
}

TEST(Float16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10);
  // nearest-even rounds down to 1.0.
  EXPECT_EQ(static_cast<float>(float16(1.0f + 0x1p-11f)), 1.0f);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; nearest-even rounds up.
  EXPECT_EQ(static_cast<float>(float16(1.0f + 3 * 0x1p-11f)), 1.0f + 0x1p-9f);
  // Just above halfway rounds up.
  EXPECT_EQ(static_cast<float>(float16(1.0f + 0x1.1p-11f)), 1.0f + 0x1p-10f);
}

TEST(Float16, SubnormalsRepresented) {
  // Smallest positive subnormal half is 2^-24.
  EXPECT_EQ(static_cast<float>(float16(0x1p-24f)), 0x1p-24f);
  EXPECT_EQ(float16(0x1p-24f).bits(), 0x0001u);
  // Smallest normal half is 2^-14.
  EXPECT_EQ(static_cast<float>(float16(0x1p-14f)), 0x1p-14f);
  EXPECT_EQ(float16(0x1p-14f).bits(), 0x0400u);
}

TEST(Float16, UnderflowToZero) {
  EXPECT_EQ(static_cast<float>(float16(0x1p-26f)), 0.0f);
  EXPECT_EQ(static_cast<float>(float16(1e-30f)), 0.0f);
}

TEST(Float16, NaNPropagates) {
  EXPECT_TRUE(std::isnan(static_cast<float>(float16(std::nanf("")))));
}

TEST(Float16, InfinityPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(static_cast<float>(float16(inf))));
  EXPECT_TRUE(std::isinf(static_cast<float>(float16(-inf))));
}

TEST(Float16, RoundTripAllBitPatterns) {
  // Every finite half value converts to float and back bit-exactly.
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const auto h = float16::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(h);
    if (std::isnan(f)) continue;  // NaN payloads need not round-trip.
    EXPECT_EQ(float16(f).bits(), h.bits()) << "bits " << bits;
  }
}

TEST(Float16, ErrorBoundedByHalfUlp) {
  // Relative error of conversion is at most 2^-11 for normal values.
  for (float v = 1.0f; v < 1000.0f; v *= 1.37f) {
    const float back = static_cast<float>(float16(v));
    EXPECT_LE(std::fabs(back - v) / v, 0x1p-11f) << "value " << v;
  }
}

// ---------------------------------------------------------------- bfloat16

TEST(BFloat16, ExactValues) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 256.0f, -3.0f}) {
    EXPECT_EQ(static_cast<float>(bfloat16(v)), v) << "value " << v;
  }
}

TEST(BFloat16, KeepsFloat32Range) {
  // bfloat16 shares float32's exponent: huge values stay finite.
  EXPECT_FALSE(std::isinf(static_cast<float>(bfloat16(1e38f))));
  EXPECT_FALSE(std::isinf(static_cast<float>(bfloat16(-1e38f))));
  // ... which is exactly where float16 overflows.
  EXPECT_TRUE(std::isinf(static_cast<float>(float16(1e38f))));
}

TEST(BFloat16, CoarserThanFloat16ForMidRangeValues) {
  // bfloat16 has 7 significand bits vs float16's 10: for values where both
  // are in range, float16 is at least as accurate.
  for (float v = 1.001f; v < 100.0f; v *= 1.618f) {
    const float bf_err = std::fabs(static_cast<float>(bfloat16(v)) - v);
    const float hf_err = std::fabs(static_cast<float>(float16(v)) - v);
    EXPECT_LE(hf_err, bf_err + 1e-12f) << "value " << v;
  }
}

TEST(BFloat16, RoundToNearestEven) {
  // 1 + 2^-8 is halfway between 1.0 and 1 + 2^-7; nearest-even rounds to 1.
  EXPECT_EQ(static_cast<float>(bfloat16(1.0f + 0x1p-8f)), 1.0f);
  EXPECT_EQ(static_cast<float>(bfloat16(1.0f + 3 * 0x1p-8f)), 1.0f + 0x1p-6f);
}

TEST(BFloat16, NaNPropagates) {
  EXPECT_TRUE(std::isnan(static_cast<float>(bfloat16(std::nanf("")))));
}

TEST(BFloat16, RoundTripAllBitPatterns) {
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const auto b = bfloat16::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(b);
    if (std::isnan(f)) continue;
    EXPECT_EQ(bfloat16(f).bits(), b.bits()) << "bits " << bits;
  }
}

// ------------------------------------------------------------- FloatType

TEST(FloatType, Bits) {
  EXPECT_EQ(bits(FloatType::kBFloat16), 16);
  EXPECT_EQ(bits(FloatType::kFloat16), 16);
  EXPECT_EQ(bits(FloatType::kFloat32), 32);
  EXPECT_EQ(bits(FloatType::kFloat64), 64);
}

TEST(FloatType, Names) {
  EXPECT_EQ(name(FloatType::kBFloat16), "bfloat16");
  EXPECT_EQ(name(FloatType::kFloat16), "float16");
  EXPECT_EQ(name(FloatType::kFloat32), "float32");
  EXPECT_EQ(name(FloatType::kFloat64), "float64");
}

TEST(FloatType, QuantizeIsIdentityForFloat64) {
  const double v = 0.1234567890123456789;
  EXPECT_EQ(quantize(v, FloatType::kFloat64), v);
}

TEST(FloatType, QuantizeIsIdempotent) {
  for (FloatType t : kAllFloatTypes) {
    const double q = quantize(0.7853981633974483, t);
    EXPECT_EQ(quantize(q, t), q) << name(t);
  }
}

TEST(FloatType, QuantizeErrorOrdering) {
  // More significand bits -> no larger error.
  const double v = 2.718281828459045;
  const double e16 = std::fabs(quantize(v, FloatType::kFloat16) - v);
  const double e32 = std::fabs(quantize(v, FloatType::kFloat32) - v);
  const double e64 = std::fabs(quantize(v, FloatType::kFloat64) - v);
  const double ebf = std::fabs(quantize(v, FloatType::kBFloat16) - v);
  EXPECT_LE(e32, e16);
  EXPECT_LE(e64, e32);
  EXPECT_LE(e16, ebf);
  EXPECT_EQ(e64, 0.0);
}

// ------------------------------------------------------------- IndexType

TEST(IndexType, Bits) {
  EXPECT_EQ(bits(IndexType::kInt8), 8);
  EXPECT_EQ(bits(IndexType::kInt16), 16);
  EXPECT_EQ(bits(IndexType::kInt32), 32);
  EXPECT_EQ(bits(IndexType::kInt64), 64);
}

TEST(IndexType, Radius) {
  // r = 2^(b-1) - 1 (§III-A d).
  EXPECT_EQ(radius(IndexType::kInt8), 127);
  EXPECT_EQ(radius(IndexType::kInt16), 32767);
  EXPECT_EQ(radius(IndexType::kInt32), 2147483647);
  EXPECT_EQ(radius(IndexType::kInt64), std::numeric_limits<std::int64_t>::max());
}

TEST(IndexType, Names) {
  EXPECT_EQ(name(IndexType::kInt8), "int8");
  EXPECT_EQ(name(IndexType::kInt16), "int16");
  EXPECT_EQ(name(IndexType::kInt32), "int32");
  EXPECT_EQ(name(IndexType::kInt64), "int64");
}

}  // namespace
}  // namespace pyblaz
