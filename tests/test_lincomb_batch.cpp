/// Batched multi-expression evaluation (ops::lincomb_batch + BatchEval):
/// K lincomb expressions over a shared operand set evaluate in one blocked
/// pass — each distinct operand's bin row decoded once per block through
/// kernels::decode_lincomb_multi — and every output must be bit-identical to
/// evaluating its expression alone, across shapes, dtypes, arities, thread
/// counts, shard counts, kernel backends, and cache capacities.  Also pins
/// the operand-dedup accounting (telemetry counters), the K-rebins-per-batch
/// contract, the sequential fallback, and clean behavior around the
/// cache.fill.alloc fault site.

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>
#include <vector>

#include "core/cache/block_cache.hpp"
#include "core/codec/compressor.hpp"
#include "core/error/error.hpp"
#include "core/fault/fault.hpp"
#include "core/kernels/backend.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/expr.hpp"
#include "core/ops/ops.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

using kernels::Backend;

CompressorSettings settings_for(Shape block,
                                FloatType ftype = FloatType::kFloat32,
                                IndexType itype = IndexType::kInt8,
                                TransformKind kind = TransformKind::kDCT) {
  return {.block_shape = std::move(block),
          .float_type = ftype,
          .index_type = itype,
          .transform = kind};
}

void expect_bit_identical(const CompressedArray& a, const CompressedArray& b,
                          const std::string& label) {
  EXPECT_EQ(a.indices, b.indices) << label;
  EXPECT_EQ(a.biggest, b.biggest) << label;
}

std::vector<CompressedArray> sequential_eval(
    std::span<const ops::LincombRequest> requests) {
  std::vector<CompressedArray> out;
  out.reserve(requests.size());
  for (const ops::LincombRequest& req : requests)
    out.push_back(ops::lincomb(req.operands, req.weights, req.bias));
  return out;
}

void expect_batch_matches(std::span<const ops::LincombRequest> requests,
                          const std::string& label) {
  const std::vector<CompressedArray> reference = sequential_eval(requests);
  const std::vector<CompressedArray> batched = ops::lincomb_batch(requests);
  ASSERT_EQ(batched.size(), reference.size()) << label;
  for (std::size_t k = 0; k < reference.size(); ++k)
    expect_bit_identical(batched[k], reference[k],
                         label + " output " + std::to_string(k));
}

/// The acceptance workload: K=4 expressions of arity 4 sharing 3 operands —
/// expression k reads {shared0, shared1, shared2, unique_k} with
/// per-expression weights.  16 terms, 7 distinct operands.
struct AcceptanceBatch {
  std::vector<CompressedArray> arrays;  // [0..2] shared, [3..6] unique.
  std::vector<std::vector<const CompressedArray*>> operands;
  std::vector<std::vector<double>> weights;
  std::vector<ops::LincombRequest> requests;

  AcceptanceBatch(const CompressorSettings& settings, const Shape& shape,
                  unsigned seed = 42, double bias = 0.0) {
    Compressor compressor(settings);
    Rng rng(seed);
    for (int i = 0; i < 7; ++i)
      arrays.push_back(compressor.compress(random_smooth(shape, rng, 5)));
    for (int k = 0; k < 4; ++k) {
      operands.push_back({&arrays[0], &arrays[1], &arrays[2],
                          &arrays[static_cast<std::size_t>(3 + k)]});
      weights.push_back({1.0, -0.25 * (k + 1), 0.5, 0.125 * (k + 1)});
    }
    for (int k = 0; k < 4; ++k)
      requests.push_back({std::span<const CompressedArray* const>(
                              operands[static_cast<std::size_t>(k)]),
                          std::span<const double>(
                              weights[static_cast<std::size_t>(k)]),
                          bias});
  }
};

struct ParallelGuard {
  ~ParallelGuard() {
    parallel::set_num_threads(0);
    parallel::set_num_shards(0);
  }
};

struct BackendGuard {
  Backend saved = kernels::active_backend();
  ~BackendGuard() { kernels::set_backend(saved); }
};

struct CacheGuard {
  ~CacheGuard() { cache::set_default_capacity(0); }
};

struct FaultGuard {
  ~FaultGuard() { fault::disarm_all(); }
};

TEST(LincombBatch, BatchMatchesSequentialAcrossLayouts) {
  struct Case {
    Shape array_shape;
    Shape block_shape;
    FloatType ftype;
    IndexType itype;
    TransformKind kind;
  };
  const Case cases[] = {
      {Shape{32, 32}, Shape{8, 8}, FloatType::kFloat32, IndexType::kInt8,
       TransformKind::kDCT},
      {Shape{33, 21}, Shape{8, 8}, FloatType::kFloat32, IndexType::kInt16,
       TransformKind::kDCT},  // Ragged edges.
      {Shape{16, 16, 16}, Shape{4, 4, 4}, FloatType::kFloat64,
       IndexType::kInt32, TransformKind::kDCT},
      {Shape{32, 32}, Shape{16, 16}, FloatType::kFloat16, IndexType::kInt8,
       TransformKind::kHaar},
      {Shape{64}, Shape{16}, FloatType::kBFloat16, IndexType::kInt16,
       TransformKind::kHaar},
      {Shape{24, 24}, Shape{8, 8}, FloatType::kFloat32, IndexType::kInt64,
       TransformKind::kDCT},  // int64 bins ride the scalar slot everywhere.
  };
  int index = 0;
  for (const Case& c : cases) {
    AcceptanceBatch batch(settings_for(c.block_shape, c.ftype, c.itype, c.kind),
                          c.array_shape, 100 + static_cast<unsigned>(index));
    expect_batch_matches(batch.requests, "layout case " + std::to_string(index));
    ++index;
  }
}

TEST(LincombBatch, BatchMatchesSequentialAcrossAritiesAndBias) {
  // Mixed arities in one batch — including a single-term expression, an
  // expression with a repeated operand (two terms, same pointer), and
  // nonzero per-request biases — all sharing operands with the others.
  Compressor compressor(settings_for(Shape{8, 8}));
  Rng rng(7);
  std::vector<CompressedArray> arrays;
  for (int i = 0; i < 4; ++i)
    arrays.push_back(compressor.compress(random_smooth(Shape{40, 24}, rng, 5)));

  const std::vector<std::vector<const CompressedArray*>> operand_lists = {
      {&arrays[0]},                                      // arity 1
      {&arrays[0], &arrays[1]},                          // arity 2
      {&arrays[1], &arrays[1]},                          // repeated operand
      {&arrays[0], &arrays[1], &arrays[2], &arrays[3],
       &arrays[2]},                                      // arity 5 (odd tail)
  };
  const std::vector<std::vector<double>> weight_lists = {
      {2.0}, {1.0, -0.5}, {0.25, 0.75}, {1.0, 1.0, -1.0, 0.5, 0.125}};
  const double biases[] = {0.0, 0.1, 0.0, -0.2};

  std::vector<ops::LincombRequest> requests;
  for (std::size_t k = 0; k < operand_lists.size(); ++k)
    requests.push_back(
        {std::span<const CompressedArray* const>(operand_lists[k]),
         std::span<const double>(weight_lists[k]), biases[k]});
  expect_batch_matches(requests, "mixed arity");
}

TEST(LincombBatch, BatchMatchesSequentialAcrossThreadsAndShards) {
  ParallelGuard guard;
  AcceptanceBatch batch(settings_for(Shape{8, 8}), Shape{48, 40}, 11);
  parallel::set_num_threads(1);
  parallel::set_num_shards(1);
  const std::vector<CompressedArray> reference =
      sequential_eval(batch.requests);
  for (int threads : {1, 4}) {
    for (int shards : {1, 8}) {
      parallel::set_num_threads(threads);
      parallel::set_num_shards(shards);
      const std::vector<CompressedArray> batched =
          ops::lincomb_batch(batch.requests);
      ASSERT_EQ(batched.size(), reference.size());
      for (std::size_t k = 0; k < reference.size(); ++k)
        expect_bit_identical(batched[k], reference[k],
                             "threads=" + std::to_string(threads) +
                                 " shards=" + std::to_string(shards) +
                                 " output " + std::to_string(k));
    }
  }
}

TEST(LincombBatch, BatchBitIdenticalAcrossBackends) {
  BackendGuard guard;
  AcceptanceBatch batch(settings_for(Shape{8, 8}), Shape{40, 24}, 13);
  ASSERT_TRUE(kernels::set_backend(Backend::kScalar));
  const std::vector<CompressedArray> reference =
      sequential_eval(batch.requests);
  for (Backend backend : {Backend::kScalar, Backend::kAvx2, Backend::kNeon}) {
    if (!kernels::backend_available(backend)) continue;
    ASSERT_TRUE(kernels::set_backend(backend));
    const std::vector<CompressedArray> batched =
        ops::lincomb_batch(batch.requests);
    const std::vector<CompressedArray> sequential =
        sequential_eval(batch.requests);
    ASSERT_EQ(batched.size(), reference.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      const std::string label = std::string("backend ") +
                                kernels::backend_name(backend) + " output " +
                                std::to_string(k);
      expect_bit_identical(batched[k], reference[k], label + " (vs scalar)");
      expect_bit_identical(sequential[k], reference[k],
                           label + " (sequential vs scalar)");
    }
  }
}

TEST(LincombBatch, BatchUnchangedByCacheCapacity) {
  CacheGuard guard;
  AcceptanceBatch batch(settings_for(Shape{8, 8}), Shape{40, 24}, 17);
  cache::set_default_capacity(0);
  const std::vector<CompressedArray> reference =
      sequential_eval(batch.requests);
  for (int capacity : {0, 64}) {
    cache::set_default_capacity(capacity);
    // Attach + warm a decoded-block cache on the shared operands: the batch
    // works in coefficient space and must neither consult nor disturb it.
    if (capacity > 0)
      for (int i = 0; i < 3; ++i)
        (void)batch.arrays[static_cast<std::size_t>(i)].get({0, 0});
    const std::vector<CompressedArray> batched =
        ops::lincomb_batch(batch.requests);
    ASSERT_EQ(batched.size(), reference.size());
    for (std::size_t k = 0; k < reference.size(); ++k)
      expect_bit_identical(batched[k], reference[k],
                           "capacity=" + std::to_string(capacity) +
                               " output " + std::to_string(k));
  }
}

TEST(LincombBatch, OperandDedupCounters) {
  AcceptanceBatch batch(settings_for(Shape{8, 8}), Shape{40, 24}, 19);
  const index_t num_blocks = batch.arrays[0].num_blocks();
  telemetry::Counter& calls = telemetry::counter("ops.lincomb_batch.calls");
  telemetry::Counter& expressions =
      telemetry::counter("ops.lincomb_batch.expressions");
  telemetry::Counter& distinct =
      telemetry::counter("ops.lincomb_batch.operands_distinct");
  telemetry::Counter& avoided =
      telemetry::counter("ops.lincomb_batch.decodes_avoided");

  const std::uint64_t calls0 = calls.value();
  const std::uint64_t exprs0 = expressions.value();
  const std::uint64_t distinct0 = distinct.value();
  const std::uint64_t avoided0 = avoided.value();
  (void)ops::lincomb_batch(batch.requests);
  EXPECT_EQ(calls.value() - calls0, 1u);
  EXPECT_EQ(expressions.value() - exprs0, 4u);
  // 16 terms over 7 distinct operands: 9 bin-row decodes saved per block.
  EXPECT_EQ(distinct.value() - distinct0, 7u);
  EXPECT_EQ(avoided.value() - avoided0,
            9u * static_cast<std::uint64_t>(num_blocks));

  // Operands are deduplicated by POINTER: an equal-valued copy is a separate
  // decode (and the batch still evaluates correctly).
  const CompressedArray copy = batch.arrays[0];
  const std::vector<const CompressedArray*> ops_a = {&batch.arrays[0],
                                                     &batch.arrays[1]};
  const std::vector<const CompressedArray*> ops_b = {&copy, &batch.arrays[1]};
  const std::vector<double> w = {1.0, -1.0};
  const std::vector<ops::LincombRequest> copy_requests = {
      {std::span<const CompressedArray* const>(ops_a),
       std::span<const double>(w), 0.0},
      {std::span<const CompressedArray* const>(ops_b),
       std::span<const double>(w), 0.0},
  };
  const std::uint64_t distinct1 = distinct.value();
  expect_batch_matches(copy_requests, "copied operand");
  EXPECT_EQ(distinct.value() - distinct1, 3u)
      << "a value-equal copy must count as a distinct operand";
}

TEST(LincombBatch, SequentialFallbackWhenNothingShared) {
  // Two disjoint expressions: nothing to amortize, so the batch falls back
  // to per-request lincomb calls (observable via ops.lincomb.calls) and
  // avoids zero decodes — results identical either way.
  Compressor compressor(settings_for(Shape{8, 8}));
  Rng rng(23);
  std::vector<CompressedArray> arrays;
  for (int i = 0; i < 4; ++i)
    arrays.push_back(compressor.compress(random_smooth(Shape{24, 24}, rng, 4)));
  const std::vector<const CompressedArray*> ops_a = {&arrays[0], &arrays[1]};
  const std::vector<const CompressedArray*> ops_b = {&arrays[2], &arrays[3]};
  const std::vector<double> w = {0.5, -0.5};
  const std::vector<ops::LincombRequest> requests = {
      {std::span<const CompressedArray* const>(ops_a),
       std::span<const double>(w), 0.0},
      {std::span<const CompressedArray* const>(ops_b),
       std::span<const double>(w), 0.0},
  };
  telemetry::Counter& lincomb_calls = telemetry::counter("ops.lincomb.calls");
  telemetry::Counter& avoided =
      telemetry::counter("ops.lincomb_batch.decodes_avoided");
  const std::uint64_t lincomb0 = lincomb_calls.value();
  const std::uint64_t avoided0 = avoided.value();
  expect_batch_matches(requests, "disjoint batch");
  // expect_batch_matches runs sequential (2 calls) + batch; the batch's
  // fallback adds 2 more lincomb calls and no avoided decodes.
  EXPECT_EQ(lincomb_calls.value() - lincomb0, 4u);
  EXPECT_EQ(avoided.value() - avoided0, 0u);
}

TEST(LincombBatch, RebinAccountingKPerBatch) {
  // Fused or fallback, a K-request batch performs exactly K terminal rebins.
  AcceptanceBatch shared(settings_for(Shape{8, 8}), Shape{24, 24}, 29);
  long before = ops::lincomb_rebin_passes();
  (void)ops::lincomb_batch(shared.requests);
  EXPECT_EQ(ops::lincomb_rebin_passes() - before, 4)
      << "fused batch: one terminal rebin per output";

  const std::vector<const CompressedArray*> solo = {&shared.arrays[0]};
  const std::vector<double> w = {2.0};
  const std::vector<ops::LincombRequest> single = {
      {std::span<const CompressedArray* const>(solo),
       std::span<const double>(w), 0.0}};
  before = ops::lincomb_rebin_passes();
  (void)ops::lincomb_batch(single);
  EXPECT_EQ(ops::lincomb_rebin_passes() - before, 1)
      << "single-request fallback: one rebin";
}

TEST(LincombBatch, EmptyBatchAndValidation) {
  EXPECT_TRUE(ops::lincomb_batch({}).empty());

  Compressor compressor(settings_for(Shape{8, 8}));
  Compressor other(settings_for(Shape{4, 4}));
  Rng rng(31);
  const CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  const CompressedArray b = compressor.compress(random_smooth(Shape{16, 16}, rng));
  const CompressedArray mismatched =
      other.compress(random_smooth(Shape{16, 16}, rng));

  const std::vector<const CompressedArray*> ok = {&a, &b};
  const std::vector<const CompressedArray*> bad_layout = {&a, &mismatched};
  const std::vector<const CompressedArray*> empty_ops = {};
  const std::vector<double> w2 = {1.0, 1.0};
  const std::vector<double> w1 = {1.0};
  const std::vector<double> w0 = {};

  const std::vector<ops::LincombRequest> no_operands = {
      {std::span<const CompressedArray* const>(empty_ops),
       std::span<const double>(w0), 0.0}};
  EXPECT_THROW((void)ops::lincomb_batch(no_operands), std::invalid_argument);

  const std::vector<ops::LincombRequest> weight_mismatch = {
      {std::span<const CompressedArray* const>(ok),
       std::span<const double>(w1), 0.0}};
  EXPECT_THROW((void)ops::lincomb_batch(weight_mismatch),
               std::invalid_argument);

  const std::vector<ops::LincombRequest> layout_mismatch = {
      {std::span<const CompressedArray* const>(bad_layout),
       std::span<const double>(w2), 0.0}};
  EXPECT_THROW((void)ops::lincomb_batch(layout_mismatch),
               std::invalid_argument);
}

TEST(LincombBatch, DirtyCachedOperandIsRejectedUntilFlush) {
  CacheGuard guard;
  cache::set_default_capacity(16);
  Compressor compressor(settings_for(Shape{8, 8}));
  Rng rng(37);
  CompressedArray a = compressor.compress(random_smooth(Shape{24, 24}, rng));
  const CompressedArray b =
      compressor.compress(random_smooth(Shape{24, 24}, rng));
  a.set({0, 0}, 3.25);  // Dirty, pinned, not yet in the archive fields.
  ASSERT_GT(a.dirty_cached_blocks(), 0);

  const std::vector<const CompressedArray*> ops_a = {&a, &b};
  const std::vector<const CompressedArray*> ops_b = {&a};
  const std::vector<double> w2 = {1.0, 1.0};
  const std::vector<double> w1 = {2.0};
  const std::vector<ops::LincombRequest> requests = {
      {std::span<const CompressedArray* const>(ops_a),
       std::span<const double>(w2), 0.0},
      {std::span<const CompressedArray* const>(ops_b),
       std::span<const double>(w1), 0.0},
  };
  EXPECT_THROW((void)ops::lincomb_batch(requests), std::logic_error);

  a.flush_cache();
  expect_batch_matches(requests, "after flush");
}

TEST(LincombBatch, CacheFillAllocFaultMidBatchLeavesOutputsUnchanged) {
  // Arm the cache.fill.alloc site with a cache attached to the operands: the
  // batch pass reads coefficient rows directly, never fills the cache, so it
  // must complete with bit-identical outputs while the armed fault stays
  // pending; the next cache *fill* (a cold get) then fails cleanly and a
  // retry after disarm succeeds.
  CacheGuard cache_guard;
  FaultGuard fault_guard;
  cache::set_default_capacity(64);
  AcceptanceBatch batch(settings_for(Shape{8, 8}), Shape{40, 24}, 41);
  for (int i = 0; i < 3; ++i)
    (void)batch.arrays[static_cast<std::size_t>(i)].get({0, 0});
  const std::vector<CompressedArray> reference =
      sequential_eval(batch.requests);

  ASSERT_TRUE(fault::arm("cache.fill.alloc:badalloc,nth=0"));
  const std::vector<CompressedArray> batched =
      ops::lincomb_batch(batch.requests);
  ASSERT_EQ(batched.size(), reference.size());
  for (std::size_t k = 0; k < reference.size(); ++k)
    expect_bit_identical(batched[k], reference[k],
                         "armed-fault output " + std::to_string(k));

  // A cold block *does* fill — the armed badalloc fires there (surfacing as
  // the typed resource-exhausted error), not in the batch — and recovery
  // after disarm works.
  EXPECT_THROW((void)batch.arrays[0].get({39, 23}), cc::Error);
  EXPECT_GE(fault::fired("cache.fill.alloc"), 1u);
  fault::disarm_all();
  EXPECT_NO_THROW((void)batch.arrays[0].get({39, 23}));
  const std::vector<CompressedArray> again =
      ops::lincomb_batch(batch.requests);
  for (std::size_t k = 0; k < reference.size(); ++k)
    expect_bit_identical(again[k], reference[k],
                         "post-recovery output " + std::to_string(k));
}

TEST(LincombBatch, BatchEvalMatchesPerExpressionEval) {
  Compressor compressor(settings_for(Shape{8, 8}));
  Rng rng(43);
  const CompressedArray h =
      compressor.compress(random_smooth(Shape{40, 24}, rng, 5));
  const CompressedArray fx =
      compressor.compress(random_smooth(Shape{40, 24}, rng, 5));
  const CompressedArray fy =
      compressor.compress(random_smooth(Shape{40, 24}, rng, 5));
  const CompressedArray g =
      compressor.compress(random_smooth(Shape{40, 24}, rng, 5));
  const double dt = 0.125;

  BatchEval batch;
  EXPECT_TRUE(batch.empty());
  batch.add(h - dt * (fx + fy)).add(0.5 * h + 0.5 * g + 0.25);
  batch.add(g);  // Bare array: unit-weight single term.
  EXPECT_EQ(batch.size(), 3u);

  const long before = ops::lincomb_rebin_passes();
  const std::vector<CompressedArray> results = batch.eval();
  EXPECT_EQ(ops::lincomb_rebin_passes() - before, 3);
  ASSERT_EQ(results.size(), 3u);
  expect_bit_identical(results[0], (h - dt * (fx + fy)).eval(), "batch expr 0");
  expect_bit_identical(results[1], (0.5 * h + 0.5 * g + 0.25).eval(),
                       "batch expr 1");
  expect_bit_identical(results[2], as_expr(g).eval(), "batch expr 2");

  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(batch.eval().empty());
}

}  // namespace
}  // namespace pyblaz
