/// Tests for the pyblaz command-line tool (exercised through cli_lib, no
/// subprocesses needed).

#include "tools/cli_lib.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

namespace fs = std::filesystem;

/// Temporary working directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("pyblaz_cli_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

TEST(CliParse, ShapeParsing) {
  EXPECT_EQ(cli::parse_shape("40,40,66"), Shape({40, 40, 66}));
  EXPECT_EQ(cli::parse_shape("7"), Shape({7}));
  EXPECT_THROW(cli::parse_shape(""), std::invalid_argument);
  EXPECT_THROW(cli::parse_shape("4,x"), std::invalid_argument);
  EXPECT_THROW(cli::parse_shape("4,-2"), std::invalid_argument);
  EXPECT_THROW(cli::parse_shape("4,0"), std::invalid_argument);
  EXPECT_THROW(cli::parse_shape("4.5"), std::invalid_argument);
}

TEST(CliParse, TypeParsing) {
  EXPECT_EQ(cli::parse_float_type("float32"), FloatType::kFloat32);
  EXPECT_EQ(cli::parse_float_type("bfloat16"), FloatType::kBFloat16);
  EXPECT_THROW(cli::parse_float_type("fp32"), std::invalid_argument);
  EXPECT_EQ(cli::parse_index_type("int16"), IndexType::kInt16);
  EXPECT_THROW(cli::parse_index_type("uint8"), std::invalid_argument);
  EXPECT_EQ(cli::parse_transform("haar"), TransformKind::kHaar);
  EXPECT_THROW(cli::parse_transform("dft"), std::invalid_argument);
}

TEST(CliFiles, RawRoundTrip) {
  TempDir dir;
  Rng rng(1401);
  NDArray<double> array = random_smooth(Shape{12, 10}, rng);
  cli::write_raw_f64(dir.path("a.f64"), array);
  NDArray<double> restored = cli::read_raw_f64(dir.path("a.f64"), Shape{12, 10});
  EXPECT_EQ(restored, array);
}

TEST(CliFiles, RawSizeMismatchRejected) {
  TempDir dir;
  Rng rng(1403);
  cli::write_raw_f64(dir.path("a.f64"), random_smooth(Shape{8, 8}, rng));
  EXPECT_THROW(cli::read_raw_f64(dir.path("a.f64"), Shape{8, 9}), std::runtime_error);
  EXPECT_THROW(cli::read_raw_f64(dir.path("a.f64"), Shape{8, 7}), std::runtime_error);
  EXPECT_THROW(cli::read_raw_f64(dir.path("missing.f64"), Shape{8, 8}),
               std::runtime_error);
}

TEST(CliCommands, CompressDecompressRoundTrip) {
  TempDir dir;
  Rng rng(1407);
  NDArray<double> array = random_smooth(Shape{32, 32}, rng);
  cli::write_raw_f64(dir.path("in.f64"), array);

  std::ostringstream out;
  int status = cli::run({"compress", dir.path("in.f64"), "--shape", "32,32",
                         "--block", "8,8", "--itype", "int16", "-o",
                         dir.path("c.pyblaz")},
                        out);
  ASSERT_EQ(status, 0) << out.str();
  EXPECT_NE(out.str().find("ratio"), std::string::npos);

  std::ostringstream out2;
  status = cli::run({"decompress", dir.path("c.pyblaz"), "-o", dir.path("out.f64")},
                    out2);
  ASSERT_EQ(status, 0) << out2.str();

  NDArray<double> restored = cli::read_raw_f64(dir.path("out.f64"), Shape{32, 32});
  EXPECT_LT(reference::mean_absolute_error(array, restored), 1e-3);
}

TEST(CliCommands, InfoReportsSettings) {
  TempDir dir;
  Rng rng(1409);
  cli::write_raw_f64(dir.path("in.f64"), random_smooth(Shape{16, 16}, rng));
  std::ostringstream ignore;
  cli::run({"compress", dir.path("in.f64"), "--shape", "16,16", "--block", "4,4",
            "--ftype", "float64", "--itype", "int8", "--transform", "haar", "-o",
            dir.path("c.pyblaz")},
           ignore);

  std::ostringstream out;
  ASSERT_EQ(cli::run({"info", dir.path("c.pyblaz")}, out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("(16, 16)"), std::string::npos);
  EXPECT_NE(text.find("(4, 4)"), std::string::npos);
  EXPECT_NE(text.find("float64"), std::string::npos);
  EXPECT_NE(text.find("int8"), std::string::npos);
  EXPECT_NE(text.find("haar"), std::string::npos);
}

TEST(CliCommands, StatsMatchReference) {
  TempDir dir;
  Rng rng(1411);
  NDArray<double> array = random_smooth(Shape{32, 32}, rng);
  cli::write_raw_f64(dir.path("in.f64"), array);
  std::ostringstream ignore;
  cli::run({"compress", dir.path("in.f64"), "--shape", "32,32", "--block", "8,8",
            "--ftype", "float64", "--itype", "int32", "-o", dir.path("c.pyblaz")},
           ignore);

  std::ostringstream out;
  ASSERT_EQ(cli::run({"stats", dir.path("c.pyblaz")}, out), 0);
  // The printed mean should match the reference to the shown precision.
  std::ostringstream expected;
  expected << "mean:";
  EXPECT_NE(out.str().find("mean:"), std::string::npos);
  EXPECT_NE(out.str().find("L2 norm:"), std::string::npos);
}

TEST(CliCommands, DistanceMetrics) {
  TempDir dir;
  Rng rng(1413);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  cli::write_raw_f64(dir.path("x.f64"), x);
  cli::write_raw_f64(dir.path("y.f64"), y);
  std::ostringstream ignore;
  for (const char* stem : {"x", "y"}) {
    cli::run({"compress", dir.path(std::string(stem) + ".f64"), "--shape", "32,32",
              "--block", "8,8", "--itype", "int16", "-o",
              dir.path(std::string(stem) + ".pyblaz")},
             ignore);
  }
  for (const char* metric : {"l2", "cosine", "ssim", "mse", "psnr", "wasserstein"}) {
    std::ostringstream out;
    EXPECT_EQ(cli::run({"distance", dir.path("x.pyblaz"), dir.path("y.pyblaz"),
                        "--metric", metric},
                       out),
              0)
        << metric << ": " << out.str();
    EXPECT_NE(out.str().find(metric), std::string::npos);
  }
}

TEST(CliCommands, TuneFindsSettings) {
  TempDir dir;
  Rng rng(1417);
  NDArray<double> array = random_smooth(Shape{32, 32}, rng);
  cli::write_raw_f64(dir.path("in.f64"), array);
  std::ostringstream out;
  const int status = cli::run(
      {"tune", dir.path("in.f64"), "--shape", "32,32", "--target", "0.01"}, out);
  ASSERT_EQ(status, 0) << out.str();
  EXPECT_NE(out.str().find("best settings:"), std::string::npos);
}

TEST(CliCommands, ErrorsAreReportedNotThrown) {
  std::ostringstream out;
  EXPECT_EQ(cli::run({"compress", "/nonexistent.f64", "--shape", "8,8", "--block",
                      "4,4", "-o", "/tmp/x"},
                     out),
            1);
  EXPECT_NE(out.str().find("error:"), std::string::npos);

  std::ostringstream out2;
  EXPECT_EQ(cli::run({"frobnicate"}, out2), 2);
  EXPECT_NE(out2.str().find("unknown command"), std::string::npos);

  std::ostringstream out3;
  EXPECT_EQ(cli::run({}, out3), 0);  // Bare invocation prints help.
  EXPECT_NE(out3.str().find("commands:"), std::string::npos);
}

TEST(CliCommands, CompressWithPruning) {
  TempDir dir;
  Rng rng(1419);
  cli::write_raw_f64(dir.path("in.f64"), random_smooth(Shape{32, 32}, rng));
  std::ostringstream out;
  ASSERT_EQ(cli::run({"compress", dir.path("in.f64"), "--shape", "32,32",
                      "--block", "8,8", "--keep", "0.5", "-o", dir.path("c.pyblaz")},
                     out),
            0);
  std::ostringstream info;
  cli::run({"info", dir.path("c.pyblaz")}, info);
  EXPECT_NE(info.str().find("32/64"), std::string::npos);
}

}  // namespace
}  // namespace pyblaz
