#include "core/util/bitstream.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace pyblaz {
namespace {

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter writer;
  const std::vector<int> pattern = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (int bit : pattern) writer.put_bit(bit);

  BitReader reader(writer.bytes());
  for (int bit : pattern) EXPECT_EQ(reader.get_bit(), bit);
}

TEST(BitStream, MultiBitValuesRoundTrip) {
  BitWriter writer;
  writer.put_bits(0x5u, 3);
  writer.put_bits(0x1234u, 16);
  writer.put_bits(0xDEADBEEFCAFEBABEull, 64);
  writer.put_bits(0u, 0);  // Zero-width write is a no-op.
  writer.put_bits(0x7Fu, 7);

  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bits(3), 0x5u);
  EXPECT_EQ(reader.get_bits(16), 0x1234u);
  EXPECT_EQ(reader.get_bits(64), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(reader.get_bits(0), 0u);
  EXPECT_EQ(reader.get_bits(7), 0x7Fu);
}

TEST(BitStream, SizeBitsTracksWrites) {
  BitWriter writer;
  EXPECT_EQ(writer.size_bits(), 0u);
  writer.put_bits(1, 5);
  EXPECT_EQ(writer.size_bits(), 5u);
  writer.put_bits(0, 11);
  EXPECT_EQ(writer.size_bits(), 16u);
  EXPECT_EQ(writer.bytes().size(), 2u);
}

TEST(BitStream, OnlyLowBitsAreWritten) {
  BitWriter writer;
  writer.put_bits(0xFFu, 4);  // Only the low 4 bits.
  writer.put_bits(0x0u, 4);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bits(8), 0x0Fu);
}

TEST(BitStream, AlignToByte) {
  BitWriter writer;
  writer.put_bits(1, 3);
  writer.align_to_byte();
  EXPECT_EQ(writer.size_bits(), 8u);
  writer.put_bits(0xABu, 8);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bits(8), 0x01u);
  EXPECT_EQ(reader.get_bits(8), 0xABu);
}

TEST(BitStream, AlignIsIdempotentWhenAligned) {
  BitWriter writer;
  writer.put_bits(0xFFu, 8);
  writer.align_to_byte();
  EXPECT_EQ(writer.size_bits(), 8u);
}

TEST(BitStream, PadToExactLength) {
  BitWriter writer;
  writer.put_bits(0b101u, 3);
  writer.pad_to(20);
  EXPECT_EQ(writer.size_bits(), 20u);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bits(3), 0b101u);
  EXPECT_EQ(reader.get_bits(17), 0u);  // Padding is all zeros.
}

TEST(BitStream, ReaderSeekAndPosition) {
  BitWriter writer;
  writer.put_bits(0xAAAAu, 16);
  writer.put_bits(0x5555u, 16);
  BitReader reader(writer.bytes());
  reader.seek(16);
  EXPECT_EQ(reader.position(), 16u);
  EXPECT_EQ(reader.get_bits(16), 0x5555u);
  reader.seek(0);
  EXPECT_EQ(reader.get_bits(16), 0xAAAAu);
}

TEST(BitStream, ReadPastEndYieldsZeros) {
  BitWriter writer;
  writer.put_bits(0xFFu, 8);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bits(8), 0xFFu);
  EXPECT_EQ(reader.get_bits(16), 0u);
  EXPECT_EQ(reader.position(), 24u);
}

TEST(BitStream, OverranFlagsReadsPastTheEnd) {
  // Over-reads yield zeros by design (the Huffman LUT probes a full window
  // near the stream tail), so bounds policing lives in overran(): false for
  // any read that stays inside, true the moment the cursor passes the end.
  BitWriter writer;
  writer.put_bits(0xABCDu, 16);
  BitReader reader(writer.bytes());
  EXPECT_FALSE(reader.overran());
  reader.get_bits(16);  // Consumes exactly the stream.
  EXPECT_FALSE(reader.overran());
  reader.get_bits(1);
  EXPECT_TRUE(reader.overran());
  reader.seek(8);  // Rewinding clears the condition.
  EXPECT_FALSE(reader.overran());
}

TEST(BitStream, RemainingBitsSaturatesAtZero) {
  BitWriter writer;
  writer.put_bits(0u, 12);
  BitReader reader(writer.bytes());  // 12 bits padded to 2 bytes = 16 bits.
  EXPECT_EQ(reader.remaining_bits(), 16u);
  reader.get_bits(10);
  EXPECT_EQ(reader.remaining_bits(), 6u);
  reader.get_bits(64);  // Overshoots: remaining must not wrap around.
  EXPECT_EQ(reader.remaining_bits(), 0u);
  reader.seek(1000);
  EXPECT_EQ(reader.remaining_bits(), 0u);
  EXPECT_TRUE(reader.overran());
}

TEST(BitStream, WidthArgumentsAreClampedTo64) {
  // Deserializers compute widths from untrusted header fields; a width that
  // escaped validation must clamp, not shift by >= 64 (UB).
  BitWriter writer;
  writer.put_bits(0xDEADBEEFull, 200);  // Writes 64 bits worth.
  EXPECT_EQ(writer.size_bits(), 64u);
  writer.put_bits(1u, -3);  // Negative widths are no-ops.
  EXPECT_EQ(writer.size_bits(), 64u);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bits(200), 0xDEADBEEFull);
  EXPECT_EQ(reader.position(), 64u);
  EXPECT_EQ(reader.get_bits(-5), 0u);
  EXPECT_EQ(reader.position(), 64u);
}

TEST(BitStream, ReaderAlignToByte) {
  BitWriter writer;
  writer.put_bits(0b1u, 1);
  writer.align_to_byte();
  writer.put_bits(0x42u, 8);
  BitReader reader(writer.bytes());
  reader.get_bits(1);
  reader.align_to_byte();
  EXPECT_EQ(reader.get_bits(8), 0x42u);
}

TEST(BitStream, RandomizedRoundTrip) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    BitWriter writer;
    std::vector<std::pair<std::uint64_t, int>> writes;
    for (int k = 0; k < 200; ++k) {
      const int nbits = static_cast<int>(rng() % 65);
      const std::uint64_t value =
          nbits == 64 ? rng() : (rng() & ((std::uint64_t{1} << nbits) - 1));
      writes.emplace_back(value, nbits);
      writer.put_bits(value, nbits);
    }
    BitReader reader(writer.bytes());
    for (const auto& [value, nbits] : writes)
      ASSERT_EQ(reader.get_bits(nbits), value);
  }
}

}  // namespace
}  // namespace pyblaz
