#include "szx/szx.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"
#include "sim/fission/fission.hpp"

namespace {

using pyblaz::index_t;
using pyblaz::NDArray;
using pyblaz::Rng;
using pyblaz::Shape;

struct SzxCase {
  Shape shape;
  double bound;
};

class SzxRoundTrip : public ::testing::TestWithParam<SzxCase> {};

TEST_P(SzxRoundTrip, ErrorBoundHoldsEverywhere) {
  // The SZ guarantee: every element within the absolute bound.
  const auto& p = GetParam();
  Rng rng(1501);
  NDArray<double> array = pyblaz::random_smooth(p.shape, rng);
  szx::Compressed compressed = szx::compress(array, {.error_bound = p.bound});
  NDArray<double> restored = szx::decompress(compressed);
  ASSERT_EQ(restored.shape(), array.shape());
  for (index_t k = 0; k < array.size(); ++k) {
    ASSERT_LE(std::fabs(array[k] - restored[k]), p.bound)
        << "element " << k << " shape " << p.shape.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBounds, SzxRoundTrip,
    ::testing::Values(SzxCase{Shape{1000}, 1e-3}, SzxCase{Shape{1000}, 1e-6},
                      SzxCase{Shape{64, 64}, 1e-3}, SzxCase{Shape{63, 65}, 1e-4},
                      SzxCase{Shape{16, 32, 24}, 1e-3},
                      SzxCase{Shape{7, 5, 3}, 1e-2}));

TEST(Szx, SmoothDataCompressesWell) {
  Rng rng(1503);
  NDArray<double> array = pyblaz::random_smooth(Shape{128, 128}, rng);
  szx::Compressed compressed = szx::compress(array, {.error_bound = 1e-3});
  // Lorenzo prediction on smooth data: most residuals hit the zero bin.
  EXPECT_GT(szx::ratio(compressed), 8.0);
}

TEST(Szx, RatioIsDataDependentUnlikePyBlaz) {
  // The §III contrast: SZ's ratio depends on the data.
  Rng rng(1507);
  NDArray<double> smooth = pyblaz::random_smooth(Shape{64, 64}, rng);
  NDArray<double> noise = pyblaz::random_normal(Shape{64, 64}, rng);
  const double r_smooth = szx::ratio(szx::compress(smooth, {.error_bound = 1e-3}));
  const double r_noise = szx::ratio(szx::compress(noise, {.error_bound = 1e-3}));
  EXPECT_GT(r_smooth, 2.0 * r_noise);
}

TEST(Szx, TighterBoundLowersRatio) {
  Rng rng(1509);
  NDArray<double> array = pyblaz::random_smooth(Shape{64, 64}, rng);
  double previous = 1e300;
  for (double bound : {1e-2, 1e-4, 1e-8}) {
    const double r = szx::ratio(szx::compress(array, {.error_bound = bound}));
    EXPECT_LT(r, previous) << "bound " << bound;
    previous = r;
  }
}

TEST(Szx, ConstantArrayCompressesExtremely) {
  NDArray<double> array(Shape{64, 64}, 2.5);
  szx::Compressed compressed = szx::compress(array, {.error_bound = 1e-6});
  EXPECT_GT(szx::ratio(compressed), 50.0);
  NDArray<double> restored = szx::decompress(compressed);
  for (index_t k = 0; k < array.size(); ++k)
    EXPECT_NEAR(restored[k], 2.5, 1e-6);
}

TEST(Szx, SpikyDataFallsBackToOutliers) {
  // Large isolated jumps exceed the quantization range with a small radius
  // and must be stored verbatim — still within bound (exactly, in fact).
  NDArray<double> array(Shape{100}, 0.0);
  array[10] = 1e9;
  array[50] = -1e9;
  szx::Compressed compressed =
      szx::compress(array, {.error_bound = 1e-6, .quantization_radius = 7});
  NDArray<double> restored = szx::decompress(compressed);
  for (index_t k = 0; k < array.size(); ++k)
    EXPECT_LE(std::fabs(array[k] - restored[k]), 1e-6);
  EXPECT_EQ(restored[10], 1e9);  // Outliers are verbatim.
}

TEST(Szx, HandlesNonFiniteValuesAsOutliers) {
  NDArray<double> array(Shape{16}, 1.0);
  array[3] = std::numeric_limits<double>::infinity();
  szx::Compressed compressed = szx::compress(array, {.error_bound = 1e-3});
  NDArray<double> restored = szx::decompress(compressed);
  EXPECT_TRUE(std::isinf(restored[3]));
  EXPECT_NEAR(restored[4], 1.0, 1e-3);
}

TEST(Szx, FissionDataRespectsBound) {
  sim::FissionConfig config;
  config.grid = Shape{16, 16, 32};
  NDArray<double> density = sim::negative_log_density(690, config);
  const double bound = 1e-2;
  NDArray<double> restored =
      szx::decompress(szx::compress(density, {.error_bound = bound}));
  EXPECT_LE(pyblaz::reference::linf_distance(density, restored), bound);
}

TEST(Szx, RejectsBadConfiguration) {
  NDArray<double> array(Shape{8}, 1.0);
  EXPECT_THROW(szx::compress(array, {.error_bound = 0.0}), std::invalid_argument);
  EXPECT_THROW(szx::compress(array, {.error_bound = 1e-3, .quantization_radius = 0}),
               std::invalid_argument);
  NDArray<double> too_deep(Shape{2, 2, 2, 2}, 1.0);
  EXPECT_THROW(szx::compress(too_deep), std::invalid_argument);
}

TEST(Szx, RejectsCorruptStream) {
  Rng rng(1511);
  NDArray<double> array = pyblaz::random_smooth(Shape{32, 32}, rng);
  szx::Compressed compressed = szx::compress(array);
  compressed.stream.resize(compressed.stream.size() / 4);
  EXPECT_THROW(szx::decompress(compressed), std::invalid_argument);
}

TEST(Szx, SerializedStreamIsSelfContained) {
  // decompress() needs nothing but the byte stream (shape is inside).
  Rng rng(1513);
  NDArray<double> array = pyblaz::random_smooth(Shape{20, 30}, rng);
  szx::Compressed compressed = szx::compress(array, {.error_bound = 1e-4});
  szx::Compressed reparsed;
  reparsed.stream = compressed.stream;  // Drop shape/bound metadata.
  NDArray<double> restored = szx::decompress(reparsed);
  EXPECT_EQ(restored.shape(), array.shape());
}

}  // namespace
