#include "core/codec/ratio.hpp"

#include <gtest/gtest.h>

#include "core/codec/compressor.hpp"
#include "core/codec/serialization.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

TEST(Ratio, PaperExampleInt16NoPruning) {
  // §IV-C: shape (3,224,224), blocks (4,4,4), FP32, int16, no pruning
  // -> ratio ≈ 2.91.
  CompressorSettings settings{.block_shape = Shape{4, 4, 4},
                              .float_type = FloatType::kFloat32,
                              .index_type = IndexType::kInt16};
  const double ratio = formula_ratio(settings, Shape{3, 224, 224}, 64);
  EXPECT_NEAR(ratio, 2.91, 0.005);
}

TEST(Ratio, PaperExampleInt8HalfPruned) {
  // §IV-C: same shape, int8 + half the indices pruned -> ratio ≈ 10.66.
  CompressorSettings settings{.block_shape = Shape{4, 4, 4},
                              .float_type = FloatType::kFloat32,
                              .index_type = IndexType::kInt8};
  settings.mask = PruningMask::keep_fraction(Shape{4, 4, 4}, 0.5);
  const double ratio = formula_ratio(settings, Shape{3, 224, 224}, 64);
  EXPECT_NEAR(ratio, 10.66, 0.01);
}

TEST(Ratio, AsymptoticIsLimitOfFormula) {
  CompressorSettings settings{.block_shape = Shape{8, 8},
                              .float_type = FloatType::kFloat32,
                              .index_type = IndexType::kInt8};
  const double limit = asymptotic_ratio(settings, 64);
  // Evaluate the finite formula at increasingly large divisible shapes.
  const double at_big = formula_ratio(settings, Shape{4096, 4096}, 64);
  EXPECT_NEAR(at_big, limit, 1e-9);
  // Ragged shapes waste some of a block: never above the limit.
  const double at_ragged = formula_ratio(settings, Shape{4097, 4095}, 64);
  EXPECT_LE(at_ragged, limit);
}

TEST(Ratio, AsymptoticClosedForm) {
  // u * prod(i) / (f + i * ΣP): 64 * 64 / (32 + 8 * 64) = 4096 / 544.
  CompressorSettings settings{.block_shape = Shape{8, 8},
                              .float_type = FloatType::kFloat32,
                              .index_type = IndexType::kInt8};
  EXPECT_DOUBLE_EQ(asymptotic_ratio(settings, 64), 4096.0 / 544.0);
}

TEST(Ratio, RatioIsDataIndependent) {
  // Unlike SZ, PyBlaz's ratio depends only on the settings (§III).
  CompressorSettings settings{.block_shape = Shape{8, 8},
                              .float_type = FloatType::kFloat32,
                              .index_type = IndexType::kInt8};
  Compressor compressor(settings);
  Rng rng(61);
  NDArray<double> smooth = random_smooth(Shape{40, 56}, rng);
  NDArray<double> noise = random_normal(Shape{40, 56}, rng);
  const auto size_smooth = serialize(compressor.compress(smooth)).size();
  const auto size_noise = serialize(compressor.compress(noise)).size();
  EXPECT_EQ(size_smooth, size_noise);
}

TEST(Ratio, LayoutBitsMatchesSerializedArray) {
  CompressorSettings settings{.block_shape = Shape{4, 8},
                              .float_type = FloatType::kFloat16,
                              .index_type = IndexType::kInt16};
  settings.mask = PruningMask::keep_fraction(Shape{4, 8}, 0.4);
  Compressor compressor(settings);
  Rng rng(67);
  NDArray<double> array = random_smooth(Shape{30, 41}, rng);
  CompressedArray compressed = compressor.compress(array);
  EXPECT_EQ(layout_bits(settings, array.shape()), paper_layout_bits(compressed));
}

TEST(Ratio, WiderTypesLowerTheRatio) {
  const Shape shape{256, 256};
  CompressorSettings base{.block_shape = Shape{8, 8},
                          .float_type = FloatType::kFloat32,
                          .index_type = IndexType::kInt8};
  CompressorSettings wide_index = base;
  wide_index.index_type = IndexType::kInt16;
  CompressorSettings wide_float = base;
  wide_float.float_type = FloatType::kFloat64;
  EXPECT_GT(formula_ratio(base, shape), formula_ratio(wide_index, shape));
  EXPECT_GT(formula_ratio(base, shape), formula_ratio(wide_float, shape));
}

TEST(Ratio, BiggerBlocksRaiseTheRatio) {
  const Shape shape{256, 256};
  CompressorSettings small{.block_shape = Shape{4, 4},
                           .float_type = FloatType::kFloat32,
                           .index_type = IndexType::kInt8};
  CompressorSettings big{.block_shape = Shape{16, 16},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt8};
  // Bigger blocks amortize the per-block N over more elements.
  EXPECT_GT(asymptotic_ratio(big), asymptotic_ratio(small));
  EXPECT_GT(formula_ratio(big, shape), formula_ratio(small, shape));
}

TEST(Ratio, PruningRaisesTheRatioProportionally) {
  CompressorSettings full{.block_shape = Shape{8, 8},
                          .float_type = FloatType::kFloat32,
                          .index_type = IndexType::kInt8};
  CompressorSettings half = full;
  half.mask = PruningMask::keep_fraction(Shape{8, 8}, 0.5);
  // (f + i*64) / (f + i*32) = 544/288 ≈ 1.89x improvement.
  EXPECT_NEAR(asymptotic_ratio(half) / asymptotic_ratio(full), 544.0 / 288.0,
              1e-12);
}

TEST(Ratio, ExactRatioSlightlyBelowFormulaRatio) {
  // The exact layout adds the header/shape/mask terms the formula ignores.
  CompressorSettings settings{.block_shape = Shape{4, 4, 4},
                              .float_type = FloatType::kFloat32,
                              .index_type = IndexType::kInt16};
  const Shape shape{3, 224, 224};
  EXPECT_LT(exact_ratio(settings, shape), formula_ratio(settings, shape));
  EXPECT_NEAR(exact_ratio(settings, shape), formula_ratio(settings, shape), 0.01);
}

TEST(Ratio, NonHypercubicBlocksHelpShallowVolumes) {
  // Fig. 5's observation: for volumes whose first dimension is much smaller,
  // (4,16,16) blocks beat (8,8,8) and even (16,16,16) blocks on ratio,
  // because tall blocks mostly pad.
  const Shape mri{36, 256, 256};
  CompressorSettings cubic8{.block_shape = Shape{8, 8, 8},
                            .float_type = FloatType::kFloat32,
                            .index_type = IndexType::kInt8};
  CompressorSettings cubic16{.block_shape = Shape{16, 16, 16},
                             .float_type = FloatType::kFloat32,
                             .index_type = IndexType::kInt8};
  CompressorSettings flat{.block_shape = Shape{4, 16, 16},
                          .float_type = FloatType::kFloat32,
                          .index_type = IndexType::kInt8};
  EXPECT_GT(formula_ratio(flat, mri), formula_ratio(cubic8, mri));
  const Shape shallow{20, 256, 256};
  EXPECT_GT(formula_ratio(flat, shallow), formula_ratio(cubic16, shallow));
}

}  // namespace
}  // namespace pyblaz
