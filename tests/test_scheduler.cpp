/// The concurrency contract of the sharded concurrent-region scheduler
/// (src/core/parallel/): independent top-level parallel regions overlap
/// instead of queueing, and overlapping changes NOTHING about the results —
/// archives stay byte-identical and operation results bit-identical to
/// sequential runs, at any thread count, any shard count, and any number of
/// concurrent callers.  Chunk boundaries and the chunk -> work mapping are a
/// pure function of range and grain, each region claims from its own
/// TaskContext counter, and regions share nothing but the workers; the tests
/// here drive real concurrent clients through every layer (codec, ops,
/// serializer) and compare bitwise against sequential references.
///
/// Also covered: the quiescence protocol (set_num_threads / set_num_shards
/// racing in-flight submitters), per-region exception isolation, the
/// serialized-baseline mode, and the frame-scoped coefficient workspace.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/codec/serialization.hpp"
#include "core/codec/workspace.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/expr.hpp"
#include "core/ops/ops.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

/// Restores the default thread/shard counts and concurrency mode when a test
/// exits, pass or fail.
struct SchedulerGuard {
  ~SchedulerGuard() {
    parallel::set_serialize_regions(false);
    parallel::set_num_threads(0);
    parallel::set_num_shards(0);
  }
};

CompressorSettings test_settings() {
  CompressorSettings settings;
  settings.block_shape = Shape{8, 8};
  settings.float_type = FloatType::kFloat32;
  settings.index_type = IndexType::kInt8;
  settings.transform = TransformKind::kDCT;
  return settings;
}

TEST(Scheduler, ShardKnobClampsAndRestores) {
  SchedulerGuard guard;
  const int default_shards = parallel::num_shards();
  EXPECT_GE(default_shards, 1);
  EXPECT_LE(default_shards, parallel::ThreadPool::kMaxShards);
  parallel::set_num_shards(3);
  EXPECT_EQ(parallel::num_shards(), 3);
  parallel::set_num_shards(10'000);
  EXPECT_EQ(parallel::num_shards(), parallel::ThreadPool::kMaxShards);
  parallel::set_num_shards(0);
  EXPECT_EQ(parallel::num_shards(), default_shards);
}

TEST(Scheduler, ConcurrentRegionsCoverEveryChunkExactlyOnce) {
  SchedulerGuard guard;
  constexpr int kClients = 4;
  constexpr int kRegionsPerClient = 20;
  constexpr index_t kRange = 257;
  for (int shards : {1, 2, 8}) {
    parallel::set_num_shards(shards);
    parallel::set_num_threads(4);
    std::vector<std::vector<std::atomic<int>>> hits(kClients);
    for (auto& h : hits) {
      h = std::vector<std::atomic<int>>(kRange);
      for (auto& cell : h) cell.store(0);
    }
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < kRegionsPerClient; ++r) {
          parallel::parallel_for(0, kRange, 16,
                                 [&](index_t begin, index_t end) {
                                   for (index_t k = begin; k < end; ++k)
                                     hits[c][static_cast<std::size_t>(k)]++;
                                 });
        }
      });
    }
    for (auto& t : clients) t.join();
    for (int c = 0; c < kClients; ++c)
      for (index_t k = 0; k < kRange; ++k)
        ASSERT_EQ(hits[c][static_cast<std::size_t>(k)].load(),
                  kRegionsPerClient)
            << "client " << c << " index " << k << " shards " << shards;
  }
}

/// The tentpole determinism property: M clients concurrently compressing,
/// combining (ops::lincomb via the expression front end), serializing, and
/// decompressing their own arrays produce exactly the bytes and bits the
/// sequential run produces — across thread counts, shard counts, and the
/// serialized-baseline mode.
TEST(Scheduler, ConcurrentClientsBitIdenticalToSequential) {
  SchedulerGuard guard;
  constexpr int kClients = 3;
  constexpr int kRounds = 3;
  Compressor compressor(test_settings());

  // Distinct per-client inputs catch cross-region contamination that
  // identical inputs would mask.
  std::vector<NDArray<double>> inputs_a, inputs_b;
  for (int c = 0; c < kClients; ++c) {
    Rng rng(100 + static_cast<std::uint64_t>(c));
    inputs_a.push_back(random_smooth(Shape{96, 96}, rng, 5));
    inputs_b.push_back(random_smooth(Shape{96, 96}, rng, 5));
  }

  struct ClientResult {
    std::vector<std::uint8_t> archive;
    std::vector<double> mixed;
    double dot = 0.0;
  };
  auto session = [&](int c) {
    const CompressedArray a = compressor.compress(inputs_a[c]);
    const CompressedArray b = compressor.compress(inputs_b[c]);
    const CompressedArray mix = a - 0.5 * b + 0.25 * a;
    return ClientResult{serialize(mix),
                        compressor.decompress(mix).vector(),
                        ops::dot(a, b)};
  };

  // Sequential references, one thread, no concurrency.
  parallel::set_num_threads(1);
  std::vector<ClientResult> reference;
  for (int c = 0; c < kClients; ++c) reference.push_back(session(c));

  for (bool serialized : {false, true}) {
    parallel::set_serialize_regions(serialized);
    for (int threads : {1, 4}) {
      for (int shards : {1, 4, 8}) {
        parallel::set_num_threads(threads);
        parallel::set_num_shards(shards);
        for (int round = 0; round < kRounds; ++round) {
          std::vector<ClientResult> results(kClients);
          std::vector<std::thread> clients;
          for (int c = 0; c < kClients; ++c)
            clients.emplace_back([&, c] { results[c] = session(c); });
          for (auto& t : clients) t.join();
          for (int c = 0; c < kClients; ++c) {
            ASSERT_EQ(results[c].archive, reference[c].archive)
                << "client " << c << " archive differs at threads=" << threads
                << " shards=" << shards << " serialized=" << serialized;
            ASSERT_EQ(results[c].mixed, reference[c].mixed);
            ASSERT_EQ(results[c].dot, reference[c].dot);
          }
        }
      }
    }
  }
}

/// A throwing region must not poison concurrent healthy regions: the
/// exception surfaces on the throwing caller only, and the scheduler stays
/// usable.
TEST(Scheduler, ExceptionsStayWithinTheirRegion) {
  SchedulerGuard guard;
  parallel::set_num_threads(4);
  constexpr int kRounds = 10;
  std::atomic<int> healthy_total{0};
  std::atomic<int> caught{0};
  std::thread thrower([&] {
    for (int r = 0; r < kRounds; ++r) {
      try {
        parallel::parallel_for(0, 64, 1, [&](index_t begin, index_t) {
          if (begin == 13) throw std::runtime_error("chunk 13");
        });
      } catch (const std::runtime_error&) {
        ++caught;
      }
    }
  });
  std::thread healthy([&] {
    for (int r = 0; r < kRounds; ++r) {
      parallel::parallel_for(0, 64, 1, [&](index_t begin, index_t end) {
        healthy_total += static_cast<int>(end - begin);
      });
    }
  });
  thrower.join();
  healthy.join();
  EXPECT_EQ(caught.load(), kRounds);
  EXPECT_EQ(healthy_total.load(), kRounds * 64);
  // Still usable afterwards.
  std::atomic<int> total{0};
  parallel::parallel_for(0, 100, 1, [&](index_t begin, index_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 100);
}

/// The set_num_threads quiescence fix: resizing while other threads are
/// mid-submission must neither crash, deadlock, nor lose chunks.  (The
/// pre-sharding pool left this unguarded — resize joined workers while a
/// concurrent submitter could still be entering a job.)
TEST(Scheduler, ResizeWaitsForInFlightRegions) {
  SchedulerGuard guard;
  parallel::set_num_threads(4);
  constexpr int kSubmitters = 3;
  std::atomic<bool> done{false};
  std::atomic<int> started{0};
  std::atomic<long> executed{0};
  std::vector<std::thread> submitters;
  for (int c = 0; c < kSubmitters; ++c) {
    submitters.emplace_back([&] {
      bool first = true;
      while (!done.load()) {
        parallel::parallel_for(0, 128, 4, [&](index_t begin, index_t end) {
          executed += static_cast<long>(end - begin);
        });
        if (first) {
          first = false;
          ++started;
        }
      }
    });
  }
  // Only start resizing once every submitter demonstrably has regions in
  // flight (on a single-core host the resizes could otherwise win every
  // race and never actually contend).
  while (started.load() < kSubmitters) std::this_thread::yield();
  // Hammer resizes (and shard changes) against the in-flight submitters.
  for (int r = 0; r < 12; ++r) {
    parallel::set_num_threads(1 + r % 4);
    parallel::set_num_shards(1 + r % 3);
  }
  done.store(true);
  for (auto& t : submitters) t.join();
  // Coverage is exact: every region contributes exactly 128.
  EXPECT_EQ(executed.load() % 128, 0);
  EXPECT_GE(executed.load(), kSubmitters * 128);
}

/// Concurrent resizers must also serialize cleanly among themselves.
TEST(Scheduler, ConcurrentResizersDoNotDeadlock) {
  SchedulerGuard guard;
  std::vector<std::thread> resizers;
  for (int c = 0; c < 3; ++c)
    resizers.emplace_back([c] {
      for (int r = 0; r < 8; ++r) parallel::set_num_threads(1 + (c + r) % 4);
    });
  for (auto& t : resizers) t.join();
  parallel::set_num_threads(0);
  std::atomic<int> total{0};
  parallel::parallel_for(0, 64, 1, [&](index_t begin, index_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 64);
}

// ---------------------------------------------------------------------------
// Work-conserving waiters: a caller whose region's tail chunks run on other
// threads drains other regions' chunks instead of sleeping.

/// Deterministic tail-latency scenario: with exactly one shared worker
/// (2 threads total) wedged inside a long chunk of region A, a second
/// client's region B can only complete if A's waiting caller drains one of
/// B's chunks itself — B's chunk 0 blocks until chunk 1 runs, B's own caller
/// is inside chunk 0, and the worker is wedged.  Without work conservation
/// the waiter sleeps in wait_complete() and B deadlocks.
TEST(Scheduler, WaitingCallerDrainsOtherRegionsChunks) {
  SchedulerGuard guard;
  parallel::set_num_threads(2);  // One shared worker + the callers.
  parallel::set_num_shards(1);

  std::mutex m;
  std::condition_variable cv;
  bool worker_engaged = false;  // A's wedged chunk has started.
  bool release_a = false;       // Lets A's wedged chunk finish.
  bool b1_done = false;         // B's chunk 1 ran.
  std::atomic<bool> timed_out{false};
  const auto deadline = std::chrono::seconds(30);

  std::atomic<std::thread::id> a_submitter{};
  std::atomic<std::thread::id> b_runners[2] = {};
  std::atomic<int> b1_frame_depth{0};

  std::thread ta([&] {
    a_submitter.store(std::this_thread::get_id());
    parallel::parallel_for(0, 2, 1, [&](index_t chunk, index_t) {
      (void)chunk;
      if (std::this_thread::get_id() == a_submitter.load()) {
        // The submitting caller's chunk: hold until the worker is wedged in
        // the other chunk, so the caller reaches its work-conserving wait
        // with A's tail demonstrably running on another thread.
        std::unique_lock<std::mutex> lock(m);
        if (!cv.wait_for(lock, deadline, [&] { return worker_engaged; }))
          timed_out = true;
      } else {
        // The worker's chunk: wedge until the test releases it.
        {
          std::lock_guard<std::mutex> lock(m);
          worker_engaged = true;
        }
        cv.notify_all();
        std::unique_lock<std::mutex> lock(m);
        if (!cv.wait_for(lock, deadline, [&] { return release_a; }))
          timed_out = true;
      }
    });
  });

  {
    std::unique_lock<std::mutex> lock(m);
    if (!cv.wait_for(lock, deadline, [&] { return worker_engaged; }))
      timed_out = true;
  }

  std::thread tb([&] {
    parallel::parallel_for(0, 2, 1, [&](index_t chunk, index_t) {
      b_runners[chunk].store(std::this_thread::get_id());
      if (chunk == 0) {
        std::unique_lock<std::mutex> lock(m);
        if (!cv.wait_for(lock, deadline, [&] { return b1_done; }))
          timed_out = true;
      } else {
        // The drain honors the workspace contract: foreign chunks run
        // inside a fresh execution frame.
        b1_frame_depth.store(internal::workspace_frame_depth());
        {
          std::lock_guard<std::mutex> lock(m);
          b1_done = true;
        }
        cv.notify_all();
      }
    });
  });

  tb.join();  // Completes only because SOMEONE ran b1 while b0 held its caller.
  {
    std::lock_guard<std::mutex> lock(m);
    release_a = true;
  }
  cv.notify_all();
  ta.join();

  EXPECT_FALSE(timed_out.load());
  // With the worker wedged in A and B's own caller blocked inside whichever
  // B chunk it claimed, the other B chunk can only have run on A's
  // work-conserving waiter.
  EXPECT_TRUE(b_runners[0].load() == a_submitter.load() ||
              b_runners[1].load() == a_submitter.load());
  EXPECT_GE(b1_frame_depth.load(), 1);
}

// ---------------------------------------------------------------------------
// Frame-scoped coefficient workspace (core/codec/workspace.*).

/// A chunk body that holds a workspace row while running a nested parallel
/// region whose chunks use the same lane must get its row back untouched:
/// the nested region executes in a deeper workspace frame.
TEST(WorkspaceFrames, NestedRegionsCannotClobberHeldRows) {
  SchedulerGuard guard;
  parallel::set_num_threads(4);
  std::atomic<int> violations{0};
  parallel::parallel_for(0, 8, 1, [&](index_t outer_begin, index_t) {
    constexpr std::size_t kCount = 64;
    double* held = internal::coefficient_workspace(kCount, 0);
    const double sentinel = 1000.0 + static_cast<double>(outer_begin);
    for (std::size_t k = 0; k < kCount; ++k) held[k] = sentinel;

    // Nested region (runs inline on this thread) stomps lane 0 of ITS frame.
    parallel::parallel_for(0, 8, 1, [&](index_t, index_t) {
      double* inner = internal::coefficient_workspace(kCount, 0);
      for (std::size_t k = 0; k < kCount; ++k) inner[k] = -1.0;
    });

    for (std::size_t k = 0; k < kCount; ++k)
      if (held[k] != sentinel) ++violations;
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(WorkspaceFrames, DepthTracksExecutionScopes) {
  SchedulerGuard guard;
  parallel::set_num_threads(2);
  EXPECT_EQ(internal::workspace_frame_depth(), 0);
  parallel::parallel_for(0, 4, 1, [&](index_t, index_t) {
    EXPECT_GE(internal::workspace_frame_depth(), 1);
    const int outer_depth = internal::workspace_frame_depth();
    parallel::parallel_for(0, 4, 1, [&](index_t, index_t) {
      EXPECT_EQ(internal::workspace_frame_depth(), outer_depth + 1);
    });
    EXPECT_EQ(internal::workspace_frame_depth(), outer_depth);
  });
  EXPECT_EQ(internal::workspace_frame_depth(), 0);
}

/// Two clients running workspace-hungry lincombs at once: the per-thread,
/// per-frame rows must never mix operands across regions.  (Bit-identity to
/// the sequential run is the sensitive detector.)
TEST(WorkspaceFrames, ConcurrentLincombsDoNotShareRows) {
  SchedulerGuard guard;
  Compressor compressor(test_settings());
  constexpr int kClients = 2;
  std::vector<CompressedArray> a, b, c;
  for (int k = 0; k < kClients; ++k) {
    Rng rng(500 + static_cast<std::uint64_t>(k));
    a.push_back(compressor.compress(random_smooth(Shape{64, 64}, rng, 4)));
    b.push_back(compressor.compress(random_smooth(Shape{64, 64}, rng, 4)));
    c.push_back(compressor.compress(random_smooth(Shape{64, 64}, rng, 4)));
  }
  auto combine = [&](int k) {
    const CompressedArray mix = a[k] + 0.5 * b[k] - 0.25 * c[k] + 0.125;
    return std::make_pair(mix.biggest, mix.indices);
  };
  parallel::set_num_threads(1);
  std::vector<decltype(combine(0))> reference;
  for (int k = 0; k < kClients; ++k) reference.push_back(combine(k));

  parallel::set_num_threads(4);
  for (int round = 0; round < 5; ++round) {
    std::vector<decltype(combine(0))> results(kClients);
    std::vector<std::thread> clients;
    for (int k = 0; k < kClients; ++k)
      clients.emplace_back([&, k] { results[k] = combine(k); });
    for (auto& t : clients) t.join();
    for (int k = 0; k < kClients; ++k) ASSERT_EQ(results[k], reference[k]);
  }
}

}  // namespace
}  // namespace pyblaz
