#include "sim/mri/mri.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"

namespace {

using pyblaz::index_t;
using pyblaz::NDArray;
using pyblaz::Shape;

TEST(Mri, VolumeShapeAndRange) {
  sim::MriVolumeConfig config{.depth = 24, .seed = 1};
  NDArray<double> volume = sim::flair_volume(config);
  EXPECT_EQ(volume.shape(), Shape({24, 256, 256}));
  for (index_t k = 0; k < volume.size(); ++k) {
    ASSERT_GE(volume[k], 0.0);
    ASSERT_LE(volume[k], 1.0);
  }
}

TEST(Mri, StatisticsNearTheRealDataset) {
  // The real FLAIR channel: mean 0.0870, standard deviation 0.1238 (§V-B).
  // Average over a few volumes; per-volume variation is expected.
  double mean_total = 0.0, std_total = 0.0;
  const int volumes = 4;
  for (int k = 0; k < volumes; ++k) {
    sim::MriVolumeConfig config{.depth = 36, .seed = 100 + static_cast<std::uint64_t>(k)};
    NDArray<double> volume = sim::flair_volume(config);
    mean_total += pyblaz::reference::mean(volume);
    std_total += pyblaz::reference::standard_deviation(volume);
  }
  EXPECT_NEAR(mean_total / volumes, 0.087, 0.05);
  EXPECT_NEAR(std_total / volumes, 0.124, 0.06);
}

TEST(Mri, BackgroundIsDarkBrainIsBright) {
  sim::MriVolumeConfig config{.depth = 32, .seed = 5};
  NDArray<double> volume = sim::flair_volume(config);
  // Corner voxel: outside the ellipsoid.
  EXPECT_LT(volume.at({0, 0, 0}), 0.08);
  // Center voxel: inside the brain.
  EXPECT_GT(volume.at({16, 128, 128}), 0.08);
}

TEST(Mri, DeterministicGivenSeed) {
  sim::MriVolumeConfig config{.depth = 20, .seed = 9};
  EXPECT_EQ(sim::flair_volume(config), sim::flair_volume(config));
}

TEST(Mri, DifferentSeedsDiffer) {
  sim::MriVolumeConfig a{.depth = 20, .seed = 1};
  sim::MriVolumeConfig b{.depth = 20, .seed = 2};
  EXPECT_FALSE(sim::flair_volume(a) == sim::flair_volume(b));
}

TEST(Mri, DatasetDepthsMatchTheRealDistribution) {
  // First dimension varies in [20, 88] with mean ≈ 35.7 (§V-B).
  sim::MriDatasetConfig config{.volumes = 110, .seed = 7};
  const auto configs = sim::dataset_configs(config);
  ASSERT_EQ(configs.size(), 110u);
  double mean_depth = 0.0;
  for (const auto& c : configs) {
    EXPECT_GE(c.depth, 20);
    EXPECT_LE(c.depth, 88);
    EXPECT_EQ(c.height, 256);
    EXPECT_EQ(c.width, 256);
    mean_depth += static_cast<double>(c.depth);
  }
  mean_depth /= 110.0;
  EXPECT_NEAR(mean_depth, 35.7, 6.0);
}

TEST(Mri, DatasetSeedsAreDistinct) {
  const auto configs = sim::dataset_configs({.volumes = 20, .seed = 3});
  for (std::size_t a = 0; a < configs.size(); ++a)
    for (std::size_t b = a + 1; b < configs.size(); ++b)
      EXPECT_NE(configs[a].seed, configs[b].seed);
}

TEST(Mri, VolumesAreSpatiallySmooth) {
  // In-slice neighbor differences are small relative to the value range —
  // the property that makes MRI a good transform-compression candidate.
  sim::MriVolumeConfig config{.depth = 24, .seed = 11};
  NDArray<double> volume = sim::flair_volume(config);
  double total_diff = 0.0;
  index_t count = 0;
  for (index_t h = 0; h < 256; ++h)
    for (index_t w = 0; w + 1 < 256; ++w) {
      total_diff += std::fabs(volume.at({12, h, w + 1}) - volume.at({12, h, w}));
      ++count;
    }
  EXPECT_LT(total_diff / static_cast<double>(count), 0.03);
}

}  // namespace
