/// The runtime telemetry layer (core/telemetry/): named counters and
/// log-bucketed latency histograms striped over per-thread shards, RAII trace
/// spans with a Chrome trace-event JSON exporter, and the CC_STATS / CC_TRACE
/// sink policy.  Pins the acceptance properties: counts are exact under
/// concurrent writers (sharding is a performance trick, never a correctness
/// one), quantiles are exact for bucket-boundary samples, the flushed trace
/// is structurally well-formed with balanced begin/end pairs, bad env values
/// disable rather than guess (mirroring CC_KERNEL_BACKEND), and the disabled
/// hot path allocates nothing.
///
/// This translation unit replaces the global allocator with a counting
/// forwarder (all variants, including aligned and nothrow) so the
/// zero-allocation claim is tested literally, not by inspection.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/telemetry/trace.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every global new (scalar/array, throwing/nothrow,
// aligned or not) bumps one relaxed counter and forwards to malloc.  Deletes
// forward to free (glibc's posix_memalign blocks are free()-compatible).
// Constant-initialized so allocations during static init are counted safely.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* pointer = nullptr;
  if (posix_memalign(&pointer, align, size ? size : align) != 0) return nullptr;
  return pointer;
}

std::uint64_t allocation_count() {
  return g_allocation_count.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pyblaz {
namespace {

const telemetry::HistogramSnapshot* find_histogram(
    const telemetry::Snapshot& snapshot, const std::string& name) {
  for (const telemetry::HistogramSnapshot& h : snapshot.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

std::uint64_t find_counter(const telemetry::Snapshot& snapshot,
                           const std::string& name) {
  for (const telemetry::CounterSnapshot& c : snapshot.counters)
    if (c.name == name) return c.value;
  return std::uint64_t{0};
}

TEST(Telemetry, CounterSumsExactlyAcrossThreads) {
  telemetry::Counter& counter = telemetry::counter("test.counter.exact");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) counter.increment();
      counter.add(5);
    });
  for (std::thread& thread : threads) thread.join();
  // Sharding must never lose or double-count an add.
  EXPECT_EQ(counter.value(), kThreads * (kAddsPerThread + 5));
  EXPECT_EQ(find_counter(telemetry::snapshot(), "test.counter.exact"),
            counter.value());
}

TEST(Telemetry, RegistryReturnsSameHandleAndRejectsKindMismatch) {
  telemetry::Counter& a = telemetry::counter("test.registry.same");
  telemetry::Counter& b = telemetry::counter("test.registry.same");
  EXPECT_EQ(&a, &b) << "one name, one metric object";
  EXPECT_THROW(telemetry::histogram("test.registry.same"), std::logic_error)
      << "a counter name cannot be re-registered as a histogram";
  telemetry::histogram("test.registry.hist");
  EXPECT_THROW(telemetry::counter("test.registry.hist"), std::logic_error);
}

TEST(Telemetry, BucketIndexAndLowerBoundRoundTrip) {
  using telemetry::Histogram;
  // Every bucket's lower bound maps back to that bucket (the representative
  // value is in its own bucket)...
  for (int index = 0; index < Histogram::kNumBuckets; ++index)
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(index)),
              index)
        << "bucket " << index;
  // ...values 0..7 are exact, and the mapping preserves order with lower
  // bounds never above the value they represent.
  for (std::uint64_t v = 0; v < 8; ++v)
    EXPECT_EQ(Histogram::bucket_lower_bound(Histogram::bucket_index(v)), v);
  std::uint64_t previous_index = 0;
  for (std::uint64_t v : {std::uint64_t{1}, std::uint64_t{8},
                          std::uint64_t{100}, std::uint64_t{1000},
                          std::uint64_t{123456789}, std::uint64_t{1} << 40,
                          ~std::uint64_t{0}}) {
    const int index = Histogram::bucket_index(v);
    EXPECT_GE(static_cast<std::uint64_t>(index), previous_index);
    EXPECT_LE(Histogram::bucket_lower_bound(index), v);
    EXPECT_LT(index, Histogram::kNumBuckets);
    previous_index = static_cast<std::uint64_t>(index);
  }
}

TEST(Telemetry, HistogramQuantilesExactOnBucketBoundaries) {
  // 64, 256, and 4096 are exact bucket lower bounds, so the type-1 quantile
  // must return them exactly: p50 = 64 (rank 50 of 100), p95 = 256 (rank
  // 95), p99 = 4096 (rank 99).
  telemetry::Histogram& h = telemetry::histogram("test.hist.quantiles");
  for (int i = 0; i < 50; ++i) h.record(64);
  for (int i = 0; i < 45; ++i) h.record(256);
  for (int i = 0; i < 5; ++i) h.record(4096);

  const telemetry::Snapshot snap = telemetry::snapshot();
  const telemetry::HistogramSnapshot* hs =
      find_histogram(snap, "test.hist.quantiles");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 100u);
  EXPECT_EQ(hs->sum, 50u * 64 + 45u * 256 + 5u * 4096);
  EXPECT_DOUBLE_EQ(hs->mean(), 352.0);
  EXPECT_EQ(hs->quantile(0.50), 64u);
  EXPECT_EQ(hs->quantile(0.95), 256u);
  EXPECT_EQ(hs->quantile(0.99), 4096u);
  EXPECT_EQ(hs->quantile(0.0), 64u) << "rank clamps to the first sample";
  EXPECT_EQ(hs->quantile(1.0), 4096u);
  EXPECT_EQ(hs->max_bucket_bound(), 4096u);
}

TEST(Telemetry, ShardMergeExactUnderParallelForHammer) {
  // The merge-on-snapshot claim under the real scheduler: every chunk of a
  // parallel_for hammers the same counter and histogram, and the snapshot
  // still accounts for every single record.
  telemetry::Counter& counter = telemetry::counter("test.hammer.counter");
  telemetry::Histogram& h = telemetry::histogram("test.hammer.hist");
  constexpr index_t kIterations = 200000;
  parallel::parallel_for(0, kIterations, /*grain=*/512,
                         [&](index_t begin, index_t end) {
                           for (index_t i = begin; i < end; ++i) {
                             counter.increment();
                             h.record(static_cast<std::uint64_t>(i) & 1023);
                           }
                         });
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kIterations));
  const telemetry::HistogramSnapshot* hs =
      find_histogram(telemetry::snapshot(), "test.hammer.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, static_cast<std::uint64_t>(kIterations));
}

TEST(Telemetry, SnapshotJsonHasSchemaAndQuantileFields) {
  telemetry::counter("test.json.counter").add(7);
  telemetry::histogram("test.json.hist").record(64);
  const std::string json = telemetry::snapshot().to_json();
  EXPECT_NE(json.find("\"schema\": \"pyblaz-telemetry-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 7"), std::string::npos);
  for (const char* field : {"\"p50\":", "\"p95\":", "\"p99\":", "\"count\":",
                            "\"mean\":", "\"unit\": \"ns\""})
    EXPECT_NE(json.find(field), std::string::npos) << field;
}

TEST(Telemetry, SinkEnvPolicyMirrorsKernelBackend) {
  using telemetry::internal::parse_sink_env;
  using telemetry::internal::SinkKind;
  // Unset: disabled and NOT an error.
  const auto unset = parse_sink_env(nullptr);
  EXPECT_EQ(unset.kind, SinkKind::kDisabled);
  EXPECT_FALSE(unset.bad);
  // Set-but-empty: a bad value — warn-and-disable, never guess.
  const auto empty = parse_sink_env("");
  EXPECT_EQ(empty.kind, SinkKind::kDisabled);
  EXPECT_TRUE(empty.bad);
  // "stderr" is the only non-path spelling.
  const auto err = parse_sink_env("stderr");
  EXPECT_EQ(err.kind, SinkKind::kStderr);
  EXPECT_FALSE(err.bad);
  // Anything else is a file path.
  const auto file = parse_sink_env("/tmp/stats.json");
  EXPECT_EQ(file.kind, SinkKind::kFile);
  EXPECT_EQ(file.path, "/tmp/stats.json");
  EXPECT_FALSE(file.bad);
}

TEST(Telemetry, UnopenableSinkWarnsAndReturnsFalse) {
  telemetry::internal::SinkPolicy policy;
  policy.kind = telemetry::internal::SinkKind::kFile;
  policy.path = "/nonexistent-dir-for-test/stats.json";
  EXPECT_FALSE(telemetry::internal::write_to_sink(policy, "{}", "CC_STATS"));
}

TEST(Telemetry, TraceFlushIsBalancedWellFormedJson) {
  const std::string path =
      ::testing::TempDir() + "/pyblaz_trace_test.json";
  telemetry::set_trace_sink(path);
  ASSERT_TRUE(telemetry::trace_enabled());
  {
    telemetry::TraceSpan outer("test.span.outer");
    telemetry::TraceSpan inner("test.span.inner", 42);
  }
  // Spans from pool threads land in per-thread buffers and must all flush.
  parallel::parallel_for(0, 64, /*grain=*/4, [&](index_t begin, index_t end) {
    for (index_t i = begin; i < end; ++i)
      telemetry::TraceSpan span("test.span.chunk");
  });
  const std::size_t written = telemetry::flush_trace();
  EXPECT_GE(written, 2u + 2u * 64u) << "2 nested + 64 chunk spans, B and E";
  telemetry::set_trace_sink("");  // Leave tracing off for later tests.
  EXPECT_FALSE(telemetry::trace_enabled());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char chunk[4096];
  for (std::size_t n; (n = std::fread(chunk, 1, sizeof(chunk), f)) > 0;)
    text.append(chunk, n);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_NE(text.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"test.span.outer\""), std::string::npos);
  EXPECT_NE(text.find("\"test.span.inner\""), std::string::npos);
  EXPECT_NE(text.find("\"args\": {\"v\": 42}"), std::string::npos);
  // Begin/end balance: tools/trace_check.py does full stack matching in CI;
  // here the structural invariant is equal B and E counts.
  std::size_t begins = 0, ends = 0;
  for (std::size_t at = 0;
       (at = text.find("\"ph\": \"B\"", at)) != std::string::npos; ++at)
    ++begins;
  for (std::size_t at = 0;
       (at = text.find("\"ph\": \"E\"", at)) != std::string::npos; ++at)
    ++ends;
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(begins + ends, written);
  // Braces balance (every event object closes; the document closes).
  std::ptrdiff_t depth = 0;
  for (char c : text) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Telemetry, DisabledHotPathAllocatesNothing) {
  // Warm up everything that legitimately allocates once: registration, this
  // thread's shard slot, the trace state.
  telemetry::set_trace_sink("");
  telemetry::Counter& counter = telemetry::counter("test.zeroalloc.counter");
  telemetry::Histogram& h = telemetry::histogram("test.zeroalloc.hist");
  counter.increment();
  h.record(1);
  { telemetry::TraceSpan warm("test.zeroalloc.span"); }

  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 10000; ++i) {
    counter.add(3);
    h.record(static_cast<std::uint64_t>(i));
    telemetry::ScopedLatency latency(h);
    telemetry::TraceSpan span("test.zeroalloc.span", 7);
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "counters, histograms, and disabled spans must not touch the heap";
}

}  // namespace
}  // namespace pyblaz
