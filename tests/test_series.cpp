/// Tests for CompressedSeries: the compressed time-series store behind the
/// paper's "keep the movies compressed, query without decompressing" use case.

#include "core/series/series.hpp"

#include <gtest/gtest.h>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"
#include "sim/fission/fission.hpp"

namespace pyblaz {
namespace {

Compressor series_compressor(Shape block = Shape{8, 8}) {
  return Compressor({.block_shape = std::move(block),
                     .float_type = FloatType::kFloat32,
                     .index_type = IndexType::kInt16});
}

TEST(Series, AppendAndAccess) {
  CompressedSeries series(series_compressor());
  Rng rng(1301);
  NDArray<double> frame = random_smooth(Shape{32, 32}, rng);
  series.append(frame);
  EXPECT_EQ(series.size(), 1u);
  NDArray<double> restored = series.decompress(0);
  EXPECT_LT(reference::mean_absolute_error(frame, restored), 1e-3);
}

TEST(Series, RejectsShapeMismatch) {
  CompressedSeries series(series_compressor());
  Rng rng(1303);
  series.append(random_smooth(Shape{32, 32}, rng));
  EXPECT_THROW(series.append(random_smooth(Shape{16, 16}, rng)),
               std::invalid_argument);
}

TEST(Series, AppendPrecompressedFrame) {
  Compressor compressor = series_compressor();
  CompressedSeries series(compressor);
  Rng rng(1307);
  NDArray<double> frame = random_smooth(Shape{32, 32}, rng);
  series.append(compressor.compress(frame));
  EXPECT_EQ(series.size(), 1u);
}

TEST(Series, RejectsForeignLayoutFrame) {
  CompressedSeries series(series_compressor(Shape{8, 8}));
  Compressor other({.block_shape = Shape{4, 4},
                    .float_type = FloatType::kFloat32,
                    .index_type = IndexType::kInt16});
  Rng rng(1309);
  EXPECT_THROW(series.append(other.compress(random_smooth(Shape{32, 32}, rng))),
               std::invalid_argument);
}

TEST(Series, AdjacentCurvesHaveRightLengths) {
  CompressedSeries series(series_compressor());
  Rng rng(1311);
  for (int k = 0; k < 5; ++k) series.append(random_smooth(Shape{16, 16}, rng));
  EXPECT_EQ(series.adjacent_l2().size(), 4u);
  EXPECT_EQ(series.adjacent_wasserstein(2.0).size(), 4u);
  EXPECT_EQ(series.adjacent_mse().size(), 4u);
  CompressedSeries empty(series_compressor());
  EXPECT_TRUE(empty.adjacent_l2().empty());
}

TEST(Series, AdjacentL2TracksTruth) {
  Compressor compressor = series_compressor();
  CompressedSeries series(compressor);
  Rng rng(1313);
  std::vector<NDArray<double>> frames;
  NDArray<double> base = random_smooth(Shape{32, 32}, rng);
  for (int k = 0; k < 4; ++k) {
    frames.push_back(base);
    series.append(base);
    base = add(base, scale(random_smooth(Shape{32, 32}, rng), 0.1 * (k + 1)));
  }
  const std::vector<double> curve = series.adjacent_l2();
  for (std::size_t k = 0; k + 1 < frames.size(); ++k) {
    const double truth = reference::l2_distance(frames[k], frames[k + 1]);
    EXPECT_NEAR(curve[k], truth, 0.05 * truth + 1e-6) << "pair " << k;
  }
  // Growing perturbations -> increasing curve.
  EXPECT_LT(curve[0], curve[2]);
}

TEST(Series, LargestChangeFindsInjectedJump) {
  CompressedSeries series(series_compressor());
  Rng rng(1317);
  NDArray<double> base = random_smooth(Shape{32, 32}, rng);
  for (int k = 0; k < 6; ++k) {
    NDArray<double> frame = base;
    if (k >= 4) frame = add_scalar(frame, 5.0);  // Jump between frames 3 and 4.
    // Small per-frame drift.
    frame = add(frame, scale(random_smooth(Shape{32, 32}, rng), 0.01));
    series.append(frame);
  }
  EXPECT_EQ(series.largest_change_pair(), 3u);
}

TEST(Series, FissionScissionViaSeries) {
  // The fission experiment expressed through the series API.
  Compressor compressor({.block_shape = Shape{16, 16, 16},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});
  CompressedSeries series(compressor);
  sim::FissionConfig config;
  config.grid = Shape{16, 16, 32};
  for (int step : sim::fission_time_steps())
    series.append(sim::negative_log_density(step, config));

  const std::size_t pair = series.largest_change_pair();
  EXPECT_EQ(sim::fission_time_steps()[pair], 690);
  EXPECT_EQ(sim::fission_time_steps()[pair + 1], 692);
}

TEST(Series, FindPeaksIdentifiesProminentMaxima) {
  const std::vector<double> curve = {1.0, 1.1, 8.0, 1.0, 0.9, 4.0, 1.0};
  const auto peaks = CompressedSeries::find_peaks(curve, 2.0);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].pair_index, 2u);  // Sorted by value: 8.0 first.
  EXPECT_EQ(peaks[1].pair_index, 5u);
  EXPECT_GT(peaks[0].prominence, peaks[1].prominence);
}

TEST(Series, FindPeaksRespectsProminenceThreshold) {
  const std::vector<double> curve = {1.0, 1.2, 1.0, 1.1, 1.0};
  EXPECT_TRUE(CompressedSeries::find_peaks(curve, 2.0).empty());
  EXPECT_FALSE(CompressedSeries::find_peaks(curve, 1.05).empty());
}

TEST(Series, FindPeaksHandlesEndpoints) {
  const std::vector<double> curve = {9.0, 1.0, 1.0, 1.0};
  const auto peaks = CompressedSeries::find_peaks(curve, 2.0);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].pair_index, 0u);
}

TEST(Series, StorageAccounting) {
  CompressedSeries series(series_compressor());
  Rng rng(1319);
  for (int k = 0; k < 3; ++k) series.append(random_smooth(Shape{64, 64}, rng));
  EXPECT_GT(series.compressed_bits(), 0u);
  EXPECT_EQ(series.uncompressed_bits(), 3u * 64u * 64u * 64u);
  // fp32 + int16 at 8x8 blocks: ratio ~3.76, so compressed is much smaller.
  EXPECT_LT(series.compressed_bits(), series.uncompressed_bits() / 3);
}

}  // namespace
}  // namespace pyblaz
