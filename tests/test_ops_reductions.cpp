#include <gtest/gtest.h>

#include <cmath>

#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

/// High-fidelity settings: with int32 bins and float64 the compressed-space
/// scalar functions must match the uncompressed truth almost exactly —
/// Table I says these operations add *no* error beyond compression, so at
/// near-zero compression error the results must coincide.
CompressorSettings fine_settings(Shape block = Shape{8, 8}) {
  return {.block_shape = std::move(block),
          .float_type = FloatType::kFloat64,
          .index_type = IndexType::kInt32};
}

// ----------------------------------------------------------------- dot product

TEST(OpsDot, MatchesUncompressedOnDivisibleShapes) {
  Compressor compressor(fine_settings());
  Rng rng(301);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  const double compressed =
      ops::dot(compressor.compress(x), compressor.compress(y));
  EXPECT_NEAR(compressed, reference::dot(x, y),
              1e-5 * std::fabs(reference::dot(x, y)) + 1e-6);
}

TEST(OpsDot, PaddingDoesNotPollute) {
  // Zero padding contributes zero to dot products: ragged shapes still match.
  Compressor compressor(fine_settings());
  Rng rng(303);
  NDArray<double> x = random_smooth(Shape{30, 29}, rng);
  NDArray<double> y = random_smooth(Shape{30, 29}, rng);
  const double compressed =
      ops::dot(compressor.compress(x), compressor.compress(y));
  EXPECT_NEAR(compressed, reference::dot(x, y),
              1e-5 * std::fabs(reference::dot(x, y)) + 1e-6);
}

TEST(OpsDot, DotWithSelfIsSquaredNorm) {
  Compressor compressor(fine_settings());
  Rng rng(307);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_NEAR(ops::dot(a, a), ops::l2_norm(a) * ops::l2_norm(a), 1e-9);
}

// ------------------------------------------------------------------------ mean

TEST(OpsMean, ExactOnDivisibleShapes) {
  Compressor compressor(fine_settings());
  Rng rng(311);
  NDArray<double> x = random_smooth(Shape{64, 64}, rng);
  CompressedArray a = compressor.compress(x);
  EXPECT_NEAR(ops::mean(a), reference::mean(x), 1e-7);
}

TEST(OpsMean, CoarseBinsStillTrackMean) {
  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt8});
  Rng rng(313);
  NDArray<double> x = add_scalar(random_smooth(Shape{64, 64}, rng), 2.0);
  EXPECT_NEAR(ops::mean(compressor.compress(x)), reference::mean(x),
              0.02 * std::fabs(reference::mean(x)));
}

TEST(OpsMean, PaddingBiasOnRaggedShapes) {
  // The compressed mean averages over padded blocks; for a constant array of
  // ones with a ragged edge the compressed mean is fill_fraction * 1.
  Compressor compressor(fine_settings(Shape{8, 8}));
  NDArray<double> x(Shape{12, 8}, 1.0);  // 2 blocks tall, second half-filled.
  CompressedArray a = compressor.compress(x);
  EXPECT_NEAR(ops::mean(a), 0.75, 1e-6);  // 96 ones / 128 padded slots.
}

// --------------------------------------------------------------------- variance

TEST(OpsVarianceCovariance, MatchUncompressedOnDivisibleShapes) {
  Compressor compressor(fine_settings());
  Rng rng(317);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(x);
  CompressedArray b = compressor.compress(y);
  EXPECT_NEAR(ops::variance(a), reference::variance(x),
              1e-5 * reference::variance(x) + 1e-9);
  EXPECT_NEAR(ops::covariance(a, b), reference::covariance(x, y),
              1e-5 * std::fabs(reference::covariance(x, y)) + 1e-9);
}

TEST(OpsVariance, EqualsCovarianceWithSelf) {
  Compressor compressor(fine_settings());
  Rng rng(319);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_DOUBLE_EQ(ops::variance(a), ops::covariance(a, a));
}

TEST(OpsVariance, NonNegativeAndZeroForConstants) {
  Compressor compressor(fine_settings());
  NDArray<double> constant(Shape{16, 16}, 7.0);
  CompressedArray a = compressor.compress(constant);
  EXPECT_NEAR(ops::variance(a), 0.0, 1e-9);
  EXPECT_GE(ops::variance(a), -1e-15);
}

TEST(OpsVariance, ShiftInvariantUnderScalarAddition) {
  // Var(A + c) = Var(A): scalar addition only moves DC coefficients, and
  // variance centers them away.
  Compressor compressor(fine_settings());
  Rng rng(323);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(x);
  CompressedArray shifted = ops::add_scalar(a, 5.0);
  EXPECT_NEAR(ops::variance(shifted), ops::variance(a),
              1e-4 * ops::variance(a) + 1e-7);
}

TEST(OpsStandardDeviation, IsSqrtOfVariance) {
  Compressor compressor(fine_settings());
  Rng rng(327);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_DOUBLE_EQ(ops::standard_deviation(a), std::sqrt(ops::variance(a)));
}

// ---------------------------------------------------------------------- L2 norm

TEST(OpsL2Norm, MatchesUncompressed) {
  Compressor compressor(fine_settings());
  Rng rng(331);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  EXPECT_NEAR(ops::l2_norm(compressor.compress(x)), reference::l2_norm(x),
              1e-5 * reference::l2_norm(x));
}

TEST(OpsL2Norm, ScalesLinearly) {
  // ‖cA‖ = |c|‖A‖ exactly, because scalar multiplication is exact.
  Compressor compressor(fine_settings());
  Rng rng(333);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_NEAR(ops::l2_norm(ops::multiply_scalar(a, -4.0)), 4.0 * ops::l2_norm(a),
              1e-9 * ops::l2_norm(a));
}

TEST(OpsL2Norm, TriangleInequalityUnderAdd) {
  Compressor compressor(fine_settings());
  Rng rng(337);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray b = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_LE(ops::l2_norm(ops::add(a, b)),
            ops::l2_norm(a) + ops::l2_norm(b) + 1e-6);
}

TEST(OpsL2Norm, DetectsDifferenceMagnitude) {
  // The fission experiment pattern: ‖D1 - D2‖ via compressed subtract.
  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});
  Rng rng(339);
  NDArray<double> d1 = random_smooth(Shape{32, 32}, rng);
  NDArray<double> d2 = add(d1, scale(random_smooth(Shape{32, 32}, rng), 0.1));
  const double compressed = ops::l2_norm(
      ops::subtract(compressor.compress(d1), compressor.compress(d2)));
  const double truth = reference::l2_distance(d1, d2);
  EXPECT_NEAR(compressed, truth, 0.05 * truth + 1e-3);
}

// ------------------------------------------------------------- cosine similarity

TEST(OpsCosine, SelfSimilarityIsOne) {
  Compressor compressor(fine_settings());
  Rng rng(341);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_NEAR(ops::cosine_similarity(a, a), 1.0, 1e-12);
}

TEST(OpsCosine, NegationGivesMinusOne) {
  Compressor compressor(fine_settings());
  Rng rng(343);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_NEAR(ops::cosine_similarity(a, ops::negate(a)), -1.0, 1e-12);
}

TEST(OpsCosine, MatchesUncompressed) {
  Compressor compressor(fine_settings());
  Rng rng(347);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  EXPECT_NEAR(ops::cosine_similarity(compressor.compress(x), compressor.compress(y)),
              reference::cosine_similarity(x, y), 1e-5);
}

TEST(OpsCosine, ScaleInvariant) {
  Compressor compressor(fine_settings());
  Rng rng(349);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray b = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_NEAR(ops::cosine_similarity(ops::multiply_scalar(a, 7.0), b),
              ops::cosine_similarity(a, b), 1e-12);
}

// ---------------------------------------------------------------- blockwise ops

TEST(OpsBlockwise, MeanShapeAndValues) {
  Compressor compressor(fine_settings(Shape{4, 4}));
  NDArray<double> x(Shape{8, 4});
  for (index_t k = 0; k < 32; ++k) x[k] = k < 16 ? 1.0 : 3.0;
  CompressedArray a = compressor.compress(x);
  NDArray<double> means = ops::blockwise_mean(a);
  EXPECT_EQ(means.shape(), Shape({2, 1}));
  EXPECT_NEAR(means[0], 1.0, 1e-9);
  EXPECT_NEAR(means[1], 3.0, 1e-9);
}

TEST(OpsBlockwise, VarianceMatchesPerBlockTruth) {
  Compressor compressor(fine_settings(Shape{4, 4}));
  Rng rng(353);
  NDArray<double> x = random_smooth(Shape{8, 8}, rng);
  CompressedArray a = compressor.compress(x);
  NDArray<double> variances = ops::blockwise_variance(a);
  ASSERT_EQ(variances.shape(), Shape({2, 2}));

  // Compute per-block variance directly.
  for (index_t bi = 0; bi < 2; ++bi)
    for (index_t bj = 0; bj < 2; ++bj) {
      std::vector<double> vals;
      for (index_t i = 0; i < 4; ++i)
        for (index_t j = 0; j < 4; ++j)
          vals.push_back(x[(bi * 4 + i) * 8 + (bj * 4 + j)]);
      double m = 0.0;
      for (double v : vals) m += v;
      m /= 16.0;
      double var = 0.0;
      for (double v : vals) var += (v - m) * (v - m);
      var /= 16.0;
      EXPECT_NEAR(variances[bi * 2 + bj], var, 1e-6);
    }
}

TEST(OpsBlockwise, StdIsSqrtOfVariance) {
  Compressor compressor(fine_settings(Shape{4, 4}));
  Rng rng(359);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  NDArray<double> var = ops::blockwise_variance(a);
  NDArray<double> sd = ops::blockwise_standard_deviation(a);
  for (index_t k = 0; k < var.size(); ++k)
    EXPECT_NEAR(sd[k], std::sqrt(var[k]), 1e-12);
}

// ----------------------------------------- parameterized: op-vs-reference sweep

struct ReductionCase {
  Shape array_shape;
  Shape block_shape;
  IndexType index_type;
  double tolerance;  // Relative.
};

class ReductionsAgree : public ::testing::TestWithParam<ReductionCase> {};

TEST_P(ReductionsAgree, MeanVarianceL2Norm) {
  const auto& p = GetParam();
  Compressor compressor({.block_shape = p.block_shape,
                         .float_type = FloatType::kFloat64,
                         .index_type = p.index_type});
  Rng rng(363);
  NDArray<double> x = random_smooth(p.array_shape, rng);
  CompressedArray a = compressor.compress(x);

  EXPECT_NEAR(ops::mean(a), reference::mean(x),
              p.tolerance * (std::fabs(reference::mean(x)) + 1.0));
  EXPECT_NEAR(ops::variance(a), reference::variance(x),
              p.tolerance * (reference::variance(x) + 1.0));
  EXPECT_NEAR(ops::l2_norm(a), reference::l2_norm(x),
              p.tolerance * reference::l2_norm(x));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionsAgree,
    ::testing::Values(
        ReductionCase{Shape{64, 64}, Shape{8, 8}, IndexType::kInt8, 2e-2},
        ReductionCase{Shape{64, 64}, Shape{8, 8}, IndexType::kInt16, 1e-4},
        ReductionCase{Shape{64, 64}, Shape{16, 16}, IndexType::kInt16, 1e-4},
        ReductionCase{Shape{16, 32, 32}, Shape{4, 4, 4}, IndexType::kInt16, 1e-4},
        ReductionCase{Shape{16, 32, 32}, Shape{4, 16, 16}, IndexType::kInt16, 1e-4},
        ReductionCase{Shape{128}, Shape{16}, IndexType::kInt16, 1e-4}));

}  // namespace
}  // namespace pyblaz
