/// End-to-end integration tests: the paper's three experiments run at reduced
/// scale, checking that the compressed-space pipeline reaches the same
/// conclusions as the uncompressed one.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/codec/compressor.hpp"
#include "core/codec/serialization.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"
#include "sim/fission/fission.hpp"
#include "sim/mri/mri.hpp"
#include "sim/shallow_water/swe.hpp"

namespace {

using namespace pyblaz;  // NOLINT

TEST(Integration, ShallowWaterPrecisionDifferenceSurvivesCompression) {
  // §V-A at reduced scale: run FP16 and FP32 models, difference the surface
  // heights via compressed negation+addition, and check the compressed
  // difference tracks the uncompressed difference.
  sim::SweConfig c32;
  c32.nx = 32;
  c32.ny = 64;
  c32.lx = 3.2e5;
  c32.ly = 6.4e5;
  c32.precision = FloatType::kFloat32;
  sim::SweConfig c16 = c32;
  c16.precision = FloatType::kFloat16;

  sim::ShallowWaterModel m32(c32), m16(c16);
  m32.run(600);
  m16.run(600);

  const NDArray<double>& h32 = m32.surface_height();
  const NDArray<double>& h16 = m16.surface_height();
  NDArray<double> truth = subtract(h16, h32);

  // Paper settings use block 16x16 and fp32; the paper's 500-day run grows a
  // precision difference large enough for int8 bins, while this reduced-scale
  // run's smaller difference needs int16 bins to sit above binning noise.
  Compressor compressor({.block_shape = Shape{16, 16},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});
  CompressedArray diff =
      ops::subtract(compressor.compress(h16), compressor.compress(h32));
  NDArray<double> recovered = compressor.decompress(diff);

  // The compressed difference must correlate strongly with the truth.
  const double cos = reference::cosine_similarity(truth, recovered);
  EXPECT_GT(cos, 0.8);
}

TEST(Integration, FissionScissionDetectedInCompressedSpace) {
  // §V-C at reduced scale: compress each step (block 16^3, int16, fp32) and
  // find the largest adjacent-step compressed L2 difference.
  sim::FissionConfig config;
  config.grid = Shape{16, 16, 32};  // Reduced grid for test speed.

  Compressor compressor({.block_shape = Shape{16, 16, 16},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});

  const auto& steps = sim::fission_time_steps();
  std::vector<CompressedArray> compressed;
  compressed.reserve(steps.size());
  for (int step : steps)
    compressed.push_back(
        compressor.compress(sim::negative_log_density(step, config)));

  double best = -1.0;
  std::pair<int, int> best_pair{0, 0};
  for (std::size_t k = 1; k < steps.size(); ++k) {
    const double distance =
        ops::l2_norm(ops::subtract(compressed[k], compressed[k - 1]));
    if (distance > best) {
      best = distance;
      best_pair = {steps[k - 1], steps[k]};
    }
  }
  EXPECT_EQ(best_pair, (std::pair<int, int>{690, 692}));
}

TEST(Integration, WassersteinSuppressesNoisePeaksThatMisleadL2) {
  // §V-C, Fig. 6: the noise event between 685 and 686 produces a *misleading
  // peak* in the adjacent-step L2 distance, but barely registers in the
  // Wasserstein distance (the values are rearranged, not redistributed);
  // meanwhile the scission transition 690 -> 692 is the Wasserstein peak at
  // every order and dominates decisively at p = 68.
  sim::FissionConfig config;
  config.grid = Shape{16, 16, 32};
  Compressor compressor({.block_shape = Shape{4, 4, 4},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});

  const auto& steps = sim::fission_time_steps();
  std::vector<CompressedArray> compressed;
  std::vector<NDArray<double>> raw;
  for (int step : steps) {
    raw.push_back(sim::negative_log_density(step, config));
    compressed.push_back(compressor.compress(raw.back()));
  }

  auto pair_index = [&](int from) {
    for (std::size_t k = 1; k < steps.size(); ++k)
      if (steps[k - 1] == from) return k;
    ADD_FAILURE() << "missing step " << from;
    return std::size_t{1};
  };
  const std::size_t noise_pair = pair_index(685);    // 685 -> 686.
  const std::size_t quiet_pair = pair_index(687);    // 687 -> 688.
  const std::size_t scission_pair = pair_index(690); // 690 -> 692.

  // The L2 distance is misled: the noise pair peaks above its quiet neighbor.
  const double l2_noise = reference::l2_distance(raw[noise_pair - 1], raw[noise_pair]);
  const double l2_quiet = reference::l2_distance(raw[quiet_pair - 1], raw[quiet_pair]);
  EXPECT_GT(l2_noise, 2.0 * l2_quiet);

  for (double p : {2.0, 68.0}) {
    std::vector<double> w(steps.size(), 0.0);
    for (std::size_t k = 1; k < steps.size(); ++k)
      w[k] = ops::wasserstein_distance(compressed[k], compressed[k - 1], p);

    // Scission is the Wasserstein peak...
    for (std::size_t k = 1; k < steps.size(); ++k) {
      if (k == scission_pair) continue;
      EXPECT_LT(w[k], w[scission_pair]) << "order " << p << " pair " << k;
    }
    // ...and the noise event is far below it (no misleading W peak).
    EXPECT_LT(w[noise_pair], 0.3 * w[scission_pair]) << "order " << p;
  }

  // At p = 68 the scission dominates every other transition by > 2x.
  double biggest_other = 0.0;
  double scission = 0.0;
  for (std::size_t k = 1; k < steps.size(); ++k) {
    const double w =
        ops::wasserstein_distance(compressed[k], compressed[k - 1], 68.0);
    if (k == scission_pair)
      scission = w;
    else
      biggest_other = std::max(biggest_other, w);
  }
  EXPECT_GT(scission, 2.0 * biggest_other);
}

TEST(Integration, MriScalarFunctionsAccurateOnSyntheticVolume) {
  // §V-B at reduced scale: mean/variance/L2 from compressed volumes track the
  // uncompressed truth.
  sim::MriVolumeConfig vconfig{.depth = 24, .seed = 21};
  NDArray<double> volume = sim::flair_volume(vconfig);

  Compressor compressor({.block_shape = Shape{4, 16, 16},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});
  CompressedArray a = compressor.compress(volume);

  EXPECT_NEAR(ops::mean(a), reference::mean(volume), 5e-3);
  EXPECT_NEAR(ops::variance(a), reference::variance(volume), 5e-3);
  EXPECT_NEAR(ops::l2_norm(a), reference::l2_norm(volume),
              0.01 * reference::l2_norm(volume));
}

TEST(Integration, MriSsimBetweenVolumesMatchesReference) {
  sim::MriVolumeConfig va{.depth = 24, .seed = 31};
  sim::MriVolumeConfig vb{.depth = 24, .seed = 32};
  NDArray<double> x = sim::flair_volume(va);
  NDArray<double> y = sim::flair_volume(vb);

  Compressor compressor({.block_shape = Shape{4, 16, 16},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});
  const double compressed =
      ops::structural_similarity(compressor.compress(x), compressor.compress(y));
  const double truth = reference::structural_similarity(x, y);
  EXPECT_NEAR(compressed, truth, 0.02);
}

TEST(Integration, SerializeThenOperateOnDeserializedArrays) {
  // A full storage round trip composed with compressed-space ops: compress,
  // serialize (checkpoint), deserialize, and operate — the checkpoint/reuse
  // use case from §I.
  Rng rng(901);
  NDArray<double> x = random_smooth(Shape{40, 40}, rng);
  NDArray<double> y = random_smooth(Shape{40, 40}, rng);

  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});
  CompressedArray a = deserialize(serialize(compressor.compress(x)));
  CompressedArray b = deserialize(serialize(compressor.compress(y)));

  EXPECT_NEAR(ops::dot(a, b), reference::dot(x, y),
              1e-3 * std::fabs(reference::dot(x, y)) + 1e-3);
  NDArray<double> sum = compressor.decompress(ops::add(a, b));
  EXPECT_LT(reference::mean_absolute_error(sum, add(x, y)), 0.02);
}

TEST(Integration, MixedPipelineScalarOps) {
  // Chain several compressed-space ops and compare against the equivalent
  // uncompressed pipeline: 2*(A - B) + 1.
  Rng rng(907);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);

  Compressor compressor({.block_shape = Shape{8, 8},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt16});
  CompressedArray result = ops::add_scalar(
      ops::multiply_scalar(
          ops::subtract(compressor.compress(x), compressor.compress(y)), 2.0),
      1.0);
  NDArray<double> compressed_result = compressor.decompress(result);
  NDArray<double> truth = add_scalar(scale(subtract(x, y), 2.0), 1.0);
  EXPECT_LT(reference::mean_absolute_error(truth, compressed_result), 5e-3);
}

}  // namespace
