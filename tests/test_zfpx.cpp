#include "zfpx/zfpx.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace {

using pyblaz::index_t;
using pyblaz::NDArray;
using pyblaz::Rng;
using pyblaz::Shape;

TEST(ZfpxPermutation, IsAPermutation) {
  for (int dims = 1; dims <= 3; ++dims) {
    const auto& perm = zfpx::sequency_permutation(dims);
    const int n = zfpx::block_values(dims);
    ASSERT_EQ(static_cast<int>(perm.size()), n);
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (int p : perm) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, n);
      EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
      seen[static_cast<std::size_t>(p)] = true;
    }
    EXPECT_EQ(perm[0], 0);  // DC coefficient first.
  }
}

TEST(ZfpxPermutation, NonDecreasingSequency2D) {
  const auto& perm = zfpx::sequency_permutation(2);
  int previous = -1;
  for (int p : perm) {
    const int seq = p / 4 + p % 4;
    EXPECT_GE(seq, previous);
    previous = seq;
  }
}

struct ZfpxCase {
  Shape shape;
  double rate;
};

class ZfpxRoundTrip : public ::testing::TestWithParam<ZfpxCase> {};

TEST_P(ZfpxRoundTrip, StreamSizeIsExactlyFixedRate) {
  const auto& p = GetParam();
  zfpx::Codec codec(p.shape.ndim(), p.rate);
  Rng rng(801);
  NDArray<double> array = pyblaz::random_smooth(p.shape, rng);
  const auto stream = codec.compress(array);
  EXPECT_EQ(stream.size(), codec.compressed_bytes(p.shape));
}

TEST_P(ZfpxRoundTrip, ReconstructionErrorIsSmallOnSmoothData) {
  const auto& p = GetParam();
  zfpx::Codec codec(p.shape.ndim(), p.rate);
  Rng rng(803);
  NDArray<double> array = pyblaz::random_smooth(p.shape, rng);
  NDArray<double> restored = codec.decompress(codec.compress(array), p.shape);
  const double scale = pyblaz::max_abs(array) + 1e-30;
  // Rate >= 8 bits/value on smooth data: comfortably under 5% L_inf.
  EXPECT_LT(pyblaz::reference::linf_distance(array, restored), 0.05 * scale)
      << "shape " << p.shape.to_string() << " rate " << p.rate;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndRates, ZfpxRoundTrip,
    ::testing::Values(ZfpxCase{Shape{64}, 16.0}, ZfpxCase{Shape{61}, 16.0},
                      ZfpxCase{Shape{32, 32}, 8.0}, ZfpxCase{Shape{32, 32}, 16.0},
                      ZfpxCase{Shape{32, 32}, 32.0}, ZfpxCase{Shape{30, 31}, 16.0},
                      ZfpxCase{Shape{16, 16, 16}, 8.0},
                      ZfpxCase{Shape{16, 16, 16}, 16.0},
                      ZfpxCase{Shape{10, 11, 12}, 16.0}));

TEST(Zfpx, ErrorDecreasesWithRate) {
  Rng rng(807);
  NDArray<double> array = pyblaz::random_smooth(Shape{64, 64}, rng);
  double previous = 1e300;
  for (double rate : {4.0, 8.0, 16.0, 32.0}) {
    zfpx::Codec codec(2, rate);
    NDArray<double> restored = codec.decompress(codec.compress(array), array.shape());
    const double err = pyblaz::reference::l2_distance(array, restored);
    EXPECT_LT(err, previous) << "rate " << rate;
    previous = err;
  }
}

TEST(Zfpx, HighRateIsNearLossless) {
  Rng rng(809);
  NDArray<double> array = pyblaz::random_smooth(Shape{32, 32}, rng);
  zfpx::Codec codec(2, 48.0);
  NDArray<double> restored = codec.decompress(codec.compress(array), array.shape());
  EXPECT_LT(pyblaz::reference::linf_distance(array, restored),
            1e-8 * pyblaz::max_abs(array));
}

TEST(Zfpx, ZeroBlocksStayZero) {
  NDArray<double> array(Shape{16, 16}, 0.0);
  zfpx::Codec codec(2, 8.0);
  NDArray<double> restored = codec.decompress(codec.compress(array), array.shape());
  for (index_t k = 0; k < array.size(); ++k) EXPECT_EQ(restored[k], 0.0);
}

TEST(Zfpx, ConstantBlocksReconstructAccurately) {
  NDArray<double> array(Shape{16, 16}, 3.14159);
  zfpx::Codec codec(2, 16.0);
  NDArray<double> restored = codec.decompress(codec.compress(array), array.shape());
  for (index_t k = 0; k < array.size(); ++k)
    EXPECT_NEAR(restored[k], 3.14159, 1e-3);
}

TEST(Zfpx, HandlesLargeDynamicRange) {
  // Block floating point: blocks with very different magnitudes each get
  // their own exponent.
  NDArray<double> array(Shape{8, 8});
  for (index_t k = 0; k < 32; ++k) array[k] = 1e-8 * static_cast<double>(k % 7);
  for (index_t k = 32; k < 64; ++k) array[k] = 1e8 * static_cast<double>(k % 5);
  zfpx::Codec codec(2, 32.0);
  NDArray<double> restored = codec.decompress(codec.compress(array), array.shape());
  for (index_t k = 0; k < 64; ++k) {
    const double scale = std::max(1e-8, std::fabs(array[k]));
    EXPECT_LT(std::fabs(restored[k] - array[k]), 0.03 * scale + 1e-12)
        << "element " << k;
  }
}

TEST(Zfpx, GradientArrayMatchesPaperWorkload) {
  // The §IV-E benchmark array must survive the codec with small error.
  NDArray<double> array = pyblaz::gradient_array(Shape{32, 32});
  zfpx::Codec codec(2, 16.0);
  NDArray<double> restored = codec.decompress(codec.compress(array), array.shape());
  EXPECT_LT(pyblaz::reference::linf_distance(array, restored), 0.01);
}

TEST(Zfpx, EffectiveRateAccountsForAlignment) {
  zfpx::Codec codec(2, 8.0);
  EXPECT_EQ(codec.block_bits(), 128);  // 8 * 16, already byte aligned.
  EXPECT_DOUBLE_EQ(codec.effective_rate(), 8.0);

  zfpx::Codec odd(1, 9.0);  // 9 * 4 = 36 bits -> padded to 40.
  EXPECT_EQ(odd.block_bits(), 40);
  EXPECT_DOUBLE_EQ(odd.effective_rate(), 10.0);
}

TEST(Zfpx, RejectsBadConfiguration) {
  EXPECT_THROW(zfpx::Codec(0, 8.0), std::invalid_argument);
  EXPECT_THROW(zfpx::Codec(4, 8.0), std::invalid_argument);
  EXPECT_THROW(zfpx::Codec(2, -1.0), std::invalid_argument);
}

TEST(Zfpx, RejectsDimensionalityMismatch) {
  zfpx::Codec codec(2, 8.0);
  NDArray<double> cube(Shape{8, 8, 8}, 1.0);
  EXPECT_THROW(codec.compress(cube), std::invalid_argument);
}

TEST(Zfpx, RejectsTruncatedStream) {
  zfpx::Codec codec(2, 8.0);
  Rng rng(811);
  NDArray<double> array = pyblaz::random_smooth(Shape{16, 16}, rng);
  auto stream = codec.compress(array);
  stream.resize(stream.size() - 1);
  EXPECT_THROW(codec.decompress(stream, array.shape()), std::invalid_argument);
}

}  // namespace
