#include "core/codec/pruning.hpp"

#include <gtest/gtest.h>

namespace pyblaz {
namespace {

TEST(PruningMask, KeepAll) {
  PruningMask mask = PruningMask::keep_all(Shape{4, 4});
  EXPECT_TRUE(mask.valid());
  EXPECT_EQ(mask.kept_count(), 16);
  EXPECT_TRUE(mask.keeps_dc());
  for (index_t j = 0; j < 16; ++j) EXPECT_TRUE(mask.keeps(j));
}

TEST(PruningMask, DefaultConstructedIsInvalid) {
  PruningMask mask;
  EXPECT_FALSE(mask.valid());
}

TEST(PruningMask, KeepFractionHalf) {
  // The §IV-C example: int8 + "pruning half the indices".
  PruningMask mask = PruningMask::keep_fraction(Shape{4, 4, 4}, 0.5);
  EXPECT_EQ(mask.kept_count(), 32);
  EXPECT_TRUE(mask.keeps_dc());
}

TEST(PruningMask, KeepFractionPrefersLowSequency) {
  PruningMask mask = PruningMask::keep_fraction(Shape{4, 4}, 0.25);
  EXPECT_EQ(mask.kept_count(), 4);
  // The 4 lowest-sequency offsets in a 4x4 block: (0,0) [seq 0], then
  // (0,1), (1,0) [seq 1], then one of seq 2 — stable order picks (0,2).
  EXPECT_TRUE(mask.keeps(0));
  EXPECT_TRUE(mask.keeps(1));
  EXPECT_TRUE(mask.keeps(4));
  EXPECT_TRUE(mask.keeps(2));
  EXPECT_FALSE(mask.keeps(15));  // Highest frequency dropped.
}

TEST(PruningMask, KeepFractionAlwaysKeepsAtLeastOne) {
  PruningMask mask = PruningMask::keep_fraction(Shape{8, 8}, 0.001);
  EXPECT_EQ(mask.kept_count(), 1);
  EXPECT_TRUE(mask.keeps_dc());
}

TEST(PruningMask, KeptOffsetsAreSortedAscending) {
  PruningMask mask = PruningMask::keep_fraction(Shape{4, 4}, 0.6);
  const auto& offsets = mask.kept_offsets();
  for (std::size_t k = 1; k < offsets.size(); ++k)
    EXPECT_LT(offsets[k - 1], offsets[k]);
}

TEST(PruningMask, FromFlags) {
  std::vector<std::uint8_t> flags = {1, 0, 0, 1};
  PruningMask mask = PruningMask::from_flags(Shape{2, 2}, flags);
  EXPECT_EQ(mask.kept_count(), 2);
  EXPECT_TRUE(mask.keeps(0));
  EXPECT_FALSE(mask.keeps(1));
  EXPECT_FALSE(mask.keeps(2));
  EXPECT_TRUE(mask.keeps(3));
}

TEST(PruningMask, FromFlagsNormalizesNonzero) {
  std::vector<std::uint8_t> flags = {7, 0, 255, 0};
  PruningMask mask = PruningMask::from_flags(Shape{4}, flags);
  EXPECT_EQ(mask.flags()[0], 1);
  EXPECT_EQ(mask.flags()[2], 1);
}

TEST(PruningMask, DcDroppable) {
  std::vector<std::uint8_t> flags = {0, 1, 1, 1};
  PruningMask mask = PruningMask::from_flags(Shape{4}, flags);
  EXPECT_FALSE(mask.keeps_dc());
  EXPECT_EQ(mask.kept_count(), 3);
}

TEST(PruningMask, Equality) {
  EXPECT_EQ(PruningMask::keep_all(Shape{2, 2}), PruningMask::keep_all(Shape{2, 2}));
  EXPECT_FALSE(PruningMask::keep_all(Shape{2, 2}) ==
               PruningMask::keep_fraction(Shape{2, 2}, 0.5));
}

}  // namespace
}  // namespace pyblaz
