#include "core/ndarray/ndarray.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

TEST(NDArray, ConstructionAndFill) {
  NDArray<double> a(Shape{2, 3}, 1.5);
  EXPECT_EQ(a.size(), 6);
  for (index_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], 1.5);
}

TEST(NDArray, MultiIndexAccess) {
  NDArray<double> a(Shape{2, 3});
  a.at({1, 2}) = 42.0;
  EXPECT_EQ(a[5], 42.0);
  EXPECT_EQ(a.at({1, 2}), 42.0);
}

TEST(NDArray, WrapExistingBuffer) {
  NDArray<double> a(Shape{2, 2}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(a.at({0, 1}), 2.0);
  EXPECT_EQ(a.at({1, 0}), 3.0);
}

TEST(NDArray, MapInplace) {
  NDArray<double> a(Shape{4}, {1.0, 2.0, 3.0, 4.0});
  a.map_inplace([](double v) { return v * v; });
  EXPECT_EQ(a[3], 16.0);
}

TEST(NDArrayOps, ElementwiseArithmetic) {
  NDArray<double> x(Shape{3}, {1.0, 2.0, 3.0});
  NDArray<double> y(Shape{3}, {10.0, 20.0, 30.0});
  EXPECT_EQ(add(x, y)[1], 22.0);
  EXPECT_EQ(subtract(y, x)[2], 27.0);
  EXPECT_EQ(multiply(x, y)[0], 10.0);
  EXPECT_EQ(scale(x, -2.0)[2], -6.0);
  EXPECT_EQ(add_scalar(x, 0.5)[0], 1.5);
}

TEST(NDArrayOps, Reductions) {
  NDArray<double> x(Shape{4}, {1.0, -5.0, 3.0, 0.5});
  EXPECT_EQ(sum(x), -0.5);
  EXPECT_EQ(max_abs(x), 5.0);
  EXPECT_EQ(max(x), 3.0);
  EXPECT_EQ(min(x), -5.0);
}

TEST(NDArrayOps, QuantizedRoundsEveryElement) {
  NDArray<double> x(Shape{2}, {1.0 / 3.0, 2.0 / 3.0});
  NDArray<double> q = quantized(x, FloatType::kFloat32);
  EXPECT_EQ(q[0], static_cast<double>(static_cast<float>(1.0 / 3.0)));
  EXPECT_EQ(q[1], static_cast<double>(static_cast<float>(2.0 / 3.0)));
}

TEST(NDArrayOps, GradientArrayMatchesPaperDefinition) {
  // X_x = Σ(x) / Σ(s - 1): 0 at the origin corner, 1 at the far corner,
  // constant gradient along the diagonal (§IV-E).
  const Shape s{4, 8};
  NDArray<double> g = gradient_array(s);
  EXPECT_EQ(g.at({0, 0}), 0.0);
  EXPECT_EQ(g.at({3, 7}), 1.0);
  EXPECT_DOUBLE_EQ(g.at({1, 2}), 3.0 / 10.0);
  // Monotone along each axis.
  EXPECT_LT(g.at({0, 3}), g.at({1, 3}));
  EXPECT_LT(g.at({2, 3}), g.at({2, 4}));
}

TEST(NDArrayOps, GradientArrayHandlesSingletonShape) {
  NDArray<double> g = gradient_array(Shape{1, 1});
  EXPECT_EQ(g[0], 0.0);
}

TEST(NDArrayOps, RandomUniformInRange) {
  Rng rng(99);
  NDArray<double> r = random_uniform(Shape{100}, rng, -2.0, 3.0);
  for (index_t k = 0; k < r.size(); ++k) {
    EXPECT_GE(r[k], -2.0);
    EXPECT_LT(r[k], 3.0);
  }
}

TEST(NDArrayOps, RandomIsDeterministicGivenSeed) {
  Rng rng1(7), rng2(7);
  NDArray<double> a = random_normal(Shape{50}, rng1);
  NDArray<double> b = random_normal(Shape{50}, rng2);
  EXPECT_EQ(a, b);
}

TEST(NDArrayOps, RandomSmoothIsSpatiallyCorrelated) {
  // Neighboring samples of a band-limited field differ much less than the
  // field's overall range.
  Rng rng(3);
  NDArray<double> f = random_smooth(Shape{64, 64}, rng);
  double max_neighbor_diff = 0.0;
  for (index_t i = 0; i < 64; ++i)
    for (index_t j = 0; j + 1 < 64; ++j)
      max_neighbor_diff = std::max(
          max_neighbor_diff, std::fabs(f[i * 64 + j + 1] - f[i * 64 + j]));
  const double range = max(f) - min(f);
  EXPECT_GT(range, 0.0);
  EXPECT_LT(max_neighbor_diff, 0.35 * range);
}

}  // namespace
}  // namespace pyblaz
