/// CRC-32 (IEEE, reflected 0xEDB88320) used by the v3 checksummed archive
/// container.  Pins the standard check value, the seed-composability used to
/// checksum streams in pieces, and bit-identity between the slicing-by-8
/// fast path and a straight bit-serial reference across sizes that exercise
/// every head/tail combination around the 8-byte fold.

#include "core/util/checksum.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace pyblaz {
namespace {

/// The textbook one-bit-at-a-time CRC-32 — the definition the fast path
/// must reproduce exactly.
std::uint32_t crc32_reference(const std::vector<std::uint8_t>& data,
                              std::uint32_t seed = 0) {
  std::uint32_t crc = ~seed;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
  }
  return ~crc;
}

std::vector<std::uint8_t> bytes_of(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

TEST(Checksum, StandardCheckValue) {
  // The universal CRC-32/IEEE test vector.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
}

TEST(Checksum, MatchesBitSerialReferenceAtEverySmallSize) {
  std::mt19937_64 rng(99);
  for (std::size_t size = 0; size <= 70; ++size) {
    std::vector<std::uint8_t> data(size);
    for (auto& byte : data) byte = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(crc32(data), crc32_reference(data)) << "size " << size;
  }
}

TEST(Checksum, SeedComposesAcrossSplits) {
  std::mt19937_64 rng(100);
  std::vector<std::uint8_t> data(257);
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng());
  const std::uint32_t whole = crc32(data);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                            std::size_t{100}, std::size_t{256}}) {
    const std::uint32_t head = crc32(data.data(), split);
    EXPECT_EQ(crc32(data.data() + split, data.size() - split, head), whole)
        << "split " << split;
  }
}

TEST(Checksum, DetectsEverySingleBitFlip) {
  // The property the v3 container leans on: CRC-32 detects all single-bit
  // errors, so a one-bit payload flip can never produce a colliding CRC.
  std::mt19937_64 rng(101);
  std::vector<std::uint8_t> data(96);
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng());
  const std::uint32_t clean = crc32(data);
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
    EXPECT_NE(crc32(data), clean) << "bit " << bit << " collided";
    data[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
  }
}

}  // namespace
}  // namespace pyblaz
