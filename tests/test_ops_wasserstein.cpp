#include <gtest/gtest.h>

#include <cmath>

#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

CompressorSettings settings_with_block(Shape block) {
  return {.block_shape = std::move(block),
          .float_type = FloatType::kFloat64,
          .index_type = IndexType::kInt32};
}

TEST(OpsWasserstein, ZeroForIdenticalArrays) {
  Compressor compressor(settings_with_block(Shape{4, 4}));
  Rng rng(501);
  NDArray<double> x = random_smooth(Shape{16, 16}, rng);
  CompressedArray a = compressor.compress(x);
  EXPECT_NEAR(ops::wasserstein_distance(a, a, 2.0), 0.0, 1e-12);
}

TEST(OpsWasserstein, SymmetricInArguments) {
  Compressor compressor(settings_with_block(Shape{4, 4}));
  Rng rng(503);
  CompressedArray a = compressor.compress(random_smooth(Shape{16, 16}, rng));
  CompressedArray b = compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_NEAR(ops::wasserstein_distance(a, b, 3.0),
              ops::wasserstein_distance(b, a, 3.0), 1e-12);
}

TEST(OpsWasserstein, OneElementBlocksMatchExactDistance) {
  // §IV-B: one-element blocks make the approximation exact (while discarding
  // all compression benefit).
  Compressor compressor(settings_with_block(Shape{1, 1}));
  Rng rng(507);
  NDArray<double> x = random_smooth(Shape{8, 8}, rng);
  NDArray<double> y = random_smooth(Shape{8, 8}, rng);
  const double approx = ops::wasserstein_distance(compressor.compress(x),
                                                  compressor.compress(y), 2.0);
  const double exact = reference::wasserstein_distance(x, y, 2.0);
  EXPECT_NEAR(approx, exact, 1e-6 * (exact + 1.0));
}

TEST(OpsWasserstein, ApproximationImprovesWithSmallerBlocks) {
  Rng rng(509);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  const double exact = reference::wasserstein_distance(x, y, 2.0);

  double err_small, err_large;
  {
    Compressor compressor(settings_with_block(Shape{2, 2}));
    err_small = std::fabs(ops::wasserstein_distance(compressor.compress(x),
                                                    compressor.compress(y), 2.0) -
                          exact);
  }
  {
    Compressor compressor(settings_with_block(Shape{16, 16}));
    err_large = std::fabs(ops::wasserstein_distance(compressor.compress(x),
                                                    compressor.compress(y), 2.0) -
                          exact);
  }
  // Error is a function of block size (Table I): coarser blocks, worse
  // approximation.
  EXPECT_LT(err_small, err_large);
}

TEST(OpsWasserstein, StableModeSurvivesLargeOrders) {
  Compressor compressor(settings_with_block(Shape{4, 4}));
  Rng rng(511);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(x);
  CompressedArray b = compressor.compress(y);

  const double w68 = ops::wasserstein_distance(a, b, 68.0, /*stable=*/true);
  EXPECT_TRUE(std::isfinite(w68));
  EXPECT_GT(w68, 0.0);
}

TEST(OpsWasserstein, NaiveModeUnderflowsAtHighOrder) {
  // The paper's "all peaks vanish when p >= 80": softmax differences are tiny,
  // so |d|^80 underflows double and the naive sum collapses to zero.
  Compressor compressor(settings_with_block(Shape{4, 4}));
  Rng rng(513);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(x);
  CompressedArray b = compressor.compress(y);

  const double naive = ops::wasserstein_distance(a, b, 300.0, /*stable=*/false);
  const double stable = ops::wasserstein_distance(a, b, 300.0, /*stable=*/true);
  EXPECT_EQ(naive, 0.0);
  EXPECT_GT(stable, 0.0);
}

TEST(OpsWasserstein, ApproachesMaxDifferenceAsOrderGrows) {
  // (mean |d|^p)^(1/p) -> max |d| as p -> inf: high orders emphasize the
  // biggest transport, which is how Fig. 6b isolates the scission peak.
  Compressor compressor(settings_with_block(Shape{4, 4}));
  Rng rng(517);
  NDArray<double> x = random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = random_smooth(Shape{32, 32}, rng);
  CompressedArray a = compressor.compress(x);
  CompressedArray b = compressor.compress(y);

  const double w2 = ops::wasserstein_distance(a, b, 2.0);
  const double w16 = ops::wasserstein_distance(a, b, 16.0);
  const double w128 = ops::wasserstein_distance(a, b, 128.0);
  // Power means of values < 1 with growing p... not monotone in general for
  // the normalized mean, but the limit holds; check convergence by spacing.
  EXPECT_GT(w128, 0.0);
  EXPECT_LT(std::fabs(w128 - w16), std::fabs(w16 - w2) + 1e-9);
}

TEST(OpsWasserstein, ProbabilityInputsSkipSoftmax) {
  // Arrays already summing to 1 are used as-is (Algorithm 13's guard).
  // Block means of a uniform distribution: each block mean = 1/prod(s) and
  // softmax would distort this; the distance between two identical uniform
  // distributions must be zero either way.
  Compressor compressor(settings_with_block(Shape{2, 2}));
  NDArray<double> uniform(Shape{8, 8}, 1.0 / 64.0);
  CompressedArray a = compressor.compress(uniform);
  EXPECT_NEAR(ops::wasserstein_distance(a, a, 1.0), 0.0, 1e-12);
}

TEST(OpsWasserstein, DetectsDistributionShift) {
  // Mass moving far should register a larger distance than mass moving near.
  Compressor compressor(settings_with_block(Shape{2, 2}));
  NDArray<double> base(Shape{16, 16}, 0.0);
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) base[i * 16 + j] = 1.0;

  NDArray<double> near_shift = base;
  // Double the peak (a mild reshaping of the distribution).
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) near_shift[i * 16 + j] = 2.0;

  NDArray<double> far_shift(Shape{16, 16}, 0.0);
  // Split the mass into two distant peaks (a topology change).
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) {
      far_shift[i * 16 + j] = 3.0;
      far_shift[(i + 12) * 16 + (j + 12)] = 3.0;
    }

  CompressedArray a = compressor.compress(base);
  const double d_near =
      ops::wasserstein_distance(a, compressor.compress(near_shift), 2.0);
  const double d_far =
      ops::wasserstein_distance(a, compressor.compress(far_shift), 2.0);
  EXPECT_GT(d_far, d_near);
}

TEST(OpsWasserstein, ThrowsOnLayoutMismatch) {
  Compressor c2(settings_with_block(Shape{2, 2}));
  Compressor c4(settings_with_block(Shape{4, 4}));
  Rng rng(519);
  NDArray<double> x = random_smooth(Shape{16, 16}, rng);
  EXPECT_THROW(ops::wasserstein_distance(c2.compress(x), c4.compress(x), 2.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pyblaz
