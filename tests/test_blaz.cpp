#include "blaz/blaz.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace {

using blaz::CompressedMatrix;
using pyblaz::index_t;
using pyblaz::NDArray;
using pyblaz::Rng;
using pyblaz::Shape;

TEST(Blaz, RoundTripSmoothDataSmallError) {
  Rng rng(701);
  NDArray<double> matrix = pyblaz::random_smooth(Shape{64, 64}, rng);
  CompressedMatrix compressed = blaz::compress(matrix);
  NDArray<double> restored = blaz::decompress(compressed);
  ASSERT_EQ(restored.shape(), matrix.shape());
  const double scale = pyblaz::max_abs(matrix);
  EXPECT_LT(pyblaz::reference::linf_distance(matrix, restored), 0.25 * scale);
  EXPECT_LT(pyblaz::reference::mean_absolute_error(matrix, restored), 0.05 * scale);
}

TEST(Blaz, BlockAccountingAndSizes) {
  Rng rng(703);
  NDArray<double> matrix = pyblaz::random_smooth(Shape{20, 33}, rng);
  CompressedMatrix compressed = blaz::compress(matrix);
  EXPECT_EQ(compressed.block_rows, 3);  // ceil(20/8)
  EXPECT_EQ(compressed.block_cols, 5);  // ceil(33/8)
  EXPECT_EQ(compressed.num_blocks(), 15);
  EXPECT_EQ(compressed.first.size(), 15u);
  EXPECT_EQ(compressed.biggest.size(), 15u);
  EXPECT_EQ(compressed.bins.size(), 15u * 28u);
}

TEST(Blaz, CompressedBitsFormula) {
  Rng rng(707);
  NDArray<double> matrix = pyblaz::random_smooth(Shape{16, 16}, rng);
  CompressedMatrix compressed = blaz::compress(matrix);
  // 4 blocks: 2*64 shape + 4*(64+64) + 4*28*8.
  EXPECT_EQ(compressed.compressed_bits(), 128u + 4u * 128u + 4u * 224u);
}

TEST(Blaz, ConstantMatrixIsExact) {
  NDArray<double> matrix(Shape{16, 16}, 5.5);
  NDArray<double> restored = blaz::decompress(blaz::compress(matrix));
  for (index_t k = 0; k < matrix.size(); ++k)
    EXPECT_NEAR(restored[k], 5.5, 1e-10);
}

TEST(Blaz, SmoothDataCompressesBetterThanNoise) {
  // Differentiation + DCT + corner pruning exploit smoothness: a band-limited
  // field must round-trip with far less error than white noise of the same
  // scale.
  Rng rng(705);
  NDArray<double> smooth = pyblaz::random_smooth(Shape{64, 64}, rng);
  NDArray<double> noise = pyblaz::random_uniform(
      Shape{64, 64}, rng, -pyblaz::max_abs(smooth), pyblaz::max_abs(smooth));
  const double smooth_err = pyblaz::reference::mean_absolute_error(
      smooth, blaz::decompress(blaz::compress(smooth)));
  const double noise_err = pyblaz::reference::mean_absolute_error(
      noise, blaz::decompress(blaz::compress(noise)));
  EXPECT_LT(smooth_err, 0.5 * noise_err);
}

TEST(Blaz, RaggedShapesRoundTrip) {
  Rng rng(709);
  NDArray<double> matrix = pyblaz::random_smooth(Shape{13, 27}, rng);
  NDArray<double> restored = blaz::decompress(blaz::compress(matrix));
  EXPECT_EQ(restored.shape(), matrix.shape());
  EXPECT_LT(pyblaz::reference::mean_absolute_error(matrix, restored),
            0.1 * pyblaz::max_abs(matrix) + 1e-6);
}

TEST(Blaz, AddMatchesUncompressedSum) {
  Rng rng(711);
  NDArray<double> x = pyblaz::random_smooth(Shape{32, 32}, rng);
  NDArray<double> y = pyblaz::random_smooth(Shape{32, 32}, rng);
  CompressedMatrix sum = blaz::add(blaz::compress(x), blaz::compress(y));
  NDArray<double> restored = blaz::decompress(sum);
  NDArray<double> truth = pyblaz::add(x, y);
  EXPECT_LT(pyblaz::reference::mean_absolute_error(truth, restored),
            0.08 * pyblaz::max_abs(truth));
}

TEST(Blaz, AddThrowsOnShapeMismatch) {
  Rng rng(713);
  NDArray<double> x = pyblaz::random_smooth(Shape{16, 16}, rng);
  NDArray<double> y = pyblaz::random_smooth(Shape{16, 24}, rng);
  EXPECT_THROW(blaz::add(blaz::compress(x), blaz::compress(y)),
               std::invalid_argument);
}

TEST(Blaz, MultiplyScalarIsExactOnRepresentation) {
  Rng rng(717);
  NDArray<double> x = pyblaz::random_smooth(Shape{24, 24}, rng);
  CompressedMatrix a = blaz::compress(x);
  NDArray<double> direct = blaz::decompress(a);
  NDArray<double> scaled = blaz::decompress(blaz::multiply_scalar(a, -2.5));
  for (index_t k = 0; k < direct.size(); ++k)
    EXPECT_NEAR(scaled[k], -2.5 * direct[k], 1e-10);
}

TEST(Blaz, CompressRejectsNon2D) {
  NDArray<double> cube(Shape{4, 4, 4}, 1.0);
  EXPECT_THROW(blaz::compress(cube), std::invalid_argument);
}

}  // namespace
