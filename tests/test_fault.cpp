/// Fault-injection subsystem (src/core/fault/) and the failure paths it
/// unlocks: CC_FAULT grammar round-trips through arm(), corruption replays
/// byte-identically from its seed, injected allocation failures and chunk
/// exceptions surface as typed cc::Error without poisoning the scheduler,
/// deadlines cancel stalled regions and leave the pool reusable, and a
/// faulted kernel-backend dispatch demotes to the scalar oracle instead of
/// crashing.  The FaultEnv suite runs only under the `fault_env_corruption`
/// ctest leg, which arms CC_FAULT=serialize.output:flip=2,seed=11 through
/// the environment path.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/codec/serialization.hpp"
#include "core/error/error.hpp"
#include "core/fault/fault.hpp"
#include "core/kernels/backend.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

/// Disarms every fault spec when a test exits, pass or fail — an armed
/// corruption spec leaking into later tests would corrupt *their* archives.
struct FaultGuard {
  ~FaultGuard() { fault::disarm_all(); }
};

/// Restores the default thread/shard counts and concurrency mode.
struct SchedulerGuard {
  ~SchedulerGuard() {
    parallel::set_serialize_regions(false);
    parallel::set_num_threads(0);
    parallel::set_num_shards(0);
  }
};

CompressedArray small_archive_source() {
  Compressor compressor({.block_shape = Shape{4, 4},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt8});
  Rng rng(1601);
  return compressor.compress(random_smooth(Shape{16, 16}, rng));
}

void expect_arrays_equal(const CompressedArray& a, const CompressedArray& b) {
  EXPECT_EQ(a.shape, b.shape);
  EXPECT_EQ(a.block_shape, b.block_shape);
  EXPECT_EQ(a.float_type, b.float_type);
  EXPECT_EQ(a.index_type, b.index_type);
  EXPECT_EQ(a.transform, b.transform);
  EXPECT_EQ(a.biggest, b.biggest);
  EXPECT_EQ(a.indices, b.indices);
}

// ---------------------------------------------------------------- arm grammar

TEST(Fault, ArmAcceptsTheDocumentedGrammar) {
  FaultGuard guard;
  EXPECT_TRUE(fault::arm("site:throw"));
  EXPECT_TRUE(fault::arm("site:badalloc"));
  EXPECT_TRUE(fault::arm("site:delay=0"));
  EXPECT_TRUE(fault::arm("site:flip=3,seed=7,nth=2"));
  EXPECT_TRUE(fault::arm("site:truncate=9,every=4"));
  EXPECT_TRUE(fault::arm("site:throw,p=0.5,seed=1"));
  EXPECT_TRUE(fault::arm("a.b:throw;c.d:flip=1,seed=2"));
  EXPECT_TRUE(fault::arm("a:throw;;b:throw"));  // Empty clause is skipped.
}

TEST(Fault, ArmRejectsMalformedSpecsWithoutArmingAnything) {
  FaultGuard guard;
  const char* bad[] = {
      "",                  // No clause at all.
      "site",              // No action.
      ":throw",            // No site.
      "site:",             // Empty action.
      "site:bogus",        // Unknown action.
      "site:throw=1",      // throw takes no value.
      "site:flip",         // flip needs a count.
      "site:flip=0",       // Zero flips is a no-op typo, not a spec.
      "site:truncate=0",   // Likewise.
      "site:delay",        // delay needs milliseconds.
      "site:delay=abc",    // Not a number.
      "site:throw,foo=1",  // Unknown selector.
      "site:throw,nth=",   // Selector needs a value.
      "site:throw,every=0",
      "site:throw,p=2",        // Probability out of [0, 1].
      "site:p=0.5",            // p is a selector, not an action.
      "good:throw;bad:bogus",  // All-or-nothing across clauses.
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(fault::arm(spec)) << "accepted: " << spec;
  }
  // Nothing half-armed: a site named by a rejected clause never fires.
  EXPECT_FALSE(fault::armed());
  fault::point("good");
  fault::point("site");
  EXPECT_EQ(fault::hits("site"), 0u);
}

// --------------------------------------------------------- firing + selectors

TEST(Fault, PointThrowsTypedErrorAndCounts) {
  FaultGuard guard;
  ASSERT_TRUE(fault::arm("t.site:throw"));
  try {
    fault::point("t.site");
    FAIL() << "armed throw did not fire";
  } catch (const cc::Error& e) {
    EXPECT_EQ(e.code(), cc::ErrorCode::kFaultInjected);
    EXPECT_EQ(e.site(), "t.site");
  }
  EXPECT_EQ(fault::hits("t.site"), 1u);
  EXPECT_EQ(fault::fired("t.site"), 1u);
  fault::point("other.site");  // No spec for this site: silent.
}

TEST(Fault, NthSelectorFiresExactlyOnce) {
  FaultGuard guard;
  ASSERT_TRUE(fault::arm("n.site:throw,nth=2"));
  fault::point("n.site");  // Hit 0.
  fault::point("n.site");  // Hit 1.
  EXPECT_THROW(fault::point("n.site"), cc::Error);  // Hit 2 fires.
  fault::point("n.site");  // Hit 3: armed but spent.
  EXPECT_EQ(fault::hits("n.site"), 4u);
  EXPECT_EQ(fault::fired("n.site"), 1u);
}

TEST(Fault, EverySelectorFiresPeriodically) {
  FaultGuard guard;
  ASSERT_TRUE(fault::arm("e.site:throw,every=3"));
  int fires = 0;
  for (int hit = 0; hit < 9; ++hit) {
    try {
      fault::point("e.site");
    } catch (const cc::Error&) {
      ++fires;
      EXPECT_EQ(hit % 3, 0) << "fired off-period at hit " << hit;
    }
  }
  EXPECT_EQ(fires, 3);
}

TEST(Fault, ProbabilityEndpointsAreExact) {
  FaultGuard guard;
  ASSERT_TRUE(fault::arm("never.site:throw,p=0"));
  ASSERT_TRUE(fault::arm("always.site:throw,p=1,seed=5"));
  for (int hit = 0; hit < 16; ++hit) fault::point("never.site");
  EXPECT_EQ(fault::fired("never.site"), 0u);
  for (int hit = 0; hit < 16; ++hit)
    EXPECT_THROW(fault::point("always.site"), cc::Error);
  EXPECT_EQ(fault::fired("always.site"), 16u);
}

TEST(Fault, DisarmAllResetsCounters) {
  FaultGuard guard;
  ASSERT_TRUE(fault::arm("d.site:throw,nth=99"));
  fault::point("d.site");
  EXPECT_EQ(fault::hits("d.site"), 1u);
  fault::disarm_all();
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::hits("d.site"), 0u);
  fault::point("d.site");  // Disarmed: silent, uncounted.
  EXPECT_EQ(fault::hits("d.site"), 0u);
}

// ------------------------------------------------------ corruption determinism

TEST(Fault, CorruptionReplaysByteIdentically) {
  FaultGuard guard;
  std::vector<std::uint8_t> original(64);
  for (std::size_t k = 0; k < original.size(); ++k)
    original[k] = static_cast<std::uint8_t>(k);

  // Two arm/corrupt passes over the same call sequence must produce the
  // same bytes hit for hit — this is the CC_FAULT replay contract.
  std::vector<std::vector<std::uint8_t>> first, second;
  for (int pass = 0; pass < 2; ++pass) {
    fault::disarm_all();
    ASSERT_TRUE(fault::arm("c.site:flip=4,seed=42"));
    auto& outs = pass == 0 ? first : second;
    for (int hit = 0; hit < 3; ++hit) {
      std::vector<std::uint8_t> bytes = original;
      fault::corrupt("c.site", bytes);
      outs.push_back(std::move(bytes));
    }
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first[0], original);       // It actually corrupted.
  EXPECT_NE(first[0], first[1]);       // Distinct hits corrupt differently.

  // A different seed corrupts differently on the same hit.
  fault::disarm_all();
  ASSERT_TRUE(fault::arm("c.site:flip=4,seed=43"));
  std::vector<std::uint8_t> other = original;
  fault::corrupt("c.site", other);
  EXPECT_NE(other, first[0]);
}

TEST(Fault, FlipChangesExactlyTheRequestedBitCount) {
  FaultGuard guard;
  std::vector<std::uint8_t> original(32, 0x00);
  ASSERT_TRUE(fault::arm("f.site:flip=5,seed=7"));
  std::vector<std::uint8_t> bytes = original;
  fault::corrupt("f.site", bytes);
  int flipped = 0;
  for (std::size_t k = 0; k < bytes.size(); ++k)
    flipped += __builtin_popcount(bytes[k] ^ original[k]);
  EXPECT_EQ(flipped, 5);  // Positions are distinct, so no un-flips.
}

TEST(Fault, TruncateDropsTailBytesAndSaturates) {
  FaultGuard guard;
  std::vector<std::uint8_t> bytes(12);
  for (std::size_t k = 0; k < bytes.size(); ++k)
    bytes[k] = static_cast<std::uint8_t>(k);
  ASSERT_TRUE(fault::arm("tr.site:truncate=5"));
  fault::corrupt("tr.site", bytes);
  ASSERT_EQ(bytes.size(), 7u);
  for (std::size_t k = 0; k < bytes.size(); ++k) EXPECT_EQ(bytes[k], k);
  fault::corrupt("tr.site", bytes);
  ASSERT_EQ(bytes.size(), 2u);
  fault::corrupt("tr.site", bytes);  // 5 > 2: drops everything, no underflow.
  EXPECT_TRUE(bytes.empty());
}

// ---------------------------------------------------- archive-path fault sites

TEST(Fault, SerializeOutputCorruptionIsDetectedOnDecode) {
  FaultGuard guard;
  const CompressedArray array = small_archive_source();
  const std::vector<std::uint8_t> clean = serialize(array);

  ASSERT_TRUE(fault::arm("serialize.output:flip=2,seed=9"));
  const std::vector<std::uint8_t> corrupted = serialize(array);
  EXPECT_NE(corrupted, clean);
  EXPECT_EQ(fault::fired("serialize.output"), 1u);
  fault::disarm_all();

  // The v3 checksums catch the damage — decode throws typed, never garbage.
  EXPECT_THROW((void)deserialize(corrupted), cc::Error);
  expect_arrays_equal(deserialize(clean), array);  // The clean copy is fine.
}

TEST(Fault, DeserializeInputFaultLeavesTheCallersBufferIntact) {
  FaultGuard guard;
  const CompressedArray array = small_archive_source();
  const std::vector<std::uint8_t> clean = serialize(array);

  ASSERT_TRUE(fault::arm("deserialize.input:flip=3,seed=4"));
  std::vector<std::uint8_t> buffer = clean;
  EXPECT_THROW((void)deserialize(buffer), cc::Error);
  // The fault corrupts a defensive copy, not the caller's bytes.
  EXPECT_EQ(buffer, clean);
  fault::disarm_all();
  expect_arrays_equal(deserialize(buffer), array);
}

TEST(Fault, AllocationFailureSurfacesAsResourceExhausted) {
  FaultGuard guard;
  const CompressedArray array = small_archive_source();
  const std::vector<std::uint8_t> stream = serialize(array);

  ASSERT_TRUE(fault::arm("deserialize.alloc:badalloc,nth=0"));
  try {
    (void)deserialize(stream);
    FAIL() << "injected bad_alloc did not surface";
  } catch (const cc::Error& e) {
    EXPECT_EQ(e.code(), cc::ErrorCode::kResourceExhausted);
    EXPECT_EQ(e.site(), "deserialize.alloc");
  }
  fault::disarm_all();
  // Allocation failure is survivable: the same stream decodes afterwards.
  expect_arrays_equal(deserialize(stream), array);
}

// --------------------------------------------- scheduler: exception isolation

/// Satellite hammer: concurrent clients submit regions while every 97th
/// scheduler chunk (globally) throws an injected fault.  A faulted region
/// must (a) surface exactly cc::Error(kFaultInjected) to its own submitter,
/// (b) never scribble on another client's buffer, and (c) leave the pool
/// fully usable — the post-storm run must be bit-identical to sequential.
TEST(Fault, SchedulerIsolatesInjectedChunkFailures) {
  SchedulerGuard scheduler_guard;
  FaultGuard fault_guard;
  constexpr int kClients = 4;
  constexpr int kRegionsPerClient = 12;
  constexpr index_t kElems = 4096;
  constexpr index_t kGrain = 64;  // 64 chunks per region.

  const auto expected = [](int client, index_t k) {
    return std::sqrt(static_cast<double>(k + 1)) * (client + 2);
  };

  ASSERT_TRUE(fault::arm("sched.chunk:throw,every=97,seed=3"));
  std::atomic<int> failed_regions{0};
  std::atomic<int> completed_regions{0};
  std::atomic<int> contract_violations{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      for (int region = 0; region < kRegionsPerClient; ++region) {
        std::vector<double> out(static_cast<std::size_t>(kElems), -1.0);
        bool threw = false;
        try {
          parallel::parallel_for(0, kElems, kGrain,
                                 [&](index_t begin, index_t end) {
                                   for (index_t k = begin; k < end; ++k)
                                     out[static_cast<std::size_t>(k)] =
                                         expected(client, k);
                                 });
        } catch (const cc::Error& e) {
          threw = true;
          if (e.code() != cc::ErrorCode::kFaultInjected)
            contract_violations.fetch_add(1);
        } catch (...) {
          threw = true;
          contract_violations.fetch_add(1);  // Untyped escape.
        }
        for (index_t k = 0; k < kElems; ++k) {
          const double got = out[static_cast<std::size_t>(k)];
          // Finished chunks wrote this client's values; skipped chunks left
          // the sentinel.  Anything else means cross-region interference.
          if (got != expected(client, k) && !(threw && got == -1.0))
            contract_violations.fetch_add(1);
        }
        (threw ? failed_regions : completed_regions).fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(contract_violations.load(), 0);
  EXPECT_GT(failed_regions.load(), 0) << "storm never fired";
  EXPECT_GT(completed_regions.load(), 0) << "storm killed every region";

  // Post-storm: the scheduler is intact and value-deterministic.
  fault::disarm_all();
  std::vector<double> out(static_cast<std::size_t>(kElems));
  parallel::parallel_for(0, kElems, kGrain, [&](index_t begin, index_t end) {
    for (index_t k = begin; k < end; ++k)
      out[static_cast<std::size_t>(k)] = expected(0, k);
  });
  for (index_t k = 0; k < kElems; ++k)
    ASSERT_EQ(out[static_cast<std::size_t>(k)], expected(0, k));
}

// ------------------------------------------------------------------ deadlines

TEST(Deadline, NestedScopesKeepTheEarlierDeadline) {
  using clock = std::chrono::steady_clock;
  EXPECT_EQ(parallel::current_deadline(), clock::time_point::max());
  const clock::time_point near = clock::now() + std::chrono::seconds(1);
  const clock::time_point far = clock::now() + std::chrono::seconds(10);
  {
    parallel::DeadlineScope outer(near);
    EXPECT_EQ(parallel::current_deadline(), near);
    {
      parallel::DeadlineScope inner(far);  // Later: cannot extend.
      EXPECT_EQ(parallel::current_deadline(), near);
    }
    EXPECT_EQ(parallel::current_deadline(), near);
  }
  EXPECT_EQ(parallel::current_deadline(), clock::time_point::max());
}

TEST(Deadline, StalledRegionIsCancelledAndPoolStaysUsable) {
  SchedulerGuard scheduler_guard;
  FaultGuard fault_guard;
  parallel::set_num_threads(2);
  constexpr index_t kElems = 256;
  constexpr index_t kGrain = 16;  // 16 chunks, each stalled 20 ms.

  ASSERT_TRUE(fault::arm("sched.chunk:delay=20"));
  telemetry::Counter& exceeded = telemetry::counter("sched.deadline_exceeded");
  telemetry::Counter& detected =
      telemetry::counter("fault.detected.deadline_exceeded");
  const std::uint64_t exceeded_before = exceeded.value();
  const std::uint64_t detected_before = detected.value();

  std::vector<double> out(static_cast<std::size_t>(kElems), 0.0);
  bool threw = false;
  try {
    parallel::DeadlineScope deadline(std::chrono::milliseconds(5));
    parallel::parallel_for(0, kElems, kGrain, [&](index_t begin, index_t end) {
      for (index_t k = begin; k < end; ++k)
        out[static_cast<std::size_t>(k)] = static_cast<double>(k);
    });
  } catch (const cc::Error& e) {
    threw = true;
    EXPECT_EQ(e.code(), cc::ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(e.site(), "sched.region");
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(exceeded.value(), exceeded_before + 1);
  EXPECT_EQ(detected.value(), detected_before + 1);

  // One cancelled region, not a poisoned pool: with the stall disarmed and
  // no deadline, the identical region completes with the right values.
  fault::disarm_all();
  std::fill(out.begin(), out.end(), 0.0);
  parallel::parallel_for(0, kElems, kGrain, [&](index_t begin, index_t end) {
    for (index_t k = begin; k < end; ++k)
      out[static_cast<std::size_t>(k)] = static_cast<double>(k);
  });
  for (index_t k = 0; k < kElems; ++k)
    ASSERT_EQ(out[static_cast<std::size_t>(k)], static_cast<double>(k));
}

TEST(Deadline, InlineRegionsHonorDeadlinesToo) {
  SchedulerGuard scheduler_guard;
  parallel::set_num_threads(1);  // CC_THREADS=1 shape: chunks run inline.
  bool threw = false;
  try {
    parallel::DeadlineScope deadline(std::chrono::milliseconds(2));
    parallel::parallel_for(0, 64, 8, [&](index_t, index_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
  } catch (const cc::Error& e) {
    threw = true;
    EXPECT_EQ(e.code(), cc::ErrorCode::kDeadlineExceeded);
  }
  EXPECT_TRUE(threw);

  // Inline path stays usable as well.
  std::atomic<int> chunks{0};
  parallel::parallel_for(0, 64, 8,
                         [&](index_t, index_t) { chunks.fetch_add(1); });
  EXPECT_EQ(chunks.load(), 8);
}

TEST(Deadline, GenerousDeadlineIsANoOp) {
  SchedulerGuard scheduler_guard;
  telemetry::Counter& exceeded = telemetry::counter("sched.deadline_exceeded");
  const std::uint64_t before = exceeded.value();
  constexpr index_t kElems = 1024;
  std::vector<double> out(static_cast<std::size_t>(kElems), 0.0);
  {
    parallel::DeadlineScope deadline(std::chrono::minutes(10));
    parallel::parallel_for(0, kElems, 32, [&](index_t begin, index_t end) {
      for (index_t k = begin; k < end; ++k)
        out[static_cast<std::size_t>(k)] = static_cast<double>(3 * k);
    });
  }
  for (index_t k = 0; k < kElems; ++k)
    ASSERT_EQ(out[static_cast<std::size_t>(k)], static_cast<double>(3 * k));
  EXPECT_EQ(exceeded.value(), before);
}

// --------------------------------------------------- kernel-backend demotion

TEST(Fault, BackendDispatchFaultDemotesToScalarAndStaysCorrect) {
  FaultGuard guard;
  const kernels::Backend before = kernels::active_backend();

  // Reference archive from the healthy backend; bit-identity across backends
  // is the existing contract, so the demoted run must reproduce it exactly.
  const CompressedArray array = small_archive_source();
  const std::vector<std::uint8_t> reference = serialize(array);

  telemetry::Counter& fallbacks =
      telemetry::counter("backend.dispatch_fallback");
  const std::uint64_t fallbacks_before = fallbacks.value();

  ASSERT_TRUE(fault::arm("backend.dispatch:throw,nth=0"));
  (void)kernels::active();  // Dispatch faults exactly once, is swallowed.
  EXPECT_EQ(kernels::active_backend(), kernels::Backend::kScalar);
  EXPECT_EQ(fallbacks.value(), fallbacks_before + 1);

  // Degraded, not broken: the scalar oracle produces the same archive.
  const std::vector<std::uint8_t> demoted = serialize(small_archive_source());
  EXPECT_EQ(demoted, reference);

  fault::disarm_all();
  EXPECT_TRUE(kernels::set_backend(before));
  EXPECT_EQ(kernels::active_backend(), before);
}

// ------------------------------------------------------- CC_FAULT environment

/// Runs under the `fault_env_corruption` ctest leg, which sets
/// CC_FAULT=serialize.output:flip=2,seed=11.  Pins the environment arming
/// path end to end: the spec parses at first use, the armed corruption
/// fires on serialize(), and the checksummed container detects it.
TEST(FaultEnv, EnvArmedCorruptionFiresAndIsDetected) {
  if (std::getenv("CC_FAULT") == nullptr)
    GTEST_SKIP() << "set CC_FAULT=serialize.output:flip=2,seed=11 to run "
                    "(ctest leg: fault_env_corruption)";
  ASSERT_TRUE(fault::armed());

  const CompressedArray array = small_archive_source();
  const std::uint64_t fired_before = fault::fired("serialize.output");
  const std::vector<std::uint8_t> corrupted = serialize(array);
  EXPECT_GT(fault::fired("serialize.output"), fired_before);
  EXPECT_THROW((void)deserialize(corrupted), cc::Error);
}

}  // namespace
}  // namespace pyblaz
