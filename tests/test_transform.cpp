#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/ndarray/ndarray_ops.hpp"
#include "core/transform/block_transform.hpp"
#include "core/transform/dct.hpp"
#include "core/transform/haar.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

/// Checks H^T H = I for a row-major n x n matrix with basis vectors in
/// columns.
void expect_orthonormal_columns(const std::vector<double>& h, int n,
                                double tol = 1e-12) {
  for (int c1 = 0; c1 < n; ++c1) {
    for (int c2 = 0; c2 < n; ++c2) {
      double dot = 0.0;
      for (int row = 0; row < n; ++row)
        dot += h[static_cast<std::size_t>(row * n + c1)] *
               h[static_cast<std::size_t>(row * n + c2)];
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, tol)
          << "columns " << c1 << ", " << c2 << " of size " << n;
    }
  }
}

// ------------------------------------------------------------ basis matrices

class MatrixSizes : public ::testing::TestWithParam<int> {};

TEST_P(MatrixSizes, DctIsOrthonormal) {
  const int n = GetParam();
  expect_orthonormal_columns(dct_matrix(n), n);
}

TEST_P(MatrixSizes, HaarIsOrthonormal) {
  const int n = GetParam();
  expect_orthonormal_columns(haar_matrix(n), n);
}

TEST_P(MatrixSizes, DctFirstColumnIsConstant) {
  // The DC basis vector must be constant 1/sqrt(n) — the mean and scalar-add
  // operations depend on it (§IV-A).
  const int n = GetParam();
  const auto h = dct_matrix(n);
  const double expected = 1.0 / std::sqrt(static_cast<double>(n));
  for (int row = 0; row < n; ++row)
    EXPECT_NEAR(h[static_cast<std::size_t>(row * n)], expected, 1e-14);
}

TEST_P(MatrixSizes, HaarFirstColumnIsConstant) {
  const int n = GetParam();
  const auto h = haar_matrix(n);
  const double expected = 1.0 / std::sqrt(static_cast<double>(n));
  for (int row = 0; row < n; ++row)
    EXPECT_NEAR(h[static_cast<std::size_t>(row * n)], expected, 1e-14);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, MatrixSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(DctMatrix, KnownSize2Entries) {
  // For n=2 the orthonormal DCT-II is [[1/√2, 1/√2], [1/√2, -1/√2]] with
  // basis vectors in columns.
  const auto h = dct_matrix(2);
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(h[0], s, 1e-15);
  EXPECT_NEAR(h[1], s, 1e-15);
  EXPECT_NEAR(h[2], s, 1e-15);
  EXPECT_NEAR(h[3], -s, 1e-15);
}

TEST(HaarMatrix, KnownSize4Entries) {
  const auto h = haar_matrix(4);
  // Column 0: constant 1/2.  Column 1: [1,1,-1,-1]/2.
  // Columns 2,3: [1,-1,0,0]/√2 and [0,0,1,-1]/√2.
  EXPECT_NEAR(h[0 * 4 + 1], 0.5, 1e-15);
  EXPECT_NEAR(h[2 * 4 + 1], -0.5, 1e-15);
  EXPECT_NEAR(h[0 * 4 + 2], 1.0 / std::sqrt(2.0), 1e-15);
  EXPECT_NEAR(h[1 * 4 + 2], -1.0 / std::sqrt(2.0), 1e-15);
  EXPECT_NEAR(h[2 * 4 + 2], 0.0, 1e-15);
  EXPECT_NEAR(h[2 * 4 + 3], 1.0 / std::sqrt(2.0), 1e-15);
}

// --------------------------------------------------------- block transforms

struct TransformCase {
  TransformKind kind;
  Shape block_shape;
};

class BlockTransformCases : public ::testing::TestWithParam<TransformCase> {};

TEST_P(BlockTransformCases, RoundTripIsIdentity) {
  const auto& param = GetParam();
  BlockTransform transform(param.kind, param.block_shape);
  Rng rng(11);
  NDArray<double> block = random_normal(param.block_shape, rng);
  std::vector<double> data = block.vector();

  transform.forward(data.data());
  transform.inverse(data.data());

  for (index_t k = 0; k < block.size(); ++k)
    EXPECT_NEAR(data[static_cast<std::size_t>(k)], block[k], 1e-10);
}

TEST_P(BlockTransformCases, PreservesDotProducts) {
  // Parseval: <A, B> is invariant under the orthonormal transform — the
  // property every summative compressed-space op relies on (§IV-A).
  const auto& param = GetParam();
  BlockTransform transform(param.kind, param.block_shape);
  Rng rng(13);
  NDArray<double> a = random_normal(param.block_shape, rng);
  NDArray<double> b = random_normal(param.block_shape, rng);

  double dot_before = 0.0;
  for (index_t k = 0; k < a.size(); ++k) dot_before += a[k] * b[k];

  std::vector<double> ca = a.vector(), cb = b.vector();
  transform.forward(ca.data());
  transform.forward(cb.data());
  double dot_after = 0.0;
  for (index_t k = 0; k < a.size(); ++k)
    dot_after += ca[static_cast<std::size_t>(k)] * cb[static_cast<std::size_t>(k)];

  EXPECT_NEAR(dot_before, dot_after, 1e-9 * std::fabs(dot_before) + 1e-9);
}

TEST_P(BlockTransformCases, FirstCoefficientIsScaledBlockMean) {
  // C[0] = mean(B) * sqrt(prod(i)) — the anchor of Algorithms 4, 7, 13.
  const auto& param = GetParam();
  BlockTransform transform(param.kind, param.block_shape);
  Rng rng(17);
  NDArray<double> block = random_uniform(param.block_shape, rng, -3.0, 5.0);

  double mean = 0.0;
  for (index_t k = 0; k < block.size(); ++k) mean += block[k];
  mean /= static_cast<double>(block.size());

  std::vector<double> data = block.vector();
  transform.forward(data.data());
  EXPECT_NEAR(data[0],
              mean * std::sqrt(static_cast<double>(param.block_shape.volume())),
              1e-10);
}

TEST_P(BlockTransformCases, ConstantBlockHasOnlyDcCoefficient) {
  const auto& param = GetParam();
  BlockTransform transform(param.kind, param.block_shape);
  NDArray<double> block(param.block_shape, 2.5);
  std::vector<double> data = block.vector();
  transform.forward(data.data());
  EXPECT_NEAR(data[0],
              2.5 * std::sqrt(static_cast<double>(param.block_shape.volume())),
              1e-10);
  for (index_t k = 1; k < block.size(); ++k)
    EXPECT_NEAR(data[static_cast<std::size_t>(k)], 0.0, 1e-10) << "coeff " << k;
}

TEST_P(BlockTransformCases, IsLinear) {
  const auto& param = GetParam();
  BlockTransform transform(param.kind, param.block_shape);
  Rng rng(19);
  NDArray<double> a = random_normal(param.block_shape, rng);
  NDArray<double> b = random_normal(param.block_shape, rng);

  std::vector<double> ca = a.vector(), cb = b.vector();
  transform.forward(ca.data());
  transform.forward(cb.data());

  std::vector<double> combined(static_cast<std::size_t>(a.size()));
  for (index_t k = 0; k < a.size(); ++k)
    combined[static_cast<std::size_t>(k)] = 2.0 * a[k] - 3.0 * b[k];
  transform.forward(combined.data());

  for (index_t k = 0; k < a.size(); ++k)
    EXPECT_NEAR(combined[static_cast<std::size_t>(k)],
                2.0 * ca[static_cast<std::size_t>(k)] -
                    3.0 * cb[static_cast<std::size_t>(k)],
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockTransformCases,
    ::testing::Values(TransformCase{TransformKind::kDCT, Shape{8}},
                      TransformCase{TransformKind::kDCT, Shape{4, 4}},
                      TransformCase{TransformKind::kDCT, Shape{8, 8}},
                      TransformCase{TransformKind::kDCT, Shape{4, 8}},
                      TransformCase{TransformKind::kDCT, Shape{4, 4, 4}},
                      TransformCase{TransformKind::kDCT, Shape{4, 16, 16}},
                      TransformCase{TransformKind::kDCT, Shape{2, 2, 2, 2}},
                      TransformCase{TransformKind::kHaar, Shape{8}},
                      TransformCase{TransformKind::kHaar, Shape{4, 4}},
                      TransformCase{TransformKind::kHaar, Shape{8, 8}},
                      TransformCase{TransformKind::kHaar, Shape{4, 8}},
                      TransformCase{TransformKind::kHaar, Shape{4, 4, 4}}));

TEST(BlockTransform, SeparableMatchesDirect2D) {
  // Cross-check the separable implementation against a direct O(n^4)
  // evaluation C[k1][k2] = Σ B[n1][n2] H[n1][k1] H[n2][k2] (Appendix VI-A).
  const Shape shape{4, 8};
  BlockTransform transform(TransformKind::kDCT, shape);
  Rng rng(23);
  NDArray<double> block = random_normal(shape, rng);

  const auto h1 = dct_matrix(4);
  const auto h2 = dct_matrix(8);
  NDArray<double> direct(shape);
  for (index_t k1 = 0; k1 < 4; ++k1)
    for (index_t k2 = 0; k2 < 8; ++k2) {
      double total = 0.0;
      for (index_t n1 = 0; n1 < 4; ++n1)
        for (index_t n2 = 0; n2 < 8; ++n2)
          total += block[n1 * 8 + n2] * h1[static_cast<std::size_t>(n1 * 4 + k1)] *
                   h2[static_cast<std::size_t>(n2 * 8 + k2)];
      direct[k1 * 8 + k2] = total;
    }

  std::vector<double> separable = block.vector();
  transform.forward(separable.data());
  for (index_t k = 0; k < block.size(); ++k)
    EXPECT_NEAR(separable[static_cast<std::size_t>(k)], direct[k], 1e-10);
}

TEST(BlockTransform, NameStrings) {
  EXPECT_EQ(name(TransformKind::kDCT), "dct");
  EXPECT_EQ(name(TransformKind::kHaar), "haar");
}

}  // namespace
}  // namespace pyblaz
