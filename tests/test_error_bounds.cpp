#include "core/codec/error_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/blocking/blocking.hpp"
#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

TEST(ErrorBounds, BinWidthFormula) {
  // Bin width = 2N / (2r + 1) (§IV-D); the guaranteed per-coefficient bound
  // is half the decodable spacing, N / (2r).
  EXPECT_DOUBLE_EQ(bin_width(1.0, IndexType::kInt8), 2.0 / 255.0);
  EXPECT_DOUBLE_EQ(bin_width(10.0, IndexType::kInt16), 20.0 / 65535.0);
  EXPECT_DOUBLE_EQ(max_binning_coefficient_error(1.0, IndexType::kInt8),
                   1.0 / 254.0);
  EXPECT_DOUBLE_EQ(max_binning_coefficient_error(2.0, IndexType::kInt16),
                   2.0 / 65534.0);
}

TEST(ErrorBounds, LooseLinfScalesWithBlockVolume) {
  const double per_coeff = max_binning_coefficient_error(2.0, IndexType::kInt8);
  EXPECT_DOUBLE_EQ(loose_linf_bound(2.0, IndexType::kInt8, Shape{4, 4}),
                   16.0 * per_coeff);
  EXPECT_DOUBLE_EQ(loose_linf_bound(2.0, IndexType::kInt8, Shape{8, 8}),
                   64.0 * per_coeff);
}

TEST(ErrorBounds, PerCoefficientBinningErrorRespected) {
  // Measured coefficient error after binning stays within N/(2r+1) per
  // coefficient (§IV-D), checked directly against transform coefficients.
  CompressorSettings settings{.block_shape = Shape{8, 8},
                              .float_type = FloatType::kFloat64,
                              .index_type = IndexType::kInt8};
  Compressor compressor(settings);
  Rng rng(89);
  NDArray<double> array = random_smooth(Shape{32, 32}, rng);
  CompressedArray compressed = compressor.compress(array);

  // Recompute the true coefficients.
  Blocked blocked = block_array(array, settings.block_shape);
  const BlockTransform& transform = compressor.transform();
  const double r = static_cast<double>(radius(settings.index_type));
  for (index_t kb = 0; kb < blocked.num_blocks(); ++kb) {
    transform.forward(blocked.block(kb));
    const double n = compressed.biggest[static_cast<std::size_t>(kb)];
    const double bound = max_binning_coefficient_error(n, settings.index_type);
    for (index_t j = 0; j < blocked.block_volume(); ++j) {
      const double truth = blocked.block(kb)[j];
      const double decoded =
          n *
          static_cast<double>(
              compressed.indices.get(static_cast<std::size_t>(kb * 64 + j))) /
          r;
      EXPECT_LE(std::fabs(truth - decoded), bound * (1.0 + 1e-12))
          << "block " << kb << " coeff " << j;
    }
  }
}

TEST(ErrorBounds, BlockL2EqualsMeasuredBlockError) {
  // Orthonormality: per-block decompressed L2 error == L2 of coefficient
  // errors, measured exactly (no pruning, float64 so no rounding).
  CompressorSettings settings{.block_shape = Shape{4, 4},
                              .float_type = FloatType::kFloat64,
                              .index_type = IndexType::kInt8};
  Compressor compressor(settings);
  Rng rng(97);
  NDArray<double> array = random_smooth(Shape{16, 16}, rng);

  CompressionDiagnostics diag;
  CompressedArray compressed = compressor.compress(array, &diag);
  NDArray<double> restored = compressor.decompress(compressed);

  Blocked b_orig = block_array(array, settings.block_shape);
  Blocked b_rest = block_array(restored, settings.block_shape);
  for (index_t kb = 0; kb < b_orig.num_blocks(); ++kb) {
    double err_sq = 0.0;
    for (index_t j = 0; j < b_orig.block_volume(); ++j) {
      const double d = b_orig.block(kb)[j] - b_rest.block(kb)[j];
      err_sq += d * d;
    }
    EXPECT_NEAR(std::sqrt(err_sq), diag.block_l2(kb), 1e-10)
        << "block " << kb;
  }
}

TEST(ErrorBounds, TotalL2MatchesWholeArrayError) {
  CompressorSettings settings{.block_shape = Shape{8, 8},
                              .float_type = FloatType::kFloat64,
                              .index_type = IndexType::kInt16};
  settings.mask = PruningMask::keep_fraction(Shape{8, 8}, 0.5);
  Compressor compressor(settings);
  Rng rng(101);
  NDArray<double> array = random_smooth(Shape{64, 64}, rng);

  CompressionDiagnostics diag;
  CompressedArray compressed = compressor.compress(array, &diag);
  NDArray<double> restored = compressor.decompress(compressed);
  EXPECT_NEAR(reference::l2_distance(array, restored), diag.total_l2(),
              1e-9 * (1.0 + diag.total_l2()));
}

TEST(ErrorBounds, LooseLinfBoundsVectorMatchesPerBlockFormula) {
  Compressor compressor({.block_shape = Shape{4, 4},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt8});
  Rng rng(103);
  NDArray<double> array = random_smooth(Shape{16, 16}, rng);
  CompressedArray compressed = compressor.compress(array);
  const std::vector<double> bounds = loose_linf_bounds(compressed);
  ASSERT_EQ(bounds.size(), compressed.biggest.size());
  for (std::size_t k = 0; k < bounds.size(); ++k) {
    EXPECT_DOUBLE_EQ(bounds[k], loose_linf_bound(compressed.biggest[k],
                                                 IndexType::kInt8, Shape{4, 4}));
  }
}

TEST(ErrorBounds, DiagnosticsZeroForKeptInt64OnTinyValues) {
  // With int64 indices the binning grid is astronomically fine: binning_l2
  // is negligible relative to the data.
  Compressor compressor({.block_shape = Shape{4, 4},
                         .float_type = FloatType::kFloat64,
                         .index_type = IndexType::kInt64});
  Rng rng(107);
  NDArray<double> array = random_smooth(Shape{16, 16}, rng);
  CompressionDiagnostics diag;
  compressor.compress(array, &diag);
  for (double v : diag.binning_l2) EXPECT_LT(v, 1e-12);
  for (double v : diag.pruning_l2) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace pyblaz
