/// The lazy expression-template front end (core/ops/expr.hpp): natural
/// arithmetic over CompressedArray flattens — at compile time — into exactly
/// one ops::lincomb call.  Pins the acceptance properties: an expression like
/// h - dt*a + dt*b + c performs exactly ONE rebin (lincomb_rebin_passes
/// accounting) and evaluates bit-identically to the direct flattened
/// ops::lincomb call, across shapes, dtypes, transforms, and thread counts;
/// compound assignments ride the same path; implicit conversion drops
/// expressions into any CompressedArray API.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/expr.hpp"
#include "core/ops/ops.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

CompressorSettings settings_for(Shape block,
                                FloatType ftype = FloatType::kFloat32,
                                IndexType itype = IndexType::kInt8,
                                TransformKind kind = TransformKind::kDCT) {
  return {.block_shape = std::move(block),
          .float_type = ftype,
          .index_type = itype,
          .transform = kind};
}

void expect_bit_identical(const CompressedArray& a, const CompressedArray& b,
                          const char* label) {
  EXPECT_EQ(a.indices, b.indices) << label;
  EXPECT_EQ(a.biggest, b.biggest) << label;
}

TEST(OpsExpr, NaturalExpressionIsOneRebinAndBitIdenticalToLincomb) {
  // The acceptance property, on the acceptance expression: h - dt*a + dt*b + c
  // performs exactly one rebin and matches the direct flattened lincomb call
  // bit for bit.
  Compressor compressor(settings_for(Shape{8, 8}));
  Rng rng(9001);
  const CompressedArray h =
      compressor.compress(random_smooth(Shape{40, 24}, rng, 5));
  const CompressedArray a =
      compressor.compress(random_smooth(Shape{40, 24}, rng, 5));
  const CompressedArray b =
      compressor.compress(random_smooth(Shape{40, 24}, rng, 5));
  const CompressedArray c =
      compressor.compress(random_smooth(Shape{40, 24}, rng, 5));
  const double dt = 0.125;

  const long before = ops::lincomb_rebin_passes();
  const CompressedArray via_expr = h - dt * a + dt * b + c;
  EXPECT_EQ(ops::lincomb_rebin_passes() - before, 1)
      << "a 4-term expression must evaluate as one lincomb, one rebin";

  const CompressedArray direct =
      ops::lincomb({{1.0, &h}, {-dt, &a}, {dt, &b}, {1.0, &c}});
  expect_bit_identical(via_expr, direct, "expr vs direct lincomb");

  // The chained spelling of the same update pays one rebin per binary op.
  const long chained_before = ops::lincomb_rebin_passes();
  const CompressedArray chained = ops::add(
      ops::add(ops::subtract(h, ops::multiply_scalar(a, dt)),
               ops::multiply_scalar(b, dt)),
      c);
  EXPECT_EQ(ops::lincomb_rebin_passes() - chained_before, 3);
}

TEST(OpsExpr, TreeFlattensAtCompileTime) {
  // Structural checks on the flattened (operand, weight, bias) lists: the
  // operators only rescale/concatenate fixed-size arrays, so the whole tree
  // shape is known statically.
  Compressor compressor(settings_for(Shape{8, 8}));
  Rng rng(9011);
  const CompressedArray a =
      compressor.compress(random_smooth(Shape{16, 16}, rng));
  const CompressedArray b =
      compressor.compress(random_smooth(Shape{16, 16}, rng));

  const LinExpr<2> scaled = 2.0 * (a - b) / 4.0 + 1.0;
  EXPECT_EQ(scaled.operands[0], &a);
  EXPECT_EQ(scaled.operands[1], &b);
  EXPECT_DOUBLE_EQ(scaled.weights[0], 0.5);
  EXPECT_DOUBLE_EQ(scaled.weights[1], -0.5);
  EXPECT_DOUBLE_EQ(scaled.bias, 1.0);

  const LinExpr<2> negated = -(a + 2.0 * b) - 3.0;
  EXPECT_DOUBLE_EQ(negated.weights[0], -1.0);
  EXPECT_DOUBLE_EQ(negated.weights[1], -2.0);
  EXPECT_DOUBLE_EQ(negated.bias, -3.0);

  const LinExpr<1> reversed = 1.5 - a;
  EXPECT_DOUBLE_EQ(reversed.weights[0], -1.0);
  EXPECT_DOUBLE_EQ(reversed.bias, 1.5);

  // Duplicate operands are legal terms, not an aliasing hazard.
  const LinExpr<2> doubled = a + a;
  EXPECT_EQ(doubled.operands[0], doubled.operands[1]);
  expect_bit_identical(doubled.eval(), ops::lincomb({{1.0, &a}, {1.0, &a}}),
                       "a + a");
}

TEST(OpsExpr, BitIdenticalToDirectLincombAcrossLayouts) {
  // The no-new-error-source property across storage layouts: for every
  // (block shape, float type, index type, transform) the expression's
  // evaluation equals the direct flattened lincomb call bit for bit.
  struct Case {
    Shape array_shape;
    Shape block_shape;
    FloatType ftype;
    IndexType itype;
    TransformKind kind;
  };
  const Case cases[] = {
      {Shape{32, 32}, Shape{8, 8}, FloatType::kFloat32, IndexType::kInt8,
       TransformKind::kDCT},
      {Shape{33, 21}, Shape{8, 8}, FloatType::kFloat32, IndexType::kInt16,
       TransformKind::kDCT},  // Ragged edges.
      {Shape{16, 16, 16}, Shape{4, 4, 4}, FloatType::kFloat64,
       IndexType::kInt32, TransformKind::kDCT},
      {Shape{32, 32}, Shape{16, 16}, FloatType::kFloat16, IndexType::kInt8,
       TransformKind::kHaar},
      {Shape{64}, Shape{16}, FloatType::kBFloat16, IndexType::kInt16,
       TransformKind::kHaar},
  };
  for (const Case& c : cases) {
    Compressor compressor(
        settings_for(c.block_shape, c.ftype, c.itype, c.kind));
    Rng rng(9021);
    const CompressedArray x =
        compressor.compress(random_smooth(c.array_shape, rng, 5));
    const CompressedArray y =
        compressor.compress(random_smooth(c.array_shape, rng, 5));
    const CompressedArray z =
        compressor.compress(random_smooth(c.array_shape, rng, 5));

    const CompressedArray via_expr = 0.75 * x - y / 3.0 + 2.0 * z + 0.25;
    const CompressedArray direct = ops::lincomb(
        {{0.75, &x}, {-(1.0 / 3.0), &y}, {2.0, &z}}, 0.25);
    expect_bit_identical(via_expr, direct, c.array_shape.to_string().c_str());
  }
}

TEST(OpsExpr, BitIdenticalAcrossThreadCounts) {
  Compressor compressor(settings_for(Shape{8, 4, 8}));
  Rng rng(9031);
  const CompressedArray a =
      compressor.compress(random_smooth(Shape{37, 18, 29}, rng, 5));
  const CompressedArray b =
      compressor.compress(random_smooth(Shape{37, 18, 29}, rng, 5));
  const CompressedArray c =
      compressor.compress(random_smooth(Shape{37, 18, 29}, rng, 5));

  parallel::set_num_threads(1);
  const CompressedArray reference = a - 0.5 * b + 0.25 * c;
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    const CompressedArray again = a - 0.5 * b + 0.25 * c;
    EXPECT_EQ(again.indices, reference.indices) << threads << " threads";
    EXPECT_EQ(again.biggest, reference.biggest) << threads << " threads";
  }
  parallel::set_num_threads(0);
}

TEST(OpsExpr, CompoundAssignmentsRouteThroughOneRebin) {
  Compressor compressor(settings_for(Shape{8, 8}, FloatType::kFloat32,
                                     IndexType::kInt16));
  Rng rng(9041);
  const CompressedArray a =
      compressor.compress(random_smooth(Shape{32, 32}, rng, 5));
  const CompressedArray b =
      compressor.compress(random_smooth(Shape{32, 32}, rng, 5));
  CompressedArray state =
      compressor.compress(random_smooth(Shape{32, 32}, rng, 5));
  const CompressedArray state0 = state;

  const long before = ops::lincomb_rebin_passes();
  state += 0.5 * a - 0.25 * b;
  EXPECT_EQ(ops::lincomb_rebin_passes() - before, 1);
  expect_bit_identical(
      state, ops::lincomb({{1.0, &state0}, {0.5, &a}, {-0.25, &b}}), "+=");

  const CompressedArray state1 = state;
  state -= 2.0 * a;
  expect_bit_identical(state, ops::lincomb({{1.0, &state1}, {-2.0, &a}}),
                       "-=");

  // Plain array increment too: state += a is the unit-weight case.
  const CompressedArray state2 = state;
  state += a;
  expect_bit_identical(state, ops::lincomb({{1.0, &state2}, {1.0, &a}}),
                       "+= array");
}

TEST(OpsExpr, ImplicitConversionDropsIntoCompressedArrayApis) {
  Compressor compressor(settings_for(Shape{8, 8}, FloatType::kFloat32,
                                     IndexType::kInt16));
  Rng rng(9051);
  NDArray<double> raw_x = random_smooth(Shape{32, 32}, rng, 5);
  NDArray<double> raw_y = random_smooth(Shape{32, 32}, rng, 5);
  const CompressedArray x = compressor.compress(raw_x);
  const CompressedArray y = compressor.compress(raw_y);

  // Scalar reductions accept an expression where they accept an array.
  EXPECT_EQ(ops::l2_norm(x - y), ops::l2_norm(ops::subtract(x, y)));

  // So does the codec: decompress evaluates the expression once.
  const NDArray<double> decoded = compressor.decompress(2.0 * (x - y) + 0.5);
  const NDArray<double> direct =
      compressor.decompress(ops::lincomb({{2.0, &x}, {-2.0, &y}}, 0.5));
  EXPECT_EQ(decoded, direct);

  // Temporaries inside one full expression are safe: they outlive the
  // evaluation (the documented idiomatic pattern).
  const CompressedArray diff = compressor.compress(raw_x) -
                               compressor.compress(raw_y);
  expect_bit_identical(diff, ops::subtract(x, y), "temporaries");
}

TEST(OpsExpr, BiasRequiresDcOnlyWhenNonzero) {
  // The expression layer inherits lincomb's contract: a nonzero bias needs
  // the DC coefficient, a zero bias does not.
  CompressorSettings pruned = settings_for(Shape{8, 8});
  std::vector<std::uint8_t> flags(64, 0);
  for (std::size_t k = 1; k <= 8; ++k) flags[k] = 1;  // DC (offset 0) pruned.
  pruned.mask = PruningMask::from_flags(Shape{8, 8}, std::move(flags));
  Compressor compressor(pruned);
  Rng rng(9061);
  const CompressedArray a =
      compressor.compress(random_smooth(Shape{16, 16}, rng));
  const CompressedArray b =
      compressor.compress(random_smooth(Shape{16, 16}, rng));
  EXPECT_THROW((void)(a + b + 1.0).eval(), std::invalid_argument);
  EXPECT_NO_THROW((void)(a + b).eval());
}

}  // namespace
}  // namespace pyblaz
