/// The determinism contract of the parallel block-execution runtime
/// (src/core/parallel/): 1-thread and N-thread runs must produce
/// byte-identical archives and bit-identical operation results.  Chunk
/// boundaries are a pure function of the range and grain — never of the
/// thread count — and parallel_reduce combines partials in chunk order, so
/// every floating-point rounding sequence is reproducible.
///
/// Thread counts are varied with parallel::set_num_threads() (the runtime
/// face of the CC_THREADS environment override); each scenario runs at 1,
/// 4, and the hardware default and compares results bitwise.

#include "core/parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/codec/serialization.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/util/rng.hpp"
#include "sim/fission/fission.hpp"
#include "sim/mri/mri.hpp"
#include "sim/shallow_water/swe.hpp"

namespace pyblaz {
namespace {

/// Restores the default thread count when a test exits, pass or fail.
struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::set_num_threads(0); }
};

std::vector<int> thread_counts() {
  ThreadCountGuard guard;  // Read the CC_THREADS / hardware default.
  parallel::set_num_threads(0);
  return {1, 4, parallel::num_threads()};
}

/// Run @p make at CC_THREADS ∈ {1, 4, hardware default} and require
/// bitwise-equal results.
template <typename Fn>
void expect_thread_invariant(Fn&& make, const char* what) {
  const std::vector<int> counts = thread_counts();
  ThreadCountGuard guard;
  parallel::set_num_threads(1);
  const auto reference = make();
  for (int threads : counts) {
    parallel::set_num_threads(threads);
    EXPECT_EQ(make(), reference) << what << " differs at " << threads
                                 << " threads";
  }
}

TEST(ThreadPool, ReportsAtLeastOneThread) {
  EXPECT_GE(parallel::num_threads(), 1);
}

TEST(ThreadPool, SetNumThreadsZeroRestoresDefault) {
  ThreadCountGuard guard;
  const int default_threads = parallel::num_threads();
  parallel::set_num_threads(7);
  EXPECT_EQ(parallel::num_threads(), 7);
  parallel::set_num_threads(0);
  EXPECT_EQ(parallel::num_threads(), default_threads);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadCountGuard guard;
  for (int threads : {1, 3, 4}) {
    parallel::set_num_threads(threads);
    for (index_t grain : {index_t{1}, index_t{3}, index_t{16}, index_t{1000}}) {
      std::vector<std::atomic<int>> hits(129);
      for (auto& h : hits) h.store(0);
      parallel::parallel_for(0, 129, grain, [&](index_t begin, index_t end) {
        for (index_t k = begin; k < end; ++k) hits[static_cast<std::size_t>(k)]++;
      });
      for (std::size_t k = 0; k < hits.size(); ++k)
        ASSERT_EQ(hits[k].load(), 1) << "index " << k << " grain " << grain
                                     << " threads " << threads;
    }
  }
}

TEST(ThreadPool, EmptyAndSingleChunkRanges) {
  int calls = 0;
  parallel::parallel_for(5, 5, 4, [&](index_t, index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel::parallel_for(5, 7, 100, [&](index_t begin, index_t end) {
    ++calls;
    EXPECT_EQ(begin, 5);
    EXPECT_EQ(end, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, OrderedReduceIsBitIdenticalAcrossThreadCounts) {
  // Values spanning many magnitudes make the sum association-sensitive, so
  // any thread-dependent combine order would show up bitwise.
  Rng rng(17);
  std::vector<double> values(10'000);
  for (auto& v : values) v = rng.normal() * std::exp(rng.uniform(-30.0, 30.0));

  expect_thread_invariant(
      [&] {
        return parallel::parallel_reduce(
            index_t{0}, static_cast<index_t>(values.size()), index_t{97}, 0.0,
            [&](index_t begin, index_t end, double acc) {
              for (index_t k = begin; k < end; ++k)
                acc += values[static_cast<std::size_t>(k)];
              return acc;
            },
            [](double x, double y) { return x + y; });
      },
      "ordered reduce");
}

TEST(ThreadPool, NestedParallelCallsRunInline) {
  ThreadCountGuard guard;
  parallel::set_num_threads(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  parallel::parallel_for(0, 8, 1, [&](index_t outer_begin, index_t outer_end) {
    for (index_t o = outer_begin; o < outer_end; ++o) {
      parallel::parallel_for(0, 8, 1, [&](index_t begin, index_t end) {
        for (index_t i = begin; i < end; ++i)
          hits[static_cast<std::size_t>(o * 8 + i)]++;
      });
    }
  });
  for (std::size_t k = 0; k < hits.size(); ++k) ASSERT_EQ(hits[k].load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateAndPoolSurvives) {
  ThreadCountGuard guard;
  parallel::set_num_threads(4);
  EXPECT_THROW(
      parallel::parallel_for(0, 100, 1,
                             [&](index_t begin, index_t) {
                               if (begin == 42)
                                 throw std::runtime_error("chunk 42");
                             }),
      std::runtime_error);
  // The pool must remain usable after a throwing job.
  std::atomic<int> total{0};
  parallel::parallel_for(0, 100, 1, [&](index_t begin, index_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 100);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: archives and operation results across the stack.

CompressorSettings test_settings() {
  CompressorSettings settings;
  settings.block_shape = Shape{8, 4, 8};
  settings.float_type = FloatType::kFloat32;
  settings.index_type = IndexType::kInt8;
  settings.transform = TransformKind::kDCT;
  settings.mask = PruningMask::keep_fraction(settings.block_shape, 0.5);
  return settings;
}

TEST(ThreadInvariance, CompressedArraysAreBitIdentical) {
  Rng rng(23);
  // Ragged shape: edge blocks exercise the gather/scatter padding too.
  const NDArray<double> array = random_smooth(Shape{37, 18, 29}, rng, 5);
  Compressor compressor(test_settings());
  expect_thread_invariant(
      [&] {
        const CompressedArray compressed = compressor.compress(array);
        return std::make_tuple(compressed.biggest, compressed.indices);
      },
      "compress");
}

TEST(ThreadInvariance, ArchivesAreByteIdentical) {
  Rng rng(29);
  const NDArray<double> array = random_smooth(Shape{64, 64, 33}, rng, 5);
  Compressor compressor(test_settings());
  ThreadCountGuard guard;
  parallel::set_num_threads(1);
  const CompressedArray compressed = compressor.compress(array);
  const std::vector<std::uint8_t> reference = serialize(compressed);
  ASSERT_TRUE(is_chunked_stream(reference));
  for (int threads : thread_counts()) {
    parallel::set_num_threads(threads);
    // Byte-identical archive: both the re-encode of the same array and the
    // chunked serializer itself must be thread-count independent.
    EXPECT_EQ(serialize(compressor.compress(array)), reference)
        << "archive differs at " << threads << " threads";
    // And decode at this thread count restores the exact payload.
    const CompressedArray restored = deserialize(reference);
    EXPECT_EQ(restored.biggest, compressed.biggest);
    EXPECT_EQ(restored.indices, compressed.indices);
  }
}

TEST(ThreadInvariance, DecompressionIsBitIdentical) {
  Rng rng(31);
  const NDArray<double> array = random_smooth(Shape{37, 18, 29}, rng, 5);
  Compressor compressor(test_settings());
  const CompressedArray compressed = compressor.compress(array);
  expect_thread_invariant([&] { return compressor.decompress(compressed); },
                          "decompress");
}

TEST(ThreadInvariance, OpsAreBitIdentical) {
  Rng rng(37);
  CompressorSettings settings = test_settings();
  settings.mask.reset();  // Keep-all so every op is applicable.
  Compressor compressor(settings);
  const NDArray<double> plain_a = random_smooth(Shape{40, 20, 24}, rng, 5);
  const NDArray<double> plain_b = random_smooth(Shape{40, 20, 24}, rng, 5);
  const CompressedArray a = compressor.compress(plain_a);
  const CompressedArray b = compressor.compress(plain_b);

  expect_thread_invariant(
      [&] {
        const CompressedArray sum = ops::add(a, b);
        const CompressedArray mix = ops::linear_combination(2.5, a, -0.75, b);
        const CompressedArray shifted = ops::add_scalar(a, 0.125);
        return std::make_tuple(sum.biggest, sum.indices, mix.biggest,
                               mix.indices, shifted.biggest, shifted.indices);
      },
      "blockwise maps");

  expect_thread_invariant(
      [&] {
        return std::make_tuple(ops::dot(a, b), ops::mean(a), ops::sum(b),
                               ops::covariance(a, b), ops::variance(a),
                               ops::l2_norm(a), ops::dot(a, plain_b));
      },
      "reductions");

  expect_thread_invariant(
      [&] {
        return std::make_tuple(ops::blockwise_mean(a),
                               ops::blockwise_covariance(a, b),
                               ops::blockwise_l2_norm(b));
      },
      "blockwise statistics");
}

TEST(ThreadInvariance, SimulationsAreBitIdentical) {
  expect_thread_invariant(
      [&] {
        sim::SweConfig config;
        config.nx = 32;
        config.ny = 64;
        sim::ShallowWaterModel model(config);
        model.run(5);
        return std::make_tuple(model.surface_height(), model.max_speed());
      },
      "shallow water stepping");

  expect_thread_invariant(
      [&] {
        sim::FissionConfig config;
        config.grid = Shape{16, 16, 32};
        return sim::neutron_density(688, config);
      },
      "fission density");

  expect_thread_invariant(
      [&] {
        sim::MriVolumeConfig config{.depth = 12, .height = 64, .width = 64,
                                    .seed = 3};
        return sim::flair_volume(config);
      },
      "mri volume");
}

}  // namespace
}  // namespace pyblaz
