#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "core/cache/block_cache.hpp"
#include "core/codec/compressor.hpp"
#include "core/codec/serialization.hpp"
#include "core/error/error.hpp"
#include "core/fault/fault.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

struct FaultGuard {
  ~FaultGuard() { fault::disarm_all(); }
};

struct SchedulerGuard {
  ~SchedulerGuard() {
    parallel::set_serialize_regions(false);
    parallel::set_num_threads(0);
    parallel::set_num_shards(0);
  }
};

/// Restores the process-wide default cache capacity (tests run in one
/// process; the suite's default is cache-off).
struct CacheCapacityGuard {
  ~CacheCapacityGuard() { cache::set_default_capacity(0); }
};

// ---------------------------------------------------------------------------
// BlockCache unit semantics (synthetic fills, no codec involved).
// ---------------------------------------------------------------------------

cache::BlockCache::FillFn pattern_fill(index_t kb, index_t volume) {
  return [kb, volume](double* buffer) {
    for (index_t j = 0; j < volume; ++j)
      buffer[j] = static_cast<double>(kb * volume + j);
  };
}

TEST(BlockCacheUnit, HitMissCountingAndPayload) {
  cache::BlockCache cache(4, 8, /*num_shards=*/1);
  auto first = cache.fetch(0, pattern_fill(0, 8));
  auto again = cache.fetch(0, pattern_fill(0, 8));
  EXPECT_EQ(first.data(), again.data());
  EXPECT_EQ(again[5], 5.0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.resident_blocks(), 1);
  EXPECT_EQ(cache.dirty_blocks(), 0);
}

TEST(BlockCacheUnit, LruEvictionOrder) {
  cache::BlockCache cache(2, 4, /*num_shards=*/1);
  (void)cache.fetch(0, pattern_fill(0, 4));
  (void)cache.fetch(1, pattern_fill(1, 4));
  (void)cache.fetch(0, pattern_fill(0, 4));  // 0 is now most recent.
  (void)cache.fetch(2, pattern_fill(2, 4));  // Evicts 1, the LRU block.
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.resident_blocks(), 2);
}

TEST(BlockCacheUnit, DirtyBlocksArePinned) {
  cache::BlockCache cache(1, 4, /*num_shards=*/1);
  cache.write(5, pattern_fill(5, 4), [](double* buffer) { buffer[0] = -1.0; });
  // A stream of clean fetches cycles the one clean slot but can never evict
  // the dirty block.
  for (index_t kb = 0; kb < 4; ++kb) (void)cache.fetch(kb, pattern_fill(kb, 4));
  EXPECT_TRUE(cache.contains(5));
  EXPECT_EQ(cache.dirty_blocks(), 1);
  EXPECT_EQ(cache.resident_blocks(), 2);  // Pinned dirty + one clean.
}

TEST(BlockCacheUnit, FlushWritesBackAscendingThenTrims) {
  cache::BlockCache cache(2, 4, /*num_shards=*/1);
  for (index_t kb : {3, 1, 2})
    cache.write(kb, pattern_fill(kb, 4),
                [](double* buffer) { buffer[0] = 9.0; });
  std::vector<index_t> order;
  const index_t written = cache.flush(
      [&](index_t kb, const double* block) {
        order.push_back(kb);
        EXPECT_EQ(block[0], 9.0);
      });
  EXPECT_EQ(written, 3);
  EXPECT_EQ(order, (std::vector<index_t>{1, 2, 3}));
  EXPECT_EQ(cache.dirty_blocks(), 0);
  EXPECT_EQ(cache.stats().writebacks, 3u);
  // The previously pinned population trims back to capacity.
  EXPECT_LE(cache.resident_blocks(), 2);
}

TEST(BlockCacheUnit, RefKeepsEvictedBufferAlive) {
  cache::BlockCache cache(1, 4, /*num_shards=*/1);
  auto ref = cache.fetch(0, pattern_fill(0, 4));
  (void)cache.fetch(1, pattern_fill(1, 4));  // Evicts block 0.
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(ref[3], 3.0);  // The proxy still owns the buffer.
}

TEST(BlockCacheUnit, DefaultCapacityOverride) {
  CacheCapacityGuard guard;
  cache::set_default_capacity(7);
  EXPECT_EQ(cache::default_capacity_blocks(), 7);
  cache::set_default_capacity(-3);
  EXPECT_EQ(cache::default_capacity_blocks(), 0);
}

TEST(BlockCacheUnit, ShardedKeysLandInDistinctShards) {
  cache::BlockCache cache(16, 4);  // Default sharding: min(8, capacity) = 8.
  EXPECT_EQ(cache.num_shards(), 8);
  for (index_t kb = 0; kb < 16; ++kb) (void)cache.fetch(kb, pattern_fill(kb, 4));
  EXPECT_EQ(cache.resident_blocks(), 16);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// Random-access reads: get / decompress_roi vs full decompress.
// ---------------------------------------------------------------------------

struct AccessCase {
  const char* name;
  Shape array_shape;
  Shape block_shape;
  FloatType float_type;
  IndexType index_type;
  TransformKind transform;
  bool prune_half = false;
  bool prune_dc = false;
};

CompressorSettings settings_for(const AccessCase& p) {
  CompressorSettings settings{.block_shape = p.block_shape,
                              .float_type = p.float_type,
                              .index_type = p.index_type,
                              .transform = p.transform};
  if (p.prune_half)
    settings.mask = PruningMask::keep_fraction(p.block_shape, 0.5);
  if (p.prune_dc) {
    // Adversarial: the DC coefficient itself is pruned away.
    std::vector<std::uint8_t> flags(
        static_cast<std::size_t>(p.block_shape.volume()), 0);
    for (std::size_t j = 1; j < flags.size() && j < 7; ++j) flags[j] = 1;
    settings.mask = PruningMask::from_flags(p.block_shape, std::move(flags));
  }
  return settings;
}

class RandomAccess : public ::testing::TestWithParam<AccessCase> {};

TEST_P(RandomAccess, GetMatchesFullDecompressBitForBit) {
  CacheCapacityGuard guard;
  const auto& p = GetParam();
  Compressor compressor(settings_for(p));
  Rng rng(907);
  const NDArray<double> data = random_smooth(p.array_shape, rng);
  const CompressedArray compressed = compressor.compress(data);
  const NDArray<double> full = compressor.decompress(compressed);

  for (index_t capacity : {index_t{0}, index_t{1}, index_t{3}}) {
    cache::set_default_capacity(capacity);
    const CompressedArray fresh = compressed;  // Fresh decode state per leg.
    for_each_index(p.array_shape, [&](const std::vector<index_t>& idx) {
      EXPECT_EQ(fresh.get(idx), full.at(idx)) << "capacity " << capacity;
    });
    if (capacity > 0) {
      ASSERT_NE(fresh.block_cache(), nullptr);
      EXPECT_GT(fresh.cached_blocks(), 0);
    } else {
      EXPECT_EQ(fresh.block_cache(), nullptr);
    }
  }
}

TEST_P(RandomAccess, RoiMatchesFullDecompressBitForBit) {
  CacheCapacityGuard guard;
  const auto& p = GetParam();
  Compressor compressor(settings_for(p));
  Rng rng(908);
  const NDArray<double> data = random_smooth(p.array_shape, rng);
  const CompressedArray compressed = compressor.compress(data);
  const NDArray<double> full = compressor.decompress(compressed);
  const int d = p.array_shape.ndim();

  // Full array, one element, and an off-grid interior window per axis.
  std::vector<std::pair<std::vector<index_t>, std::vector<index_t>>> regions;
  std::vector<index_t> zeros(static_cast<std::size_t>(d), 0);
  std::vector<index_t> ones(static_cast<std::size_t>(d), 1);
  regions.emplace_back(zeros, p.array_shape.dims());
  regions.emplace_back(zeros, ones);
  std::vector<index_t> lo(static_cast<std::size_t>(d)), hi(lo);
  for (int axis = 0; axis < d; ++axis) {
    lo[static_cast<std::size_t>(axis)] =
        std::min<index_t>(1, p.array_shape[axis] - 1);
    hi[static_cast<std::size_t>(axis)] = p.array_shape[axis];
  }
  regions.emplace_back(lo, hi);

  for (index_t capacity : {index_t{0}, index_t{2}, index_t{64}}) {
    cache::set_default_capacity(capacity);
    const CompressedArray fresh = compressed;
    for (const auto& [rlo, rhi] : regions) {
      const NDArray<double> roi = fresh.decompress_roi(rlo, rhi);
      for_each_index(roi.shape(), [&](const std::vector<index_t>& idx) {
        std::vector<index_t> src = idx;
        for (int axis = 0; axis < d; ++axis)
          src[static_cast<std::size_t>(axis)] +=
              rlo[static_cast<std::size_t>(axis)];
        EXPECT_EQ(roi.at(idx), full.at(src)) << "capacity " << capacity;
      });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomAccess,
    ::testing::Values(
        AccessCase{"ragged_2d", Shape{7, 5}, Shape{4, 4}, FloatType::kFloat32,
                   IndexType::kInt8, TransformKind::kDCT},
        AccessCase{"haar_1d", Shape{21}, Shape{8}, FloatType::kFloat32,
                   IndexType::kInt16, TransformKind::kHaar},
        AccessCase{"pruned_3d", Shape{5, 6, 7}, Shape{2, 4, 8},
                   FloatType::kFloat64, IndexType::kInt16, TransformKind::kDCT,
                   /*prune_half=*/true},
        AccessCase{"pruned_dc", Shape{12, 9}, Shape{4, 4}, FloatType::kFloat32,
                   IndexType::kInt8, TransformKind::kDCT, /*prune_half=*/false,
                   /*prune_dc=*/true}),
    [](const auto& info) { return info.param.name; });

TEST(RandomAccessValidation, RejectsBadIndicesAndRegions) {
  Compressor compressor({.block_shape = Shape{4, 4}});
  Rng rng(11);
  const CompressedArray compressed =
      compressor.compress(random_smooth(Shape{8, 8}, rng));
  EXPECT_THROW((void)compressed.get({8, 0}), std::out_of_range);
  EXPECT_THROW((void)compressed.get({0}), std::out_of_range);
  EXPECT_THROW((void)compressed.decompress_roi({0, 0}, {0, 4}),
               std::invalid_argument);
  EXPECT_THROW((void)compressed.decompress_roi({0, 0}, {9, 4}),
               std::invalid_argument);
  EXPECT_THROW((void)compressed.decompress_roi({0}, {4}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Write path: dirty blocks, flush, bit-identical write-back.
// ---------------------------------------------------------------------------

CompressedArray compress_case(const Compressor& compressor, const Shape& shape,
                              unsigned seed) {
  Rng rng(seed);
  return compressor.compress(random_smooth(shape, rng));
}

TEST(WriteBack, SetIsVisibleThroughReadsBeforeFlush) {
  CacheCapacityGuard guard;
  Compressor compressor({.block_shape = Shape{4, 4}});

  // Cache on: pre-flush reads see exactly the written (quantized) value —
  // the decoded buffer is authoritative until flush re-encodes it.
  cache::set_default_capacity(8);
  CompressedArray cached = compress_case(compressor, Shape{8, 8}, 21);
  cached.set({3, 3}, 0.25);
  EXPECT_EQ(cached.get({3, 3}), quantize(0.25, cached.float_type));
  NDArray<double> roi = cached.decompress_roi({0, 0}, {4, 4});
  EXPECT_EQ(roi.at({3, 3}), cached.get({3, 3}));

  // Cache off: set() re-encodes immediately (lossy, as the codec is), so
  // reads reflect the round-tripped value — and agree with a full decode.
  cache::set_default_capacity(0);
  CompressedArray direct = compress_case(compressor, Shape{8, 8}, 21);
  direct.set({3, 3}, 0.25);
  const NDArray<double> full = compressor.decompress(direct);
  EXPECT_EQ(direct.get({3, 3}), full.at({3, 3}));
  roi = direct.decompress_roi({0, 0}, {4, 4});
  EXPECT_EQ(roi.at({3, 3}), direct.get({3, 3}));
}

TEST(WriteBack, FlushedBlocksBitIdenticalToDirectReencode) {
  CacheCapacityGuard guard;
  cache::set_default_capacity(4);
  Compressor compressor({.block_shape = Shape{4, 4},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt8});
  const CompressedArray original = compress_case(compressor, Shape{11, 9}, 33);
  const index_t kept = original.kept_per_block();

  // Touch two of the six blocks through the cache...
  CompressedArray cached = original;
  cached.set({0, 0}, 3.5);
  cached.set({1, 2}, -1.25);   // Same block as (0, 0).
  cached.set({10, 8}, 0.125);  // The ragged corner block.
  EXPECT_EQ(cached.dirty_cached_blocks(), 2);
  EXPECT_EQ(cached.flush_cache(), 2);
  EXPECT_EQ(cached.dirty_cached_blocks(), 0);

  // ...and re-encode the same decoded data directly through the compressor.
  NDArray<double> decoded = compressor.decompress(original);
  decoded.at({0, 0}) = static_cast<double>(quantize(3.5, original.float_type));
  decoded.at({1, 2}) =
      static_cast<double>(quantize(-1.25, original.float_type));
  decoded.at({10, 8}) =
      static_cast<double>(quantize(0.125, original.float_type));
  const CompressedArray direct = compressor.compress(decoded);

  // Touched blocks match the direct re-encode bit for bit; untouched blocks
  // keep their original bytes (flush never re-rounds them).
  const Shape grid = original.block_grid();
  const std::vector<index_t> touched = {0 * grid[1] + 0, 2 * grid[1] + 2};
  for (index_t kb = 0; kb < original.num_blocks(); ++kb) {
    const bool is_touched =
        std::find(touched.begin(), touched.end(), kb) != touched.end();
    const CompressedArray& expected = is_touched ? direct : original;
    EXPECT_EQ(cached.biggest[static_cast<std::size_t>(kb)],
              expected.biggest[static_cast<std::size_t>(kb)])
        << "block " << kb;
    for (index_t j = 0; j < kept; ++j)
      EXPECT_EQ(cached.indices.get(static_cast<std::size_t>(kb * kept + j)),
                expected.indices.get(static_cast<std::size_t>(kb * kept + j)))
          << "block " << kb << " slot " << j;
  }
}

TEST(WriteBack, FullySetArrayMatchesDirectReencodeBytes) {
  CacheCapacityGuard guard;
  cache::set_default_capacity(2);  // Tiny cache: dirty pinning must not care.
  Compressor compressor({.block_shape = Shape{4, 4}});
  const CompressedArray original = compress_case(compressor, Shape{8, 12}, 47);

  CompressedArray cached = original;
  NDArray<double> decoded = compressor.decompress(original);
  const Shape grid = original.block_grid();
  for_each_index(grid, [&](const std::vector<index_t>& block_idx) {
    // One write per block, so every block is dirty.
    std::vector<index_t> element = block_idx;
    for (std::size_t axis = 0; axis < element.size(); ++axis)
      element[axis] *= original.block_shape[static_cast<int>(axis)];
    const double value =
        0.5 + static_cast<double>(element[0]) - static_cast<double>(element[1]);
    cached.set(element, value);
    decoded.at(element) =
        static_cast<double>(quantize(value, original.float_type));
  });
  EXPECT_EQ(cached.dirty_cached_blocks(), original.num_blocks());
  cached.flush_cache();

  const CompressedArray direct = compressor.compress(decoded);
  EXPECT_EQ(serialize(cached), serialize(direct));
}

TEST(WriteBack, CacheOffSingleWritesMatchCachedFlush) {
  CacheCapacityGuard guard;
  Compressor compressor({.block_shape = Shape{4, 4}});
  const CompressedArray original = compress_case(compressor, Shape{9, 7}, 55);

  cache::set_default_capacity(0);
  CompressedArray direct = original;
  direct.set({0, 0}, 1.5);
  direct.set({8, 6}, -2.5);

  cache::set_default_capacity(16);
  CompressedArray cached = original;
  cached.set({0, 0}, 1.5);
  cached.set({8, 6}, -2.5);
  cached.flush_cache();

  EXPECT_EQ(serialize(direct), serialize(cached));
}

TEST(WriteBack, DirtyArchiveGuards) {
  CacheCapacityGuard guard;
  cache::set_default_capacity(8);
  Compressor compressor({.block_shape = Shape{4, 4}});
  CompressedArray array = compress_case(compressor, Shape{8, 8}, 61);
  array.set({1, 1}, 2.0);
  EXPECT_THROW((void)serialize(array), std::logic_error);
  EXPECT_THROW((void)serialize_v2(array), std::logic_error);
  EXPECT_THROW((void)compressor.decompress(array), std::logic_error);
  EXPECT_THROW((void)CompressedArray(array), std::logic_error);

  // Moves carry the dirty cache along; flushing afterwards works.
  CompressedArray moved = std::move(array);
  EXPECT_EQ(moved.dirty_cached_blocks(), 1);
  EXPECT_EQ(moved.flush_cache(), 1);
  EXPECT_NO_THROW((void)serialize(moved));

  // invalidate_cache() drops unflushed writes entirely.
  moved.set({1, 1}, -4.0);
  moved.invalidate_cache();
  EXPECT_EQ(moved.dirty_cached_blocks(), 0);
  EXPECT_NO_THROW((void)serialize(moved));
}

// ---------------------------------------------------------------------------
// Determinism: capacity / threads / shards never change a single bit.
// ---------------------------------------------------------------------------

TEST(CacheDeterminism, BitIdenticalAcrossCapacityThreadsShards) {
  CacheCapacityGuard capacity_guard;
  SchedulerGuard scheduler_guard;
  Compressor compressor({.block_shape = Shape{4, 4},
                         .index_type = IndexType::kInt16});
  const CompressedArray compressed =
      compress_case(compressor, Shape{19, 13}, 71);

  auto read_everything = [&](const CompressedArray& array) {
    std::vector<double> out;
    const NDArray<double> roi = array.decompress_roi({2, 1}, {17, 12});
    out.insert(out.end(), roi.vector().begin(), roi.vector().end());
    for (index_t i = 0; i < 19; i += 3)
      for (index_t j = 0; j < 13; j += 2) out.push_back(array.get({i, j}));
    const NDArray<double> map =
        ops::structural_similarity_map(array, array, {});
    out.insert(out.end(), map.vector().begin(), map.vector().end());
    return out;
  };

  cache::set_default_capacity(0);
  parallel::set_num_threads(1);
  const std::vector<double> baseline = read_everything(compressed);

  for (index_t capacity : {index_t{0}, index_t{1}, index_t{3}, index_t{64}}) {
    for (int threads : {1, 4}) {
      for (int shards : {1, 4}) {
        cache::set_default_capacity(capacity);
        parallel::set_num_threads(threads);
        parallel::set_num_shards(shards);
        const CompressedArray fresh = compressed;
        const std::vector<double> got = read_everything(fresh);
        ASSERT_EQ(got.size(), baseline.size());
        EXPECT_EQ(0, std::memcmp(got.data(), baseline.data(),
                                 got.size() * sizeof(double)))
            << "capacity " << capacity << " threads " << threads << " shards "
            << shards;
      }
    }
  }
}

TEST(CacheDeterminism, ConcurrentRoiReadsMatchReference) {
  CacheCapacityGuard guard;
  cache::set_default_capacity(8);
  Compressor compressor({.block_shape = Shape{4, 4}});
  const CompressedArray compressed =
      compress_case(compressor, Shape{24, 24}, 83);
  const NDArray<double> full = compressor.decompress(compressed);

  constexpr int kThreads = 4;
  constexpr int kRounds = 12;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int round = 0; round < kRounds; ++round) {
        const index_t lo0 = (t * 3 + round) % 12;
        const index_t lo1 = (t * 5 + round * 2) % 12;
        const NDArray<double> roi =
            compressed.decompress_roi({lo0, lo1}, {lo0 + 9, lo1 + 9});
        for_each_index(roi.shape(), [&](const std::vector<index_t>& idx) {
          if (roi.at(idx) != full.at({idx[0] + lo0, idx[1] + lo1}))
            ++failures[static_cast<std::size_t>(t)];
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;

  ASSERT_NE(compressed.block_cache(), nullptr);
  const auto stats = compressed.block_cache()->stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

// ---------------------------------------------------------------------------
// Fused SSIM map stays bit-identical to the blockwise recomposition.
// ---------------------------------------------------------------------------

TEST(FusedSimilarityMap, MatchesBlockwiseRecomposition) {
  Compressor compressor({.block_shape = Shape{4, 4}});
  const CompressedArray a = compress_case(compressor, Shape{13, 10}, 91);
  const CompressedArray b = compress_case(compressor, Shape{13, 10}, 92);
  const ops::SsimParams params;

  const NDArray<double> fused = ops::structural_similarity_map(a, b, params);

  const NDArray<double> mu_a = ops::blockwise_mean(a);
  const NDArray<double> mu_b = ops::blockwise_mean(b);
  const NDArray<double> var_a = ops::blockwise_variance(a);
  const NDArray<double> var_b = ops::blockwise_variance(b);
  const NDArray<double> cov_ab = ops::blockwise_covariance(a, b);
  for (index_t k = 0; k < fused.size(); ++k) {
    const double ma = mu_a[k], mb = mu_b[k];
    const double va = std::max(var_a[k], 0.0), vb = std::max(var_b[k], 0.0);
    const double sa = std::sqrt(va), sb = std::sqrt(vb);
    const double sl = params.luminance_stabilizer;
    const double sc = params.contrast_stabilizer;
    const double luminance = (2.0 * ma * mb + sl) / (ma * ma + mb * mb + sl);
    const double contrast = (2.0 * sa * sb + sc) / (va + vb + sc);
    const double structure = (cov_ab[k] + sc / 2.0) / (sa * sb + sc / 2.0);
    const double expected = std::pow(luminance, params.luminance_weight) *
                            std::pow(contrast, params.contrast_weight) *
                            std::pow(structure, params.structure_weight);
    EXPECT_EQ(fused[k], expected) << "block " << k;
  }
}

// ---------------------------------------------------------------------------
// Telemetry surfacing and fault injection.
// ---------------------------------------------------------------------------

TEST(CacheTelemetry, CountersAppearInSnapshot) {
  CacheCapacityGuard guard;
  cache::set_default_capacity(4);
  Compressor compressor({.block_shape = Shape{4, 4}});
  const CompressedArray compressed = compress_case(compressor, Shape{8, 8}, 97);
  (void)compressed.get({0, 0});
  (void)compressed.get({0, 0});

  const auto snapshot = telemetry::snapshot();
  std::uint64_t hits = 0, misses = 0;
  bool lookup_seen = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "cache.hits") hits = counter.value;
    if (counter.name == "cache.misses") misses = counter.value;
  }
  for (const auto& histogram : snapshot.histograms)
    if (histogram.name == "cache.lookup_ns" && histogram.count > 0)
      lookup_seen = true;
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);
  EXPECT_TRUE(lookup_seen);
}

TEST(CacheFault, FillAllocationFailureSurfacesErrorAndCacheStaysConsistent) {
  CacheCapacityGuard capacity_guard;
  FaultGuard fault_guard;
  cache::set_default_capacity(8);
  Compressor compressor({.block_shape = Shape{4, 4}});
  const CompressedArray compressed =
      compress_case(compressor, Shape{8, 8}, 101);

  (void)compressed.get({0, 0});  // Block 0 fills successfully.
  ASSERT_TRUE(fault::arm("cache.fill.alloc:badalloc,nth=0"));
  try {
    (void)compressed.get({0, 7});  // Block 1's fill allocation fails.
    FAIL() << "expected cc::Error";
  } catch (const cc::Error& error) {
    EXPECT_EQ(error.code(), cc::ErrorCode::kResourceExhausted);
    EXPECT_EQ(error.site(), "cache.fill.alloc");
  }
  EXPECT_GE(fault::fired("cache.fill.alloc"), 1u);

  // The failed fill inserted nothing; the cache still serves and can fill
  // the block once allocation succeeds again.
  EXPECT_EQ(compressed.cached_blocks(), 1);
  fault::disarm_all();
  const NDArray<double> full = compressor.decompress(compressed);
  EXPECT_EQ(compressed.get({0, 7}), full.at({0, 7}));
  EXPECT_EQ(compressed.cached_blocks(), 2);
}

}  // namespace
}  // namespace pyblaz
