/// Kernel-layer equivalence tests: the factorized fast transforms must agree
/// with the dense matrix path (the oracle) to <= 1e-12, the fused
/// gather/quantize/transform/rebin compressor pipeline must be bit-identical
/// to an unfused reimplementation of the seed's step-by-step flow, and the
/// shared rebin/unbin kernels must match their scalar definitions exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/blocking/blocking.hpp"
#include "core/codec/compressor.hpp"
#include "core/kernels/fast_transform.hpp"
#include "core/kernels/rebin.hpp"
#include "core/transform/dct.hpp"
#include "core/transform/haar.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {
namespace {

// ------------------------------------------------------ fast-vs-dense oracle

struct KernelCase {
  TransformKind kind;
  Shape block_shape;
};

class FastVsDense : public ::testing::TestWithParam<KernelCase> {};

TEST_P(FastVsDense, ForwardMatchesDenseOracle) {
  const auto& param = GetParam();
  for (int axis = 0; axis < param.block_shape.ndim(); ++axis)
    ASSERT_TRUE(
        kernels::fast_axis_supported(param.kind, param.block_shape[axis]));

  BlockTransform fast(param.kind, param.block_shape, TransformImpl::kAuto);
  BlockTransform dense(param.kind, param.block_shape, TransformImpl::kDense);
  Rng rng(101);
  NDArray<double> block = random_normal(param.block_shape, rng);

  std::vector<double> via_fast = block.vector();
  std::vector<double> via_dense = block.vector();
  fast.forward(via_fast.data());
  dense.forward(via_dense.data());

  for (index_t k = 0; k < block.size(); ++k)
    EXPECT_NEAR(via_fast[static_cast<std::size_t>(k)],
                via_dense[static_cast<std::size_t>(k)], 1e-12)
        << "coefficient " << k << " of " << param.block_shape.to_string();
}

TEST_P(FastVsDense, InverseMatchesDenseOracle) {
  const auto& param = GetParam();
  BlockTransform fast(param.kind, param.block_shape, TransformImpl::kAuto);
  BlockTransform dense(param.kind, param.block_shape, TransformImpl::kDense);
  Rng rng(103);
  NDArray<double> block = random_normal(param.block_shape, rng);

  std::vector<double> via_fast = block.vector();
  std::vector<double> via_dense = block.vector();
  fast.inverse(via_fast.data());
  dense.inverse(via_dense.data());

  for (index_t k = 0; k < block.size(); ++k)
    EXPECT_NEAR(via_fast[static_cast<std::size_t>(k)],
                via_dense[static_cast<std::size_t>(k)], 1e-12)
        << "coefficient " << k << " of " << param.block_shape.to_string();
}

TEST_P(FastVsDense, FastRoundTripIsIdentity) {
  const auto& param = GetParam();
  BlockTransform fast(param.kind, param.block_shape, TransformImpl::kAuto);
  Rng rng(107);
  NDArray<double> block = random_uniform(param.block_shape, rng, -4.0, 4.0);
  std::vector<double> data = block.vector();
  fast.forward(data.data());
  fast.inverse(data.data());
  for (index_t k = 0; k < block.size(); ++k)
    EXPECT_NEAR(data[static_cast<std::size_t>(k)], block[k], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllDispatchedSizes, FastVsDense,
    ::testing::Values(
        // Every dispatched DCT size, exercised once as the contiguous last
        // axis (1-D) and once strided.
        KernelCase{TransformKind::kDCT, Shape{2}},
        KernelCase{TransformKind::kDCT, Shape{4}},
        KernelCase{TransformKind::kDCT, Shape{8}},
        KernelCase{TransformKind::kDCT, Shape{16}},
        KernelCase{TransformKind::kDCT, Shape{32}},
        KernelCase{TransformKind::kDCT, Shape{64}},
        KernelCase{TransformKind::kDCT, Shape{128}},
        KernelCase{TransformKind::kDCT, Shape{2, 2}},
        KernelCase{TransformKind::kDCT, Shape{4, 4}},
        KernelCase{TransformKind::kDCT, Shape{8, 8}},
        KernelCase{TransformKind::kDCT, Shape{16, 16}},
        KernelCase{TransformKind::kDCT, Shape{32, 32}},
        KernelCase{TransformKind::kDCT, Shape{64, 8}},
        KernelCase{TransformKind::kDCT, Shape{4, 64}},
        KernelCase{TransformKind::kDCT, Shape{128, 4}},
        KernelCase{TransformKind::kDCT, Shape{2, 128}},
        KernelCase{TransformKind::kDCT, Shape{8, 8, 8}},
        KernelCase{TransformKind::kDCT, Shape{4, 8, 16}},
        KernelCase{TransformKind::kDCT, Shape{32, 4, 2}},
        KernelCase{TransformKind::kDCT, Shape{1, 8, 1}},
        KernelCase{TransformKind::kDCT, Shape{2, 2, 2, 2}},
        KernelCase{TransformKind::kHaar, Shape{2}},
        KernelCase{TransformKind::kHaar, Shape{4}},
        KernelCase{TransformKind::kHaar, Shape{8}},
        KernelCase{TransformKind::kHaar, Shape{16}},
        KernelCase{TransformKind::kHaar, Shape{32}},
        KernelCase{TransformKind::kHaar, Shape{64}},
        KernelCase{TransformKind::kHaar, Shape{8, 8}},
        KernelCase{TransformKind::kHaar, Shape{16, 32}},
        KernelCase{TransformKind::kHaar, Shape{8, 8, 8}},
        KernelCase{TransformKind::kHaar, Shape{4, 16, 8}}));

/// Block shapes mixing a dense-fallback axis (non-power-of-two, so only the
/// DCT can produce one) with fast axes: the only configuration exercising
/// the swap/no-swap buffer tracking in BlockTransform::apply, where a dense
/// axis ping-pongs into scratch and a subsequent fast axis transforms it in
/// place.
TEST(MixedFastAndDenseAxes, MatchDenseOracle) {
  Rng rng(137);
  for (const Shape& shape :
       {Shape{3, 8}, Shape{8, 3}, Shape{5, 8, 4}, Shape{4, 3, 8}}) {
    BlockTransform fast(TransformKind::kDCT, shape, TransformImpl::kAuto);
    BlockTransform dense(TransformKind::kDCT, shape, TransformImpl::kDense);
    NDArray<double> block = random_normal(shape, rng);
    for (bool forward : {true, false}) {
      std::vector<double> via_fast = block.vector();
      std::vector<double> via_dense = block.vector();
      forward ? fast.forward(via_fast.data()) : fast.inverse(via_fast.data());
      forward ? dense.forward(via_dense.data())
              : dense.inverse(via_dense.data());
      for (index_t k = 0; k < block.size(); ++k)
        EXPECT_NEAR(via_fast[static_cast<std::size_t>(k)],
                    via_dense[static_cast<std::size_t>(k)], 1e-12)
            << shape.to_string() << " forward=" << forward << " coeff " << k;
    }
    std::vector<double> roundtrip = block.vector();
    fast.forward(roundtrip.data());
    fast.inverse(roundtrip.data());
    for (index_t k = 0; k < block.size(); ++k)
      EXPECT_NEAR(roundtrip[static_cast<std::size_t>(k)], block[k], 1e-12)
          << shape.to_string() << " roundtrip " << k;
  }
}

/// Every supported (kind, n) exercised directly at the kernel level (the
/// BlockTransform tests above only cover sizes kAuto actually dispatches),
/// against a straightforward dense contraction, for a contiguous and a
/// strided inner extent.
TEST(FastKernelAxis, MatchesDenseContractionForAllSupportedSizes) {
  Rng rng(131);
  for (TransformKind kind : {TransformKind::kDCT, TransformKind::kHaar}) {
    for (index_t n : {index_t{2}, index_t{4}, index_t{8}, index_t{16},
                      index_t{32}, index_t{64}, index_t{128}}) {
      ASSERT_TRUE(kernels::fast_axis_supported(kind, n));
      const auto h = kind == TransformKind::kDCT
                         ? dct_matrix(static_cast<int>(n))
                         : haar_matrix(static_cast<int>(n));
      for (index_t inner : {index_t{1}, index_t{3}}) {
        const index_t outer = 2;
        NDArray<double> noise = random_normal(Shape{outer * n * inner}, rng);
        for (bool forward : {true, false}) {
          std::vector<double> data = noise.vector();
          std::vector<double> tmp(static_cast<std::size_t>(n * inner));
          kernels::fast_transform_axis(kind, data.data(), tmp.data(), n, outer,
                                       inner, forward);
          for (index_t o = 0; o < outer; ++o) {
            for (index_t i = 0; i < inner; ++i) {
              for (index_t k2 = 0; k2 < n; ++k2) {
                double expected = 0.0;
                for (index_t k = 0; k < n; ++k) {
                  const double w =
                      forward ? h[static_cast<std::size_t>(k * n + k2)]
                              : h[static_cast<std::size_t>(k2 * n + k)];
                  expected += w * noise[(o * n + k) * inner + i];
                }
                EXPECT_NEAR(data[static_cast<std::size_t>((o * n + k2) * inner + i)],
                            expected, 1e-12)
                    << name(kind) << " n=" << n << " inner=" << inner
                    << " forward=" << forward << " (o,i,k2)=(" << o << "," << i
                    << "," << k2 << ")";
              }
            }
          }
        }
      }
    }
  }
}

TEST(FastAxisSupported, MatchesDocumentedSizes) {
  EXPECT_TRUE(kernels::fast_axis_supported(TransformKind::kDCT, 1));
  EXPECT_TRUE(kernels::fast_axis_supported(TransformKind::kDCT, 32));
  EXPECT_TRUE(kernels::fast_axis_supported(TransformKind::kDCT, 64));
  EXPECT_TRUE(kernels::fast_axis_supported(TransformKind::kDCT, 128));
  EXPECT_FALSE(kernels::fast_axis_supported(TransformKind::kDCT, 256));
  EXPECT_FALSE(kernels::fast_axis_supported(TransformKind::kDCT, 3));
  EXPECT_TRUE(kernels::fast_axis_supported(TransformKind::kHaar, 64));
  EXPECT_FALSE(kernels::fast_axis_supported(TransformKind::kHaar, 6));
}

TEST(FastAxisPreferred, FixedPolicyMatchesDocumentedHeuristic) {
  const kernels::FastAxisPolicy saved = kernels::fast_axis_policy();
  kernels::set_fast_axis_policy(kernels::FastAxisPolicy::kFixed);
  for (index_t n : {2, 4, 8, 16, 32, 64, 128})
    EXPECT_TRUE(kernels::fast_axis_preferred(TransformKind::kDCT, n)) << n;
  EXPECT_TRUE(kernels::fast_axis_preferred(TransformKind::kHaar, 8));
  EXPECT_TRUE(kernels::fast_axis_preferred(TransformKind::kHaar, 64));
  EXPECT_FALSE(kernels::fast_axis_preferred(TransformKind::kHaar, 2));
  EXPECT_FALSE(kernels::fast_axis_preferred(TransformKind::kHaar, 4));
  kernels::set_fast_axis_policy(saved);
}

TEST(FastAxisPreferred, AutotuneProbeOnlyPrefersSupportedSizes) {
  const kernels::FastAxisPolicy saved = kernels::fast_axis_policy();
  kernels::set_fast_axis_policy(kernels::FastAxisPolicy::kAutotune);
  // The probe's verdicts are host-dependent, so only structural properties
  // are pinned: unsupported sizes are never preferred, n = 1 always is, and
  // repeated queries are stable within the process (the probe runs once).
  EXPECT_FALSE(kernels::fast_axis_preferred(TransformKind::kDCT, 256));
  EXPECT_FALSE(kernels::fast_axis_preferred(TransformKind::kDCT, 3));
  EXPECT_TRUE(kernels::fast_axis_preferred(TransformKind::kDCT, 1));
  for (index_t n : {2, 4, 8, 16, 32}) {
    const bool first = kernels::fast_axis_preferred(TransformKind::kHaar, n);
    EXPECT_EQ(kernels::fast_axis_preferred(TransformKind::kHaar, n), first);
  }
  kernels::set_fast_axis_policy(saved);
}

// ------------------------------------------- fused pipeline vs unfused seed

/// The seed's unfused compress: block, then quantize the whole blocked
/// buffer, then transform, then a scalar find-max/bin loop — each step a
/// separate pass, using only pre-kernel-layer building blocks.
CompressedArray unfused_compress(const NDArray<double>& array,
                                 const CompressorSettings& settings) {
  const PruningMask mask = settings.effective_mask();
  const auto& kept_offsets = mask.kept_offsets();
  const index_t kept = mask.kept_count();
  const double r = static_cast<double>(arithmetic_radius(settings.index_type));

  Blocked blocked = block_array(array, settings.block_shape);
  const index_t num_blocks = blocked.num_blocks();
  const index_t block_volume = blocked.block_volume();

  for (double& v : blocked.data) v = quantize(v, settings.float_type);

  BlockTransform transform(settings.transform, settings.block_shape,
                           settings.transform_impl);
  for (index_t kb = 0; kb < num_blocks; ++kb)
    transform.forward(blocked.block(kb));

  CompressedArray out;
  out.shape = array.shape();
  out.block_shape = settings.block_shape;
  out.float_type = settings.float_type;
  out.index_type = settings.index_type;
  out.transform = settings.transform;
  out.mask = mask;
  out.biggest.resize(static_cast<std::size_t>(num_blocks));
  out.indices = BinIndices(settings.index_type,
                           static_cast<std::size_t>(num_blocks * kept));
  for (index_t kb = 0; kb < num_blocks; ++kb) {
    const double* coeffs = blocked.block(kb);
    double biggest = 0.0;
    for (index_t j = 0; j < block_volume; ++j)
      biggest = std::max(biggest, std::fabs(coeffs[j]));
    biggest = quantize(biggest, settings.float_type);
    out.biggest[static_cast<std::size_t>(kb)] = biggest;
    // Same association as the kernels (c * inv, not (c * r) / biggest): the
    // two differ by an ulp that can cross a rounding boundary.
    const double inv = biggest == 0.0 ? 0.0 : r / biggest;
    for (index_t slot = 0; slot < kept; ++slot) {
      const double c = coeffs[kept_offsets[static_cast<std::size_t>(slot)]];
      const double scaled =
          biggest == 0.0 ? 0.0 : std::clamp(std::round(c * inv), -r, r);
      out.indices.set(static_cast<std::size_t>(kb * kept + slot),
                      static_cast<std::int64_t>(scaled));
    }
  }
  return out;
}

/// The seed's unfused decompress: unbin into a blocked buffer, inverse
/// transform, quantize the whole buffer, then unblock (crop).
NDArray<double> unfused_decompress(const CompressedArray& array,
                                   const CompressorSettings& settings) {
  const auto& kept_offsets = array.mask.kept_offsets();
  const index_t kept = array.kept_per_block();
  const double r = static_cast<double>(array.radius());

  Blocked blocked;
  blocked.array_shape = array.shape;
  blocked.block_shape = array.block_shape;
  blocked.block_grid = array.block_grid();
  blocked.data.assign(
      static_cast<std::size_t>(blocked.num_blocks() * blocked.block_volume()),
      0.0);

  BlockTransform transform(array.transform, array.block_shape,
                           settings.transform_impl);
  for (index_t kb = 0; kb < blocked.num_blocks(); ++kb) {
    double* coeffs = blocked.block(kb);
    const double scale = array.biggest[static_cast<std::size_t>(kb)] / r;
    for (index_t slot = 0; slot < kept; ++slot)
      coeffs[kept_offsets[static_cast<std::size_t>(slot)]] =
          scale * static_cast<double>(
                      array.indices.get(static_cast<std::size_t>(kb * kept + slot)));
    transform.inverse(coeffs);
  }
  for (double& v : blocked.data) v = quantize(v, settings.float_type);
  return unblock_array(blocked);
}

struct FusedCase {
  Shape array_shape;
  CompressorSettings settings;
};

class FusedVsUnfused : public ::testing::TestWithParam<FusedCase> {};

TEST_P(FusedVsUnfused, CompressIsBitIdentical) {
  const auto& param = GetParam();
  Rng rng(211);
  NDArray<double> array = random_smooth(param.array_shape, rng, 5);

  Compressor compressor(param.settings);
  const CompressedArray fused = compressor.compress(array);
  const CompressedArray unfused = unfused_compress(array, param.settings);

  ASSERT_EQ(fused.biggest.size(), unfused.biggest.size());
  for (std::size_t kb = 0; kb < fused.biggest.size(); ++kb)
    EXPECT_EQ(fused.biggest[kb], unfused.biggest[kb]) << "block " << kb;
  EXPECT_TRUE(fused.indices == unfused.indices);
}

TEST_P(FusedVsUnfused, DecompressIsBitIdentical) {
  const auto& param = GetParam();
  Rng rng(223);
  NDArray<double> array = random_smooth(param.array_shape, rng, 5);

  Compressor compressor(param.settings);
  const CompressedArray compressed = compressor.compress(array);
  const NDArray<double> fused = compressor.decompress(compressed);
  const NDArray<double> unfused = unfused_decompress(compressed, param.settings);

  ASSERT_EQ(fused.shape(), unfused.shape());
  for (index_t k = 0; k < fused.size(); ++k)
    EXPECT_EQ(fused[k], unfused[k]) << "element " << k;
}

CompressorSettings make_settings(Shape block, FloatType ft, IndexType it,
                                 TransformKind kind, TransformImpl impl,
                                 double keep_fraction = 1.0) {
  CompressorSettings s;
  s.block_shape = block;
  s.float_type = ft;
  s.index_type = it;
  s.transform = kind;
  s.transform_impl = impl;
  if (keep_fraction < 1.0)
    s.mask = PruningMask::keep_fraction(block, keep_fraction);
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSettings, FusedVsUnfused,
    ::testing::Values(
        // Divisible shape, fast transform path.
        FusedCase{Shape{32, 32},
                  make_settings(Shape{8, 8}, FloatType::kFloat32,
                                IndexType::kInt8, TransformKind::kDCT,
                                TransformImpl::kAuto)},
        // Divisible shape, dense path (oracle impl for the same flow).
        FusedCase{Shape{32, 32},
                  make_settings(Shape{8, 8}, FloatType::kFloat32,
                                IndexType::kInt8, TransformKind::kDCT,
                                TransformImpl::kDense)},
        // Ragged (non-multiple) edges in every direction.
        FusedCase{Shape{13, 10},
                  make_settings(Shape{8, 8}, FloatType::kFloat32,
                                IndexType::kInt8, TransformKind::kDCT,
                                TransformImpl::kAuto)},
        FusedCase{Shape{9, 7, 5},
                  make_settings(Shape{4, 4, 4}, FloatType::kFloat32,
                                IndexType::kInt16, TransformKind::kDCT,
                                TransformImpl::kAuto)},
        FusedCase{Shape{9, 7, 5},
                  make_settings(Shape{4, 4, 4}, FloatType::kFloat32,
                                IndexType::kInt16, TransformKind::kDCT,
                                TransformImpl::kDense)},
        // A block larger than the array (all edges ragged).
        FusedCase{Shape{5, 3},
                  make_settings(Shape{8, 8}, FloatType::kFloat32,
                                IndexType::kInt8, TransformKind::kDCT,
                                TransformImpl::kAuto)},
        // Haar, 16-bit float storage, pruning.
        FusedCase{Shape{20, 17},
                  make_settings(Shape{8, 8}, FloatType::kBFloat16,
                                IndexType::kInt8, TransformKind::kHaar,
                                TransformImpl::kAuto, 0.25)},
        FusedCase{Shape{16, 16},
                  make_settings(Shape{4, 4}, FloatType::kFloat16,
                                IndexType::kInt16, TransformKind::kDCT,
                                TransformImpl::kAuto, 0.5)},
        // float64 storage (no quantization) with pruning.
        FusedCase{Shape{24, 11},
                  make_settings(Shape{8, 4}, FloatType::kFloat64,
                                IndexType::kInt32, TransformKind::kDCT,
                                TransformImpl::kAuto, 0.75)}));

// ------------------------------------------------- rebin kernels vs scalars

TEST(RebinKernels, MatchScalarDefinitions) {
  Rng rng(307);
  const index_t count = 192;
  NDArray<double> noise = random_normal(Shape{count}, rng, 0.0, 3.0);
  std::vector<double> coeffs = noise.vector();
  // Exercise the clamp: plant values beyond the radius scale.
  coeffs[7] = 100.0;
  coeffs[11] = -100.0;

  const double r = 127.0;
  std::vector<std::int8_t> bins(static_cast<std::size_t>(count));
  const double biggest = kernels::rebin_block(
      coeffs.data(), count, r, FloatType::kFloat32, bins.data());

  double expected_biggest = 0.0;
  for (double c : coeffs) expected_biggest = std::max(expected_biggest, std::fabs(c));
  expected_biggest = quantize(expected_biggest, FloatType::kFloat32);
  EXPECT_EQ(biggest, expected_biggest);
  const double inv = r / biggest;  // Same association as the kernel.
  for (index_t j = 0; j < count; ++j) {
    const double scaled =
        std::clamp(std::round(coeffs[static_cast<std::size_t>(j)] * inv), -r, r);
    EXPECT_EQ(static_cast<double>(bins[static_cast<std::size_t>(j)]), scaled)
        << "slot " << j;
  }

  // Decode: c[j] = scale * f[j], exactly.
  std::vector<double> decoded(static_cast<std::size_t>(count));
  kernels::unbin_block(bins.data(), count, biggest / r, decoded.data());
  for (index_t j = 0; j < count; ++j)
    EXPECT_EQ(decoded[static_cast<std::size_t>(j)],
              (biggest / r) * static_cast<double>(bins[static_cast<std::size_t>(j)]));
}

TEST(RebinKernels, ZeroBlockYieldsZeroBinsAndZeroBiggest) {
  std::vector<double> coeffs(64, 0.0);
  std::vector<std::int8_t> bins(64, 99);
  const double biggest = kernels::rebin_block(coeffs.data(), 64, 127.0,
                                              FloatType::kFloat32, bins.data());
  EXPECT_EQ(biggest, 0.0);
  for (auto b : bins) EXPECT_EQ(b, 0);
}

TEST(RebinKernels, DecodeAxpbyMatchesScalarDefinition) {
  Rng rng(311);
  const index_t count = 64;
  std::vector<std::int8_t> f1(static_cast<std::size_t>(count));
  std::vector<std::int16_t> f2(static_cast<std::size_t>(count));
  for (index_t j = 0; j < count; ++j) {
    f1[static_cast<std::size_t>(j)] = static_cast<std::int8_t>(j - 32);
    f2[static_cast<std::size_t>(j)] = static_cast<std::int16_t>(3 * j - 90);
  }
  const double s1 = 0.031, s2 = -0.007;
  std::vector<double> out(static_cast<std::size_t>(count));
  kernels::decode_axpby(f1.data(), s1, f2.data(), s2, count, out.data());
  for (index_t j = 0; j < count; ++j)
    EXPECT_EQ(out[static_cast<std::size_t>(j)],
              s1 * static_cast<double>(f1[static_cast<std::size_t>(j)]) +
                  s2 * static_cast<double>(f2[static_cast<std::size_t>(j)]));
}

TEST(RebinKernels, QuantizeBlockMatchesElementwiseQuantize) {
  Rng rng(313);
  NDArray<double> noise = random_normal(Shape{97}, rng, 0.0, 10.0);
  for (FloatType ft : kAllFloatTypes) {
    std::vector<double> fused = noise.vector();
    kernels::quantize_block(fused.data(), noise.size(), ft);
    for (index_t j = 0; j < noise.size(); ++j)
      EXPECT_EQ(fused[static_cast<std::size_t>(j)], quantize(noise[j], ft))
          << name(ft) << " element " << j;
  }
}

// ------------------------------------------ streaming add_scalar equivalence

TEST(AddScalarStreaming, MatchesWholeArrayCoefficientPath) {
  Rng rng(401);
  NDArray<double> array = random_smooth(Shape{19, 26}, rng, 4);
  Compressor compressor(make_settings(Shape{8, 8}, FloatType::kFloat32,
                                      IndexType::kInt8, TransformKind::kDCT,
                                      TransformImpl::kAuto, 0.5));
  const CompressedArray a = compressor.compress(array);

  const double x = 1.375;
  const CompressedArray streamed = ops::add_scalar(a, x);

  // Independent scalar oracle (no kernels:: calls, so a kernel regression
  // cannot cancel out of both sides): materialize all specified coefficients,
  // shift every DC, rebin the whole buffer with inline seed-style loops.
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  std::vector<double> coefficients(static_cast<std::size_t>(num_blocks * kept));
  for (index_t kb = 0; kb < num_blocks; ++kb) {
    const double scale = a.biggest[static_cast<std::size_t>(kb)] / r;
    for (index_t slot = 0; slot < kept; ++slot)
      coefficients[static_cast<std::size_t>(kb * kept + slot)] =
          scale * static_cast<double>(
                      a.indices.get(static_cast<std::size_t>(kb * kept + slot)));
  }
  const double shift = x * std::sqrt(static_cast<double>(a.block_shape.volume()));
  for (index_t kb = 0; kb < num_blocks; ++kb)
    coefficients[static_cast<std::size_t>(kb * kept)] += shift;
  CompressedArray expected = a;
  expected.indices = BinIndices(a.index_type, a.indices.size());
  for (index_t kb = 0; kb < num_blocks; ++kb) {
    double biggest = 0.0;
    for (index_t slot = 0; slot < kept; ++slot)
      biggest = std::max(
          biggest,
          std::fabs(coefficients[static_cast<std::size_t>(kb * kept + slot)]));
    biggest = quantize(biggest, a.float_type);
    expected.biggest[static_cast<std::size_t>(kb)] = biggest;
    const double inv = biggest == 0.0 ? 0.0 : r / biggest;
    for (index_t slot = 0; slot < kept; ++slot) {
      const double c = coefficients[static_cast<std::size_t>(kb * kept + slot)];
      const double scaled =
          biggest == 0.0 ? 0.0 : std::clamp(std::round(c * inv), -r, r);
      expected.indices.set(static_cast<std::size_t>(kb * kept + slot),
                           static_cast<std::int64_t>(scaled));
    }
  }

  for (std::size_t kb = 0; kb < expected.biggest.size(); ++kb)
    EXPECT_EQ(streamed.biggest[kb], expected.biggest[kb]) << "block " << kb;
  EXPECT_TRUE(streamed.indices == expected.indices);
}

}  // namespace
}  // namespace pyblaz
