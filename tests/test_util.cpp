#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "core/util/rng.hpp"
#include "core/util/table.hpp"
#include "core/util/timer.hpp"

namespace pyblaz {
namespace {

TEST(Table, TextRenderingAlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"a-much-longer-name", "23456"});
  const std::string text = table.to_text();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  // Every line has the same column start for "value"-column content; just
  // check the header and the long row render without truncation.
  EXPECT_NE(text.find("value"), std::string::npos);
  EXPECT_NE(text.find("23456"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"x", "y"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\nx,y\n");
}

TEST(Table, WriteCsvCreatesFile) {
  Table table({"h"});
  table.add_row({"v"});
  const auto path =
      (std::filesystem::temp_directory_path() / "pyblaz_table_test.csv").string();
  ASSERT_TRUE(table.write_csv(path));
  std::ifstream file(path);
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "h");
  std::filesystem::remove(path);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::sci(12345.678, 2), "1.23e+04");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double first = timer.seconds();
  EXPECT_GE(first, 0.015);
  EXPECT_LT(first, 5.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), first);
}

TEST(Rng, ReproducibleAndSeedSensitive) {
  Rng a(5), b(5), c(6);
  const double va = a.uniform();
  EXPECT_EQ(va, b.uniform());
  EXPECT_NE(va, c.uniform());
}

TEST(Rng, IntegerBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int k = 0; k < 1000; ++k) {
    const std::int64_t v = rng.integer(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    saw_lo |= v == 2;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng rng(11);
  double total = 0.0, squares = 0.0;
  const int n = 20000;
  for (int k = 0; k < n; ++k) {
    const double v = rng.normal(3.0, 2.0);
    total += v;
    squares += v * v;
  }
  const double mean = total / n;
  const double variance = squares / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(variance, 4.0, 0.3);
}

}  // namespace
}  // namespace pyblaz
