/// The paper's nuclear-fission use case (§V-C): compress the neutron-density
/// time series, then locate the scission point — the time interval where the
/// nucleus splits — from compressed data only, first with the L2 norm (which
/// also shows misleading noise peaks) and then with the high-order
/// Wasserstein distance (which isolates the scission).
///
/// Build & run:  ./build/examples/fission_scission

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/ops/expr.hpp"
#include "core/ops/ops.hpp"
#include "sim/fission/fission.hpp"

using namespace pyblaz;  // NOLINT

int main() {
  // Paper settings: block 16x16x16, int16 bins, FP32 storage.
  Compressor compressor({.block_shape = Shape{16, 16, 16},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});
  // The Wasserstein path wants finer blocks for a usable blockwise-mean proxy.
  Compressor fine({.block_shape = Shape{4, 4, 4},
                   .float_type = FloatType::kFloat32,
                   .index_type = IndexType::kInt16});

  const auto& steps = sim::fission_time_steps();
  std::printf("compressing %zu time steps of negative-log Pu density...\n",
              steps.size());

  std::vector<CompressedArray> coarse, finer;
  for (int step : steps) {
    NDArray<double> density = sim::negative_log_density(step);
    coarse.push_back(compressor.compress(density));
    finer.push_back(fine.compress(density));
  }

  std::printf("\n%12s %14s %14s %14s\n", "step pair", "L2", "W(p=2)", "W(p=68)");
  int l2_peak_at = 0;
  double l2_peak = -1.0;
  int w_peak_at = 0;
  double w_peak = -1.0;
  for (std::size_t k = 1; k < steps.size(); ++k) {
    const double l2 = ops::l2_norm(coarse[k] - coarse[k - 1]);
    const double w2 = ops::wasserstein_distance(finer[k], finer[k - 1], 2.0);
    const double w68 = ops::wasserstein_distance(finer[k], finer[k - 1], 68.0);
    std::printf("%5d->%5d %14.4f %14.6g %14.6g\n", steps[k - 1], steps[k], l2,
                w2, w68);
    if (l2 > l2_peak) {
      l2_peak = l2;
      l2_peak_at = static_cast<int>(k);
    }
    if (w68 > w_peak) {
      w_peak = w68;
      w_peak_at = static_cast<int>(k);
    }
  }

  std::printf("\nL2 peak:          between steps %d and %d\n",
              steps[static_cast<std::size_t>(l2_peak_at) - 1],
              steps[static_cast<std::size_t>(l2_peak_at)]);
  std::printf("W(p=68) peak:     between steps %d and %d\n",
              steps[static_cast<std::size_t>(w_peak_at) - 1],
              steps[static_cast<std::size_t>(w_peak_at)]);
  std::printf("known scission:   between steps 690 and 692\n");
  return 0;
}
