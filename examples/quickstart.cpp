/// Quickstart: compress an array, run compressed-space operations, compare
/// against the uncompressed truth, and measure the compression ratio.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/codec/compressor.hpp"
#include "core/codec/ratio.hpp"
#include "core/codec/serialization.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/expr.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "core/util/rng.hpp"

using namespace pyblaz;  // NOLINT

int main() {
  // 1. Make some smooth 2-D data (scientific data is usually band-limited;
  //    that's what transform compressors exploit).
  Rng rng(42);
  const Shape shape{256, 256};
  NDArray<double> x = random_smooth(shape, rng);
  NDArray<double> y = random_smooth(shape, rng);

  // 2. Configure the compressor: 8x8 blocks, float32 storage, int8 bins.
  CompressorSettings settings{.block_shape = Shape{8, 8},
                              .float_type = FloatType::kFloat32,
                              .index_type = IndexType::kInt8};
  Compressor compressor(settings);
  std::printf("settings: %s\n", settings.describe().c_str());
  std::printf("compression ratio (vs FP64): %.2f (asymptotic %.2f)\n\n",
              formula_ratio(settings, shape), asymptotic_ratio(settings));

  // 3. Compress.  Diagnostics give exact per-block error accounting.
  CompressionDiagnostics diag;
  CompressedArray cx = compressor.compress(x, &diag);
  CompressedArray cy = compressor.compress(y);
  std::printf("compressed bytes: %zu (raw: %zu)\n", serialize(cx).size(),
              static_cast<std::size_t>(x.size()) * sizeof(double));
  std::printf("guaranteed L2 error bound: %.4g\n\n", diag.total_l2());

  // 4. Operate directly on the compressed arrays — no decompression.
  std::printf("%-22s %14s %14s\n", "operation", "compressed", "uncompressed");
  std::printf("%-22s %14.6f %14.6f\n", "mean(x)", ops::mean(cx),
              reference::mean(x));
  std::printf("%-22s %14.6f %14.6f\n", "variance(x)", ops::variance(cx),
              reference::variance(x));
  std::printf("%-22s %14.6f %14.6f\n", "l2_norm(x)", ops::l2_norm(cx),
              reference::l2_norm(x));
  std::printf("%-22s %14.6f %14.6f\n", "dot(x, y)", ops::dot(cx, cy),
              reference::dot(x, y));
  std::printf("%-22s %14.6f %14.6f\n", "cosine(x, y)",
              ops::cosine_similarity(cx, cy), reference::cosine_similarity(x, y));
  std::printf("%-22s %14.6f %14.6f\n", "ssim(x, y)",
              ops::structural_similarity(cx, cy),
              reference::structural_similarity(x, y));
  std::printf("%-22s %14.6f %14.6f\n", "wasserstein_2(x, y)",
              ops::wasserstein_distance(cx, cy, 2.0),
              reference::wasserstein_distance(x, y, 2.0));

  // 5. Compressed-space arithmetic, written naturally.  The expression
  //    front end (core/ops/expr.hpp) compiles 2 * (cx - cy) + 0.5 into ONE
  //    fused lincomb — every operand decoded in a single pass, one terminal
  //    rebin, no intermediate compressed arrays.
  NDArray<double> result = compressor.decompress(2.0 * (cx - cy) + 0.5);
  NDArray<double> truth = add_scalar(scale(subtract(x, y), 2.0), 0.5);
  std::printf("\nexpression 2(x-y)+0.5: mean abs error %.4g (max |truth| %.3f)\n",
              reference::mean_absolute_error(result, truth), max_abs(truth));

  // 6. The same update written as the pre-fusion chain of per-op calls pays
  //    one rebin — the only error source of compressed addition — per op,
  //    so it is both slower and (slightly) less accurate than the fused
  //    expression above.
  CompressedArray chained = ops::add_scalar(
      ops::multiply_scalar(ops::subtract(cx, cy), 2.0), 0.5);
  std::printf("chained per-op pipeline: mean abs error %.4g\n",
              reference::mean_absolute_error(compressor.decompress(chained),
                                             truth));

  // 7. Compound assignment stays compressed too: one fused update per step.
  CompressedArray state = cx;
  state += 0.1 * cy - 0.05 * cx;  // one lincomb, one rebin
  std::printf("after `state += 0.1 y - 0.05 x`: mean(state) %.6f\n",
              ops::mean(state));
  return 0;
}
