/// The paper's MRI use case (§V-B): evaluate compressed-space scalar
/// functions (mean, variance, L2 norm) on FLAIR-like volumes and SSIM between
/// volume pairs, comparing against the uncompressed truth at several
/// compression settings — including the non-hypercubic blocks the paper
/// recommends for anisotropic data.
///
/// Build & run:  ./build/examples/mri_quality [volumes]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/codec/ratio.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "sim/mri/mri.hpp"

using namespace pyblaz;  // NOLINT

int main(int argc, char** argv) {
  const int volumes = argc > 1 ? std::atoi(argv[1]) : 6;

  struct Candidate {
    const char* label;
    Shape block;
    IndexType itype;
  };
  const std::vector<Candidate> candidates = {
      {"8x8x8 int8", Shape{8, 8, 8}, IndexType::kInt8},
      {"8x8x8 int16", Shape{8, 8, 8}, IndexType::kInt16},
      {"4x16x16 int8", Shape{4, 16, 16}, IndexType::kInt8},
      {"4x16x16 int16", Shape{4, 16, 16}, IndexType::kInt16},
  };

  const auto configs = sim::dataset_configs({.volumes = volumes, .seed = 7});
  std::printf("%-14s %10s %12s %12s %12s %12s\n", "settings", "ratio",
              "mean MAE", "var MAE", "L2 relerr", "SSIM MAE");

  for (const auto& candidate : candidates) {
    Compressor compressor({.block_shape = candidate.block,
                           .float_type = FloatType::kFloat32,
                           .index_type = candidate.itype});

    double mean_mae = 0.0, var_mae = 0.0, l2_rel = 0.0, ssim_mae = 0.0,
           ratio_total = 0.0;
    NDArray<double> previous;
    CompressedArray previous_compressed;
    int ssim_pairs = 0;

    for (const auto& vconfig : configs) {
      NDArray<double> volume = sim::flair_volume(vconfig);
      CompressedArray compressed = compressor.compress(volume);

      mean_mae += std::fabs(ops::mean(compressed) - reference::mean(volume));
      var_mae +=
          std::fabs(ops::variance(compressed) - reference::variance(volume));
      l2_rel += std::fabs(ops::l2_norm(compressed) - reference::l2_norm(volume)) /
                reference::l2_norm(volume);
      ratio_total += formula_ratio(compressor.settings(), volume.shape());

      // SSIM between consecutive same-shape volumes (the paper crops/pads to
      // match shapes; we compare equal-depth neighbors).
      if (previous.size() > 0 && previous.shape() == volume.shape()) {
        ssim_mae += std::fabs(
            ops::structural_similarity(compressed, previous_compressed) -
            reference::structural_similarity(volume, previous));
        ++ssim_pairs;
      }
      previous = std::move(volume);
      previous_compressed = std::move(compressed);
    }

    const double n = volumes;
    std::printf("%-14s %10.2f %12.3g %12.3g %12.3g %12s\n", candidate.label,
                ratio_total / n, mean_mae / n, var_mae / n, l2_rel / n,
                ssim_pairs > 0
                    ? std::to_string(ssim_mae / ssim_pairs).substr(0, 9).c_str()
                    : "n/a");
  }
  return 0;
}
