/// The paper's shallow-water use case (§I, §V-A): run the same double-gyre
/// simulation at two working precisions ("two movies"), keep the snapshots
/// only in compressed form, and find the time at which the two runs deviate
/// beyond a threshold — using compressed-space L2 and Wasserstein distances,
/// without ever decompressing.
///
/// Build & run:  ./build/examples/shallow_water_divergence [steps]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/ops/expr.hpp"
#include "core/ops/ops.hpp"
#include "core/reference/reference.hpp"
#include "sim/shallow_water/swe.hpp"

using namespace pyblaz;  // NOLINT

int main(int argc, char** argv) {
  const int total_steps = argc > 1 ? std::atoi(argv[1]) : 2400;
  const int snapshot_every = 200;

  sim::SweConfig base;
  base.nx = 64;
  base.ny = 128;
  base.lx = 6.4e5;
  base.ly = 1.28e6;
  base.seamount_sigma = 8e4;

  sim::SweConfig lo = base;
  lo.precision = FloatType::kFloat16;
  sim::SweConfig hi = base;
  hi.precision = FloatType::kFloat32;

  sim::ShallowWaterModel model_lo(lo), model_hi(hi);

  Compressor compressor({.block_shape = Shape{16, 16},
                         .float_type = FloatType::kFloat32,
                         .index_type = IndexType::kInt16});

  std::printf("shallow water, FP16 vs FP32, %d steps, snapshot every %d\n",
              total_steps, snapshot_every);
  std::printf("%8s %16s %16s %16s\n", "step", "L2(compressed)", "L2(raw)",
              "W2(compressed)");

  // Keep only compressed snapshots, as the paper's use case prescribes.
  std::vector<double> l2_series;
  for (int step = 0; step < total_steps; step += snapshot_every) {
    model_lo.run(snapshot_every);
    model_hi.run(snapshot_every);

    CompressedArray ca = compressor.compress(model_lo.surface_height());
    CompressedArray cb = compressor.compress(model_hi.surface_height());

    // Natural syntax: ca - cb builds a lazy two-term expression that
    // evaluates as one fused lincomb right where l2_norm consumes it.
    const double l2_compressed = ops::l2_norm(ca - cb);
    const double l2_raw = reference::l2_distance(model_lo.surface_height(),
                                                 model_hi.surface_height());
    const double w2 = ops::wasserstein_distance(ca, cb, 2.0);
    l2_series.push_back(l2_compressed);
    std::printf("%8d %16.6g %16.6g %16.6g\n", model_lo.steps_taken(),
                l2_compressed, l2_raw, w2);
  }

  // Report the first snapshot at which the runs deviate beyond a threshold.
  const double threshold = 2.0 * l2_series.front();
  for (std::size_t k = 0; k < l2_series.size(); ++k) {
    if (l2_series[k] > threshold) {
      std::printf("\nruns deviate beyond 2x the initial distance at step %d\n",
                  static_cast<int>((k + 1) * snapshot_every));
      return 0;
    }
  }
  std::printf("\nruns stayed within 2x the initial distance for %d steps\n",
              total_steps);
  return 0;
}
