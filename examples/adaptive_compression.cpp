/// End-to-end adaptive workflow combining the library's extensions:
///
///   1. auto-tune compression settings against an L∞ error target on a
///      sample frame (the paper's §VI future-work item),
///   2. store a shallow-water run as a CompressedSeries (the §I "compressed
///      movies" use case),
///   3. query the series with compressed-space metrics (adjacent L2 curve,
///      peak finding, PSNR against the first frame) without decompressing.
///
/// Build & run:  ./build/examples/adaptive_compression [frames]

#include <cstdio>
#include <cstdlib>

#include "core/codec/ratio.hpp"
#include "core/codec/tuning.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/ops/ops.hpp"
#include "core/series/series.hpp"
#include "sim/shallow_water/swe.hpp"

using namespace pyblaz;  // NOLINT

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 10;
  const int steps_per_frame = 150;

  sim::SweConfig config;
  config.nx = 64;
  config.ny = 128;
  config.lx = 6.4e5;
  config.ly = 1.28e6;
  config.seamount_sigma = 8e4;
  sim::ShallowWaterModel model(config);

  // 1. Tune on a sample frame: target 0.5% of the field's range.
  model.run(steps_per_frame);
  const NDArray<double>& sample = model.surface_height();
  const double range = max(sample) - min(sample);
  const double target = 5e-3 * range;

  std::printf("tuning for Linf <= %.3g on a %s sample...\n", target,
              sample.shape().to_string().c_str());
  TuningResult tuned = tune_for_linf(sample, target);
  if (!tuned.best) {
    std::printf("no feasible settings found\n");
    return 1;
  }
  std::printf("chosen: %s  (ratio %.2f, measured Linf %.3g)\n\n",
              tuned.best->settings.describe().c_str(), tuned.best->ratio,
              tuned.best->linf_error);

  // 2. Run the model and keep only compressed frames.
  CompressedSeries series{Compressor(tuned.best->settings)};
  series.append(sample);
  for (int frame = 1; frame < frames; ++frame) {
    model.run(steps_per_frame);
    series.append(model.surface_height());
  }
  std::printf("stored %zu frames: %.1f MB raw -> %.2f MB compressed (%.2fx)\n\n",
              series.size(),
              static_cast<double>(series.uncompressed_bits()) / 8e6,
              static_cast<double>(series.compressed_bits()) / 8e6,
              static_cast<double>(series.uncompressed_bits()) /
                  static_cast<double>(series.compressed_bits()));

  // 3. Compressed-space queries.
  const std::vector<double> curve = series.adjacent_l2();
  std::printf("%8s %14s %14s\n", "frame", "L2 to prev", "PSNR vs frame0 (dB)");
  for (std::size_t k = 1; k < series.size(); ++k) {
    std::printf("%8zu %14.5g %14.2f\n", k, curve[k - 1],
                ops::psnr(series.at(0), series.at(k), range));
  }

  const auto peaks = CompressedSeries::find_peaks(curve, 1.5);
  if (peaks.empty()) {
    std::printf("\nno prominent change peaks: the run evolves smoothly\n");
  } else {
    std::printf("\nmost prominent change: between frames %zu and %zu (%.2fx median)\n",
                peaks[0].pair_index, peaks[0].pair_index + 1, peaks[0].prominence);
  }
  return 0;
}
