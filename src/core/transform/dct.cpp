#include "core/transform/dct.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace pyblaz {

std::vector<double> dct_matrix(int n) {
  assert(n >= 1);
  std::vector<double> h(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  const double c0 = std::sqrt(1.0 / n);
  const double ck = std::sqrt(2.0 / n);
  for (int pos = 0; pos < n; ++pos) {
    for (int freq = 0; freq < n; ++freq) {
      const double scale = freq == 0 ? c0 : ck;
      h[static_cast<std::size_t>(pos) * static_cast<std::size_t>(n) +
        static_cast<std::size_t>(freq)] =
          scale * std::cos(std::numbers::pi * (2.0 * pos + 1.0) * freq / (2.0 * n));
    }
  }
  return h;
}

}  // namespace pyblaz
