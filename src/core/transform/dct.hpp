#pragma once

#include <vector>

namespace pyblaz {

/// Orthonormal DCT-II basis matrix for block size @p n, row-major n x n.
///
/// Entry H[pos][freq] = c_freq * cos(pi * (2 pos + 1) * freq / (2 n)) with
/// c_0 = sqrt(1/n) and c_freq = sqrt(2/n) otherwise (0-based indices).
/// Columns are the sampled cosine basis vectors; a block row-vector B maps to
/// coefficients C = B * H, matching the paper's §III-A formula up to its
/// 1-based index typography.  Column 0 is the constant vector 1/sqrt(n), so
/// the first coefficient is the block mean times sqrt(n).
std::vector<double> dct_matrix(int n);

}  // namespace pyblaz
