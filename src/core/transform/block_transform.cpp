#include "core/transform/block_transform.hpp"

#include <algorithm>
#include <cassert>

#include "core/kernels/fast_transform.hpp"
#include "core/transform/dct.hpp"
#include "core/transform/haar.hpp"

namespace pyblaz {

std::string name(TransformKind kind) {
  switch (kind) {
    case TransformKind::kDCT:
      return "dct";
    case TransformKind::kHaar:
      return "haar";
  }
  return "dct";
}

BlockTransform::BlockTransform(TransformKind kind, Shape block_shape,
                               TransformImpl impl)
    : kind_(kind), block_shape_(std::move(block_shape)), impl_(impl) {
  matrices_.reserve(static_cast<std::size_t>(block_shape_.ndim()));
  for (int axis = 0; axis < block_shape_.ndim(); ++axis) {
    const int n = static_cast<int>(block_shape_[axis]);
    matrices_.push_back(kind == TransformKind::kDCT ? dct_matrix(n) : haar_matrix(n));
  }
}

namespace {

/// Contract one axis of a block with the basis matrix.  The block is viewed
/// as (outer, n, inner); forward uses H[k][k2], inverse H[k2][k].  Templating
/// on the axis length N gives the compiler compile-time trip counts for the
/// hot loops; N == 0 is the dynamic fallback.
template <index_t N>
void apply_axis(const double* src, double* dst, const double* h, index_t n_dyn,
                index_t outer, index_t inner, bool forward) {
  const index_t n = N > 0 ? N : n_dyn;
  if (inner == 1) {
    // Lines are contiguous.  Forward: saxpy with contiguous matrix rows;
    // inverse: dot products with contiguous matrix rows.
    for (index_t o = 0; o < outer; ++o) {
      const double* line = src + o * n;
      double* out = dst + o * n;
      if (forward) {
        std::fill(out, out + n, 0.0);
        for (index_t k = 0; k < n; ++k) {
          const double v = line[k];
          const double* hrow = h + k * n;
          for (index_t k2 = 0; k2 < n; ++k2) out[k2] += v * hrow[k2];
        }
      } else {
        for (index_t k2 = 0; k2 < n; ++k2) {
          const double* hrow = h + k2 * n;
          double total = 0.0;
          for (index_t k = 0; k < n; ++k) total += line[k] * hrow[k];
          out[k2] = total;
        }
      }
    }
  } else {
    for (index_t o = 0; o < outer; ++o) {
      const double* base = src + o * n * inner;
      double* sbase = dst + o * n * inner;
      std::fill(sbase, sbase + n * inner, 0.0);
      for (index_t k = 0; k < n; ++k) {
        const double* line = base + k * inner;
        for (index_t k2 = 0; k2 < n; ++k2) {
          const double w = forward ? h[k * n + k2] : h[k2 * n + k];
          double* out = sbase + k2 * inner;
          for (index_t in = 0; in < inner; ++in) out[in] += w * line[in];
        }
      }
    }
  }
}

void apply_axis_dispatch(const double* src, double* dst, const double* h,
                         index_t n, index_t outer, index_t inner, bool forward) {
  switch (n) {
    case 1:
      std::copy(src, src + outer * inner, dst);
      return;
    case 2:
      apply_axis<2>(src, dst, h, n, outer, inner, forward);
      return;
    case 4:
      apply_axis<4>(src, dst, h, n, outer, inner, forward);
      return;
    case 8:
      apply_axis<8>(src, dst, h, n, outer, inner, forward);
      return;
    case 16:
      apply_axis<16>(src, dst, h, n, outer, inner, forward);
      return;
    case 32:
      apply_axis<32>(src, dst, h, n, outer, inner, forward);
      return;
    default:
      apply_axis<0>(src, dst, h, n, outer, inner, forward);
      return;
  }
}

}  // namespace

void BlockTransform::apply(double* block, double* scratch,
                           Direction direction) const {
  const int d = block_shape_.ndim();
  const bool forward = direction == Direction::kForward;

  // Factorized axes transform in place (using the other buffer as butterfly
  // scratch); dense axes ping-pong between the two buffers.  Copy back only
  // if the final result landed in scratch.
  double* src = block;
  double* dst = scratch;
  for (int axis = 0; axis < d; ++axis) {
    const index_t n = block_shape_[axis];
    index_t outer = 1, inner = 1;
    for (int a = 0; a < axis; ++a) outer *= block_shape_[a];
    for (int a = axis + 1; a < d; ++a) inner *= block_shape_[a];
    if (impl_ == TransformImpl::kAuto &&
        kernels::fast_axis_preferred(kind_, n)) {
      kernels::fast_transform_axis(kind_, src, dst, n, outer, inner, forward);
    } else {
      apply_axis_dispatch(src, dst,
                          matrices_[static_cast<std::size_t>(axis)].data(), n,
                          outer, inner, forward);
      std::swap(src, dst);
    }
  }
  if (src != block) std::copy(src, src + block_shape_.volume(), block);
}

void BlockTransform::forward(double* block, double* scratch) const {
  apply(block, scratch, Direction::kForward);
}

void BlockTransform::inverse(double* block, double* scratch) const {
  apply(block, scratch, Direction::kInverse);
}

void BlockTransform::forward(double* block) const {
  std::vector<double> scratch(static_cast<std::size_t>(scratch_size()));
  forward(block, scratch.data());
}

void BlockTransform::inverse(double* block) const {
  std::vector<double> scratch(static_cast<std::size_t>(scratch_size()));
  inverse(block, scratch.data());
}

}  // namespace pyblaz
