#include "core/transform/block_transform.hpp"

#include <algorithm>
#include <cassert>

#include "core/kernels/backend.hpp"
#include "core/kernels/fast_transform.hpp"
#include "core/transform/dct.hpp"
#include "core/transform/haar.hpp"

namespace pyblaz {

std::string name(TransformKind kind) {
  switch (kind) {
    case TransformKind::kDCT:
      return "dct";
    case TransformKind::kHaar:
      return "haar";
  }
  return "dct";
}

BlockTransform::BlockTransform(TransformKind kind, Shape block_shape,
                               TransformImpl impl)
    : kind_(kind), block_shape_(std::move(block_shape)), impl_(impl) {
  matrices_.reserve(static_cast<std::size_t>(block_shape_.ndim()));
  for (int axis = 0; axis < block_shape_.ndim(); ++axis) {
    const int n = static_cast<int>(block_shape_[axis]);
    matrices_.push_back(kind == TransformKind::kDCT ? dct_matrix(n) : haar_matrix(n));
  }
}


void BlockTransform::apply(double* block, double* scratch,
                           Direction direction) const {
  const int d = block_shape_.ndim();
  const bool forward = direction == Direction::kForward;

  // Factorized axes transform in place (using the other buffer as butterfly
  // scratch); dense axes ping-pong between the two buffers.  Copy back only
  // if the final result landed in scratch.  The DCT and dense kernels come
  // from the active backend table (resolved once per apply); the Haar
  // butterflies stay on the shared scalar kernel in every backend.
  const kernels::KernelTable& table = kernels::active();
  double* src = block;
  double* dst = scratch;
  for (int axis = 0; axis < d; ++axis) {
    const index_t n = block_shape_[axis];
    index_t outer = 1, inner = 1;
    for (int a = 0; a < axis; ++a) outer *= block_shape_[a];
    for (int a = axis + 1; a < d; ++a) inner *= block_shape_[a];
    if (impl_ == TransformImpl::kAuto &&
        kernels::fast_axis_preferred(kind_, n)) {
      if (kind_ == TransformKind::kDCT && n > 1) {
        table.dct_axis(src, dst, n, outer, inner, forward);
      } else {
        kernels::fast_transform_axis(kind_, src, dst, n, outer, inner,
                                     forward);
      }
    } else {
      table.dense_transform_axis(
          src, dst, matrices_[static_cast<std::size_t>(axis)].data(), n, outer,
          inner, forward);
      std::swap(src, dst);
    }
  }
  if (src != block) std::copy(src, src + block_shape_.volume(), block);
}

void BlockTransform::forward(double* block, double* scratch) const {
  apply(block, scratch, Direction::kForward);
}

void BlockTransform::inverse(double* block, double* scratch) const {
  apply(block, scratch, Direction::kInverse);
}

void BlockTransform::forward(double* block) const {
  std::vector<double> scratch(static_cast<std::size_t>(scratch_size()));
  forward(block, scratch.data());
}

void BlockTransform::inverse(double* block) const {
  std::vector<double> scratch(static_cast<std::size_t>(scratch_size()));
  inverse(block, scratch.data());
}

}  // namespace pyblaz
