#pragma once

#include <vector>

#include "core/ndarray/shape.hpp"
#include "core/transform/transform.hpp"

namespace pyblaz {

/// Separable N-dimensional orthonormal transform applied to one block
/// (the Einstein-summation step of §III-A / Appendix VI-A).
///
/// Holds one basis matrix H_d per block axis.  The forward direction maps a
/// block B (row-major, prod(block_shape) elements) to coefficients
/// C = B ×_1 H_1 ×_2 H_2 ... ×_d H_d; the inverse contracts with the
/// transposes.  Both directions are exact inverses up to floating-point
/// rounding because every H_d is orthonormal.
/// Axes whose length the factorized kernels support (power-of-two sizes up
/// to 64 for the DCT, any power of two for Haar; see core/kernels) run in
/// O(n log n) butterflies; other axes fall back to the dense matrix apply.
/// TransformImpl::kDense forces the dense path everywhere — the oracle the
/// kernel-equivalence tests and benchmarks compare against.
class BlockTransform {
 public:
  BlockTransform(TransformKind kind, Shape block_shape,
                 TransformImpl impl = TransformImpl::kAuto);

  const Shape& block_shape() const { return block_shape_; }
  TransformKind kind() const { return kind_; }
  TransformImpl impl() const { return impl_; }

  /// Number of doubles a scratch buffer must hold (= block volume).
  index_t scratch_size() const { return block_shape_.volume(); }

  /// In-place forward transform of one block.  @p scratch must hold
  /// scratch_size() doubles; the two buffers must not alias.
  void forward(double* block, double* scratch) const;

  /// In-place inverse transform of one block (same contract as forward()).
  void inverse(double* block, double* scratch) const;

  /// Convenience overloads that allocate their own scratch.
  void forward(double* block) const;
  void inverse(double* block) const;

  /// Basis matrix along @p axis, row-major n x n with basis vectors in
  /// columns (H[pos][freq]).
  const std::vector<double>& matrix(int axis) const {
    return matrices_[static_cast<std::size_t>(axis)];
  }

 private:
  enum class Direction { kForward, kInverse };
  void apply(double* block, double* scratch, Direction direction) const;

  TransformKind kind_;
  Shape block_shape_;
  TransformImpl impl_;
  std::vector<std::vector<double>> matrices_;
};

}  // namespace pyblaz
