#pragma once

#include <cstdint>
#include <string>

namespace pyblaz {

/// Which orthonormal transform the compressor applies per block (§III-A).
/// Both options have orthonormal basis matrices whose first basis vector is
/// constant, the two properties every compressed-space operation relies on:
///   - orthonormality preserves dot products (Parseval), enabling dot/L2/
///     covariance directly on coefficients, and
///   - the constant first basis vector makes the first coefficient of each
///     block the block mean scaled by sqrt(prod(block shape)).
enum class TransformKind : std::uint8_t {
  kDCT = 0,   ///< Orthonormal DCT-II (the PyBlaz default).
  kHaar = 1,  ///< Orthonormal Haar wavelet (block sizes are powers of two).
};

/// Human-readable name ("dct" or "haar").
std::string name(TransformKind kind);

}  // namespace pyblaz
