#pragma once

#include <cstdint>
#include <string>

namespace pyblaz {

/// Which orthonormal transform the compressor applies per block (§III-A).
/// Both options have orthonormal basis matrices whose first basis vector is
/// constant, the two properties every compressed-space operation relies on:
///   - orthonormality preserves dot products (Parseval), enabling dot/L2/
///     covariance directly on coefficients, and
///   - the constant first basis vector makes the first coefficient of each
///     block the block mean scaled by sqrt(prod(block shape)).
enum class TransformKind : std::uint8_t {
  kDCT = 0,   ///< Orthonormal DCT-II (the PyBlaz default).
  kHaar = 1,  ///< Orthonormal Haar wavelet (block sizes are powers of two).
};

/// Human-readable name ("dct" or "haar").
std::string name(TransformKind kind);

/// Which implementation BlockTransform uses per axis.  Both produce the same
/// orthonormal transform up to floating-point rounding (the kernel tests pin
/// agreement to <= 1e-12), so this is a performance knob, not a format knob:
/// arrays compressed with either interoperate freely.
enum class TransformImpl : std::uint8_t {
  kAuto = 0,   ///< Factorized O(n log n) kernels where available, else dense.
  kDense = 1,  ///< Always the dense matrix apply (the fallback and oracle).
};

}  // namespace pyblaz
