#include "core/transform/haar.hpp"

#include <cassert>
#include <cmath>

namespace pyblaz {

std::vector<double> haar_matrix(int n) {
  assert(n >= 1 && (n & (n - 1)) == 0 && "Haar blocks must be powers of two");
  std::vector<double> h(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  auto at = [&](int row, int col) -> double& {
    return h[static_cast<std::size_t>(row) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(col)];
  };

  // Column 0: scaling function, constant 1/sqrt(n).
  const double dc = 1.0 / std::sqrt(static_cast<double>(n));
  for (int row = 0; row < n; ++row) at(row, 0) = dc;

  // Columns 1..n-1: wavelet psi_{level,shift} supported on a dyadic interval
  // of length n / 2^level, +amplitude on the first half, -amplitude on the
  // second, with amplitude chosen for unit L2 norm.
  int col = 1;
  for (int level = 0; (1 << level) < n; ++level) {
    const int translates = 1 << level;          // Wavelets at this scale.
    const int support = n / translates;         // Samples per wavelet.
    const double amp = std::sqrt(static_cast<double>(translates) / n);
    for (int shift = 0; shift < translates; ++shift, ++col) {
      const int start = shift * support;
      for (int k = 0; k < support / 2; ++k) at(start + k, col) = amp;
      for (int k = support / 2; k < support; ++k) at(start + k, col) = -amp;
    }
  }
  assert(col == n);
  return h;
}

}  // namespace pyblaz
