#pragma once

#include <vector>

namespace pyblaz {

/// Orthonormal Haar wavelet basis matrix for block size @p n (a power of
/// two), row-major n x n, with basis vectors in columns.
///
/// Column 0 is the constant vector 1/sqrt(n) (so block means live in the
/// first coefficient, like the DCT); subsequent columns are the standard
/// dyadic Haar wavelets, normalized to unit length.  A block row-vector B
/// maps to coefficients C = B * H.
std::vector<double> haar_matrix(int n);

}  // namespace pyblaz
