#include "core/error/error.hpp"

#include <array>

#include "core/telemetry/telemetry.hpp"

namespace cc {

namespace {

std::string format_message(ErrorCode code, const std::string& site,
                           const std::string& detail, std::uint64_t offset) {
  std::string message = site;
  message += ": ";
  message += detail;
  message += " [";
  message += error_code_name(code);
  if (offset != Error::kNoOffset) {
    message += " @ byte ";
    message += std::to_string(offset);
  }
  message += "]";
  return message;
}

/// One counter per code, resolved once: raise() sits on error paths only,
/// but those paths are exactly where an extra allocation or registry lock
/// would be least welcome (e.g. under std::bad_alloc translation).
pyblaz::telemetry::Counter& detected_counter(ErrorCode code) {
  static const std::array<pyblaz::telemetry::Counter*, 5> counters = [] {
    std::array<pyblaz::telemetry::Counter*, 5> out{};
    for (int c = 0; c < 5; ++c)
      out[static_cast<std::size_t>(c)] = &pyblaz::telemetry::counter(
          std::string("fault.detected.") +
          error_code_name(static_cast<ErrorCode>(c)));
    return out;
  }();
  return *counters[static_cast<std::size_t>(code)];
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kCorruptArchive:
      return "corrupt_archive";
    case ErrorCode::kTruncated:
      return "truncated";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kFaultInjected:
      return "fault_injected";
  }
  return "unknown";
}

Error::Error(ErrorCode code, std::string site, const std::string& detail,
             std::uint64_t offset)
    : std::runtime_error(format_message(code, site, detail, offset)),
      code_(code),
      site_(std::move(site)),
      offset_(offset) {}

void raise(ErrorCode code, std::string site, const std::string& detail,
           std::uint64_t offset) {
  detected_counter(code).increment();
  throw Error(code, std::move(site), detail, offset);
}

}  // namespace cc
