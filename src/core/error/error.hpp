#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

/// Structured error taxonomy of the runtime.
///
/// Everything the runtime can *detect and survive* — corrupt archives,
/// truncated streams, failed allocations, missed deadlines — surfaces as one
/// exception type, cc::Error, carrying a machine-readable code, the site that
/// detected it, and (for stream problems) the byte offset.  Callers that used
/// to fish for std::invalid_argument can now switch on code(); the service
/// tier can map codes straight onto response statuses.
///
/// Programming errors (bad CompressorSettings, mismatched layouts) stay
/// std::invalid_argument / std::logic_error: those are bugs in the caller,
/// not conditions a healthy deployment encounters, and they should not be
/// swallowed by fault-tolerant retry paths.
///
/// Every throw is counted in the telemetry registry as
/// `fault.detected.<code name>` (see raise()), so a fleet-wide corruption or
/// stall burst is visible in the CC_STATS dump without any log scraping.
namespace cc {

enum class ErrorCode {
  kCorruptArchive,     ///< An integrity check failed or the structure is
                       ///  inconsistent (bad magic geometry, checksum
                       ///  mismatch, implausible header field).
  kTruncated,          ///< The stream ends before the data its header
                       ///  promises.
  kResourceExhausted,  ///< An allocation failed while building the result.
  kDeadlineExceeded,   ///< A parallel region outlived its deadline
                       ///  (parallel::DeadlineScope).
  kFaultInjected,      ///< A CC_FAULT test fault fired (tests/CI only; never
                       ///  raised by production code paths on their own).
};

/// Stable lowercase name for telemetry keys and log lines
/// ("corrupt_archive", "truncated", ...).
const char* error_code_name(ErrorCode code);

class Error : public std::runtime_error {
 public:
  /// Offset value meaning "no meaningful byte offset for this error".
  static constexpr std::uint64_t kNoOffset = ~std::uint64_t{0};

  Error(ErrorCode code, std::string site, const std::string& detail,
        std::uint64_t offset = kNoOffset);

  ErrorCode code() const noexcept { return code_; }

  /// The detection site, e.g. "deserialize.v3.chunk" — same vocabulary as
  /// the fault-injection site names (docs/ROBUSTNESS.md has the table).
  const std::string& site() const noexcept { return site_; }

  /// Byte offset into the stream where the problem was detected, or
  /// kNoOffset when the error is not positional.
  std::uint64_t offset() const noexcept { return offset_; }

 private:
  ErrorCode code_;
  std::string site_;
  std::uint64_t offset_;
};

/// Throw Error(code, site, detail, offset) after bumping the telemetry
/// counter `fault.detected.<code name>`.  All runtime detection paths go
/// through here so the counters are complete by construction.
[[noreturn]] void raise(ErrorCode code, std::string site,
                        const std::string& detail,
                        std::uint64_t offset = Error::kNoOffset);

}  // namespace cc
