#include "core/kernels/fast_transform.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/transform/dct.hpp"
#include "core/transform/haar.hpp"

namespace pyblaz::kernels {

namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440084436210485;

/// Lee's secant factors for size M: sec[p] = 1 / (2 cos(pi (2p+1) / (2M))).
template <index_t M>
const double* sec_table() {
  static const std::array<double, M / 2> table = [] {
    std::array<double, M / 2> t{};
    for (index_t p = 0; p < M / 2; ++p)
      t[static_cast<std::size_t>(p)] =
          0.5 / std::cos(std::numbers::pi * (2.0 * static_cast<double>(p) + 1.0) /
                         (2.0 * static_cast<double>(M)));
    return t;
  }();
  return table.data();
}

// All panel kernels below are templated on kScalar (inner == 1 known at
// compile time) so the last, contiguous axis runs fully unrolled scalar code
// while strided axes vectorize across the inner dimension.  The orthonormal
// sqrt(2/n) output scaling (sqrt(1/n) for the DC row) is fused into the
// top-level combine/deinterleave pass (kScaled) instead of costing its own
// sweep over the panel; recursive calls run unscaled ("raw" DCT).

/// Lee's recursive factorization of the raw DCT-II,
/// c[k] = sum_p x[p] cos(pi (2p+1) k / (2M)), in place on an M x inner panel.
/// Split M into half-size even/odd subproblems (O(M log M) total), recursing
/// with the roles of @p x and @p tmp swapped so no extra scratch is needed.
template <index_t M, bool kScalar, bool kScaled>
void lee_forward(double* __restrict x, double* __restrict tmp,
                 index_t inner_dyn, double scale, double dc_scale) {
  if constexpr (M == 1) {
    (void)x;
    (void)tmp;
    (void)inner_dyn;
    (void)scale;
    (void)dc_scale;
  } else {
    const index_t inner = kScalar ? 1 : inner_dyn;
    constexpr index_t kHalf = M / 2;
    const double* sec = sec_table<M>();
    for (index_t p = 0; p < kHalf; ++p) {
      const double* __restrict xa = x + p * inner;
      const double* __restrict xb = x + (M - 1 - p) * inner;
      double* __restrict g = tmp + p * inner;
      double* __restrict h = tmp + (kHalf + p) * inner;
      const double s = sec[p];
#pragma omp simd
      for (index_t i = 0; i < inner; ++i) {
        g[i] = xa[i] + xb[i];
        h[i] = (xa[i] - xb[i]) * s;
      }
    }
    lee_forward<kHalf, kScalar, false>(tmp, x, inner_dyn, 1.0, 1.0);
    lee_forward<kHalf, kScalar, false>(tmp + kHalf * inner, x + kHalf * inner,
                                       inner_dyn, 1.0, 1.0);
    // Interleave: even outputs from G, odd outputs H[k] + H[k+1] (H[M/2] = 0),
    // applying the orthonormal scaling here when this is the top-level call.
    for (index_t k = 0; k < kHalf; ++k) {
      const double* __restrict gk = tmp + k * inner;
      const double* __restrict hk = tmp + (kHalf + k) * inner;
      double* __restrict xe = x + (2 * k) * inner;
      double* __restrict xo = x + (2 * k + 1) * inner;
      if constexpr (kScaled) {
        const double fe = k == 0 ? dc_scale : scale;
        if (k + 1 < kHalf) {
          const double* __restrict hk1 = hk + inner;
#pragma omp simd
          for (index_t i = 0; i < inner; ++i) {
            xe[i] = gk[i] * fe;
            xo[i] = (hk[i] + hk1[i]) * scale;
          }
        } else {
#pragma omp simd
          for (index_t i = 0; i < inner; ++i) {
            xe[i] = gk[i] * fe;
            xo[i] = hk[i] * scale;
          }
        }
      } else {
        if (k + 1 < kHalf) {
          const double* __restrict hk1 = hk + inner;
#pragma omp simd
          for (index_t i = 0; i < inner; ++i) {
            xe[i] = gk[i];
            xo[i] = hk[i] + hk1[i];
          }
        } else {
#pragma omp simd
          for (index_t i = 0; i < inner; ++i) {
            xe[i] = gk[i];
            xo[i] = hk[i];
          }
        }
      }
    }
  }
}

/// Transpose of lee_forward (the raw DCT-III), step for step in reverse:
/// deinterleave (absorbing the diagonal scaling at the top level), recurse,
/// butterfly with the secant factors.
template <index_t M, bool kScalar, bool kScaled>
void lee_inverse(double* __restrict x, double* __restrict tmp,
                 index_t inner_dyn, double scale, double dc_scale) {
  if constexpr (M == 1) {
    (void)x;
    (void)tmp;
    (void)inner_dyn;
    (void)scale;
    (void)dc_scale;
  } else {
    const index_t inner = kScalar ? 1 : inner_dyn;
    constexpr index_t kHalf = M / 2;
    const double* sec = sec_table<M>();
    // Deinterleave: G'[k] = c[2k], H'[k] = c[2k+1] + c[2k-1] (c[-1] = 0).
    for (index_t k = 0; k < kHalf; ++k) {
      const double* __restrict xe = x + (2 * k) * inner;
      const double* __restrict xo = x + (2 * k + 1) * inner;
      double* __restrict g = tmp + k * inner;
      double* __restrict h = tmp + (kHalf + k) * inner;
      if constexpr (kScaled) {
        if (k == 0) {
#pragma omp simd
          for (index_t i = 0; i < inner; ++i) {
            g[i] = xe[i] * dc_scale;
            h[i] = xo[i] * scale;
          }
        } else {
          const double* __restrict xo_prev = xo - 2 * inner;
#pragma omp simd
          for (index_t i = 0; i < inner; ++i) {
            g[i] = xe[i] * scale;
            h[i] = (xo[i] + xo_prev[i]) * scale;
          }
        }
      } else {
        if (k == 0) {
#pragma omp simd
          for (index_t i = 0; i < inner; ++i) {
            g[i] = xe[i];
            h[i] = xo[i];
          }
        } else {
          const double* __restrict xo_prev = xo - 2 * inner;
#pragma omp simd
          for (index_t i = 0; i < inner; ++i) {
            g[i] = xe[i];
            h[i] = xo[i] + xo_prev[i];
          }
        }
      }
    }
    lee_inverse<kHalf, kScalar, false>(tmp, x, inner_dyn, 1.0, 1.0);
    lee_inverse<kHalf, kScalar, false>(tmp + kHalf * inner, x + kHalf * inner,
                                       inner_dyn, 1.0, 1.0);
    // Butterfly: x[p] = g[p] + sec[p] h[p], x[M-1-p] = g[p] - sec[p] h[p].
    for (index_t p = 0; p < kHalf; ++p) {
      const double* __restrict g = tmp + p * inner;
      const double* __restrict h = tmp + (kHalf + p) * inner;
      double* __restrict xa = x + p * inner;
      double* __restrict xb = x + (M - 1 - p) * inner;
      const double s = sec[p];
#pragma omp simd
      for (index_t i = 0; i < inner; ++i) {
        const double t = s * h[i];
        xa[i] = g[i] + t;
        xb[i] = g[i] - t;
      }
    }
  }
}

/// One whole axis of orthonormal DCT panels, dispatch hoisted out of the
/// panel loop.
template <index_t M, bool kScalar>
void dct_axis_impl(double* data, double* tmp, index_t outer, index_t inner,
                   bool forward) {
  const double scale = std::sqrt(2.0 / static_cast<double>(M));
  const double dc_scale = scale * kInvSqrt2;
  const index_t panel = M * inner;
  if (forward) {
    for (index_t o = 0; o < outer; ++o, data += panel)
      lee_forward<M, kScalar, true>(data, tmp, inner, scale, dc_scale);
  } else {
    for (index_t o = 0; o < outer; ++o, data += panel)
      lee_inverse<M, kScalar, true>(data, tmp, inner, scale, dc_scale);
  }
}

template <index_t M>
void dct_axis(double* data, double* tmp, index_t outer, index_t inner,
              bool forward) {
  if (inner == 1) {
    dct_axis_impl<M, true>(data, tmp, outer, inner, forward);
  } else {
    dct_axis_impl<M, false>(data, tmp, outer, inner, forward);
  }
}

/// Butterfly Haar analysis: each level averages/differences adjacent pairs,
/// leaving detail coefficients in their final coarse-to-fine positions and
/// recursing on the n/2 scaling coefficients.  O(n) per panel line.
template <bool kScalar>
void haar_panel_forward(double* __restrict x, double* __restrict tmp, index_t n,
                        index_t inner_dyn) {
  const index_t inner = kScalar ? 1 : inner_dyn;
  for (index_t len = n; len > 1; len /= 2) {
    const index_t half = len / 2;
    for (index_t k = 0; k < half; ++k) {
      const double* __restrict a = x + (2 * k) * inner;
      const double* __restrict b = a + inner;
      double* __restrict s = tmp + k * inner;
      double* __restrict d = tmp + (half + k) * inner;
#pragma omp simd
      for (index_t i = 0; i < inner; ++i) {
        s[i] = (a[i] + b[i]) * kInvSqrt2;
        d[i] = (a[i] - b[i]) * kInvSqrt2;
      }
    }
    std::copy(tmp, tmp + len * inner, x);
  }
}

/// Butterfly Haar synthesis: levels in reverse, reconstructing pairs from
/// scaling + detail coefficients.
template <bool kScalar>
void haar_panel_inverse(double* __restrict x, double* __restrict tmp, index_t n,
                        index_t inner_dyn) {
  const index_t inner = kScalar ? 1 : inner_dyn;
  for (index_t len = 2; len <= n; len *= 2) {
    const index_t half = len / 2;
    for (index_t k = 0; k < half; ++k) {
      const double* __restrict s = x + k * inner;
      const double* __restrict d = x + (half + k) * inner;
      double* __restrict a = tmp + (2 * k) * inner;
      double* __restrict b = a + inner;
#pragma omp simd
      for (index_t i = 0; i < inner; ++i) {
        a[i] = (s[i] + d[i]) * kInvSqrt2;
        b[i] = (s[i] - d[i]) * kInvSqrt2;
      }
    }
    std::copy(tmp, tmp + len * inner, x);
  }
}

template <bool kScalar>
void haar_axis_impl(double* data, double* tmp, index_t n, index_t outer,
                    index_t inner, bool forward) {
  const index_t panel = n * inner;
  if (forward) {
    for (index_t o = 0; o < outer; ++o, data += panel)
      haar_panel_forward<kScalar>(data, tmp, n, inner);
  } else {
    for (index_t o = 0; o < outer; ++o, data += panel)
      haar_panel_inverse<kScalar>(data, tmp, n, inner);
  }
}

bool is_power_of_two(index_t n) { return n >= 1 && (n & (n - 1)) == 0; }

/// Contract one axis of a block with the basis matrix (moved here from
/// BlockTransform so the autotune probe below times exactly this code).
/// The block is viewed as (outer, n, inner); forward uses H[k][k2], inverse
/// H[k2][k].  Templating on the axis length N gives the compiler
/// compile-time trip counts for the hot loops; N == 0 is the dynamic
/// fallback.
template <index_t N>
void apply_axis(const double* src, double* dst, const double* h, index_t n_dyn,
                index_t outer, index_t inner, bool forward) {
  const index_t n = N > 0 ? N : n_dyn;
  if (inner == 1) {
    // Lines are contiguous.  Forward: saxpy with contiguous matrix rows;
    // inverse: dot products with contiguous matrix rows.
    for (index_t o = 0; o < outer; ++o) {
      const double* line = src + o * n;
      double* out = dst + o * n;
      if (forward) {
        std::fill(out, out + n, 0.0);
        for (index_t k = 0; k < n; ++k) {
          const double v = line[k];
          const double* hrow = h + k * n;
          for (index_t k2 = 0; k2 < n; ++k2) out[k2] += v * hrow[k2];
        }
      } else {
        for (index_t k2 = 0; k2 < n; ++k2) {
          const double* hrow = h + k2 * n;
          double total = 0.0;
          for (index_t k = 0; k < n; ++k) total += line[k] * hrow[k];
          out[k2] = total;
        }
      }
    }
  } else {
    for (index_t o = 0; o < outer; ++o) {
      const double* base = src + o * n * inner;
      double* sbase = dst + o * n * inner;
      std::fill(sbase, sbase + n * inner, 0.0);
      for (index_t k = 0; k < n; ++k) {
        const double* line = base + k * inner;
        for (index_t k2 = 0; k2 < n; ++k2) {
          const double w = forward ? h[k * n + k2] : h[k2 * n + k];
          double* out = sbase + k2 * inner;
          for (index_t in = 0; in < inner; ++in) out[in] += w * line[in];
        }
      }
    }
  }
}

}  // namespace

void dense_transform_axis(const double* src, double* dst, const double* matrix,
                          index_t n, index_t outer, index_t inner,
                          bool forward) {
  switch (n) {
    case 1:
      std::copy(src, src + outer * inner, dst);
      return;
    case 2:
      apply_axis<2>(src, dst, matrix, n, outer, inner, forward);
      return;
    case 4:
      apply_axis<4>(src, dst, matrix, n, outer, inner, forward);
      return;
    case 8:
      apply_axis<8>(src, dst, matrix, n, outer, inner, forward);
      return;
    case 16:
      apply_axis<16>(src, dst, matrix, n, outer, inner, forward);
      return;
    case 32:
      apply_axis<32>(src, dst, matrix, n, outer, inner, forward);
      return;
    case 64:
      apply_axis<64>(src, dst, matrix, n, outer, inner, forward);
      return;
    case 128:
      apply_axis<128>(src, dst, matrix, n, outer, inner, forward);
      return;
    default:
      apply_axis<0>(src, dst, matrix, n, outer, inner, forward);
      return;
  }
}

bool fast_axis_supported(TransformKind kind, index_t n) {
  if (n == 1) return true;
  switch (kind) {
    case TransformKind::kDCT:
      return n == 2 || n == 4 || n == 8 || n == 16 || n == 32 || n == 64 ||
             n == 128;
    case TransformKind::kHaar:
      return is_power_of_two(n);
  }
  return false;
}

namespace {

/// The pre-measured host-independent heuristic (FastAxisPolicy::kFixed):
/// the dense matrix apply has compile-time trip counts and no inter-level
/// copies, so it wins on very short Haar axes where the butterfly's level
/// overhead dominates (measured in bench/micro_kernels.cpp).
bool fixed_axis_preferred(TransformKind kind, index_t n) {
  if (kind == TransformKind::kHaar) return n == 1 || n >= 8;
  return true;
}

FastAxisPolicy initial_policy() {
  if (const char* env = std::getenv("PYBLAZ_FAST_AXIS")) {
    if (std::strcmp(env, "fixed") == 0) return FastAxisPolicy::kFixed;
    if (std::strcmp(env, "autotune") == 0) return FastAxisPolicy::kAutotune;
  }
  return FastAxisPolicy::kAutotune;
}

std::atomic<FastAxisPolicy> g_fast_axis_policy{initial_policy()};

/// Seconds for the fastest of three timed repetitions of @p op.
template <typename Op>
double best_of_three(Op&& op) {
  double best = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    op();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// One-shot startup micro-probe: for every factorizable axis length, time
/// the factorized kernel against the dense matrix apply and cache which one
/// won.  The workload covers the shapes dispatch actually sees — forward and
/// inverse, a contiguous (inner = 1) panel and a strided (inner = 16) one —
/// because the fast/dense ratio differs between them.  The measurement only
/// *overrides* the fixed heuristic on a decisive >25% total-time win, so a
/// borderline size never flips between runs (or processes) on timer noise:
/// absent a decisive verdict, dispatch equals FastAxisPolicy::kFixed.
struct AxisProbeTable {
  // prefer_fast[kind][log2(n)], probed up to n = 128; longer Haar axes reuse
  // the n = 128 verdict (the butterfly's advantage only grows with n).
  static constexpr int kMaxLog2 = 7;
  bool prefer_fast[2][kMaxLog2 + 1] = {};

  AxisProbeTable() {
    for (TransformKind kind : {TransformKind::kDCT, TransformKind::kHaar}) {
      for (int log2n = 1; log2n <= kMaxLog2; ++log2n) {
        const index_t n = index_t{1} << log2n;
        if (!fast_axis_supported(kind, n)) continue;
        const std::vector<double> matrix =
            kind == TransformKind::kDCT ? dct_matrix(static_cast<int>(n))
                                        : haar_matrix(static_cast<int>(n));
        double fast_seconds = 0.0, dense_seconds = 0.0;
        for (index_t inner : {index_t{1}, index_t{16}}) {
          const index_t outer = std::max<index_t>(1, 4096 / (n * inner));
          std::vector<double> data(
              static_cast<std::size_t>(outer * n * inner), 1.0);
          std::vector<double> scratch(data.size());
          for (bool forward : {true, false}) {
            // ~8 passes per trial keeps the whole probe around a millisecond
            // while staying well above timer resolution.
            fast_seconds += best_of_three([&] {
              for (int rep = 0; rep < 8; ++rep)
                fast_transform_axis(kind, data.data(), scratch.data(), n,
                                    outer, inner, forward);
            });
            dense_seconds += best_of_three([&] {
              for (int rep = 0; rep < 8; ++rep)
                dense_transform_axis(data.data(), scratch.data(),
                                     matrix.data(), n, outer, inner, forward);
            });
          }
        }
        const bool fixed_default = fixed_axis_preferred(kind, n);
        prefer_fast[static_cast<int>(kind)][log2n] =
            fixed_default ? !(dense_seconds * 1.25 < fast_seconds)
                          : fast_seconds * 1.25 < dense_seconds;
      }
    }
  }

  bool preferred(TransformKind kind, index_t n) const {
    int log2n = 0;
    while ((index_t{1} << (log2n + 1)) <= n && log2n + 1 <= kMaxLog2) ++log2n;
    return prefer_fast[static_cast<int>(kind)][log2n];
  }
};

bool autotuned_axis_preferred(TransformKind kind, index_t n) {
  static const AxisProbeTable table;  // Probes once, thread-safe.
  return table.preferred(kind, n);
}

}  // namespace

void set_fast_axis_policy(FastAxisPolicy policy) {
  g_fast_axis_policy.store(policy, std::memory_order_relaxed);
}

FastAxisPolicy fast_axis_policy() {
  return g_fast_axis_policy.load(std::memory_order_relaxed);
}

bool fast_axis_preferred(TransformKind kind, index_t n) {
  if (!fast_axis_supported(kind, n)) return false;
  if (n == 1) return true;
  if (fast_axis_policy() == FastAxisPolicy::kFixed)
    return fixed_axis_preferred(kind, n);
  return autotuned_axis_preferred(kind, n);
}

void fast_transform_axis(TransformKind kind, double* data, double* tmp,
                         index_t n, index_t outer, index_t inner,
                         bool forward) {
  if (n == 1) return;  // The length-1 basis is the identity.
  if (kind == TransformKind::kHaar) {
    if (inner == 1) {
      haar_axis_impl<true>(data, tmp, n, outer, inner, forward);
    } else {
      haar_axis_impl<false>(data, tmp, n, outer, inner, forward);
    }
    return;
  }
  dct_fast_axis(data, tmp, n, outer, inner, forward);
}

const double* dct_secant_table(index_t m) {
  switch (m) {
    case 2:
      return sec_table<2>();
    case 4:
      return sec_table<4>();
    case 8:
      return sec_table<8>();
    case 16:
      return sec_table<16>();
    case 32:
      return sec_table<32>();
    case 64:
      return sec_table<64>();
    case 128:
      return sec_table<128>();
    default:
      throw std::logic_error("dct_secant_table: unsupported size " +
                             std::to_string(m));
  }
}

void dct_fast_axis(double* data, double* tmp, index_t n, index_t outer,
                   index_t inner, bool forward) {
  switch (n) {
    case 2:
      dct_axis<2>(data, tmp, outer, inner, forward);
      break;
    case 4:
      dct_axis<4>(data, tmp, outer, inner, forward);
      break;
    case 8:
      dct_axis<8>(data, tmp, outer, inner, forward);
      break;
    case 16:
      dct_axis<16>(data, tmp, outer, inner, forward);
      break;
    case 32:
      dct_axis<32>(data, tmp, outer, inner, forward);
      break;
    case 64:
      dct_axis<64>(data, tmp, outer, inner, forward);
      break;
    case 128:
      dct_axis<128>(data, tmp, outer, inner, forward);
      break;
    default:
      // Loud failure rather than silently returning untransformed data: this
      // is reachable only if a size is added to fast_axis_supported() without
      // a matching dispatch case here.
      throw std::logic_error(
          "dct_fast_axis: no factorized DCT kernel for n = " +
          std::to_string(n));
  }
}

}  // namespace pyblaz::kernels
