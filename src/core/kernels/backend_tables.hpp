#pragma once

#include "core/kernels/backend.hpp"

/// Internal seam between the dispatcher (backend.cpp) and the per-ISA
/// translation units.  Each ISA TU always compiles (it is globbed into the
/// core library on every platform) but returns nullptr from its table_
/// function when the target ISA is not part of the build, so the dispatcher
/// needs no per-platform #ifdefs of its own.

namespace pyblaz::kernels::internal {

const KernelTable& scalar_table();

/// nullptr when the binary was not built with AVX2 support for this TU.
const KernelTable* avx2_table();

/// nullptr when the binary does not target AArch64.
const KernelTable* neon_table();

/// The shared (scalar) 2-symbol LUT walker; every backend table points its
/// huffman_decode_run slot here until an ISA ships a vectorized override.
index_t huffman_decode_run_generic(const HuffmanLut2Entry* lut,
                                   BitReader& reader, std::int32_t* out,
                                   index_t count, std::int32_t stop_symbol);

}  // namespace pyblaz::kernels::internal
