#pragma once

#include <algorithm>
#include <cmath>

#include "core/dtypes/float_type.hpp"
#include "core/ndarray/shape.hpp"

namespace pyblaz::kernels {

/// The binning/unbinning hot loops (§III-A d, Algorithm 3), written once for
/// the compressor and every compressed-space operation that rebins.  All
/// kernels are branch-free per element, use restrict pointers, and carry
/// `omp simd` hints; they are the single source of truth for the arithmetic
/// so every caller quantizes bit-identically.

/// max |c_j| over a contiguous coefficient row.
inline double max_abs(const double* __restrict c, index_t count) {
  double biggest = 0.0;
#pragma omp simd reduction(max : biggest)
  for (index_t j = 0; j < count; ++j)
    biggest = std::max(biggest, std::fabs(c[j]));
  return biggest;
}

/// Quantize a contiguous coefficient row into bin indices:
/// bins[j] = clamp(round(c[j] * inv), -r, r) with inv = r / biggest.
template <typename BinT>
inline void quantize_bins(const double* __restrict c, BinT* __restrict bins,
                          index_t count, double inv, double r) {
#pragma omp simd
  for (index_t j = 0; j < count; ++j)
    bins[j] = static_cast<BinT>(std::clamp(std::round(c[j] * inv), -r, r));
}

/// quantize_bins over a pruned selection: coefficient offsets[slot] feeds bin
/// slot (the compressor's binning + pruning step in one pass).
template <typename BinT>
inline void quantize_bins_gather(const double* __restrict c,
                                 const index_t* __restrict offsets,
                                 BinT* __restrict bins, index_t kept,
                                 double inv, double r) {
#pragma omp simd
  for (index_t slot = 0; slot < kept; ++slot)
    bins[slot] = static_cast<BinT>(
        std::clamp(std::round(c[offsets[slot]] * inv), -r, r));
}

/// Re-bin one block's coefficient row into (N_k, F_k): find-max, round the
/// max through the storage float type, then clamp-round every coefficient
/// into its bin.  Returns the stored N_k.  The final step of Algorithms 2
/// and 4 and the only error source of compressed-space arithmetic.
template <typename BinT>
inline double rebin_block(const double* __restrict c, index_t count, double r,
                          FloatType float_type, BinT* __restrict bins) {
  const double biggest = quantize(max_abs(c, count), float_type);
  if (biggest == 0.0) {
    std::fill(bins, bins + count, BinT{0});
  } else {
    quantize_bins(c, bins, count, r / biggest, r);
  }
  return biggest;
}

/// Decode one block's bin row back to specified coefficients:
/// c[j] = scale * f[j] with scale = N_k / r (Algorithm 3).
template <typename BinT>
inline void unbin_block(const BinT* __restrict f, index_t count, double scale,
                        double* __restrict c) {
#pragma omp simd
  for (index_t j = 0; j < count; ++j)
    c[j] = scale * static_cast<double>(f[j]);
}

/// unbin_block over a pruned selection: bin slot feeds coefficient
/// offsets[slot]; the caller zero-fills the pruned positions.
template <typename BinT>
inline void unbin_scatter(const BinT* __restrict f,
                          const index_t* __restrict offsets, index_t kept,
                          double scale, double* __restrict c) {
  for (index_t slot = 0; slot < kept; ++slot)
    c[offsets[slot]] = scale * static_cast<double>(f[slot]);
}

/// Fused decode of a linear combination: c[j] = s1 f1[j] + s2 f2[j], the
/// shared core of Algorithm 2 (addition) and its alpha/beta generalization.
template <typename Bin1T, typename Bin2T>
inline void decode_axpby(const Bin1T* __restrict f1, double s1,
                         const Bin2T* __restrict f2, double s2, index_t count,
                         double* __restrict c) {
#pragma omp simd
  for (index_t j = 0; j < count; ++j)
    c[j] = s1 * static_cast<double>(f1[j]) + s2 * static_cast<double>(f2[j]);
}

/// Accumulating variant of decode_axpby: c[j] += s1 f1[j] + s2 f2[j].  Lets
/// decode_lincomb sweep the coefficient row once per *pair* of operands.
template <typename BinT>
inline void decode_axpby_accumulate(const BinT* __restrict f1, double s1,
                                    const BinT* __restrict f2, double s2,
                                    index_t count, double* __restrict c) {
#pragma omp simd
  for (index_t j = 0; j < count; ++j)
    c[j] += s1 * static_cast<double>(f1[j]) + s2 * static_cast<double>(f2[j]);
}

/// Accumulating single-operand decode: c[j] += s f[j] (tail of an odd-arity
/// decode_lincomb).
template <typename BinT>
inline void decode_accumulate(const BinT* __restrict f, double s, index_t count,
                              double* __restrict c) {
#pragma omp simd
  for (index_t j = 0; j < count; ++j) c[j] += s * static_cast<double>(f[j]);
}

/// Fused n-ary decode of one block's linear combination,
/// c[j] = Σ_i s[i] f[i][j]: the core of ops::lincomb.  All operands share one
/// bin type (binary compressed ops require matching index types).  Operands
/// stream pairwise so the coefficient row — which stays cache-resident — is
/// swept ceil(n/2) times instead of n.  For n = 2 this is exactly
/// decode_axpby, so the binary ops rewired through lincomb quantize
/// bit-identically to their previous dedicated loops.
template <typename BinT>
inline void decode_lincomb(const BinT* const* __restrict f,
                           const double* __restrict s, index_t num_operands,
                           index_t count, double* __restrict c) {
  index_t i = 0;
  if (num_operands >= 2) {
    decode_axpby(f[0], s[0], f[1], s[1], count, c);
    i = 2;
  } else if (num_operands == 1) {
    unbin_block(f[0], count, s[0], c);
    i = 1;
  } else {
    std::fill(c, c + count, 0.0);
  }
  for (; i + 1 < num_operands; i += 2)
    decode_axpby_accumulate(f[i], s[i], f[i + 1], s[i + 1], count, c);
  if (i < num_operands) decode_accumulate(f[i], s[i], count, c);
}

/// Multi-output fused decode: evaluate K linear combinations over one shared
/// set of distinct bin rows, converting each distinct row's element to double
/// ONCE per element instead of once per (expression, element).  This is the
/// per-block engine of ops::lincomb_batch: when K expressions share operands,
/// the int->double conversions and bin-row loads fall from Σ_k arity_k to
/// num_rows per element.
///
/// Terms are flattened: output k owns terms [offsets[k], offsets[k+1]); term
/// t reads rows[term_rows[t]] with scale scales[t].  @p decoded is caller
/// scratch of at least num_rows * count doubles: every backend converts each
/// distinct row into decoded[d*count ..] once, then streams each output's
/// pairwise passes over those contiguous double rows.
///
/// Bit-identity contract: out[k][j] is computed with exactly the per-element
/// association of decode_lincomb — first pair via a*b + c*d, subsequent pairs
/// summed then accumulated, odd tail accumulated alone, single-term outputs
/// as one multiply — and int->double conversion is exact for every bin value
/// (|bin| <= 2^53), so each output row is bit-identical to a separate
/// decode_lincomb call with the same (row, scale) list.
template <typename BinT>
inline void decode_lincomb_multi(const BinT* const* __restrict rows,
                                 index_t num_rows,
                                 const double* __restrict scales,
                                 const index_t* __restrict term_rows,
                                 const index_t* __restrict offsets,
                                 index_t num_outputs, index_t count,
                                 double* __restrict decoded,
                                 double* const* __restrict out) {
  // Convert every distinct row ONCE (exact: int -> double), then run each
  // output's pairwise passes over the converted doubles.  Per element the
  // operation sequence on out[k][j] is identical to decode_lincomb's
  // per-element order, so hoisting the conversion changes no bit.
  for (index_t d = 0; d < num_rows; ++d) {
    double* __restrict dst = decoded + d * count;
    const BinT* __restrict src = rows[d];
#pragma omp simd
    for (index_t j = 0; j < count; ++j) dst[j] = static_cast<double>(src[j]);
  }
  for (index_t k = 0; k < num_outputs; ++k) {
    const index_t begin = offsets[k];
    const index_t end = offsets[k + 1];
    double* __restrict c = out[k];
    index_t t = begin;
    if (end - begin >= 2) {
      const double* __restrict a = decoded + term_rows[begin] * count;
      const double* __restrict b = decoded + term_rows[begin + 1] * count;
      const double sa = scales[begin];
      const double sb = scales[begin + 1];
#pragma omp simd
      for (index_t j = 0; j < count; ++j) c[j] = sa * a[j] + sb * b[j];
      t = begin + 2;
    } else if (end - begin == 1) {
      const double* __restrict a = decoded + term_rows[begin] * count;
      const double sa = scales[begin];
#pragma omp simd
      for (index_t j = 0; j < count; ++j) c[j] = sa * a[j];
      t = begin + 1;
    } else {
      std::fill(c, c + count, 0.0);
    }
    for (; t + 1 < end; t += 2) {
      const double* __restrict a = decoded + term_rows[t] * count;
      const double* __restrict b = decoded + term_rows[t + 1] * count;
      const double sa = scales[t];
      const double sb = scales[t + 1];
#pragma omp simd
      for (index_t j = 0; j < count; ++j) c[j] += sa * a[j] + sb * b[j];
    }
    if (t < end) {
      const double* __restrict a = decoded + term_rows[t] * count;
      const double sa = scales[t];
#pragma omp simd
      for (index_t j = 0; j < count; ++j) c[j] += sa * a[j];
    }
  }
}

/// Round a coefficient row through the storage float type in place.  The
/// float32 case (the default) is a tight vectorizable loop; the 16-bit types
/// go through their bit-exact conversion helpers.
void quantize_block(double* __restrict x, index_t count, FloatType type);

}  // namespace pyblaz::kernels
