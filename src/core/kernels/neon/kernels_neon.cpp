/// NEON (AArch64 AdvSIMD) kernel backend.
///
/// Same bit-identity contract as the AVX2 backend (docs/PERF.md, "SIMD
/// backends"): no FMA (separate vmulq/vaddq, never vfmaq), per-element
/// operation order preserved, NaN semantics matched to the scalar kernels
/// with explicit compare + select.  vrndaq_f64 is exactly std::round (round
/// to nearest, ties away from zero), so no truncation synthesis is needed.
///
/// The backend accelerates the elementwise families (rebin/unbin and the
/// fused lincomb decode) plus the dense one-axis transform.  The Lee DCT
/// butterflies stay on the scalar kernel here: the recursion's
/// reverse-permute interleave patterns are ISA-specific enough that we only
/// ship them once validated on AArch64 hardware, and registering the scalar
/// function keeps the table complete and bit-identical in the meantime.
///
/// This TU compiles to a nullptr-returning stub on non-AArch64 targets.

#include "core/kernels/backend_tables.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/kernels/fast_transform.hpp"
#include "core/kernels/rebin.hpp"

namespace pyblaz::kernels {
namespace {

double max_abs_neon(const double* c, index_t count) {
  float64x2_t acc = vdupq_n_f64(0.0);
  index_t j = 0;
  for (; j + 2 <= count; j += 2) {
    const float64x2_t fab = vabsq_f64(vld1q_f64(c + j));
    // Take fab only where it compares greater: a NaN |c[j]| keeps the
    // accumulator, matching std::max(biggest, fab).
    acc = vbslq_f64(vcgtq_f64(fab, acc), fab, acc);
  }
  double biggest = std::max(vgetq_lane_f64(acc, 0), vgetq_lane_f64(acc, 1));
  for (; j < count; ++j) biggest = std::max(biggest, std::fabs(c[j]));
  return biggest;
}

/// std::clamp's NaN behavior: a NaN value propagates (both compares are
/// false, so v survives both selects).
inline float64x2_t clamp_f64(float64x2_t v, float64x2_t lo, float64x2_t hi) {
  const float64x2_t floored = vbslq_f64(vcltq_f64(v, lo), lo, v);
  return vbslq_f64(vcgtq_f64(floored, hi), hi, floored);
}

inline float64x2_t load2_pd(const std::int8_t* p) {
  return vcvtq_f64_s64(int64x2_t{p[0], p[1]});
}
inline float64x2_t load2_pd(const std::int16_t* p) {
  return vcvtq_f64_s64(int64x2_t{p[0], p[1]});
}
inline float64x2_t load2_pd(const std::int32_t* p) {
  return vcvtq_f64_s64(int64x2_t{p[0], p[1]});
}

/// Truncating double -> int stores.  vcvtq_s64_f64 truncates toward zero
/// like the scalar cast, and maps NaN to 0 exactly as AArch64 fcvtzs does
/// for gcc's scalar code; values are already clamped into range.
template <typename BinT>
inline void store2(BinT* p, float64x2_t v) {
  const int64x2_t q = vcvtq_s64_f64(v);
  p[0] = static_cast<BinT>(vgetq_lane_s64(q, 0));
  p[1] = static_cast<BinT>(vgetq_lane_s64(q, 1));
}

template <typename BinT>
void quantize_bins_neon(const double* c, BinT* bins, index_t count,
                        double inv, double r) {
  const float64x2_t vinv = vdupq_n_f64(inv);
  const float64x2_t vlo = vdupq_n_f64(-r);
  const float64x2_t vhi = vdupq_n_f64(r);
  index_t j = 0;
  for (; j + 2 <= count; j += 2) {
    const float64x2_t scaled = vmulq_f64(vld1q_f64(c + j), vinv);
    store2(bins + j, clamp_f64(vrndaq_f64(scaled), vlo, vhi));
  }
  for (; j < count; ++j)
    bins[j] = static_cast<BinT>(std::clamp(std::round(c[j] * inv), -r, r));
}

template <typename BinT>
void unbin_block_neon(const BinT* f, index_t count, double scale, double* c) {
  const float64x2_t vs = vdupq_n_f64(scale);
  index_t j = 0;
  for (; j + 2 <= count; j += 2)
    vst1q_f64(c + j, vmulq_f64(vs, load2_pd(f + j)));
  for (; j < count; ++j) c[j] = scale * static_cast<double>(f[j]);
}

template <typename BinT>
void decode_axpby_neon(const BinT* f1, double s1, const BinT* f2, double s2,
                       index_t count, double* c) {
  const float64x2_t vs1 = vdupq_n_f64(s1);
  const float64x2_t vs2 = vdupq_n_f64(s2);
  index_t j = 0;
  for (; j + 2 <= count; j += 2)
    vst1q_f64(c + j, vaddq_f64(vmulq_f64(vs1, load2_pd(f1 + j)),
                               vmulq_f64(vs2, load2_pd(f2 + j))));
  for (; j < count; ++j)
    c[j] = s1 * static_cast<double>(f1[j]) + s2 * static_cast<double>(f2[j]);
}

template <typename BinT>
void decode_axpby_accumulate_neon(const BinT* f1, double s1, const BinT* f2,
                                  double s2, index_t count, double* c) {
  const float64x2_t vs1 = vdupq_n_f64(s1);
  const float64x2_t vs2 = vdupq_n_f64(s2);
  index_t j = 0;
  for (; j + 2 <= count; j += 2) {
    const float64x2_t pair = vaddq_f64(vmulq_f64(vs1, load2_pd(f1 + j)),
                                       vmulq_f64(vs2, load2_pd(f2 + j)));
    vst1q_f64(c + j, vaddq_f64(vld1q_f64(c + j), pair));
  }
  for (; j < count; ++j)
    c[j] += s1 * static_cast<double>(f1[j]) + s2 * static_cast<double>(f2[j]);
}

template <typename BinT>
void decode_accumulate_neon(const BinT* f, double s, index_t count,
                            double* c) {
  const float64x2_t vs = vdupq_n_f64(s);
  index_t j = 0;
  for (; j + 2 <= count; j += 2)
    vst1q_f64(c + j,
              vaddq_f64(vld1q_f64(c + j), vmulq_f64(vs, load2_pd(f + j))));
  for (; j < count; ++j) c[j] += s * static_cast<double>(f[j]);
}

template <typename BinT>
void decode_lincomb_neon(const BinT* const* f, const double* s,
                         index_t num_operands, index_t count, double* c) {
  index_t i = 0;
  if (num_operands >= 2) {
    decode_axpby_neon(f[0], s[0], f[1], s[1], count, c);
    i = 2;
  } else if (num_operands == 1) {
    unbin_block_neon(f[0], count, s[0], c);
    i = 1;
  } else {
    std::fill(c, c + count, 0.0);
  }
  for (; i + 1 < num_operands; i += 2)
    decode_axpby_accumulate_neon(f[i], s[i], f[i + 1], s[i + 1], count, c);
  if (i < num_operands) decode_accumulate_neon(f[i], s[i], count, c);
}

void dense_transform_axis_neon(const double* src, double* dst,
                               const double* h, index_t n, index_t outer,
                               index_t inner, bool forward) {
  if (n == 1) {
    std::copy(src, src + outer * inner, dst);
    return;
  }
  if (inner == 1) {
    for (index_t o = 0; o < outer; ++o) {
      const double* line = src + o * n;
      double* out = dst + o * n;
      if (forward) {
        std::fill(out, out + n, 0.0);
        for (index_t k = 0; k < n; ++k) {
          const float64x2_t vv = vdupq_n_f64(line[k]);
          const double* hrow = h + k * n;
          index_t k2 = 0;
          for (; k2 + 2 <= n; k2 += 2)
            vst1q_f64(out + k2,
                      vaddq_f64(vld1q_f64(out + k2),
                                vmulq_f64(vv, vld1q_f64(hrow + k2))));
          for (; k2 < n; ++k2) out[k2] += line[k] * hrow[k2];
        }
      } else {
        index_t k2 = 0;
        for (; k2 + 2 <= n; k2 += 2) {
          float64x2_t total = vdupq_n_f64(0.0);
          for (index_t k = 0; k < n; ++k) {
            const float64x2_t col{h[(k2 + 0) * n + k], h[(k2 + 1) * n + k]};
            total = vaddq_f64(total, vmulq_f64(vdupq_n_f64(line[k]), col));
          }
          vst1q_f64(out + k2, total);
        }
        for (; k2 < n; ++k2) {
          const double* hrow = h + k2 * n;
          double total = 0.0;
          for (index_t k = 0; k < n; ++k) total += line[k] * hrow[k];
          out[k2] = total;
        }
      }
    }
  } else {
    for (index_t o = 0; o < outer; ++o) {
      const double* base = src + o * n * inner;
      double* sbase = dst + o * n * inner;
      std::fill(sbase, sbase + n * inner, 0.0);
      for (index_t k = 0; k < n; ++k) {
        const double* line = base + k * inner;
        for (index_t k2 = 0; k2 < n; ++k2) {
          const double w = forward ? h[k * n + k2] : h[k2 * n + k];
          const float64x2_t vw = vdupq_n_f64(w);
          double* out = sbase + k2 * inner;
          index_t in = 0;
          for (; in + 2 <= inner; in += 2)
            vst1q_f64(out + in,
                      vaddq_f64(vld1q_f64(out + in),
                                vmulq_f64(vw, vld1q_f64(line + in))));
          for (; in < inner; ++in) out[in] += w * line[in];
        }
      }
    }
  }
}

/// Multi-output batched decode: stays on the scalar oracle until a dedicated
/// 2-lane variant is measured on real AArch64 hardware (same policy as the
/// unrecorded NEON speedups in ROADMAP.md) — correctness and bit-identity
/// hold either way because the scalar kernel IS the contract.
template <typename BinT>
void decode_lincomb_multi_neon(const BinT* const* rows, index_t num_rows,
                               const double* scales, const index_t* term_rows,
                               const index_t* offsets, index_t num_outputs,
                               index_t count, double* decoded,
                               double* const* out) {
  decode_lincomb_multi<BinT>(rows, num_rows, scales, term_rows, offsets,
                             num_outputs, count, decoded, out);
}

template <typename BinT>
constexpr BinKernels<BinT> neon_bin_kernels() {
  return {&quantize_bins_neon<BinT>, &unbin_block_neon<BinT>,
          &decode_lincomb_neon<BinT>, &decode_lincomb_multi_neon<BinT>};
}

/// int64 bins stay scalar: the 2^53 arithmetic radius would need the full
/// int64 lane math validated on hardware first.
void quantize_bins_i64(const double* c, std::int64_t* bins, index_t count,
                       double inv, double r) {
  quantize_bins<std::int64_t>(c, bins, count, inv, r);
}
void unbin_block_i64(const std::int64_t* f, index_t count, double scale,
                     double* c) {
  unbin_block<std::int64_t>(f, count, scale, c);
}
void decode_lincomb_i64(const std::int64_t* const* f, const double* s,
                        index_t num_operands, index_t count, double* c) {
  decode_lincomb<std::int64_t>(f, s, num_operands, count, c);
}
void decode_lincomb_multi_i64(const std::int64_t* const* rows,
                              index_t num_rows, const double* scales,
                              const index_t* term_rows, const index_t* offsets,
                              index_t num_outputs, index_t count,
                              double* decoded, double* const* out) {
  decode_lincomb_multi<std::int64_t>(rows, num_rows, scales, term_rows,
                                     offsets, num_outputs, count, decoded,
                                     out);
}

}  // namespace

namespace internal {

const KernelTable* neon_table() {
  static const KernelTable table = {
      "neon",
      &max_abs_neon,
      neon_bin_kernels<std::int8_t>(),
      neon_bin_kernels<std::int16_t>(),
      neon_bin_kernels<std::int32_t>(),
      {&quantize_bins_i64, &unbin_block_i64, &decode_lincomb_i64,
       &decode_lincomb_multi_i64},
      &dense_transform_axis_neon,
      &dct_fast_axis,
      &huffman_decode_run_generic,
  };
  return &table;
}

}  // namespace internal
}  // namespace pyblaz::kernels

#else  // !defined(__aarch64__)

namespace pyblaz::kernels::internal {

const KernelTable* neon_table() { return nullptr; }

}  // namespace pyblaz::kernels::internal

#endif
