#pragma once

#include "core/ndarray/shape.hpp"
#include "core/transform/transform.hpp"

namespace pyblaz::kernels {

/// True when the factorized O(n log n) path can transform an axis of length
/// @p n: always for n = 1 (identity), the Lee/recursive DCT-II for
/// n in {2, 4, 8, 16, 32}, and the butterfly Haar for any power of two.
bool fast_axis_supported(TransformKind kind, index_t n);

/// True when the factorized path is supported AND measured faster than the
/// dense matrix apply for this axis length — what TransformImpl::kAuto uses.
/// (Very short Haar axes are dominated by butterfly level overhead, so the
/// dense path keeps them.)
bool fast_axis_preferred(TransformKind kind, index_t n);

/// In-place factorized transform along one axis of a row-major block viewed
/// as (outer, n, inner): each of the @p outer panels is an n x inner slab
/// whose n dimension is contracted with the orthonormal basis.  The butterfly
/// arithmetic runs elementwise across the inner dimension, so strided axes
/// vectorize as well as contiguous ones.
///
/// @p tmp must hold n * inner doubles and must not alias @p data.  Requires
/// fast_axis_supported(kind, n); call the dense matrix path otherwise.
void fast_transform_axis(TransformKind kind, double* data, double* tmp,
                         index_t n, index_t outer, index_t inner, bool forward);

}  // namespace pyblaz::kernels
