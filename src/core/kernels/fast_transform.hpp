#pragma once

#include <cstdint>

#include "core/ndarray/shape.hpp"
#include "core/transform/transform.hpp"

namespace pyblaz::kernels {

/// True when the factorized O(n log n) path can transform an axis of length
/// @p n: always for n = 1 (identity), the Lee/recursive DCT-II for
/// n in {2, 4, 8, 16, 32, 64, 128}, and the butterfly Haar for any power of
/// two.
bool fast_axis_supported(TransformKind kind, index_t n);

/// How fast_axis_preferred() decides between the factorized and the dense
/// axis kernel for a supported size.
enum class FastAxisPolicy : std::uint8_t {
  /// One-shot startup micro-probe: the first dispatch times both kernels on
  /// this host (forward + inverse, contiguous + strided panels) and caches
  /// the verdict per (kind, n).  The default.  The measurement overrides the
  /// fixed heuristic only on a decisive >25% win, so borderline sizes stay
  /// on the heuristic instead of flipping between runs on timer noise; a
  /// host where the probe *is* decisive dispatches differently from other
  /// hosts (the outputs differ only in last-ulp rounding and remain fully
  /// interoperable).
  kAutotune = 0,
  /// The fixed pre-measured heuristic (all supported DCT sizes; Haar
  /// n >= 8): host-independent dispatch for bit-reproducible pipelines
  /// across machines.
  kFixed = 1,
};

/// Process-wide policy override.  Defaults to kAutotune; the PYBLAZ_FAST_AXIS
/// environment variable ("autotune" or "fixed", read once at startup) is the
/// settings override, and this setter is the programmatic one (used by tests
/// and benchmarks).
void set_fast_axis_policy(FastAxisPolicy policy);
FastAxisPolicy fast_axis_policy();

/// True when the factorized path is supported AND preferred over the dense
/// matrix apply for this axis length — what TransformImpl::kAuto uses.
/// Under FastAxisPolicy::kAutotune the preference is measured on this host
/// (first call probes, later calls hit the cache); under kFixed it is the
/// pre-measured heuristic (very short Haar axes are dominated by butterfly
/// level overhead, so the dense path keeps them).
bool fast_axis_preferred(TransformKind kind, index_t n);

/// Dense matrix contraction of one axis of a row-major block viewed as
/// (outer, n, inner), out of place (@p src -> @p dst): forward contracts
/// with basis rows, inverse with basis columns.  @p matrix is the n x n
/// orthonormal basis.  This is TransformImpl::kDense's kernel, hoisted here
/// so the autotune probe times exactly the code the dense path runs.
void dense_transform_axis(const double* src, double* dst, const double* matrix,
                          index_t n, index_t outer, index_t inner,
                          bool forward);

/// In-place factorized transform along one axis of a row-major block viewed
/// as (outer, n, inner): each of the @p outer panels is an n x inner slab
/// whose n dimension is contracted with the orthonormal basis.  The butterfly
/// arithmetic runs elementwise across the inner dimension, so strided axes
/// vectorize as well as contiguous ones.
///
/// @p tmp must hold n * inner doubles and must not alias @p data.  Requires
/// fast_axis_supported(kind, n); call the dense matrix path otherwise.
void fast_transform_axis(TransformKind kind, double* data, double* tmp,
                         index_t n, index_t outer, index_t inner, bool forward);

/// The DCT arm of fast_transform_axis on its own: in-place factorized Lee
/// DCT along one axis.  Requires fast_axis_supported(kDCT, n) and n > 1.
/// This is the scalar implementation behind KernelTable::dct_axis; the SIMD
/// backends replace the panel kernels but must match it bit for bit.
void dct_fast_axis(double* data, double* tmp, index_t n, index_t outer,
                   index_t inner, bool forward);

/// Lee's secant factors for a supported DCT size @p m: the length-m/2 table
/// sec[p] = 1 / (2 cos(pi (2p+1) / (2m))).  Exposed so SIMD backends load
/// the *same* table memory as the scalar recursion instead of recomputing
/// values that libm could conceivably round differently.
const double* dct_secant_table(index_t m);

}  // namespace pyblaz::kernels
