#include "core/kernels/rebin.hpp"

namespace pyblaz::kernels {

void quantize_block(double* __restrict x, index_t count, FloatType type) {
  switch (type) {
    case FloatType::kFloat64:
      return;
    case FloatType::kFloat32:
#pragma omp simd
      for (index_t j = 0; j < count; ++j)
        x[j] = static_cast<double>(static_cast<float>(x[j]));
      return;
    case FloatType::kBFloat16:
    case FloatType::kFloat16:
      for (index_t j = 0; j < count; ++j) x[j] = quantize(x[j], type);
      return;
  }
}

}  // namespace pyblaz::kernels
