/// AVX2 kernel backend.
///
/// Every kernel here must reproduce the scalar oracle in rebin.hpp /
/// fast_transform.cpp *bit for bit* (see docs/PERF.md, "SIMD backends").
/// The rules that make that possible:
///
///  - No FMA, ever: the project builds with -ffp-contract=off and the scalar
///    kernels round after every multiply and add, so each SIMD kernel uses
///    separate mul/add intrinsics (-mavx2 does not enable FMA contraction).
///  - Per-element operation order is preserved exactly; vectorization only
///    runs independent elements side by side.  The one reduction (max_abs)
///    splits into lane accumulators, which is exact because max never rounds.
///  - std::round (half away from zero) is synthesized from truncation:
///    t = trunc(x); |x - t| >= 0.5 selects t +/- 1.  x - t is exact (it is
///    the fraction bits of x), and |x| >= 2^52 gives t == x, diff == 0.
///  - NaN semantics follow the scalar kernels: vmaxpd/vminpd return their
///    *second* operand on an unordered compare, so max_abs keeps the
///    accumulator when the new |c| is NaN (std::max drops NaN) while clamp
///    propagates a NaN value (std::clamp keeps it).
///  - double -> int conversion truncates via cvttpd + byte shuffles, never
///    a saturating pack: gcc's scalar cast produces 0x80000000 -> truncated
///    bytes for NaN, and a saturating pack would disagree.
///  - The int64 bin type stays on the scalar kernels (AVX2 has no packed
///    double<->int64 conversion, and its 2^53 radius exceeds int32 range).
///
/// This TU is compiled with -mavx2 on x86-64 (CMakeLists.txt sets the
/// per-file flag) and collapses to a nullptr-returning stub elsewhere, so
/// the dispatcher needs no platform #ifdefs.

#include "core/kernels/backend_tables.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/kernels/fast_transform.hpp"
#include "core/kernels/rebin.hpp"

namespace pyblaz::kernels {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440084436210485;

inline __m256d abs_pd(__m256d v) {
  const __m256d mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  return _mm256_and_pd(v, mask);
}

/// std::round: nearest integral, halfway cases away from zero.
inline __m256d round_half_away(__m256d x) {
  const __m256d t =
      _mm256_round_pd(x, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m256d diff = _mm256_sub_pd(x, t);  // Exact: the fraction bits of x.
  const __m256d sign_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x8000000000000000ULL));
  const __m256d one_signed =
      _mm256_or_pd(_mm256_set1_pd(1.0), _mm256_and_pd(x, sign_mask));
  const __m256d away = _mm256_add_pd(t, one_signed);
  const __m256d mask =
      _mm256_cmp_pd(abs_pd(diff), _mm256_set1_pd(0.5), _CMP_GE_OQ);
  // NaN x: the compare is false and t (== NaN) passes through, like
  // std::round.
  return _mm256_blendv_pd(t, away, mask);
}

/// std::clamp(v, lo, hi) with std::clamp's NaN behavior (a NaN value
/// propagates): vmaxpd/vminpd return the second operand on unordered, so v
/// must be the second operand of both.
inline __m256d clamp_pd(__m256d v, __m256d lo, __m256d hi) {
  return _mm256_min_pd(hi, _mm256_max_pd(lo, v));
}

// --- int <-> double lane conversions ---------------------------------------

inline __m256d load4_pd(const std::int8_t* p) {
  std::int32_t raw;
  std::memcpy(&raw, p, sizeof raw);
  return _mm256_cvtepi32_pd(_mm_cvtepi8_epi32(_mm_cvtsi32_si128(raw)));
}

inline __m256d load4_pd(const std::int16_t* p) {
  std::int64_t raw;
  std::memcpy(&raw, p, sizeof raw);
  return _mm256_cvtepi32_pd(_mm_cvtepi16_epi32(_mm_cvtsi64_si128(raw)));
}

inline __m256d load4_pd(const std::int32_t* p) {
  return _mm256_cvtepi32_pd(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

/// Truncating double -> int stores.  cvttpd yields 0x80000000 for NaN and
/// out-of-range values; taking the low bytes matches gcc's scalar cast chain
/// (cvttsd2si + integer truncation) exactly.
inline void store4(std::int8_t* p, __m256d v) {
  const __m128i q = _mm256_cvttpd_epi32(v);
  const __m128i bytes = _mm_shuffle_epi8(
      q, _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                       -1, -1));
  const std::int32_t raw = _mm_cvtsi128_si32(bytes);
  std::memcpy(p, &raw, sizeof raw);
}

inline void store4(std::int16_t* p, __m256d v) {
  const __m128i q = _mm256_cvttpd_epi32(v);
  const __m128i words = _mm_shuffle_epi8(
      q, _mm_setr_epi8(0, 1, 4, 5, 8, 9, 12, 13, -1, -1, -1, -1, -1, -1, -1,
                       -1));
  const std::int64_t raw = _mm_cvtsi128_si64(words);
  std::memcpy(p, &raw, sizeof raw);
}

inline void store4(std::int32_t* p, __m256d v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), _mm256_cvttpd_epi32(v));
}

// --- family 1: rebin / unbin ----------------------------------------------

double max_abs_avx2(const double* c, index_t count) {
  __m256d acc = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 4 <= count; j += 4)
    // v as the first operand: a NaN |c[j]| keeps the accumulator, matching
    // std::max(biggest, fab).
    acc = _mm256_max_pd(abs_pd(_mm256_loadu_pd(c + j)), acc);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double biggest = 0.0;
  for (double lane : lanes) biggest = std::max(biggest, lane);
  for (; j < count; ++j) biggest = std::max(biggest, std::fabs(c[j]));
  return biggest;
}

template <typename BinT>
void quantize_bins_avx2(const double* c, BinT* bins, index_t count, double inv,
                        double r) {
  const __m256d vinv = _mm256_set1_pd(inv);
  const __m256d vlo = _mm256_set1_pd(-r);
  const __m256d vhi = _mm256_set1_pd(r);
  index_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const __m256d scaled = _mm256_mul_pd(_mm256_loadu_pd(c + j), vinv);
    store4(bins + j, clamp_pd(round_half_away(scaled), vlo, vhi));
  }
  for (; j < count; ++j)
    bins[j] = static_cast<BinT>(std::clamp(std::round(c[j] * inv), -r, r));
}

template <typename BinT>
void unbin_block_avx2(const BinT* f, index_t count, double scale, double* c) {
  const __m256d vs = _mm256_set1_pd(scale);
  index_t j = 0;
  for (; j + 4 <= count; j += 4)
    _mm256_storeu_pd(c + j, _mm256_mul_pd(vs, load4_pd(f + j)));
  for (; j < count; ++j) c[j] = scale * static_cast<double>(f[j]);
}

// --- family 1: fused lincomb decode ----------------------------------------

template <typename BinT>
void decode_axpby_avx2(const BinT* f1, double s1, const BinT* f2, double s2,
                       index_t count, double* c) {
  const __m256d vs1 = _mm256_set1_pd(s1);
  const __m256d vs2 = _mm256_set1_pd(s2);
  index_t j = 0;
  for (; j + 4 <= count; j += 4)
    _mm256_storeu_pd(c + j,
                     _mm256_add_pd(_mm256_mul_pd(vs1, load4_pd(f1 + j)),
                                   _mm256_mul_pd(vs2, load4_pd(f2 + j))));
  for (; j < count; ++j)
    c[j] = s1 * static_cast<double>(f1[j]) + s2 * static_cast<double>(f2[j]);
}

template <typename BinT>
void decode_axpby_accumulate_avx2(const BinT* f1, double s1, const BinT* f2,
                                  double s2, index_t count, double* c) {
  const __m256d vs1 = _mm256_set1_pd(s1);
  const __m256d vs2 = _mm256_set1_pd(s2);
  index_t j = 0;
  for (; j + 4 <= count; j += 4) {
    // c[j] += a + b rounds (a + b) first, then the accumulate — keep that
    // association.
    const __m256d pair =
        _mm256_add_pd(_mm256_mul_pd(vs1, load4_pd(f1 + j)),
                      _mm256_mul_pd(vs2, load4_pd(f2 + j)));
    _mm256_storeu_pd(c + j, _mm256_add_pd(_mm256_loadu_pd(c + j), pair));
  }
  for (; j < count; ++j)
    c[j] += s1 * static_cast<double>(f1[j]) + s2 * static_cast<double>(f2[j]);
}

template <typename BinT>
void decode_accumulate_avx2(const BinT* f, double s, index_t count,
                            double* c) {
  const __m256d vs = _mm256_set1_pd(s);
  index_t j = 0;
  for (; j + 4 <= count; j += 4)
    _mm256_storeu_pd(
        c + j, _mm256_add_pd(_mm256_loadu_pd(c + j),
                             _mm256_mul_pd(vs, load4_pd(f + j))));
  for (; j < count; ++j) c[j] += s * static_cast<double>(f[j]);
}

/// Same pairwise streaming as the scalar decode_lincomb: the per-element
/// evaluation order (and therefore rounding) is identical; only the lane
/// width differs.
template <typename BinT>
void decode_lincomb_avx2(const BinT* const* f, const double* s,
                         index_t num_operands, index_t count, double* c) {
  index_t i = 0;
  if (num_operands >= 2) {
    decode_axpby_avx2(f[0], s[0], f[1], s[1], count, c);
    i = 2;
  } else if (num_operands == 1) {
    unbin_block_avx2(f[0], count, s[0], c);
    i = 1;
  } else {
    std::fill(c, c + count, 0.0);
  }
  for (; i + 1 < num_operands; i += 2)
    decode_axpby_accumulate_avx2(f[i], s[i], f[i + 1], s[i + 1], count, c);
  if (i < num_operands) decode_accumulate_avx2(f[i], s[i], count, c);
}

/// c[j] = sa*a[j] + sb*b[j] over converted double rows — the first-pair pass
/// of the multi-output decode, same per-element association as
/// decode_axpby_avx2 (mul, mul, add; scale broadcasts hoisted).
void axpby_rows_avx2(const double* a, double sa, const double* b, double sb,
                     index_t count, double* c) {
  const __m256d va = _mm256_set1_pd(sa);
  const __m256d vb = _mm256_set1_pd(sb);
  index_t j = 0;
  for (; j + 4 <= count; j += 4)
    _mm256_storeu_pd(
        c + j, _mm256_add_pd(_mm256_mul_pd(va, _mm256_loadu_pd(a + j)),
                             _mm256_mul_pd(vb, _mm256_loadu_pd(b + j))));
  for (; j < count; ++j) c[j] = sa * a[j] + sb * b[j];
}

/// c[j] += sa*a[j] + sb*b[j]: the later-pair pass (pair rounds first, then
/// accumulates — the decode_axpby_accumulate_avx2 association).
void axpby_accumulate_rows_avx2(const double* a, double sa, const double* b,
                                double sb, index_t count, double* c) {
  const __m256d va = _mm256_set1_pd(sa);
  const __m256d vb = _mm256_set1_pd(sb);
  index_t j = 0;
  for (; j + 4 <= count; j += 4)
    _mm256_storeu_pd(
        c + j,
        _mm256_add_pd(_mm256_loadu_pd(c + j),
                      _mm256_add_pd(_mm256_mul_pd(va, _mm256_loadu_pd(a + j)),
                                    _mm256_mul_pd(vb, _mm256_loadu_pd(b + j)))));
  for (; j < count; ++j) c[j] += sa * a[j] + sb * b[j];
}

/// c[j] = sa*a[j]: the single-term output (unbin_block association).
void scale_row_avx2(const double* a, double sa, index_t count, double* c) {
  const __m256d va = _mm256_set1_pd(sa);
  index_t j = 0;
  for (; j + 4 <= count; j += 4)
    _mm256_storeu_pd(c + j, _mm256_mul_pd(va, _mm256_loadu_pd(a + j)));
  for (; j < count; ++j) c[j] = sa * a[j];
}

/// c[j] += sa*a[j]: the odd-tail term (decode_accumulate association).
void accumulate_row_avx2(const double* a, double sa, index_t count,
                         double* c) {
  const __m256d va = _mm256_set1_pd(sa);
  index_t j = 0;
  for (; j + 4 <= count; j += 4)
    _mm256_storeu_pd(c + j,
                     _mm256_add_pd(_mm256_loadu_pd(c + j),
                                   _mm256_mul_pd(va, _mm256_loadu_pd(a + j))));
  for (; j < count; ++j) c[j] += sa * a[j];
}

/// Multi-output batched decode: every distinct row is converted to double
/// ONCE into the caller's decoded scratch (row d at decoded[d*count ..]),
/// then each output's term list streams pairwise passes over those contiguous
/// double rows — contiguous loads, hoisted scale broadcasts, no per-element
/// indirection.  The per-element operation sequence on out[k][j] (first pair
/// a*b + c*d, later pairs summed then accumulated, odd tail alone) matches
/// decode_lincomb_avx2 exactly and int->double conversion is exact, so every
/// output row is bit-identical to a separate decode_lincomb call.
template <typename BinT>
void decode_lincomb_multi_avx2(const BinT* const* rows, index_t num_rows,
                               const double* scales, const index_t* term_rows,
                               const index_t* offsets, index_t num_outputs,
                               index_t count, double* decoded,
                               double* const* out) {
  for (index_t d = 0; d < num_rows; ++d) {
    const BinT* src = rows[d];
    double* dst = decoded + d * count;
    index_t j = 0;
    for (; j + 4 <= count; j += 4)
      _mm256_storeu_pd(dst + j, load4_pd(src + j));
    for (; j < count; ++j) dst[j] = static_cast<double>(src[j]);
  }
  for (index_t k = 0; k < num_outputs; ++k) {
    const index_t begin = offsets[k];
    const index_t end = offsets[k + 1];
    double* c = out[k];
    index_t t = begin;
    if (end - begin >= 2) {
      axpby_rows_avx2(decoded + term_rows[begin] * count, scales[begin],
                      decoded + term_rows[begin + 1] * count,
                      scales[begin + 1], count, c);
      t = begin + 2;
    } else if (end - begin == 1) {
      scale_row_avx2(decoded + term_rows[begin] * count, scales[begin], count,
                     c);
      t = begin + 1;
    } else {
      std::fill(c, c + count, 0.0);
    }
    for (; t + 1 < end; t += 2)
      axpby_accumulate_rows_avx2(decoded + term_rows[t] * count, scales[t],
                                 decoded + term_rows[t + 1] * count,
                                 scales[t + 1], count, c);
    if (t < end)
      accumulate_row_avx2(decoded + term_rows[t] * count, scales[t], count, c);
  }
}

// --- family 3: dense one-axis transform ------------------------------------

void dense_transform_axis_avx2(const double* src, double* dst,
                               const double* h, index_t n, index_t outer,
                               index_t inner, bool forward) {
  if (n == 1) {
    std::copy(src, src + outer * inner, dst);
    return;
  }
  if (inner == 1) {
    for (index_t o = 0; o < outer; ++o) {
      const double* line = src + o * n;
      double* out = dst + o * n;
      if (forward) {
        // Saxpy with contiguous matrix rows; out[k2] updates are independent
        // across k2, so vectorizing across outputs preserves each output's
        // k-ordered accumulation.
        std::fill(out, out + n, 0.0);
        for (index_t k = 0; k < n; ++k) {
          const double v = line[k];
          const __m256d vv = _mm256_set1_pd(v);
          const double* hrow = h + k * n;
          index_t k2 = 0;
          for (; k2 + 4 <= n; k2 += 4)
            _mm256_storeu_pd(
                out + k2,
                _mm256_add_pd(_mm256_loadu_pd(out + k2),
                              _mm256_mul_pd(vv, _mm256_loadu_pd(hrow + k2))));
          for (; k2 < n; ++k2) out[k2] += v * hrow[k2];
        }
      } else {
        // Four output dot products side by side, k strictly ascending, so
        // every output's add sequence matches the scalar dot exactly.
        index_t k2 = 0;
        for (; k2 + 4 <= n; k2 += 4) {
          __m256d total = _mm256_setzero_pd();
          for (index_t k = 0; k < n; ++k) {
            const __m256d col =
                _mm256_set_pd(h[(k2 + 3) * n + k], h[(k2 + 2) * n + k],
                              h[(k2 + 1) * n + k], h[(k2 + 0) * n + k]);
            total = _mm256_add_pd(
                total, _mm256_mul_pd(_mm256_set1_pd(line[k]), col));
          }
          _mm256_storeu_pd(out + k2, total);
        }
        for (; k2 < n; ++k2) {
          const double* hrow = h + k2 * n;
          double total = 0.0;
          for (index_t k = 0; k < n; ++k) total += line[k] * hrow[k];
          out[k2] = total;
        }
      }
    }
  } else {
    for (index_t o = 0; o < outer; ++o) {
      const double* base = src + o * n * inner;
      double* sbase = dst + o * n * inner;
      std::fill(sbase, sbase + n * inner, 0.0);
      for (index_t k = 0; k < n; ++k) {
        const double* line = base + k * inner;
        for (index_t k2 = 0; k2 < n; ++k2) {
          const double w = forward ? h[k * n + k2] : h[k2 * n + k];
          const __m256d vw = _mm256_set1_pd(w);
          double* out = sbase + k2 * inner;
          index_t in = 0;
          for (; in + 4 <= inner; in += 4)
            _mm256_storeu_pd(
                out + in,
                _mm256_add_pd(_mm256_loadu_pd(out + in),
                              _mm256_mul_pd(vw, _mm256_loadu_pd(line + in))));
          for (; in < inner; ++in) out[in] += w * line[in];
        }
      }
    }
  }
}

// --- family 3: Lee DCT butterflies -----------------------------------------

/// Lee's forward recursion, mirroring fast_transform.cpp's lee_forward pass
/// for pass, vectorized across the inner dimension like the scalar kernel's
/// omp simd loops.  Only instantiated for the shapes where this measurably
/// beats the scalar recursion (see dct_axis_avx2's gate): an across-p
/// variant for inner == 1 was measured at 0.3-0.5x scalar — the reversed
/// loads and even/odd interleaves cost more than the arithmetic they feed —
/// and removed.
template <index_t M, bool kScaled>
void lee_forward_avx2(double* __restrict x, double* __restrict tmp,
                      index_t inner, double scale, double dc_scale) {
  if constexpr (M == 1) {
    (void)x;
    (void)tmp;
    (void)inner;
    (void)scale;
    (void)dc_scale;
  } else {
    constexpr index_t kHalf = M / 2;
    static const double* const sec = dct_secant_table(M);
    {
      for (index_t p = 0; p < kHalf; ++p) {
        const double* __restrict xa = x + p * inner;
        const double* __restrict xb = x + (M - 1 - p) * inner;
        double* __restrict g = tmp + p * inner;
        double* __restrict hh = tmp + (kHalf + p) * inner;
        const double s = sec[p];
        const __m256d vs = _mm256_set1_pd(s);
        index_t i = 0;
        for (; i + 4 <= inner; i += 4) {
          const __m256d a = _mm256_loadu_pd(xa + i);
          const __m256d b = _mm256_loadu_pd(xb + i);
          _mm256_storeu_pd(g + i, _mm256_add_pd(a, b));
          _mm256_storeu_pd(hh + i, _mm256_mul_pd(_mm256_sub_pd(a, b), vs));
        }
        for (; i < inner; ++i) {
          g[i] = xa[i] + xb[i];
          hh[i] = (xa[i] - xb[i]) * s;
        }
      }
    }
    lee_forward_avx2<kHalf, false>(tmp, x, inner, 1.0, 1.0);
    lee_forward_avx2<kHalf, false>(tmp + kHalf * inner, x + kHalf * inner,
                                   inner, 1.0, 1.0);
    // Interleave: even outputs from G, odd outputs H[k] + H[k+1].
    {
      for (index_t k = 0; k < kHalf; ++k) {
        const double* __restrict gk = tmp + k * inner;
        const double* __restrict hk = tmp + (kHalf + k) * inner;
        double* __restrict xe = x + (2 * k) * inner;
        double* __restrict xo = x + (2 * k + 1) * inner;
        const double fe = kScaled ? (k == 0 ? dc_scale : scale) : 1.0;
        const __m256d vfe = _mm256_set1_pd(fe);
        const __m256d vscale = _mm256_set1_pd(scale);
        const bool has_next = k + 1 < kHalf;
        const double* __restrict hk1 = has_next ? hk + inner : nullptr;
        index_t i = 0;
        for (; i + 4 <= inner; i += 4) {
          const __m256d g = _mm256_loadu_pd(gk + i);
          const __m256d hv = _mm256_loadu_pd(hk + i);
          const __m256d ho =
              has_next ? _mm256_add_pd(hv, _mm256_loadu_pd(hk1 + i)) : hv;
          if constexpr (kScaled) {
            _mm256_storeu_pd(xe + i, _mm256_mul_pd(g, vfe));
            _mm256_storeu_pd(xo + i, _mm256_mul_pd(ho, vscale));
          } else {
            _mm256_storeu_pd(xe + i, g);
            _mm256_storeu_pd(xo + i, ho);
          }
        }
        for (; i < inner; ++i) {
          const double ho = has_next ? hk[i] + hk1[i] : hk[i];
          if constexpr (kScaled) {
            xe[i] = gk[i] * fe;
            xo[i] = ho * scale;
          } else {
            xe[i] = gk[i];
            xo[i] = ho;
          }
        }
      }
    }
  }
}

/// Transpose of lee_forward_avx2, mirroring the scalar lee_inverse.
template <index_t M, bool kScaled>
void lee_inverse_avx2(double* __restrict x, double* __restrict tmp,
                      index_t inner, double scale, double dc_scale) {
  if constexpr (M == 1) {
    (void)x;
    (void)tmp;
    (void)inner;
    (void)scale;
    (void)dc_scale;
  } else {
    constexpr index_t kHalf = M / 2;
    static const double* const sec = dct_secant_table(M);
    // Deinterleave: G'[k] = c[2k], H'[k] = c[2k+1] + c[2k-1] (c[-1] = 0).
    {
      for (index_t k = 0; k < kHalf; ++k) {
        const double* __restrict xe = x + (2 * k) * inner;
        const double* __restrict xo = x + (2 * k + 1) * inner;
        double* __restrict g = tmp + k * inner;
        double* __restrict hh = tmp + (kHalf + k) * inner;
        const double* __restrict xo_prev = k > 0 ? xo - 2 * inner : nullptr;
        const double ge = kScaled ? (k == 0 ? dc_scale : scale) : 1.0;
        const __m256d vge = _mm256_set1_pd(ge);
        const __m256d vscale = _mm256_set1_pd(scale);
        index_t i = 0;
        for (; i + 4 <= inner; i += 4) {
          const __m256d e = _mm256_loadu_pd(xe + i);
          const __m256d o = _mm256_loadu_pd(xo + i);
          const __m256d hsum =
              k > 0 ? _mm256_add_pd(o, _mm256_loadu_pd(xo_prev + i)) : o;
          if constexpr (kScaled) {
            _mm256_storeu_pd(g + i, _mm256_mul_pd(e, vge));
            _mm256_storeu_pd(hh + i, _mm256_mul_pd(hsum, vscale));
          } else {
            _mm256_storeu_pd(g + i, e);
            _mm256_storeu_pd(hh + i, hsum);
          }
        }
        for (; i < inner; ++i) {
          const double hsum = k > 0 ? xo[i] + xo_prev[i] : xo[i];
          if constexpr (kScaled) {
            g[i] = xe[i] * ge;
            hh[i] = hsum * scale;
          } else {
            g[i] = xe[i];
            hh[i] = hsum;
          }
        }
      }
    }
    lee_inverse_avx2<kHalf, false>(tmp, x, inner, 1.0, 1.0);
    lee_inverse_avx2<kHalf, false>(tmp + kHalf * inner, x + kHalf * inner,
                                   inner, 1.0, 1.0);
    // Butterfly: x[p] = g[p] + sec[p] h[p], x[M-1-p] = g[p] - sec[p] h[p].
    {
      for (index_t p = 0; p < kHalf; ++p) {
        const double* __restrict g = tmp + p * inner;
        const double* __restrict hh = tmp + (kHalf + p) * inner;
        double* __restrict xa = x + p * inner;
        double* __restrict xb = x + (M - 1 - p) * inner;
        const double s = sec[p];
        const __m256d vs = _mm256_set1_pd(s);
        index_t i = 0;
        for (; i + 4 <= inner; i += 4) {
          const __m256d t = _mm256_mul_pd(vs, _mm256_loadu_pd(hh + i));
          const __m256d gv = _mm256_loadu_pd(g + i);
          _mm256_storeu_pd(xa + i, _mm256_add_pd(gv, t));
          _mm256_storeu_pd(xb + i, _mm256_sub_pd(gv, t));
        }
        for (; i < inner; ++i) {
          const double t = s * hh[i];
          xa[i] = g[i] + t;
          xb[i] = g[i] - t;
        }
      }
    }
  }
}

template <index_t M>
void dct_panels_avx2(double* data, double* tmp, index_t outer, index_t inner,
                     bool forward) {
  const double scale = std::sqrt(2.0 / static_cast<double>(M));
  const double dc_scale = scale * kInvSqrt2;
  const index_t panel = M * inner;
  if (forward) {
    for (index_t o = 0; o < outer; ++o, data += panel)
      lee_forward_avx2<M, true>(data, tmp, inner, scale, dc_scale);
  } else {
    for (index_t o = 0; o < outer; ++o, data += panel)
      lee_inverse_avx2<M, true>(data, tmp, inner, scale, dc_scale);
  }
}

void dct_axis_avx2(double* data, double* tmp, index_t n, index_t outer,
                   index_t inner, bool forward) {
  // The intrinsic panels only pay where the across-inner loops run full
  // vectors and the recursion is deep enough to amortize per-panel setup:
  // measured against the scalar Lee recursion (generic -march build, see
  // docs/PERF.md), inner >= 4 with n >= 32 wins 1.3-1.5x while every other
  // shape is at or below parity.  Everything else takes the scalar path —
  // same algorithm, same bits, no cost to being honest about it.
  if (inner >= 4 && n >= 32) {
    switch (n) {
      case 32:
        dct_panels_avx2<32>(data, tmp, outer, inner, forward);
        return;
      case 64:
        dct_panels_avx2<64>(data, tmp, outer, inner, forward);
        return;
      case 128:
        dct_panels_avx2<128>(data, tmp, outer, inner, forward);
        return;
      default:
        break;
    }
  }
  dct_fast_axis(data, tmp, n, outer, inner, forward);
}

// --- table ------------------------------------------------------------------

/// int64 bins stay scalar (see file comment); address-taking wrappers over
/// the inline templates.
void quantize_bins_i64(const double* c, std::int64_t* bins, index_t count,
                       double inv, double r) {
  quantize_bins<std::int64_t>(c, bins, count, inv, r);
}
void unbin_block_i64(const std::int64_t* f, index_t count, double scale,
                     double* c) {
  unbin_block<std::int64_t>(f, count, scale, c);
}
void decode_lincomb_i64(const std::int64_t* const* f, const double* s,
                        index_t num_operands, index_t count, double* c) {
  decode_lincomb<std::int64_t>(f, s, num_operands, count, c);
}
void decode_lincomb_multi_i64(const std::int64_t* const* rows,
                              index_t num_rows, const double* scales,
                              const index_t* term_rows, const index_t* offsets,
                              index_t num_outputs, index_t count,
                              double* decoded, double* const* out) {
  decode_lincomb_multi<std::int64_t>(rows, num_rows, scales, term_rows,
                                     offsets, num_outputs, count, decoded,
                                     out);
}

template <typename BinT>
constexpr BinKernels<BinT> avx2_bin_kernels() {
  return {&quantize_bins_avx2<BinT>, &unbin_block_avx2<BinT>,
          &decode_lincomb_avx2<BinT>, &decode_lincomb_multi_avx2<BinT>};
}

}  // namespace

namespace internal {

const KernelTable* avx2_table() {
  static const KernelTable table = {
      "avx2",
      &max_abs_avx2,
      avx2_bin_kernels<std::int8_t>(),
      avx2_bin_kernels<std::int16_t>(),
      avx2_bin_kernels<std::int32_t>(),
      {&quantize_bins_i64, &unbin_block_i64, &decode_lincomb_i64,
       &decode_lincomb_multi_i64},
      &dense_transform_axis_avx2,
      &dct_axis_avx2,
      &huffman_decode_run_generic,
  };
  return &table;
}

}  // namespace internal
}  // namespace pyblaz::kernels

#else  // !defined(__AVX2__)

namespace pyblaz::kernels::internal {

const KernelTable* avx2_table() { return nullptr; }

}  // namespace pyblaz::kernels::internal

#endif
