#pragma once

#include <cstdint>

#include "core/dtypes/float_type.hpp"
#include "core/ndarray/shape.hpp"
#include "core/util/bitstream.hpp"

namespace pyblaz::kernels {

/// Runtime-dispatched SIMD kernel backends.
///
/// The scalar kernels in rebin.hpp / fast_transform.cpp stay the single
/// source of truth for the arithmetic; each SIMD backend is a drop-in table
/// of function pointers that must reproduce the scalar results *bit for bit*
/// (docs/PERF.md, "SIMD backends", spells out the reduction-tree contract
/// that makes this possible).  The table is resolved exactly once, before
/// main() runs any codec work: by default the best backend the CPU supports,
/// overridable with CC_KERNEL_BACKEND=scalar|avx2|neon (an unrecognized or
/// unavailable value warns on stderr and falls back to scalar) or
/// programmatically with set_backend().  Hot paths hoist `const KernelTable&
/// t = active()` once per operation, so dispatch costs one atomic load per
/// block loop, not per element or per call.

enum class Backend : std::uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// One entry of the 2-symbol Huffman decode LUT (see szx/huffman.hpp):
/// indexed by the next 8 stream bits, it resolves up to two complete codes
/// per probe.  nsyms == 0 means the first code is longer than 8 bits and the
/// caller must fall back to the bit-serial decoder for one symbol.
struct HuffmanLut2Entry {
  std::int32_t sym0 = -1;
  std::int32_t sym1 = -1;
  std::uint8_t len0 = 0;        ///< Bits of the first code (0 when nsyms == 0).
  std::uint8_t total_bits = 0;  ///< len0 + len1 when nsyms == 2.
  std::uint8_t nsyms = 0;
};

/// The LUT above is indexed by this many stream bits.  huffman.cpp
/// static_asserts its serial fast-path table uses the same width.
inline constexpr int kHuffmanLutBits = 8;

/// Per-bin-index-type kernel slots.  Signatures mirror the scalar templates
/// in rebin.hpp exactly; see there for semantics.
template <typename BinT>
struct BinKernels {
  void (*quantize_bins)(const double* c, BinT* bins, index_t count, double inv,
                        double r);
  void (*unbin_block)(const BinT* f, index_t count, double scale, double* c);
  void (*decode_lincomb)(const BinT* const* f, const double* s,
                         index_t num_operands, index_t count, double* c);
  /// Multi-output batched decode (see rebin.hpp decode_lincomb_multi): K
  /// flattened linear combinations over num_rows shared bin rows; decoded is
  /// caller scratch of at least num_rows * count doubles.
  void (*decode_lincomb_multi)(const BinT* const* rows, index_t num_rows,
                               const double* scales, const index_t* term_rows,
                               const index_t* offsets, index_t num_outputs,
                               index_t count, double* decoded,
                               double* const* out);
};

/// A complete kernel backend.  Every slot is non-null in every table; slots a
/// backend does not accelerate point at the scalar implementation (e.g. the
/// int64 bin type, whose 2^53 arithmetic radius exceeds what packed
/// double<->int32 conversion covers, stays scalar in the AVX2/NEON tables).
struct KernelTable {
  const char* name;

  /// max |c_j|, matching rebin.hpp max_abs bit for bit (NaNs are dropped the
  /// way std::max drops them; the reduction splits into independent lane
  /// accumulators, which is exact because max never rounds).
  double (*max_abs)(const double* c, index_t count);

  BinKernels<std::int8_t> i8;
  BinKernels<std::int16_t> i16;
  BinKernels<std::int32_t> i32;
  BinKernels<std::int64_t> i64;

  /// Dense one-axis transform, matching kernels::dense_transform_axis.
  void (*dense_transform_axis)(const double* src, double* dst,
                               const double* matrix, index_t n, index_t outer,
                               index_t inner, bool forward);

  /// Factorized Lee DCT over one axis, matching the DCT arm of
  /// kernels::fast_transform_axis (Haar stays scalar in every backend).
  /// @p n must satisfy fast_axis_supported(kDct, n).
  void (*dct_axis)(double* data, double* tmp, index_t n, index_t outer,
                   index_t inner, bool forward);

  /// Batched 2-symbol Huffman decode; see HuffmanCoder::decode_run.
  index_t (*huffman_decode_run)(const HuffmanLut2Entry* lut, BitReader& reader,
                                std::int32_t* out, index_t count,
                                std::int32_t stop_symbol);
};

/// Typed accessor so generic (BinT-templated) call sites can pick their slot
/// group without spelling the member name.
template <typename BinT>
const BinKernels<BinT>& bins(const KernelTable& table);
template <>
inline const BinKernels<std::int8_t>& bins(const KernelTable& t) {
  return t.i8;
}
template <>
inline const BinKernels<std::int16_t>& bins(const KernelTable& t) {
  return t.i16;
}
template <>
inline const BinKernels<std::int32_t>& bins(const KernelTable& t) {
  return t.i32;
}
template <>
inline const BinKernels<std::int64_t>& bins(const KernelTable& t) {
  return t.i64;
}

/// The active backend's table.  One relaxed atomic load; callers on hot
/// paths should hoist the reference once per operation.
const KernelTable& active();

/// The currently active backend.
Backend active_backend();

/// The backend the startup resolution (CC_KERNEL_BACKEND / cpuid) picked,
/// before any set_backend() overrides.  Exposed for dispatch tests.
Backend startup_backend();

/// Whether @p backend is both compiled into this binary and supported by the
/// running CPU.  kScalar is always available.
bool backend_available(Backend backend);

/// Switch the active table.  Returns false (and changes nothing) when the
/// backend is unavailable.  Not meant for concurrent use with in-flight codec
/// work; intended for startup configuration, tests, and benchmarks.
bool set_backend(Backend backend);

/// Display name ("scalar", "avx2", "neon").
const char* backend_name(Backend backend);

/// Parse a CC_KERNEL_BACKEND value.  Unrecognized values return kScalar and
/// set *bad.  Exposed for the dispatch-selection tests.
Backend parse_backend_name(const char* value, bool* bad);

/// rebin_block through a dispatch table: max_abs + quantize + bin, the same
/// composition as the scalar kernels::rebin_block in rebin.hpp.
template <typename BinT>
inline double rebin_block(const KernelTable& t, const double* c, index_t count,
                          double r, FloatType float_type, BinT* bins_out) {
  const double biggest = quantize(t.max_abs(c, count), float_type);
  if (biggest == 0.0) {
    for (index_t j = 0; j < count; ++j) bins_out[j] = BinT{0};
  } else {
    bins<BinT>(t).quantize_bins(c, bins_out, count, r / biggest, r);
  }
  return biggest;
}

}  // namespace pyblaz::kernels
