#include "core/kernels/backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/fault/fault.hpp"
#include "core/kernels/backend_tables.hpp"
#include "core/kernels/fast_transform.hpp"
#include "core/kernels/rebin.hpp"
#include "core/telemetry/telemetry.hpp"

namespace pyblaz::kernels {

namespace {

/// Address-taking wrappers over the inline scalar templates in rebin.hpp.
template <typename BinT>
void quantize_bins_entry(const double* c, BinT* bins, index_t count,
                         double inv, double r) {
  quantize_bins<BinT>(c, bins, count, inv, r);
}

template <typename BinT>
void unbin_block_entry(const BinT* f, index_t count, double scale, double* c) {
  unbin_block<BinT>(f, count, scale, c);
}

template <typename BinT>
void decode_lincomb_entry(const BinT* const* f, const double* s,
                          index_t num_operands, index_t count, double* c) {
  decode_lincomb<BinT>(f, s, num_operands, count, c);
}

template <typename BinT>
void decode_lincomb_multi_entry(const BinT* const* rows, index_t num_rows,
                                const double* scales, const index_t* term_rows,
                                const index_t* offsets, index_t num_outputs,
                                index_t count, double* decoded,
                                double* const* out) {
  decode_lincomb_multi<BinT>(rows, num_rows, scales, term_rows, offsets,
                             num_outputs, count, decoded, out);
}

template <typename BinT>
constexpr BinKernels<BinT> scalar_bin_kernels() {
  return {&quantize_bins_entry<BinT>, &unbin_block_entry<BinT>,
          &decode_lincomb_entry<BinT>, &decode_lincomb_multi_entry<BinT>};
}

bool cpu_supports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is architecturally mandatory on AArch64.
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* table_for(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &internal::scalar_table();
    case Backend::kAvx2:
      return internal::avx2_table();
    case Backend::kNeon:
      return internal::neon_table();
  }
  return nullptr;
}

Backend best_available() {
  if (backend_available(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_available(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

/// Resolved once, before any codec work: CC_KERNEL_BACKEND wins when it
/// names an available backend, otherwise (with a warning) scalar; with no
/// override the best backend the CPU supports.
struct DispatchState {
  std::atomic<const KernelTable*> table{nullptr};
  std::atomic<Backend> backend{Backend::kScalar};
  Backend startup = Backend::kScalar;

  DispatchState() {
    Backend chosen;
    if (const char* env = std::getenv("CC_KERNEL_BACKEND")) {
      bool bad = false;
      const Backend requested = parse_backend_name(env, &bad);
      if (bad) {
        std::fprintf(stderr,
                     "pyblaz: CC_KERNEL_BACKEND=\"%s\" is not a known backend "
                     "(scalar|avx2|neon); using scalar kernels\n",
                     env);
        chosen = Backend::kScalar;
      } else if (!backend_available(requested)) {
        std::fprintf(stderr,
                     "pyblaz: kernel backend \"%s\" is not available on this "
                     "host/build; using scalar kernels\n",
                     env);
        chosen = Backend::kScalar;
      } else {
        chosen = requested;
      }
    } else {
      chosen = best_available();
    }
    startup = chosen;
    backend.store(chosen, std::memory_order_relaxed);
    table.store(table_for(chosen), std::memory_order_relaxed);
  }
};

DispatchState& state() {
  static DispatchState s;
  return s;
}

/// Graceful degradation: a fault at the "backend.dispatch" site (standing in
/// for a broken ISA path discovered at dispatch time) permanently demotes
/// the process to the scalar oracle — results stay correct and bit-identical
/// by the backend bit-identity contract — with one warning line and a
/// counted `backend.dispatch_fallback` event, instead of crashing the
/// request.  Only evaluated while faults are armed, so the production
/// dispatch path stays a single relaxed load.
void maybe_degrade_dispatch() {
  try {
    fault::point("backend.dispatch");
  } catch (...) {
    static telemetry::Counter& fallbacks =
        telemetry::counter("backend.dispatch_fallback");
    fallbacks.increment();
    DispatchState& s = state();
    const Backend current = s.backend.load(std::memory_order_relaxed);
    if (current != Backend::kScalar) {
      std::fprintf(stderr,
                   "pyblaz: kernel backend \"%s\" faulted at dispatch; "
                   "falling back to the scalar oracle\n",
                   backend_name(current));
      s.backend.store(Backend::kScalar, std::memory_order_relaxed);
      s.table.store(table_for(Backend::kScalar), std::memory_order_relaxed);
    }
  }
}

}  // namespace

namespace internal {

const KernelTable& scalar_table() {
  static const KernelTable table = {
      "scalar",
      &max_abs,
      scalar_bin_kernels<std::int8_t>(),
      scalar_bin_kernels<std::int16_t>(),
      scalar_bin_kernels<std::int32_t>(),
      scalar_bin_kernels<std::int64_t>(),
      &dense_transform_axis,
      &dct_fast_axis,
      &huffman_decode_run_generic,
  };
  return table;
}

index_t huffman_decode_run_generic(const HuffmanLut2Entry* lut,
                                   BitReader& reader, std::int32_t* out,
                                   index_t count, std::int32_t stop_symbol) {
  index_t decoded = 0;
  while (decoded < count) {
    const std::size_t start = reader.position();
    const auto window =
        static_cast<std::size_t>(reader.get_bits(kHuffmanLutBits));
    const HuffmanLut2Entry& entry = lut[window];
    if (entry.nsyms == 0) {
      // First code longer than the LUT window: rewind so the caller can run
      // the bit-serial decoder for exactly one symbol and resume.
      reader.seek(start);
      break;
    }
    out[decoded++] = entry.sym0;
    if (entry.sym0 == stop_symbol) {
      reader.seek(start + entry.len0);
      break;
    }
    if (entry.nsyms == 2 && decoded < count && entry.sym1 != stop_symbol) {
      out[decoded++] = entry.sym1;
      reader.seek(start + entry.total_bits);
    } else {
      // A stop symbol in the second slot is left in the stream so the next
      // probe emits it as sym0 and the stop bookkeeping stays in one place.
      reader.seek(start + entry.len0);
    }
  }
  return decoded;
}

}  // namespace internal

const KernelTable& active() {
  if (fault::armed()) [[unlikely]]
    maybe_degrade_dispatch();
  return *state().table.load(std::memory_order_relaxed);
}

Backend active_backend() {
  return state().backend.load(std::memory_order_relaxed);
}

Backend startup_backend() { return state().startup; }

bool backend_available(Backend backend) {
  return table_for(backend) != nullptr && cpu_supports(backend);
}

bool set_backend(Backend backend) {
  if (!backend_available(backend)) return false;
  DispatchState& s = state();
  s.backend.store(backend, std::memory_order_relaxed);
  s.table.store(table_for(backend), std::memory_order_relaxed);
  return true;
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

Backend parse_backend_name(const char* value, bool* bad) {
  if (bad) *bad = false;
  if (value != nullptr) {
    if (std::strcmp(value, "scalar") == 0) return Backend::kScalar;
    if (std::strcmp(value, "avx2") == 0) return Backend::kAvx2;
    if (std::strcmp(value, "neon") == 0) return Backend::kNeon;
  }
  if (bad) *bad = true;
  return Backend::kScalar;
}

}  // namespace pyblaz::kernels
