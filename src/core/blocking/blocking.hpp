#pragma once

#include <vector>

#include "core/ndarray/ndarray.hpp"
#include "core/ndarray/shape.hpp"

namespace pyblaz {

/// A blocked array (§III-A "blocking"): the input padded with zeros to a
/// multiple of the block shape in every direction and reorganized so each
/// block is contiguous.
///
/// Layout: data[block_index * block_volume + intrablock_offset], both indices
/// row-major over their respective shapes.  Blocking is the only exactly
/// invertible compression step; unblock_array() recovers the original.
struct Blocked {
  Shape array_shape;  ///< Original (uncropped) shape s.
  Shape block_shape;  ///< Block shape i.
  Shape block_grid;   ///< Arrangement of blocks b = ceil(s ⊘ i).
  std::vector<double> data;

  index_t num_blocks() const { return block_grid.volume(); }
  index_t block_volume() const { return block_shape.volume(); }

  /// Pointer to the first element of block @p block_index.
  double* block(index_t block_index) {
    return data.data() + block_index * block_volume();
  }
  const double* block(index_t block_index) const {
    return data.data() + block_index * block_volume();
  }
};

/// Split @p array into blocks of @p block_shape, zero-padding the ragged
/// edges.  Parallelized over blocks.
Blocked block_array(const NDArray<double>& array, const Shape& block_shape);

/// Reassemble the original array (cropping the zero padding).
NDArray<double> unblock_array(const Blocked& blocked);

}  // namespace pyblaz
