#include "core/blocking/blocking.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "core/parallel/thread_pool.hpp"

namespace pyblaz {

namespace {

/// Decompose @p offset (row-major within @p shape) into per-axis coordinates,
/// writing into @p coords.
void decompose(const Shape& shape, index_t offset, index_t* coords) {
  for (int axis = shape.ndim() - 1; axis >= 0; --axis) {
    coords[axis] = offset % shape[axis];
    offset /= shape[axis];
  }
}

/// Advance row-major coordinates over the leading (all but last) axes of
/// @p shape by one.  Returns false after wrapping past the end.
bool advance_row(const Shape& shape, index_t* coords) {
  for (int axis = shape.ndim() - 2; axis >= 0; --axis) {
    if (++coords[axis] < shape[axis]) return true;
    coords[axis] = 0;
  }
  return false;
}

}  // namespace

// Rows of a block along the last axis are contiguous in both the array
// (row-major) and the blocked layout, so each block moves as block_volume /
// block_last memcpy calls instead of per-element index arithmetic — this is
// the difference between the blocking step being free and it dominating
// compression time.
Blocked block_array(const NDArray<double>& array, const Shape& block_shape) {
  assert(array.shape().ndim() == block_shape.ndim());
  Blocked blocked;
  blocked.array_shape = array.shape();
  blocked.block_shape = block_shape;
  blocked.block_grid = Shape::ceil_div(array.shape(), block_shape);
  const index_t num_blocks = blocked.num_blocks();
  const index_t block_volume = blocked.block_volume();
  blocked.data.resize(static_cast<std::size_t>(num_blocks * block_volume));

  const int d = array.shape().ndim();
  const Shape& shape = array.shape();
  const std::vector<index_t> strides = shape.strides();
  const index_t block_last = block_shape[d - 1];
  const index_t rows_per_block = block_volume / block_last;

  parallel::parallel_for(0, num_blocks, 4, [&](index_t chunk_begin,
                                               index_t chunk_end) {
    std::vector<index_t> block_coords(static_cast<std::size_t>(d));
    std::vector<index_t> row_coords(static_cast<std::size_t>(d), 0);
    for (index_t kb = chunk_begin; kb < chunk_end; ++kb) {
      decompose(blocked.block_grid, kb, block_coords.data());
      double* dst = blocked.block(kb);

      const index_t last_start = block_coords[static_cast<std::size_t>(d - 1)] * block_last;
      const index_t copy_count =
          std::clamp<index_t>(shape[d - 1] - last_start, 0, block_last);

      std::fill(row_coords.begin(), row_coords.end(), 0);
      for (index_t row = 0; row < rows_per_block; ++row, dst += block_last) {
        // Leading-axis coordinates of this row in the full array.
        bool inside = copy_count > 0;
        index_t src = last_start * strides[static_cast<std::size_t>(d - 1)];
        for (int axis = 0; inside && axis < d - 1; ++axis) {
          const index_t coord =
              block_coords[static_cast<std::size_t>(axis)] * block_shape[axis] +
              row_coords[static_cast<std::size_t>(axis)];
          if (coord >= shape[axis]) {
            inside = false;
          } else {
            src += coord * strides[static_cast<std::size_t>(axis)];
          }
        }
        if (inside) {
          std::memcpy(dst, array.data() + src,
                      static_cast<std::size_t>(copy_count) * sizeof(double));
          std::fill(dst + copy_count, dst + block_last, 0.0);
        } else {
          std::fill(dst, dst + block_last, 0.0);
        }
        if (d > 1) advance_row(block_shape, row_coords.data());
      }
    }
  });
  return blocked;
}

NDArray<double> unblock_array(const Blocked& blocked) {
  NDArray<double> out(blocked.array_shape);
  const index_t num_blocks = blocked.num_blocks();
  const index_t block_volume = blocked.block_volume();
  const int d = blocked.array_shape.ndim();
  const Shape& shape = blocked.array_shape;
  const std::vector<index_t> strides = shape.strides();
  const index_t block_last = blocked.block_shape[d - 1];
  const index_t rows_per_block = block_volume / block_last;

  parallel::parallel_for(0, num_blocks, 4, [&](index_t chunk_begin,
                                               index_t chunk_end) {
    std::vector<index_t> block_coords(static_cast<std::size_t>(d));
    std::vector<index_t> row_coords(static_cast<std::size_t>(d), 0);
    for (index_t kb = chunk_begin; kb < chunk_end; ++kb) {
      decompose(blocked.block_grid, kb, block_coords.data());
      const double* src = blocked.block(kb);

      const index_t last_start =
          block_coords[static_cast<std::size_t>(d - 1)] * block_last;
      const index_t copy_count =
          std::clamp<index_t>(shape[d - 1] - last_start, 0, block_last);

      std::fill(row_coords.begin(), row_coords.end(), 0);
      for (index_t row = 0; row < rows_per_block; ++row, src += block_last) {
        bool inside = copy_count > 0;
        index_t dst = last_start * strides[static_cast<std::size_t>(d - 1)];
        for (int axis = 0; inside && axis < d - 1; ++axis) {
          const index_t coord =
              block_coords[static_cast<std::size_t>(axis)] *
                  blocked.block_shape[axis] +
              row_coords[static_cast<std::size_t>(axis)];
          if (coord >= shape[axis]) {
            inside = false;
          } else {
            dst += coord * strides[static_cast<std::size_t>(axis)];
          }
        }
        if (inside) {
          std::memcpy(out.data() + dst, src,
                      static_cast<std::size_t>(copy_count) * sizeof(double));
        }
        if (d > 1) advance_row(blocked.block_shape, row_coords.data());
      }
    }
  });
  return out;
}

}  // namespace pyblaz
