#pragma once

#include <string>
#include <vector>

namespace pyblaz {

/// Minimal fixed-width text table used by the benchmark harnesses to print
/// paper-style rows, with an optional CSV mirror for downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Render as an aligned text table.
  std::string to_text() const;

  /// Render as CSV (headers first).
  std::string to_csv() const;

  /// Write the CSV rendering to @p path, creating parent directories is the
  /// caller's responsibility.  Returns false if the file cannot be opened.
  bool write_csv(const std::string& path) const;

  /// Format helper: fixed-precision double -> string.
  static std::string fmt(double value, int precision = 4);

  /// Format helper: scientific-notation double -> string.
  static std::string sci(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pyblaz
