#include "core/util/checksum.hpp"

#include <array>

namespace pyblaz {

namespace {

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time CRC-32
/// (IEEE, reflected 0xEDB88320) table; table[k][b] extends it so eight
/// input bytes fold into the running CRC with eight independent lookups per
/// iteration instead of eight serial ones.  Same polynomial, bit-identical
/// results to the byte loop — this is purely a throughput upgrade, because
/// the per-chunk CRC pass rides inside the serializer's hot loop and must
/// cost a few percent, not a third, of the container time.
std::array<std::array<std::uint32_t, 256>, 8> build_crc32_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t byte = 0; byte < 256; ++byte) {
    std::uint32_t crc = byte;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    tables[0][byte] = crc;
  }
  for (std::uint32_t byte = 0; byte < 256; ++byte)
    for (int slice = 1; slice < 8; ++slice)
      tables[slice][byte] = (tables[slice - 1][byte] >> 8) ^
                            tables[0][tables[slice - 1][byte] & 0xFFu];
  return tables;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed) {
  static const auto tables = build_crc32_tables();
  std::uint32_t crc = ~seed;
  while (size >= 8) {
    // Explicit little-endian assembly (a single 32-bit load after
    // optimization on LE hosts, and still correct on BE ones).
    const std::uint32_t lo =
        static_cast<std::uint32_t>(data[0]) |
        static_cast<std::uint32_t>(data[1]) << 8 |
        static_cast<std::uint32_t>(data[2]) << 16 |
        static_cast<std::uint32_t>(data[3]) << 24;
    const std::uint32_t hi =
        static_cast<std::uint32_t>(data[4]) |
        static_cast<std::uint32_t>(data[5]) << 8 |
        static_cast<std::uint32_t>(data[6]) << 16 |
        static_cast<std::uint32_t>(data[7]) << 24;
    crc ^= lo;
    crc = tables[7][crc & 0xFFu] ^ tables[6][(crc >> 8) & 0xFFu] ^
          tables[5][(crc >> 16) & 0xFFu] ^ tables[4][crc >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    data += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ tables[0][(crc ^ data[i]) & 0xFFu];
  return ~crc;
}

}  // namespace pyblaz
