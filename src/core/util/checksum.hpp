#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pyblaz {

/// CRC-32 (IEEE 802.3: reflected polynomial 0xEDB88320, init/final XOR
/// 0xFFFFFFFF) — the integrity check of the v3 archive container.
///
/// CRC-32 detects every single-bit error and every burst up to 32 bits, which
/// is exactly the corruption model the fuzz harness (tools/fuzz_archive)
/// asserts 100% detection for; it is not cryptographic and makes no claim
/// against adversarial payloads.  Table-driven, one byte per step: at v3's
/// 64 KiB chunk granularity the checksum is noise next to the bit-serial
/// chunk codec (the `checksums[]` bench section keeps that claim honest).
///
/// Streams compose: crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes,
                           std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace pyblaz
