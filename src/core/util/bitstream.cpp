#include "core/util/bitstream.hpp"

#include <algorithm>
#include <cassert>

namespace pyblaz {

void BitWriter::put_bits(std::uint64_t value, int nbits) {
  // Clamping is the contract (not an assert): widths can be computed from
  // untrusted header fields, and a bad width must degrade to a short write
  // the caller's bounds checks then catch — never a >= 64-bit shift (UB).
  nbits = std::clamp(nbits, 0, 64);
  for (int i = 0; i < nbits; ++i) {
    const std::size_t byte = bit_count_ >> 3;
    const unsigned offset = static_cast<unsigned>(bit_count_ & 7);
    if (byte >= bytes_.size()) bytes_.push_back(0);
    if ((value >> i) & 1u) bytes_[byte] |= static_cast<std::uint8_t>(1u << offset);
    ++bit_count_;
  }
}

void BitWriter::align_to_byte() {
  while (bit_count_ & 7) put_bit(0);
}

void BitWriter::pad_to(std::size_t nbits) {
  assert(nbits >= bit_count_);
  while (bit_count_ < nbits) put_bit(0);
}

std::uint64_t BitReader::get_bits(int nbits) {
  nbits = std::clamp(nbits, 0, 64);  // Same contract as put_bits.
  std::uint64_t value = 0;
  for (int i = 0; i < nbits; ++i) {
    if (cursor_ < size_bits_) {
      const std::size_t byte = cursor_ >> 3;
      const unsigned offset = static_cast<unsigned>(cursor_ & 7);
      const std::uint64_t bit = (bytes_[byte] >> offset) & 1u;
      value |= bit << i;
    }
    ++cursor_;
  }
  return value;
}

void BitReader::align_to_byte() {
  cursor_ = (cursor_ + 7) & ~std::size_t{7};
}

}  // namespace pyblaz
