#pragma once

#include <cstdint>
#include <random>

namespace pyblaz {

/// Deterministic random source used throughout tests, benches, and the
/// synthetic data generators.  A thin wrapper over std::mt19937_64 so every
/// consumer seeds explicitly and runs are reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal double with the given mean and standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t integer(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Access the underlying engine for use with std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pyblaz
