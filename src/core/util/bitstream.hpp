#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace pyblaz {

/// Append-only bit stream writer used by the PyBlaz and zfpx serializers.
///
/// Bits are packed LSB-first into bytes: the first bit written becomes bit 0
/// of byte 0.  This matches the reader below; the layout is an internal
/// convention, not part of any external format.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low @p nbits bits of @p value (0 <= nbits <= 64).
  void put_bits(std::uint64_t value, int nbits);

  /// Append a single bit (any nonzero @p bit writes 1).
  void put_bit(int bit) { put_bits(bit ? 1u : 0u, 1); }

  /// Pad with zero bits until the stream is byte aligned.
  void align_to_byte();

  /// Pad with zero bits until exactly @p nbits total bits have been written.
  /// @p nbits must be >= size_bits().
  void pad_to(std::size_t nbits);

  /// Number of bits written so far.
  std::size_t size_bits() const { return bit_count_; }

  /// Finished byte buffer (implicitly zero-padded to a byte boundary).
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  /// Move the byte buffer out of the writer.
  std::vector<std::uint8_t> take_bytes() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

/// Sequential bit stream reader matching BitWriter's packing.
class BitReader {
 public:
  /// The reader aliases @p bytes; the buffer must outlive the reader.
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes.data()), size_bits_(bytes.size() * 8) {}

  BitReader(const std::uint8_t* bytes, std::size_t nbytes)
      : bytes_(bytes), size_bits_(nbytes * 8) {}

  /// Read @p nbits bits (0 <= nbits <= 64) as an unsigned value.
  /// Reading past the end yields zero bits.
  std::uint64_t get_bits(int nbits);

  /// Read a single bit.
  int get_bit() { return static_cast<int>(get_bits(1)); }

  /// Skip forward until the cursor is byte aligned.
  void align_to_byte();

  /// Move the cursor to an absolute bit position.
  void seek(std::size_t bit_position) { cursor_ = bit_position; }

  /// Current cursor position in bits.
  std::size_t position() const { return cursor_; }

  /// Total readable bits.
  std::size_t size_bits() const { return size_bits_; }

 private:
  const std::uint8_t* bytes_;
  std::size_t size_bits_;
  std::size_t cursor_ = 0;
};

}  // namespace pyblaz
