#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace pyblaz {

/// Append-only bit stream writer used by the PyBlaz and zfpx serializers.
///
/// Bits are packed LSB-first into bytes: the first bit written becomes bit 0
/// of byte 0.  This matches the reader below; the layout is an internal
/// convention, not part of any external format.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low @p nbits bits of @p value.  @p nbits outside [0, 64] is
  /// clamped (a negative width writes nothing) — out-of-range widths are
  /// caller bugs, but they must degrade to a defined no-op, not to the
  /// undefined shift the old assert-only contract left in release builds.
  void put_bits(std::uint64_t value, int nbits);

  /// Append a single bit (any nonzero @p bit writes 1).
  void put_bit(int bit) { put_bits(bit ? 1u : 0u, 1); }

  /// Pad with zero bits until the stream is byte aligned.
  void align_to_byte();

  /// Pad with zero bits until exactly @p nbits total bits have been written.
  /// @p nbits must be >= size_bits().
  void pad_to(std::size_t nbits);

  /// Number of bits written so far.
  std::size_t size_bits() const { return bit_count_; }

  /// Finished byte buffer (implicitly zero-padded to a byte boundary).
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  /// Move the byte buffer out of the writer.
  std::vector<std::uint8_t> take_bytes() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

/// Sequential bit stream reader matching BitWriter's packing.
class BitReader {
 public:
  /// The reader aliases @p bytes; the buffer must outlive the reader.
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes.data()), size_bits_(bytes.size() * 8) {}

  BitReader(const std::uint8_t* bytes, std::size_t nbytes)
      : bytes_(bytes), size_bits_(nbytes * 8) {}

  /// Read @p nbits bits as an unsigned value.  @p nbits outside [0, 64] is
  /// clamped, like BitWriter::put_bits.
  ///
  /// Reading past the end yields zero bits while the cursor keeps advancing
  /// — deliberate: the Huffman LUT probe over-reads its window and rewinds,
  /// and fixed-rate decoders stay branch-free.  The flip side is that
  /// `size_bits() - position()` can underflow once the cursor has passed the
  /// end; bounds logic must use remaining_bits()/overran() instead of doing
  /// that subtraction (tests/test_bitstream.cpp pins both behaviors).
  std::uint64_t get_bits(int nbits);

  /// Read a single bit.
  int get_bit() { return static_cast<int>(get_bits(1)); }

  /// Skip forward until the cursor is byte aligned.
  void align_to_byte();

  /// Move the cursor to an absolute bit position (past the end is legal and
  /// reads as zeros; see get_bits).
  void seek(std::size_t bit_position) { cursor_ = bit_position; }

  /// Current cursor position in bits.
  std::size_t position() const { return cursor_; }

  /// Total readable bits.
  std::size_t size_bits() const { return size_bits_; }

  /// Bits left before the end, saturating at zero once the cursor has
  /// passed it — the underflow-proof form of `size_bits() - position()`.
  std::size_t remaining_bits() const {
    return cursor_ >= size_bits_ ? 0 : size_bits_ - cursor_;
  }

  /// True once any read or seek has moved the cursor past the end — i.e.
  /// some returned bits were fabricated zeros, not stream data.  Decoders
  /// that tolerate over-reads mid-stream check this at the end and reject
  /// the result as truncated.
  bool overran() const { return cursor_ > size_bits_; }

 private:
  const std::uint8_t* bytes_;
  std::size_t size_bits_;
  std::size_t cursor_ = 0;
};

}  // namespace pyblaz
