#pragma once

#include <chrono>

namespace pyblaz {

/// Monotonic wall-clock timer for the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pyblaz
