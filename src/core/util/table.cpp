#include "core/util/table.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace pyblaz {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << std::string(widths[c], '-') << "  ";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << to_csv();
  return static_cast<bool>(file);
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::sci(double value, int precision) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace pyblaz
