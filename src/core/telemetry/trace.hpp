#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace pyblaz::telemetry {

namespace internal {
/// Tracing master switch, cached here so TraceSpan's constructor inlines to
/// one relaxed load and a branch when tracing is off.  Set at static init
/// from CC_TRACE, or at runtime by set_trace_sink().
extern std::atomic<bool> g_trace_enabled;
struct TraceBuffer;
TraceBuffer* begin_span(const char* name, std::uint64_t arg, bool has_arg);
void end_span(TraceBuffer* buffer, const char* name);
}  // namespace internal

/// RAII scoped trace span.  When tracing is enabled (CC_TRACE=<path> at
/// startup or set_trace_sink() at runtime), construction records a "B" event
/// and destruction the matching "E" event on the calling thread, timestamped
/// with the steady clock; flush_trace() (or process exit) writes every
/// thread's events as Chrome trace-event JSON that chrome://tracing and
/// Perfetto open directly.  When tracing is disabled the span is one relaxed
/// load, one branch, and zero allocations — cheap enough for per-block
/// codec-stage scopes.
///
/// @p name must be a string literal (or otherwise outlive the final flush):
/// only the pointer is recorded, which is what keeps the hot path
/// allocation-free.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name) {
    if (internal::g_trace_enabled.load(std::memory_order_relaxed))
      buffer_ = internal::begin_span(name, 0, false);
  }
  /// With a small integer argument (shard index, arity, ...) attached to the
  /// begin event as args.v.
  TraceSpan(const char* name, std::uint64_t arg) : name_(name) {
    if (internal::g_trace_enabled.load(std::memory_order_relaxed))
      buffer_ = internal::begin_span(name, arg, true);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (buffer_) internal::end_span(buffer_, name_);
  }

 private:
  const char* name_;
  internal::TraceBuffer* buffer_ = nullptr;
};

/// True while spans are being recorded.
inline bool trace_enabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Point the trace recorder at @p path ("stderr" writes the JSON to stderr)
/// and enable span recording.  An empty path disables recording and discards
/// any buffered, unflushed events.  The sink is written by flush_trace() and
/// automatically at process exit.
void set_trace_sink(const std::string& path);

/// Write all buffered events to the configured sink as one self-contained
/// trace-event JSON document and clear the buffers.  Returns the number of
/// events written (0 when tracing never recorded anything or no sink is
/// configured).  Safe to call while other threads record: their in-flight
/// spans land in the next flush.
std::size_t flush_trace();

/// Events dropped because a thread hit its buffer cap (also reported in the
/// flushed JSON's otherData).
std::uint64_t trace_dropped_events();

}  // namespace pyblaz::telemetry
