#include "core/telemetry/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "core/telemetry/telemetry.hpp"

namespace pyblaz::telemetry {

namespace internal {

std::atomic<bool> g_trace_enabled{false};

/// One recorded begin or end.  Only the name *pointer* is stored (span names
/// are string literals), so recording never allocates except when the buffer
/// vector grows.
struct TraceEvent {
  const char* name;
  std::uint64_t ts_ns;
  std::uint64_t arg;
  bool begin;
  bool has_arg;
};

/// Per-thread event buffer.  The owning thread appends under the buffer
/// mutex (uncontended except during a flush) so a concurrent flush_trace()
/// can safely drain buffers of threads that are still running.  Buffers are
/// owned by the global state and outlive their threads, so events recorded
/// by a thread that has since exited still reach the flush.
struct TraceBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

}  // namespace internal

namespace {

using internal::SinkKind;
using internal::SinkPolicy;
using internal::TraceBuffer;
using internal::TraceEvent;

/// Cap on buffered events per thread: a runaway trace degrades to counting
/// drops instead of eating the heap.  End events of already-begun spans are
/// exempt so begin/end stay balanced.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

struct TraceState {
  std::mutex mutex;  // Guards buffers, sink, and atexit registration.
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
  SinkPolicy sink;
  bool atexit_registered = false;
  std::atomic<std::uint64_t> dropped{0};
  const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
};

// Leaked so spans recorded during static destruction (after main) still have
// somewhere to go; the atexit flush below runs before C++ runtime teardown.
TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state().base)
          .count());
}

thread_local TraceBuffer* t_buffer = nullptr;

TraceBuffer& this_thread_buffer() {
  if (t_buffer == nullptr) {
    TraceState& s = state();
    auto owned = std::make_unique<TraceBuffer>();
    owned->events.reserve(4096);
    t_buffer = owned.get();
    std::lock_guard<std::mutex> lock(s.mutex);
    owned->tid = static_cast<std::uint32_t>(s.buffers.size() + 1);
    s.buffers.push_back(std::move(owned));
  }
  return *t_buffer;
}

void flush_at_exit() { flush_trace(); }

/// Enable recording toward @p sink.  Called with state().mutex held.
void enable_locked(TraceState& s, SinkPolicy sink) {
  s.sink = std::move(sink);
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit(&flush_at_exit);
  }
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

/// CC_TRACE resolved once at static init, mirroring CC_KERNEL_BACKEND: a bad
/// (empty) value warns and leaves tracing off rather than guessing a path.
struct TraceEnvInit {
  TraceEnvInit() {
    const SinkPolicy policy =
        internal::parse_sink_env(std::getenv("CC_TRACE"));
    if (policy.bad) {
      std::fprintf(stderr,
                   "pyblaz: CC_TRACE is set but empty (want a file path or "
                   "stderr); tracing disabled\n");
      return;
    }
    if (policy.kind == SinkKind::kDisabled) return;
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    enable_locked(s, policy);
  }
};

TraceEnvInit g_trace_env_init;

void append_json_escaped(std::string& out, const char* text) {
  for (; *text; ++text) {
    if (*text == '"' || *text == '\\') out.push_back('\\');
    out.push_back(*text);
  }
}

void append_event(std::string& out, const TraceEvent& event,
                  std::uint32_t tid) {
  char buffer[96];
  out += "{\"name\": \"";
  append_json_escaped(out, event.name);
  // Chrome trace-event timestamps are microseconds; three decimals keep the
  // recorded nanosecond resolution.
  std::snprintf(buffer, sizeof(buffer),
                "\", \"cat\": \"pyblaz\", \"ph\": \"%c\", \"pid\": 1, "
                "\"tid\": %u, \"ts\": %.3f",
                event.begin ? 'B' : 'E', tid,
                static_cast<double>(event.ts_ns) / 1e3);
  out += buffer;
  if (event.begin && event.has_arg) {
    std::snprintf(buffer, sizeof(buffer), ", \"args\": {\"v\": %llu}",
                  static_cast<unsigned long long>(event.arg));
    out += buffer;
  }
  out += "}";
}

}  // namespace

namespace internal {

TraceBuffer* begin_span(const char* name, std::uint64_t arg, bool has_arg) {
  TraceBuffer& buffer = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    state().dropped.fetch_add(1, std::memory_order_relaxed);
    return nullptr;  // The span's end is suppressed too: balance holds.
  }
  buffer.events.push_back({name, now_ns(), arg, true, has_arg});
  return &buffer;
}

void end_span(TraceBuffer* buffer, const char* name) {
  // Never dropped (even just past the cap): only begun spans reach here, and
  // suppressing the end would unbalance the stream.
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back({name, now_ns(), 0, false, false});
}

}  // namespace internal

void set_trace_sink(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (path.empty()) {
    internal::g_trace_enabled.store(false, std::memory_order_relaxed);
    s.sink = SinkPolicy{};
    for (auto& buffer : s.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
    return;
  }
  SinkPolicy sink;
  if (path == "stderr") {
    sink.kind = SinkKind::kStderr;
  } else {
    sink.kind = SinkKind::kFile;
    sink.path = path;
  }
  enable_locked(s, std::move(sink));
}

std::size_t flush_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.sink.kind == SinkKind::kDisabled) return 0;

  std::string out = "{\n\"traceEvents\": [";
  std::size_t written = 0;
  for (auto& buffer : s.buffers) {
    std::vector<TraceEvent> events;
    {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      events.swap(buffer->events);
    }
    for (const TraceEvent& event : events) {
      out += written ? ",\n" : "\n";
      append_event(out, event, buffer->tid);
      ++written;
    }
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
         "{\"dropped_events\": " +
         std::to_string(s.dropped.load(std::memory_order_relaxed)) + "}\n}\n";
  internal::write_to_sink(s.sink, out, "CC_TRACE");
  return written;
}

std::uint64_t trace_dropped_events() {
  return state().dropped.load(std::memory_order_relaxed);
}

}  // namespace pyblaz::telemetry
