#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pyblaz::telemetry {

/// Runtime telemetry: named monotonic counters and streaming latency
/// histograms, collected always (the write path is a handful of relaxed
/// per-thread-shard atomic adds — cheap enough to leave on; the ≤2% overhead
/// bound on bench_micro_kernels is part of the acceptance for every PR that
/// touches a hot loop) and reported only on demand: snapshot()/to_json() at
/// any time, or automatically at process exit when CC_STATS=stderr|<path> is
/// set.  Tracing (core/telemetry/trace.hpp) is the opt-in counterpart.
///
/// Telemetry observes the data path, never branches it: nothing in this
/// subsystem feeds back into chunking, dispatch, or arithmetic, so every
/// determinism and bit-identity contract is untouched by construction.
///
/// Usage at a hot call site — resolve the handle once, then add:
///
///     static telemetry::Counter& calls =
///         telemetry::counter("codec.compress.calls");
///     calls.increment();
///
/// Handles are process-lifetime singletons with stable addresses; the only
/// lock is taken at first registration of a name.

/// Number of per-thread shards a counter/histogram stripes over.  Threads map
/// onto shards round-robin at first use; two threads sharing a shard is only
/// a (relaxed, correct) contention cost, never a correctness issue.
inline constexpr int kShards = 16;

namespace internal {
/// Stable shard slot of the calling thread, in [0, kShards).
int thread_slot();
}  // namespace internal

/// Monotonic counter: relaxed per-thread-shard adds, exact sum on read.
class Counter {
 public:
  void add(std::uint64_t n) {
    shards_[internal::thread_slot()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  /// Sum over all shards.  Monotonic; concurrent adds may or may not be
  /// included (relaxed), but nothing is ever lost or double-counted.
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::string name_;
  std::array<Shard, kShards> shards_;
};

/// Streaming histogram over fixed log-spaced buckets: 8 sub-buckets per
/// power of two (values below 8 are exact), so any recorded value lands in a
/// bucket whose width is at most 1/8 of its magnitude.  Quantiles read from a
/// snapshot are the lower bound of the bucket holding the target rank —
/// exact for values that are bucket boundaries, and never more than 12.5%
/// below the true sample quantile otherwise.
///
/// Values are plain uint64; the convention for latency histograms is
/// nanoseconds (record_seconds() converts).  Writes are two relaxed adds on
/// the caller's shard; snapshots merge shards without stopping writers.
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 8.
  /// Values 0..7 occupy buckets 0..7; each further octave b (values in
  /// [2^b, 2^(b+1)) for b >= 3) contributes kSubBuckets buckets.
  static constexpr int kNumBuckets = (64 - kSubBits + 1) * kSubBuckets;

  /// Bucket index of @p value (total order preserved: v1 <= v2 implies
  /// index(v1) <= index(v2)).
  static int bucket_index(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<int>(value);
    const int b = 63 - std::countl_zero(value);  // floor(log2(value)) >= 3.
    const int sub = static_cast<int>((value >> (b - kSubBits)) &
                                     (kSubBuckets - 1));
    return (b - kSubBits + 1) * kSubBuckets + sub;
  }

  /// Smallest value mapping to bucket @p index (its representative value).
  static std::uint64_t bucket_lower_bound(int index) {
    if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
    const int b = index / kSubBuckets + kSubBits - 1;
    const int sub = index % kSubBuckets;
    return (std::uint64_t{1} << b) +
           (static_cast<std::uint64_t>(sub) << (b - kSubBits));
  }

  void record(std::uint64_t value) {
    Shard& shard = shards_[internal::thread_slot()];
    shard.buckets[static_cast<std::size_t>(bucket_index(value))].fetch_add(
        1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Latency convenience: seconds -> nanoseconds (negative clamps to 0).
  void record_seconds(double seconds) {
    record(seconds <= 0.0 ? 0
                          : static_cast<std::uint64_t>(seconds * 1e9));
  }

  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }

 private:
  friend class Registry;
  friend struct HistogramSnapshot;
  Histogram(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::string name_;
  std::string unit_;
  std::array<Shard, kShards> shards_;
};

/// RAII latency probe: records the scope's wall time into @p histogram on
/// destruction.  One steady_clock read at each end; no allocation.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    histogram_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::string unit;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};

  /// Inverse CDF at @p q in [0, 1]: the lower bound of the bucket holding
  /// sample rank ceil(q * count) (type-1 / lower-value convention, so a
  /// quantile is always a value that was actually recorded, rounded down to
  /// its bucket boundary).  0 when the histogram is empty.
  std::uint64_t quantile(double q) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Lower bound of the highest occupied bucket (0 when empty).
  std::uint64_t max_bucket_bound() const;
};

/// Consistent-enough point-in-time view: each shard is read atomically per
/// cell; concurrent writers may land on either side of the snapshot.
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<HistogramSnapshot> histograms;

  /// The whole snapshot as a JSON object (schema "pyblaz-telemetry-v1"):
  /// counters as {name: value}, histograms as {name: {unit, count, sum,
  /// mean, p50, p95, p99, max}}.
  std::string to_json() const;
};

/// The process-wide registry handle for @p name, created on first use.
/// Repeated calls with the same name return the same object; a name already
/// registered as the other kind throws std::logic_error.
Counter& counter(std::string_view name);
Histogram& histogram(std::string_view name, std::string_view unit = "ns");

/// Snapshot every registered counter and histogram, sorted by name.
Snapshot snapshot();

namespace internal {

/// Shared CC_STATS / CC_TRACE sink policy, mirroring CC_KERNEL_BACKEND:
/// a bad value (here: empty) warns once and disables the feature rather
/// than guessing.  "stderr" is the only non-path spelling.
enum class SinkKind { kDisabled, kStderr, kFile };
struct SinkPolicy {
  SinkKind kind = SinkKind::kDisabled;
  std::string path;
  bool bad = false;  ///< True when the value was rejected (warn + disable).
};

/// Parse an environment value (nullptr = unset = disabled, not bad).
SinkPolicy parse_sink_env(const char* value);

/// Write @p policy's sink: stderr or the named file.  Unopenable paths warn
/// to stderr and return false (policy mirror of a bad CC_KERNEL_BACKEND:
/// never fatal, never silent).
bool write_to_sink(const SinkPolicy& policy, const std::string& text,
                   const char* what);

}  // namespace internal

}  // namespace pyblaz::telemetry
