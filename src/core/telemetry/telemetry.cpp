#include "core/telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <variant>

namespace pyblaz::telemetry {

namespace internal {

int thread_slot() {
  static std::atomic<unsigned> next{0};
  thread_local const int slot = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % kShards);
  return slot;
}

SinkPolicy parse_sink_env(const char* value) {
  SinkPolicy policy;
  if (value == nullptr) return policy;  // Unset: disabled, not an error.
  if (*value == '\0') {
    policy.bad = true;  // Set-but-empty names no sink: warn and disable.
    return policy;
  }
  if (std::string_view(value) == "stderr") {
    policy.kind = SinkKind::kStderr;
  } else {
    policy.kind = SinkKind::kFile;
    policy.path = value;
  }
  return policy;
}

bool write_to_sink(const SinkPolicy& policy, const std::string& text,
                   const char* what) {
  switch (policy.kind) {
    case SinkKind::kDisabled:
      return false;
    case SinkKind::kStderr:
      std::fwrite(text.data(), 1, text.size(), stderr);
      return true;
    case SinkKind::kFile: {
      std::FILE* f = std::fopen(policy.path.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "pyblaz: cannot open %s sink \"%s\"; %s dropped\n",
                     what, policy.path.c_str(), what);
        return false;
      }
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      return true;
    }
  }
  return false;
}

}  // namespace internal

/// Name -> metric.  Pointers stay valid for the process lifetime (values are
/// heap-allocated, the map only ever grows), so hot sites cache references.
/// Deliberately not in the anonymous namespace: it is the class the metric
/// types befriend.
class Registry {
 public:
  static Registry& instance() {
    static Registry* registry = new Registry;  // Leaked: see note below.
    return *registry;
  }

  Counter& counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(std::string(name));
    if (it == metrics_.end()) {
      auto owned = std::unique_ptr<Counter>(new Counter(std::string(name)));
      Counter& ref = *owned;
      metrics_.emplace(ref.name(), Metric{std::move(owned)});
      return ref;
    }
    if (auto* held = std::get_if<std::unique_ptr<Counter>>(&it->second.value))
      return **held;
    throw std::logic_error("telemetry: \"" + std::string(name) +
                           "\" is registered as a histogram");
  }

  Histogram& histogram(std::string_view name, std::string_view unit) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(std::string(name));
    if (it == metrics_.end()) {
      auto owned = std::unique_ptr<Histogram>(
          new Histogram(std::string(name), std::string(unit)));
      Histogram& ref = *owned;
      metrics_.emplace(ref.name(), Metric{std::move(owned)});
      return ref;
    }
    if (auto* held = std::get_if<std::unique_ptr<Histogram>>(&it->second.value))
      return **held;
    throw std::logic_error("telemetry: \"" + std::string(name) +
                           "\" is registered as a counter");
  }

  Snapshot snapshot() const {
    Snapshot out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, metric] : metrics_) {
      if (auto* held = std::get_if<std::unique_ptr<Counter>>(&metric.value)) {
        out.counters.push_back({name, (*held)->value()});
      } else {
        const Histogram& h = *std::get<std::unique_ptr<Histogram>>(metric.value);
        HistogramSnapshot snap;
        snap.name = name;
        snap.unit = h.unit();
        for (const Histogram::Shard& shard : h.shards_) {
          for (int b = 0; b < Histogram::kNumBuckets; ++b) {
            const std::uint64_t n =
                shard.buckets[static_cast<std::size_t>(b)].load(
                    std::memory_order_relaxed);
            snap.buckets[static_cast<std::size_t>(b)] += n;
            snap.count += n;
          }
          snap.sum += shard.sum.load(std::memory_order_relaxed);
        }
        out.histograms.push_back(std::move(snap));
      }
    }
    return out;
  }

 private:
  struct Metric {
    std::variant<std::unique_ptr<Counter>, std::unique_ptr<Histogram>> value;
  };

  // Intentionally leaked (never destroyed): metric handles are cached by
  // reference at call sites that may run during static destruction (the
  // scheduler's worker teardown, the CC_STATS atexit dump), so the registry
  // must outlive every other static.
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, Metric, std::less<>> metrics_;
};

namespace {

/// CC_STATS atexit hook: resolved once at static-init time so the policy
/// warning (bad value) appears exactly once, early, like CC_KERNEL_BACKEND.
///
/// The policy is heap-allocated and leaked on purpose.  atexit handlers and
/// static destructors share one reverse-order stack, and this object's
/// destructor is registered AFTER the std::atexit(&dump) call inside its own
/// constructor — so at exit the destructor would run first and dump() would
/// read a destroyed std::string path.  A leaked policy has no destructor to
/// race.
struct StatsAtExit {
  static internal::SinkPolicy*& policy() {
    static internal::SinkPolicy* leaked = new internal::SinkPolicy;
    return leaked;
  }

  StatsAtExit() {
    *policy() = internal::parse_sink_env(std::getenv("CC_STATS"));
    if (policy()->bad)
      std::fprintf(stderr,
                   "pyblaz: CC_STATS is set but empty (want stderr or a file "
                   "path); stats dump disabled\n");
    if (policy()->kind != internal::SinkKind::kDisabled) std::atexit(&dump);
  }

  static void dump();
};

StatsAtExit g_stats_at_exit;

void StatsAtExit::dump() {
  internal::write_to_sink(*StatsAtExit::policy(),
                          telemetry::snapshot().to_json() + "\n", "CC_STATS");
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Histogram& histogram(std::string_view name, std::string_view unit) {
  return Registry::instance().histogram(name, unit);
}

Snapshot snapshot() { return Registry::instance().snapshot(); }

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Type-1 inverse CDF: the smallest recorded bucket bound with at least
  // ceil(q * count) samples at or below it.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    cumulative += buckets[static_cast<std::size_t>(b)];
    if (cumulative >= rank) return Histogram::bucket_lower_bound(b);
  }
  return Histogram::bucket_lower_bound(Histogram::kNumBuckets - 1);
}

std::uint64_t HistogramSnapshot::max_bucket_bound() const {
  for (int b = Histogram::kNumBuckets - 1; b >= 0; --b)
    if (buckets[static_cast<std::size_t>(b)] != 0)
      return Histogram::bucket_lower_bound(b);
  return 0;
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"schema\": \"pyblaz-telemetry-v1\",\n";
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i ? ",\n    \"" : "\n    \"";
    append_json_escaped(out, counters[i].name);
    out += "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  char buffer[64];
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i ? ",\n    \"" : "\n    \"";
    append_json_escaped(out, h.name);
    out += "\": {\"unit\": \"";
    append_json_escaped(out, h.unit);
    out += "\", \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    std::snprintf(buffer, sizeof(buffer), "%.6g", h.mean());
    out += std::string(", \"mean\": ") + buffer;
    out += ", \"p50\": " + std::to_string(h.quantile(0.50));
    out += ", \"p95\": " + std::to_string(h.quantile(0.95));
    out += ", \"p99\": " + std::to_string(h.quantile(0.99));
    out += ", \"max\": " + std::to_string(h.max_bucket_bound()) + "}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

}  // namespace pyblaz::telemetry
