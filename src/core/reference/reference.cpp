#include "core/reference/reference.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pyblaz::reference {

double dot(const NDArray<double>& x, const NDArray<double>& y) {
  assert(x.shape() == y.shape());
  double total = 0.0;
  for (index_t k = 0; k < x.size(); ++k) total += x[k] * y[k];
  return total;
}

double mean(const NDArray<double>& x) {
  double total = 0.0;
  for (index_t k = 0; k < x.size(); ++k) total += x[k];
  return total / static_cast<double>(x.size());
}

double covariance(const NDArray<double>& x, const NDArray<double>& y) {
  assert(x.shape() == y.shape());
  const double mx = mean(x);
  const double my = mean(y);
  double total = 0.0;
  for (index_t k = 0; k < x.size(); ++k) total += (x[k] - mx) * (y[k] - my);
  return total / static_cast<double>(x.size());
}

double variance(const NDArray<double>& x) { return covariance(x, x); }

double standard_deviation(const NDArray<double>& x) {
  return std::sqrt(variance(x));
}

double l2_norm(const NDArray<double>& x) { return std::sqrt(dot(x, x)); }

double l2_distance(const NDArray<double>& x, const NDArray<double>& y) {
  assert(x.shape() == y.shape());
  double total = 0.0;
  for (index_t k = 0; k < x.size(); ++k) {
    const double d = x[k] - y[k];
    total += d * d;
  }
  return std::sqrt(total);
}

double linf_distance(const NDArray<double>& x, const NDArray<double>& y) {
  assert(x.shape() == y.shape());
  double worst = 0.0;
  for (index_t k = 0; k < x.size(); ++k)
    worst = std::max(worst, std::fabs(x[k] - y[k]));
  return worst;
}

double cosine_similarity(const NDArray<double>& x, const NDArray<double>& y) {
  return dot(x, y) / (l2_norm(x) * l2_norm(y));
}

double structural_similarity(const NDArray<double>& x, const NDArray<double>& y,
                             const ops::SsimParams& params) {
  const double mu_x = mean(x);
  const double mu_y = mean(y);
  const double var_x = variance(x);
  const double var_y = variance(y);
  const double sigma_x = std::sqrt(var_x);
  const double sigma_y = std::sqrt(var_y);
  const double sigma_xy = covariance(x, y);

  const double sl = params.luminance_stabilizer;
  const double sc = params.contrast_stabilizer;
  const double luminance =
      (2.0 * mu_x * mu_y + sl) / (mu_x * mu_x + mu_y * mu_y + sl);
  const double contrast = (2.0 * sigma_x * sigma_y + sc) / (var_x + var_y + sc);
  const double structure =
      (sigma_xy + sc / 2.0) / (sigma_x * sigma_y + sc / 2.0);
  return std::pow(luminance, params.luminance_weight) *
         std::pow(contrast, params.contrast_weight) *
         std::pow(structure, params.structure_weight);
}

namespace {

void softmax_inplace(std::vector<double>& values) {
  double biggest = -std::numeric_limits<double>::infinity();
  for (double v : values) biggest = std::max(biggest, v);
  double total = 0.0;
  for (double& v : values) {
    v = std::exp(v - biggest);
    total += v;
  }
  for (double& v : values) v /= total;
}

double power_mean(const std::vector<double>& diffs, double p, bool stable) {
  const double n = static_cast<double>(diffs.size());
  if (!stable) {
    double total = 0.0;
    for (double d : diffs) total += std::pow(std::fabs(d), p);
    return std::pow(total / n, 1.0 / p);
  }
  double max_log = -std::numeric_limits<double>::infinity();
  for (double d : diffs) {
    const double a = std::fabs(d);
    if (a > 0.0) max_log = std::max(max_log, p * std::log(a));
  }
  if (!std::isfinite(max_log)) return 0.0;
  double total = 0.0;
  for (double d : diffs) {
    const double a = std::fabs(d);
    if (a > 0.0) total += std::exp(p * std::log(a) - max_log);
  }
  return std::exp((max_log + std::log(total) - std::log(n)) / p);
}

}  // namespace

double wasserstein_distance(const NDArray<double>& x, const NDArray<double>& y,
                            double p, bool stable) {
  assert(x.shape() == y.shape());
  std::vector<double> px = x.vector();
  std::vector<double> py = y.vector();

  auto total = [](const std::vector<double>& v) {
    double t = 0.0;
    for (double e : v) t += e;
    return t;
  };
  if (std::fabs(total(px) - 1.0) > 1e-9) softmax_inplace(px);
  if (std::fabs(total(py) - 1.0) > 1e-9) softmax_inplace(py);

  std::sort(px.begin(), px.end());
  std::sort(py.begin(), py.end());

  std::vector<double> diffs(px.size());
  for (std::size_t k = 0; k < px.size(); ++k) diffs[k] = px[k] - py[k];
  return power_mean(diffs, p, stable);
}

double mean_absolute_error(const NDArray<double>& x, const NDArray<double>& y) {
  assert(x.shape() == y.shape());
  double total = 0.0;
  for (index_t k = 0; k < x.size(); ++k) total += std::fabs(x[k] - y[k]);
  return total / static_cast<double>(x.size());
}

}  // namespace pyblaz::reference
