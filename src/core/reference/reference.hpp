#pragma once

#include "core/ndarray/ndarray.hpp"
#include "core/ops/ops.hpp"

namespace pyblaz::reference {

/// Exact uncompressed-space counterparts of the compressed-space operations.
/// These are what the paper's Fig. 5 calls "uncompressed scalar functions
/// using plain PyTorch": the ground truth the compressed results are measured
/// against.  All statistics are population statistics, matching §IV.

/// Σ x_i y_i.
double dot(const NDArray<double>& x, const NDArray<double>& y);

/// Arithmetic mean.
double mean(const NDArray<double>& x);

/// Population covariance E[(x - μx)(y - μy)].
double covariance(const NDArray<double>& x, const NDArray<double>& y);

/// Population variance.
double variance(const NDArray<double>& x);

/// sqrt(variance).
double standard_deviation(const NDArray<double>& x);

/// Euclidean norm ‖x‖₂.
double l2_norm(const NDArray<double>& x);

/// ‖x - y‖₂: the adjacent-time-step distance of the fission experiment.
double l2_distance(const NDArray<double>& x, const NDArray<double>& y);

/// Largest absolute difference, ‖x - y‖∞.
double linf_distance(const NDArray<double>& x, const NDArray<double>& y);

/// dot / (‖x‖‖y‖).
double cosine_similarity(const NDArray<double>& x, const NDArray<double>& y);

/// Global SSIM with the same stabilizers/weights as the compressed version
/// (Algorithm 12 evaluated on raw data).
double structural_similarity(const NDArray<double>& x, const NDArray<double>& y,
                             const ops::SsimParams& params = {});

/// Exact 1-D p-order Wasserstein distance between the empirical distributions
/// of x and y: softmax-normalize if needed, sort, and take the p-power mean
/// of sorted differences — Algorithm 13 without the blockwise-mean
/// coarsening.  @p stable selects the log-domain evaluation.
double wasserstein_distance(const NDArray<double>& x, const NDArray<double>& y,
                            double p, bool stable = true);

/// Mean absolute error between two arrays of equal shape.
double mean_absolute_error(const NDArray<double>& x, const NDArray<double>& y);

}  // namespace pyblaz::reference
