#pragma once

#include <vector>

#include "core/codec/compressed_array.hpp"
#include "core/dtypes/index_type.hpp"

namespace pyblaz {

/// A-priori per-block error quantities of §IV-D.
///
/// With biggest coefficient N_k and index-type radius r, the 2r + 1 bins
/// centered at zero covering [-N_k, N_k] have width 2 N_k / (2r + 1); binning
/// therefore perturbs each kept coefficient by at most half a bin.

/// Width of one bin under the paper's 2r + 1-bin accounting: 2 N / (2r + 1).
double bin_width(double biggest, IndexType index_type);

/// Guaranteed maximum binning error per coefficient: N / (2r), half the
/// actual spacing of the decodable values N k / r.  (The paper quotes
/// N / (2r + 1); the two differ by under 0.4% even for int8.  Uses the
/// arithmetic radius, so the bound is honest for int64 too.)
double max_binning_coefficient_error(double biggest, IndexType index_type);

/// The paper's loose per-block L∞ bound in the decompressed space, for the
/// binning contribution alone: every one of the prod(i) coefficients may be
/// off by up to N/(2r+1) and every basis element has magnitude at most 1,
/// giving prod(i) * N / (2r + 1).  Pruning adds the magnitudes of the dropped
/// coefficients, which are only known at compression time (see
/// CompressionDiagnostics).
double loose_linf_bound(double biggest, IndexType index_type,
                        const Shape& block_shape);

/// Per-block loose L∞ bounds for a whole compressed array (binning term).
std::vector<double> loose_linf_bounds(const CompressedArray& array);

/// Exact per-block error accounting measured while compressing.  Because the
/// transform is orthonormal, the decompressed-space L2 error of block k
/// equals the L2 norm of its coefficient errors (§IV-D), i.e.
/// sqrt(binning_l2[k]^2 + pruning_l2[k]^2) exactly (up to FP rounding).
struct CompressionDiagnostics {
  /// L2 norm of (coefficient - dequantized bin) over kept coefficients.
  std::vector<double> binning_l2;
  /// L2 norm of the pruned (zeroed) coefficients.
  std::vector<double> pruning_l2;
  /// Largest-magnitude pruned coefficient.
  std::vector<double> pruning_linf;
  /// Sum of magnitudes of pruned coefficients (enters the loose L∞ bound).
  std::vector<double> pruning_l1;

  /// Whole-array L2 error bound: sqrt(Σ_k binning² + pruning²).
  double total_l2() const;

  /// Per-block guaranteed L2 error (valid decompressed-space bound).
  double block_l2(index_t block) const;

  /// Loose whole-array L∞ bound: max over blocks of
  /// prod(i)·N_k/(2r+1) + pruning_l1[k].  Needs the array for N and settings.
  double loose_linf(const CompressedArray& array) const;
};

}  // namespace pyblaz
