#pragma once

#include <vector>

#include "core/ndarray/shape.hpp"

namespace pyblaz {

/// Pruning mask P (§III-A "pruning"): a Boolean array shaped like one block
/// selecting which transform-coefficient indices (frequencies) survive
/// compression.  Dropping an index is equivalent to rounding its coefficient
/// to zero, so pruning trades error for compression ratio.
class PruningMask {
 public:
  /// Default-constructed masks are invalid placeholders; use the factories.
  PruningMask() = default;

  /// Keep every coefficient (no pruning).
  static PruningMask keep_all(const Shape& block_shape);

  /// Keep approximately @p fraction of the coefficients, preferring low
  /// sequency (sum of frequency coordinates), which is where DCT concentrates
  /// smooth-signal energy.  Ties are broken by flat offset so the selection
  /// is deterministic.  At least one coefficient (the DC) is always kept when
  /// fraction > 0.
  static PruningMask keep_fraction(const Shape& block_shape, double fraction);

  /// Build from explicit flags (1 = keep), row-major over the block shape.
  static PruningMask from_flags(const Shape& block_shape,
                                std::vector<std::uint8_t> flags);

  /// Shape of the mask (= block shape i).
  const Shape& shape() const { return shape_; }

  /// Σ P: how many coefficients are kept per block.
  index_t kept_count() const { return static_cast<index_t>(kept_offsets_.size()); }

  /// Flat intrablock offsets of the kept coefficients, ascending.  The
  /// flattened sequence F stores coefficients in exactly this order.
  const std::vector<index_t>& kept_offsets() const { return kept_offsets_; }

  /// Whether intrablock offset @p offset survives pruning.
  bool keeps(index_t offset) const {
    return flags_[static_cast<std::size_t>(offset)] != 0;
  }

  /// Whether the first (DC) coefficient is kept.  Mean, scalar addition,
  /// covariance, SSIM, and Wasserstein distance all require this.
  bool keeps_dc() const { return !flags_.empty() && flags_[0] != 0; }

  /// Raw flags, row-major over the block shape (1 = keep).
  const std::vector<std::uint8_t>& flags() const { return flags_; }

  /// True for factory-built masks, false for default-constructed ones.
  bool valid() const { return !flags_.empty(); }

  friend bool operator==(const PruningMask& a, const PruningMask& b) {
    return a.shape_ == b.shape_ && a.flags_ == b.flags_;
  }

 private:
  Shape shape_;
  std::vector<std::uint8_t> flags_;
  std::vector<index_t> kept_offsets_;

  void rebuild_offsets();
};

}  // namespace pyblaz
