#pragma once

#include <cstdint>
#include <vector>

#include "core/codec/compressed_array.hpp"

namespace pyblaz {

/// Serialize into the current (v2) chunked container format:
///
///   - 4 bytes: magic "PBZ2" (a v1 stream can never start with it: v1's
///     first byte is always < 32)
///   - the shared v1 metadata header (type nibble, transform, shape s with
///     end marker, block shape i, pruning mask P), padded to a byte boundary
///   - 64 bits: blocks per chunk; 32 bits: chunk count
///   - 64 bits per chunk: byte offset of its payload, relative to the
///     payload start
///   - per chunk, byte-aligned: N then F for that chunk's blocks
///
/// Blocks are partitioned into fixed-size chunks (a pure function of the
/// array's geometry), so encode and decode fan the chunks out across the
/// parallel runtime while producing byte-identical streams at any thread
/// count.  Chunk payloads are independent: a decoder can also read any
/// subset of chunks without touching the rest of the payload.
std::vector<std::uint8_t> serialize(const CompressedArray& array);

/// Serialize into the legacy v1 single-stream layout (§IV-C):
///
///   - 4 bits: float type (2) + index type (2)
///   - 4 bits: transform kind (1) + reserved (3)   [our addition; the paper's
///     accounting has only the first 4 bits — see paper_layout_bits()]
///   - 64 bits per dimension: the original shape s
///   - 64 bits: end-of-s marker (all ones), which encodes d implicitly
///   - 64 bits per dimension: the block shape i
///   - prod(i) bits: the pruning mask P, flattened
///   - f bits per block: N, flattened (f = bits of the float type)
///   - i bits per kept index per block: F, flattened (i = bits of the index
///     type, two's complement)
///
/// The stream is zero-padded to a byte boundary at the end.  Kept for
/// interoperability with pre-chunking archives and as the layout whose size
/// matches the paper's ratio accounting exactly.
std::vector<std::uint8_t> serialize_v1(const CompressedArray& array);

/// True when @p bytes starts with the v2 chunked-container magic.
bool is_chunked_stream(const std::vector<std::uint8_t>& bytes);

/// Inverse of serialize()/serialize_v1(); the format version is detected
/// from the stream.  Throws std::invalid_argument on malformed input.
CompressedArray deserialize(const std::vector<std::uint8_t>& bytes);

/// Size in bits of the §IV-C layout for @p array — exactly the components the
/// paper's ratio accounting lists (i.e. excluding our extra 4 transform bits
/// and the final byte padding).
std::size_t paper_layout_bits(const CompressedArray& array);

}  // namespace pyblaz
