#pragma once

#include <cstdint>
#include <vector>

#include "core/codec/compressed_array.hpp"

namespace pyblaz {

/// Bit-exact serialization of a compressed array following the §IV-C layout:
///
///   - 4 bits: float type (2) + index type (2)
///   - 4 bits: transform kind (1) + reserved (3)   [our addition; the paper's
///     accounting has only the first 4 bits — see paper_layout_bits()]
///   - 64 bits per dimension: the original shape s
///   - 64 bits: end-of-s marker (all ones), which encodes d implicitly
///   - 64 bits per dimension: the block shape i
///   - prod(i) bits: the pruning mask P, flattened
///   - f bits per block: N, flattened (f = bits of the float type)
///   - i bits per kept index per block: F, flattened (i = bits of the index
///     type, two's complement)
///
/// The stream is zero-padded to a byte boundary at the end.
std::vector<std::uint8_t> serialize(const CompressedArray& array);

/// Inverse of serialize().  Throws std::invalid_argument on malformed input.
CompressedArray deserialize(const std::vector<std::uint8_t>& bytes);

/// Size in bits of the §IV-C layout for @p array — exactly the components the
/// paper's ratio accounting lists (i.e. excluding our extra 4 transform bits
/// and the final byte padding).
std::size_t paper_layout_bits(const CompressedArray& array);

}  // namespace pyblaz
