#pragma once

#include <cstdint>
#include <vector>

#include "core/codec/compressed_array.hpp"

namespace pyblaz {

/// Serialize into the current (v3) checksummed chunked container:
///
///   - 4 bytes: magic "PBZ3" (a v1 stream can never start with it: v1's
///     first byte is always < 32)
///   - the shared v1 metadata header (type nibble, transform, shape s with
///     end marker, block shape i, pruning mask P), padded to a byte boundary
///   - 64 bits: blocks per chunk; 32 bits: chunk count
///   - 64 bits per chunk: byte offset of its payload, relative to the
///     payload start
///   - 32 bits: CRC-32 of every byte above (magic through chunk table)
///   - 32 bits per chunk: CRC-32 of that chunk's payload bytes
///   - per chunk, byte-aligned: N then F for that chunk's blocks
///
/// The payload bytes are byte-identical to what the v2 writer produces —
/// v3 is v2 plus integrity.  CRC-32 detects every single-bit flip and every
/// burst up to 32 bits, so the decoder rejects such corruption with
/// cc::Error(kCorruptArchive) instead of silently decoding garbage
/// (tools/fuzz_archive sweeps this).  Blocks are partitioned into fixed-size
/// chunks (a pure function of the array's geometry), so encode and decode
/// fan the chunks out across the parallel runtime while producing
/// byte-identical streams — checksums included — at any thread count.
std::vector<std::uint8_t> serialize(const CompressedArray& array);

/// Serialize into the v2 chunked container: the same layout as v3 minus the
/// magic ("PBZ2") and the two checksum fields.  Kept for interoperability
/// and as the baseline the `checksums[]` bench section measures v3 against.
std::vector<std::uint8_t> serialize_v2(const CompressedArray& array);

/// Serialize into the legacy v1 single-stream layout (§IV-C):
///
///   - 4 bits: float type (2) + index type (2)
///   - 4 bits: transform kind (1) + reserved (3)   [our addition; the paper's
///     accounting has only the first 4 bits — see paper_layout_bits()]
///   - 64 bits per dimension: the original shape s
///   - 64 bits: end-of-s marker (all ones), which encodes d implicitly
///   - 64 bits per dimension: the block shape i
///   - prod(i) bits: the pruning mask P, flattened
///   - f bits per block: N, flattened (f = bits of the float type)
///   - i bits per kept index per block: F, flattened (i = bits of the index
///     type, two's complement)
///
/// The stream is zero-padded to a byte boundary at the end.  Kept for
/// interoperability with pre-chunking archives and as the layout whose size
/// matches the paper's ratio accounting exactly.
std::vector<std::uint8_t> serialize_v1(const CompressedArray& array);

/// Container version @p bytes carries: 3 ("PBZ3"), 2 ("PBZ2"), else 1 (the
/// magic-less legacy layout — any stream that is not a chunked container).
int archive_version(const std::vector<std::uint8_t>& bytes);

/// True when @p bytes starts with a chunked-container magic (v2 or v3).
bool is_chunked_stream(const std::vector<std::uint8_t>& bytes);

/// Inverse of serialize()/serialize_v2()/serialize_v1(); the format version
/// is detected from the stream.  Malformed input raises cc::Error — see
/// src/core/error/error.hpp for the taxonomy (kTruncated, kCorruptArchive,
/// kResourceExhausted) and docs/ROBUSTNESS.md for the guarantees per
/// container version.
CompressedArray deserialize(const std::vector<std::uint8_t>& bytes);

/// Size in bits of the §IV-C layout for @p array — exactly the components the
/// paper's ratio accounting lists (i.e. excluding our extra 4 transform bits
/// and the final byte padding).
std::size_t paper_layout_bits(const CompressedArray& array);

}  // namespace pyblaz
