#include "core/codec/pruning.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pyblaz {

void PruningMask::rebuild_offsets() {
  kept_offsets_.clear();
  for (std::size_t k = 0; k < flags_.size(); ++k) {
    if (flags_[k]) kept_offsets_.push_back(static_cast<index_t>(k));
  }
}

PruningMask PruningMask::keep_all(const Shape& block_shape) {
  PruningMask mask;
  mask.shape_ = block_shape;
  mask.flags_.assign(static_cast<std::size_t>(block_shape.volume()), 1);
  mask.rebuild_offsets();
  return mask;
}

PruningMask PruningMask::keep_fraction(const Shape& block_shape, double fraction) {
  assert(fraction >= 0.0 && fraction <= 1.0);
  const index_t volume = block_shape.volume();
  index_t keep = static_cast<index_t>(fraction * static_cast<double>(volume) + 0.5);
  keep = std::clamp<index_t>(keep, fraction > 0.0 ? 1 : 0, volume);

  // Order intrablock offsets by sequency (sum of frequency coordinates),
  // then by offset for determinism.
  std::vector<index_t> order(static_cast<std::size_t>(volume));
  std::iota(order.begin(), order.end(), index_t{0});
  std::vector<index_t> sequency(static_cast<std::size_t>(volume));
  for (index_t j = 0; j < volume; ++j) {
    index_t s = 0;
    for (index_t c : block_shape.indices_of(j)) s += c;
    sequency[static_cast<std::size_t>(j)] = s;
  }
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return sequency[static_cast<std::size_t>(a)] < sequency[static_cast<std::size_t>(b)];
  });

  PruningMask mask;
  mask.shape_ = block_shape;
  mask.flags_.assign(static_cast<std::size_t>(volume), 0);
  for (index_t k = 0; k < keep; ++k)
    mask.flags_[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = 1;
  mask.rebuild_offsets();
  return mask;
}

PruningMask PruningMask::from_flags(const Shape& block_shape,
                                    std::vector<std::uint8_t> flags) {
  assert(static_cast<index_t>(flags.size()) == block_shape.volume());
  PruningMask mask;
  mask.shape_ = block_shape;
  mask.flags_ = std::move(flags);
  for (auto& f : mask.flags_) f = f ? 1 : 0;
  mask.rebuild_offsets();
  return mask;
}

}  // namespace pyblaz
