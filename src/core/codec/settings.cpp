#include "core/codec/settings.hpp"

#include <sstream>
#include <stdexcept>

namespace pyblaz {

void CompressorSettings::validate() const {
  if (block_shape.ndim() == 0)
    throw std::invalid_argument("CompressorSettings: block shape is empty");
  if (!block_shape.all_powers_of_two())
    throw std::invalid_argument(
        "CompressorSettings: block extents must be powers of two, got " +
        block_shape.to_string());
  if (mask && mask->shape() != block_shape)
    throw std::invalid_argument(
        "CompressorSettings: pruning mask shape " + mask->shape().to_string() +
        " does not match block shape " + block_shape.to_string());
  if (mask && mask->kept_count() == 0)
    throw std::invalid_argument("CompressorSettings: pruning mask keeps nothing");
}

std::string CompressorSettings::describe() const {
  std::ostringstream out;
  const PruningMask effective = effective_mask();
  out << "block " << block_shape.to_string() << ", " << name(float_type) << ", "
      << name(index_type) << ", " << name(transform) << ", kept "
      << effective.kept_count() << "/" << block_shape.volume();
  return out.str();
}

}  // namespace pyblaz
