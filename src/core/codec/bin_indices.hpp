#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/dtypes/index_type.hpp"

namespace pyblaz {

/// The flattened bin-index sequence F, stored at the *actual* width of the
/// configured index type (int8 elements occupy one byte, not a widened
/// int64).  This matches the §IV-C storage accounting and keeps the
/// compressed-space operations memory-bound on the true compressed size.
///
/// Cold paths use get()/set(); hot loops fetch a typed pointer through
/// visit(), which dispatches on the index type once instead of per element.
class BinIndices {
 public:
  BinIndices() = default;

  /// Allocate @p count zero indices of the given type.
  BinIndices(IndexType type, std::size_t count)
      : type_(type),
        count_(count),
        raw_(count * static_cast<std::size_t>(bits(type) / 8), 0) {}

  IndexType type() const { return type_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Read index @p k, widened to int64.
  std::int64_t get(std::size_t k) const {
    switch (type_) {
      case IndexType::kInt8:
        return reinterpret_cast<const std::int8_t*>(raw_.data())[k];
      case IndexType::kInt16:
        return reinterpret_cast<const std::int16_t*>(raw_.data())[k];
      case IndexType::kInt32:
        return reinterpret_cast<const std::int32_t*>(raw_.data())[k];
      case IndexType::kInt64:
        return reinterpret_cast<const std::int64_t*>(raw_.data())[k];
    }
    return 0;
  }

  /// Write index @p k (the value must fit the index type; binning clamps to
  /// [-r, r] which always fits).
  void set(std::size_t k, std::int64_t value) {
    switch (type_) {
      case IndexType::kInt8:
        reinterpret_cast<std::int8_t*>(raw_.data())[k] =
            static_cast<std::int8_t>(value);
        return;
      case IndexType::kInt16:
        reinterpret_cast<std::int16_t*>(raw_.data())[k] =
            static_cast<std::int16_t>(value);
        return;
      case IndexType::kInt32:
        reinterpret_cast<std::int32_t*>(raw_.data())[k] =
            static_cast<std::int32_t>(value);
        return;
      case IndexType::kInt64:
        reinterpret_cast<std::int64_t*>(raw_.data())[k] = value;
        return;
    }
  }

  /// Invoke @p fn with a typed const pointer to the index array
  /// (fn(const T* data) for T in {int8_t, int16_t, int32_t, int64_t}).
  template <typename Fn>
  decltype(auto) visit(Fn&& fn) const {
    switch (type_) {
      case IndexType::kInt8:
        return fn(reinterpret_cast<const std::int8_t*>(raw_.data()));
      case IndexType::kInt16:
        return fn(reinterpret_cast<const std::int16_t*>(raw_.data()));
      case IndexType::kInt32:
        return fn(reinterpret_cast<const std::int32_t*>(raw_.data()));
      case IndexType::kInt64:
      default:
        return fn(reinterpret_cast<const std::int64_t*>(raw_.data()));
    }
  }

  /// Invoke @p fn with a typed mutable pointer (fn(T* data)).
  template <typename Fn>
  decltype(auto) visit_mutable(Fn&& fn) {
    switch (type_) {
      case IndexType::kInt8:
        return fn(reinterpret_cast<std::int8_t*>(raw_.data()));
      case IndexType::kInt16:
        return fn(reinterpret_cast<std::int16_t*>(raw_.data()));
      case IndexType::kInt32:
        return fn(reinterpret_cast<std::int32_t*>(raw_.data()));
      case IndexType::kInt64:
      default:
        return fn(reinterpret_cast<std::int64_t*>(raw_.data()));
    }
  }

  /// Negate every index in place (Algorithm 1; radii are symmetric so no
  /// overflow is possible for clamped bins).
  void negate_all() {
    visit_mutable([this](auto* data) {
      for (std::size_t k = 0; k < count_; ++k) data[k] = -data[k];
    });
  }

  /// Raw storage in bytes (the true compressed F payload size).
  std::size_t byte_size() const { return raw_.size(); }

  friend bool operator==(const BinIndices& a, const BinIndices& b) {
    return a.type_ == b.type_ && a.count_ == b.count_ && a.raw_ == b.raw_;
  }

 private:
  IndexType type_ = IndexType::kInt8;
  std::size_t count_ = 0;
  std::vector<std::uint8_t> raw_;
};

}  // namespace pyblaz
