#include "core/codec/compressor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/codec/block_access.hpp"
#include "core/kernels/backend.hpp"
#include "core/kernels/rebin.hpp"
#include "core/ndarray/ndarray_ops.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/telemetry/trace.hpp"

namespace pyblaz {

namespace {

/// Blocks per parallel chunk for the fused block pipelines.  Small enough to
/// load-balance ragged grids, large enough to amortize the per-chunk
/// workspace (one BlockCursor + two block buffers).  A fixed constant so the
/// chunking — and with it every result — is independent of the thread count.
constexpr index_t kCodecGrain = 4;

/// Compressed payload bytes of an array with @p num_blocks blocks: the N row
/// plus the kept bin indices (the quantity serialization stores per chunk).
std::uint64_t payload_bytes(const CompressedArray& array) {
  const std::uint64_t payload_bits =
      static_cast<std::uint64_t>(array.num_blocks()) *
      (static_cast<std::uint64_t>(bits(array.float_type)) +
       static_cast<std::uint64_t>(bits(array.index_type)) *
           static_cast<std::uint64_t>(array.kept_per_block()));
  return (payload_bits + 7) / 8;
}

}  // namespace

Compressor::Compressor(CompressorSettings settings)
    : settings_(std::move(settings)) {
  settings_.validate();
  mask_ = settings_.effective_mask();
  transform_ = std::make_shared<BlockTransform>(
      settings_.transform, settings_.block_shape, settings_.transform_impl);
}

CompressedArray Compressor::compress(const NDArray<double>& array,
                                     CompressionDiagnostics* diagnostics) const {
  if (array.shape().ndim() != settings_.block_shape.ndim())
    throw std::invalid_argument(
        "Compressor: array dimensionality " +
        std::to_string(array.shape().ndim()) + " does not match block shape " +
        settings_.block_shape.to_string());

  // Telemetry observes only: counters/histogram/spans never influence
  // chunking or arithmetic, so compressed bytes are unchanged by them.
  static telemetry::Counter& calls = telemetry::counter("codec.compress.calls");
  static telemetry::Counter& input_bytes =
      telemetry::counter("codec.compress.input_bytes");
  static telemetry::Counter& output_bytes =
      telemetry::counter("codec.compress.output_bytes");
  static telemetry::Histogram& wall =
      telemetry::histogram("codec.compress.wall_ns");
  calls.increment();
  input_bytes.add(static_cast<std::uint64_t>(array.shape().volume()) *
                  sizeof(double));
  telemetry::ScopedLatency latency(wall);
  telemetry::TraceSpan span("codec.compress");

  const Shape grid = Shape::ceil_div(array.shape(), settings_.block_shape);
  const index_t num_blocks = grid.volume();
  const index_t block_volume = settings_.block_shape.volume();
  const index_t kept = mask_.kept_count();
  const auto& kept_offsets = mask_.kept_offsets();
  const double r = static_cast<double>(arithmetic_radius(settings_.index_type));
  const FloatType ftype = settings_.float_type;

  CompressedArray out;
  out.shape = array.shape();
  out.block_shape = settings_.block_shape;
  out.float_type = ftype;
  out.index_type = settings_.index_type;
  out.transform = settings_.transform;
  out.mask = mask_;
  out.biggest.resize(static_cast<std::size_t>(num_blocks));
  out.indices = BinIndices(settings_.index_type,
                           static_cast<std::size_t>(num_blocks * kept));

  if (diagnostics) {
    diagnostics->binning_l2.assign(static_cast<std::size_t>(num_blocks), 0.0);
    diagnostics->pruning_l2.assign(static_cast<std::size_t>(num_blocks), 0.0);
    diagnostics->pruning_linf.assign(static_cast<std::size_t>(num_blocks), 0.0);
    diagnostics->pruning_l1.assign(static_cast<std::size_t>(num_blocks), 0.0);
  }

  // Backend dispatch resolved once per compress call; chunks then call
  // through plain function pointers (gather/scatter stay scalar — they are
  // memcpy + rounding, not worth a per-ISA kernel).
  const kernels::KernelTable& table = kernels::active();

  out.indices.visit_mutable([&](auto* bins_data) {
    parallel::parallel_for(0, num_blocks, kCodecGrain, [&](index_t chunk_begin,
                                                           index_t chunk_end) {
      blockio::BlockCursor cursor(array.shape(), settings_.block_shape, grid);
      std::vector<double> coeffs(static_cast<std::size_t>(block_volume));
      std::vector<double> scratch(static_cast<std::size_t>(block_volume));
      for (index_t kb = chunk_begin; kb < chunk_end; ++kb) {
        // Steps 1+2 (§III-A a, b): gather the block, rounding values through
        // the storage float type in the same pass (elementwise, so
        // quantize-then-block and block-then-quantize agree).
        {
          telemetry::TraceSpan stage("codec.stage.gather_quantize");
          cursor.gather(array.data(), kb, coeffs.data(), ftype);
        }

        // Steps 3-5 (§III-A c-e): orthonormal transform, then binning +
        // pruning, through the per-block path shared with the decoded-block
        // cache and random-access API (core/codec/block_access.hpp).
        auto* bins = bins_data + kb * kept;
        using BinT = std::remove_reference_t<decltype(bins[0])>;
        const double biggest = blockio::encode_transform_rebin<BinT>(
            table, *transform_, coeffs.data(), scratch.data(), block_volume,
            kept, kept_offsets.data(), r, ftype, bins);
        out.biggest[static_cast<std::size_t>(kb)] = biggest;

        if (diagnostics) {
          double binning_sq = 0.0, pruning_sq = 0.0, pruning_linf = 0.0,
                 pruning_l1 = 0.0;
          index_t slot = 0;
          for (index_t j = 0; j < block_volume; ++j) {
            const double c = coeffs[static_cast<std::size_t>(j)];
            if (slot < kept && kept_offsets[static_cast<std::size_t>(slot)] == j) {
              const double decoded =
                  biggest == 0.0
                      ? 0.0
                      : biggest * static_cast<double>(bins[slot]) / r;
              const double err = c - decoded;
              binning_sq += err * err;
              ++slot;
            } else {
              pruning_sq += c * c;
              pruning_linf = std::max(pruning_linf, std::fabs(c));
              pruning_l1 += std::fabs(c);
            }
          }
          diagnostics->binning_l2[static_cast<std::size_t>(kb)] = std::sqrt(binning_sq);
          diagnostics->pruning_l2[static_cast<std::size_t>(kb)] = std::sqrt(pruning_sq);
          diagnostics->pruning_linf[static_cast<std::size_t>(kb)] = pruning_linf;
          diagnostics->pruning_l1[static_cast<std::size_t>(kb)] = pruning_l1;
        }
      }
    });
  });
  output_bytes.add(payload_bytes(out));
  return out;
}

NDArray<double> Compressor::decompress(const CompressedArray& array) const {
  if (array.block_shape != settings_.block_shape ||
      array.transform != settings_.transform)
    throw std::invalid_argument(
        "Compressor::decompress: array was compressed with different settings");
  if (array.dirty_cached_blocks() > 0)
    throw std::logic_error(
        "Compressor::decompress: array has unflushed dirty cached blocks; "
        "call flush_cache() first");

  static telemetry::Counter& calls =
      telemetry::counter("codec.decompress.calls");
  static telemetry::Counter& input_bytes =
      telemetry::counter("codec.decompress.input_bytes");
  static telemetry::Counter& output_bytes =
      telemetry::counter("codec.decompress.output_bytes");
  static telemetry::Histogram& wall =
      telemetry::histogram("codec.decompress.wall_ns");
  calls.increment();
  input_bytes.add(payload_bytes(array));
  output_bytes.add(static_cast<std::uint64_t>(array.shape.volume()) *
                   sizeof(double));
  telemetry::ScopedLatency latency(wall);
  telemetry::TraceSpan span("codec.decompress");

  const Shape grid = array.block_grid();
  const index_t num_blocks = grid.volume();
  const index_t block_volume = array.block_shape.volume();
  const index_t kept = array.kept_per_block();
  const auto& kept_offsets = array.mask.kept_offsets();
  const double r = static_cast<double>(array.radius());
  const FloatType ftype = settings_.float_type;

  NDArray<double> out(array.shape);

  const kernels::KernelTable& table = kernels::active();

  array.indices.visit([&](const auto* bins_data) {
    parallel::parallel_for(0, num_blocks, kCodecGrain, [&](index_t chunk_begin,
                                                           index_t chunk_end) {
      blockio::BlockCursor cursor(array.shape, array.block_shape, grid);
      std::vector<double> coeffs(static_cast<std::size_t>(block_volume));
      std::vector<double> scratch(static_cast<std::size_t>(block_volume));
      for (index_t kb = chunk_begin; kb < chunk_end; ++kb) {
        // Unflatten F with zeros in the pruned slots (§III-B), scaling back
        // to specified coefficients (Algorithm 3), then inverse-transform —
        // the per-block path shared with the decoded-block cache.
        const double scale = array.biggest[static_cast<std::size_t>(kb)] / r;
        const auto* bins = bins_data + kb * kept;
        using BinT = std::remove_cvref_t<decltype(bins[0])>;
        blockio::decode_unbin_itransform<BinT>(
            table, *transform_, bins, block_volume, kept, kept_offsets.data(),
            scale, coeffs.data(), scratch.data());
        // The reconstruction lives in the storage float type; the rounding is
        // fused into the scatter so cropped padding is never converted.
        telemetry::TraceSpan stage("codec.stage.scatter");
        cursor.scatter(out.data(), kb, coeffs.data(), ftype);
      }
    });
  });
  return out;
}

}  // namespace pyblaz
