#pragma once

#include <cstring>
#include <type_traits>
#include <vector>

#include "core/codec/compressed_array.hpp"
#include "core/dtypes/float_type.hpp"
#include "core/kernels/backend.hpp"
#include "core/kernels/rebin.hpp"
#include "core/ndarray/shape.hpp"
#include "core/telemetry/trace.hpp"
#include "core/transform/block_transform.hpp"

namespace pyblaz::blockio {

/// The per-block codec path shared by Compressor (whole-array compress /
/// decompress), the decoded-block cache (core/cache/), and the random-access
/// read API (CompressedArray::get / decompress_roi).  Everything here calls
/// the same kernels:: entry points the fused compressor pipeline uses, so a
/// block encoded through encode_block() is bit-identical to the same data
/// going through Compressor::compress, and a block decoded through
/// decode_block() is bit-identical to the corresponding region of
/// Compressor::decompress.  That shared arithmetic is what lets the cache's
/// write-back guarantee byte-identical archives.

/// Decompose @p offset (row-major within @p shape) into per-axis coordinates.
void decompose(const Shape& shape, index_t offset, index_t* coords);

/// Advance row-major coordinates over the leading (all but last) axes.
bool advance_row(const Shape& shape, index_t* coords);

/// Per-thread workspace for fused block processing: block rows are moved
/// with memcpy between the array (row-major) and a local block buffer, so
/// neither compression nor random access ever materializes a whole-array
/// blocked intermediate.
///
/// The referenced shapes must outlive the cursor.
struct BlockCursor {
  const Shape& shape;
  const Shape& block_shape;
  const Shape& grid;
  std::vector<index_t> strides;
  int d;
  index_t block_last;
  index_t rows_per_block;

  std::vector<index_t> block_coords;
  std::vector<index_t> row_coords;

  BlockCursor(const Shape& array_shape, const Shape& block,
              const Shape& block_grid);

  /// Copy block @p kb of the array into @p dst, zero-padding ragged edges and
  /// rounding the copied values through @p float_type in the same cache pass
  /// (padding zeros are exact in every float type, so only copied rows need
  /// the conversion).
  void gather(const double* array, index_t kb, double* dst,
              FloatType float_type);

  /// Copy block @p kb from @p src into the array, cropping ragged edges and
  /// rounding the written values through @p float_type in the same pass (the
  /// cropped padding never reaches the output, so it is never converted).
  void scatter(double* array, index_t kb, const double* src,
               FloatType float_type);

  /// Round the in-bounds values of the standalone block buffer @p block
  /// through @p float_type and zero every padding position.  Elementwise this
  /// matches scatter() exactly for in-bounds positions and gather()'s
  /// zero-fill for padding, so a buffer processed by quantize_crop() is
  /// bit-identical to what gather() would produce from the scattered output —
  /// the property that makes decode_block -> encode_block round-trips match
  /// decompress -> compress.
  void quantize_crop(double* block, index_t kb, FloatType float_type);

  /// Copy the intersection of block @p kb with the half-open region
  /// [lo, hi) from the decoded block buffer @p block into @p out, an array of
  /// shape (hi - lo) with row-major strides @p out_strides.  Rows of the
  /// block outside the region are skipped.
  void copy_to_roi(const double* block, index_t kb, const index_t* lo,
                   const index_t* hi, double* out,
                   const std::vector<index_t>& out_strides);
};

/// Transform + rebin one gathered, float-rounded block: the forward half of
/// the fused pipeline after gather (compress steps 3-5, §III-A c-e).
/// @p coeffs holds the block values on entry and the transform coefficients
/// on exit; @p bins receives the @p kept bin indices.  Returns the stored
/// (float-rounded) biggest coefficient N_k.
template <typename BinT>
inline double encode_transform_rebin(const kernels::KernelTable& table,
                                     const BlockTransform& transform,
                                     double* coeffs, double* scratch,
                                     index_t block_volume, index_t kept,
                                     const index_t* kept_offsets, double r,
                                     FloatType float_type, BinT* bins) {
  {
    telemetry::TraceSpan stage("codec.stage.transform");
    transform.forward(coeffs, scratch);
  }
  telemetry::TraceSpan stage("codec.stage.rebin");
  const double biggest = quantize(table.max_abs(coeffs, block_volume),
                                  float_type);
  if (biggest == 0.0) {
    for (index_t j = 0; j < kept; ++j) bins[j] = BinT{0};
  } else if (kept == block_volume) {
    kernels::bins<BinT>(table).quantize_bins(coeffs, bins, kept, r / biggest,
                                             r);
  } else {
    kernels::quantize_bins_gather(coeffs, kept_offsets, bins, kept,
                                  r / biggest, r);
  }
  return biggest;
}

/// Unbin + inverse-transform one block: the reverse half of the fused
/// pipeline before scatter (decompress, §III-B / Algorithm 3).  On exit
/// @p coeffs holds the reconstructed block values (not yet rounded through
/// the storage float type — scatter / quantize_crop fuses that step).
template <typename BinT>
inline void decode_unbin_itransform(const kernels::KernelTable& table,
                                    const BlockTransform& transform,
                                    const BinT* bins, index_t block_volume,
                                    index_t kept, const index_t* kept_offsets,
                                    double scale, double* coeffs,
                                    double* scratch) {
  {
    telemetry::TraceSpan stage("codec.stage.unbin");
    if (kept == block_volume) {
      kernels::bins<BinT>(table).unbin_block(bins, kept, scale, coeffs);
    } else {
      std::memset(coeffs, 0,
                  static_cast<std::size_t>(block_volume) * sizeof(double));
      kernels::unbin_scatter(bins, kept_offsets, kept, scale, coeffs);
    }
  }
  telemetry::TraceSpan stage("codec.stage.itransform");
  transform.inverse(coeffs, scratch);
}

/// Decode block @p kb of @p array into @p out (block_shape.volume() doubles):
/// unbin -> inverse transform -> round through the storage float type with
/// padding zeroed (quantize_crop).  Elementwise bit-identical to the
/// corresponding region of Compressor::decompress.  @p cursor must be built
/// for the array's (shape, block_shape, grid); @p scratch must hold
/// block_shape.volume() doubles.
void decode_block(const CompressedArray& array, const BlockTransform& transform,
                  BlockCursor& cursor, index_t kb, double* out,
                  double* scratch);

/// Re-encode the decoded block buffer @p block (storage-float-rounded values,
/// zero padding — the decode_block output domain) into block @p kb of
/// @p array, overwriting biggest[kb] and the block's bin-index row.  Runs the
/// same transform + rebin kernels as Compressor::compress, so the result is
/// bit-identical to compressing an array that holds these decoded values.
/// @p coeffs and @p scratch must each hold block_shape.volume() doubles;
/// @p block is left untouched.
void encode_block(CompressedArray& array, const BlockTransform& transform,
                  index_t kb, const double* block, double* coeffs,
                  double* scratch);

}  // namespace pyblaz::blockio
