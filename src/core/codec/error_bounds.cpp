#include "core/codec/error_bounds.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pyblaz {

double bin_width(double biggest, IndexType index_type) {
  const double r = static_cast<double>(radius(index_type));
  return 2.0 * biggest / (2.0 * r + 1.0);
}

double max_binning_coefficient_error(double biggest, IndexType index_type) {
  // The decodable values N * k / r (k in [-r, r]) are spaced N / r apart, so
  // rounding moves a coefficient by at most N / (2r).  This is marginally
  // looser than the paper's N / (2r + 1), which counts 2r + 1 bins over
  // [-N, N]; the ratio is (2r + 1) / 2r, under 0.4% even for int8.
  const double r = static_cast<double>(arithmetic_radius(index_type));
  return biggest / (2.0 * r);
}

double loose_linf_bound(double biggest, IndexType index_type,
                        const Shape& block_shape) {
  return static_cast<double>(block_shape.volume()) *
         max_binning_coefficient_error(biggest, index_type);
}

std::vector<double> loose_linf_bounds(const CompressedArray& array) {
  std::vector<double> bounds(array.biggest.size());
  for (std::size_t k = 0; k < array.biggest.size(); ++k) {
    bounds[k] =
        loose_linf_bound(array.biggest[k], array.index_type, array.block_shape);
  }
  return bounds;
}

double CompressionDiagnostics::total_l2() const {
  double squares = 0.0;
  for (double v : binning_l2) squares += v * v;
  for (double v : pruning_l2) squares += v * v;
  return std::sqrt(squares);
}

double CompressionDiagnostics::block_l2(index_t block) const {
  const auto k = static_cast<std::size_t>(block);
  assert(k < binning_l2.size());
  return std::sqrt(binning_l2[k] * binning_l2[k] + pruning_l2[k] * pruning_l2[k]);
}

double CompressionDiagnostics::loose_linf(const CompressedArray& array) const {
  double worst = 0.0;
  for (std::size_t k = 0; k < array.biggest.size(); ++k) {
    const double binning =
        loose_linf_bound(array.biggest[k], array.index_type, array.block_shape);
    const double pruning = k < pruning_l1.size() ? pruning_l1[k] : 0.0;
    worst = std::max(worst, binning + pruning);
  }
  return worst;
}

}  // namespace pyblaz
