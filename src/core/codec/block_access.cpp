#include "core/codec/block_access.hpp"

#include <algorithm>

namespace pyblaz::blockio {

void decompose(const Shape& shape, index_t offset, index_t* coords) {
  for (int axis = shape.ndim() - 1; axis >= 0; --axis) {
    coords[axis] = offset % shape[axis];
    offset /= shape[axis];
  }
}

bool advance_row(const Shape& shape, index_t* coords) {
  for (int axis = shape.ndim() - 2; axis >= 0; --axis) {
    if (++coords[axis] < shape[axis]) return true;
    coords[axis] = 0;
  }
  return false;
}

BlockCursor::BlockCursor(const Shape& array_shape, const Shape& block,
                         const Shape& block_grid)
    : shape(array_shape),
      block_shape(block),
      grid(block_grid),
      strides(array_shape.strides()),
      d(array_shape.ndim()),
      block_last(block[array_shape.ndim() - 1]),
      rows_per_block(block.volume() / block[array_shape.ndim() - 1]),
      block_coords(static_cast<std::size_t>(array_shape.ndim())),
      row_coords(static_cast<std::size_t>(array_shape.ndim()), 0) {}

void BlockCursor::gather(const double* array, index_t kb, double* dst,
                         FloatType float_type) {
  decompose(grid, kb, block_coords.data());
  const index_t last_start =
      block_coords[static_cast<std::size_t>(d - 1)] * block_last;
  const index_t copy_count =
      std::clamp<index_t>(shape[d - 1] - last_start, 0, block_last);
  std::fill(row_coords.begin(), row_coords.end(), 0);
  for (index_t row = 0; row < rows_per_block; ++row, dst += block_last) {
    bool inside = copy_count > 0;
    index_t src = last_start;
    for (int axis = 0; inside && axis < d - 1; ++axis) {
      const index_t coord =
          block_coords[static_cast<std::size_t>(axis)] * block_shape[axis] +
          row_coords[static_cast<std::size_t>(axis)];
      if (coord >= shape[axis]) {
        inside = false;
      } else {
        src += coord * strides[static_cast<std::size_t>(axis)];
      }
    }
    if (inside) {
      std::memcpy(dst, array + src,
                  static_cast<std::size_t>(copy_count) * sizeof(double));
      kernels::quantize_block(dst, copy_count, float_type);
      std::fill(dst + copy_count, dst + block_last, 0.0);
    } else {
      std::fill(dst, dst + block_last, 0.0);
    }
    if (d > 1) advance_row(block_shape, row_coords.data());
  }
}

void BlockCursor::scatter(double* array, index_t kb, const double* src,
                          FloatType float_type) {
  decompose(grid, kb, block_coords.data());
  const index_t last_start =
      block_coords[static_cast<std::size_t>(d - 1)] * block_last;
  const index_t copy_count =
      std::clamp<index_t>(shape[d - 1] - last_start, 0, block_last);
  std::fill(row_coords.begin(), row_coords.end(), 0);
  for (index_t row = 0; row < rows_per_block; ++row, src += block_last) {
    bool inside = copy_count > 0;
    index_t dst = last_start;
    for (int axis = 0; inside && axis < d - 1; ++axis) {
      const index_t coord =
          block_coords[static_cast<std::size_t>(axis)] * block_shape[axis] +
          row_coords[static_cast<std::size_t>(axis)];
      if (coord >= shape[axis]) {
        inside = false;
      } else {
        dst += coord * strides[static_cast<std::size_t>(axis)];
      }
    }
    if (inside) {
      std::memcpy(array + dst, src,
                  static_cast<std::size_t>(copy_count) * sizeof(double));
      kernels::quantize_block(array + dst, copy_count, float_type);
    }
    if (d > 1) advance_row(block_shape, row_coords.data());
  }
}

void BlockCursor::quantize_crop(double* block, index_t kb,
                                FloatType float_type) {
  decompose(grid, kb, block_coords.data());
  const index_t last_start =
      block_coords[static_cast<std::size_t>(d - 1)] * block_last;
  const index_t copy_count =
      std::clamp<index_t>(shape[d - 1] - last_start, 0, block_last);
  std::fill(row_coords.begin(), row_coords.end(), 0);
  for (index_t row = 0; row < rows_per_block; ++row, block += block_last) {
    bool inside = copy_count > 0;
    for (int axis = 0; inside && axis < d - 1; ++axis) {
      const index_t coord =
          block_coords[static_cast<std::size_t>(axis)] * block_shape[axis] +
          row_coords[static_cast<std::size_t>(axis)];
      if (coord >= shape[axis]) inside = false;
    }
    if (inside) {
      kernels::quantize_block(block, copy_count, float_type);
      std::fill(block + copy_count, block + block_last, 0.0);
    } else {
      std::fill(block, block + block_last, 0.0);
    }
    if (d > 1) advance_row(block_shape, row_coords.data());
  }
}

void BlockCursor::copy_to_roi(const double* block, index_t kb,
                              const index_t* lo, const index_t* hi,
                              double* out,
                              const std::vector<index_t>& out_strides) {
  decompose(grid, kb, block_coords.data());
  const index_t last_start =
      block_coords[static_cast<std::size_t>(d - 1)] * block_last;
  // Intersect the block's last-axis span with both the array bound and the
  // region's last-axis window.
  const index_t seg_begin = std::max(last_start, lo[d - 1]);
  const index_t seg_end =
      std::min({last_start + block_last, shape[d - 1], hi[d - 1]});
  if (seg_begin >= seg_end) return;
  const index_t seg_len = seg_end - seg_begin;
  std::fill(row_coords.begin(), row_coords.end(), 0);
  for (index_t row = 0; row < rows_per_block; ++row, block += block_last) {
    bool inside = true;
    index_t dst = seg_begin - lo[d - 1];
    for (int axis = 0; inside && axis < d - 1; ++axis) {
      const index_t coord =
          block_coords[static_cast<std::size_t>(axis)] * block_shape[axis] +
          row_coords[static_cast<std::size_t>(axis)];
      if (coord < lo[axis] || coord >= hi[axis] || coord >= shape[axis]) {
        inside = false;
      } else {
        dst += (coord - lo[axis]) * out_strides[static_cast<std::size_t>(axis)];
      }
    }
    if (inside) {
      std::memcpy(out + dst, block + (seg_begin - last_start),
                  static_cast<std::size_t>(seg_len) * sizeof(double));
    }
    if (d > 1) advance_row(block_shape, row_coords.data());
  }
}

void decode_block(const CompressedArray& array, const BlockTransform& transform,
                  BlockCursor& cursor, index_t kb, double* out,
                  double* scratch) {
  const kernels::KernelTable& table = kernels::active();
  const index_t block_volume = array.block_shape.volume();
  const index_t kept = array.kept_per_block();
  const double r = static_cast<double>(array.radius());
  const double scale = array.biggest[static_cast<std::size_t>(kb)] / r;
  array.indices.visit([&](const auto* bins_data) {
    const auto* bins = bins_data + kb * kept;
    using BinT = std::remove_cvref_t<decltype(bins[0])>;
    decode_unbin_itransform<BinT>(table, transform, bins, block_volume, kept,
                                  array.mask.kept_offsets().data(), scale, out,
                                  scratch);
  });
  cursor.quantize_crop(out, kb, array.float_type);
}

void encode_block(CompressedArray& array, const BlockTransform& transform,
                  index_t kb, const double* block, double* coeffs,
                  double* scratch) {
  const kernels::KernelTable& table = kernels::active();
  const index_t block_volume = array.block_shape.volume();
  const index_t kept = array.kept_per_block();
  const double r = static_cast<double>(array.radius());
  std::memcpy(coeffs, block,
              static_cast<std::size_t>(block_volume) * sizeof(double));
  array.indices.visit_mutable([&](auto* bins_data) {
    auto* bins = bins_data + kb * kept;
    using BinT = std::remove_reference_t<decltype(bins[0])>;
    array.biggest[static_cast<std::size_t>(kb)] = encode_transform_rebin<BinT>(
        table, transform, coeffs, scratch, block_volume, kept,
        array.mask.kept_offsets().data(), r, array.float_type, bins);
  });
}

}  // namespace pyblaz::blockio
