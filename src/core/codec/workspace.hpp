#pragma once

#include <cstddef>

namespace pyblaz::internal {

/// Reusable per-thread coefficient scratch for the blockwise hot paths.
///
/// Every compressed-space operation that rebins needs a row of
/// kept_per_block() doubles per block.  Allocating a std::vector inside each
/// parallel chunk (the pre-fusion pattern) costs an allocator round-trip per
/// chunk on the hottest path in the library; this workspace instead hands out
/// a thread-local buffer that grows monotonically and is reused across
/// blocks, chunks, and operations.  Pool workers are long-lived, so after
/// warm-up the hot path performs no allocation at all.
///
/// @p lane selects one of a small number of independent buffers, for call
/// sites that need two live scratch rows at once (e.g. a block gather plus a
/// transform scratch).  The returned pointer stays valid until the next
/// workspace(count, same lane) call on the same thread *within the same
/// execution frame* with a larger count — callers must not hold it across
/// calls into other pyblaz layers that may use the same lane.  The transform
/// kernels (core/kernels, core/transform) deliberately take caller-provided
/// scratch and must stay workspace-free, so rows MAY be held across
/// BlockTransform::forward/inverse calls.
double* coefficient_workspace(std::size_t count, int lane = 0);

/// Number of independent lanes.
inline constexpr int kWorkspaceLanes = 4;

/// RAII frame scope making the workspace safe under the concurrent-region
/// scheduler (core/parallel): each parallel execution scope on a thread —
/// a drain of pool chunks, or a nested region running inline inside a chunk
/// body — pushes a fresh frame, and coefficient_workspace() hands out rows
/// from the current frame only.  A chunk body that holds a lane row and then
/// enters a nested parallel region (whose chunks use the same lane) therefore
/// keeps its row intact: the nested chunks write into the deeper frame.
/// Frames are per (thread, depth) and persist after the scope pops, so the
/// no-allocation-after-warm-up property is preserved — re-entering a depth
/// reuses its grown buffers.
///
/// The parallel runtime owns all scope push/pops; operation code never
/// instantiates this directly.
class WorkspaceScope {
 public:
  WorkspaceScope();
  ~WorkspaceScope();
  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;
};

/// Current frame depth on this thread (0 outside any parallel execution
/// scope).  Exposed for the scheduler tests.
int workspace_frame_depth();

}  // namespace pyblaz::internal
