#pragma once

#include <cstddef>

namespace pyblaz::internal {

/// Reusable per-thread coefficient scratch for the blockwise hot paths.
///
/// Every compressed-space operation that rebins needs a row of
/// kept_per_block() doubles per block.  Allocating a std::vector inside each
/// parallel chunk (the pre-fusion pattern) costs an allocator round-trip per
/// chunk on the hottest path in the library; this workspace instead hands out
/// a thread-local buffer that grows monotonically and is reused across
/// blocks, chunks, and operations.  Pool workers are long-lived, so after
/// warm-up the hot path performs no allocation at all.
///
/// @p lane selects one of a small number of independent buffers, for call
/// sites that need two live scratch rows at once (e.g. a block gather plus a
/// transform scratch).  The returned pointer stays valid until the next
/// workspace(count, same lane) call on the same thread with a larger count —
/// callers must not hold it across calls into other pyblaz layers that may
/// use the same lane.  The transform kernels (core/kernels, core/transform)
/// deliberately take caller-provided scratch and must stay workspace-free,
/// so rows MAY be held across BlockTransform::forward/inverse calls.
double* coefficient_workspace(std::size_t count, int lane = 0);

/// Number of independent lanes.
inline constexpr int kWorkspaceLanes = 4;

}  // namespace pyblaz::internal
