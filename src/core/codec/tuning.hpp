#pragma once

#include <optional>
#include <vector>

#include "core/codec/settings.hpp"
#include "core/ndarray/ndarray.hpp"

namespace pyblaz {

/// Automatic compression-settings search (the paper's §VI future-work item:
/// "PyBlaz can be made to automatically change its compression settings in
/// order to enforce some L∞ error bound ... instead of relying on the user").
///
/// tune_for_linf() explores a lattice of candidate settings (block shapes
/// adapted to the sample's dimensionality, index types, pruning fractions),
/// evaluates each candidate's L∞ reconstruction error on the provided sample,
/// and returns the candidate with the best compression ratio whose error
/// respects the target.

/// Options controlling the search.
struct TuningOptions {
  /// Float storage type to use for every candidate.
  FloatType float_type = FloatType::kFloat32;

  /// Transform to use for every candidate.
  TransformKind transform = TransformKind::kDCT;

  /// Judge candidates by the a-priori loose L∞ bound (§IV-D) instead of the
  /// measured reconstruction error.  Guaranteed but very conservative.
  bool use_guaranteed_bound = false;

  /// Pruning fractions to try (fraction of coefficients kept).
  std::vector<double> keep_fractions = {1.0, 0.5, 0.25};

  /// Block side lengths to try (each becomes a hypercubic candidate, plus
  /// flattened variants when the sample's first extent is much smaller than
  /// the rest, mirroring the paper's non-hypercubic recommendation).
  std::vector<index_t> block_sides = {4, 8, 16};
};

/// One evaluated candidate.
struct TuningCandidate {
  CompressorSettings settings;
  double ratio = 0.0;        ///< formula_ratio for the sample's shape.
  double linf_error = 0.0;   ///< Measured (or guaranteed) L∞ error.
  bool feasible = false;     ///< linf_error <= target.
};

/// Search result: the best feasible candidate (nullopt if none met the
/// target) plus every evaluated candidate for inspection.
struct TuningResult {
  std::optional<TuningCandidate> best;
  std::vector<TuningCandidate> evaluated;
};

/// Find the highest-ratio settings whose L∞ reconstruction error on
/// @p sample stays within @p target_linf.  The sample should be
/// representative of the data the settings will be used for; like the
/// compression ratio itself, the chosen settings then apply to any array of
/// the same dimensionality.
TuningResult tune_for_linf(const NDArray<double>& sample, double target_linf,
                           const TuningOptions& options = {});

}  // namespace pyblaz
