#include "core/codec/ratio.hpp"

namespace pyblaz {

double formula_ratio(const CompressorSettings& settings, const Shape& array_shape,
                     int uncompressed_bits) {
  const double u = uncompressed_bits;
  const double f = bits(settings.float_type);
  const double i = bits(settings.index_type);
  const double kept = static_cast<double>(settings.effective_mask().kept_count());
  const double blocks = static_cast<double>(
      Shape::ceil_div(array_shape, settings.block_shape).volume());
  return u * static_cast<double>(array_shape.volume()) / ((f + i * kept) * blocks);
}

double asymptotic_ratio(const CompressorSettings& settings, int uncompressed_bits) {
  const double u = uncompressed_bits;
  const double f = bits(settings.float_type);
  const double i = bits(settings.index_type);
  const double kept = static_cast<double>(settings.effective_mask().kept_count());
  return u * static_cast<double>(settings.block_shape.volume()) / (f + i * kept);
}

std::size_t layout_bits(const CompressorSettings& settings,
                        const Shape& array_shape) {
  const std::size_t d = static_cast<std::size_t>(array_shape.ndim());
  const std::size_t blocks = static_cast<std::size_t>(
      Shape::ceil_div(array_shape, settings.block_shape).volume());
  const std::size_t kept =
      static_cast<std::size_t>(settings.effective_mask().kept_count());
  return 4 + 64 * d + 64 + 64 * d +
         static_cast<std::size_t>(settings.block_shape.volume()) +
         static_cast<std::size_t>(bits(settings.float_type)) * blocks +
         static_cast<std::size_t>(bits(settings.index_type)) * kept * blocks;
}

double exact_ratio(const CompressorSettings& settings, const Shape& array_shape,
                   int uncompressed_bits) {
  const double original =
      static_cast<double>(uncompressed_bits) *
      static_cast<double>(array_shape.volume());
  return original / static_cast<double>(layout_bits(settings, array_shape));
}

}  // namespace pyblaz
