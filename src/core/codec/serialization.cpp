#include "core/codec/serialization.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "core/dtypes/bfloat16.hpp"
#include "core/dtypes/float16.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/telemetry/trace.hpp"
#include "core/util/bitstream.hpp"

namespace pyblaz {

namespace {

constexpr std::uint64_t kEndOfShapeMarker = ~std::uint64_t{0};

/// v2 chunked-container magic.  A v1 stream can never start with it: v1's
/// first byte packs float type (2 bits), index type (2), transform (1), and
/// three reserved zero bits, so it is always < 32, while 'P' = 0x50.
constexpr std::uint8_t kChunkedMagic[4] = {'P', 'B', 'Z', '2'};

/// Target payload size per chunk (bits).  Chunk boundaries are a pure
/// function of the array's geometry — never of the thread count — so the
/// container bytes are identical no matter how many threads encoded it.
constexpr std::size_t kTargetChunkBits = std::size_t{1} << 19;  // 64 KiB.

std::uint64_t encode_stored_float(double value, FloatType type) {
  switch (type) {
    case FloatType::kBFloat16:
      return bfloat16::from_float(static_cast<float>(value));
    case FloatType::kFloat16:
      return float16::from_float(static_cast<float>(value));
    case FloatType::kFloat32:
      return std::bit_cast<std::uint32_t>(static_cast<float>(value));
    case FloatType::kFloat64:
      return std::bit_cast<std::uint64_t>(value);
  }
  return 0;
}

double decode_stored_float(std::uint64_t bits_value, FloatType type) {
  switch (type) {
    case FloatType::kBFloat16:
      return static_cast<double>(
          bfloat16::to_float(static_cast<std::uint16_t>(bits_value)));
    case FloatType::kFloat16:
      return static_cast<double>(
          float16::to_float(static_cast<std::uint16_t>(bits_value)));
    case FloatType::kFloat32:
      return static_cast<double>(
          std::bit_cast<float>(static_cast<std::uint32_t>(bits_value)));
    case FloatType::kFloat64:
      return std::bit_cast<double>(bits_value);
  }
  return 0.0;
}

/// Sign-extend the low @p nbits bits of @p raw.
std::int64_t sign_extend(std::uint64_t raw, int nbits) {
  if (nbits == 64) return static_cast<std::int64_t>(raw);
  const std::uint64_t sign_bit = std::uint64_t{1} << (nbits - 1);
  if (raw & sign_bit) raw |= ~((std::uint64_t{1} << nbits) - 1);
  return static_cast<std::int64_t>(raw);
}

/// Shared metadata header (both formats): type nibble, transform, shape,
/// end-of-shape marker, block shape, pruning mask.
void write_header(BitWriter& writer, const CompressedArray& array) {
  writer.put_bits(static_cast<std::uint64_t>(array.float_type), 2);
  writer.put_bits(static_cast<std::uint64_t>(array.index_type), 2);
  writer.put_bits(static_cast<std::uint64_t>(array.transform), 1);
  writer.put_bits(0, 3);  // Reserved.

  for (index_t extent : array.shape.dims())
    writer.put_bits(static_cast<std::uint64_t>(extent), 64);
  writer.put_bits(kEndOfShapeMarker, 64);
  for (index_t extent : array.block_shape.dims())
    writer.put_bits(static_cast<std::uint64_t>(extent), 64);

  for (std::uint8_t flag : array.mask.flags()) writer.put_bit(flag);
}

/// Parse and validate the shared header into @p array (everything up to and
/// including the mask).  Throws std::invalid_argument on malformed input;
/// the sanity limits reject corrupted size fields before they can drive a
/// huge allocation (see tests/test_fuzz.cpp).
void parse_header(BitReader& reader, CompressedArray& array) {
  array.float_type = static_cast<FloatType>(reader.get_bits(2));
  array.index_type = static_cast<IndexType>(reader.get_bits(2));
  array.transform = static_cast<TransformKind>(reader.get_bits(1));
  reader.get_bits(3);  // Reserved.

  constexpr index_t kMaxExtent = index_t{1} << 40;
  constexpr index_t kMaxBlockExtent = index_t{1} << 20;
  constexpr index_t kMaxBlockVolume = index_t{1} << 26;

  std::vector<index_t> s_dims;
  for (;;) {
    const std::uint64_t word = reader.get_bits(64);
    if (word == kEndOfShapeMarker) break;
    if (s_dims.size() > 16 || reader.position() > reader.size_bits())
      throw std::invalid_argument("deserialize: missing end-of-shape marker");
    const auto extent = static_cast<index_t>(word);
    if (extent <= 0 || extent > kMaxExtent)
      throw std::invalid_argument("deserialize: implausible shape extent");
    s_dims.push_back(extent);
  }
  if (s_dims.empty()) throw std::invalid_argument("deserialize: empty shape");
  array.shape = Shape(std::move(s_dims));

  std::vector<index_t> i_dims(static_cast<std::size_t>(array.shape.ndim()));
  for (auto& extent : i_dims) {
    extent = static_cast<index_t>(reader.get_bits(64));
    if (extent <= 0 || extent > kMaxBlockExtent)
      throw std::invalid_argument("deserialize: implausible block extent");
  }
  array.block_shape = Shape(std::move(i_dims));
  if (!array.block_shape.all_powers_of_two() ||
      array.block_shape.volume() > kMaxBlockVolume)
    throw std::invalid_argument("deserialize: corrupt block shape");

  // The remaining stream must be able to hold the mask and at least the N
  // payload the header promises.
  {
    const std::size_t remaining = reader.size_bits() - reader.position();
    const std::size_t mask_bits =
        static_cast<std::size_t>(array.block_shape.volume());
    const std::size_t num_blocks = static_cast<std::size_t>(array.num_blocks());
    const std::size_t n_bits =
        static_cast<std::size_t>(bits(array.float_type)) * num_blocks;
    if (mask_bits > remaining || n_bits > remaining - mask_bits)
      throw std::invalid_argument("deserialize: truncated stream");
  }

  std::vector<std::uint8_t> flags(
      static_cast<std::size_t>(array.block_shape.volume()));
  for (auto& flag : flags) flag = static_cast<std::uint8_t>(reader.get_bit());
  array.mask = PruningMask::from_flags(array.block_shape, std::move(flags));
  if (array.mask.kept_count() == 0)
    throw std::invalid_argument("deserialize: mask keeps nothing");
}

/// Fixed geometry of the v2 chunked payload: every block stores exactly
/// f + kept * i bits, so the per-chunk byte offsets in the header are fully
/// determined by (num_blocks, blocks_per_chunk).  The offsets are still
/// written out — the container stays self-describing if a later version
/// makes chunk payloads variable-rate.
struct ChunkLayout {
  index_t num_blocks = 0;
  index_t blocks_per_chunk = 0;
  index_t num_chunks = 0;
  std::size_t bits_per_block = 0;

  static ChunkLayout plan(const CompressedArray& array) {
    ChunkLayout layout;
    layout.num_blocks = array.num_blocks();
    layout.bits_per_block =
        static_cast<std::size_t>(bits(array.float_type)) +
        static_cast<std::size_t>(bits(array.index_type)) *
            static_cast<std::size_t>(array.kept_per_block());
    layout.blocks_per_chunk = std::clamp<index_t>(
        static_cast<index_t>(kTargetChunkBits / layout.bits_per_block), 1,
        layout.num_blocks);
    layout.num_chunks = (layout.num_blocks + layout.blocks_per_chunk - 1) /
                        layout.blocks_per_chunk;
    return layout;
  }

  index_t chunk_begin(index_t chunk) const {
    return chunk * blocks_per_chunk;
  }
  index_t chunk_end(index_t chunk) const {
    return std::min(num_blocks, (chunk + 1) * blocks_per_chunk);
  }
  std::size_t chunk_bytes(index_t chunk) const {
    const auto blocks =
        static_cast<std::size_t>(chunk_end(chunk) - chunk_begin(chunk));
    return (blocks * bits_per_block + 7) / 8;
  }
};

/// Encode blocks [begin, end) of N and F as one self-contained chunk stream.
template <typename BinT>
void encode_chunk(const CompressedArray& array, const BinT* bins_data,
                  index_t begin, index_t end, BitWriter& writer) {
  const int fbits = bits(array.float_type);
  const int ibits = bits(array.index_type);
  const index_t kept = array.kept_per_block();
  for (index_t kb = begin; kb < end; ++kb)
    writer.put_bits(
        encode_stored_float(array.biggest[static_cast<std::size_t>(kb)],
                            array.float_type),
        fbits);
  for (index_t kb = begin; kb < end; ++kb) {
    const BinT* bins = bins_data + kb * kept;
    for (index_t slot = 0; slot < kept; ++slot)
      writer.put_bits(static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(bins[slot])),
                      ibits);
  }
  writer.align_to_byte();
}

/// Decode one chunk stream back into blocks [begin, end) of N and F.
template <typename BinT>
void decode_chunk(CompressedArray& array, BinT* bins_data, index_t begin,
                  index_t end, BitReader& reader) {
  const int fbits = bits(array.float_type);
  const int ibits = bits(array.index_type);
  const index_t kept = array.kept_per_block();
  for (index_t kb = begin; kb < end; ++kb)
    array.biggest[static_cast<std::size_t>(kb)] =
        decode_stored_float(reader.get_bits(fbits), array.float_type);
  for (index_t kb = begin; kb < end; ++kb) {
    BinT* bins = bins_data + kb * kept;
    for (index_t slot = 0; slot < kept; ++slot)
      bins[slot] =
          static_cast<BinT>(sign_extend(reader.get_bits(ibits), ibits));
  }
}

CompressedArray deserialize_v1(const std::vector<std::uint8_t>& bytes);
CompressedArray deserialize_v2(const std::vector<std::uint8_t>& bytes);

}  // namespace

std::vector<std::uint8_t> serialize_v1(const CompressedArray& array) {
  BitWriter writer;
  write_header(writer, array);

  const int fbits = bits(array.float_type);
  for (double n : array.biggest)
    writer.put_bits(encode_stored_float(n, array.float_type), fbits);

  const int ibits = bits(array.index_type);
  for (std::size_t k = 0; k < array.indices.size(); ++k)
    writer.put_bits(static_cast<std::uint64_t>(array.indices.get(k)), ibits);

  writer.align_to_byte();
  return std::move(writer).take_bytes();
}

std::vector<std::uint8_t> serialize(const CompressedArray& array) {
  static telemetry::Counter& calls =
      telemetry::counter("serialize.v2.encode_calls");
  static telemetry::Counter& encoded_bytes =
      telemetry::counter("serialize.v2.encode_bytes");
  calls.increment();
  telemetry::TraceSpan span("serialize.v2.encode");

  const ChunkLayout layout = ChunkLayout::plan(array);

  // Header: magic, shared metadata, chunk table.  The per-chunk byte offsets
  // (relative to the payload start) let the decoder hand every chunk to a
  // different thread without scanning the stream.
  BitWriter writer;
  for (std::uint8_t byte : kChunkedMagic) writer.put_bits(byte, 8);
  write_header(writer, array);
  writer.align_to_byte();
  writer.put_bits(static_cast<std::uint64_t>(layout.blocks_per_chunk), 64);
  writer.put_bits(static_cast<std::uint64_t>(layout.num_chunks), 32);
  std::vector<std::size_t> offsets(
      static_cast<std::size_t>(layout.num_chunks) + 1, 0);
  for (index_t chunk = 0; chunk < layout.num_chunks; ++chunk)
    offsets[static_cast<std::size_t>(chunk) + 1] =
        offsets[static_cast<std::size_t>(chunk)] + layout.chunk_bytes(chunk);
  for (index_t chunk = 0; chunk < layout.num_chunks; ++chunk)
    writer.put_bits(offsets[static_cast<std::size_t>(chunk)], 64);

  std::vector<std::uint8_t> out = std::move(writer).take_bytes();
  const std::size_t payload_base = out.size();
  out.resize(payload_base + offsets.back());

  // Chunks encode concurrently, each into bytes fully determined by its own
  // blocks, so the assembled container is byte-identical at any thread count.
  array.indices.visit([&](const auto* bins_data) {
    parallel::parallel_for(0, layout.num_chunks, 1, [&](index_t chunk_begin,
                                                        index_t chunk_end) {
      for (index_t chunk = chunk_begin; chunk < chunk_end; ++chunk) {
        BitWriter chunk_writer;
        encode_chunk(array, bins_data, layout.chunk_begin(chunk),
                     layout.chunk_end(chunk), chunk_writer);
        const std::vector<std::uint8_t>& chunk_bytes = chunk_writer.bytes();
        std::memcpy(out.data() + payload_base +
                        offsets[static_cast<std::size_t>(chunk)],
                    chunk_bytes.data(), chunk_bytes.size());
      }
    });
  });
  encoded_bytes.add(out.size());
  return out;
}

namespace {

CompressedArray deserialize_v1(const std::vector<std::uint8_t>& bytes) {
  BitReader reader(bytes);
  CompressedArray array;
  parse_header(reader, array);

  const index_t num_blocks = array.num_blocks();
  const int fbits = bits(array.float_type);
  const int ibits = bits(array.index_type);
  {
    const std::size_t remaining = reader.size_bits() - reader.position();
    const std::size_t needed =
        static_cast<std::size_t>(fbits) * static_cast<std::size_t>(num_blocks) +
        static_cast<std::size_t>(ibits) * static_cast<std::size_t>(num_blocks) *
            static_cast<std::size_t>(array.kept_per_block());
    if (needed > remaining)
      throw std::invalid_argument("deserialize: truncated stream");
  }

  array.biggest.resize(static_cast<std::size_t>(num_blocks));
  for (auto& n : array.biggest)
    n = decode_stored_float(reader.get_bits(fbits), array.float_type);

  array.indices = BinIndices(
      array.index_type,
      static_cast<std::size_t>(num_blocks * array.kept_per_block()));
  for (std::size_t k = 0; k < array.indices.size(); ++k)
    array.indices.set(k, sign_extend(reader.get_bits(ibits), ibits));

  if (reader.position() > reader.size_bits())
    throw std::invalid_argument("deserialize: truncated stream");
  return array;
}

CompressedArray deserialize_v2(const std::vector<std::uint8_t>& bytes) {
  static telemetry::Counter& calls =
      telemetry::counter("serialize.v2.decode_calls");
  static telemetry::Counter& decoded_bytes =
      telemetry::counter("serialize.v2.decode_bytes");
  calls.increment();
  decoded_bytes.add(bytes.size());
  telemetry::TraceSpan span("serialize.v2.decode");

  BitReader reader(bytes);
  reader.seek(32);  // Past the magic.
  CompressedArray array;
  parse_header(reader, array);
  reader.align_to_byte();

  // Seed num_blocks/bits_per_block from the parsed header, then overwrite
  // the chunk geometry with what the stream declares: any self-consistent
  // chunking decodes, not just the one today's writer would plan.
  ChunkLayout layout = ChunkLayout::plan(array);
  layout.blocks_per_chunk = static_cast<index_t>(reader.get_bits(64));
  layout.num_chunks = static_cast<index_t>(reader.get_bits(32));
  if (layout.blocks_per_chunk < 1 ||
      layout.blocks_per_chunk > layout.num_blocks ||
      layout.num_chunks != (layout.num_blocks + layout.blocks_per_chunk - 1) /
                               layout.blocks_per_chunk)
    throw std::invalid_argument("deserialize: corrupt chunk table");

  // The payload is fixed-rate, so every offset is predictable; reject a
  // table that disagrees rather than trusting attacker-controlled offsets.
  std::vector<std::size_t> offsets(
      static_cast<std::size_t>(layout.num_chunks) + 1, 0);
  for (index_t chunk = 0; chunk < layout.num_chunks; ++chunk)
    offsets[static_cast<std::size_t>(chunk) + 1] =
        offsets[static_cast<std::size_t>(chunk)] + layout.chunk_bytes(chunk);
  for (index_t chunk = 0; chunk < layout.num_chunks; ++chunk) {
    if (reader.position() + 64 > reader.size_bits())
      throw std::invalid_argument("deserialize: truncated stream");
    if (reader.get_bits(64) != offsets[static_cast<std::size_t>(chunk)])
      throw std::invalid_argument("deserialize: corrupt chunk table");
  }

  const std::size_t payload_base = reader.position() / 8;
  if (payload_base + offsets.back() > bytes.size())
    throw std::invalid_argument("deserialize: truncated stream");

  array.biggest.resize(static_cast<std::size_t>(layout.num_blocks));
  array.indices = BinIndices(
      array.index_type, static_cast<std::size_t>(layout.num_blocks *
                                                 array.kept_per_block()));
  array.indices.visit_mutable([&](auto* bins_data) {
    parallel::parallel_for(0, layout.num_chunks, 1, [&](index_t chunk_begin,
                                                        index_t chunk_end) {
      for (index_t chunk = chunk_begin; chunk < chunk_end; ++chunk) {
        BitReader chunk_reader(
            bytes.data() + payload_base +
                offsets[static_cast<std::size_t>(chunk)],
            layout.chunk_bytes(chunk));
        decode_chunk(array, bins_data, layout.chunk_begin(chunk),
                     layout.chunk_end(chunk), chunk_reader);
      }
    });
  });
  return array;
}

}  // namespace

bool is_chunked_stream(const std::vector<std::uint8_t>& bytes) {
  return bytes.size() >= 4 && bytes[0] == kChunkedMagic[0] &&
         bytes[1] == kChunkedMagic[1] && bytes[2] == kChunkedMagic[2] &&
         bytes[3] == kChunkedMagic[3];
}

CompressedArray deserialize(const std::vector<std::uint8_t>& bytes) {
  return is_chunked_stream(bytes) ? deserialize_v2(bytes)
                                  : deserialize_v1(bytes);
}

std::size_t paper_layout_bits(const CompressedArray& array) {
  const std::size_t d = static_cast<std::size_t>(array.shape.ndim());
  const std::size_t num_blocks = static_cast<std::size_t>(array.num_blocks());
  const std::size_t kept = static_cast<std::size_t>(array.kept_per_block());
  return 4                                                 // Type nibble.
         + 64 * d                                          // s.
         + 64                                              // End marker.
         + 64 * d                                          // i.
         + static_cast<std::size_t>(array.block_shape.volume())  // P.
         + static_cast<std::size_t>(bits(array.float_type)) * num_blocks  // N.
         + static_cast<std::size_t>(bits(array.index_type)) * kept * num_blocks;  // F.
}

}  // namespace pyblaz
