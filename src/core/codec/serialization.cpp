#include "core/codec/serialization.hpp"

#include <bit>
#include <stdexcept>

#include "core/dtypes/bfloat16.hpp"
#include "core/dtypes/float16.hpp"
#include "core/util/bitstream.hpp"

namespace pyblaz {

namespace {

constexpr std::uint64_t kEndOfShapeMarker = ~std::uint64_t{0};

std::uint64_t encode_stored_float(double value, FloatType type) {
  switch (type) {
    case FloatType::kBFloat16:
      return bfloat16::from_float(static_cast<float>(value));
    case FloatType::kFloat16:
      return float16::from_float(static_cast<float>(value));
    case FloatType::kFloat32:
      return std::bit_cast<std::uint32_t>(static_cast<float>(value));
    case FloatType::kFloat64:
      return std::bit_cast<std::uint64_t>(value);
  }
  return 0;
}

double decode_stored_float(std::uint64_t bits_value, FloatType type) {
  switch (type) {
    case FloatType::kBFloat16:
      return static_cast<double>(
          bfloat16::to_float(static_cast<std::uint16_t>(bits_value)));
    case FloatType::kFloat16:
      return static_cast<double>(
          float16::to_float(static_cast<std::uint16_t>(bits_value)));
    case FloatType::kFloat32:
      return static_cast<double>(
          std::bit_cast<float>(static_cast<std::uint32_t>(bits_value)));
    case FloatType::kFloat64:
      return std::bit_cast<double>(bits_value);
  }
  return 0.0;
}

/// Sign-extend the low @p nbits bits of @p raw.
std::int64_t sign_extend(std::uint64_t raw, int nbits) {
  if (nbits == 64) return static_cast<std::int64_t>(raw);
  const std::uint64_t sign_bit = std::uint64_t{1} << (nbits - 1);
  if (raw & sign_bit) raw |= ~((std::uint64_t{1} << nbits) - 1);
  return static_cast<std::int64_t>(raw);
}

}  // namespace

std::vector<std::uint8_t> serialize(const CompressedArray& array) {
  BitWriter writer;
  writer.put_bits(static_cast<std::uint64_t>(array.float_type), 2);
  writer.put_bits(static_cast<std::uint64_t>(array.index_type), 2);
  writer.put_bits(static_cast<std::uint64_t>(array.transform), 1);
  writer.put_bits(0, 3);  // Reserved.

  for (index_t extent : array.shape.dims())
    writer.put_bits(static_cast<std::uint64_t>(extent), 64);
  writer.put_bits(kEndOfShapeMarker, 64);
  for (index_t extent : array.block_shape.dims())
    writer.put_bits(static_cast<std::uint64_t>(extent), 64);

  for (std::uint8_t flag : array.mask.flags()) writer.put_bit(flag);

  const int fbits = bits(array.float_type);
  for (double n : array.biggest)
    writer.put_bits(encode_stored_float(n, array.float_type), fbits);

  const int ibits = bits(array.index_type);
  for (std::size_t k = 0; k < array.indices.size(); ++k)
    writer.put_bits(static_cast<std::uint64_t>(array.indices.get(k)), ibits);

  writer.align_to_byte();
  return std::move(writer).take_bytes();
}

CompressedArray deserialize(const std::vector<std::uint8_t>& bytes) {
  BitReader reader(bytes);
  CompressedArray array;
  array.float_type = static_cast<FloatType>(reader.get_bits(2));
  array.index_type = static_cast<IndexType>(reader.get_bits(2));
  array.transform = static_cast<TransformKind>(reader.get_bits(1));
  reader.get_bits(3);  // Reserved.

  // Structural sanity limits: a corrupted size field must be rejected before
  // it drives a huge allocation (see tests/test_fuzz.cpp).
  constexpr index_t kMaxExtent = index_t{1} << 40;
  constexpr index_t kMaxBlockExtent = index_t{1} << 20;
  constexpr index_t kMaxBlockVolume = index_t{1} << 26;

  std::vector<index_t> s_dims;
  for (;;) {
    const std::uint64_t word = reader.get_bits(64);
    if (word == kEndOfShapeMarker) break;
    if (s_dims.size() > 16 || reader.position() > reader.size_bits())
      throw std::invalid_argument("deserialize: missing end-of-shape marker");
    const auto extent = static_cast<index_t>(word);
    if (extent <= 0 || extent > kMaxExtent)
      throw std::invalid_argument("deserialize: implausible shape extent");
    s_dims.push_back(extent);
  }
  if (s_dims.empty()) throw std::invalid_argument("deserialize: empty shape");
  array.shape = Shape(std::move(s_dims));

  std::vector<index_t> i_dims(static_cast<std::size_t>(array.shape.ndim()));
  for (auto& extent : i_dims) {
    extent = static_cast<index_t>(reader.get_bits(64));
    if (extent <= 0 || extent > kMaxBlockExtent)
      throw std::invalid_argument("deserialize: implausible block extent");
  }
  array.block_shape = Shape(std::move(i_dims));
  if (!array.block_shape.all_powers_of_two() ||
      array.block_shape.volume() > kMaxBlockVolume)
    throw std::invalid_argument("deserialize: corrupt block shape");

  // The remaining stream must be able to hold the mask, N, and F payloads
  // the header promises.
  {
    const std::size_t remaining = reader.size_bits() - reader.position();
    const std::size_t mask_bits =
        static_cast<std::size_t>(array.block_shape.volume());
    const std::size_t num_blocks = static_cast<std::size_t>(array.num_blocks());
    const std::size_t n_bits =
        static_cast<std::size_t>(bits(array.float_type)) * num_blocks;
    if (mask_bits > remaining || n_bits > remaining - mask_bits)
      throw std::invalid_argument("deserialize: truncated stream");
  }

  std::vector<std::uint8_t> flags(
      static_cast<std::size_t>(array.block_shape.volume()));
  for (auto& flag : flags) flag = static_cast<std::uint8_t>(reader.get_bit());
  array.mask = PruningMask::from_flags(array.block_shape, std::move(flags));
  if (array.mask.kept_count() == 0)
    throw std::invalid_argument("deserialize: mask keeps nothing");

  const index_t num_blocks = array.num_blocks();
  const int fbits = bits(array.float_type);
  const int ibits = bits(array.index_type);
  {
    const std::size_t remaining = reader.size_bits() - reader.position();
    const std::size_t needed =
        static_cast<std::size_t>(fbits) * static_cast<std::size_t>(num_blocks) +
        static_cast<std::size_t>(ibits) * static_cast<std::size_t>(num_blocks) *
            static_cast<std::size_t>(array.kept_per_block());
    if (needed > remaining)
      throw std::invalid_argument("deserialize: truncated stream");
  }

  array.biggest.resize(static_cast<std::size_t>(num_blocks));
  for (auto& n : array.biggest)
    n = decode_stored_float(reader.get_bits(fbits), array.float_type);

  array.indices = BinIndices(
      array.index_type,
      static_cast<std::size_t>(num_blocks * array.kept_per_block()));
  for (std::size_t k = 0; k < array.indices.size(); ++k)
    array.indices.set(k, sign_extend(reader.get_bits(ibits), ibits));

  if (reader.position() > reader.size_bits())
    throw std::invalid_argument("deserialize: truncated stream");
  return array;
}

std::size_t paper_layout_bits(const CompressedArray& array) {
  const std::size_t d = static_cast<std::size_t>(array.shape.ndim());
  const std::size_t num_blocks = static_cast<std::size_t>(array.num_blocks());
  const std::size_t kept = static_cast<std::size_t>(array.kept_per_block());
  return 4                                                 // Type nibble.
         + 64 * d                                          // s.
         + 64                                              // End marker.
         + 64 * d                                          // i.
         + static_cast<std::size_t>(array.block_shape.volume())  // P.
         + static_cast<std::size_t>(bits(array.float_type)) * num_blocks  // N.
         + static_cast<std::size_t>(bits(array.index_type)) * kept * num_blocks;  // F.
}

}  // namespace pyblaz
