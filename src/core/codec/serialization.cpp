#include "core/codec/serialization.hpp"

#include <bit>
#include <cstring>
#include <new>
#include <stdexcept>

#include "core/dtypes/bfloat16.hpp"
#include "core/dtypes/float16.hpp"
#include "core/error/error.hpp"
#include "core/fault/fault.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/telemetry/trace.hpp"
#include "core/util/bitstream.hpp"
#include "core/util/checksum.hpp"

namespace pyblaz {

namespace {

constexpr std::uint64_t kEndOfShapeMarker = ~std::uint64_t{0};

/// Chunked-container magics.  A v1 stream can never start with either: v1's
/// first byte packs float type (2 bits), index type (2), transform (1), and
/// three reserved zero bits, so it is always < 32, while 'P' = 0x50.
constexpr std::uint8_t kChunkedMagicV2[4] = {'P', 'B', 'Z', '2'};
constexpr std::uint8_t kChunkedMagicV3[4] = {'P', 'B', 'Z', '3'};

/// Target payload size per chunk (bits).  Chunk boundaries are a pure
/// function of the array's geometry — never of the thread count — so the
/// container bytes are identical no matter how many threads encoded it.
constexpr std::size_t kTargetChunkBits = std::size_t{1} << 19;  // 64 KiB.

std::uint64_t encode_stored_float(double value, FloatType type) {
  switch (type) {
    case FloatType::kBFloat16:
      return bfloat16::from_float(static_cast<float>(value));
    case FloatType::kFloat16:
      return float16::from_float(static_cast<float>(value));
    case FloatType::kFloat32:
      return std::bit_cast<std::uint32_t>(static_cast<float>(value));
    case FloatType::kFloat64:
      return std::bit_cast<std::uint64_t>(value);
  }
  return 0;
}

double decode_stored_float(std::uint64_t bits_value, FloatType type) {
  switch (type) {
    case FloatType::kBFloat16:
      return static_cast<double>(
          bfloat16::to_float(static_cast<std::uint16_t>(bits_value)));
    case FloatType::kFloat16:
      return static_cast<double>(
          float16::to_float(static_cast<std::uint16_t>(bits_value)));
    case FloatType::kFloat32:
      return static_cast<double>(
          std::bit_cast<float>(static_cast<std::uint32_t>(bits_value)));
    case FloatType::kFloat64:
      return std::bit_cast<double>(bits_value);
  }
  return 0.0;
}

/// Sign-extend the low @p nbits bits of @p raw.
std::int64_t sign_extend(std::uint64_t raw, int nbits) {
  if (nbits == 64) return static_cast<std::int64_t>(raw);
  const std::uint64_t sign_bit = std::uint64_t{1} << (nbits - 1);
  if (raw & sign_bit) raw |= ~((std::uint64_t{1} << nbits) - 1);
  return static_cast<std::int64_t>(raw);
}

/// Byte offset of the reader's cursor — the position cc::Error carries.
std::uint64_t byte_offset(const BitReader& reader) {
  return static_cast<std::uint64_t>(reader.position() / 8);
}

/// Shared metadata header (all formats): type nibble, transform, shape,
/// end-of-shape marker, block shape, pruning mask.
void write_header(BitWriter& writer, const CompressedArray& array) {
  writer.put_bits(static_cast<std::uint64_t>(array.float_type), 2);
  writer.put_bits(static_cast<std::uint64_t>(array.index_type), 2);
  writer.put_bits(static_cast<std::uint64_t>(array.transform), 1);
  writer.put_bits(0, 3);  // Reserved.

  for (index_t extent : array.shape.dims())
    writer.put_bits(static_cast<std::uint64_t>(extent), 64);
  writer.put_bits(kEndOfShapeMarker, 64);
  for (index_t extent : array.block_shape.dims())
    writer.put_bits(static_cast<std::uint64_t>(extent), 64);

  for (std::uint8_t flag : array.mask.flags()) writer.put_bit(flag);
}

/// Parse and validate the shared header into @p array (everything up to and
/// including the mask).  Malformed input raises cc::Error (kTruncated when
/// the stream simply ends, kCorruptArchive otherwise); the sanity limits
/// reject corrupted size fields before they can drive a huge allocation
/// (see tests/test_fuzz.cpp and tools/fuzz_archive.cpp).
void parse_header(BitReader& reader, CompressedArray& array) {
  constexpr const char* kSite = "deserialize.header";

  array.float_type = static_cast<FloatType>(reader.get_bits(2));
  array.index_type = static_cast<IndexType>(reader.get_bits(2));
  array.transform = static_cast<TransformKind>(reader.get_bits(1));
  reader.get_bits(3);  // Reserved.

  constexpr index_t kMaxExtent = index_t{1} << 40;
  constexpr index_t kMaxBlockExtent = index_t{1} << 20;
  constexpr index_t kMaxBlockVolume = index_t{1} << 26;

  std::vector<index_t> s_dims;
  for (;;) {
    const std::uint64_t word = reader.get_bits(64);
    if (word == kEndOfShapeMarker) break;
    if (reader.overran())
      cc::raise(cc::ErrorCode::kTruncated, kSite,
                "stream ends inside the shape list", byte_offset(reader));
    if (s_dims.size() > 16)
      cc::raise(cc::ErrorCode::kCorruptArchive, kSite,
                "missing end-of-shape marker", byte_offset(reader));
    const auto extent = static_cast<index_t>(word);
    if (extent <= 0 || extent > kMaxExtent)
      cc::raise(cc::ErrorCode::kCorruptArchive, kSite,
                "implausible shape extent", byte_offset(reader));
    s_dims.push_back(extent);
  }
  if (s_dims.empty())
    cc::raise(cc::ErrorCode::kCorruptArchive, kSite, "empty shape",
              byte_offset(reader));
  array.shape = Shape(std::move(s_dims));

  std::vector<index_t> i_dims(static_cast<std::size_t>(array.shape.ndim()));
  for (auto& extent : i_dims) {
    extent = static_cast<index_t>(reader.get_bits(64));
    if (extent <= 0 || extent > kMaxBlockExtent)
      cc::raise(cc::ErrorCode::kCorruptArchive, kSite,
                "implausible block extent", byte_offset(reader));
  }
  array.block_shape = Shape(std::move(i_dims));
  if (!array.block_shape.all_powers_of_two() ||
      array.block_shape.volume() > kMaxBlockVolume)
    cc::raise(cc::ErrorCode::kCorruptArchive, kSite, "corrupt block shape",
              byte_offset(reader));

  // The remaining stream must be able to hold the mask and at least the N
  // payload the header promises.  remaining_bits() saturates at zero, so the
  // comparison is safe even after an over-read above.
  {
    const std::size_t remaining = reader.remaining_bits();
    const std::size_t mask_bits =
        static_cast<std::size_t>(array.block_shape.volume());
    const std::size_t num_blocks = static_cast<std::size_t>(array.num_blocks());
    const std::size_t n_bits =
        static_cast<std::size_t>(bits(array.float_type)) * num_blocks;
    if (mask_bits > remaining || n_bits > remaining - mask_bits)
      cc::raise(cc::ErrorCode::kTruncated, kSite,
                "stream too short for the mask and N payload",
                byte_offset(reader));
  }

  std::vector<std::uint8_t> flags(
      static_cast<std::size_t>(array.block_shape.volume()));
  for (auto& flag : flags) flag = static_cast<std::uint8_t>(reader.get_bit());
  array.mask = PruningMask::from_flags(array.block_shape, std::move(flags));
  if (array.mask.kept_count() == 0)
    cc::raise(cc::ErrorCode::kCorruptArchive, kSite, "mask keeps nothing",
              byte_offset(reader));
}

/// Allocate the decode-side buffers, surfacing allocation failure (real or
/// injected at the "deserialize.alloc" fault site) as kResourceExhausted
/// instead of a bare std::bad_alloc.
void allocate_decode_buffers(CompressedArray& array, index_t num_blocks) {
  try {
    fault::point("deserialize.alloc");
    array.biggest.resize(static_cast<std::size_t>(num_blocks));
    array.indices = BinIndices(
        array.index_type,
        static_cast<std::size_t>(num_blocks * array.kept_per_block()));
  } catch (const std::bad_alloc&) {
    cc::raise(cc::ErrorCode::kResourceExhausted, "deserialize.alloc",
              "allocation of decode buffers failed");
  }
}

/// Fixed geometry of the chunked payload (v2 and v3): every block stores
/// exactly f + kept * i bits, so the per-chunk byte offsets in the header are
/// fully determined by (num_blocks, blocks_per_chunk).  The offsets are
/// still written out — the container stays self-describing if a later
/// version makes chunk payloads variable-rate.
struct ChunkLayout {
  index_t num_blocks = 0;
  index_t blocks_per_chunk = 0;
  index_t num_chunks = 0;
  std::size_t bits_per_block = 0;

  static ChunkLayout plan(const CompressedArray& array) {
    ChunkLayout layout;
    layout.num_blocks = array.num_blocks();
    layout.bits_per_block =
        static_cast<std::size_t>(bits(array.float_type)) +
        static_cast<std::size_t>(bits(array.index_type)) *
            static_cast<std::size_t>(array.kept_per_block());
    layout.blocks_per_chunk = std::clamp<index_t>(
        static_cast<index_t>(kTargetChunkBits / layout.bits_per_block), 1,
        layout.num_blocks);
    layout.num_chunks = (layout.num_blocks + layout.blocks_per_chunk - 1) /
                        layout.blocks_per_chunk;
    return layout;
  }

  index_t chunk_begin(index_t chunk) const {
    return chunk * blocks_per_chunk;
  }
  index_t chunk_end(index_t chunk) const {
    return std::min(num_blocks, (chunk + 1) * blocks_per_chunk);
  }
  std::size_t chunk_bytes(index_t chunk) const {
    const auto blocks =
        static_cast<std::size_t>(chunk_end(chunk) - chunk_begin(chunk));
    return (blocks * bits_per_block + 7) / 8;
  }
};

/// Encode blocks [begin, end) of N and F as one self-contained chunk stream.
template <typename BinT>
void encode_chunk(const CompressedArray& array, const BinT* bins_data,
                  index_t begin, index_t end, BitWriter& writer) {
  const int fbits = bits(array.float_type);
  const int ibits = bits(array.index_type);
  const index_t kept = array.kept_per_block();
  for (index_t kb = begin; kb < end; ++kb)
    writer.put_bits(
        encode_stored_float(array.biggest[static_cast<std::size_t>(kb)],
                            array.float_type),
        fbits);
  for (index_t kb = begin; kb < end; ++kb) {
    const BinT* bins = bins_data + kb * kept;
    for (index_t slot = 0; slot < kept; ++slot)
      writer.put_bits(static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(bins[slot])),
                      ibits);
  }
  writer.align_to_byte();
}

/// Decode one chunk stream back into blocks [begin, end) of N and F.
template <typename BinT>
void decode_chunk(CompressedArray& array, BinT* bins_data, index_t begin,
                  index_t end, BitReader& reader) {
  const int fbits = bits(array.float_type);
  const int ibits = bits(array.index_type);
  const index_t kept = array.kept_per_block();
  for (index_t kb = begin; kb < end; ++kb)
    array.biggest[static_cast<std::size_t>(kb)] =
        decode_stored_float(reader.get_bits(fbits), array.float_type);
  for (index_t kb = begin; kb < end; ++kb) {
    BinT* bins = bins_data + kb * kept;
    for (index_t slot = 0; slot < kept; ++slot)
      bins[slot] =
          static_cast<BinT>(sign_extend(reader.get_bits(ibits), ibits));
  }
}

/// Store a 32-bit value into @p out at @p pos, little-endian — the same byte
/// order BitWriter's LSB-first packing gives an aligned put_bits(value, 32).
void store_le32(std::vector<std::uint8_t>& out, std::size_t pos,
                std::uint32_t value) {
  out[pos + 0] = static_cast<std::uint8_t>(value);
  out[pos + 1] = static_cast<std::uint8_t>(value >> 8);
  out[pos + 2] = static_cast<std::uint8_t>(value >> 16);
  out[pos + 3] = static_cast<std::uint8_t>(value >> 24);
}

/// Shared writer for the chunked containers.  v3 is v2 plus integrity: a
/// CRC-32 of the whole header region and one CRC-32 per chunk payload,
/// inserted between the chunk table and the payload.  The payload bytes
/// themselves are byte-identical to v2's (pinned by
/// tests/test_serialization.cpp), so the checksums are pure overhead —
/// measured in the `checksums[]` bench section.
/// Serializing an archive whose decoded-block cache holds unflushed writes
/// would persist bytes the caller no longer means: the writes live only in
/// the cache until flush_cache() re-encodes them.  A caller bug, not a data
/// fault, so logic_error rather than cc::Error.
void require_flushed(const CompressedArray& array) {
  if (array.dirty_cached_blocks() > 0)
    throw std::logic_error(
        "serialize: compressed array has unflushed dirty cached blocks; call "
        "flush_cache() first");
}

std::vector<std::uint8_t> serialize_chunked(const CompressedArray& array,
                                            bool checksummed) {
  require_flushed(array);
  const ChunkLayout layout = ChunkLayout::plan(array);

  // Header: magic, shared metadata, chunk table.  The per-chunk byte offsets
  // (relative to the payload start) let the decoder hand every chunk to a
  // different thread without scanning the stream.
  BitWriter writer;
  const std::uint8_t* magic = checksummed ? kChunkedMagicV3 : kChunkedMagicV2;
  for (int b = 0; b < 4; ++b) writer.put_bits(magic[b], 8);
  write_header(writer, array);
  writer.align_to_byte();
  writer.put_bits(static_cast<std::uint64_t>(layout.blocks_per_chunk), 64);
  writer.put_bits(static_cast<std::uint64_t>(layout.num_chunks), 32);
  std::vector<std::size_t> offsets(
      static_cast<std::size_t>(layout.num_chunks) + 1, 0);
  for (index_t chunk = 0; chunk < layout.num_chunks; ++chunk)
    offsets[static_cast<std::size_t>(chunk) + 1] =
        offsets[static_cast<std::size_t>(chunk)] + layout.chunk_bytes(chunk);
  for (index_t chunk = 0; chunk < layout.num_chunks; ++chunk)
    writer.put_bits(offsets[static_cast<std::size_t>(chunk)], 64);

  std::size_t chunk_crc_base = 0;
  if (checksummed) {
    // The cursor is byte-aligned here (aligned header + 64 + 32 + 64n bits),
    // so everything written so far is exactly the bytes the decoder will
    // checksum as "the header".
    const std::size_t header_bytes = writer.size_bits() / 8;
    writer.put_bits(crc32(writer.bytes().data(), header_bytes), 32);
    chunk_crc_base = writer.size_bits() / 8;
    for (index_t chunk = 0; chunk < layout.num_chunks; ++chunk)
      writer.put_bits(0, 32);  // Reserved; filled after the chunks encode.
  }

  std::vector<std::uint8_t> out = std::move(writer).take_bytes();
  const std::size_t payload_base = out.size();
  out.resize(payload_base + offsets.back());

  // Chunks encode concurrently, each into bytes fully determined by its own
  // blocks, so the assembled container is byte-identical at any thread count
  // — including the per-chunk CRCs, which are functions of those bytes.
  array.indices.visit([&](const auto* bins_data) {
    parallel::parallel_for(0, layout.num_chunks, 1, [&](index_t chunk_begin,
                                                        index_t chunk_end) {
      for (index_t chunk = chunk_begin; chunk < chunk_end; ++chunk) {
        BitWriter chunk_writer;
        encode_chunk(array, bins_data, layout.chunk_begin(chunk),
                     layout.chunk_end(chunk), chunk_writer);
        const std::vector<std::uint8_t>& chunk_bytes = chunk_writer.bytes();
        std::memcpy(out.data() + payload_base +
                        offsets[static_cast<std::size_t>(chunk)],
                    chunk_bytes.data(), chunk_bytes.size());
        if (checksummed)
          store_le32(out,
                     chunk_crc_base + 4 * static_cast<std::size_t>(chunk),
                     crc32(chunk_bytes.data(), chunk_bytes.size()));
      }
    });
  });
  // Fault site: corrupt the finished container on its way out, as a flaky
  // disk or NIC would.  v3 decoders must catch it; the fuzz suite arms this.
  if (fault::armed_for("serialize.output"))
    fault::corrupt("serialize.output", out);
  return out;
}

/// Shared reader for the chunked containers (v2, and v3 when @p checksummed).
CompressedArray deserialize_chunked(const std::vector<std::uint8_t>& bytes,
                                    bool checksummed) {
  BitReader reader(bytes);
  reader.seek(32);  // Past the magic.
  CompressedArray array;
  parse_header(reader, array);
  reader.align_to_byte();

  // Seed num_blocks/bits_per_block from the parsed header, then overwrite
  // the chunk geometry with what the stream declares: any self-consistent
  // chunking decodes, not just the one today's writer would plan.
  ChunkLayout layout = ChunkLayout::plan(array);
  if (reader.remaining_bits() < 96)
    cc::raise(cc::ErrorCode::kTruncated, "deserialize.chunk_table",
              "stream ends inside the chunk table", byte_offset(reader));
  layout.blocks_per_chunk = static_cast<index_t>(reader.get_bits(64));
  layout.num_chunks = static_cast<index_t>(reader.get_bits(32));
  if (layout.blocks_per_chunk < 1 ||
      layout.blocks_per_chunk > layout.num_blocks ||
      layout.num_chunks != (layout.num_blocks + layout.blocks_per_chunk - 1) /
                               layout.blocks_per_chunk)
    cc::raise(cc::ErrorCode::kCorruptArchive, "deserialize.chunk_table",
              "corrupt chunk table", byte_offset(reader));

  // The payload is fixed-rate, so every offset is predictable; reject a
  // table that disagrees rather than trusting attacker-controlled offsets.
  std::vector<std::size_t> offsets(
      static_cast<std::size_t>(layout.num_chunks) + 1, 0);
  for (index_t chunk = 0; chunk < layout.num_chunks; ++chunk)
    offsets[static_cast<std::size_t>(chunk) + 1] =
        offsets[static_cast<std::size_t>(chunk)] + layout.chunk_bytes(chunk);
  for (index_t chunk = 0; chunk < layout.num_chunks; ++chunk) {
    if (reader.remaining_bits() < 64)
      cc::raise(cc::ErrorCode::kTruncated, "deserialize.chunk_table",
                "stream ends inside the chunk table", byte_offset(reader));
    if (reader.get_bits(64) != offsets[static_cast<std::size_t>(chunk)])
      cc::raise(cc::ErrorCode::kCorruptArchive, "deserialize.chunk_table",
                "corrupt chunk table", byte_offset(reader));
  }

  std::vector<std::uint32_t> chunk_crcs;
  if (checksummed) {
    // Header CRC covers every byte before it: magic, metadata, chunk table.
    const std::size_t header_bytes = reader.position() / 8;
    if (reader.remaining_bits() <
        32 + 32 * static_cast<std::size_t>(layout.num_chunks))
      cc::raise(cc::ErrorCode::kTruncated, "deserialize.v3.header",
                "stream ends inside the checksum table", byte_offset(reader));
    const auto stored = static_cast<std::uint32_t>(reader.get_bits(32));
    if (stored != crc32(bytes.data(), header_bytes))
      cc::raise(cc::ErrorCode::kCorruptArchive, "deserialize.v3.header",
                "header checksum mismatch", byte_offset(reader));
    chunk_crcs.resize(static_cast<std::size_t>(layout.num_chunks));
    for (auto& crc : chunk_crcs)
      crc = static_cast<std::uint32_t>(reader.get_bits(32));
  }

  const std::size_t payload_base = reader.position() / 8;
  if (payload_base + offsets.back() > bytes.size())
    cc::raise(cc::ErrorCode::kTruncated, "deserialize.payload",
              "stream ends inside the chunk payload",
              static_cast<std::uint64_t>(bytes.size()));
  if (checksummed && payload_base + offsets.back() != bytes.size())
    cc::raise(cc::ErrorCode::kCorruptArchive, "deserialize.payload",
              "trailing bytes after the checksummed payload",
              static_cast<std::uint64_t>(payload_base + offsets.back()));

  allocate_decode_buffers(array, layout.num_blocks);
  array.indices.visit_mutable([&](auto* bins_data) {
    parallel::parallel_for(0, layout.num_chunks, 1, [&](index_t chunk_begin,
                                                        index_t chunk_end) {
      for (index_t chunk = chunk_begin; chunk < chunk_end; ++chunk) {
        const std::size_t chunk_base =
            payload_base + offsets[static_cast<std::size_t>(chunk)];
        if (checksummed &&
            chunk_crcs[static_cast<std::size_t>(chunk)] !=
                crc32(bytes.data() + chunk_base, layout.chunk_bytes(chunk)))
          // Raised inside a parallel chunk: the scheduler records it as the
          // region's exception and rethrows on the caller.
          cc::raise(cc::ErrorCode::kCorruptArchive, "deserialize.v3.chunk",
                    "chunk payload checksum mismatch",
                    static_cast<std::uint64_t>(chunk_base));
        BitReader chunk_reader(bytes.data() + chunk_base,
                               layout.chunk_bytes(chunk));
        decode_chunk(array, bins_data, layout.chunk_begin(chunk),
                     layout.chunk_end(chunk), chunk_reader);
      }
    });
  });
  return array;
}

CompressedArray deserialize_v1(const std::vector<std::uint8_t>& bytes) {
  BitReader reader(bytes);
  CompressedArray array;
  parse_header(reader, array);

  const index_t num_blocks = array.num_blocks();
  const int fbits = bits(array.float_type);
  const int ibits = bits(array.index_type);
  {
    const std::size_t remaining = reader.remaining_bits();
    const std::size_t needed =
        static_cast<std::size_t>(fbits) * static_cast<std::size_t>(num_blocks) +
        static_cast<std::size_t>(ibits) * static_cast<std::size_t>(num_blocks) *
            static_cast<std::size_t>(array.kept_per_block());
    if (needed > remaining)
      cc::raise(cc::ErrorCode::kTruncated, "deserialize.v1",
                "stream too short for the N and F payload",
                byte_offset(reader));
  }

  allocate_decode_buffers(array, num_blocks);
  for (auto& n : array.biggest)
    n = decode_stored_float(reader.get_bits(fbits), array.float_type);
  for (std::size_t k = 0; k < array.indices.size(); ++k)
    array.indices.set(k, sign_extend(reader.get_bits(ibits), ibits));

  if (reader.overran())
    cc::raise(cc::ErrorCode::kTruncated, "deserialize.v1",
              "stream ends inside the payload", byte_offset(reader));
  return array;
}

bool starts_with_magic(const std::vector<std::uint8_t>& bytes,
                       const std::uint8_t (&magic)[4]) {
  return bytes.size() >= 4 && std::memcmp(bytes.data(), magic, 4) == 0;
}

CompressedArray deserialize_any(const std::vector<std::uint8_t>& bytes) {
  if (starts_with_magic(bytes, kChunkedMagicV3)) {
    static telemetry::Counter& calls =
        telemetry::counter("serialize.v3.decode_calls");
    static telemetry::Counter& decoded_bytes =
        telemetry::counter("serialize.v3.decode_bytes");
    calls.increment();
    decoded_bytes.add(bytes.size());
    telemetry::TraceSpan span("serialize.v3.decode");
    return deserialize_chunked(bytes, /*checksummed=*/true);
  }
  if (starts_with_magic(bytes, kChunkedMagicV2)) {
    static telemetry::Counter& calls =
        telemetry::counter("serialize.v2.decode_calls");
    static telemetry::Counter& decoded_bytes =
        telemetry::counter("serialize.v2.decode_bytes");
    calls.increment();
    decoded_bytes.add(bytes.size());
    telemetry::TraceSpan span("serialize.v2.decode");
    return deserialize_chunked(bytes, /*checksummed=*/false);
  }
  return deserialize_v1(bytes);
}

}  // namespace

std::vector<std::uint8_t> serialize_v1(const CompressedArray& array) {
  require_flushed(array);
  BitWriter writer;
  write_header(writer, array);

  const int fbits = bits(array.float_type);
  for (double n : array.biggest)
    writer.put_bits(encode_stored_float(n, array.float_type), fbits);

  const int ibits = bits(array.index_type);
  for (std::size_t k = 0; k < array.indices.size(); ++k)
    writer.put_bits(static_cast<std::uint64_t>(array.indices.get(k)), ibits);

  writer.align_to_byte();
  return std::move(writer).take_bytes();
}

std::vector<std::uint8_t> serialize_v2(const CompressedArray& array) {
  static telemetry::Counter& calls =
      telemetry::counter("serialize.v2.encode_calls");
  static telemetry::Counter& encoded_bytes =
      telemetry::counter("serialize.v2.encode_bytes");
  calls.increment();
  telemetry::TraceSpan span("serialize.v2.encode");
  std::vector<std::uint8_t> out = serialize_chunked(array, false);
  encoded_bytes.add(out.size());
  return out;
}

std::vector<std::uint8_t> serialize(const CompressedArray& array) {
  static telemetry::Counter& calls =
      telemetry::counter("serialize.v3.encode_calls");
  static telemetry::Counter& encoded_bytes =
      telemetry::counter("serialize.v3.encode_bytes");
  calls.increment();
  telemetry::TraceSpan span("serialize.v3.encode");
  std::vector<std::uint8_t> out = serialize_chunked(array, true);
  encoded_bytes.add(out.size());
  return out;
}

int archive_version(const std::vector<std::uint8_t>& bytes) {
  if (starts_with_magic(bytes, kChunkedMagicV3)) return 3;
  if (starts_with_magic(bytes, kChunkedMagicV2)) return 2;
  return 1;
}

bool is_chunked_stream(const std::vector<std::uint8_t>& bytes) {
  return archive_version(bytes) >= 2;
}

CompressedArray deserialize(const std::vector<std::uint8_t>& bytes) {
  // Fault site: corrupt what the decoder sees without touching the caller's
  // buffer.  The copy is taken only while a spec targets this site, so the
  // production path never pays it.
  if (fault::armed_for("deserialize.input")) {
    std::vector<std::uint8_t> mutated = bytes;
    fault::corrupt("deserialize.input", mutated);
    return deserialize_any(mutated);
  }
  return deserialize_any(bytes);
}

std::size_t paper_layout_bits(const CompressedArray& array) {
  const std::size_t d = static_cast<std::size_t>(array.shape.ndim());
  const std::size_t num_blocks = static_cast<std::size_t>(array.num_blocks());
  const std::size_t kept = static_cast<std::size_t>(array.kept_per_block());
  return 4                                                 // Type nibble.
         + 64 * d                                          // s.
         + 64                                              // End marker.
         + 64 * d                                          // i.
         + static_cast<std::size_t>(array.block_shape.volume())  // P.
         + static_cast<std::size_t>(bits(array.float_type)) * num_blocks  // N.
         + static_cast<std::size_t>(bits(array.index_type)) * kept * num_blocks;  // F.
}

}  // namespace pyblaz
