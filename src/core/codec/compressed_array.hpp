#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/codec/bin_indices.hpp"
#include "core/codec/pruning.hpp"
#include "core/dtypes/float_type.hpp"
#include "core/dtypes/index_type.hpp"
#include "core/ndarray/ndarray.hpp"
#include "core/ndarray/shape.hpp"
#include "core/transform/transform.hpp"

namespace pyblaz {

namespace cache {
class BlockCache;
}  // namespace cache

namespace detail {
struct DecodeState;
}  // namespace detail

/// A compressed array (§III-B): the set {s, i, N, F} plus the information
/// required for decompression (float/index types, transform kind, pruning
/// mask P).
///
/// - `shape` (s): the original array shape.
/// - `block_shape` (i): the block shape used during compression.
/// - `biggest` (N): per block, the biggest-magnitude transform coefficient,
///   already rounded through `float_type` (it is *stored* in that type).
/// - `indices` (F): per block, the bin indices of the kept coefficients in
///   mask kept-offset order, each in [-r, r] for the index-type radius r.
///
/// The specified coefficient for kept slot j of block k decodes as
/// biggest[k] * indices[k * kept + j] / r (Algorithm 3); every
/// compressed-space operation works on these without inverse-transforming.
class CompressedArray {
 public:
  CompressedArray();
  ~CompressedArray();

  /// Copies and moves transfer the archive fields; the lazy decode state
  /// (transform matrices + decoded-block cache, see get() below) stays with
  /// the source on copy and moves with the array on move, so a copy can
  /// never observe another array's cached blocks.  Copying or copy-assigning
  /// an array with unflushed dirty cached blocks throws std::logic_error —
  /// the archive bytes don't reflect the writes yet (call flush_cache()).
  CompressedArray(const CompressedArray& other);
  CompressedArray& operator=(const CompressedArray& other);
  CompressedArray(CompressedArray&& other) noexcept;
  CompressedArray& operator=(CompressedArray&& other) noexcept;

  Shape shape;             ///< Original shape s.
  Shape block_shape;       ///< Block shape i.
  FloatType float_type = FloatType::kFloat32;
  IndexType index_type = IndexType::kInt8;
  TransformKind transform = TransformKind::kDCT;
  PruningMask mask;        ///< Kept-coefficient selection P.

  std::vector<double> biggest;  ///< N: one value per block.
  BinIndices indices;           ///< F: num_blocks() * kept_per_block(), stored
                                ///< at the index type's true width.

  /// Arrangement of blocks b = ceil(s ⊘ i).
  Shape block_grid() const { return Shape::ceil_div(shape, block_shape); }

  /// Number of blocks, prod(b).
  index_t num_blocks() const { return block_grid().volume(); }

  /// Kept coefficients per block, Σ P.
  index_t kept_per_block() const { return mask.kept_count(); }

  /// The binning radius used in arithmetic (arithmetic_radius of the index
  /// type: the nominal r = 2^(b-1) - 1 capped at 2^53 for int64).
  std::int64_t radius() const { return pyblaz::arithmetic_radius(index_type); }

  /// Position of the DC coefficient inside each block's kept slots, or -1 if
  /// the DC coefficient was pruned away.  Operations that read block means
  /// (mean, covariance, scalar addition, Wasserstein) need this to be 0.
  index_t dc_slot() const;

  /// True when @p other has identical shape, block shape, types, transform,
  /// and mask — the precondition for the binary compressed-space operations.
  bool layout_matches(const CompressedArray& other) const;

  /// Throws std::invalid_argument when layouts differ (used by binary ops).
  void require_layout_match(const CompressedArray& other) const;

  // --- Random access & the decoded-block cache (docs/PERF.md) -------------
  //
  // get()/set()/decompress_roi() decode only the touched blocks, through the
  // per-block path shared with Compressor (core/codec/block_access.hpp).
  // When CC_CACHE_BLOCKS (or cache::set_default_capacity) is nonzero, the
  // first random access attaches a bounded LRU cache of decoded blocks
  // (core/cache/block_cache.hpp) and repeated reads hit decoded data; when
  // zero (the default) every access decodes the block directly.  Cached and
  // direct reads are bit-identical at any capacity, thread count, or shard
  // count; both decode with the default (auto) transform implementation —
  // the same bits as a default-configured Compressor.

  /// One element, decoding (at most) its block.  @p indices must be inside
  /// shape (throws std::out_of_range otherwise).
  double get(const std::vector<index_t>& indices) const;

  /// Decode the half-open region [lo, hi) into an array of shape hi - lo,
  /// touching only the blocks the region intersects.  Requires
  /// 0 <= lo < hi <= shape elementwise (throws std::invalid_argument).
  NDArray<double> decompress_roi(const std::vector<index_t>& lo,
                                 const std::vector<index_t>& hi) const;

  /// Overwrite one element, rounding @p value through the float type.  With
  /// the cache enabled the write lands in the decoded block (marked dirty
  /// and pinned) and reaches the archive at flush_cache(); without it the
  /// block is decoded, modified, and re-encoded immediately.  Reads through
  /// this array see the write either way; the raw archive fields
  /// (biggest/indices) and serialize() only reflect it after flush_cache().
  void set(const std::vector<index_t>& indices, double value);

  /// Re-encode every dirty cached block into the archive (bit-identical to
  /// compressing the decoded data directly) and unpin them.  Returns the
  /// number of blocks written back.  No-op without a cache.
  index_t flush_cache();

  /// Drop all cached blocks, including dirty ones (their writes are lost),
  /// and the lazy decode state.  Also useful after mutating
  /// biggest/indices in place.
  void invalidate_cache() const;

  /// Cached / dirty-cached block counts (0 when no cache is attached).
  index_t cached_blocks() const;
  index_t dirty_cached_blocks() const;

  /// The attached cache, or nullptr when disabled or not yet created.
  /// Exposed for tests and benchmarks.
  cache::BlockCache* block_cache() const;

 private:
  /// Lazily created decode state: cached transform matrices, block grid, and
  /// (when enabled) the decoded-block cache.  Not part of the logical value:
  /// copies don't share it, comparison and serialization ignore it.  Returns
  /// a shared_ptr so a concurrent invalidate_cache() can't free state that a
  /// running access still uses.
  std::shared_ptr<detail::DecodeState> decode_state() const;
  mutable std::atomic<std::shared_ptr<detail::DecodeState>> decode_state_{};
};

}  // namespace pyblaz
