#pragma once

#include <cstdint>
#include <vector>

#include "core/codec/bin_indices.hpp"
#include "core/codec/pruning.hpp"
#include "core/dtypes/float_type.hpp"
#include "core/dtypes/index_type.hpp"
#include "core/ndarray/shape.hpp"
#include "core/transform/transform.hpp"

namespace pyblaz {

/// A compressed array (§III-B): the set {s, i, N, F} plus the information
/// required for decompression (float/index types, transform kind, pruning
/// mask P).
///
/// - `shape` (s): the original array shape.
/// - `block_shape` (i): the block shape used during compression.
/// - `biggest` (N): per block, the biggest-magnitude transform coefficient,
///   already rounded through `float_type` (it is *stored* in that type).
/// - `indices` (F): per block, the bin indices of the kept coefficients in
///   mask kept-offset order, each in [-r, r] for the index-type radius r.
///
/// The specified coefficient for kept slot j of block k decodes as
/// biggest[k] * indices[k * kept + j] / r (Algorithm 3); every
/// compressed-space operation works on these without inverse-transforming.
class CompressedArray {
 public:
  CompressedArray() = default;

  Shape shape;             ///< Original shape s.
  Shape block_shape;       ///< Block shape i.
  FloatType float_type = FloatType::kFloat32;
  IndexType index_type = IndexType::kInt8;
  TransformKind transform = TransformKind::kDCT;
  PruningMask mask;        ///< Kept-coefficient selection P.

  std::vector<double> biggest;  ///< N: one value per block.
  BinIndices indices;           ///< F: num_blocks() * kept_per_block(), stored
                                ///< at the index type's true width.

  /// Arrangement of blocks b = ceil(s ⊘ i).
  Shape block_grid() const { return Shape::ceil_div(shape, block_shape); }

  /// Number of blocks, prod(b).
  index_t num_blocks() const { return block_grid().volume(); }

  /// Kept coefficients per block, Σ P.
  index_t kept_per_block() const { return mask.kept_count(); }

  /// The binning radius used in arithmetic (arithmetic_radius of the index
  /// type: the nominal r = 2^(b-1) - 1 capped at 2^53 for int64).
  std::int64_t radius() const { return pyblaz::arithmetic_radius(index_type); }

  /// Position of the DC coefficient inside each block's kept slots, or -1 if
  /// the DC coefficient was pruned away.  Operations that read block means
  /// (mean, covariance, scalar addition, Wasserstein) need this to be 0.
  index_t dc_slot() const;

  /// True when @p other has identical shape, block shape, types, transform,
  /// and mask — the precondition for the binary compressed-space operations.
  bool layout_matches(const CompressedArray& other) const;

  /// Throws std::invalid_argument when layouts differ (used by binary ops).
  void require_layout_match(const CompressedArray& other) const;
};

}  // namespace pyblaz
