#include "core/codec/compressed_array.hpp"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/cache/block_cache.hpp"
#include "core/codec/block_access.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/telemetry/trace.hpp"
#include "core/transform/block_transform.hpp"

namespace pyblaz {

namespace detail {

/// Everything random access needs that is derivable from the archive fields
/// but expensive to rebuild per call: the block grid, the transform matrices
/// (built with TransformImpl::kAuto — the default Compressor configuration,
/// so random-access bits match a default compressor's decompress), and, when
/// enabled, the decoded-block cache.
struct DecodeState {
  Shape grid;
  BlockTransform transform;
  std::unique_ptr<cache::BlockCache> block_cache;

  DecodeState(const CompressedArray& array, index_t capacity_blocks)
      : grid(array.block_grid()),
        transform(array.transform, array.block_shape) {
    if (capacity_blocks > 0)
      block_cache = std::make_unique<cache::BlockCache>(
          capacity_blocks, array.block_shape.volume());
  }
};

}  // namespace detail

namespace {

void require_clean(const CompressedArray& array, const char* what) {
  if (array.dirty_cached_blocks() > 0)
    throw std::logic_error(
        std::string(what) +
        " a compressed array with unflushed dirty cached blocks; call "
        "flush_cache() first");
}

/// Decode block @p kb with a local cursor/scratch workspace.  The cache fill
/// path uses this: fills run outside the shard locks, possibly from several
/// threads at once, so the workspace cannot be shared.
void decode_block_standalone(const CompressedArray& array,
                             const detail::DecodeState& state, index_t kb,
                             double* out) {
  blockio::BlockCursor cursor(array.shape, array.block_shape, state.grid);
  std::vector<double> scratch(
      static_cast<std::size_t>(array.block_shape.volume()));
  blockio::decode_block(array, state.transform, cursor, kb, out,
                        scratch.data());
}

/// Flat block index and row-major in-block offset of an element.
void locate(const CompressedArray& array, const Shape& grid,
            const std::vector<index_t>& indices, index_t* kb,
            index_t* offset_in_block) {
  const int d = array.shape.ndim();
  if (static_cast<int>(indices.size()) != d)
    throw std::out_of_range("CompressedArray: index dimensionality " +
                            std::to_string(indices.size()) +
                            " does not match shape " + array.shape.to_string());
  index_t block = 0, offset = 0;
  for (int axis = 0; axis < d; ++axis) {
    const index_t idx = indices[static_cast<std::size_t>(axis)];
    if (idx < 0 || idx >= array.shape[axis])
      throw std::out_of_range("CompressedArray: index " + std::to_string(idx) +
                              " out of range for axis " + std::to_string(axis) +
                              " of shape " + array.shape.to_string());
    block = block * grid[axis] + idx / array.block_shape[axis];
    offset = offset * array.block_shape[axis] + idx % array.block_shape[axis];
  }
  *kb = block;
  *offset_in_block = offset;
}

}  // namespace

CompressedArray::CompressedArray() = default;
CompressedArray::~CompressedArray() = default;

CompressedArray::CompressedArray(const CompressedArray& other)
    : shape(other.shape),
      block_shape(other.block_shape),
      float_type(other.float_type),
      index_type(other.index_type),
      transform(other.transform),
      mask(other.mask),
      biggest(other.biggest),
      indices(other.indices) {
  require_clean(other, "copying");
}

CompressedArray& CompressedArray::operator=(const CompressedArray& other) {
  if (this == &other) return *this;
  require_clean(other, "copy-assigning from");
  shape = other.shape;
  block_shape = other.block_shape;
  float_type = other.float_type;
  index_type = other.index_type;
  transform = other.transform;
  mask = other.mask;
  biggest = other.biggest;
  indices = other.indices;
  decode_state_.store(nullptr, std::memory_order_release);
  return *this;
}

CompressedArray::CompressedArray(CompressedArray&& other) noexcept
    : shape(std::move(other.shape)),
      block_shape(std::move(other.block_shape)),
      float_type(other.float_type),
      index_type(other.index_type),
      transform(other.transform),
      mask(std::move(other.mask)),
      biggest(std::move(other.biggest)),
      indices(std::move(other.indices)) {
  decode_state_.store(other.decode_state_.exchange(nullptr),
                      std::memory_order_release);
}

CompressedArray& CompressedArray::operator=(CompressedArray&& other) noexcept {
  if (this == &other) return *this;
  shape = std::move(other.shape);
  block_shape = std::move(other.block_shape);
  float_type = other.float_type;
  index_type = other.index_type;
  transform = other.transform;
  mask = std::move(other.mask);
  biggest = std::move(other.biggest);
  indices = std::move(other.indices);
  decode_state_.store(other.decode_state_.exchange(nullptr),
                      std::memory_order_release);
  return *this;
}

index_t CompressedArray::dc_slot() const {
  const auto& offsets = mask.kept_offsets();
  if (!offsets.empty() && offsets[0] == 0) return 0;
  return -1;
}

bool CompressedArray::layout_matches(const CompressedArray& other) const {
  return shape == other.shape && block_shape == other.block_shape &&
         float_type == other.float_type && index_type == other.index_type &&
         transform == other.transform && mask == other.mask;
}

void CompressedArray::require_layout_match(const CompressedArray& other) const {
  if (!layout_matches(other))
    throw std::invalid_argument(
        "compressed-space binary operation requires operands compressed with "
        "identical settings and shapes");
}

std::shared_ptr<detail::DecodeState> CompressedArray::decode_state() const {
  auto state = decode_state_.load(std::memory_order_acquire);
  if (!state) {
    auto fresh = std::make_shared<detail::DecodeState>(
        *this, cache::default_capacity_blocks());
    std::shared_ptr<detail::DecodeState> expected;
    if (decode_state_.compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      state = std::move(fresh);
    } else {
      // Another thread won the race; both built identical state.
      state = std::move(expected);
    }
  }
  return state;
}

double CompressedArray::get(const std::vector<index_t>& indices_in) const {
  auto state = decode_state();
  index_t kb = 0, offset = 0;
  locate(*this, state->grid, indices_in, &kb, &offset);
  if (state->block_cache) {
    auto ref = state->block_cache->fetch(kb, [&](double* buffer) {
      decode_block_standalone(*this, *state, kb, buffer);
    });
    return ref[offset];
  }
  std::vector<double> block(static_cast<std::size_t>(block_shape.volume()));
  decode_block_standalone(*this, *state, kb, block.data());
  return block[static_cast<std::size_t>(offset)];
}

NDArray<double> CompressedArray::decompress_roi(
    const std::vector<index_t>& lo, const std::vector<index_t>& hi) const {
  const int d = shape.ndim();
  if (static_cast<int>(lo.size()) != d || static_cast<int>(hi.size()) != d)
    throw std::invalid_argument(
        "decompress_roi: lo/hi dimensionality does not match shape " +
        shape.to_string());
  for (int axis = 0; axis < d; ++axis) {
    const index_t l = lo[static_cast<std::size_t>(axis)];
    const index_t h = hi[static_cast<std::size_t>(axis)];
    if (l < 0 || l >= h || h > shape[axis])
      throw std::invalid_argument(
          "decompress_roi: region [" + std::to_string(l) + ", " +
          std::to_string(h) + ") is invalid for axis " + std::to_string(axis) +
          " of shape " + shape.to_string());
  }

  static telemetry::Counter& calls = telemetry::counter("codec.roi.calls");
  static telemetry::Counter& blocks_touched =
      telemetry::counter("codec.roi.blocks_touched");
  calls.increment();
  telemetry::TraceSpan span("codec.decompress_roi");

  auto state = decode_state();

  // The touched sub-grid of blocks.
  std::vector<index_t> bk_lo(static_cast<std::size_t>(d));
  std::vector<index_t> bk_n(static_cast<std::size_t>(d));
  std::vector<index_t> out_dims(static_cast<std::size_t>(d));
  for (int axis = 0; axis < d; ++axis) {
    const std::size_t a = static_cast<std::size_t>(axis);
    bk_lo[a] = lo[a] / block_shape[axis];
    bk_n[a] = (hi[a] - 1) / block_shape[axis] + 1 - bk_lo[a];
    out_dims[a] = hi[a] - lo[a];
  }
  const Shape touched_grid(bk_n);
  const index_t touched = touched_grid.volume();
  blocks_touched.add(static_cast<std::uint64_t>(touched));

  Shape out_shape(out_dims);
  NDArray<double> out(std::move(out_shape));
  const std::vector<index_t> out_strides = out.shape().strides();
  const index_t block_volume = block_shape.volume();

  // Blocks write disjoint regions of the output, and the chunking is a pure
  // function of (touched, grain), so results are bit-identical at any thread
  // or shard count.
  parallel::parallel_for(
      0, touched, parallel::default_grain(touched),
      [&](index_t begin, index_t end) {
        blockio::BlockCursor cursor(shape, block_shape, state->grid);
        std::vector<double> block(static_cast<std::size_t>(block_volume));
        std::vector<double> scratch(static_cast<std::size_t>(block_volume));
        std::vector<index_t> tb(static_cast<std::size_t>(d));
        for (index_t t = begin; t < end; ++t) {
          blockio::decompose(touched_grid, t, tb.data());
          index_t kb = 0;
          for (int axis = 0; axis < d; ++axis)
            kb = kb * state->grid[axis] +
                 bk_lo[static_cast<std::size_t>(axis)] +
                 tb[static_cast<std::size_t>(axis)];
          if (state->block_cache) {
            auto ref = state->block_cache->fetch(kb, [&](double* buffer) {
              decode_block_standalone(*this, *state, kb, buffer);
            });
            cursor.copy_to_roi(ref.data(), kb, lo.data(), hi.data(),
                               out.data(), out_strides);
          } else {
            blockio::decode_block(*this, state->transform, cursor, kb,
                                  block.data(), scratch.data());
            cursor.copy_to_roi(block.data(), kb, lo.data(), hi.data(),
                               out.data(), out_strides);
          }
        }
      });
  return out;
}

void CompressedArray::set(const std::vector<index_t>& indices_in,
                          double value) {
  auto state = decode_state();
  index_t kb = 0, offset = 0;
  locate(*this, state->grid, indices_in, &kb, &offset);
  // The write lands in the storage float domain, exactly as a compress of
  // modified decoded data would round it.
  const double rounded = quantize(value, float_type);
  if (state->block_cache) {
    state->block_cache->write(
        kb,
        [&](double* buffer) {
          decode_block_standalone(*this, *state, kb, buffer);
        },
        [&](double* buffer) {
          buffer[static_cast<std::size_t>(offset)] = rounded;
        });
    return;
  }
  // No cache: decode -> modify -> re-encode the one block immediately.  This
  // is the same sequence a cache write followed by flush_cache() performs,
  // so single-write-per-block workloads are bit-identical either way.
  const index_t block_volume = block_shape.volume();
  blockio::BlockCursor cursor(shape, block_shape, state->grid);
  std::vector<double> block(static_cast<std::size_t>(block_volume));
  std::vector<double> coeffs(static_cast<std::size_t>(block_volume));
  std::vector<double> scratch(static_cast<std::size_t>(block_volume));
  blockio::decode_block(*this, state->transform, cursor, kb, block.data(),
                        scratch.data());
  block[static_cast<std::size_t>(offset)] = rounded;
  blockio::encode_block(*this, state->transform, kb, block.data(),
                        coeffs.data(), scratch.data());
}

index_t CompressedArray::flush_cache() {
  auto state = decode_state_.load(std::memory_order_acquire);
  if (!state || !state->block_cache) return 0;
  const index_t block_volume = block_shape.volume();
  std::vector<double> coeffs(static_cast<std::size_t>(block_volume));
  std::vector<double> scratch(static_cast<std::size_t>(block_volume));
  return state->block_cache->flush([&](index_t kb, const double* block) {
    blockio::encode_block(*this, state->transform, kb, block, coeffs.data(),
                          scratch.data());
  });
}

void CompressedArray::invalidate_cache() const {
  decode_state_.store(nullptr, std::memory_order_release);
}

index_t CompressedArray::cached_blocks() const {
  auto state = decode_state_.load(std::memory_order_acquire);
  return state && state->block_cache ? state->block_cache->resident_blocks()
                                     : 0;
}

index_t CompressedArray::dirty_cached_blocks() const {
  auto state = decode_state_.load(std::memory_order_acquire);
  return state && state->block_cache ? state->block_cache->dirty_blocks() : 0;
}

cache::BlockCache* CompressedArray::block_cache() const {
  auto state = decode_state_.load(std::memory_order_acquire);
  return state ? state->block_cache.get() : nullptr;
}

}  // namespace pyblaz
