#include "core/codec/compressed_array.hpp"

#include <stdexcept>

namespace pyblaz {

index_t CompressedArray::dc_slot() const {
  const auto& offsets = mask.kept_offsets();
  if (!offsets.empty() && offsets[0] == 0) return 0;
  return -1;
}

bool CompressedArray::layout_matches(const CompressedArray& other) const {
  return shape == other.shape && block_shape == other.block_shape &&
         float_type == other.float_type && index_type == other.index_type &&
         transform == other.transform && mask == other.mask;
}

void CompressedArray::require_layout_match(const CompressedArray& other) const {
  if (!layout_matches(other))
    throw std::invalid_argument(
        "compressed-space binary operation requires operands compressed with "
        "identical settings and shapes");
}

}  // namespace pyblaz
