#include "core/codec/workspace.hpp"

#include <stdexcept>
#include <vector>

namespace pyblaz::internal {

double* coefficient_workspace(std::size_t count, int lane) {
  if (lane < 0 || lane >= kWorkspaceLanes)
    throw std::invalid_argument("coefficient_workspace: bad lane");
  thread_local std::vector<double> buffers[kWorkspaceLanes];
  std::vector<double>& buffer = buffers[lane];
  if (buffer.size() < count) buffer.resize(count);
  return buffer.data();
}

}  // namespace pyblaz::internal
