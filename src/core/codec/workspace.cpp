#include "core/codec/workspace.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

namespace pyblaz::internal {

namespace {

/// One frame: the per-lane buffers of one execution scope on one thread.
/// Heap-allocated behind a unique_ptr so growing the frame stack never moves
/// a frame — rows held in an outer frame stay valid while a deeper scope is
/// created.
struct WorkspaceFrame {
  std::vector<double> lanes[kWorkspaceLanes];
};

thread_local std::vector<std::unique_ptr<WorkspaceFrame>> t_frames;
thread_local int t_depth = 0;

}  // namespace

double* coefficient_workspace(std::size_t count, int lane) {
  if (lane < 0 || lane >= kWorkspaceLanes)
    throw std::invalid_argument("coefficient_workspace: bad lane");
  const auto depth = static_cast<std::size_t>(t_depth);
  if (t_frames.size() <= depth) t_frames.resize(depth + 1);
  if (!t_frames[depth]) t_frames[depth] = std::make_unique<WorkspaceFrame>();
  std::vector<double>& buffer = t_frames[depth]->lanes[lane];
  if (buffer.size() < count) buffer.resize(count);
  return buffer.data();
}

WorkspaceScope::WorkspaceScope() { ++t_depth; }

WorkspaceScope::~WorkspaceScope() { --t_depth; }

int workspace_frame_depth() { return t_depth; }

}  // namespace pyblaz::internal
