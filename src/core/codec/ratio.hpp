#pragma once

#include "core/codec/settings.hpp"
#include "core/ndarray/shape.hpp"

namespace pyblaz {

/// Compression-ratio accounting (§IV-C).  The ratio depends only on the
/// compression settings and the array shape — never on the data.

/// The paper's headline formula:
///     u * prod(s) / ((f + i * ΣP) * prod(ceil(s ⊘ i)))
/// where u = bits per uncompressed element, f = float-type bits, i =
/// index-type bits, ΣP = kept coefficients per block.  This counts only the
/// N and F payloads (the terms that grow with the array).
double formula_ratio(const CompressorSettings& settings, const Shape& array_shape,
                     int uncompressed_bits = 64);

/// The limit of formula_ratio as the array grows: u * prod(i) / (f + i * ΣP).
double asymptotic_ratio(const CompressorSettings& settings,
                        int uncompressed_bits = 64);

/// Exact ratio against the full §IV-C layout, including the type nibble,
/// shape words, end marker, and pruning mask.
double exact_ratio(const CompressorSettings& settings, const Shape& array_shape,
                   int uncompressed_bits = 64);

/// Total §IV-C layout size in bits for the given settings and shape.
std::size_t layout_bits(const CompressorSettings& settings,
                        const Shape& array_shape);

}  // namespace pyblaz
