#pragma once

#include <memory>

#include "core/codec/compressed_array.hpp"
#include "core/codec/error_bounds.hpp"
#include "core/codec/settings.hpp"
#include "core/ndarray/ndarray.hpp"
#include "core/transform/block_transform.hpp"

namespace pyblaz {

/// The PyBlaz compressor (§III): data-type conversion -> blocking ->
/// orthonormal transform -> binning -> pruning, and the reverse for
/// decompression.  Compression, decompression, and the per-block halves of
/// the compressed-space operations are parallelized over blocks with OpenMP
/// (the CPU analogue of PyBlaz's GPU execution).
///
/// A Compressor is immutable after construction and safe to share across
/// threads.
class Compressor {
 public:
  /// Validates @p settings (throws std::invalid_argument on bad settings) and
  /// precomputes the per-axis transform matrices.
  explicit Compressor(CompressorSettings settings);

  /// Compress @p array.  The array's dimensionality must match the block
  /// shape's.  If @p diagnostics is non-null it receives the exact per-block
  /// binning/pruning error accounting of §IV-D.
  CompressedArray compress(const NDArray<double>& array,
                           CompressionDiagnostics* diagnostics = nullptr) const;

  /// Decompress back to an array shaped like the original.  Values are
  /// rounded through the configured float type, as PyBlaz stores and
  /// reconstructs in that type.
  NDArray<double> decompress(const CompressedArray& array) const;

  const CompressorSettings& settings() const { return settings_; }

  /// The pruning mask in effect (keep-all when none was configured).
  const PruningMask& mask() const { return mask_; }

  /// The per-block transform (shared with compressed-space operations that
  /// need basis information).
  const BlockTransform& transform() const { return *transform_; }

 private:
  CompressorSettings settings_;
  PruningMask mask_;
  std::shared_ptr<BlockTransform> transform_;
};

}  // namespace pyblaz
