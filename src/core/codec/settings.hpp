#pragma once

#include <optional>
#include <string>

#include "core/codec/pruning.hpp"
#include "core/dtypes/float_type.hpp"
#include "core/dtypes/index_type.hpp"
#include "core/ndarray/shape.hpp"
#include "core/transform/transform.hpp"

namespace pyblaz {

/// Compression settings (§III).  Unlike error-bounded compressors (SZ), the
/// compression ratio is a function of these settings alone and is independent
/// of the data; the error, conversely, depends on how well the settings suit
/// the data.
struct CompressorSettings {
  /// Block shape i.  Every extent must be a power of two (§III-A); shapes
  /// need not be hypercubic.
  Shape block_shape;

  /// Floating-point storage type (input conversion + stored N).
  FloatType float_type = FloatType::kFloat32;

  /// Integer bin-index type (stored F).
  IndexType index_type = IndexType::kInt8;

  /// Orthonormal transform applied per block.
  TransformKind transform = TransformKind::kDCT;

  /// Transform implementation: kAuto dispatches to the factorized O(n log n)
  /// kernels where available, kDense forces the dense matrix apply.  A
  /// performance knob only — it does not affect the compressed format, and
  /// arrays produced by either implementation interoperate.  Which axes
  /// kAuto considers "available" is decided by kernels::fast_axis_preferred
  /// (autotuned per host by default; pin with PYBLAZ_FAST_AXIS=fixed or
  /// kernels::set_fast_axis_policy for host-independent dispatch).
  TransformImpl transform_impl = TransformImpl::kAuto;

  /// Pruning mask; std::nullopt means keep all coefficients.
  std::optional<PruningMask> mask;

  /// The mask actually in effect (resolves nullopt to keep-all).
  PruningMask effective_mask() const {
    return mask ? *mask : PruningMask::keep_all(block_shape);
  }

  /// Throws std::invalid_argument if the settings are malformed (empty or
  /// non-power-of-two block shape, mask shaped differently from the block).
  void validate() const;

  /// One-line human-readable description, e.g.
  /// "block (4, 4, 4), float32, int8, dct, kept 64/64".
  std::string describe() const;
};

}  // namespace pyblaz
