#include "core/codec/tuning.hpp"

#include <algorithm>
#include <cmath>

#include "core/codec/compressor.hpp"
#include "core/codec/ratio.hpp"
#include "core/reference/reference.hpp"

namespace pyblaz {

namespace {

/// Candidate block shapes for a sample of dimensionality d: hypercubic cubes
/// of each side, plus flattened variants (first axis shortened) when the
/// first extent is small relative to the rest — the paper's non-hypercubic
/// insight for anisotropic data (§V-B).
std::vector<Shape> candidate_blocks(const Shape& sample_shape,
                                    const std::vector<index_t>& sides) {
  const int d = sample_shape.ndim();
  std::vector<Shape> blocks;
  for (index_t side : sides) {
    std::vector<index_t> dims(static_cast<std::size_t>(d), side);
    blocks.emplace_back(dims);
    if (d >= 2 && side >= 8 && sample_shape[0] * 2 <= sample_shape[d - 1]) {
      dims[0] = std::max<index_t>(side / 4, 1);
      blocks.emplace_back(dims);
    }
  }
  return blocks;
}

}  // namespace

TuningResult tune_for_linf(const NDArray<double>& sample, double target_linf,
                           const TuningOptions& options) {
  TuningResult result;

  for (const Shape& block : candidate_blocks(sample.shape(), options.block_sides)) {
    // Skip blocks larger than the sample in any direction; they only pad.
    bool oversize = false;
    for (int axis = 0; axis < block.ndim(); ++axis)
      oversize |= block[axis] > 2 * sample.shape()[axis];
    if (oversize) continue;

    for (IndexType itype : {IndexType::kInt8, IndexType::kInt16, IndexType::kInt32}) {
      for (double keep : options.keep_fractions) {
        CompressorSettings settings{.block_shape = block,
                                    .float_type = options.float_type,
                                    .index_type = itype,
                                    .transform = options.transform};
        if (keep < 1.0) settings.mask = PruningMask::keep_fraction(block, keep);

        Compressor compressor(settings);
        CompressionDiagnostics diagnostics;
        CompressedArray compressed = compressor.compress(sample, &diagnostics);

        TuningCandidate candidate;
        candidate.settings = settings;
        candidate.ratio = formula_ratio(settings, sample.shape());
        candidate.linf_error =
            options.use_guaranteed_bound
                ? diagnostics.loose_linf(compressed)
                : reference::linf_distance(sample, compressor.decompress(compressed));
        candidate.feasible = candidate.linf_error <= target_linf;

        if (candidate.feasible &&
            (!result.best || candidate.ratio > result.best->ratio)) {
          result.best = candidate;
        }
        result.evaluated.push_back(std::move(candidate));
      }
    }
  }
  return result;
}

}  // namespace pyblaz
