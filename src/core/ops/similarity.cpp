#include <algorithm>
#include <cmath>

#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"
#include "core/parallel/thread_pool.hpp"

namespace pyblaz::ops {

double structural_similarity(const CompressedArray& a, const CompressedArray& b,
                             const SsimParams& params) {
  a.require_layout_match(b);
  internal::require_dc(a, "SSIM");

  const double mu_a = mean(a);
  const double mu_b = mean(b);
  const double var_a = variance(a);
  const double var_b = variance(b);
  const double sigma_a = std::sqrt(var_a);
  const double sigma_b = std::sqrt(var_b);
  const double sigma_ab = covariance(a, b);

  const double sl = params.luminance_stabilizer;
  const double sc = params.contrast_stabilizer;

  const double luminance =
      (2.0 * mu_a * mu_b + sl) / (mu_a * mu_a + mu_b * mu_b + sl);
  const double contrast =
      (2.0 * sigma_a * sigma_b + sc) / (var_a + var_b + sc);
  const double structure =
      (sigma_ab + sc / 2.0) / (sigma_a * sigma_b + sc / 2.0);

  return std::pow(luminance, params.luminance_weight) *
         std::pow(contrast, params.contrast_weight) *
         std::pow(structure, params.structure_weight);
}

NDArray<double> structural_similarity_map(const CompressedArray& a,
                                          const CompressedArray& b,
                                          const SsimParams& params) {
  a.require_layout_match(b);
  internal::require_dc(a, "SSIM map");

  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  const double c = internal::dc_scale(a.block_shape);
  const double block_volume = static_cast<double>(a.block_shape.volume());
  const double sl = params.luminance_stabilizer;
  const double sc = params.contrast_stabilizer;

  // One fused parallel pass per block: means from the DC slot, the three
  // second moments in a single loop over the AC slots, and the SSIM combine
  // — no block-grid temporaries.  Each accumulator replicates the exact
  // expression and association order of blockwise_mean_vector /
  // blockwise_covariance, so the map is bit-identical to combining those
  // (the pre-fusion implementation, pinned by tests/test_block_cache.cpp).
  NDArray<double> out(a.block_grid());
  a.indices.visit([&](const auto* fa_data) {
    b.indices.visit([&](const auto* fb_data) {
      parallel::parallel_for(
          0, num_blocks, parallel::default_grain(num_blocks),
          [&](index_t begin, index_t end) {
            for (index_t kb = begin; kb < end; ++kb) {
              const std::size_t k = static_cast<std::size_t>(kb);
              const double s1 = a.biggest[k] / r;
              const double s2 = b.biggest[k] / r;
              const auto* fa = fa_data + kb * kept;
              const auto* fb = fb_data + kb * kept;
              const double dc_a =
                  a.biggest[k] * static_cast<double>(fa[0]) / r;
              const double dc_b =
                  b.biggest[k] * static_cast<double>(fb[0]) / r;
              const double ma = dc_a / c;
              const double mb = dc_b / c;
              double va = 0.0, vb = 0.0, cov = 0.0;
              for (index_t slot = 1; slot < kept; ++slot) {
                const double av = static_cast<double>(fa[slot]);
                const double bv = static_cast<double>(fb[slot]);
                va += s1 * av * s1 * av;
                vb += s2 * bv * s2 * bv;
                cov += s1 * av * s2 * bv;
              }
              va = std::max(va / block_volume, 0.0);
              vb = std::max(vb / block_volume, 0.0);
              cov /= block_volume;
              const double sa = std::sqrt(va);
              const double sb = std::sqrt(vb);
              const double luminance =
                  (2.0 * ma * mb + sl) / (ma * ma + mb * mb + sl);
              const double contrast = (2.0 * sa * sb + sc) / (va + vb + sc);
              const double structure =
                  (cov + sc / 2.0) / (sa * sb + sc / 2.0);
              out[kb] = std::pow(luminance, params.luminance_weight) *
                        std::pow(contrast, params.contrast_weight) *
                        std::pow(structure, params.structure_weight);
            }
          });
    });
  });
  return out;
}

}  // namespace pyblaz::ops
