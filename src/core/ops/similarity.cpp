#include <cmath>

#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"

namespace pyblaz::ops {

double structural_similarity(const CompressedArray& a, const CompressedArray& b,
                             const SsimParams& params) {
  a.require_layout_match(b);
  internal::require_dc(a, "SSIM");

  const double mu_a = mean(a);
  const double mu_b = mean(b);
  const double var_a = variance(a);
  const double var_b = variance(b);
  const double sigma_a = std::sqrt(var_a);
  const double sigma_b = std::sqrt(var_b);
  const double sigma_ab = covariance(a, b);

  const double sl = params.luminance_stabilizer;
  const double sc = params.contrast_stabilizer;

  const double luminance =
      (2.0 * mu_a * mu_b + sl) / (mu_a * mu_a + mu_b * mu_b + sl);
  const double contrast =
      (2.0 * sigma_a * sigma_b + sc) / (var_a + var_b + sc);
  const double structure =
      (sigma_ab + sc / 2.0) / (sigma_a * sigma_b + sc / 2.0);

  return std::pow(luminance, params.luminance_weight) *
         std::pow(contrast, params.contrast_weight) *
         std::pow(structure, params.structure_weight);
}

NDArray<double> structural_similarity_map(const CompressedArray& a,
                                          const CompressedArray& b,
                                          const SsimParams& params) {
  a.require_layout_match(b);
  internal::require_dc(a, "SSIM map");

  const NDArray<double> mu_a = blockwise_mean(a);
  const NDArray<double> mu_b = blockwise_mean(b);
  const NDArray<double> var_a = blockwise_variance(a);
  const NDArray<double> var_b = blockwise_variance(b);
  const NDArray<double> cov_ab = blockwise_covariance(a, b);

  const double sl = params.luminance_stabilizer;
  const double sc = params.contrast_stabilizer;

  NDArray<double> out(a.block_grid());
  for (index_t k = 0; k < out.size(); ++k) {
    const double ma = mu_a[k], mb = mu_b[k];
    const double va = std::max(var_a[k], 0.0), vb = std::max(var_b[k], 0.0);
    const double sa = std::sqrt(va), sb = std::sqrt(vb);
    const double luminance = (2.0 * ma * mb + sl) / (ma * ma + mb * mb + sl);
    const double contrast = (2.0 * sa * sb + sc) / (va + vb + sc);
    const double structure = (cov_ab[k] + sc / 2.0) / (sa * sb + sc / 2.0);
    out[k] = std::pow(luminance, params.luminance_weight) *
             std::pow(contrast, params.contrast_weight) *
             std::pow(structure, params.structure_weight);
  }
  return out;
}

}  // namespace pyblaz::ops
