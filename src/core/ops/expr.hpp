#pragma once

#include <array>
#include <concepts>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "core/codec/compressed_array.hpp"

/// Lazy expression-template front end over ops::lincomb.
///
/// Natural compressed-space arithmetic —
///
///     CompressedArray next = h - dt * (dudx + dvdy);
///     state += half_dt * rho_a + half_dt * rho_b;
///
/// — builds a LinExpr<N> whose N (operand*, weight) pairs are laid down at
/// compile time (std::array members, no heap, no virtual dispatch) and whose
/// eval() / implicit CompressedArray conversion flattens the whole tree into
/// ONE ops::lincomb call: one workspace pass over all operands, one terminal
/// rebin, zero intermediate CompressedArrays.  The equivalent chained
/// ops::add / ops::multiply_scalar sequence pays one rebin — the sole error
/// source of Table I addition — per binary op, so the expression layer is not
/// sugar: it compiles natural syntax into the strictly tighter one-rebin
/// pipeline.  Evaluation is bit-identical to the direct ops::lincomb call
/// with the same (operand, weight, bias) list (tests/test_ops_expr.cpp), so
/// the layer adds no error source of its own.
///
/// What fuses: operator+/-, scalar */÷, scalar bias, unary minus, and the
/// compound assignments += / -= (which append the target as a unit-weight
/// first operand and route through the same single-rebin path).  What does
/// not: a *pure* scaling like `2.0 * a` evaluated alone still runs one
/// lincomb — and therefore one rebin — whereas ops::multiply_scalar is exact
/// and rebin-free; keep calling multiply_scalar for bare rescales where
/// exactness matters.  Multiplying two compressed arrays element-wise is not
/// in the paper's algebra and has no operator here.
///
/// Lifetime: a LinExpr stores *pointers* to its operands.  Evaluating within
/// the same full expression that built it — the idiomatic
/// `CompressedArray r = a - dt * b;` or `f(a - b)` — is always safe,
/// including operands that are temporaries (they live to the end of the full
/// expression).  Storing an expression in a variable for later evaluation is
/// only safe when every operand outlives it; do not hold a LinExpr built
/// from temporaries across statements.
///
/// Everything lives in namespace pyblaz (not pyblaz::ops) so argument-
/// dependent lookup finds the operators wherever a CompressedArray is in
/// scope, without a using-directive.

namespace pyblaz {

template <std::size_t N>
class LinExpr;

namespace expr_detail {

/// The single audited exit from the lazy world: forwards the flattened
/// (operands, weights, bias) list to ops::lincomb.  Implemented in expr.cpp
/// so this header stays independent of ops.hpp.
CompressedArray eval_terms(const CompressedArray* const* operands,
                           const double* weights, std::size_t count,
                           double bias);

template <typename T>
inline constexpr bool is_lin_expr_v = false;
template <std::size_t N>
inline constexpr bool is_lin_expr_v<LinExpr<N>> = true;

}  // namespace expr_detail

/// A lazy linear combination Σ weights[i] * (*operands[i]) + bias.  The
/// arity N is part of the type: every operator below concatenates or rescales
/// these fixed-size arrays, so building an expression costs a few stores and
/// evaluation is exactly one ops::lincomb call.
template <std::size_t N>
class LinExpr {
  static_assert(N >= 1, "an expression has at least one operand");

 public:
  std::array<const CompressedArray*, N> operands{};
  std::array<double, N> weights{};
  double bias = 0.0;

  /// Flatten into one ops::lincomb call (one pass, one terminal rebin).
  CompressedArray eval() const {
    return expr_detail::eval_terms(operands.data(), weights.data(), N, bias);
  }

  /// Implicit evaluation, so an expression drops into any API that takes a
  /// CompressedArray: `ops::l2_norm(a - b)`, `compressor.decompress(...)`.
  operator CompressedArray() const { return eval(); }  // NOLINT(google-explicit-constructor)

  /// This expression with every weight (and the bias) multiplied by @p s.
  constexpr LinExpr scaled(double s) const {
    LinExpr out = *this;
    for (double& w : out.weights) w *= s;
    out.bias *= s;
    return out;
  }

  /// This expression with @p s added to the bias.
  constexpr LinExpr shifted(double s) const {
    LinExpr out = *this;
    out.bias += s;
    return out;
  }
};

/// A CompressedArray viewed as the unit-weight single-term expression.
inline LinExpr<1> as_expr(const CompressedArray& a) {
  return LinExpr<1>{{&a}, {1.0}, 0.0};
}
template <std::size_t N>
constexpr const LinExpr<N>& as_expr(const LinExpr<N>& e) {
  return e;
}

/// Either a CompressedArray or an already-built LinExpr: the operand set the
/// operators below accept (constrained so these templates never interfere
/// with overload resolution for unrelated types).
template <typename T>
concept LinExprOperand =
    std::same_as<std::remove_cvref_t<T>, CompressedArray> ||
    expr_detail::is_lin_expr_v<std::remove_cvref_t<T>>;

namespace expr_detail {

template <std::size_t N, std::size_t M>
constexpr LinExpr<N + M> concat(const LinExpr<N>& a, const LinExpr<M>& b,
                                double sign) {
  LinExpr<N + M> out;
  for (std::size_t i = 0; i < N; ++i) {
    out.operands[i] = a.operands[i];
    out.weights[i] = a.weights[i];
  }
  for (std::size_t j = 0; j < M; ++j) {
    out.operands[N + j] = b.operands[j];
    out.weights[N + j] = sign * b.weights[j];
  }
  out.bias = a.bias + sign * b.bias;
  return out;
}

}  // namespace expr_detail

// --- Combining operands: concatenation of term lists. ---

template <LinExprOperand A, LinExprOperand B>
constexpr auto operator+(const A& a, const B& b) {
  return expr_detail::concat(as_expr(a), as_expr(b), 1.0);
}

template <LinExprOperand A, LinExprOperand B>
constexpr auto operator-(const A& a, const B& b) {
  return expr_detail::concat(as_expr(a), as_expr(b), -1.0);
}

template <LinExprOperand A>
constexpr auto operator-(const A& a) {
  return as_expr(a).scaled(-1.0);
}

// --- Scalar scaling: folded into the decode weights, never a data pass. ---

template <LinExprOperand A>
constexpr auto operator*(const A& a, double s) {
  return as_expr(a).scaled(s);
}

template <LinExprOperand A>
constexpr auto operator*(double s, const A& a) {
  return as_expr(a).scaled(s);
}

template <LinExprOperand A>
constexpr auto operator/(const A& a, double s) {
  return as_expr(a).scaled(1.0 / s);
}

// --- Scalar bias: a DC shift in the terminal rebin (Algorithm 4 fused). ---

template <LinExprOperand A>
constexpr auto operator+(const A& a, double s) {
  return as_expr(a).shifted(s);
}

template <LinExprOperand A>
constexpr auto operator+(double s, const A& a) {
  return as_expr(a).shifted(s);
}

template <LinExprOperand A>
constexpr auto operator-(const A& a, double s) {
  return as_expr(a).shifted(-s);
}

template <LinExprOperand A>
constexpr auto operator-(double s, const A& a) {
  return as_expr(a).scaled(-1.0).shifted(s);
}

// --- Batched evaluation: K expressions, shared operands decoded once. ---

/// Collects LinExprs and evaluates them as ONE ops::lincomb_batch call: per
/// block, each *distinct* operand (deduplicated by pointer — expressions
/// share a decode only when they reference the same CompressedArray object)
/// is decoded once and fanned into every collected expression through the
/// multi-output kernel, each output finishing with its own terminal rebin.
/// Results are bit-identical to eval()ing each expression alone, in add()
/// order; a batch whose expressions share nothing (or holds a single
/// expression) falls back to exactly that sequential evaluation.
///
///     BatchEval batch;
///     batch.add(h - dt * (fx + fy));
///     batch.add(0.5 * h + 0.5 * g);
///     std::vector<CompressedArray> results = batch.eval();
///
/// Lifetime: like LinExpr, only operand *pointers* are stored — every operand
/// must stay alive until eval() returns.  Unlike a bare LinExpr, collected
/// expressions are held across statements by design, so never add()
/// expressions built from temporaries.
class BatchEval {
 public:
  /// Append one expression.  Returns *this so adds chain.
  template <std::size_t N>
  BatchEval& add(const LinExpr<N>& e) {
    Request req;
    req.operands.assign(e.operands.begin(), e.operands.end());
    req.weights.assign(e.weights.begin(), e.weights.end());
    req.bias = e.bias;
    requests_.push_back(std::move(req));
    return *this;
  }

  /// A bare array batches as its unit-weight single-term expression.
  BatchEval& add(const CompressedArray& a) { return add(as_expr(a)); }

  std::size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }

  /// Drop every collected expression (eval() does not clear).
  void clear() { requests_.clear(); }

  /// Evaluate all collected expressions in one batched pass; results[i]
  /// corresponds to the i-th add().  Implemented in expr.cpp so this header
  /// stays independent of ops.hpp.
  std::vector<CompressedArray> eval() const;

 private:
  struct Request {
    std::vector<const CompressedArray*> operands;
    std::vector<double> weights;
    double bias = 0.0;
  };
  std::vector<Request> requests_;
};

// --- Compound assignment: state updates through the same one-rebin path. ---

/// a <- a + expr, evaluated as the single fused lincomb {1·a} ∪ expr.  The
/// right-hand side may reference a itself; the combination is built into a
/// fresh array before the assignment replaces a.
template <LinExprOperand E>
CompressedArray& operator+=(CompressedArray& a, const E& e) {
  a = (a + e).eval();
  return a;
}

template <LinExprOperand E>
CompressedArray& operator-=(CompressedArray& a, const E& e) {
  a = (a - e).eval();
  return a;
}

}  // namespace pyblaz
