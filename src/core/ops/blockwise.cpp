#include <cmath>

#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"
#include "core/parallel/thread_pool.hpp"

namespace pyblaz::ops {

NDArray<double> blockwise_mean(const CompressedArray& a) {
  std::vector<double> means = internal::blockwise_mean_vector(a);
  return NDArray<double>(a.block_grid(), std::move(means));
}

NDArray<double> blockwise_covariance(const CompressedArray& a,
                                     const CompressedArray& b) {
  a.require_layout_match(b);
  internal::require_dc(a, "blockwise covariance");
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  const double block_volume = static_cast<double>(a.block_shape.volume());

  NDArray<double> out(a.block_grid());
  // Centering one block's data subtracts that block's own mean, which zeroes
  // its DC coefficient, so the blockwise covariance is the mean product of
  // the non-DC coefficients (§IV-A 7).
  a.indices.visit([&](const auto* f1_data) {
    b.indices.visit([&](const auto* f2_data) {
      parallel::parallel_for(
          0, num_blocks, parallel::default_grain(num_blocks),
          [&](index_t begin, index_t end) {
            for (index_t kb = begin; kb < end; ++kb) {
              const double s1 = a.biggest[static_cast<std::size_t>(kb)] / r;
              const double s2 = b.biggest[static_cast<std::size_t>(kb)] / r;
              const auto* f1 = f1_data + kb * kept;
              const auto* f2 = f2_data + kb * kept;
              double total = 0.0;
              for (index_t slot = 1; slot < kept; ++slot) {
                total += s1 * static_cast<double>(f1[slot]) * s2 *
                         static_cast<double>(f2[slot]);
              }
              out[kb] = total / block_volume;
            }
          });
    });
  });
  return out;
}

NDArray<double> blockwise_variance(const CompressedArray& a) {
  return blockwise_covariance(a, a);
}

NDArray<double> blockwise_standard_deviation(const CompressedArray& a) {
  NDArray<double> out = blockwise_variance(a);
  out.map_inplace([](double v) { return std::sqrt(v); });
  return out;
}

}  // namespace pyblaz::ops
