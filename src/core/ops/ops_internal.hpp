#pragma once

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/codec/compressed_array.hpp"

namespace pyblaz::ops::internal {

/// Throws unless the DC (first) coefficient survives pruning; operations on
/// block means cannot work without it.
inline void require_dc(const CompressedArray& a, const char* operation) {
  if (a.dc_slot() != 0)
    throw std::invalid_argument(std::string(operation) +
                                " requires the first (DC) coefficient to be "
                                "kept by the pruning mask");
}

/// sqrt(prod(i)): the factor c relating a block's mean to its DC coefficient.
inline double dc_scale(const Shape& block_shape) {
  return std::sqrt(static_cast<double>(block_shape.volume()));
}

/// The blockwise means A' of Algorithm 13: DC coefficients / sqrt(prod(i)).
std::vector<double> blockwise_mean_vector(const CompressedArray& a);

}  // namespace pyblaz::ops::internal
