#include <algorithm>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/codec/workspace.hpp"
#include "core/kernels/backend.hpp"
#include "core/kernels/rebin.hpp"
#include "core/ops/expr.hpp"
#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/telemetry/trace.hpp"

namespace pyblaz::ops {

namespace {

/// One increment per lincomb call = one terminal rebin pass over the result.
/// Lives in the telemetry registry (visible in CC_STATS snapshots as
/// ops.lincomb.rebin_passes); ops::lincomb_rebin_passes() reads it.
telemetry::Counter& rebin_passes_counter() {
  static telemetry::Counter& counter =
      telemetry::counter("ops.lincomb.rebin_passes");
  return counter;
}

/// Calls bucketed by operand count: arities 1..7 get their own counter, the
/// tail shares one.  Resolved through a small static table so the hot path
/// never builds a name string.
telemetry::Counter& arity_counter(std::size_t num_operands) {
  static telemetry::Counter* const counters[] = {
      &telemetry::counter("ops.lincomb.arity1"),
      &telemetry::counter("ops.lincomb.arity2"),
      &telemetry::counter("ops.lincomb.arity3"),
      &telemetry::counter("ops.lincomb.arity4"),
      &telemetry::counter("ops.lincomb.arity5"),
      &telemetry::counter("ops.lincomb.arity6"),
      &telemetry::counter("ops.lincomb.arity7"),
      &telemetry::counter("ops.lincomb.arity8plus"),
  };
  return *counters[std::min<std::size_t>(num_operands, 8) - 1];
}

}  // namespace

long lincomb_rebin_passes() {
  // Bit-compatible with the pre-telemetry atomic<long> accessor: monotonic,
  // relaxed, one tick per lincomb call.
  return static_cast<long>(rebin_passes_counter().value());
}

/// The fused expression kernel behind the whole compressed-arithmetic family:
/// gather every operand's specified coefficients per block, accumulate the
/// weighted sum into one reusable per-thread coefficient row, and rebin once
/// at the end.  A chained ops::add sequence pays one rebin — the only error
/// source of Table I addition — per binary op; an n-term lincomb pays exactly
/// one, so it is both fewer passes and a strictly tighter error bound.
CompressedArray lincomb(std::span<const CompressedArray* const> operands,
                        std::span<const double> weights, double bias) {
  if (operands.empty())
    throw std::invalid_argument("lincomb: at least one operand required");
  if (operands.size() != weights.size())
    throw std::invalid_argument(
        "lincomb: weights.size() must equal operands.size()");
  const CompressedArray& first = *operands[0];
  for (std::size_t i = 1; i < operands.size(); ++i)
    first.require_layout_match(*operands[i]);
  if (bias != 0.0) internal::require_dc(first, "lincomb bias");

  static telemetry::Counter& calls = telemetry::counter("ops.lincomb.calls");
  static telemetry::Histogram& wall =
      telemetry::histogram("ops.lincomb.wall_ns");
  calls.increment();
  arity_counter(operands.size()).increment();
  telemetry::ScopedLatency latency(wall);
  telemetry::TraceSpan span("ops.lincomb",
                            static_cast<std::uint64_t>(operands.size()));

  const index_t num_blocks = first.num_blocks();
  const index_t kept = first.kept_per_block();
  const index_t num_operands = static_cast<index_t>(operands.size());
  const double r = static_cast<double>(first.radius());
  const double bias_shift = bias * internal::dc_scale(first.block_shape);

  CompressedArray out = first;
  out.indices = BinIndices(first.index_type, first.indices.size());

  // Dispatch resolved once per lincomb call, outside the block loop: every
  // chunk then calls through plain function pointers (SIMD backends are
  // bit-identical to scalar, so results cannot depend on the host ISA).
  const kernels::KernelTable& table = kernels::active();

  out.indices.visit_mutable([&](auto* out_data) {
    using BinT = std::remove_cv_t<std::remove_pointer_t<decltype(out_data)>>;
    // Layout matching guarantees one shared index type, so a single dispatch
    // covers every operand's bin row.
    std::vector<const BinT*> bases(operands.size());
    for (std::size_t i = 0; i < operands.size(); ++i)
      operands[i]->indices.visit([&](const auto* f) {
        if constexpr (std::is_same_v<std::remove_cvref_t<decltype(*f)>, BinT>)
          bases[i] = f;
      });

    parallel::parallel_for(
        0, num_blocks, parallel::default_grain(num_blocks),
        [&](index_t begin, index_t end) {
          // The kept-size coefficient row is the hot allocation; it comes
          // from the per-thread workspace and is reused across every block,
          // chunk, and lincomb call on this thread.  The per-operand pointer
          // and scale rows are a few machine words per chunk.
          double* coeffs = pyblaz::internal::coefficient_workspace(
              static_cast<std::size_t>(kept));
          std::vector<const BinT*> rows(operands.size());
          std::vector<double> scales(operands.size());
          for (index_t kb = begin; kb < end; ++kb) {
            for (std::size_t i = 0; i < operands.size(); ++i) {
              rows[i] = bases[i] + kb * kept;
              scales[i] =
                  weights[i] * operands[i]->biggest[static_cast<std::size_t>(kb)] /
                  r;
            }
            kernels::bins<BinT>(table).decode_lincomb(
                rows.data(), scales.data(), num_operands, kept, coeffs);
            if (bias_shift != 0.0) coeffs[0] += bias_shift;
            out.biggest[static_cast<std::size_t>(kb)] = kernels::rebin_block(
                table, coeffs, kept, r, first.float_type,
                out_data + kb * kept);
          }
        });
  });
  rebin_passes_counter().increment();
  return out;
}

CompressedArray lincomb(
    std::initializer_list<std::pair<double, const CompressedArray*>> terms,
    double bias) {
  std::vector<const CompressedArray*> operands;
  std::vector<double> weights;
  operands.reserve(terms.size());
  weights.reserve(terms.size());
  for (const auto& [weight, array] : terms) {
    weights.push_back(weight);
    operands.push_back(array);
  }
  return lincomb(std::span<const CompressedArray* const>(operands),
                 std::span<const double>(weights), bias);
}

CompressedArray linear_combination(double alpha, const CompressedArray& a,
                                   double beta, const CompressedArray& b) {
  // A two-term expression: flattens to the identical lincomb call.
  return (alpha * a + beta * b).eval();
}

}  // namespace pyblaz::ops
