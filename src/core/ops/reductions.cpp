#include <cmath>
#include <utility>

#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"
#include "core/parallel/thread_pool.hpp"

namespace pyblaz::ops {

namespace {

/// Σ over blocks of N_k F_k[0] / r: the DC accumulation shared by mean(),
/// sum(), and the centering prologue of the inner products.  An *ordered*
/// parallel reduction — chunk partials combine in block order — so the
/// result is bit-identical at any thread count.
template <typename BinT>
double dc_total(const CompressedArray& a, const BinT* f) {
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  return parallel::parallel_reduce(
      index_t{0}, num_blocks, parallel::default_grain(num_blocks), 0.0,
      [&](index_t begin, index_t end, double acc) {
        for (index_t kb = begin; kb < end; ++kb)
          acc += a.biggest[static_cast<std::size_t>(kb)] *
                 static_cast<double>(f[kb * kept]) / r;
        return acc;
      },
      [](double x, double y) { return x + y; });
}

/// Σ(Ĉ1 ⊙ Ĉ2) over kept coefficients, optionally centering the DC
/// coefficients of both operands (used by both dot and covariance).
double coefficient_inner_product(const CompressedArray& a,
                                 const CompressedArray& b, bool center_dc) {
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());

  double total = 0.0;
  a.indices.visit([&](const auto* f1_data) {
    b.indices.visit([&](const auto* f2_data) {
      double mean_dc_a = 0.0, mean_dc_b = 0.0;
      if (center_dc) {
        // (Σ Ĉ...1) ⊘ c with c = prod(ceil(s ⊘ i)) = number of blocks
        // (Algorithm 8).
        mean_dc_a = dc_total(a, f1_data) / static_cast<double>(num_blocks);
        mean_dc_b = dc_total(b, f2_data) / static_cast<double>(num_blocks);
      }

      // Ordered reduction: per-chunk partials combine in block order, so the
      // floating-point result is independent of the thread count (unlike an
      // OpenMP `reduction(+)`, whose combine order is scheduling-dependent).
      total = parallel::parallel_reduce(
          index_t{0}, num_blocks, parallel::default_grain(num_blocks), 0.0,
          [&](index_t begin, index_t end, double acc) {
            for (index_t kb = begin; kb < end; ++kb) {
              const double s1 = a.biggest[static_cast<std::size_t>(kb)] / r;
              const double s2 = b.biggest[static_cast<std::size_t>(kb)] / r;
              const auto* f1 = f1_data + kb * kept;
              const auto* f2 = f2_data + kb * kept;
              double partial = 0.0;
              for (index_t slot = 0; slot < kept; ++slot) {
                double c1 = s1 * static_cast<double>(f1[slot]);
                double c2 = s2 * static_cast<double>(f2[slot]);
                if (center_dc && slot == 0) {
                  c1 -= mean_dc_a;
                  c2 -= mean_dc_b;
                }
                partial += c1 * c2;
              }
              acc += partial;
            }
            return acc;
          },
          [](double x, double y) { return x + y; });
    });
  });
  return total;
}

}  // namespace

double dot(const CompressedArray& a, const CompressedArray& b) {
  a.require_layout_match(b);
  return coefficient_inner_product(a, b, /*center_dc=*/false);
}

double mean(const CompressedArray& a) {
  internal::require_dc(a, "mean");
  const double total_dc =
      a.indices.visit([&](const auto* f) { return dc_total(a, f); });
  // mean(Ĉ...1) ⊘ sqrt(prod(i)) (Algorithm 7).
  return total_dc / static_cast<double>(a.num_blocks()) /
         internal::dc_scale(a.block_shape);
}

double covariance(const CompressedArray& a, const CompressedArray& b) {
  a.require_layout_match(b);
  internal::require_dc(a, "covariance");
  // mean(Ĉ1 ⊙ Ĉ2) over all (padded) positions; pruned slots contribute zero
  // to the numerator but still count in the denominator.
  const double padded_volume = static_cast<double>(
      a.num_blocks() * a.block_shape.volume());
  return coefficient_inner_product(a, b, /*center_dc=*/true) / padded_volume;
}

double variance(const CompressedArray& a) { return covariance(a, a); }

double standard_deviation(const CompressedArray& a) {
  return std::sqrt(variance(a));
}

double l2_norm(const CompressedArray& a) {
  return std::sqrt(coefficient_inner_product(a, a, /*center_dc=*/false));
}

double cosine_similarity(const CompressedArray& a, const CompressedArray& b) {
  const double m = l2_norm(a) * l2_norm(b);
  return dot(a, b) / m;
}

double sum(const CompressedArray& a) {
  internal::require_dc(a, "sum");
  const double total_dc =
      a.indices.visit([&](const auto* f) { return dc_total(a, f); });
  // Block sum = block mean * prod(i) = DC * sqrt(prod(i)); padding zeros
  // contribute nothing, so this is the true-element sum.
  return total_dc * internal::dc_scale(a.block_shape);
}

double mean_unpadded(const CompressedArray& a) {
  return sum(a) / static_cast<double>(a.shape.volume());
}

double covariance_unpadded(const CompressedArray& a, const CompressedArray& b) {
  a.require_layout_match(b);
  internal::require_dc(a, "covariance");
  const double n = static_cast<double>(a.shape.volume());
  // E[AB] - E[A]E[B]; dot() ignores padding because zero products vanish.
  return dot(a, b) / n - mean_unpadded(a) * mean_unpadded(b);
}

double variance_unpadded(const CompressedArray& a) {
  return covariance_unpadded(a, a);
}

}  // namespace pyblaz::ops
