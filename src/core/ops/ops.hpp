#pragma once

#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "core/codec/compressed_array.hpp"
#include "core/ndarray/ndarray.hpp"

namespace pyblaz::ops {

/// Compressed-space operations (§IV, Table I).  All operate directly on the
/// compressed representation {s, i, N, F}; none decompresses.  Binary
/// operations require both operands to share shape, block shape, types,
/// transform, and pruning mask (they throw std::invalid_argument otherwise).
///
/// Error characteristics (Table I):
///  - negation, scalar multiplication: no additional error,
///  - element-wise addition, scalar addition: rebinning error only,
///  - dot, mean, covariance, variance, L2 norm, cosine similarity, SSIM:
///    no additional error beyond compression error,
///  - Wasserstein distance: approximation error as a function of block size.

/// Ĉ (Algorithm 3): the specified coefficients N ⊙ F ⊘ r, laid out as
/// num_blocks() * kept_per_block() in block-major, kept-slot-minor order.
std::vector<double> specified_coefficients(const CompressedArray& a);

/// Decode Ĉ into caller-provided storage (same layout as
/// specified_coefficients) so hot callers can reuse one buffer across calls
/// instead of paying a fresh allocation each time.  @p out must hold at least
/// num_blocks() * kept_per_block() doubles (throws std::invalid_argument
/// otherwise).
void specified_coefficients_into(const CompressedArray& a,
                                 std::span<double> out);

/// Algorithm 1: -A, by negating F.  Exact.
CompressedArray negate(const CompressedArray& a);

/// Algorithm 2: A + B element-wise.  Sums specified coefficients and rebins
/// against the new per-block biggest coefficient (the only error source).
CompressedArray add(const CompressedArray& a, const CompressedArray& b);

/// A - B = A + (-B): the compressed-space "difference" used by the paper's
/// shallow-water experiment (§V-A).
CompressedArray subtract(const CompressedArray& a, const CompressedArray& b);

/// Algorithm 4: A + x for scalar x, by shifting each block's first (DC)
/// coefficient by x * sqrt(prod(i)) and rebinning.  Requires the DC
/// coefficient to be unpruned.
CompressedArray add_scalar(const CompressedArray& a, double x);

/// Algorithm 5: A * x for scalar x, by scaling N by |x| and flipping F's sign
/// if x < 0.  Exact (no rebinning).
CompressedArray multiply_scalar(const CompressedArray& a, double x);

/// Algorithm 6: the dot product Σ(Ĉ1 ⊙ Ĉ2), equal to the uncompressed dot
/// product because the orthonormal transform preserves dot products.
double dot(const CompressedArray& a, const CompressedArray& b);

/// Algorithm 7: the array mean, mean(Ĉ...1) / sqrt(prod(i)).  Exact when the
/// array shape is a multiple of the block shape; the zero padding of ragged
/// edges otherwise leaks into the blockwise means (the compressed form cannot
/// distinguish stored zeros from padding).
double mean(const CompressedArray& a);

/// Algorithm 8: the (population) covariance of A and B, via centered
/// coefficients.
double covariance(const CompressedArray& a, const CompressedArray& b);

/// Algorithm 9: the (population) variance, Covariance(A, A).
double variance(const CompressedArray& a);

/// sqrt(variance).
double standard_deviation(const CompressedArray& a);

/// Algorithm 10: ‖A‖₂ = ‖Ĉ‖₂ (orthonormality).
double l2_norm(const CompressedArray& a);

/// Algorithm 11: cosine similarity dot(A,B) / (‖A‖₂ ‖B‖₂).
double cosine_similarity(const CompressedArray& a, const CompressedArray& b);

/// Parameters of Algorithm 12 (SSIM).  Defaults follow the SSIM convention
/// C1 = (0.01 L)², C2 = (0.03 L)² for data range L = 1.
struct SsimParams {
  double luminance_stabilizer = 1e-4;   ///< s_l.
  double contrast_stabilizer = 9e-4;    ///< s_c (the structure term uses s_c/2).
  double luminance_weight = 1.0;        ///< w_l.
  double contrast_weight = 1.0;         ///< w_c.
  double structure_weight = 1.0;        ///< w_s.
};

/// Algorithm 12: global structural similarity l^wl * c^wc * s^ws built from
/// compressed-space mean/variance/covariance.
double structural_similarity(const CompressedArray& a, const CompressedArray& b,
                             const SsimParams& params = {});

/// Spatially resolved SSIM (extension): Algorithm 12 evaluated per block from
/// the blockwise mean/variance/covariance, yielding an array shaped
/// ceil(s ⊘ i) — the compressed-space analog of the windowed SSIM map used
/// in image quality assessment, with the block shape as the window.  Values
/// near 1 mean the corresponding region is unchanged; the map localizes
/// degradation the global score averages away.
NDArray<double> structural_similarity_map(const CompressedArray& a,
                                          const CompressedArray& b,
                                          const SsimParams& params = {});

/// Algorithm 13: approximate p-order Wasserstein distance between the
/// blockwise-mean approximations of A and B.  Arrays that do not already sum
/// to 1 are pushed through softmax first.  @p stable selects a log-domain
/// evaluation that survives large p (p ≳ 40 underflows the naive form —
/// matching the paper's observation that all peaks vanish for p ≥ 80);
/// stable = false reproduces the naive arithmetic.
double wasserstein_distance(const CompressedArray& a, const CompressedArray& b,
                            double p, bool stable = true);

/// Block-wise mean (§IV-A 6): an array shaped ceil(s ⊘ i) of block means,
/// Ĉ...1 / sqrt(prod(i)).  This is the coarse proxy Algorithm 13 is built on.
NDArray<double> blockwise_mean(const CompressedArray& a);

/// Block-wise (population) variance (§IV-A 8), computed from each block's
/// centered coefficients.
NDArray<double> blockwise_variance(const CompressedArray& a);

/// Block-wise standard deviation: sqrt of blockwise_variance.
NDArray<double> blockwise_standard_deviation(const CompressedArray& a);

/// Block-wise covariance of A and B (§IV-A 7).
NDArray<double> blockwise_covariance(const CompressedArray& a,
                                     const CompressedArray& b);

// ---------------------------------------------------------------------------
// Extensions beyond the paper: padding-corrected statistics.
//
// The paper's mean/covariance (Algorithms 7 and 8) average over the *padded*
// array, so ragged shapes bias them (§IV-A).  But two quantities are immune
// to zero padding: the element sum (padding contributes zero to every block's
// DC coefficient) and the dot product (zero times anything is zero).  The
// operations below rebuild the statistics from those, so they converge to the
// true values for any shape — still entirely in compressed space.
// ---------------------------------------------------------------------------

/// Σ A over the true (uncropped) elements: sqrt(prod(i)) * Σ DC_k.  Exact
/// under padding; requires the DC coefficient.
double sum(const CompressedArray& a);

/// Padding-corrected mean: sum / prod(s).  Coincides with mean() on
/// divisible shapes.
double mean_unpadded(const CompressedArray& a);

/// Padding-corrected covariance: dot(A, B)/prod(s) - mean(A) mean(B).
double covariance_unpadded(const CompressedArray& a, const CompressedArray& b);

/// Padding-corrected variance: dot(A, A)/prod(s) - mean(A)^2.
double variance_unpadded(const CompressedArray& a);

// ---------------------------------------------------------------------------
// Extensions beyond the paper: derived metrics and mixed-domain operations.
// All are compositions of the Table I primitives, so they inherit the same
// error characteristics.
// ---------------------------------------------------------------------------

/// Fused n-ary linear combination with a single terminal rebin:
/// Σ_i weights[i] * operands[i] + bias, evaluated entirely in compressed
/// space.  Per block, all operands' specified coefficients accumulate into
/// one reusable per-thread row and the result rebins **once** — where the
/// equivalent chained add/multiply_scalar sequence pays one rebin (the only
/// error source of Table I addition) per binary op.  An n-term update is
/// therefore both one pass instead of n and carries a strictly tighter error
/// bound.  @p bias shifts the DC coefficient like add_scalar (requires the
/// DC coefficient to be kept when nonzero).  All operands must share the
/// layout of operands[0]; weights.size() must equal operands.size() and be
/// at least 1.  add/subtract/add_scalar/linear_combination are thin wrappers
/// over this kernel and quantize bit-identically to it.
CompressedArray lincomb(std::span<const CompressedArray* const> operands,
                        std::span<const double> weights, double bias = 0.0);

/// Brace-friendly lincomb: ops::lincomb({{1.0, &a}, {-dt, &b}}, bias).
CompressedArray lincomb(
    std::initializer_list<std::pair<double, const CompressedArray*>> terms,
    double bias = 0.0);

/// One expression of a batch: Σ_i weights[i] * operands[i] + bias, the same
/// term list a single lincomb call takes.  Non-owning views — the arrays and
/// the weight storage must outlive the lincomb_batch call.
struct LincombRequest {
  std::span<const CompressedArray* const> operands;
  std::span<const double> weights;
  double bias = 0.0;
};

/// Batched multi-expression evaluation: evaluate every request in ONE blocked
/// pass, decoding each *distinct* operand's coefficient row once per block
/// and fanning it into all K output rows through the multi-output kernel
/// (kernels::decode_lincomb_multi), then finishing each output with its own
/// terminal rebin.  Per block, int->double bin decodes fall from Σ_k arity_k
/// to the number of distinct operands — the request-batching amortization the
/// service layer coalesces concurrent expressions for.
///
/// Outputs are bit-identical to calling ops::lincomb(requests[k]) one at a
/// time, at any thread count, shard count, kernel backend, or cache capacity;
/// results[k] corresponds to requests[k].  Operands are deduplicated by
/// pointer — two requests share a decode only when they reference the same
/// CompressedArray object.  Batches of one request, or batches whose
/// requests share nothing, fall back to sequential per-request evaluation
/// (same bits, no amortization).  Every request's operands must share the
/// layout of the first request's first operand; a request with a nonzero
/// bias requires the DC coefficient, like lincomb.  Operands with unflushed
/// dirty cached blocks are rejected (std::logic_error): the raw archive
/// fields this pass reads don't reflect those writes yet — flush_cache()
/// first.  Rebin accounting: a K-request batch performs exactly K terminal
/// rebin passes (lincomb_rebin_passes() advances by K, fused or fallback).
std::vector<CompressedArray> lincomb_batch(
    std::span<const LincombRequest> requests);

/// Process-wide count of terminal rebin passes performed by ops::lincomb —
/// exactly one per call, which is the fused pipeline's defining property.
/// Everything that routes through lincomb (add, subtract, add_scalar,
/// linear_combination, and every expression-template evaluation from
/// core/ops/expr.hpp) bumps it once; the exact rebin-free operations
/// (negate, multiply_scalar) never do.  Monotonic and thread-safe; intended
/// for rebin-count accounting in tests and diagnostics — take a delta around
/// the region of interest.
long lincomb_rebin_passes();

/// α A + β B in one fused pass (generalizes Algorithm 2; rebinning is the
/// only error source).  Layouts must match.  Equivalent to the 2-operand
/// lincomb.
CompressedArray linear_combination(double alpha, const CompressedArray& a,
                                   double beta, const CompressedArray& b);

/// Mean squared error between A and B over the true element count:
/// (‖A‖² - 2<A,B> + ‖B‖²) / prod(s).  No additional error beyond compression.
double mean_squared_error(const CompressedArray& a, const CompressedArray& b);

/// Peak signal-to-noise ratio, 10 log10(peak² / MSE), in dB.  @p peak is the
/// data range (1.0 for normalized data).  Returns +inf for identical arrays.
double psnr(const CompressedArray& a, const CompressedArray& b,
            double peak = 1.0);

/// Pearson correlation coefficient: covariance / (σ_A σ_B) (padding-corrected
/// statistics, so it is meaningful on ragged shapes too).
double pearson_correlation(const CompressedArray& a, const CompressedArray& b);

/// Block-wise L2 norms: an array shaped ceil(s ⊘ i) whose entry k is the L2
/// norm of block k, sqrt(Σ Ĉ_k²) (orthonormality per block).
NDArray<double> blockwise_l2_norm(const CompressedArray& a);

/// Mixed-domain dot product: <A, y> where A is compressed and y is a raw
/// array of the same shape.  Blocks of y are transformed on the fly and
/// contracted with A's specified coefficients — no decompression of A, no
/// compression of y.  Useful for applying fixed analysis weights (quadrature
/// rules, filters) to compressed data.  @p impl selects the transform
/// implementation for y's on-the-fly transform (pass TransformImpl::kDense
/// to keep an all-dense debugging baseline consistent).
double dot(const CompressedArray& a, const NDArray<double>& y,
           TransformImpl impl = TransformImpl::kAuto);

}  // namespace pyblaz::ops
