#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/codec/workspace.hpp"
#include "core/kernels/backend.hpp"
#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/telemetry/telemetry.hpp"
#include "core/telemetry/trace.hpp"

namespace pyblaz::ops {

namespace {

/// Validated, deduplicated view of a request batch: the distinct operand set
/// plus every request's term list flattened into (row index, weight) arrays
/// with prefix offsets — exactly the layout kernels::decode_lincomb_multi
/// consumes.
struct BatchPlan {
  std::vector<const CompressedArray*> distinct;
  std::vector<index_t> term_rows;    ///< distinct[] index per term.
  std::vector<double> term_weights;  ///< weight per term.
  std::vector<index_t> offsets;     ///< requests.size() + 1 prefix offsets.
  std::vector<double> bias_shifts;  ///< DC shift per request.
};

BatchPlan plan_batch(std::span<const LincombRequest> requests) {
  for (const LincombRequest& req : requests) {
    if (req.operands.empty())
      throw std::invalid_argument(
          "lincomb_batch: every request needs at least one operand");
    if (req.operands.size() != req.weights.size())
      throw std::invalid_argument(
          "lincomb_batch: weights.size() must equal operands.size()");
  }
  const CompressedArray& first = *requests[0].operands[0];
  BatchPlan plan;
  plan.offsets.reserve(requests.size() + 1);
  plan.offsets.push_back(0);
  plan.bias_shifts.reserve(requests.size());
  std::unordered_map<const CompressedArray*, index_t> row_of;
  for (const LincombRequest& req : requests) {
    if (req.bias != 0.0) internal::require_dc(first, "lincomb_batch bias");
    for (std::size_t i = 0; i < req.operands.size(); ++i) {
      const CompressedArray* operand = req.operands[i];
      first.require_layout_match(*operand);
      if (operand->dirty_cached_blocks() > 0)
        throw std::logic_error(
            "lincomb_batch: operand has unflushed dirty cached blocks; call "
            "flush_cache() so the archive fields reflect the writes");
      auto [it, inserted] =
          row_of.try_emplace(operand, static_cast<index_t>(plan.distinct.size()));
      if (inserted) plan.distinct.push_back(operand);
      plan.term_rows.push_back(it->second);
      plan.term_weights.push_back(req.weights[i]);
    }
    plan.offsets.push_back(static_cast<index_t>(plan.term_rows.size()));
    plan.bias_shifts.push_back(req.bias *
                               internal::dc_scale(first.block_shape));
  }
  return plan;
}

/// A result array with the layout of @p first and a fresh (zero) bin buffer.
/// Deliberately NOT `CompressedArray out = first`: that would copy the whole
/// bin payload only to immediately replace it — per output, per call.
CompressedArray make_output(const CompressedArray& first) {
  CompressedArray out;
  out.shape = first.shape;
  out.block_shape = first.block_shape;
  out.float_type = first.float_type;
  out.index_type = first.index_type;
  out.transform = first.transform;
  out.mask = first.mask;
  out.biggest.resize(first.biggest.size());
  out.indices = BinIndices(first.index_type, first.indices.size());
  return out;
}

}  // namespace

std::vector<CompressedArray> lincomb_batch(
    std::span<const LincombRequest> requests) {
  if (requests.empty()) return {};

  static telemetry::Counter& calls =
      telemetry::counter("ops.lincomb_batch.calls");
  static telemetry::Counter& expressions =
      telemetry::counter("ops.lincomb_batch.expressions");
  static telemetry::Counter& operands_distinct =
      telemetry::counter("ops.lincomb_batch.operands_distinct");
  static telemetry::Counter& decodes_avoided =
      telemetry::counter("ops.lincomb_batch.decodes_avoided");
  static telemetry::Counter& rebin_passes =
      telemetry::counter("ops.lincomb.rebin_passes");
  static telemetry::Histogram& wall =
      telemetry::histogram("ops.lincomb_batch.wall_ns");

  calls.increment();
  expressions.add(requests.size());
  telemetry::ScopedLatency latency(wall);
  telemetry::TraceSpan span("ops.lincomb_batch",
                            static_cast<std::uint64_t>(requests.size()));

  BatchPlan plan = plan_batch(requests);
  operands_distinct.add(plan.distinct.size());

  const std::size_t num_requests = requests.size();
  const std::size_t total_terms = plan.term_rows.size();
  const index_t num_rows = static_cast<index_t>(plan.distinct.size());

  // Nothing shared (or nothing to share against): sequential per-request
  // evaluation IS the batch semantics, so just run it.  lincomb bumps the
  // rebin-pass counter once per request itself.
  if (num_requests == 1 || total_terms == static_cast<std::size_t>(num_rows)) {
    std::vector<CompressedArray> results;
    results.reserve(num_requests);
    for (const LincombRequest& req : requests)
      results.push_back(lincomb(req.operands, req.weights, req.bias));
    return results;
  }

  const CompressedArray& first = *requests[0].operands[0];
  const index_t num_blocks = first.num_blocks();
  const index_t kept = first.kept_per_block();
  const index_t num_outputs = static_cast<index_t>(num_requests);
  const double r = static_cast<double>(first.radius());

  // Every term beyond the distinct set would have been a separate bin-row
  // decode in the sequential path, once per block.
  decodes_avoided.add(
      static_cast<std::uint64_t>(total_terms - plan.distinct.size()) *
      static_cast<std::uint64_t>(num_blocks));

  std::vector<CompressedArray> results;
  results.reserve(num_requests);
  for (std::size_t k = 0; k < num_requests; ++k)
    results.push_back(make_output(first));

  // Dispatch resolved once, outside the block loop, like lincomb.
  const kernels::KernelTable& table = kernels::active();

  results[0].indices.visit_mutable([&](auto* out0) {
    using BinT = std::remove_cv_t<std::remove_pointer_t<decltype(out0)>>;
    // One shared index type across operands and outputs (layout matching),
    // so a single dispatch covers every row.
    std::vector<const BinT*> bases(plan.distinct.size());
    for (std::size_t d = 0; d < plan.distinct.size(); ++d)
      plan.distinct[d]->indices.visit([&](const auto* f) {
        if constexpr (std::is_same_v<std::remove_cvref_t<decltype(*f)>, BinT>)
          bases[d] = f;
      });
    std::vector<BinT*> out_bases(num_requests);
    for (std::size_t k = 0; k < num_requests; ++k)
      results[k].indices.visit_mutable([&](auto* p) {
        if constexpr (std::is_same_v<std::remove_cvref_t<decltype(*p)>, BinT>)
          out_bases[k] = p;
      });

    // Per-term biggest-row base pointers, hoisted so the per-block scale loop
    // is two flat passes (gather + multiply, then a vectorizable divide)
    // instead of a pointer chase per term.
    std::vector<const double*> term_biggest(total_terms);
    for (std::size_t t = 0; t < total_terms; ++t)
      term_biggest[t] =
          plan.distinct[static_cast<std::size_t>(plan.term_rows[t])]
              ->biggest.data();

    parallel::parallel_for(
        0, num_blocks, parallel::default_grain(num_blocks),
        [&](index_t begin, index_t end) {
          // Lane 0: K coefficient rows the multi-kernel writes, one per
          // output.  Lane 1: the shared decode scratch — one full converted
          // double row per distinct operand (the kernel converts each row
          // once per block, then streams every output's passes over them).
          // Both come from the per-thread workspace and are reused across
          // blocks and chunks.
          double* coeffs = pyblaz::internal::coefficient_workspace(
              static_cast<std::size_t>(num_outputs) *
              static_cast<std::size_t>(kept));
          double* decoded = pyblaz::internal::coefficient_workspace(
              static_cast<std::size_t>(num_rows) *
                  static_cast<std::size_t>(kept),
              1);
          std::vector<const BinT*> rows(plan.distinct.size());
          std::vector<double> scales(total_terms);
          std::vector<double*> out_rows(num_requests);
          for (std::size_t k = 0; k < num_requests; ++k)
            out_rows[k] = coeffs + k * static_cast<std::size_t>(kept);
          for (index_t kb = begin; kb < end; ++kb) {
            for (std::size_t d = 0; d < plan.distinct.size(); ++d)
              rows[d] = bases[d] + kb * kept;
            // Same expression as lincomb's per-operand scale —
            // weights[i] * biggest[kb] / r, left to right — so the fused
            // pass rounds identically (the split multiply/divide loops keep
            // that order; the divide pass vectorizes, and IEEE division is
            // identical per lane).
            for (std::size_t t = 0; t < total_terms; ++t)
              scales[t] = plan.term_weights[t] *
                          term_biggest[t][static_cast<std::size_t>(kb)];
            for (std::size_t t = 0; t < total_terms; ++t)
              scales[t] = scales[t] / r;
            kernels::bins<BinT>(table).decode_lincomb_multi(
                rows.data(), num_rows, scales.data(), plan.term_rows.data(),
                plan.offsets.data(), num_outputs, kept, decoded,
                out_rows.data());
            for (std::size_t k = 0; k < num_requests; ++k) {
              if (plan.bias_shifts[k] != 0.0)
                out_rows[k][0] += plan.bias_shifts[k];
              results[k].biggest[static_cast<std::size_t>(kb)] =
                  kernels::rebin_block(table, out_rows[k], kept, r,
                                       first.float_type,
                                       out_bases[k] + kb * kept);
            }
          }
        });
  });
  // K terminal rebin passes — one per output, exactly as K lincomb calls
  // would have recorded.
  rebin_passes.add(num_requests);
  return results;
}

}  // namespace pyblaz::ops
