#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/codec/workspace.hpp"
#include "core/kernels/rebin.hpp"
#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/transform/block_transform.hpp"

namespace pyblaz::ops {

double mean_squared_error(const CompressedArray& a, const CompressedArray& b) {
  a.require_layout_match(b);
  // ‖A - B‖² = <A,A> - 2<A,B> + <B,B>, evaluated from the inner products
  // directly so identical operands cancel exactly.
  const double squared = dot(a, a) - 2.0 * dot(a, b) + dot(b, b);
  // Guard tiny negative residue from floating-point cancellation.
  return std::max(squared, 0.0) / static_cast<double>(a.shape.volume());
}

double psnr(const CompressedArray& a, const CompressedArray& b, double peak) {
  const double mse = mean_squared_error(a, b);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / mse);
}

double pearson_correlation(const CompressedArray& a, const CompressedArray& b) {
  const double cov = covariance_unpadded(a, b);
  const double sigma = std::sqrt(variance_unpadded(a) * variance_unpadded(b));
  return cov / sigma;
}

NDArray<double> blockwise_l2_norm(const CompressedArray& a) {
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  NDArray<double> out(a.block_grid());
  a.indices.visit([&](const auto* fdata) {
    parallel::parallel_for(
        0, num_blocks, parallel::default_grain(num_blocks),
        [&](index_t begin, index_t end) {
          for (index_t kb = begin; kb < end; ++kb) {
            const double scale = a.biggest[static_cast<std::size_t>(kb)] / r;
            const auto* f = fdata + kb * kept;
            double squares = 0.0;
            for (index_t slot = 0; slot < kept; ++slot) {
              const double c = scale * static_cast<double>(f[slot]);
              squares += c * c;
            }
            out[kb] = std::sqrt(squares);
          }
        });
  });
  return out;
}

double dot(const CompressedArray& a, const NDArray<double>& y,
           TransformImpl impl) {
  if (y.shape() != a.shape)
    throw std::invalid_argument("mixed-domain dot: shape mismatch");

  // Transform y's blocks on the fly and contract with A's specified
  // coefficients: <A, y> = <Ĉ_A, Ĉ_y> by orthonormality.  Reuses the
  // compressor's gather path via block_array for clarity; the per-block cost
  // matches one forward transform of y.
  BlockTransform transform(a.transform, a.block_shape, impl);
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const index_t block_volume = a.block_shape.volume();
  const auto& kept_offsets = a.mask.kept_offsets();
  const double r = static_cast<double>(a.radius());
  const Shape grid = a.block_grid();
  const std::vector<index_t> strides = y.shape().strides();
  const int d = y.shape().ndim();

  // Per-block work is a full forward transform, so chunks are small; the
  // ordered reduce keeps the sum bit-identical at any thread count.
  double total = 0.0;
  a.indices.visit([&](const auto* fdata) {
    total = parallel::parallel_reduce(
        index_t{0}, num_blocks, index_t{4}, 0.0,
        [&](index_t chunk_begin, index_t chunk_end, double acc) {
      // Gather and transform scratch from the per-thread workspace (two live
      // rows, hence two lanes; holding them across transform.forward is fine
      // — the transform layer is workspace-free by contract) instead of a
      // fresh allocation per chunk.
      double* block = pyblaz::internal::coefficient_workspace(
          static_cast<std::size_t>(block_volume), 0);
      double* scratch = pyblaz::internal::coefficient_workspace(
          static_cast<std::size_t>(block_volume), 1);
      index_t coords_stack[16];
      std::vector<index_t> coords_heap;
      index_t* block_coords = coords_stack;
      if (d > 16) {
        coords_heap.resize(static_cast<std::size_t>(d));
        block_coords = coords_heap.data();
      }
      for (index_t kb = chunk_begin; kb < chunk_end; ++kb) {
        // Gather block kb of y with zero padding.
        {
          index_t rem = kb;
          for (int axis = d - 1; axis >= 0; --axis) {
            block_coords[static_cast<std::size_t>(axis)] = rem % grid[axis];
            rem /= grid[axis];
          }
        }
        for (index_t j = 0; j < block_volume; ++j) {
          index_t rem = j;
          index_t src = 0;
          bool inside = true;
          for (int axis = d - 1; axis >= 0; --axis) {
            const index_t c = rem % a.block_shape[axis];
            rem /= a.block_shape[axis];
            const index_t coord =
                block_coords[static_cast<std::size_t>(axis)] * a.block_shape[axis] + c;
            if (coord >= y.shape()[axis]) {
              inside = false;
              break;
            }
            src += coord * strides[static_cast<std::size_t>(axis)];
          }
          block[static_cast<std::size_t>(j)] = inside ? y[src] : 0.0;
        }

        transform.forward(block, scratch);

        const double scale = a.biggest[static_cast<std::size_t>(kb)] / r;
        const auto* f = fdata + kb * kept;
        double partial = 0.0;
        for (index_t slot = 0; slot < kept; ++slot) {
          partial += scale * static_cast<double>(f[slot]) *
                     block[static_cast<std::size_t>(
                         kept_offsets[static_cast<std::size_t>(slot)])];
        }
        acc += partial;
      }
          return acc;
        },
        [](double u, double v) { return u + v; });
  });
  return total;
}

}  // namespace pyblaz::ops
