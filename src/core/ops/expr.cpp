#include "core/ops/expr.hpp"

#include <span>

#include "core/ops/ops.hpp"

namespace pyblaz::expr_detail {

CompressedArray eval_terms(const CompressedArray* const* operands,
                           const double* weights, std::size_t count,
                           double bias) {
  return ops::lincomb(std::span<const CompressedArray* const>(operands, count),
                      std::span<const double>(weights, count), bias);
}

}  // namespace pyblaz::expr_detail

namespace pyblaz {

std::vector<CompressedArray> BatchEval::eval() const {
  std::vector<ops::LincombRequest> requests;
  requests.reserve(requests_.size());
  for (const Request& req : requests_)
    requests.push_back({std::span<const CompressedArray* const>(
                            req.operands.data(), req.operands.size()),
                        std::span<const double>(req.weights), req.bias});
  return ops::lincomb_batch(std::span<const ops::LincombRequest>(requests));
}

}  // namespace pyblaz
