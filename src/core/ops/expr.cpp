#include "core/ops/expr.hpp"

#include <span>

#include "core/ops/ops.hpp"

namespace pyblaz::expr_detail {

CompressedArray eval_terms(const CompressedArray* const* operands,
                           const double* weights, std::size_t count,
                           double bias) {
  return ops::lincomb(std::span<const CompressedArray* const>(operands, count),
                      std::span<const double>(weights, count), bias);
}

}  // namespace pyblaz::expr_detail
