#include <algorithm>
#include <cmath>

#include "core/kernels/rebin.hpp"
#include "core/ops/expr.hpp"
#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"
#include "core/parallel/thread_pool.hpp"

namespace pyblaz::ops {

namespace internal {

std::vector<double> blockwise_mean_vector(const CompressedArray& a) {
  require_dc(a, "blockwise mean");
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  const double c = dc_scale(a.block_shape);
  std::vector<double> means(static_cast<std::size_t>(num_blocks));
  a.indices.visit([&](const auto* f) {
    parallel::parallel_for(
        0, num_blocks, parallel::default_grain(num_blocks),
        [&](index_t begin, index_t end) {
          for (index_t kb = begin; kb < end; ++kb) {
            const double dc = a.biggest[static_cast<std::size_t>(kb)] *
                              static_cast<double>(f[kb * kept]) / r;
            means[static_cast<std::size_t>(kb)] = dc / c;
          }
        });
  });
  return means;
}

}  // namespace internal

void specified_coefficients_into(const CompressedArray& a,
                                 std::span<double> out) {
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  if (out.size() < static_cast<std::size_t>(num_blocks * kept))
    throw std::invalid_argument(
        "specified_coefficients_into: output span too small");

  a.indices.visit([&](const auto* fdata) {
    parallel::parallel_for(
        0, num_blocks, parallel::default_grain(num_blocks),
        [&](index_t begin, index_t end) {
          for (index_t kb = begin; kb < end; ++kb)
            kernels::unbin_block(fdata + kb * kept, kept,
                                 a.biggest[static_cast<std::size_t>(kb)] / r,
                                 out.data() + kb * kept);
        });
  });
}

std::vector<double> specified_coefficients(const CompressedArray& a) {
  std::vector<double> coefficients(
      static_cast<std::size_t>(a.num_blocks() * a.kept_per_block()));
  specified_coefficients_into(a, coefficients);
  return coefficients;
}

CompressedArray negate(const CompressedArray& a) {
  CompressedArray out = a;
  out.indices.negate_all();
  return out;
}

CompressedArray add(const CompressedArray& a, const CompressedArray& b) {
  // Ĉ = F1 ⊙ N1 ⊘ r + F2 ⊙ N2 ⊘ r (specified coefficients of the sum),
  // summed and re-binned block by block: the unit-weight two-term expression,
  // which flattens to exactly one fused lincomb.
  return (a + b).eval();
}

CompressedArray subtract(const CompressedArray& a, const CompressedArray& b) {
  // A - B as a single fused pass: the -1 weight folds b's negation into the
  // decode scale, so no negated copy of b is ever materialized.
  return (a - b).eval();
}

CompressedArray add_scalar(const CompressedArray& a, double x) {
  // Unconditional even for x = 0, matching the documented contract (the
  // expression itself only demands the DC coefficient for a nonzero bias).
  internal::require_dc(a, "scalar addition");
  // The unary lincomb: decode, DC-shift by x * sqrt(prod(i)), rebin once.
  return (a + x).eval();
}

CompressedArray multiply_scalar(const CompressedArray& a, double x) {
  CompressedArray out = a;
  const double magnitude = std::fabs(x);
  for (auto& n : out.biggest) n = quantize(n * magnitude, a.float_type);
  if (std::signbit(x)) out.indices.negate_all();
  return out;
}

}  // namespace pyblaz::ops
