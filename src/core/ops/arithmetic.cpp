#include <algorithm>
#include <cmath>

#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"

namespace pyblaz::ops {

namespace internal {

void rebin(const std::vector<double>& coefficients, index_t num_blocks,
           index_t kept, FloatType float_type, IndexType index_type,
           std::vector<double>& biggest_out, BinIndices& indices_out) {
  const double r = static_cast<double>(arithmetic_radius(index_type));
  biggest_out.resize(static_cast<std::size_t>(num_blocks));
  indices_out =
      BinIndices(index_type, static_cast<std::size_t>(num_blocks * kept));

  indices_out.visit_mutable([&](auto* out_data) {
#pragma omp parallel for
    for (index_t kb = 0; kb < num_blocks; ++kb) {
      const double* c = coefficients.data() + kb * kept;
      double biggest = 0.0;
      for (index_t slot = 0; slot < kept; ++slot)
        biggest = std::max(biggest, std::fabs(c[slot]));
      biggest = quantize(biggest, float_type);
      biggest_out[static_cast<std::size_t>(kb)] = biggest;

      auto* f = out_data + kb * kept;
      using BinT = std::remove_reference_t<decltype(f[0])>;
      if (biggest == 0.0) {
        std::fill(f, f + kept, BinT{0});
      } else {
        const double inv = r / biggest;
        for (index_t slot = 0; slot < kept; ++slot) {
          const double scaled = std::clamp(std::round(c[slot] * inv), -r, r);
          f[slot] = static_cast<BinT>(scaled);
        }
      }
    }
  });
}

std::vector<double> blockwise_mean_vector(const CompressedArray& a) {
  require_dc(a, "blockwise mean");
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  const double c = dc_scale(a.block_shape);
  std::vector<double> means(static_cast<std::size_t>(num_blocks));
  a.indices.visit([&](const auto* f) {
    for (index_t kb = 0; kb < num_blocks; ++kb) {
      const double dc = a.biggest[static_cast<std::size_t>(kb)] *
                        static_cast<double>(f[kb * kept]) / r;
      means[static_cast<std::size_t>(kb)] = dc / c;
    }
  });
  return means;
}

}  // namespace internal

std::vector<double> specified_coefficients(const CompressedArray& a) {
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  std::vector<double> coefficients(static_cast<std::size_t>(num_blocks * kept));

  a.indices.visit([&](const auto* fdata) {
#pragma omp parallel for
    for (index_t kb = 0; kb < num_blocks; ++kb) {
      const double scale = a.biggest[static_cast<std::size_t>(kb)] / r;
      const auto* f = fdata + kb * kept;
      double* c = coefficients.data() + kb * kept;
      for (index_t slot = 0; slot < kept; ++slot)
        c[slot] = scale * static_cast<double>(f[slot]);
    }
  });
  return coefficients;
}

CompressedArray negate(const CompressedArray& a) {
  CompressedArray out = a;
  out.indices.negate_all();
  return out;
}

CompressedArray add(const CompressedArray& a, const CompressedArray& b) {
  a.require_layout_match(b);
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());

  CompressedArray out = a;
  out.indices = BinIndices(a.index_type, a.indices.size());

  // Ĉ = F1 ⊙ N1 ⊘ r + F2 ⊙ N2 ⊘ r (specified coefficients of the sum),
  // summed and re-binned block by block so no whole-array coefficient
  // buffer is materialized.
  a.indices.visit([&](const auto* f1_data) {
    b.indices.visit([&](const auto* f2_data) {
      out.indices.visit_mutable([&](auto* out_data) {
#pragma omp parallel
        {
          std::vector<double> coeffs(static_cast<std::size_t>(kept));
#pragma omp for
          for (index_t kb = 0; kb < num_blocks; ++kb) {
            const double s1 = a.biggest[static_cast<std::size_t>(kb)] / r;
            const double s2 = b.biggest[static_cast<std::size_t>(kb)] / r;
            const auto* f1 = f1_data + kb * kept;
            const auto* f2 = f2_data + kb * kept;
            double biggest = 0.0;
            for (index_t slot = 0; slot < kept; ++slot) {
              const double c = s1 * static_cast<double>(f1[slot]) +
                               s2 * static_cast<double>(f2[slot]);
              coeffs[static_cast<std::size_t>(slot)] = c;
              biggest = std::max(biggest, std::fabs(c));
            }
            biggest = quantize(biggest, a.float_type);
            out.biggest[static_cast<std::size_t>(kb)] = biggest;

            auto* f = out_data + kb * kept;
            using BinT = std::remove_reference_t<decltype(f[0])>;
            if (biggest == 0.0) {
              std::fill(f, f + kept, BinT{0});
            } else {
              const double inv = r / biggest;
              for (index_t slot = 0; slot < kept; ++slot) {
                const double scaled = std::clamp(
                    std::round(coeffs[static_cast<std::size_t>(slot)] * inv), -r, r);
                f[slot] = static_cast<BinT>(scaled);
              }
            }
          }
        }
      });
    });
  });
  return out;
}

CompressedArray subtract(const CompressedArray& a, const CompressedArray& b) {
  return add(a, negate(b));
}

CompressedArray add_scalar(const CompressedArray& a, double x) {
  internal::require_dc(a, "scalar addition");
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();

  std::vector<double> coefficients = specified_coefficients(a);
  const double shift = x * internal::dc_scale(a.block_shape);
  for (index_t kb = 0; kb < num_blocks; ++kb)
    coefficients[static_cast<std::size_t>(kb * kept)] += shift;

  CompressedArray out = a;
  internal::rebin(coefficients, num_blocks, kept, a.float_type, a.index_type,
                  out.biggest, out.indices);
  return out;
}

CompressedArray multiply_scalar(const CompressedArray& a, double x) {
  CompressedArray out = a;
  const double magnitude = std::fabs(x);
  for (auto& n : out.biggest) n = quantize(n * magnitude, a.float_type);
  if (std::signbit(x)) out.indices.negate_all();
  return out;
}

}  // namespace pyblaz::ops
