#include <algorithm>
#include <cmath>

#include "core/kernels/rebin.hpp"
#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"
#include "core/parallel/thread_pool.hpp"

namespace pyblaz::ops {

namespace internal {

std::vector<double> blockwise_mean_vector(const CompressedArray& a) {
  require_dc(a, "blockwise mean");
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  const double c = dc_scale(a.block_shape);
  std::vector<double> means(static_cast<std::size_t>(num_blocks));
  a.indices.visit([&](const auto* f) {
    parallel::parallel_for(
        0, num_blocks, parallel::default_grain(num_blocks),
        [&](index_t begin, index_t end) {
          for (index_t kb = begin; kb < end; ++kb) {
            const double dc = a.biggest[static_cast<std::size_t>(kb)] *
                              static_cast<double>(f[kb * kept]) / r;
            means[static_cast<std::size_t>(kb)] = dc / c;
          }
        });
  });
  return means;
}

}  // namespace internal

std::vector<double> specified_coefficients(const CompressedArray& a) {
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  std::vector<double> coefficients(static_cast<std::size_t>(num_blocks * kept));

  a.indices.visit([&](const auto* fdata) {
    parallel::parallel_for(
        0, num_blocks, parallel::default_grain(num_blocks),
        [&](index_t begin, index_t end) {
          for (index_t kb = begin; kb < end; ++kb)
            kernels::unbin_block(fdata + kb * kept, kept,
                                 a.biggest[static_cast<std::size_t>(kb)] / r,
                                 coefficients.data() + kb * kept);
        });
  });
  return coefficients;
}

CompressedArray negate(const CompressedArray& a) {
  CompressedArray out = a;
  out.indices.negate_all();
  return out;
}

CompressedArray add(const CompressedArray& a, const CompressedArray& b) {
  // Ĉ = F1 ⊙ N1 ⊘ r + F2 ⊙ N2 ⊘ r (specified coefficients of the sum),
  // summed and re-binned block by block: exactly the alpha = beta = 1 case of
  // the fused linear-combination kernel pipeline.
  return linear_combination(1.0, a, 1.0, b);
}

CompressedArray subtract(const CompressedArray& a, const CompressedArray& b) {
  return add(a, negate(b));
}

CompressedArray add_scalar(const CompressedArray& a, double x) {
  internal::require_dc(a, "scalar addition");
  const index_t num_blocks = a.num_blocks();
  const index_t kept = a.kept_per_block();
  const double r = static_cast<double>(a.radius());
  const double shift = x * internal::dc_scale(a.block_shape);

  CompressedArray out = a;
  out.indices = BinIndices(a.index_type, a.indices.size());

  // Decode, DC-shift, and rebin one block at a time (the streaming structure
  // of add()) instead of materializing a whole-array coefficient buffer.
  a.indices.visit([&](const auto* fdata) {
    out.indices.visit_mutable([&](auto* out_data) {
      parallel::parallel_for(
          0, num_blocks, parallel::default_grain(num_blocks),
          [&](index_t begin, index_t end) {
            std::vector<double> coeffs(static_cast<std::size_t>(kept));
            for (index_t kb = begin; kb < end; ++kb) {
              kernels::unbin_block(fdata + kb * kept, kept,
                                   a.biggest[static_cast<std::size_t>(kb)] / r,
                                   coeffs.data());
              // require_dc guarantees the DC slot is slot 0.
              coeffs[0] += shift;
              out.biggest[static_cast<std::size_t>(kb)] = kernels::rebin_block(
                  coeffs.data(), kept, r, a.float_type, out_data + kb * kept);
            }
          });
    });
  });
  return out;
}

CompressedArray multiply_scalar(const CompressedArray& a, double x) {
  CompressedArray out = a;
  const double magnitude = std::fabs(x);
  for (auto& n : out.biggest) n = quantize(n * magnitude, a.float_type);
  if (std::signbit(x)) out.indices.negate_all();
  return out;
}

}  // namespace pyblaz::ops
