#include <algorithm>
#include <cmath>
#include <limits>

#include "core/ops/ops.hpp"
#include "core/ops/ops_internal.hpp"

namespace pyblaz::ops {

namespace {

/// softmax(X) = e^X / Σ e^X, evaluated with the usual max-shift so large
/// negative-log-density values cannot overflow.
void softmax_inplace(std::vector<double>& values) {
  double biggest = -std::numeric_limits<double>::infinity();
  for (double v : values) biggest = std::max(biggest, v);
  double total = 0.0;
  for (double& v : values) {
    v = std::exp(v - biggest);
    total += v;
  }
  for (double& v : values) v /= total;
}

bool sums_to_one(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v;
  return std::fabs(total - 1.0) <= 1e-9;
}

/// (Σ |pa_i - pb_i|^p / n)^(1/p) evaluated in the log domain: underflow-free
/// for the large orders (p = 68, 80) the paper's fission experiment sweeps.
/// The differences are streamed, never materialized.
double power_mean_stable(const std::vector<double>& pa,
                         const std::vector<double>& pb, double p) {
  const double n = static_cast<double>(pa.size());
  double max_log = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < pa.size(); ++k) {
    const double a = std::fabs(pa[k] - pb[k]);
    if (a > 0.0) max_log = std::max(max_log, p * std::log(a));
  }
  if (!std::isfinite(max_log)) return 0.0;  // All differences are zero.
  double total = 0.0;
  for (std::size_t k = 0; k < pa.size(); ++k) {
    const double a = std::fabs(pa[k] - pb[k]);
    if (a > 0.0) total += std::exp(p * std::log(a) - max_log);
  }
  const double log_sum = max_log + std::log(total);
  return std::exp((log_sum - std::log(n)) / p);
}

/// The naive arithmetic of Algorithm 13; |d|^p underflows to zero for large p,
/// reproducing the paper's "all peaks vanish when p >= 80" behavior.
double power_mean_naive(const std::vector<double>& pa,
                        const std::vector<double>& pb, double p) {
  double total = 0.0;
  for (std::size_t k = 0; k < pa.size(); ++k)
    total += std::pow(std::fabs(pa[k] - pb[k]), p);
  return std::pow(total / static_cast<double>(pa.size()), 1.0 / p);
}

}  // namespace

double wasserstein_distance(const CompressedArray& a, const CompressedArray& b,
                            double p, bool stable) {
  a.require_layout_match(b);
  internal::require_dc(a, "Wasserstein distance");

  // A' and B': blockwise means, the block-size-granular approximations of the
  // decompressed arrays.
  std::vector<double> pa = internal::blockwise_mean_vector(a);
  std::vector<double> pb = internal::blockwise_mean_vector(b);

  if (!sums_to_one(pa)) softmax_inplace(pa);
  if (!sums_to_one(pb)) softmax_inplace(pb);

  std::sort(pa.begin(), pa.end());
  std::sort(pb.begin(), pb.end());

  // The sorted-quantile differences stream through the power mean; no diffs
  // temporary is materialized.
  return stable ? power_mean_stable(pa, pb, p) : power_mean_naive(pa, pb, p);
}

}  // namespace pyblaz::ops
