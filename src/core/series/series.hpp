#pragma once

#include <cstddef>
#include <vector>

#include "core/codec/compressor.hpp"
#include "core/ops/ops.hpp"

namespace pyblaz {

/// A time series of equally-shaped snapshots kept entirely in compressed
/// form — the paper's motivating use case (§I): store the "movies" of an
/// evolving simulation compressed, amortizing compression cost over many
/// compressed-space queries, and only ever decompress the frames you need.
///
/// All distance curves are computed with compressed-space operations (no
/// frame is decompressed), so a CompressedSeries of T frames costs
/// T / ratio of the raw storage while still answering "where did the data
/// change" queries.
class CompressedSeries {
 public:
  /// The compressor defines the layout every appended frame must share.
  explicit CompressedSeries(Compressor compressor)
      : compressor_(std::move(compressor)) {}

  /// Compress and append a snapshot.  Every snapshot must have the same
  /// shape as the first (throws std::invalid_argument otherwise).
  void append(const NDArray<double>& snapshot);

  /// Append an already-compressed snapshot (must match the series layout).
  void append(CompressedArray snapshot);

  /// Number of stored frames.
  std::size_t size() const { return frames_.size(); }
  bool empty() const { return frames_.empty(); }

  /// Access frame @p k.
  const CompressedArray& at(std::size_t k) const { return frames_.at(k); }

  /// Decompress frame @p k (the only operation here that decompresses).
  NDArray<double> decompress(std::size_t k) const {
    return compressor_.decompress(frames_.at(k));
  }

  /// ‖frame[k+1] - frame[k]‖₂ for every adjacent pair (length size()-1),
  /// via compressed-space subtract + L2 norm.
  std::vector<double> adjacent_l2() const;

  /// Approximate p-order Wasserstein distance for every adjacent pair.
  std::vector<double> adjacent_wasserstein(double p) const;

  /// Mean squared error for every adjacent pair.
  std::vector<double> adjacent_mse() const;

  /// Index k maximizing the adjacent-L2 curve: the change happened between
  /// frames k and k+1.  Returns 0 for series with fewer than two frames.
  std::size_t largest_change_pair() const;

  /// A peak in a distance curve.
  struct Peak {
    std::size_t pair_index;  ///< Between frames pair_index and pair_index+1.
    double value;            ///< Curve value at the peak.
    double prominence;       ///< value / median of the rest of the curve.
  };

  /// Local maxima of @p curve whose prominence (value over the median of the
  /// remaining samples) is at least @p min_prominence, sorted by descending
  /// value.  The endpoints count as local maxima when they exceed their
  /// single neighbor.
  static std::vector<Peak> find_peaks(const std::vector<double>& curve,
                                      double min_prominence = 2.0);

  /// Total §IV-C layout bits across all frames (the storage the series
  /// actually needs).
  std::size_t compressed_bits() const;

  /// Raw FP64 bits the uncompressed series would need.
  std::size_t uncompressed_bits() const;

  const Compressor& compressor() const { return compressor_; }

 private:
  Compressor compressor_;
  std::vector<CompressedArray> frames_;
};

}  // namespace pyblaz
