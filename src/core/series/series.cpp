#include "core/series/series.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/codec/serialization.hpp"
#include "core/ops/expr.hpp"

namespace pyblaz {

void CompressedSeries::append(const NDArray<double>& snapshot) {
  if (!frames_.empty() && snapshot.shape() != frames_.front().shape)
    throw std::invalid_argument(
        "CompressedSeries: snapshot shape " + snapshot.shape().to_string() +
        " differs from the series shape " + frames_.front().shape.to_string());
  frames_.push_back(compressor_.compress(snapshot));
}

void CompressedSeries::append(CompressedArray snapshot) {
  if (!frames_.empty() && !frames_.front().layout_matches(snapshot))
    throw std::invalid_argument(
        "CompressedSeries: appended frame has a different compressed layout");
  if (snapshot.block_shape != compressor_.settings().block_shape ||
      snapshot.transform != compressor_.settings().transform)
    throw std::invalid_argument(
        "CompressedSeries: appended frame does not match the series compressor");
  frames_.push_back(std::move(snapshot));
}

std::vector<double> CompressedSeries::adjacent_l2() const {
  std::vector<double> curve;
  if (frames_.size() < 2) return curve;
  curve.reserve(frames_.size() - 1);
  for (std::size_t k = 1; k < frames_.size(); ++k)
    curve.push_back(ops::l2_norm(frames_[k] - frames_[k - 1]));
  return curve;
}

std::vector<double> CompressedSeries::adjacent_wasserstein(double p) const {
  std::vector<double> curve;
  if (frames_.size() < 2) return curve;
  curve.reserve(frames_.size() - 1);
  for (std::size_t k = 1; k < frames_.size(); ++k)
    curve.push_back(ops::wasserstein_distance(frames_[k], frames_[k - 1], p));
  return curve;
}

std::vector<double> CompressedSeries::adjacent_mse() const {
  std::vector<double> curve;
  if (frames_.size() < 2) return curve;
  curve.reserve(frames_.size() - 1);
  for (std::size_t k = 1; k < frames_.size(); ++k)
    curve.push_back(ops::mean_squared_error(frames_[k], frames_[k - 1]));
  return curve;
}

std::size_t CompressedSeries::largest_change_pair() const {
  const std::vector<double> curve = adjacent_l2();
  if (curve.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(curve.begin(), curve.end()) - curve.begin());
}

std::vector<CompressedSeries::Peak> CompressedSeries::find_peaks(
    const std::vector<double>& curve, double min_prominence) {
  std::vector<Peak> peaks;
  if (curve.size() < 2) return peaks;

  for (std::size_t k = 0; k < curve.size(); ++k) {
    const bool left_ok = k == 0 || curve[k] > curve[k - 1];
    const bool right_ok = k + 1 == curve.size() || curve[k] > curve[k + 1];
    if (!(left_ok && right_ok)) continue;

    // Median of the other samples.
    std::vector<double> rest;
    rest.reserve(curve.size() - 1);
    for (std::size_t j = 0; j < curve.size(); ++j)
      if (j != k) rest.push_back(curve[j]);
    std::nth_element(rest.begin(), rest.begin() + static_cast<std::ptrdiff_t>(rest.size() / 2),
                     rest.end());
    const double median = rest[rest.size() / 2];
    const double prominence = median > 0.0 ? curve[k] / median
                                           : (curve[k] > 0.0 ? 1e308 : 0.0);
    if (prominence >= min_prominence)
      peaks.push_back(Peak{.pair_index = k, .value = curve[k], .prominence = prominence});
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });
  return peaks;
}

std::size_t CompressedSeries::compressed_bits() const {
  std::size_t total = 0;
  for (const CompressedArray& frame : frames_) total += paper_layout_bits(frame);
  return total;
}

std::size_t CompressedSeries::uncompressed_bits() const {
  if (frames_.empty()) return 0;
  return frames_.size() * static_cast<std::size_t>(frames_.front().shape.volume()) * 64;
}

}  // namespace pyblaz
