#include "core/dtypes/float16.hpp"

#include <bit>
#include <cstring>

namespace pyblaz {

namespace {

std::uint32_t float_bits(float value) { return std::bit_cast<std::uint32_t>(value); }
float bits_float(std::uint32_t bits) { return std::bit_cast<float>(bits); }

}  // namespace

std::uint16_t float16::from_float(float value) {
  const std::uint32_t f = float_bits(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t exponent = (f >> 23) & 0xFFu;
  std::uint32_t mantissa = f & 0x007FFFFFu;

  if (exponent == 0xFFu) {
    // Inf or NaN.  Preserve NaN-ness by forcing a nonzero half mantissa.
    if (mantissa != 0) return static_cast<std::uint16_t>(sign | 0x7C00u | 0x0200u);
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  // Unbiased exponent; half bias is 15, float bias is 127.
  const int e = static_cast<int>(exponent) - 127 + 15;

  if (e >= 0x1F) {
    // Overflow: round to infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (e <= 0) {
    // Subnormal half (or underflow to zero).  The implicit leading 1 joins
    // the mantissa, which is then shifted right with round-to-nearest-even.
    if (e < -10) return static_cast<std::uint16_t>(sign);  // Underflows to 0.
    mantissa |= 0x00800000u;
    const int shift = 14 - e;  // 14..24
    const std::uint32_t kept = mantissa >> shift;
    const std::uint32_t rounding = mantissa & ((1u << shift) - 1u);
    const std::uint32_t half_point = 1u << (shift - 1);
    std::uint32_t result = kept;
    if (rounding > half_point || (rounding == half_point && (kept & 1u))) ++result;
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal half.  Round the 23-bit mantissa to 10 bits, nearest-even.
  std::uint32_t result = (static_cast<std::uint32_t>(e) << 10) | (mantissa >> 13);
  const std::uint32_t rounding = mantissa & 0x1FFFu;
  if (rounding > 0x1000u || (rounding == 0x1000u && (result & 1u))) ++result;
  // A mantissa carry into the exponent is correct here: it rounds up to the
  // next binade, and 0x7C00 (infinity) if the exponent was 0x1E.
  return static_cast<std::uint16_t>(sign | result);
}

float float16::to_float(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1Fu;
  std::uint32_t mantissa = bits & 0x03FFu;

  if (exponent == 0x1Fu) {
    // Inf/NaN.
    return bits_float(sign | 0x7F800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return bits_float(sign);  // Signed zero.
    // Subnormal: normalize.
    int e = -1;
    do {
      ++e;
      mantissa <<= 1;
    } while ((mantissa & 0x0400u) == 0);
    mantissa &= 0x03FFu;
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
    return bits_float(sign | (exp32 << 23) | (mantissa << 13));
  }
  const std::uint32_t exp32 = exponent - 15 + 127;
  return bits_float(sign | (exp32 << 23) | (mantissa << 13));
}

}  // namespace pyblaz
