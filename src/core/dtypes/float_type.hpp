#pragma once

#include <cstdint>
#include <string>

namespace pyblaz {

/// Floating-point storage type of a compressed array (§III-A "data type
/// conversion").  Determines (a) how many bits each stored biggest-coefficient
/// N_k occupies and (b) the precision through which input data is rounded
/// before the orthonormal transform.
enum class FloatType : std::uint8_t {
  kBFloat16 = 0,
  kFloat16 = 1,
  kFloat32 = 2,
  kFloat64 = 3,
};

/// Bits per stored floating-point element (the `f` of the §IV-C ratio formula).
int bits(FloatType type);

/// Human-readable name ("bfloat16", "float16", "float32", "float64").
std::string name(FloatType type);

/// Round @p value through the storage type: the result is the double that the
/// stored representation decodes back to.  For kFloat64 this is the identity.
/// Overflow behaves like the underlying type (FP16 -> inf, bfloat16 keeps
/// float32's range).
double quantize(double value, FloatType type);

/// All supported float types, in enum order (used by parameter sweeps).
inline constexpr FloatType kAllFloatTypes[] = {
    FloatType::kBFloat16, FloatType::kFloat16, FloatType::kFloat32,
    FloatType::kFloat64};

}  // namespace pyblaz
