#include "core/dtypes/bfloat16.hpp"

#include <bit>

namespace pyblaz {

std::uint16_t bfloat16::from_float(float value) {
  std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  if (((f >> 23) & 0xFFu) == 0xFFu && (f & 0x007FFFFFu) != 0) {
    // NaN: keep it a NaN after truncation.
    return static_cast<std::uint16_t>((f >> 16) | 0x0040u);
  }
  // Round-to-nearest-even on the dropped 16 bits.
  const std::uint32_t rounding = 0x7FFFu + ((f >> 16) & 1u);
  f += rounding;
  return static_cast<std::uint16_t>(f >> 16);
}

float bfloat16::to_float(std::uint16_t bits) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits) << 16);
}

}  // namespace pyblaz
