#include "core/dtypes/index_type.hpp"

namespace pyblaz {

int bits(IndexType type) {
  switch (type) {
    case IndexType::kInt8:
      return 8;
    case IndexType::kInt16:
      return 16;
    case IndexType::kInt32:
      return 32;
    case IndexType::kInt64:
      return 64;
  }
  return 8;
}

std::int64_t radius(IndexType type) {
  return (std::int64_t{1} << (bits(type) - 1)) - 1;
}

std::int64_t arithmetic_radius(IndexType type) {
  const std::int64_t cap = std::int64_t{1} << 53;
  const std::int64_t r = radius(type);
  return r < cap ? r : cap;
}

std::string name(IndexType type) {
  switch (type) {
    case IndexType::kInt8:
      return "int8";
    case IndexType::kInt16:
      return "int16";
    case IndexType::kInt32:
      return "int32";
    case IndexType::kInt64:
      return "int64";
  }
  return "int8";
}

}  // namespace pyblaz
