#include "core/dtypes/float_type.hpp"

#include "core/dtypes/bfloat16.hpp"
#include "core/dtypes/float16.hpp"

namespace pyblaz {

int bits(FloatType type) {
  switch (type) {
    case FloatType::kBFloat16:
    case FloatType::kFloat16:
      return 16;
    case FloatType::kFloat32:
      return 32;
    case FloatType::kFloat64:
      return 64;
  }
  return 64;
}

std::string name(FloatType type) {
  switch (type) {
    case FloatType::kBFloat16:
      return "bfloat16";
    case FloatType::kFloat16:
      return "float16";
    case FloatType::kFloat32:
      return "float32";
    case FloatType::kFloat64:
      return "float64";
  }
  return "float64";
}

double quantize(double value, FloatType type) {
  switch (type) {
    case FloatType::kBFloat16:
      return static_cast<double>(bfloat16(value));
    case FloatType::kFloat16:
      return static_cast<double>(float16(value));
    case FloatType::kFloat32:
      return static_cast<double>(static_cast<float>(value));
    case FloatType::kFloat64:
      return value;
  }
  return value;
}

}  // namespace pyblaz
