#pragma once

#include <cstdint>

namespace pyblaz {

/// IEEE 754 binary16 value type (1 sign, 5 exponent, 10 significand bits).
///
/// PyBlaz's data-type-conversion step can lower input arrays to FP16 before
/// transforming; this type provides the bit-exact conversion semantics
/// (round-to-nearest-even, subnormals, overflow to infinity) of that step.
/// Arithmetic is performed by converting through float, matching how GPU
/// frameworks evaluate half-precision expressions on hardware without native
/// half ALUs.
class float16 {
 public:
  float16() = default;

  /// Convert from single precision with round-to-nearest-even.
  explicit float16(float value) : bits_(from_float(value)) {}

  /// Convert from double precision (via float; double -> float -> half).
  explicit float16(double value) : float16(static_cast<float>(value)) {}

  /// Widen to single precision (exact).
  explicit operator float() const { return to_float(bits_); }

  /// Widen to double precision (exact).
  explicit operator double() const { return static_cast<double>(to_float(bits_)); }

  /// Raw bit pattern.
  std::uint16_t bits() const { return bits_; }

  /// Construct from a raw bit pattern.
  static float16 from_bits(std::uint16_t bits) {
    float16 h;
    h.bits_ = bits;
    return h;
  }

  /// Bit-exact float -> binary16 conversion (round-to-nearest-even).
  static std::uint16_t from_float(float value);

  /// Bit-exact binary16 -> float conversion.
  static float to_float(std::uint16_t bits);

  friend bool operator==(float16 a, float16 b) {
    return static_cast<float>(a) == static_cast<float>(b);
  }

 private:
  std::uint16_t bits_ = 0;
};

}  // namespace pyblaz
