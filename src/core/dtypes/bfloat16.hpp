#pragma once

#include <cstdint>

namespace pyblaz {

/// Brain floating point value type (1 sign, 8 exponent, 7 significand bits).
///
/// bfloat16 shares float32's exponent range, so it never overflows where
/// float32 would not — the paper's Fig. 5 discussion relies on exactly this
/// (bfloat16 avoids the NaNs FP16 produces, at the cost of a shorter
/// significand).  Conversion from float rounds to nearest-even.
class bfloat16 {
 public:
  bfloat16() = default;

  /// Convert from single precision with round-to-nearest-even.
  explicit bfloat16(float value) : bits_(from_float(value)) {}

  /// Convert from double precision (via float).
  explicit bfloat16(double value) : bfloat16(static_cast<float>(value)) {}

  /// Widen to single precision (exact).
  explicit operator float() const { return to_float(bits_); }

  /// Widen to double precision (exact).
  explicit operator double() const { return static_cast<double>(to_float(bits_)); }

  /// Raw bit pattern.
  std::uint16_t bits() const { return bits_; }

  /// Construct from a raw bit pattern.
  static bfloat16 from_bits(std::uint16_t bits) {
    bfloat16 b;
    b.bits_ = bits;
    return b;
  }

  /// Bit-exact float -> bfloat16 conversion (round-to-nearest-even).
  static std::uint16_t from_float(float value);

  /// Bit-exact bfloat16 -> float conversion (append 16 zero bits).
  static float to_float(std::uint16_t bits);

  friend bool operator==(bfloat16 a, bfloat16 b) {
    return static_cast<float>(a) == static_cast<float>(b);
  }

 private:
  std::uint16_t bits_ = 0;
};

}  // namespace pyblaz
