#pragma once

#include <cstdint>
#include <string>

namespace pyblaz {

/// Integer bin-index type of a compressed array (§III-A "binning").  The
/// number of usable bins is 2r + 1 where r = 2^(b-1) - 1 is the index-type
/// radius, so wider types give finer coefficient rounding at the cost of
/// storage.
enum class IndexType : std::uint8_t {
  kInt8 = 0,
  kInt16 = 1,
  kInt32 = 2,
  kInt64 = 3,
};

/// Bits per stored bin index (the `i` of the §IV-C ratio formula).
int bits(IndexType type);

/// The index-type radius r = 2^(b-1) - 1; bin indices span [-r, r].
std::int64_t radius(IndexType type);

/// The radius used in binning arithmetic: min(radius, 2^53).  Coefficients
/// are IEEE doubles with 53 significand bits, so int64's nominal radius of
/// 2^63 - 1 cannot be exercised (r * C / N would overflow the double
/// representation and the int64 cast); capping at 2^53 already puts binning
/// error at the rounding floor of the coefficients themselves.  Identical to
/// radius() for int8/int16/int32.
std::int64_t arithmetic_radius(IndexType type);

/// Human-readable name ("int8", ..., "int64").
std::string name(IndexType type);

/// All supported index types, in enum order (used by parameter sweeps).
inline constexpr IndexType kAllIndexTypes[] = {IndexType::kInt8, IndexType::kInt16,
                                               IndexType::kInt32, IndexType::kInt64};

}  // namespace pyblaz
