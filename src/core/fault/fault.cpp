#include "core/fault/fault.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <random>
#include <thread>

#include "core/error/error.hpp"
#include "core/telemetry/telemetry.hpp"

namespace pyblaz::fault {

namespace {

constexpr std::uint64_t kNoNth = ~std::uint64_t{0};

enum class Action { kThrow, kBadAlloc, kDelay, kFlip, kTruncate };

bool is_data_action(Action action) {
  return action == Action::kFlip || action == Action::kTruncate;
}

struct Spec {
  std::string site;
  Action action = Action::kThrow;
  std::uint64_t value = 0;   // delay ms / bits to flip / bytes to drop.
  std::uint64_t seed = 0;    // RNG seed for flip and p.
  std::uint64_t nth = kNoNth;
  std::uint64_t every = 1;
  double probability = -1.0;  // < 0: not probabilistic.
  std::uint64_t hit_count = 0;
  std::uint64_t fired_count = 0;
};

/// splitmix64 of (seed, hit index): the per-hit RNG stream.  A pure function
/// of the spec and the hit ordinal — nothing about threads, time, or
/// addresses — which is the whole replay guarantee.
std::uint64_t mix(std::uint64_t seed, std::uint64_t hit) {
  std::uint64_t z = seed + (hit + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// ------------------------------------------------------------- spec parsing

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = parsed;
  return true;
}

bool parse_probability(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!(parsed >= 0.0 && parsed <= 1.0)) return false;
  *out = parsed;
  return true;
}

/// Parse one `site:action[,key=value]...` clause into @p spec.
bool parse_clause(const std::string& clause, Spec* spec) {
  const std::size_t colon = clause.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  spec->site = clause.substr(0, colon);

  std::vector<std::string> tokens;
  std::size_t start = colon + 1;
  while (start <= clause.size()) {
    std::size_t comma = clause.find(',', start);
    if (comma == std::string::npos) comma = clause.size();
    tokens.push_back(clause.substr(start, comma - start));
    start = comma + 1;
  }
  if (tokens.empty() || tokens.front().empty()) return false;

  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const std::string& token = tokens[t];
    const std::size_t eq = token.find('=');
    const std::string key = token.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : token.substr(eq + 1);
    const bool is_action = t == 0;
    if (is_action) {
      if (key == "throw" && eq == std::string::npos)
        spec->action = Action::kThrow;
      else if (key == "badalloc" && eq == std::string::npos)
        spec->action = Action::kBadAlloc;
      else if (key == "delay" && parse_u64(value, &spec->value))
        spec->action = Action::kDelay;
      else if (key == "flip" && parse_u64(value, &spec->value) &&
               spec->value > 0)
        spec->action = Action::kFlip;
      else if (key == "truncate" && parse_u64(value, &spec->value) &&
               spec->value > 0)
        spec->action = Action::kTruncate;
      else
        return false;
    } else if (key == "seed") {
      if (!parse_u64(value, &spec->seed)) return false;
    } else if (key == "nth") {
      if (!parse_u64(value, &spec->nth) || spec->nth == kNoNth) return false;
    } else if (key == "every") {
      if (!parse_u64(value, &spec->every) || spec->every == 0) return false;
    } else if (key == "p") {
      if (!parse_probability(value, &spec->probability)) return false;
    } else {
      return false;
    }
  }
  return true;
}

/// Parse a full `clause[;clause]...` spec string.  All-or-nothing: one bad
/// clause rejects the whole string so a typo cannot half-arm a test.
bool parse_spec(const std::string& text, std::vector<Spec>* out) {
  std::vector<Spec> parsed;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t semi = text.find(';', start);
    if (semi == std::string::npos) semi = text.size();
    const std::string clause = text.substr(start, semi - start);
    if (!clause.empty()) {
      Spec spec;
      if (!parse_clause(clause, &spec)) return false;
      parsed.push_back(std::move(spec));
    }
    start = semi + 1;
  }
  if (parsed.empty()) return false;
  *out = std::move(parsed);
  return true;
}

// ----------------------------------------------------------------- registry

struct Registry {
  std::mutex mutex;
  std::vector<Spec> specs;           // Guarded by mutex.
  std::atomic<int> armed_count{0};   // specs.size(), readable lock-free.
};

Registry& registry() {
  // Leaked singleton (never destroyed): fault sites may be evaluated from
  // worker threads during process teardown, after static destructors start.
  static Registry* reg = [] {
    auto* r = new Registry;
    if (const char* env = std::getenv("CC_FAULT")) {
      std::vector<Spec> parsed;
      if (parse_spec(env, &parsed)) {
        r->specs = std::move(parsed);
        r->armed_count.store(static_cast<int>(r->specs.size()),
                             std::memory_order_relaxed);
      } else {
        std::fprintf(stderr,
                     "pyblaz: CC_FAULT=\"%s\" does not parse "
                     "(site:action[,key=value]...[;...]); arming nothing\n",
                     env);
      }
    }
    return r;
  }();
  return *reg;
}

/// Fire decision for one hit.  Must be called under the registry mutex (the
/// counters are plain fields).
bool should_fire(Spec& spec) {
  const std::uint64_t hit = spec.hit_count++;
  bool fire;
  if (spec.nth != kNoNth) {
    fire = hit == spec.nth;
  } else if (spec.probability >= 0.0) {
    std::mt19937_64 rng(mix(spec.seed, hit));
    fire = std::uniform_real_distribution<double>(0.0, 1.0)(rng) <
           spec.probability;
  } else {
    fire = hit % spec.every == 0;
  }
  if (fire) ++spec.fired_count;
  return fire;
}

void count_injected(const std::string& site) {
  pyblaz::telemetry::counter("fault.injected." + site).increment();
}

void apply_flip(std::vector<std::uint8_t>& bytes, std::uint64_t nbits,
                std::uint64_t seed, std::uint64_t hit) {
  if (bytes.empty()) return;
  std::mt19937_64 rng(mix(seed, hit));
  const std::uint64_t total_bits = bytes.size() * 8;
  nbits = std::min(nbits, total_bits);
  // Distinct positions: a duplicate would un-flip and silently weaken the
  // corruption the test asked for.
  std::vector<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(nbits));
  while (chosen.size() < nbits) {
    const std::uint64_t pos = rng() % total_bits;
    if (std::find(chosen.begin(), chosen.end(), pos) == chosen.end())
      chosen.push_back(pos);
  }
  for (std::uint64_t pos : chosen)
    bytes[static_cast<std::size_t>(pos >> 3)] ^=
        static_cast<std::uint8_t>(1u << (pos & 7));
}

}  // namespace

bool armed() {
  return registry().armed_count.load(std::memory_order_relaxed) > 0;
}

bool armed_for(const char* site) {
  if (!armed()) return false;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const Spec& spec : reg.specs)
    if (spec.site == site) return true;
  return false;
}

void point(const char* site) {
  if (!armed()) return;
  // Decide under the lock, act outside it: a delay must not stall arm()/
  // disarm_all(), and the thrown exception must not unwind through the lock
  // while other sites evaluate.
  std::uint64_t delay_ms = 0;
  bool do_throw = false;
  bool do_badalloc = false;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (Spec& spec : reg.specs) {
      if (spec.site != site || is_data_action(spec.action)) continue;
      if (!should_fire(spec)) continue;
      switch (spec.action) {
        case Action::kDelay:
          delay_ms += spec.value;
          break;
        case Action::kBadAlloc:
          do_badalloc = true;
          break;
        default:
          do_throw = true;
          break;
      }
      count_injected(spec.site);
    }
  }
  if (delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  if (do_badalloc) throw std::bad_alloc();
  if (do_throw)
    throw cc::Error(cc::ErrorCode::kFaultInjected, site, "injected fault");
}

void corrupt(const char* site, std::vector<std::uint8_t>& bytes) {
  if (!armed()) return;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (Spec& spec : reg.specs) {
    if (spec.site != site || !is_data_action(spec.action)) continue;
    const std::uint64_t hit = spec.hit_count;  // should_fire advances it.
    if (!should_fire(spec)) continue;
    if (spec.action == Action::kFlip)
      apply_flip(bytes, spec.value, spec.seed, hit);
    else
      bytes.resize(bytes.size() -
                   std::min<std::uint64_t>(spec.value, bytes.size()));
    count_injected(spec.site);
  }
}

bool arm(const std::string& spec) {
  std::vector<Spec> parsed;
  if (!parse_spec(spec, &parsed)) return false;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (Spec& s : parsed) reg.specs.push_back(std::move(s));
  reg.armed_count.store(static_cast<int>(reg.specs.size()),
                        std::memory_order_relaxed);
  return true;
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.specs.clear();
  reg.armed_count.store(0, std::memory_order_relaxed);
}

std::uint64_t hits(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const Spec& spec : reg.specs)
    if (spec.site == site) total += spec.hit_count;
  return total;
}

std::uint64_t fired(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const Spec& spec : reg.specs)
    if (spec.site == site) total += spec.fired_count;
  return total;
}

}  // namespace pyblaz::fault
