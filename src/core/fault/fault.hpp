#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pyblaz::fault {

/// Deterministic fault injection — every failure path in the runtime is
/// reachable, on demand, reproducibly.
///
/// The runtime is sprinkled with *named fault sites*: a site is a call to
/// point()/corrupt() at the place where a real-world failure would land
/// (reading archive bytes, allocating the decode buffers, running a
/// scheduler chunk, resolving the kernel backend).  Sites cost one relaxed
/// atomic load when nothing is armed, so they stay compiled into release
/// builds — CI and tests arm them via the environment or arm().
///
/// Arming — `CC_FAULT` (read once, at first use) or arm():
///
///   CC_FAULT=<site>:<action>[,<key>=<value>]...[;<site>:<action>...]
///
/// Actions (one per spec):
///   throw              throw cc::Error(kFaultInjected) at the site
///   badalloc           throw std::bad_alloc at the site
///   delay=<ms>         sleep <ms> milliseconds at the site (stall a worker)
///   flip=<n>           flip <n> seeded-random bits of the site's byte buffer
///   truncate=<n>       drop the last <n> bytes of the site's byte buffer
///
/// Selectors (optional; default = fire on every hit):
///   nth=<k>            fire only on the k-th hit of the site (0-based)
///   every=<k>          fire on hits 0, k, 2k, ...
///   p=<prob>           fire with probability <prob> per hit (seeded)
///   seed=<u64>         RNG seed for flip/p (default 0)
///
/// Determinism contract: the bytes a flip/truncate produces are a pure
/// function of (spec, hit index) — re-arming the same spec against the same
/// call sequence replays byte-for-byte identical corruption, which is what
/// lets CI assert exact outcomes (tests/test_fault.cpp pins this).
///
/// Throw/badalloc/delay actions fire at point() sites; flip/truncate fire at
/// corrupt() sites.  An action armed on a site of the other kind simply
/// never fires.  Every fire bumps the telemetry counter
/// `fault.injected.<site>`.
///
/// Site table and grammar reference: docs/ROBUSTNESS.md.

/// True when at least one fault spec is armed, in the whole process.  One
/// relaxed atomic load — the only cost hot paths pay when injection is idle.
bool armed();

/// True when some armed spec names @p site (regardless of selectors).  Use
/// to gate work that is only needed if this site can fire, e.g. the defensive
/// input copy in deserialize().
bool armed_for(const char* site);

/// Execution fault site: runs any armed throw/badalloc/delay specs for
/// @p site.  No-op when nothing matching is armed.
void point(const char* site);

/// Data fault site: applies any armed flip/truncate specs for @p site to
/// @p bytes in place.  No-op when nothing matching is armed.
void corrupt(const char* site, std::vector<std::uint8_t>& bytes);

/// Arm one or more specs (same grammar as CC_FAULT; ';'-separated).  Returns
/// false — arming nothing — when the spec does not parse.  Specs accumulate
/// on top of whatever is already armed.
bool arm(const std::string& spec);

/// Disarm everything, including CC_FAULT-armed specs.  Hit counters reset.
void disarm_all();

/// Total times @p site was evaluated (armed specs matching it, fired or not).
std::uint64_t hits(const std::string& site);

/// Total times any spec actually fired at @p site.
std::uint64_t fired(const std::string& site);

}  // namespace pyblaz::fault
