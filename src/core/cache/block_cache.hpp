#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/ndarray/shape.hpp"

namespace pyblaz::cache {

/// Default cache capacity in blocks, read once from CC_CACHE_BLOCKS (0 or
/// unset = caching disabled; a bad value warns on stderr and disables).
/// Applies to caches created after the call; existing caches keep their
/// capacity.
index_t default_capacity_blocks();

/// Override the default capacity at runtime (tests, benchmarks, service
/// configuration).  Negative values clamp to 0 (disabled).
void set_default_capacity(index_t blocks);

/// A bounded, sharded LRU cache of decoded blocks for one compressed array
/// (the zfp-style proxy design named in ROADMAP.md).
///
/// Entries are keyed by flat block index and hold the fully decoded,
/// storage-float-rounded block buffer (block_volume doubles, padding zeroed —
/// the blockio::decode_block output domain).  Reads go through fetch(),
/// which returns a DecodedBlockRef proxy; writes go through write(), which
/// marks the block dirty.  Dirty blocks are re-encoded by flush() through the
/// same kernels:: pipeline the compressor uses.
///
/// Determinism contract (pinned by tests/test_block_cache.cpp):
///  - A decoded block's bytes are a pure function of the archive, so cached
///    reads are bit-identical to direct decodes at any capacity, eviction
///    order, thread count, or shard count.
///  - Dirty blocks are PINNED: eviction only ever drops clean blocks, and
///    write-back happens exclusively in flush().  Encode∘decode is lossy and
///    not idempotent, so evicting-and-re-encoding a dirty block mid-stream
///    would make archive bytes depend on capacity and access order; pinning
///    means every dirty block is re-encoded exactly once, from exactly one
///    decoded buffer, and the flushed archive is bit-identical to compressing
///    the decoded data directly.  The capacity bound therefore applies to the
///    clean population; the dirty population is bounded by the write set
///    until flush() runs.
///
/// Thread safety: the key space is sharded (block index modulo shard count),
/// each shard behind its own mutex, so concurrent regions touching different
/// blocks don't serialize on one lock.  Miss fills (block decodes) run
/// outside the shard lock; when two threads race to fill the same block the
/// first insert wins and the loser's identical buffer is discarded.
/// Concurrent fetches of any blocks are safe.  A block being written must
/// not be concurrently read or written — the same aliasing rule as an
/// NDArray — and flush() must not run concurrently with writes.
class BlockCache {
 public:
  /// @p capacity_blocks must be >= 1 (capacity 0 means "no cache" and is
  /// handled by not constructing one).  @p num_shards 0 picks the default
  /// (min(8, capacity)); tests pass 1 for exact whole-cache LRU semantics.
  BlockCache(index_t capacity_blocks, index_t block_volume,
             int num_shards = 0);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Read proxy for one decoded block.  Holds the buffer alive even if the
  /// block is evicted while the ref is outstanding.
  class DecodedBlockRef {
   public:
    const double* data() const { return buffer_->data(); }
    double operator[](index_t j) const {
      return (*buffer_)[static_cast<std::size_t>(j)];
    }

   private:
    friend class BlockCache;
    explicit DecodedBlockRef(std::shared_ptr<const std::vector<double>> buffer)
        : buffer_(std::move(buffer)) {}
    std::shared_ptr<const std::vector<double>> buffer_;
  };

  /// Decode callback: fill the given buffer (block_volume doubles) with the
  /// decoded block.  Called outside the shard lock on a miss.
  using FillFn = std::function<void(double*)>;
  /// In-place mutation of a decoded block buffer.
  using MutateFn = std::function<void(double*)>;
  /// Re-encode callback: write the decoded buffer back into the archive.
  using WritebackFn = std::function<void(index_t kb, const double* block)>;

  /// Return block @p kb, decoding it via @p fill on a miss (which may evict
  /// the least-recently-used clean block).  Throws cc::Error
  /// (kResourceExhausted) if the buffer allocation fails — fault site
  /// "cache.fill.alloc" — leaving the cache unchanged.
  DecodedBlockRef fetch(index_t kb, const FillFn& fill);

  /// Apply @p mutate to block @p kb's decoded buffer and mark it dirty
  /// (decoding it via @p fill first if absent).  Dirty blocks are pinned
  /// until flush().
  void write(index_t kb, const FillFn& fill, const MutateFn& mutate);

  /// Re-encode every dirty block via @p writeback (ascending block index
  /// within each shard), mark them clean, then trim each shard back to its
  /// capacity.  Returns the number of blocks written back.
  index_t flush(const WritebackFn& writeback);

  /// Drop every entry, including dirty ones (their writes are lost).
  void clear();

  index_t capacity() const { return capacity_; }
  index_t block_volume() const { return block_volume_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  index_t resident_blocks() const;
  index_t dirty_blocks() const;
  bool contains(index_t kb) const;

  /// Per-cache counters (process-wide telemetry counters cache.* aggregate
  /// across caches; these are for tests and bench introspection).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<std::vector<double>> data;
    std::uint64_t tick = 0;
    bool dirty = false;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<index_t, Entry> entries;
    std::uint64_t tick = 0;
    index_t capacity = 0;
    index_t dirty = 0;
  };

  Shard& shard_for(index_t kb) {
    return shards_[static_cast<std::size_t>(kb) % shards_.size()];
  }
  std::shared_ptr<std::vector<double>> allocate_buffer() const;
  /// Evict LRU clean entries until the shard's clean population plus
  /// @p headroom fits its capacity (caller holds the shard lock; headroom 1
  /// makes room for one insert, headroom 0 trims after a flush).
  void evict_until_locked(Shard& shard, index_t headroom);

  index_t capacity_;
  index_t block_volume_;
  std::uint64_t block_bytes_;
  std::vector<Shard> shards_;

  // Per-cache counters on relaxed atomics — observability only, never
  // branched on, and off the shard locks so stats cost no serialization.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> writebacks_{0};
};

}  // namespace pyblaz::cache
