#include "core/cache/block_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>

#include "core/error/error.hpp"
#include "core/fault/fault.hpp"
#include "core/telemetry/telemetry.hpp"

namespace pyblaz::cache {

namespace {

/// CC_CACHE_BLOCKS, parsed once at first use.  Same contract as the other
/// runtime knobs: unset or 0 disables, a bad value warns and disables (never
/// fatal, never silent).
index_t parse_env_capacity() {
  const char* value = std::getenv("CC_CACHE_BLOCKS");
  if (!value || !*value) return 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0) {
    std::fprintf(stderr,
                 "pyblaz: CC_CACHE_BLOCKS=\"%s\" is not a non-negative "
                 "integer; decoded-block caching disabled\n",
                 value);
    return 0;
  }
  return static_cast<index_t>(parsed);
}

/// -1 = environment not read yet.
std::atomic<index_t> g_default_capacity{-1};

constexpr int kDefaultShards = 8;

}  // namespace

index_t default_capacity_blocks() {
  index_t value = g_default_capacity.load(std::memory_order_relaxed);
  if (value < 0) {
    // Racing first readers parse the same environment value; idempotent.
    value = parse_env_capacity();
    g_default_capacity.store(value, std::memory_order_relaxed);
  }
  return value;
}

void set_default_capacity(index_t blocks) {
  g_default_capacity.store(std::max<index_t>(0, blocks),
                           std::memory_order_relaxed);
}

BlockCache::BlockCache(index_t capacity_blocks, index_t block_volume,
                       int num_shards)
    : capacity_(std::max<index_t>(1, capacity_blocks)),
      block_volume_(block_volume),
      block_bytes_(static_cast<std::uint64_t>(block_volume) * sizeof(double)),
      shards_(static_cast<std::size_t>(
          num_shards > 0
              ? num_shards
              : static_cast<int>(std::min<index_t>(kDefaultShards,
                                                   capacity_)))) {
  // Distribute the capacity over the shards; every shard holds at least one
  // block (shard count never exceeds capacity on the default path).
  const index_t n = static_cast<index_t>(shards_.size());
  for (index_t s = 0; s < n; ++s) {
    shards_[static_cast<std::size_t>(s)].capacity =
        std::max<index_t>(1, capacity_ / n + (s < capacity_ % n ? 1 : 0));
  }
}

std::shared_ptr<std::vector<double>> BlockCache::allocate_buffer() const {
  try {
    fault::point("cache.fill.alloc");
    return std::make_shared<std::vector<double>>(
        static_cast<std::size_t>(block_volume_));
  } catch (const std::bad_alloc&) {
    cc::raise(cc::ErrorCode::kResourceExhausted, "cache.fill.alloc",
              "allocation of a decoded-block buffer failed");
  }
}

void BlockCache::evict_until_locked(Shard& shard, index_t headroom) {
  static telemetry::Counter& evictions = telemetry::counter("cache.evictions");
  while (static_cast<index_t>(shard.entries.size()) - shard.dirty + headroom >
         shard.capacity) {
    auto victim = shard.entries.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
      if (!it->second.dirty && it->second.tick < oldest) {
        oldest = it->second.tick;
        victim = it;
      }
    }
    if (victim == shard.entries.end()) return;  // Everything dirty (pinned).
    shard.entries.erase(victim);
    evictions.increment();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

BlockCache::DecodedBlockRef BlockCache::fetch(index_t kb, const FillFn& fill) {
  static telemetry::Counter& hits = telemetry::counter("cache.hits");
  static telemetry::Counter& misses = telemetry::counter("cache.misses");
  static telemetry::Counter& avoided =
      telemetry::counter("cache.decode_avoided_bytes");
  static telemetry::Histogram& lookup_ns =
      telemetry::histogram("cache.lookup_ns");
  telemetry::ScopedLatency latency(lookup_ns);

  Shard& shard = shard_for(kb);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(kb);
    if (it != shard.entries.end()) {
      it->second.tick = ++shard.tick;
      hits.increment();
      avoided.add(block_bytes_);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return DecodedBlockRef(it->second.data);
    }
  }

  // Miss: decode outside the shard lock so misses on different blocks (and
  // hits on this shard) proceed concurrently.
  auto buffer = allocate_buffer();
  fill(buffer->data());

  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(kb);
  if (it != shard.entries.end()) {
    // Another thread filled this block while we decoded; identical bytes
    // (decode is deterministic), first insert wins.
    it->second.tick = ++shard.tick;
    hits_.fetch_add(1, std::memory_order_relaxed);
    hits.increment();
    return DecodedBlockRef(it->second.data);
  }
  misses.increment();
  misses_.fetch_add(1, std::memory_order_relaxed);
  evict_until_locked(shard, 1);
  auto [pos, inserted] =
      shard.entries.emplace(kb, Entry{std::move(buffer), ++shard.tick, false});
  return DecodedBlockRef(pos->second.data);
}

void BlockCache::write(index_t kb, const FillFn& fill, const MutateFn& mutate) {
  static telemetry::Counter& hits = telemetry::counter("cache.hits");
  static telemetry::Counter& misses = telemetry::counter("cache.misses");
  static telemetry::Counter& avoided =
      telemetry::counter("cache.decode_avoided_bytes");
  static telemetry::Histogram& lookup_ns =
      telemetry::histogram("cache.lookup_ns");
  telemetry::ScopedLatency latency(lookup_ns);

  Shard& shard = shard_for(kb);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(kb);
    if (it != shard.entries.end()) {
      it->second.tick = ++shard.tick;
      if (!it->second.dirty) {
        it->second.dirty = true;
        ++shard.dirty;
      }
      mutate(it->second.data->data());
      hits.increment();
      avoided.add(block_bytes_);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  auto buffer = allocate_buffer();
  fill(buffer->data());

  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(kb);
  if (it == shard.entries.end()) {
    misses.increment();
    misses_.fetch_add(1, std::memory_order_relaxed);
    // Dirty blocks are pinned, not counted against the clean capacity; no
    // eviction is needed to admit one.
    it = shard.entries.emplace(kb, Entry{std::move(buffer), ++shard.tick, true})
             .first;
    ++shard.dirty;
  } else {
    hits.increment();
    hits_.fetch_add(1, std::memory_order_relaxed);
    it->second.tick = ++shard.tick;
    if (!it->second.dirty) {
      it->second.dirty = true;
      ++shard.dirty;
    }
  }
  mutate(it->second.data->data());
}

index_t BlockCache::flush(const WritebackFn& writeback) {
  static telemetry::Counter& writebacks =
      telemetry::counter("cache.writebacks");
  index_t written = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.dirty == 0) continue;
    // Ascending block order: deterministic, and blocks write disjoint archive
    // rows, so the order never affects the flushed bytes.
    std::vector<index_t> dirty_kbs;
    dirty_kbs.reserve(static_cast<std::size_t>(shard.dirty));
    for (const auto& [kb, entry] : shard.entries)
      if (entry.dirty) dirty_kbs.push_back(kb);
    std::sort(dirty_kbs.begin(), dirty_kbs.end());
    for (index_t kb : dirty_kbs) {
      Entry& entry = shard.entries.find(kb)->second;
      writeback(kb, entry.data->data());
      entry.dirty = false;
      --shard.dirty;
      ++written;
      writebacks.increment();
      writebacks_.fetch_add(1, std::memory_order_relaxed);
    }
    // Previously pinned blocks are clean now; trim back to capacity.
    evict_until_locked(shard, 0);
  }
  return written;
}

void BlockCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
    shard.dirty = 0;
  }
}

index_t BlockCache::resident_blocks() const {
  index_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += static_cast<index_t>(shard.entries.size());
  }
  return total;
}

index_t BlockCache::dirty_blocks() const {
  index_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.dirty;
  }
  return total;
}

bool BlockCache::contains(index_t kb) const {
  const auto& shard =
      shards_[static_cast<std::size_t>(kb) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.entries.find(kb) != shard.entries.end();
}

BlockCache::Stats BlockCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.writebacks = writebacks_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace pyblaz::cache
