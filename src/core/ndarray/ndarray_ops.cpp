#include "core/ndarray/ndarray_ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace pyblaz {

NDArray<double> add(const NDArray<double>& x, const NDArray<double>& y) {
  assert(x.shape() == y.shape());
  NDArray<double> out(x.shape());
  for (index_t k = 0; k < x.size(); ++k) out[k] = x[k] + y[k];
  return out;
}

NDArray<double> subtract(const NDArray<double>& x, const NDArray<double>& y) {
  assert(x.shape() == y.shape());
  NDArray<double> out(x.shape());
  for (index_t k = 0; k < x.size(); ++k) out[k] = x[k] - y[k];
  return out;
}

NDArray<double> multiply(const NDArray<double>& x, const NDArray<double>& y) {
  assert(x.shape() == y.shape());
  NDArray<double> out(x.shape());
  for (index_t k = 0; k < x.size(); ++k) out[k] = x[k] * y[k];
  return out;
}

NDArray<double> scale(const NDArray<double>& x, double factor) {
  NDArray<double> out(x.shape());
  for (index_t k = 0; k < x.size(); ++k) out[k] = x[k] * factor;
  return out;
}

NDArray<double> add_scalar(const NDArray<double>& x, double value) {
  NDArray<double> out(x.shape());
  for (index_t k = 0; k < x.size(); ++k) out[k] = x[k] + value;
  return out;
}

double sum(const NDArray<double>& x) {
  double total = 0.0;
  for (index_t k = 0; k < x.size(); ++k) total += x[k];
  return total;
}

double max_abs(const NDArray<double>& x) {
  double m = 0.0;
  for (index_t k = 0; k < x.size(); ++k) m = std::max(m, std::fabs(x[k]));
  return m;
}

double max(const NDArray<double>& x) {
  assert(x.size() > 0);
  double m = x[0];
  for (index_t k = 1; k < x.size(); ++k) m = std::max(m, x[k]);
  return m;
}

double min(const NDArray<double>& x) {
  assert(x.size() > 0);
  double m = x[0];
  for (index_t k = 1; k < x.size(); ++k) m = std::min(m, x[k]);
  return m;
}

NDArray<double> quantized(const NDArray<double>& x, FloatType type) {
  NDArray<double> out(x.shape());
  for (index_t k = 0; k < x.size(); ++k) out[k] = quantize(x[k], type);
  return out;
}

NDArray<double> gradient_array(const Shape& shape) {
  NDArray<double> out(shape);
  index_t denom = 0;
  for (int axis = 0; axis < shape.ndim(); ++axis) denom += shape[axis] - 1;
  if (denom == 0) denom = 1;
  index_t offset = 0;
  for_each_index(shape, [&](const std::vector<index_t>& idx) {
    index_t numer = 0;
    for (index_t i : idx) numer += i;
    out[offset++] = static_cast<double>(numer) / static_cast<double>(denom);
  });
  return out;
}

NDArray<double> random_uniform(const Shape& shape, Rng& rng, double lo, double hi) {
  NDArray<double> out(shape);
  for (index_t k = 0; k < out.size(); ++k) out[k] = rng.uniform(lo, hi);
  return out;
}

NDArray<double> random_normal(const Shape& shape, Rng& rng, double mean,
                              double stddev) {
  NDArray<double> out(shape);
  for (index_t k = 0; k < out.size(); ++k) out[k] = rng.normal(mean, stddev);
  return out;
}

NDArray<double> random_smooth(const Shape& shape, Rng& rng, int modes) {
  const int d = shape.ndim();
  NDArray<double> out(shape, 0.0);
  for (int m = 0; m < modes; ++m) {
    std::vector<double> freq(static_cast<std::size_t>(d));
    std::vector<double> phase(static_cast<std::size_t>(d));
    double max_freq = 1.0;
    for (int axis = 0; axis < d; ++axis) {
      freq[static_cast<std::size_t>(axis)] = rng.uniform(0.5, 6.0);
      phase[static_cast<std::size_t>(axis)] = rng.uniform(0.0, 2.0 * std::numbers::pi);
      max_freq = std::max(max_freq, freq[static_cast<std::size_t>(axis)]);
    }
    const double amplitude = rng.uniform(0.3, 1.0) / max_freq;
    index_t offset = 0;
    for_each_index(shape, [&](const std::vector<index_t>& idx) {
      double v = amplitude;
      for (int axis = 0; axis < d; ++axis) {
        const double t =
            shape[axis] > 1
                ? static_cast<double>(idx[static_cast<std::size_t>(axis)]) /
                      static_cast<double>(shape[axis] - 1)
                : 0.0;
        v *= std::cos(freq[static_cast<std::size_t>(axis)] * std::numbers::pi * t +
                      phase[static_cast<std::size_t>(axis)]);
      }
      out[offset++] += v;
    });
  }
  return out;
}

}  // namespace pyblaz
