#include "core/ndarray/shape.hpp"

#include <cassert>
#include <sstream>

namespace pyblaz {

index_t Shape::volume() const {
  index_t v = 1;
  for (index_t d : dims_) v *= d;
  return v;
}

std::vector<index_t> Shape::strides() const {
  std::vector<index_t> s(dims_.size(), 1);
  for (int axis = ndim() - 2; axis >= 0; --axis) {
    s[static_cast<std::size_t>(axis)] =
        s[static_cast<std::size_t>(axis + 1)] * dims_[static_cast<std::size_t>(axis + 1)];
  }
  return s;
}

index_t Shape::offset_of(const std::vector<index_t>& indices) const {
  assert(indices.size() == dims_.size());
  index_t offset = 0;
  for (int axis = 0; axis < ndim(); ++axis) {
    assert(indices[static_cast<std::size_t>(axis)] >= 0 &&
           indices[static_cast<std::size_t>(axis)] < (*this)[axis]);
    offset = offset * (*this)[axis] + indices[static_cast<std::size_t>(axis)];
  }
  return offset;
}

std::vector<index_t> Shape::indices_of(index_t offset) const {
  std::vector<index_t> idx(dims_.size());
  for (int axis = ndim() - 1; axis >= 0; --axis) {
    idx[static_cast<std::size_t>(axis)] = offset % (*this)[axis];
    offset /= (*this)[axis];
  }
  return idx;
}

Shape Shape::ceil_div(const Shape& s, const Shape& i) {
  assert(s.ndim() == i.ndim());
  std::vector<index_t> out(static_cast<std::size_t>(s.ndim()));
  for (int axis = 0; axis < s.ndim(); ++axis) {
    assert(i[axis] > 0);
    out[static_cast<std::size_t>(axis)] = (s[axis] + i[axis] - 1) / i[axis];
  }
  return Shape(std::move(out));
}

Shape Shape::mul(const Shape& a, const Shape& b) {
  assert(a.ndim() == b.ndim());
  std::vector<index_t> out(static_cast<std::size_t>(a.ndim()));
  for (int axis = 0; axis < a.ndim(); ++axis)
    out[static_cast<std::size_t>(axis)] = a[axis] * b[axis];
  return Shape(std::move(out));
}

bool Shape::all_powers_of_two() const {
  for (index_t d : dims_) {
    if (d <= 0) return false;
    if ((d & (d - 1)) != 0) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '(';
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    if (k) out << ", ";
    out << dims_[k];
  }
  out << ')';
  return out.str();
}

}  // namespace pyblaz
