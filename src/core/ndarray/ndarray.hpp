#pragma once

#include <cassert>
#include <vector>

#include "core/ndarray/shape.hpp"

namespace pyblaz {

/// Dense row-major N-dimensional array.
///
/// The storage type T is usually double (PyBlaz evaluates transforms in a
/// working precision and lowers storage precision separately via
/// FloatType::quantize), but the container is generic so masks (uint8_t) and
/// simulators reuse it.
template <typename T>
class NDArray {
 public:
  NDArray() = default;

  /// Allocate an array of the given shape filled with @p fill.
  explicit NDArray(Shape shape, T fill = T{})
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.volume()), fill) {}

  /// Wrap an existing buffer; its size must equal the shape's volume.
  NDArray(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    assert(static_cast<index_t>(data_.size()) == shape_.volume());
  }

  const Shape& shape() const { return shape_; }
  index_t size() const { return static_cast<index_t>(data_.size()); }

  /// Flat row-major element access.
  T& operator[](index_t offset) { return data_[static_cast<std::size_t>(offset)]; }
  const T& operator[](index_t offset) const {
    return data_[static_cast<std::size_t>(offset)];
  }

  /// Multi-index element access.
  T& at(const std::vector<index_t>& indices) {
    return data_[static_cast<std::size_t>(shape_.offset_of(indices))];
  }
  const T& at(const std::vector<index_t>& indices) const {
    return data_[static_cast<std::size_t>(shape_.offset_of(indices))];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::vector<T>& vector() { return data_; }
  const std::vector<T>& vector() const { return data_; }

  /// Apply @p fn to every element in place.
  template <typename Fn>
  void map_inplace(Fn&& fn) {
    for (auto& v : data_) v = fn(v);
  }

  friend bool operator==(const NDArray& a, const NDArray& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  Shape shape_;
  std::vector<T> data_;
};

}  // namespace pyblaz
