#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace pyblaz {

using index_t = std::int64_t;

/// Array shape: the length of an array in each direction (§II-B notation).
/// Also used for block shapes `i` and block-arrangement shapes `b`.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<index_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<index_t> dims) : dims_(std::move(dims)) {}

  /// Dimensionality d = |s|.
  int ndim() const { return static_cast<int>(dims_.size()); }

  /// Length in direction @p axis.
  index_t operator[](int axis) const { return dims_[static_cast<std::size_t>(axis)]; }
  index_t& operator[](int axis) { return dims_[static_cast<std::size_t>(axis)]; }

  /// Total number of elements, prod(s).  The empty shape has volume 1
  /// (a scalar), matching NumPy semantics.
  index_t volume() const;

  /// Row-major strides (stride of the last axis is 1).
  std::vector<index_t> strides() const;

  /// Flat row-major offset of a multi-index.
  index_t offset_of(const std::vector<index_t>& indices) const;

  /// Multi-index of a flat row-major offset.
  std::vector<index_t> indices_of(index_t offset) const;

  /// Element-wise ceiling division: ceil(s ⊘ i).  Shapes must have equal ndim.
  static Shape ceil_div(const Shape& s, const Shape& i);

  /// Element-wise product: the reshaped array shape b ⊙ i of §III-A.
  static Shape mul(const Shape& a, const Shape& b);

  /// True if every extent is a (positive) power of two.
  bool all_powers_of_two() const;

  /// Render as e.g. "(3, 224, 224)".
  std::string to_string() const;

  const std::vector<index_t>& dims() const { return dims_; }

  friend bool operator==(const Shape& a, const Shape& b) { return a.dims_ == b.dims_; }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  std::vector<index_t> dims_;
};

/// Iterate all multi-indices of @p shape in row-major order, invoking
/// @p fn(indices) for each.  Convenience for tests and generators; hot paths
/// use flat offsets instead.
template <typename Fn>
void for_each_index(const Shape& shape, Fn&& fn) {
  const int d = shape.ndim();
  std::vector<index_t> idx(static_cast<std::size_t>(d), 0);
  const index_t total = shape.volume();
  for (index_t count = 0; count < total; ++count) {
    fn(idx);
    for (int axis = d - 1; axis >= 0; --axis) {
      if (++idx[static_cast<std::size_t>(axis)] < shape[axis]) break;
      idx[static_cast<std::size_t>(axis)] = 0;
    }
  }
}

}  // namespace pyblaz
