#pragma once

#include "core/dtypes/float_type.hpp"
#include "core/ndarray/ndarray.hpp"
#include "core/util/rng.hpp"

namespace pyblaz {

/// Element-wise sum X + Y (shapes must match).
NDArray<double> add(const NDArray<double>& x, const NDArray<double>& y);

/// Element-wise difference X - Y (shapes must match).
NDArray<double> subtract(const NDArray<double>& x, const NDArray<double>& y);

/// Element-wise (Hadamard) product X ⊙ Y (shapes must match).
NDArray<double> multiply(const NDArray<double>& x, const NDArray<double>& y);

/// Array scaled by a scalar.
NDArray<double> scale(const NDArray<double>& x, double factor);

/// Array with a scalar added to every element.
NDArray<double> add_scalar(const NDArray<double>& x, double value);

/// Sum of all elements, Σ X.
double sum(const NDArray<double>& x);

/// Largest absolute element, ‖X‖∞.
double max_abs(const NDArray<double>& x);

/// Largest element.
double max(const NDArray<double>& x);

/// Smallest element.
double min(const NDArray<double>& x);

/// Every element rounded through the given storage float type
/// (the §III-A data-type-conversion step).
NDArray<double> quantized(const NDArray<double>& x, FloatType type);

/// The §IV-E benchmark array: elements ranging 0..1 in a constant gradient
/// from the lowest indices to the highest, X_x = Σ(x) / Σ(s - 1)
/// (0-based indices; the all-zero corner maps to 0, the far corner to 1).
NDArray<double> gradient_array(const Shape& shape);

/// Uniform random array in [lo, hi), deterministic given @p rng.
NDArray<double> random_uniform(const Shape& shape, Rng& rng, double lo = 0.0,
                               double hi = 1.0);

/// Normal random array, deterministic given @p rng.
NDArray<double> random_normal(const Shape& shape, Rng& rng, double mean = 0.0,
                              double stddev = 1.0);

/// A smooth random field: sum of @p modes random separable cosine modes with
/// 1/frequency amplitude decay.  Produces the band-limited, spatially
/// correlated structure typical of scientific data, which DCT-based
/// compressors exploit.
NDArray<double> random_smooth(const Shape& shape, Rng& rng, int modes = 12);

}  // namespace pyblaz
