#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/ndarray/shape.hpp"

namespace pyblaz::parallel {

/// Deterministic block-execution runtime.
///
/// The paper's whole premise is that blocks are independent, so every hot
/// loop in the codec, the serializer, and the compressed-space operations is
/// a fan-out over blocks.  This pool runs those fan-outs with one hard
/// design constraint: **the result must not depend on the thread count**.
/// Two rules deliver that:
///
///   1. Work is split into chunks whose boundaries depend only on the range
///      and the caller's grain — never on how many threads exist.  Chunks
///      may execute in any order on any thread (claiming is a single atomic
///      counter, no work stealing), so bodies that write disjoint slots are
///      value-deterministic for free.
///   2. parallel_reduce() stores one partial per chunk and combines them in
///      chunk-index order after the barrier, so floating-point reductions
///      are bit-identical at 1, 4, or 64 threads.
///
/// The worker count defaults to std::thread::hardware_concurrency() and is
/// overridden by the CC_THREADS environment variable (checked once, at first
/// use); tests and benchmarks adjust it at runtime with set_num_threads().
/// Nested parallel regions run inline on the calling worker — the pool never
/// deadlocks on reentry, it just declines to oversubscribe.
class ThreadPool {
 public:
  /// The process-wide pool.  Workers are spawned lazily on the first
  /// parallel call, so a CC_THREADS=1 process never creates a thread.
  static ThreadPool& instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current target thread count (callers + workers), always >= 1.
  int num_threads() const { return target_threads_.load(std::memory_order_relaxed); }

  /// Change the thread count at runtime (joins existing workers; new ones
  /// spawn lazily).  n <= 0 restores the CC_THREADS / hardware default.
  void set_num_threads(int n);

  /// Run fn(chunk) for every chunk in [0, num_chunks), distributed over the
  /// workers plus the calling thread.  Blocks until all chunks finished.
  /// The first exception thrown by any chunk is rethrown on the caller.
  void run_chunks(index_t num_chunks, const std::function<void(index_t)>& fn);

 private:
  ThreadPool();
  ~ThreadPool();

  void ensure_workers();
  void stop_workers();
  void worker_loop();
  void execute_chunks();

  std::atomic<int> target_threads_;

  // Only one parallel region runs at a time; concurrent top-level callers
  // serialize here (nested calls from inside a region run inline instead).
  std::mutex entry_mutex_;

  std::mutex mutex_;
  std::condition_variable wake_cv_;  // Workers wait for a new job generation.
  std::condition_variable done_cv_;  // The caller waits for job completion.
  std::vector<std::thread> workers_;
  bool stop_ = false;

  // Active job state.  job_next_ hands out chunk indices; the chunk -> work
  // mapping is fixed by the caller, so claim order never affects results.
  // job_fn_ doubles as the "job live" flag: workers only enter a job while
  // it is non-null (checked under mutex_), and the caller only tears a job
  // down after job_active_ — the number of workers inside the job — returns
  // to zero.  Together these rule out any claim against stale counters.
  const std::function<void(index_t)>* job_fn_ = nullptr;
  index_t job_total_ = 0;
  std::atomic<index_t> job_next_{0};
  std::atomic<index_t> job_done_{0};
  int job_active_ = 0;
  std::uint64_t job_generation_ = 0;
  std::exception_ptr job_exception_;
};

/// Effective thread count of the process-wide pool.
inline int num_threads() { return ThreadPool::instance().num_threads(); }

/// Runtime override of the pool size (0 restores the CC_THREADS / hardware
/// default).  Used by tests and benchmarks to compare thread counts within
/// one process.
inline void set_num_threads(int n) { ThreadPool::instance().set_num_threads(n); }

/// Grain for loops whose per-element cost is modest: targets ~64 chunks so
/// any plausible machine is saturated, with a floor that keeps per-chunk
/// bookkeeping negligible.  Depends only on @p range — never on the thread
/// count — so chunk boundaries (and therefore reduction order) are stable.
inline index_t default_grain(index_t range, index_t min_grain = 16) {
  return std::max(min_grain, (range + 63) / 64);
}

/// Run body(chunk_begin, chunk_end) over [begin, end) split into chunks of
/// @p grain iterations (the last chunk may be short).  Chunk boundaries are a
/// pure function of (begin, end, grain): bodies writing per-index outputs
/// produce identical results at any thread count.
template <typename Body>
void parallel_for(index_t begin, index_t end, index_t grain, Body&& body) {
  const index_t range = end - begin;
  if (range <= 0) return;
  grain = std::max<index_t>(grain, 1);
  const index_t chunks = (range + grain - 1) / grain;
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const std::function<void(index_t)> fn = [&](index_t chunk) {
    const index_t b = begin + chunk * grain;
    body(b, std::min(end, b + grain));
  };
  ThreadPool::instance().run_chunks(chunks, fn);
}

/// Ordered deterministic reduction: evaluates
/// body(chunk_begin, chunk_end, identity) -> T per chunk, then folds the
/// partials with combine() in ascending chunk order.  Because the chunking
/// depends only on (begin, end, grain), the combine tree — and hence every
/// floating-point rounding — is bit-identical at any thread count.
template <typename T, typename Body, typename Combine>
T parallel_reduce(index_t begin, index_t end, index_t grain, T identity,
                  Body&& body, Combine&& combine) {
  const index_t range = end - begin;
  if (range <= 0) return identity;
  grain = std::max<index_t>(grain, 1);
  const index_t chunks = (range + grain - 1) / grain;
  if (chunks <= 1) return body(begin, end, std::move(identity));
  std::vector<T> partials(static_cast<std::size_t>(chunks), identity);
  const std::function<void(index_t)> fn = [&](index_t chunk) {
    const index_t b = begin + chunk * grain;
    partials[static_cast<std::size_t>(chunk)] =
        body(b, std::min(end, b + grain), identity);
  };
  ThreadPool::instance().run_chunks(chunks, fn);
  T total = std::move(partials[0]);
  for (index_t chunk = 1; chunk < chunks; ++chunk)
    total = combine(std::move(total),
                    std::move(partials[static_cast<std::size_t>(chunk)]));
  return total;
}

}  // namespace pyblaz::parallel
